file(REMOVE_RECURSE
  "libtimer.a"
)
