
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timer/celllib.cpp" "src/timer/CMakeFiles/timer.dir/celllib.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/celllib.cpp.o.d"
  "/root/repo/src/timer/liberty.cpp" "src/timer/CMakeFiles/timer.dir/liberty.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/liberty.cpp.o.d"
  "/root/repo/src/timer/modifier.cpp" "src/timer/CMakeFiles/timer.dir/modifier.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/modifier.cpp.o.d"
  "/root/repo/src/timer/netlist.cpp" "src/timer/CMakeFiles/timer.dir/netlist.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/netlist.cpp.o.d"
  "/root/repo/src/timer/propagation.cpp" "src/timer/CMakeFiles/timer.dir/propagation.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/propagation.cpp.o.d"
  "/root/repo/src/timer/report.cpp" "src/timer/CMakeFiles/timer.dir/report.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/report.cpp.o.d"
  "/root/repo/src/timer/sdc.cpp" "src/timer/CMakeFiles/timer.dir/sdc.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/sdc.cpp.o.d"
  "/root/repo/src/timer/shell.cpp" "src/timer/CMakeFiles/timer.dir/shell.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/shell.cpp.o.d"
  "/root/repo/src/timer/timer_v1.cpp" "src/timer/CMakeFiles/timer.dir/timer_v1.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/timer_v1.cpp.o.d"
  "/root/repo/src/timer/timer_v2.cpp" "src/timer/CMakeFiles/timer.dir/timer_v2.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/timer_v2.cpp.o.d"
  "/root/repo/src/timer/timers.cpp" "src/timer/CMakeFiles/timer.dir/timers.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/timers.cpp.o.d"
  "/root/repo/src/timer/timing_graph.cpp" "src/timer/CMakeFiles/timer.dir/timing_graph.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/timing_graph.cpp.o.d"
  "/root/repo/src/timer/verilog.cpp" "src/timer/CMakeFiles/timer.dir/verilog.cpp.o" "gcc" "src/timer/CMakeFiles/timer.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/taskflow/CMakeFiles/taskflow.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
