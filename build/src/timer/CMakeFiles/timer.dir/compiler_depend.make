# Empty compiler generated dependencies file for timer.
# This may be replaced when dependencies are built.
