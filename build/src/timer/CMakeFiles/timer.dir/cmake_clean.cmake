file(REMOVE_RECURSE
  "CMakeFiles/timer.dir/celllib.cpp.o"
  "CMakeFiles/timer.dir/celllib.cpp.o.d"
  "CMakeFiles/timer.dir/liberty.cpp.o"
  "CMakeFiles/timer.dir/liberty.cpp.o.d"
  "CMakeFiles/timer.dir/modifier.cpp.o"
  "CMakeFiles/timer.dir/modifier.cpp.o.d"
  "CMakeFiles/timer.dir/netlist.cpp.o"
  "CMakeFiles/timer.dir/netlist.cpp.o.d"
  "CMakeFiles/timer.dir/propagation.cpp.o"
  "CMakeFiles/timer.dir/propagation.cpp.o.d"
  "CMakeFiles/timer.dir/report.cpp.o"
  "CMakeFiles/timer.dir/report.cpp.o.d"
  "CMakeFiles/timer.dir/sdc.cpp.o"
  "CMakeFiles/timer.dir/sdc.cpp.o.d"
  "CMakeFiles/timer.dir/shell.cpp.o"
  "CMakeFiles/timer.dir/shell.cpp.o.d"
  "CMakeFiles/timer.dir/timer_v1.cpp.o"
  "CMakeFiles/timer.dir/timer_v1.cpp.o.d"
  "CMakeFiles/timer.dir/timer_v2.cpp.o"
  "CMakeFiles/timer.dir/timer_v2.cpp.o.d"
  "CMakeFiles/timer.dir/timers.cpp.o"
  "CMakeFiles/timer.dir/timers.cpp.o.d"
  "CMakeFiles/timer.dir/timing_graph.cpp.o"
  "CMakeFiles/timer.dir/timing_graph.cpp.o.d"
  "CMakeFiles/timer.dir/verilog.cpp.o"
  "CMakeFiles/timer.dir/verilog.cpp.o.d"
  "libtimer.a"
  "libtimer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
