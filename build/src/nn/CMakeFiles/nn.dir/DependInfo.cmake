
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/mnist.cpp" "src/nn/CMakeFiles/nn.dir/mnist.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/mnist.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/trainer_omp.cpp" "src/nn/CMakeFiles/nn.dir/trainer_omp.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/trainer_omp.cpp.o.d"
  "/root/repo/src/nn/trainers.cpp" "src/nn/CMakeFiles/nn.dir/trainers.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/trainers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/taskflow/CMakeFiles/taskflow.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
