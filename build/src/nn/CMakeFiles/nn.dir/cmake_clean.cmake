file(REMOVE_RECURSE
  "CMakeFiles/nn.dir/mnist.cpp.o"
  "CMakeFiles/nn.dir/mnist.cpp.o.d"
  "CMakeFiles/nn.dir/network.cpp.o"
  "CMakeFiles/nn.dir/network.cpp.o.d"
  "CMakeFiles/nn.dir/tensor.cpp.o"
  "CMakeFiles/nn.dir/tensor.cpp.o.d"
  "CMakeFiles/nn.dir/trainer_omp.cpp.o"
  "CMakeFiles/nn.dir/trainer_omp.cpp.o.d"
  "CMakeFiles/nn.dir/trainers.cpp.o"
  "CMakeFiles/nn.dir/trainers.cpp.o.d"
  "libnn.a"
  "libnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
