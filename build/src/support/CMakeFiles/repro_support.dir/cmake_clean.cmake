file(REMOVE_RECURSE
  "CMakeFiles/repro_support.dir/chrono.cpp.o"
  "CMakeFiles/repro_support.dir/chrono.cpp.o.d"
  "CMakeFiles/repro_support.dir/env.cpp.o"
  "CMakeFiles/repro_support.dir/env.cpp.o.d"
  "CMakeFiles/repro_support.dir/rng.cpp.o"
  "CMakeFiles/repro_support.dir/rng.cpp.o.d"
  "CMakeFiles/repro_support.dir/table.cpp.o"
  "CMakeFiles/repro_support.dir/table.cpp.o.d"
  "librepro_support.a"
  "librepro_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
