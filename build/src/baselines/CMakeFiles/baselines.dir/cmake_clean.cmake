file(REMOVE_RECURSE
  "CMakeFiles/baselines.dir/flowgraph.cpp.o"
  "CMakeFiles/baselines.dir/flowgraph.cpp.o.d"
  "CMakeFiles/baselines.dir/threadpool.cpp.o"
  "CMakeFiles/baselines.dir/threadpool.cpp.o.d"
  "libbaselines.a"
  "libbaselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
