file(REMOVE_RECURSE
  "CMakeFiles/costtool.dir/analyze.cpp.o"
  "CMakeFiles/costtool.dir/analyze.cpp.o.d"
  "CMakeFiles/costtool.dir/cocomo.cpp.o"
  "CMakeFiles/costtool.dir/cocomo.cpp.o.d"
  "CMakeFiles/costtool.dir/cyclomatic.cpp.o"
  "CMakeFiles/costtool.dir/cyclomatic.cpp.o.d"
  "CMakeFiles/costtool.dir/lexer.cpp.o"
  "CMakeFiles/costtool.dir/lexer.cpp.o.d"
  "CMakeFiles/costtool.dir/loc.cpp.o"
  "CMakeFiles/costtool.dir/loc.cpp.o.d"
  "libcosttool.a"
  "libcosttool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
