# Empty compiler generated dependencies file for costtool.
# This may be replaced when dependencies are built.
