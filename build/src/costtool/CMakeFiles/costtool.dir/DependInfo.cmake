
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costtool/analyze.cpp" "src/costtool/CMakeFiles/costtool.dir/analyze.cpp.o" "gcc" "src/costtool/CMakeFiles/costtool.dir/analyze.cpp.o.d"
  "/root/repo/src/costtool/cocomo.cpp" "src/costtool/CMakeFiles/costtool.dir/cocomo.cpp.o" "gcc" "src/costtool/CMakeFiles/costtool.dir/cocomo.cpp.o.d"
  "/root/repo/src/costtool/cyclomatic.cpp" "src/costtool/CMakeFiles/costtool.dir/cyclomatic.cpp.o" "gcc" "src/costtool/CMakeFiles/costtool.dir/cyclomatic.cpp.o.d"
  "/root/repo/src/costtool/lexer.cpp" "src/costtool/CMakeFiles/costtool.dir/lexer.cpp.o" "gcc" "src/costtool/CMakeFiles/costtool.dir/lexer.cpp.o.d"
  "/root/repo/src/costtool/loc.cpp" "src/costtool/CMakeFiles/costtool.dir/loc.cpp.o" "gcc" "src/costtool/CMakeFiles/costtool.dir/loc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
