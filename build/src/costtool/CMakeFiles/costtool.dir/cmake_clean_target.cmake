file(REMOVE_RECURSE
  "libcosttool.a"
)
