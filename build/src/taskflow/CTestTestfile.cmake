# CMake generated Testfile for 
# Source directory: /root/repo/src/taskflow
# Build directory: /root/repo/build/src/taskflow
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
