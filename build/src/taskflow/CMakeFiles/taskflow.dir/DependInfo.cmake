
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taskflow/dot.cpp" "src/taskflow/CMakeFiles/taskflow.dir/dot.cpp.o" "gcc" "src/taskflow/CMakeFiles/taskflow.dir/dot.cpp.o.d"
  "/root/repo/src/taskflow/executor.cpp" "src/taskflow/CMakeFiles/taskflow.dir/executor.cpp.o" "gcc" "src/taskflow/CMakeFiles/taskflow.dir/executor.cpp.o.d"
  "/root/repo/src/taskflow/graph.cpp" "src/taskflow/CMakeFiles/taskflow.dir/graph.cpp.o" "gcc" "src/taskflow/CMakeFiles/taskflow.dir/graph.cpp.o.d"
  "/root/repo/src/taskflow/observer.cpp" "src/taskflow/CMakeFiles/taskflow.dir/observer.cpp.o" "gcc" "src/taskflow/CMakeFiles/taskflow.dir/observer.cpp.o.d"
  "/root/repo/src/taskflow/taskflow.cpp" "src/taskflow/CMakeFiles/taskflow.dir/taskflow.cpp.o" "gcc" "src/taskflow/CMakeFiles/taskflow.dir/taskflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
