file(REMOVE_RECURSE
  "libtaskflow.a"
)
