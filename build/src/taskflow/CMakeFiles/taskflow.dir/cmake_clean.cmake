file(REMOVE_RECURSE
  "CMakeFiles/taskflow.dir/dot.cpp.o"
  "CMakeFiles/taskflow.dir/dot.cpp.o.d"
  "CMakeFiles/taskflow.dir/executor.cpp.o"
  "CMakeFiles/taskflow.dir/executor.cpp.o.d"
  "CMakeFiles/taskflow.dir/graph.cpp.o"
  "CMakeFiles/taskflow.dir/graph.cpp.o.d"
  "CMakeFiles/taskflow.dir/observer.cpp.o"
  "CMakeFiles/taskflow.dir/observer.cpp.o.d"
  "CMakeFiles/taskflow.dir/taskflow.cpp.o"
  "CMakeFiles/taskflow.dir/taskflow.cpp.o.d"
  "libtaskflow.a"
  "libtaskflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
