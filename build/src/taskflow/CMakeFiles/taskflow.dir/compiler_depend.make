# Empty compiler generated dependencies file for taskflow.
# This may be replaced when dependencies are built.
