# Empty compiler generated dependencies file for bench_table3_ml_costs.
# This may be replaced when dependencies are built.
