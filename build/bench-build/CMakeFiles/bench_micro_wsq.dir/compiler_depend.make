# Empty compiler generated dependencies file for bench_micro_wsq.
# This may be replaced when dependencies are built.
