file(REMOVE_RECURSE
  "../bench/bench_micro_wsq"
  "../bench/bench_micro_wsq.pdb"
  "CMakeFiles/bench_micro_wsq.dir/bench_micro_wsq.cpp.o"
  "CMakeFiles/bench_micro_wsq.dir/bench_micro_wsq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_wsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
