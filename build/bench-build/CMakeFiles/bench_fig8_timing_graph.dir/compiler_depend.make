# Empty compiler generated dependencies file for bench_fig8_timing_graph.
# This may be replaced when dependencies are built.
