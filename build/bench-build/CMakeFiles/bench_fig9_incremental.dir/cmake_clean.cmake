file(REMOVE_RECURSE
  "../bench/bench_fig9_incremental"
  "../bench/bench_fig9_incremental.pdb"
  "CMakeFiles/bench_fig9_incremental.dir/bench_fig9_incremental.cpp.o"
  "CMakeFiles/bench_fig9_incremental.dir/bench_fig9_incremental.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
