file(REMOVE_RECURSE
  "../bench/bench_micro_construction"
  "../bench/bench_micro_construction.pdb"
  "CMakeFiles/bench_micro_construction.dir/bench_micro_construction.cpp.o"
  "CMakeFiles/bench_micro_construction.dir/bench_micro_construction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
