file(REMOVE_RECURSE
  "../bench/bench_fig12_dnn"
  "../bench/bench_fig12_dnn.pdb"
  "CMakeFiles/bench_fig12_dnn.dir/bench_fig12_dnn.cpp.o"
  "CMakeFiles/bench_fig12_dnn.dir/bench_fig12_dnn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
