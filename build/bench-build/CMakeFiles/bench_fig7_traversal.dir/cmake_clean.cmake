file(REMOVE_RECURSE
  "../bench/bench_fig7_traversal"
  "../bench/bench_fig7_traversal.pdb"
  "CMakeFiles/bench_fig7_traversal.dir/bench_fig7_traversal.cpp.o"
  "CMakeFiles/bench_fig7_traversal.dir/bench_fig7_traversal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
