
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/kernels/dnn_omp.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/dnn_omp.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/dnn_omp.cpp.o.d"
  "/root/repo/bench/kernels/dnn_seq.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/dnn_seq.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/dnn_seq.cpp.o.d"
  "/root/repo/bench/kernels/dnn_taskflow.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/dnn_taskflow.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/dnn_taskflow.cpp.o.d"
  "/root/repo/bench/kernels/dnn_tbb.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/dnn_tbb.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/dnn_tbb.cpp.o.d"
  "/root/repo/bench/kernels/traversal_common.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/traversal_common.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/traversal_common.cpp.o.d"
  "/root/repo/bench/kernels/traversal_omp.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/traversal_omp.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/traversal_omp.cpp.o.d"
  "/root/repo/bench/kernels/traversal_seq.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/traversal_seq.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/traversal_seq.cpp.o.d"
  "/root/repo/bench/kernels/traversal_taskflow.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/traversal_taskflow.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/traversal_taskflow.cpp.o.d"
  "/root/repo/bench/kernels/traversal_tbb.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/traversal_tbb.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/traversal_tbb.cpp.o.d"
  "/root/repo/bench/kernels/wavefront_omp.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/wavefront_omp.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/wavefront_omp.cpp.o.d"
  "/root/repo/bench/kernels/wavefront_seq.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/wavefront_seq.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/wavefront_seq.cpp.o.d"
  "/root/repo/bench/kernels/wavefront_taskflow.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/wavefront_taskflow.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/wavefront_taskflow.cpp.o.d"
  "/root/repo/bench/kernels/wavefront_tbb.cpp" "bench-build/CMakeFiles/bench_kernels.dir/kernels/wavefront_tbb.cpp.o" "gcc" "bench-build/CMakeFiles/bench_kernels.dir/kernels/wavefront_tbb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/taskflow/CMakeFiles/taskflow.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
