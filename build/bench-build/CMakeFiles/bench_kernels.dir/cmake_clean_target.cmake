file(REMOVE_RECURSE
  "../lib/libbench_kernels.a"
)
