file(REMOVE_RECURSE
  "../lib/libbench_kernels.a"
  "../lib/libbench_kernels.pdb"
  "CMakeFiles/bench_kernels.dir/kernels/dnn_omp.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/dnn_omp.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/dnn_seq.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/dnn_seq.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/dnn_taskflow.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/dnn_taskflow.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/dnn_tbb.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/dnn_tbb.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/traversal_common.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/traversal_common.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/traversal_omp.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/traversal_omp.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/traversal_seq.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/traversal_seq.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/traversal_taskflow.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/traversal_taskflow.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/traversal_tbb.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/traversal_tbb.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/wavefront_omp.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/wavefront_omp.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/wavefront_seq.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/wavefront_seq.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/wavefront_taskflow.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/wavefront_taskflow.cpp.o.d"
  "CMakeFiles/bench_kernels.dir/kernels/wavefront_tbb.cpp.o"
  "CMakeFiles/bench_kernels.dir/kernels/wavefront_tbb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
