# Empty dependencies file for bench_fig7_wavefront.
# This may be replaced when dependencies are built.
