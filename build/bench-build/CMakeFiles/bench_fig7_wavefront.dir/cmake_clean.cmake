file(REMOVE_RECURSE
  "../bench/bench_fig7_wavefront"
  "../bench/bench_fig7_wavefront.pdb"
  "CMakeFiles/bench_fig7_wavefront.dir/bench_fig7_wavefront.cpp.o"
  "CMakeFiles/bench_fig7_wavefront.dir/bench_fig7_wavefront.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_wavefront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
