file(REMOVE_RECURSE
  "../bench/bench_ablation_executor"
  "../bench/bench_ablation_executor.pdb"
  "CMakeFiles/bench_ablation_executor.dir/bench_ablation_executor.cpp.o"
  "CMakeFiles/bench_ablation_executor.dir/bench_ablation_executor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
