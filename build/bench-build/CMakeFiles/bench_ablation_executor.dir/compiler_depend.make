# Empty compiler generated dependencies file for bench_ablation_executor.
# This may be replaced when dependencies are built.
