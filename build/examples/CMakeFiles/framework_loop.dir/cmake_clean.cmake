file(REMOVE_RECURSE
  "CMakeFiles/framework_loop.dir/framework_loop.cpp.o"
  "CMakeFiles/framework_loop.dir/framework_loop.cpp.o.d"
  "framework_loop"
  "framework_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
