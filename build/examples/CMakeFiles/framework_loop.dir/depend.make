# Empty dependencies file for framework_loop.
# This may be replaced when dependencies are built.
