file(REMOVE_RECURSE
  "CMakeFiles/dynamic_flow.dir/dynamic_flow.cpp.o"
  "CMakeFiles/dynamic_flow.dir/dynamic_flow.cpp.o.d"
  "dynamic_flow"
  "dynamic_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
