# Empty compiler generated dependencies file for dynamic_flow.
# This may be replaced when dependencies are built.
