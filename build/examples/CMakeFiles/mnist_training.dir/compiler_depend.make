# Empty compiler generated dependencies file for mnist_training.
# This may be replaced when dependencies are built.
