file(REMOVE_RECURSE
  "CMakeFiles/mnist_training.dir/mnist_training.cpp.o"
  "CMakeFiles/mnist_training.dir/mnist_training.cpp.o.d"
  "mnist_training"
  "mnist_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
