file(REMOVE_RECURSE
  "CMakeFiles/visualization.dir/visualization.cpp.o"
  "CMakeFiles/visualization.dir/visualization.cpp.o.d"
  "visualization"
  "visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
