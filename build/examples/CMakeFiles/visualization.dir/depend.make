# Empty dependencies file for visualization.
# This may be replaced when dependencies are built.
