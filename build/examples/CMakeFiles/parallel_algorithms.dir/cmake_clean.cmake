file(REMOVE_RECURSE
  "CMakeFiles/parallel_algorithms.dir/parallel_algorithms.cpp.o"
  "CMakeFiles/parallel_algorithms.dir/parallel_algorithms.cpp.o.d"
  "parallel_algorithms"
  "parallel_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
