# Empty dependencies file for parallel_algorithms.
# This may be replaced when dependencies are built.
