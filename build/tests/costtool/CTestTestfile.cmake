# CMake generated Testfile for 
# Source directory: /root/repo/tests/costtool
# Build directory: /root/repo/build/tests/costtool
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/costtool/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/costtool/test_loc[1]_include.cmake")
include("/root/repo/build/tests/costtool/test_cyclomatic[1]_include.cmake")
include("/root/repo/build/tests/costtool/test_cocomo[1]_include.cmake")
include("/root/repo/build/tests/costtool/test_tricky_cpp[1]_include.cmake")
