file(REMOVE_RECURSE
  "CMakeFiles/test_tricky_cpp.dir/test_tricky_cpp.cpp.o"
  "CMakeFiles/test_tricky_cpp.dir/test_tricky_cpp.cpp.o.d"
  "test_tricky_cpp"
  "test_tricky_cpp.pdb"
  "test_tricky_cpp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tricky_cpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
