# Empty dependencies file for test_tricky_cpp.
# This may be replaced when dependencies are built.
