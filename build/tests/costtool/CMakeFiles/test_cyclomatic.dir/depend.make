# Empty dependencies file for test_cyclomatic.
# This may be replaced when dependencies are built.
