file(REMOVE_RECURSE
  "CMakeFiles/test_cyclomatic.dir/test_cyclomatic.cpp.o"
  "CMakeFiles/test_cyclomatic.dir/test_cyclomatic.cpp.o.d"
  "test_cyclomatic"
  "test_cyclomatic.pdb"
  "test_cyclomatic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cyclomatic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
