# Empty dependencies file for test_cocomo.
# This may be replaced when dependencies are built.
