file(REMOVE_RECURSE
  "CMakeFiles/test_cocomo.dir/test_cocomo.cpp.o"
  "CMakeFiles/test_cocomo.dir/test_cocomo.cpp.o.d"
  "test_cocomo"
  "test_cocomo.pdb"
  "test_cocomo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cocomo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
