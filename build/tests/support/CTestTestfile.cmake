# CMake generated Testfile for 
# Source directory: /root/repo/tests/support
# Build directory: /root/repo/build/tests/support
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support/test_rng[1]_include.cmake")
include("/root/repo/build/tests/support/test_chrono[1]_include.cmake")
include("/root/repo/build/tests/support/test_table[1]_include.cmake")
include("/root/repo/build/tests/support/test_env[1]_include.cmake")
