# Empty dependencies file for test_chrono.
# This may be replaced when dependencies are built.
