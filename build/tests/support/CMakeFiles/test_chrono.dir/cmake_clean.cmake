file(REMOVE_RECURSE
  "CMakeFiles/test_chrono.dir/test_chrono.cpp.o"
  "CMakeFiles/test_chrono.dir/test_chrono.cpp.o.d"
  "test_chrono"
  "test_chrono.pdb"
  "test_chrono[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chrono.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
