
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_integration.cpp" "tests/integration/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/integration/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timer/CMakeFiles/timer.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nn.dir/DependInfo.cmake"
  "/root/repo/build/src/taskflow/CMakeFiles/taskflow.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
