# CMake generated Testfile for 
# Source directory: /root/repo/tests/taskflow
# Build directory: /root/repo/build/tests/taskflow
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/taskflow/test_basics[1]_include.cmake")
include("/root/repo/build/tests/taskflow/test_wsq[1]_include.cmake")
include("/root/repo/build/tests/taskflow/test_subflow[1]_include.cmake")
include("/root/repo/build/tests/taskflow/test_algorithms[1]_include.cmake")
include("/root/repo/build/tests/taskflow/test_executor[1]_include.cmake")
include("/root/repo/build/tests/taskflow/test_dot[1]_include.cmake")
include("/root/repo/build/tests/taskflow/test_dispatch[1]_include.cmake")
include("/root/repo/build/tests/taskflow/test_observer[1]_include.cmake")
include("/root/repo/build/tests/taskflow/test_framework[1]_include.cmake")
include("/root/repo/build/tests/taskflow/test_executor_matrix[1]_include.cmake")
