# Empty compiler generated dependencies file for test_executor_matrix.
# This may be replaced when dependencies are built.
