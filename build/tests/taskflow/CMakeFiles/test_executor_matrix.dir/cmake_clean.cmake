file(REMOVE_RECURSE
  "CMakeFiles/test_executor_matrix.dir/test_executor_matrix.cpp.o"
  "CMakeFiles/test_executor_matrix.dir/test_executor_matrix.cpp.o.d"
  "test_executor_matrix"
  "test_executor_matrix.pdb"
  "test_executor_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
