file(REMOVE_RECURSE
  "CMakeFiles/test_basics.dir/test_basics.cpp.o"
  "CMakeFiles/test_basics.dir/test_basics.cpp.o.d"
  "test_basics"
  "test_basics.pdb"
  "test_basics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
