# Empty dependencies file for test_basics.
# This may be replaced when dependencies are built.
