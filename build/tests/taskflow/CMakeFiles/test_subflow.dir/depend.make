# Empty dependencies file for test_subflow.
# This may be replaced when dependencies are built.
