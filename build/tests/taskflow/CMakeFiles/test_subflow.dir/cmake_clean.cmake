file(REMOVE_RECURSE
  "CMakeFiles/test_subflow.dir/test_subflow.cpp.o"
  "CMakeFiles/test_subflow.dir/test_subflow.cpp.o.d"
  "test_subflow"
  "test_subflow.pdb"
  "test_subflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
