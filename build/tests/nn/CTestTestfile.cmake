# CMake generated Testfile for 
# Source directory: /root/repo/tests/nn
# Build directory: /root/repo/build/tests/nn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nn/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/nn/test_mnist[1]_include.cmake")
include("/root/repo/build/tests/nn/test_network[1]_include.cmake")
include("/root/repo/build/tests/nn/test_trainers[1]_include.cmake")
