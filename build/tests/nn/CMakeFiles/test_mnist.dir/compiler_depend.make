# Empty compiler generated dependencies file for test_mnist.
# This may be replaced when dependencies are built.
