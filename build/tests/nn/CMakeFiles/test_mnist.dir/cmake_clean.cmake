file(REMOVE_RECURSE
  "CMakeFiles/test_mnist.dir/test_mnist.cpp.o"
  "CMakeFiles/test_mnist.dir/test_mnist.cpp.o.d"
  "test_mnist"
  "test_mnist.pdb"
  "test_mnist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
