# Empty dependencies file for test_mnist.
# This may be replaced when dependencies are built.
