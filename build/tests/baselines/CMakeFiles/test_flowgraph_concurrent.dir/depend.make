# Empty dependencies file for test_flowgraph_concurrent.
# This may be replaced when dependencies are built.
