file(REMOVE_RECURSE
  "CMakeFiles/test_flowgraph_concurrent.dir/test_flowgraph_concurrent.cpp.o"
  "CMakeFiles/test_flowgraph_concurrent.dir/test_flowgraph_concurrent.cpp.o.d"
  "test_flowgraph_concurrent"
  "test_flowgraph_concurrent.pdb"
  "test_flowgraph_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flowgraph_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
