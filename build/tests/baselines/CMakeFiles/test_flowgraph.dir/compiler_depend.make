# Empty compiler generated dependencies file for test_flowgraph.
# This may be replaced when dependencies are built.
