file(REMOVE_RECURSE
  "CMakeFiles/test_flowgraph.dir/test_flowgraph.cpp.o"
  "CMakeFiles/test_flowgraph.dir/test_flowgraph.cpp.o.d"
  "test_flowgraph"
  "test_flowgraph.pdb"
  "test_flowgraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flowgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
