# Empty compiler generated dependencies file for test_shell.
# This may be replaced when dependencies are built.
