file(REMOVE_RECURSE
  "CMakeFiles/test_timing_graph.dir/test_timing_graph.cpp.o"
  "CMakeFiles/test_timing_graph.dir/test_timing_graph.cpp.o.d"
  "test_timing_graph"
  "test_timing_graph.pdb"
  "test_timing_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
