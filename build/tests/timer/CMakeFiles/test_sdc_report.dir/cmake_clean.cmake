file(REMOVE_RECURSE
  "CMakeFiles/test_sdc_report.dir/test_sdc_report.cpp.o"
  "CMakeFiles/test_sdc_report.dir/test_sdc_report.cpp.o.d"
  "test_sdc_report"
  "test_sdc_report.pdb"
  "test_sdc_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
