file(REMOVE_RECURSE
  "CMakeFiles/test_timer_engines.dir/test_timer_engines.cpp.o"
  "CMakeFiles/test_timer_engines.dir/test_timer_engines.cpp.o.d"
  "test_timer_engines"
  "test_timer_engines.pdb"
  "test_timer_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timer_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
