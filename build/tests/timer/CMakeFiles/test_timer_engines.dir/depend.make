# Empty dependencies file for test_timer_engines.
# This may be replaced when dependencies are built.
