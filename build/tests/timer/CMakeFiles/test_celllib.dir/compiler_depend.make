# Empty compiler generated dependencies file for test_celllib.
# This may be replaced when dependencies are built.
