file(REMOVE_RECURSE
  "CMakeFiles/test_celllib.dir/test_celllib.cpp.o"
  "CMakeFiles/test_celllib.dir/test_celllib.cpp.o.d"
  "test_celllib"
  "test_celllib.pdb"
  "test_celllib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_celllib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
