# CMake generated Testfile for 
# Source directory: /root/repo/tests/timer
# Build directory: /root/repo/build/tests/timer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/timer/test_celllib[1]_include.cmake")
include("/root/repo/build/tests/timer/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/timer/test_timing_graph[1]_include.cmake")
include("/root/repo/build/tests/timer/test_propagation[1]_include.cmake")
include("/root/repo/build/tests/timer/test_timer_engines[1]_include.cmake")
include("/root/repo/build/tests/timer/test_liberty[1]_include.cmake")
include("/root/repo/build/tests/timer/test_verilog[1]_include.cmake")
include("/root/repo/build/tests/timer/test_sdc_report[1]_include.cmake")
include("/root/repo/build/tests/timer/test_shell[1]_include.cmake")
include("/root/repo/build/tests/timer/test_engine_sweep[1]_include.cmake")
