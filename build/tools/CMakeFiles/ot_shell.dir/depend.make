# Empty dependencies file for ot_shell.
# This may be replaced when dependencies are built.
