file(REMOVE_RECURSE
  "CMakeFiles/ot_shell.dir/ot_shell.cpp.o"
  "CMakeFiles/ot_shell.dir/ot_shell.cpp.o.d"
  "ot_shell"
  "ot_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
