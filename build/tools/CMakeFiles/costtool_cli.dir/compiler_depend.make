# Empty compiler generated dependencies file for costtool_cli.
# This may be replaced when dependencies are built.
