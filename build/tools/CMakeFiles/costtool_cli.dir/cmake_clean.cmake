file(REMOVE_RECURSE
  "CMakeFiles/costtool_cli.dir/costtool_cli.cpp.o"
  "CMakeFiles/costtool_cli.dir/costtool_cli.cpp.o.d"
  "costtool_cli"
  "costtool_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costtool_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
