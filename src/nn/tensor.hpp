// tensor.hpp - a minimal row-major float matrix and the BLAS-like kernels
// the DNN training experiment needs (gemm, transposed gemms, axpy,
// row-softmax).  Replaces the paper's Eigen 3.3.7 dependency (DESIGN.md
// substitution #5); all matrix operations are encapsulated standalone
// function calls, exactly as the paper describes.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : _rows(rows), _cols(cols), _data(rows * cols, 0.0f) {}

  [[nodiscard]] std::size_t rows() const noexcept { return _rows; }
  [[nodiscard]] std::size_t cols() const noexcept { return _cols; }
  [[nodiscard]] std::size_t size() const noexcept { return _data.size(); }

  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) {
    return _data[r * _cols + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const {
    return _data[r * _cols + c];
  }

  [[nodiscard]] float* data() noexcept { return _data.data(); }
  [[nodiscard]] const float* data() const noexcept { return _data.data(); }
  [[nodiscard]] float* row(std::size_t r) noexcept { return _data.data() + r * _cols; }
  [[nodiscard]] const float* row(std::size_t r) const noexcept {
    return _data.data() + r * _cols;
  }

  void fill(float v) { _data.assign(_data.size(), v); }

  /// Resize without preserving contents.
  void resize(std::size_t rows, std::size_t cols) {
    _rows = rows;
    _cols = cols;
    _data.assign(rows * cols, 0.0f);
  }

  /// Gaussian init with the given standard deviation.
  static Matrix randn(std::size_t rows, std::size_t cols, double stddev,
                      support::Xoshiro256& rng);

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t _rows{0};
  std::size_t _cols{0};
  std::vector<float> _data;
};

/// C = A * B.  C is resized.
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T * B (A is rows x k, used as k x rows).  C is resized.
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B^T.  C is resized.
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c);

/// y += alpha * x (same shape required).
void axpy(float alpha, const Matrix& x, Matrix& y);

/// Add `bias` (length = cols) to every row.
void add_bias(Matrix& m, const std::vector<float>& bias);

/// In-place row-wise softmax.
void softmax_rows(Matrix& m);

/// Index of the maximum entry of row `r`.
[[nodiscard]] std::size_t argmax_row(const Matrix& m, std::size_t r);

}  // namespace nn
