// trainers.hpp - four implementations of the paper's Fig. 11 parallel DNN
// training decomposition:
//
//   * per batch: one forward task F, per-layer gradient tasks G_i pipelined
//     layer by layer, per-layer weight-update tasks U_i (U_{i+1} overlaps
//     G_i);
//   * per epoch: one data-shuffle task E_i_S_j; the number of shuffle
//     storages is capped at twice the thread count so spare threads
//     pre-shuffle future epochs without unbounded memory (paper §IV-C);
//
// written with Cpp-Taskflow, the fg:: FlowGraph baseline, genuine OpenMP
// task-depend clauses (with the hard-coded clause ordering the paper
// describes), and a sequential reference.  All four consume identical
// shuffle permutations and perform identical per-layer arithmetic, so the
// trained weights agree exactly - the cross-trainer equivalence the tests
// assert.
//
// Task accounting matches the paper: a 3-layer net at batch 100 over 60K
// images gives 600*(1+3+3)+1 = 4201 tasks per epoch; the 5-layer net gives
// 6601.
#pragma once

#include <cstdint>

#include "nn/mnist.hpp"
#include "nn/network.hpp"

namespace nn {

struct TrainConfig {
  int epochs{10};
  std::size_t batch_size{100};
  float learning_rate{0.001f};
  std::size_t num_threads{4};
  std::size_t shuffle_storages{0};  // 0 = min(2 * num_threads, epochs)
  std::uint64_t shuffle_seed{0x5u};
};

struct TrainResult {
  double elapsed_ms{0.0};
  float last_epoch_loss{0.0f};  // mean batch loss of the final epoch
  std::size_t total_tasks{0};   // tasks per the paper's accounting
};

/// Tasks per epoch for a given net/batch configuration (paper numbers).
[[nodiscard]] std::size_t tasks_per_epoch(const Mlp& net, const Dataset& ds,
                                          const TrainConfig& cfg);

TrainResult train_sequential(Mlp& net, const Dataset& ds, const TrainConfig& cfg);
TrainResult train_taskflow(Mlp& net, const Dataset& ds, const TrainConfig& cfg);
TrainResult train_flowgraph(Mlp& net, const Dataset& ds, const TrainConfig& cfg);
TrainResult train_openmp(Mlp& net, const Dataset& ds, const TrainConfig& cfg);

}  // namespace nn
