// trainers.cpp - sequential, Cpp-Taskflow, and fg::FlowGraph trainers (the
// OpenMP trainer lives in trainer_omp.cpp, the only nn TU needing OpenMP).
#include "nn/trainers.hpp"

#include <deque>

#include "baselines/flowgraph.hpp"
#include "nn/trainers_common.hpp"
#include "support/chrono.hpp"
#include "taskflow/taskflow.hpp"

namespace nn {

using detail::Storage;

std::size_t tasks_per_epoch(const Mlp& net, const Dataset& ds, const TrainConfig& cfg) {
  return detail::num_batches(ds, cfg) * net.tasks_per_batch() + 1;
}

TrainResult train_sequential(Mlp& net, const Dataset& ds, const TrainConfig& cfg) {
  const std::size_t batches = detail::num_batches(ds, cfg);
  support::Stopwatch sw;

  Storage slot;
  Matrix batch;
  std::vector<int> labels;
  float epoch_loss = 0.0f;

  for (int e = 0; e < cfg.epochs; ++e) {
    detail::shuffle_into(ds, slot, cfg.shuffle_seed, e);
    epoch_loss = 0.0f;
    for (std::size_t b = 0; b < batches; ++b) {
      detail::make_batch(slot, b, cfg.batch_size, batch, labels);
      epoch_loss += net.train_step(batch, labels, cfg.learning_rate);
    }
  }

  TrainResult r;
  r.elapsed_ms = sw.elapsed_ms();
  r.last_epoch_loss = epoch_loss / static_cast<float>(batches);
  r.total_tasks = static_cast<std::size_t>(cfg.epochs) * tasks_per_epoch(net, ds, cfg);
  return r;
}

TrainResult train_taskflow(Mlp& net, const Dataset& ds, const TrainConfig& cfg) {
  const std::size_t batches = detail::num_batches(ds, cfg);
  const std::size_t layers = net.num_layers();
  const std::size_t k = detail::num_storages(cfg);
  const auto epochs = static_cast<std::size_t>(cfg.epochs);

  support::Stopwatch sw;  // includes graph construction, as in the paper

  std::vector<Storage> storages(k);
  Matrix batch;
  std::vector<int> labels;
  float epoch_loss = 0.0f;

  tf::Taskflow taskflow(cfg.num_threads);

  std::vector<tf::Task> shuffle(epochs);
  // Flat task arrays indexed [e * batches + b] and [(e * batches + b) * layers + i].
  std::vector<tf::Task> f_task(epochs * batches);
  std::vector<tf::Task> g_task(epochs * batches * layers);
  std::vector<tf::Task> u_task(epochs * batches * layers);

  const float lr = cfg.learning_rate;
  for (std::size_t e = 0; e < epochs; ++e) {
    const std::size_t slot = e % k;
    shuffle[e] = taskflow.emplace([&ds, &storages, slot, seed = cfg.shuffle_seed,
                                   e] { detail::shuffle_into(ds, storages[slot], seed, static_cast<int>(e)); });

    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t fb = e * batches + b;
      f_task[fb] = taskflow.emplace([&net, &storages, &batch, &labels, &epoch_loss,
                                     slot, b, bs = cfg.batch_size, batches] {
        detail::make_batch(storages[slot], b, bs, batch, labels);
        if (b == 0) epoch_loss = 0.0f;
        epoch_loss += net.forward(batch, labels) / static_cast<float>(batches);
      });
      for (std::size_t i = 0; i < layers; ++i) {
        const std::size_t gi = fb * layers + i;
        g_task[gi] = taskflow.emplace([&net, i] { net.backward_layer(i); });
        u_task[gi] = taskflow.emplace([&net, i, lr] { net.update_layer(i, lr); });
      }
    }
  }

  // Dependencies (Fig. 11).
  for (std::size_t e = 0; e < epochs; ++e) {
    // Storage reuse: shuffle for epoch e waits until epoch e-k stopped
    // reading the slot (its last batch was extracted by the last F task).
    if (e >= k) f_task[(e - k) * batches + (batches - 1)].precede(shuffle[e]);
    shuffle[e].precede(f_task[e * batches]);

    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t fb = e * batches + b;
      // Backward pipeline: F -> G_{L-1} -> ... -> G_0; U_i after G_i.
      f_task[fb].precede(g_task[fb * layers + (layers - 1)]);
      for (std::size_t i = layers; i-- > 0;) {
        if (i > 0) g_task[fb * layers + i].precede(g_task[fb * layers + i - 1]);
        g_task[fb * layers + i].precede(u_task[fb * layers + i]);
      }
      // The next batch's forward waits for every weight update.
      const bool last = (b + 1 == batches) && (e + 1 == epochs);
      if (!last) {
        const std::size_t next_f = (b + 1 < batches) ? fb + 1 : (e + 1) * batches;
        for (std::size_t i = 0; i < layers; ++i) {
          u_task[fb * layers + i].precede(f_task[next_f]);
        }
      }
    }
  }

  taskflow.wait_for_all();

  TrainResult r;
  r.elapsed_ms = sw.elapsed_ms();
  r.last_epoch_loss = epoch_loss;
  r.total_tasks = epochs * tasks_per_epoch(net, ds, cfg);
  return r;
}

TrainResult train_flowgraph(Mlp& net, const Dataset& ds, const TrainConfig& cfg) {
  using FgNode = fg::continue_node<fg::continue_msg>;
  const std::size_t batches = detail::num_batches(ds, cfg);
  const std::size_t layers = net.num_layers();
  const std::size_t k = detail::num_storages(cfg);
  const auto epochs = static_cast<std::size_t>(cfg.epochs);

  fg::task_scheduler_init init(static_cast<int>(cfg.num_threads));

  support::Stopwatch sw;

  std::vector<Storage> storages(k);
  Matrix batch;
  std::vector<int> labels;
  float epoch_loss = 0.0f;

  fg::graph graph;
  std::deque<FgNode> nodes;  // stable addresses for make_edge

  std::vector<FgNode*> shuffle(epochs);
  std::vector<FgNode*> f_node(epochs * batches);
  std::vector<FgNode*> g_node(epochs * batches * layers);
  std::vector<FgNode*> u_node(epochs * batches * layers);

  const float lr = cfg.learning_rate;
  for (std::size_t e = 0; e < epochs; ++e) {
    const std::size_t slot = e % k;
    shuffle[e] = &nodes.emplace_back(graph, [&ds, &storages, slot,
                                             seed = cfg.shuffle_seed,
                                             e](const fg::continue_msg&) {
      detail::shuffle_into(ds, storages[slot], seed, static_cast<int>(e));
    });
    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t fb = e * batches + b;
      f_node[fb] = &nodes.emplace_back(
          graph, [&net, &storages, &batch, &labels, &epoch_loss, slot, b,
                  bs = cfg.batch_size, batches](const fg::continue_msg&) {
            detail::make_batch(storages[slot], b, bs, batch, labels);
            if (b == 0) epoch_loss = 0.0f;
            epoch_loss += net.forward(batch, labels) / static_cast<float>(batches);
          });
      for (std::size_t i = 0; i < layers; ++i) {
        const std::size_t gi = fb * layers + i;
        g_node[gi] = &nodes.emplace_back(
            graph, [&net, i](const fg::continue_msg&) { net.backward_layer(i); });
        u_node[gi] = &nodes.emplace_back(
            graph, [&net, i, lr](const fg::continue_msg&) { net.update_layer(i, lr); });
      }
    }
  }

  for (std::size_t e = 0; e < epochs; ++e) {
    if (e >= k) fg::make_edge(*f_node[(e - k) * batches + (batches - 1)], *shuffle[e]);
    fg::make_edge(*shuffle[e], *f_node[e * batches]);
    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t fb = e * batches + b;
      fg::make_edge(*f_node[fb], *g_node[fb * layers + (layers - 1)]);
      for (std::size_t i = layers; i-- > 0;) {
        if (i > 0) fg::make_edge(*g_node[fb * layers + i], *g_node[fb * layers + i - 1]);
        fg::make_edge(*g_node[fb * layers + i], *u_node[fb * layers + i]);
      }
      const bool last = (b + 1 == batches) && (e + 1 == epochs);
      if (!last) {
        const std::size_t next_f = (b + 1 < batches) ? fb + 1 : (e + 1) * batches;
        for (std::size_t i = 0; i < layers; ++i) {
          fg::make_edge(*u_node[fb * layers + i], *f_node[next_f]);
        }
      }
    }
  }

  // Sources: the first k shuffle nodes (all later ones have predecessors).
  for (std::size_t e = 0; e < std::min(k, epochs); ++e) {
    shuffle[e]->try_put(fg::continue_msg{});
  }
  graph.wait_for_all();

  TrainResult r;
  r.elapsed_ms = sw.elapsed_ms();
  r.last_epoch_loss = epoch_loss;
  r.total_tasks = epochs * tasks_per_epoch(net, ds, cfg);
  return r;
}

}  // namespace nn
