// trainer_omp.cpp - the genuine OpenMP 4.5 task-depend trainer.
//
// OpenMP dependency clauses require a fixed number of depend items per
// pragma and an issue order consistent with sequential execution, so the
// Fig. 11 graph has to be contorted (exactly the engineering friction the
// paper reports for its OpenMP port):
//   * "next forward after all L weight updates" is inexpressible with a
//     fixed clause arity when L varies, so the U_i tasks are chained
//     U_{L-1} -> ... -> U_0 and the next F depends only on U_0 - a
//     hard-coded order that adds false serialization;
//   * every task must be emitted by the single master thread in an order
//     consistent with the sequential program flow.
// The numeric result is still bit-identical to the other trainers.
#include <omp.h>

#include "nn/trainers.hpp"
#include "nn/trainers_common.hpp"
#include "support/chrono.hpp"

namespace nn {

using detail::Storage;

TrainResult train_openmp(Mlp& net, const Dataset& ds, const TrainConfig& cfg) {
  const std::size_t batches = detail::num_batches(ds, cfg);
  const std::size_t layers = net.num_layers();
  const std::size_t k = detail::num_storages(cfg);
  const auto epochs = static_cast<std::size_t>(cfg.epochs);

  omp_set_num_threads(static_cast<int>(cfg.num_threads));

  support::Stopwatch sw;

  std::vector<Storage> storages(k);
  Matrix batch;
  std::vector<int> labels;
  float epoch_loss = 0.0f;

  // Dependency tokens (addresses are what matters, not values).
  std::vector<char> sh_buf(epochs, 0);
  std::vector<char> f_buf(epochs * batches, 0);
  std::vector<char> g_buf(epochs * batches * layers, 0);
  std::vector<char> u_buf(epochs * batches * layers, 0);
  char* sh = sh_buf.data();
  char* ft = f_buf.data();
  char* gt = g_buf.data();
  char* ut = u_buf.data();

  const float lr = cfg.learning_rate;
  const std::size_t bs = cfg.batch_size;
  const std::uint64_t seed = cfg.shuffle_seed;

#pragma omp parallel default(none)                                                   \
    shared(net, ds, storages, batch, labels, epoch_loss, sh, ft, gt, ut)             \
    firstprivate(epochs, batches, layers, k, lr, bs, seed)
  {
#pragma omp single
    {
      for (std::size_t e = 0; e < epochs; ++e) {
        const std::size_t slot = e % k;

        // E_e_S_slot: shuffle into the slot once epoch e-k released it.
        if (e >= k) {
          const std::size_t gate = (e - k) * batches + (batches - 1);
#pragma omp task default(none) shared(ds, storages, sh, ft)                          \
    firstprivate(e, slot, seed, gate) depend(in : ft[gate]) depend(out : sh[e])
          detail::shuffle_into(ds, storages[slot], seed, static_cast<int>(e));
        } else {
#pragma omp task default(none) shared(ds, storages, sh)                              \
    firstprivate(e, slot, seed) depend(out : sh[e])
          detail::shuffle_into(ds, storages[slot], seed, static_cast<int>(e));
        }

        for (std::size_t b = 0; b < batches; ++b) {
          const std::size_t fb = e * batches + b;

          // F task: three hard-coded clause variants depending on position.
          if (b == 0 && e == 0) {
#pragma omp task default(none) shared(net, storages, batch, labels, epoch_loss, sh, ft) \
    firstprivate(slot, b, bs, batches, fb, e) depend(in : sh[e]) depend(out : ft[fb])
            {
              detail::make_batch(storages[slot], b, bs, batch, labels);
              epoch_loss = net.forward(batch, labels) / static_cast<float>(batches);
            }
          } else if (b == 0) {
            const std::size_t prev_u0 = ((e - 1) * batches + (batches - 1)) * layers;
#pragma omp task default(none) shared(net, storages, batch, labels, epoch_loss, sh, ft, ut) \
    firstprivate(slot, b, bs, batches, fb, e, prev_u0) depend(in : sh[e])             \
    depend(in : ut[prev_u0]) depend(out : ft[fb])
            {
              detail::make_batch(storages[slot], b, bs, batch, labels);
              epoch_loss = net.forward(batch, labels) / static_cast<float>(batches);
            }
          } else {
            const std::size_t prev_u0 = (fb - 1) * layers;
#pragma omp task default(none) shared(net, storages, batch, labels, epoch_loss, ft, ut) \
    firstprivate(slot, b, bs, batches, fb, prev_u0) depend(in : ut[prev_u0])          \
    depend(out : ft[fb])
            {
              detail::make_batch(storages[slot], b, bs, batch, labels);
              epoch_loss += net.forward(batch, labels) / static_cast<float>(batches);
            }
          }

          // G tasks, pipelined layer by layer (issue order must follow the
          // sequential flow: L-1 down to 0).
          for (std::size_t i = layers; i-- > 0;) {
            const std::size_t gi = fb * layers + i;
            if (i == layers - 1) {
#pragma omp task default(none) shared(net, ft, gt) firstprivate(i, fb, gi)            \
    depend(in : ft[fb]) depend(out : gt[gi])
              net.backward_layer(i);
            } else {
#pragma omp task default(none) shared(net, gt) firstprivate(i, gi)                    \
    depend(in : gt[gi + 1]) depend(out : gt[gi])
              net.backward_layer(i);
            }
          }

          // U tasks, chained so U_0 finishes last (clause-arity workaround).
          for (std::size_t i = layers; i-- > 0;) {
            const std::size_t gi = fb * layers + i;
            if (i == layers - 1) {
#pragma omp task default(none) shared(net, gt, ut) firstprivate(i, gi, lr)            \
    depend(in : gt[gi]) depend(out : ut[gi])
              net.update_layer(i, lr);
            } else {
#pragma omp task default(none) shared(net, gt, ut) firstprivate(i, gi, lr)            \
    depend(in : gt[gi]) depend(in : ut[gi + 1]) depend(out : ut[gi])
              net.update_layer(i, lr);
            }
          }
        }
      }
    }  // single (implicit taskwait at the end of parallel)
  }

  TrainResult r;
  r.elapsed_ms = sw.elapsed_ms();
  r.last_epoch_loss = epoch_loss;
  r.total_tasks = epochs * tasks_per_epoch(net, ds, cfg);
  return r;
}

}  // namespace nn
