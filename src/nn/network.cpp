#include "nn/network.hpp"

#include <cassert>
#include <cmath>

namespace nn {

namespace {

void sigmoid_inplace(Matrix& m) {
  float* d = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    d[i] = 1.0f / (1.0f + std::exp(-d[i]));
  }
}

}  // namespace

void Dense::init(std::size_t in, std::size_t out, support::Xoshiro256& rng) {
  // Xavier-style scale keeps sigmoid activations in their linear band.
  const double stddev = std::sqrt(2.0 / static_cast<double>(in + out));
  w = Matrix::randn(in, out, stddev, rng);
  b.assign(out, 0.0f);
  dw.resize(in, out);
  db.assign(out, 0.0f);
}

Mlp::Mlp(std::vector<std::size_t> dims, std::uint64_t seed) : _dims(std::move(dims)) {
  assert(_dims.size() >= 2);
  support::Xoshiro256 rng(seed);
  _layers.resize(_dims.size() - 1);
  for (std::size_t i = 0; i + 1 < _dims.size(); ++i) {
    _layers[i].init(_dims[i], _dims[i + 1], rng);
  }
  _acts.resize(_layers.size() + 1);
  _deltas.resize(_layers.size());
}

float Mlp::forward(const Matrix& batch, const std::vector<int>& labels) {
  assert(batch.cols() == _dims.front());
  assert(labels.size() == batch.rows());

  _acts[0] = batch;
  for (std::size_t i = 0; i < _layers.size(); ++i) {
    gemm(_acts[i], _layers[i].w, _acts[i + 1]);
    add_bias(_acts[i + 1], _layers[i].b);
    if (i + 1 < _layers.size()) {
      sigmoid_inplace(_acts[i + 1]);  // hidden layers: sigmoid
    }
  }

  // Softmax + cross-entropy on the final logits; the output delta is
  // (softmax - onehot) / batch, computed here so G_{L-1} can run immediately.
  Matrix& out = _acts.back();
  softmax_rows(out);
  const std::size_t n = out.rows();
  float loss = 0.0f;
  Matrix& delta = _deltas.back();
  delta = out;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto label = static_cast<std::size_t>(labels[r]);
    loss -= std::log(std::max(out(r, label), 1e-12f));
    delta(r, label) -= 1.0f;
  }
  for (std::size_t i = 0; i < delta.size(); ++i) delta.data()[i] *= inv_n;
  return loss * inv_n;
}

void Mlp::backward_layer(std::size_t i) {
  Dense& layer = _layers[i];
  const Matrix& input = _acts[i];
  const Matrix& delta = _deltas[i];

  // dW = X^T * delta; db = column sums of delta.
  gemm_tn(input, delta, layer.dw);
  layer.db.assign(layer.db.size(), 0.0f);
  for (std::size_t r = 0; r < delta.rows(); ++r) {
    const float* row = delta.row(r);
    for (std::size_t c = 0; c < delta.cols(); ++c) layer.db[c] += row[c];
  }

  if (i == 0) return;

  // delta_{i-1} = (delta * W^T) ⊙ sigmoid'(act_i)
  gemm_nt(delta, layer.w, _deltas[i - 1]);
  Matrix& prev = _deltas[i - 1];
  const Matrix& act = _acts[i];
  for (std::size_t k = 0; k < prev.size(); ++k) {
    const float a = act.data()[k];
    prev.data()[k] *= a * (1.0f - a);
  }
}

void Mlp::update_layer(std::size_t i, float lr) {
  Dense& layer = _layers[i];
  axpy(-lr, layer.dw, layer.w);
  for (std::size_t c = 0; c < layer.b.size(); ++c) layer.b[c] -= lr * layer.db[c];
}

float Mlp::train_step(const Matrix& batch, const std::vector<int>& labels, float lr) {
  const float loss = forward(batch, labels);
  for (std::size_t i = _layers.size(); i-- > 0;) backward_layer(i);
  for (std::size_t i = 0; i < _layers.size(); ++i) update_layer(i, lr);
  return loss;
}

float Mlp::accuracy(const Matrix& images, const std::vector<int>& labels) {
  std::vector<int> dummy(images.rows(), 0);
  // Run a forward pass without touching training caches semantics: reuse
  // forward() (labels only affect loss/delta, not the prediction).
  (void)forward(images, dummy);
  const Matrix& out = _acts.back();
  std::size_t correct = 0;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    if (static_cast<int>(argmax_row(out, r)) == labels[r]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(out.rows());
}

}  // namespace nn
