#include "nn/tensor.hpp"

#include <cassert>
#include <cmath>

namespace nn {

Matrix Matrix::randn(std::size_t rows, std::size_t cols, double stddev,
                     support::Xoshiro256& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return m;
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.cols() == b.rows());
  c.resize(a.rows(), b.cols());
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  // ikj loop order: streams through b and c rows (cache-friendly without
  // explicit blocking at these layer sizes).
  for (std::size_t i = 0; i < n; ++i) {
    float* ci = c.row(i);
    const float* ai = a.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = ai[p];
      if (aip == 0.0f) continue;
      const float* bp = b.row(p);
      for (std::size_t j = 0; j < m; ++j) ci[j] += aip * bp[j];
    }
  }
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.rows() == b.rows());
  c.resize(a.cols(), b.cols());
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  for (std::size_t r = 0; r < n; ++r) {
    const float* ar = a.row(r);
    const float* br = b.row(r);
    for (std::size_t i = 0; i < k; ++i) {
      const float ari = ar[i];
      if (ari == 0.0f) continue;
      float* ci = c.row(i);
      for (std::size_t j = 0; j < m; ++j) ci[j] += ari * br[j];
    }
  }
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.cols() == b.cols());
  c.resize(a.rows(), b.rows());
  const std::size_t n = a.rows(), k = a.cols(), m = b.rows();
  for (std::size_t i = 0; i < n; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      const float* bj = b.row(j);
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  float* yd = y.data();
  const float* xd = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

void add_bias(Matrix& m, const std::vector<float>& bias) {
  assert(bias.size() == m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    float mx = row[0];
    for (std::size_t c = 1; c < m.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] *= inv;
  }
}

std::size_t argmax_row(const Matrix& m, std::size_t r) {
  const float* row = m.row(r);
  std::size_t best = 0;
  for (std::size_t c = 1; c < m.cols(); ++c) {
    if (row[c] > row[best]) best = c;
  }
  return best;
}

}  // namespace nn
