// mnist.hpp - the MNIST dataset substrate.
//
// Two sources (DESIGN.md substitution #4):
//  * load_idx(): reads genuine IDX-format files (train-images-idx3-ubyte /
//    train-labels-idx1-ubyte) when the user provides them - so a machine
//    with the real dataset reproduces the experiment verbatim;
//  * make_synthetic(): a deterministic class-conditional generator with the
//    same shape (784-dim images in [0,1], labels 0..9).  Each class has a
//    fixed random template; samples are the template plus noise, so the
//    classification task is learnable and training-loss curves behave.
//
// The paper's experiment measures training *runtime*, which depends only on
// tensor shapes and the task decomposition - both preserved exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace nn {

struct Dataset {
  Matrix images;            // n x 784, values in [0, 1]
  std::vector<int> labels;  // n entries in 0..9

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
};

inline constexpr std::size_t kMnistPixels = 784;
inline constexpr int kMnistClasses = 10;

/// Deterministic synthetic MNIST with `n` samples.
[[nodiscard]] Dataset make_synthetic(std::size_t n, std::uint64_t seed = 1);

/// Load IDX image/label files; throws std::runtime_error on malformed data.
[[nodiscard]] Dataset load_idx(const std::string& images_path,
                               const std::string& labels_path);

/// Convenience: real MNIST from `dir` when both files exist, else synthetic.
[[nodiscard]] Dataset load_or_synthesize(const std::string& dir, std::size_t n,
                                         std::uint64_t seed = 1);

}  // namespace nn
