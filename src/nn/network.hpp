// network.hpp - a sigmoid MLP with softmax-cross-entropy head, decomposed
// so that the paper's Fig. 11 task structure maps one-to-one onto methods:
//
//   forward(batch)      -> the F task of a batch
//   backward_layer(i)   -> the G_i (gradient) task, pipelined layer by layer
//   update_layer(i)     -> the U_i (weight update) task
//
// Architectures: the paper's 3-layer (784x32x32x10) and 5-layer
// (784x64x32x16x8x10) classifiers, plus anything else expressible as a dim
// list.  Given identical shuffles, every trainer (sequential / taskflow /
// flowgraph / OpenMP) performs the same floating-point operations in the
// same order per layer, so trained weights agree bit-for-bit - the property
// the cross-trainer tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace nn {

struct Dense {
  Matrix w;               // in x out
  std::vector<float> b;   // out
  Matrix dw;              // gradient accumulators
  std::vector<float> db;

  void init(std::size_t in, std::size_t out, support::Xoshiro256& rng);
};

class Mlp {
 public:
  /// `dims` = {784, 32, 32, 10} gives the paper's 3-layer classifier.
  Mlp(std::vector<std::size_t> dims, std::uint64_t seed);

  [[nodiscard]] std::size_t num_layers() const noexcept { return _layers.size(); }
  [[nodiscard]] const std::vector<std::size_t>& dims() const noexcept { return _dims; }
  [[nodiscard]] const Dense& layer(std::size_t i) const { return _layers[i]; }

  /// F task: forward the batch, cache activations, compute the softmax
  /// cross-entropy loss and the output-layer delta.  Returns the mean loss.
  float forward(const Matrix& batch, const std::vector<int>& labels);

  /// G_i task: gradient of layer i from the cached forward state; produces
  /// dW_i/db_i and the delta for layer i-1.  Call in order i = L-1 .. 0
  /// (each call depends only on the previous one - the pipeline the
  /// paper's decomposition exploits).
  void backward_layer(std::size_t i);

  /// U_i task: SGD step on layer i; independent of G_j for j < i.
  void update_layer(std::size_t i, float lr);

  /// Convenience sequential reference step (F, all G, all U).
  float train_step(const Matrix& batch, const std::vector<int>& labels, float lr);

  /// Classification accuracy on a dataset slice.
  [[nodiscard]] float accuracy(const Matrix& images, const std::vector<int>& labels);

  /// Paper task accounting: tasks per batch = 1 (F) + L (G) + L (U).
  [[nodiscard]] std::size_t tasks_per_batch() const noexcept {
    return 1 + 2 * _layers.size();
  }

 private:
  std::vector<std::size_t> _dims;
  std::vector<Dense> _layers;

  // Cached forward state (one training batch in flight at a time, as in the
  // paper's decomposition - batches serialize through the weight updates).
  std::vector<Matrix> _acts;    // _acts[i]: input to layer i; back() = output
  std::vector<Matrix> _deltas;  // _deltas[i]: dLoss/dZ_i
  Matrix _scratch;
};

}  // namespace nn
