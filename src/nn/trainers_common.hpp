// trainers_common.hpp - shared plumbing of the four trainers: shuffle
// storages with deterministic per-epoch permutations, batch extraction, and
// config normalization.  Internal header (not part of the public nn:: API).
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "nn/trainers.hpp"
#include "support/rng.hpp"

namespace nn::detail {

/// One shuffle storage slot: a reshuffled copy of the dataset (the paper
/// shuffles data blocks, not just indices - the task has real work).
struct Storage {
  Matrix images;
  std::vector<int> labels;
};

inline std::size_t num_batches(const Dataset& ds, const TrainConfig& cfg) {
  return ds.size() / cfg.batch_size;
}

inline std::size_t num_storages(const TrainConfig& cfg) {
  const std::size_t k =
      cfg.shuffle_storages != 0 ? cfg.shuffle_storages : 2 * cfg.num_threads;
  return std::max<std::size_t>(1, std::min<std::size_t>(k, static_cast<std::size_t>(cfg.epochs)));
}

/// The deterministic permutation of epoch `e` (identical in every trainer).
inline std::vector<std::size_t> epoch_permutation(std::size_t n, std::uint64_t seed,
                                                  int epoch) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  support::Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(epoch + 1)));
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

/// The E_i_S_j task body: reshuffle the dataset into `slot`.
inline void shuffle_into(const Dataset& ds, Storage& slot, std::uint64_t seed, int epoch) {
  const auto perm = epoch_permutation(ds.size(), seed, epoch);
  slot.images.resize(ds.size(), ds.images.cols());
  slot.labels.resize(ds.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    std::copy_n(ds.images.row(perm[i]), ds.images.cols(), slot.images.row(i));
    slot.labels[i] = ds.labels[perm[i]];
  }
}

/// Extract batch `b` from a storage slot into reusable buffers.
inline void make_batch(const Storage& slot, std::size_t b, std::size_t batch_size,
                       Matrix& images, std::vector<int>& labels) {
  images.resize(batch_size, slot.images.cols());
  labels.resize(batch_size);
  const std::size_t base = b * batch_size;
  for (std::size_t r = 0; r < batch_size; ++r) {
    std::copy_n(slot.images.row(base + r), slot.images.cols(), images.row(r));
    labels[r] = slot.labels[base + r];
  }
}

}  // namespace nn::detail
