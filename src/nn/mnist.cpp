#include "nn/mnist.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace nn {

namespace {

std::uint32_t read_be32(std::istream& in) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  if (!in) throw std::runtime_error("idx: truncated header");
  return (static_cast<std::uint32_t>(b[0]) << 24) | (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | static_cast<std::uint32_t>(b[3]);
}

}  // namespace

Dataset make_synthetic(std::size_t n, std::uint64_t seed) {
  Dataset ds;
  ds.images.resize(n, kMnistPixels);
  ds.labels.resize(n);

  // One fixed template per class: a sparse set of bright "stroke" pixels.
  std::vector<Matrix> templates;
  templates.reserve(kMnistClasses);
  support::Xoshiro256 template_rng(seed);
  for (int c = 0; c < kMnistClasses; ++c) {
    Matrix t(1, kMnistPixels);
    for (int stroke = 0; stroke < 60; ++stroke) {
      t(0, template_rng.below(kMnistPixels)) = 1.0f;
    }
    templates.push_back(std::move(t));
  }

  support::Xoshiro256 rng(seed ^ 0x5eed5eedULL);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % kMnistClasses);
    ds.labels[i] = label;
    const Matrix& t = templates[static_cast<std::size_t>(label)];
    float* row = ds.images.row(i);
    for (std::size_t p = 0; p < kMnistPixels; ++p) {
      const float noise = static_cast<float>(rng.normal(0.0, 0.15));
      row[p] = std::clamp(t(0, p) * 0.8f + noise, 0.0f, 1.0f);
    }
  }
  return ds;
}

Dataset load_idx(const std::string& images_path, const std::string& labels_path) {
  std::ifstream img(images_path, std::ios::binary);
  std::ifstream lab(labels_path, std::ios::binary);
  if (!img) throw std::runtime_error("cannot open " + images_path);
  if (!lab) throw std::runtime_error("cannot open " + labels_path);

  if (read_be32(img) != 0x00000803u) throw std::runtime_error("idx: bad image magic");
  const std::uint32_t n_img = read_be32(img);
  const std::uint32_t rows = read_be32(img);
  const std::uint32_t cols = read_be32(img);
  if (rows * cols != kMnistPixels) throw std::runtime_error("idx: not 28x28 images");

  if (read_be32(lab) != 0x00000801u) throw std::runtime_error("idx: bad label magic");
  const std::uint32_t n_lab = read_be32(lab);
  if (n_img != n_lab) throw std::runtime_error("idx: image/label count mismatch");

  Dataset ds;
  ds.images.resize(n_img, kMnistPixels);
  ds.labels.resize(n_img);
  std::vector<unsigned char> buf(kMnistPixels);
  for (std::uint32_t i = 0; i < n_img; ++i) {
    img.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
    if (!img) throw std::runtime_error("idx: truncated image data");
    float* row = ds.images.row(i);
    for (std::size_t p = 0; p < kMnistPixels; ++p) {
      row[p] = static_cast<float>(buf[p]) / 255.0f;
    }
    char c = 0;
    lab.read(&c, 1);
    if (!lab) throw std::runtime_error("idx: truncated label data");
    ds.labels[i] = static_cast<int>(static_cast<unsigned char>(c));
    if (ds.labels[i] >= kMnistClasses) throw std::runtime_error("idx: label out of range");
  }
  return ds;
}

Dataset load_or_synthesize(const std::string& dir, std::size_t n, std::uint64_t seed) {
  namespace fs = std::filesystem;
  const fs::path images = fs::path(dir) / "train-images-idx3-ubyte";
  const fs::path labels = fs::path(dir) / "train-labels-idx1-ubyte";
  if (fs::exists(images) && fs::exists(labels)) {
    Dataset ds = load_idx(images.string(), labels.string());
    if (n == 0 || n >= ds.size()) return ds;
    Dataset out;
    out.images.resize(n, kMnistPixels);
    out.labels.assign(ds.labels.begin(), ds.labels.begin() + static_cast<long>(n));
    for (std::size_t i = 0; i < n; ++i) {
      std::copy_n(ds.images.row(i), kMnistPixels, out.images.row(i));
    }
    return out;
  }
  return make_synthetic(n == 0 ? 60000 : n, seed);
}

}  // namespace nn
