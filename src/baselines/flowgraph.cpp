#include "baselines/flowgraph.hpp"

namespace fg::detail {

namespace {
std::mutex g_pool_mutex;
std::unique_ptr<baselines::ThreadPool> g_pool;
std::size_t g_pool_size = 0;
}  // namespace

baselines::ThreadPool& global_pool() {
  std::scoped_lock lock(g_pool_mutex);
  if (!g_pool) {
    g_pool_size = std::max(1u, std::thread::hardware_concurrency());
    g_pool = std::make_unique<baselines::ThreadPool>(g_pool_size);
  }
  return *g_pool;
}

void set_global_pool_threads(std::size_t n) {
  std::scoped_lock lock(g_pool_mutex);
  if (n == g_pool_size && g_pool) return;
  // Quiesce and replace; callers size the scheduler before building graphs.
  g_pool.reset();
  g_pool_size = n;
  g_pool = std::make_unique<baselines::ThreadPool>(n);
}

std::size_t global_pool_threads() {
  std::scoped_lock lock(g_pool_mutex);
  return g_pool_size;
}

}  // namespace fg::detail
