// threadpool.hpp - a plain shared-queue thread pool.
//
// Used as the scheduling substrate of the fg:: FlowGraph baseline and by
// OpenTimer-v1-style level-synchronous execution.  Deliberately simple:
// one mutex-protected queue, condition-variable parking - the "work
// sharing" end of the design space the paper's Algorithm 1 improves upon.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace baselines {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job for asynchronous execution.
  void submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  [[nodiscard]] std::size_t num_threads() const noexcept { return _threads.size(); }

 private:
  void worker_loop();

  std::mutex _mutex;
  std::condition_variable _cv_work;
  std::condition_variable _cv_idle;
  std::deque<std::function<void()>> _queue;
  std::size_t _busy{0};
  bool _stop{false};
  std::vector<std::thread> _threads;
};

}  // namespace baselines
