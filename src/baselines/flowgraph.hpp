// flowgraph.hpp - fg::, an API-faithful reimplementation of the Intel TBB
// FlowGraph subset used by the paper's listings (Listings 5 and 8).
//
// Intel TBB is not available in this offline environment, so this module is
// the substituted baseline (see DESIGN.md §3.1).  It reproduces both the
// programming model and - intentionally - the overhead structure the paper
// attributes to TBB's flow graph: per-node message machinery (an atomic
// message counter decremented per received continue_msg), a heap-allocated
// body closure submitted per firing, and shared-queue scheduling through a
// global pool configured by fg::task_scheduler_init.
//
//   fg::task_scheduler_init init(fg::task_scheduler_init::default_num_threads());
//   fg::graph g;
//   fg::continue_node<fg::continue_msg> a0(g, [](const fg::continue_msg&){ ... });
//   fg::continue_node<fg::continue_msg> a1(g, [](const fg::continue_msg&){ ... });
//   fg::make_edge(a0, a1);
//   a0.try_put(fg::continue_msg());
//   g.wait_for_all();
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "baselines/threadpool.hpp"

namespace fg {

/// The nominal message type flowing along continuation edges.
struct continue_msg {};

namespace detail {
/// The process-wide scheduler pool (TBB-style global arena).
baselines::ThreadPool& global_pool();
/// Resize the global pool (only takes effect when the size changes).
void set_global_pool_threads(std::size_t n);
std::size_t global_pool_threads();
}  // namespace detail

/// Mirrors tbb::task_scheduler_init: constructing one sizes the global
/// scheduler; default_num_threads() reports the hardware concurrency.
class task_scheduler_init {
 public:
  static int default_num_threads() {
    return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }

  explicit task_scheduler_init(int num_threads = default_num_threads()) {
    detail::set_global_pool_threads(static_cast<std::size_t>(
        num_threads < 1 ? 1 : num_threads));
  }
};

/// A flow graph: tracks in-flight node firings so wait_for_all can block
/// until quiescence.
class graph {
 public:
  graph() = default;
  graph(const graph&) = delete;
  graph& operator=(const graph&) = delete;

  /// Block until every spawned node body (and its message propagation) is
  /// complete.
  void wait_for_all() {
    std::unique_lock lock(_mutex);
    _cv.wait(lock, [&] { return _active.load(std::memory_order_acquire) == 0; });
  }

  // -- internal ------------------------------------------------------------
  void reserve_one() noexcept { _active.fetch_add(1, std::memory_order_relaxed); }
  void release_one() {
    if (_active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::scoped_lock lock(_mutex);
      _cv.notify_all();
    }
  }

 private:
  std::atomic<long> _active{0};
  std::mutex _mutex;
  std::condition_variable _cv;
};

/// A node that fires its body after receiving one continue_msg from each of
/// its predecessors (or from an explicit try_put).  Only the
/// continue_node<continue_msg> instantiation used by the paper is provided.
template <typename Output>
class continue_node {
  static_assert(std::is_same_v<Output, continue_msg>,
                "only continue_node<continue_msg> is supported");

 public:
  using body_type = std::function<void(const continue_msg&)>;

  continue_node(graph& g, body_type body) : _graph(g), _body(std::move(body)) {}

  continue_node(const continue_node&) = delete;
  continue_node& operator=(const continue_node&) = delete;

  /// Deliver one message; fires the body once the message count reaches the
  /// predecessor count.  The counter rearms, so a graph can be re-run.
  void try_put(const continue_msg& msg = continue_msg{}) {
    const int threshold = _num_predecessors == 0 ? 1 : _num_predecessors;
    if (_received.fetch_add(1, std::memory_order_acq_rel) + 1 == threshold) {
      _received.fetch_sub(threshold, std::memory_order_relaxed);
      fire(msg);
    }
  }

  [[nodiscard]] std::size_t num_successors() const noexcept { return _successors.size(); }
  [[nodiscard]] int num_predecessors() const noexcept { return _num_predecessors; }

  template <typename O>
  friend void make_edge(continue_node<O>& from, continue_node<O>& to);

 private:
  void fire(const continue_msg& msg) {
    _graph.reserve_one();
    // One heap-allocated closure per firing, executed on the shared pool -
    // the per-task cost profile of the modelled library.
    detail::global_pool().submit([this, msg] {
      _body(msg);
      {
        // TBB's successor cache is lock-protected so edges may be added
        // concurrently with execution; the per-propagation lock is part of
        // the modelled overhead (and of the thread-safety contract).
        std::scoped_lock lock(_successor_mutex);
        for (continue_node* succ : _successors) succ->try_put(msg);
      }
      _graph.release_one();
    });
  }

  graph& _graph;
  body_type _body;
  mutable std::mutex _successor_mutex;
  std::vector<continue_node*> _successors;
  int _num_predecessors{0};
  std::atomic<int> _received{0};
};

/// Connect `from` -> `to`: `to` will require one more message to fire.
/// Safe to call concurrently with graph execution (as in TBB); the new
/// edge only affects messages sent after insertion.
template <typename O>
void make_edge(continue_node<O>& from, continue_node<O>& to) {
  std::scoped_lock lock(from._successor_mutex);
  from._successors.push_back(&to);
  ++to._num_predecessors;
}

}  // namespace fg
