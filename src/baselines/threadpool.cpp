#include "baselines/threadpool.hpp"

namespace baselines {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  _threads.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    _threads.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(_mutex);
    _stop = true;
  }
  _cv_work.notify_all();
  for (auto& t : _threads) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::scoped_lock lock(_mutex);
    _queue.push_back(std::move(job));
  }
  _cv_work.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(_mutex);
  _cv_idle.wait(lock, [&] { return _queue.empty() && _busy == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(_mutex);
      _cv_work.wait(lock, [&] { return _stop || !_queue.empty(); });
      if (_queue.empty()) return;  // stopping and drained
      job = std::move(_queue.front());
      _queue.pop_front();
      ++_busy;
    }
    job();
    {
      std::scoped_lock lock(_mutex);
      --_busy;
      if (_queue.empty() && _busy == 0) _cv_idle.notify_all();
    }
  }
}

}  // namespace baselines
