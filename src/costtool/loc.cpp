#include "costtool/loc.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "costtool/lexer.hpp"

namespace ct {

LocReport count_loc(std::string_view source) {
  LocReport r;
  const auto classes = classify_lines(source);
  r.physical_lines = static_cast<int>(classes.size());
  for (LineClass c : classes) {
    switch (c) {
      case LineClass::Blank: ++r.blank_lines; break;
      case LineClass::CommentOnly: ++r.comment_lines; break;
      case LineClass::Code: ++r.code_lines; break;
    }
  }
  r.tokens = static_cast<int>(tokenize(source).size());
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

LocReport count_loc_file(const std::string& path) { return count_loc(read_file(path)); }

}  // namespace ct
