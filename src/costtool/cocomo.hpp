// cocomo.hpp - the COCOMO organic-mode effort model, as used by SLOCCount
// to produce the Effort / Dev / Cost columns of paper Table II.
#pragma once

namespace ct {

struct CocomoEstimate {
  double effort_person_months{0.0};
  double effort_person_years{0.0};
  double schedule_months{0.0};
  double developers{0.0};  // effort / schedule
  double cost_usd{0.0};
};

struct CocomoParams {
  // SLOCCount defaults (organic mode).
  double effort_factor{2.4};    // person-months = factor * KLOC^exponent
  double effort_exponent{1.05};
  double schedule_factor{2.5};  // months = factor * effort^exponent
  double schedule_exponent{0.38};
  double salary_usd{56286.0};   // the paper's average salary
  double overhead{2.4};         // SLOCCount's default overhead multiplier
};

/// Estimate development effort/schedule/cost for `sloc` source lines.
[[nodiscard]] CocomoEstimate cocomo_organic(int sloc, const CocomoParams& params = {});

}  // namespace ct
