// analyze.hpp - convenience aggregation of the cost tools over files and
// file sets (the granularity at which the paper reports Tables I-III).
#pragma once

#include <string>
#include <vector>

#include "costtool/cocomo.hpp"
#include "costtool/cyclomatic.hpp"
#include "costtool/loc.hpp"

namespace ct {

struct SourceReport {
  LocReport loc;
  CcReport cc;
};

/// Full analysis of one source string.
[[nodiscard]] SourceReport analyze_source(std::string_view source);

/// Full analysis of one file (throws std::runtime_error when unreadable).
[[nodiscard]] SourceReport analyze_file(const std::string& path);

struct ProjectReport {
  int files{0};
  int code_lines{0};       // summed LOC
  int tokens{0};
  int total_cyclomatic{0};
  int max_cyclomatic{0};   // MCC over all functions of all files
  CocomoEstimate cocomo;   // organic-mode estimate over the summed LOC
};

/// Analyze a set of files and aggregate (paper Table II granularity).
[[nodiscard]] ProjectReport analyze_files(const std::vector<std::string>& paths,
                                          const CocomoParams& params = {});

}  // namespace ct
