// loc.hpp - source-lines-of-code counting (SLOCCount stand-in, paper
// Tables I-III).
#pragma once

#include <string>
#include <string_view>

namespace ct {

struct LocReport {
  int physical_lines{0};  // all lines
  int blank_lines{0};
  int comment_lines{0};   // lines containing only comment text
  int code_lines{0};      // "LOC": lines with at least one code token
  int tokens{0};          // non-comment token count (paper's listing metric)
};

/// Count LOC metrics of a source string.
[[nodiscard]] LocReport count_loc(std::string_view source);

/// Count LOC metrics of a file; throws std::runtime_error when unreadable.
[[nodiscard]] LocReport count_loc_file(const std::string& path);

/// Read a whole file into a string; throws std::runtime_error on failure.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace ct
