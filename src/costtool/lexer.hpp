// lexer.hpp - a C/C++ token scanner for the software-cost tools (ct::).
//
// This is the shared front end of the LOC counter (SLOCCount stand-in) and
// the cyclomatic-complexity analyzer (Lizard stand-in) that regenerate the
// paper's Tables I-III.  It handles line/block comments, string and
// character literals (including raw strings), preprocessor lines, and
// multi-character operators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ct {

enum class TokenKind {
  Identifier,     // identifiers and keywords
  Number,         // numeric literals
  String,         // string/char literal (one token per literal)
  Punct,          // operators and punctuation, longest-match
  Preprocessor,   // any token inside a preprocessor directive line
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based source line

  bool operator==(const Token&) const = default;
};

/// Scan `source` into a token stream.  Comments are consumed (they produce
/// no tokens); tokens on a preprocessor line are all tagged Preprocessor so
/// downstream analyses can exclude them (e.g. `#if` must not count toward
/// cyclomatic complexity).
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

/// Per-line classification used by LOC counting.
enum class LineClass {
  Blank,        // only whitespace
  CommentOnly,  // only comment text (and whitespace)
  Code,         // contains at least one code or preprocessor token
};

/// Classify every physical line of `source` (index 0 = line 1).
[[nodiscard]] std::vector<LineClass> classify_lines(std::string_view source);

}  // namespace ct
