#include "costtool/cyclomatic.hpp"

#include <algorithm>
#include <array>
#include <string_view>

#include "costtool/lexer.hpp"
#include "costtool/loc.hpp"

namespace ct {

namespace {

constexpr std::array<std::string_view, 16> kNonFunctionKeywords = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "new", "delete", "throw", "case", "do", "else", "static_assert", "decltype"};

constexpr std::array<std::string_view, 7> kQualifiers = {
    "const", "noexcept", "override", "final", "mutable", "try", "requires"};

bool is_text(const Token& t, std::string_view s) { return t.text == s; }

bool is_decision(const Token& t) {
  if (t.kind == TokenKind::Identifier) {
    return t.text == "if" || t.text == "for" || t.text == "while" ||
           t.text == "case" || t.text == "catch" || t.text == "and" || t.text == "or";
  }
  if (t.kind == TokenKind::Punct) {
    return t.text == "&&" || t.text == "||" || t.text == "?";
  }
  return false;
}

class Analyzer {
 public:
  explicit Analyzer(std::vector<Token> tokens) : _toks(std::move(tokens)) {}

  CcReport run() {
    while (_i < _toks.size()) step();
    CcReport r;
    r.functions = std::move(_funcs);
    for (const auto& f : r.functions) {
      r.file_cyclomatic += f.cyclomatic;
      r.max_cyclomatic = std::max(r.max_cyclomatic, f.cyclomatic);
    }
    return r;
  }

 private:
  struct Frame {
    bool is_function;
  };

  [[nodiscard]] const Token& tok(std::size_t i) const { return _toks[i]; }
  [[nodiscard]] bool in_function() const { return !_active.empty(); }

  // Advance `j` past a balanced (...) starting at an opening parenthesis.
  // Returns one past the matching closer, or _toks.size() on imbalance.
  std::size_t skip_parens(std::size_t j) const {
    int depth = 0;
    for (; j < _toks.size(); ++j) {
      if (is_text(tok(j), "(")) ++depth;
      else if (is_text(tok(j), ")")) {
        if (--depth == 0) return j + 1;
      }
    }
    return j;
  }

  std::size_t skip_braces(std::size_t j) const {
    int depth = 0;
    for (; j < _toks.size(); ++j) {
      if (is_text(tok(j), "{")) ++depth;
      else if (is_text(tok(j), "}")) {
        if (--depth == 0) return j + 1;
      }
    }
    return j;
  }

  // After a candidate parameter list: skip trailing qualifiers
  // (const/noexcept/&/&&/-> type/...).  Returns the index of the terminator
  // token ('{', ':', ';', '=', ',', ...).
  std::size_t skip_qualifiers(std::size_t j) const {
    while (j < _toks.size()) {
      const Token& t = tok(j);
      if (t.kind == TokenKind::Identifier &&
          std::find(kQualifiers.begin(), kQualifiers.end(), t.text) !=
              kQualifiers.end()) {
        ++j;
        if (j < _toks.size() && is_text(tok(j), "(")) j = skip_parens(j);
        continue;
      }
      if (is_text(t, "&") || is_text(t, "&&")) {
        ++j;
        continue;
      }
      if (is_text(t, "->")) {
        // Trailing return type: consume until '{' / ';' / '=' at depth 0.
        ++j;
        int angle = 0, paren = 0;
        while (j < _toks.size()) {
          const Token& u = tok(j);
          if (is_text(u, "<")) ++angle;
          else if (is_text(u, ">")) angle = std::max(0, angle - 1);
          else if (is_text(u, "(")) ++paren;
          else if (is_text(u, ")")) --paren;
          else if (angle == 0 && paren == 0 &&
                   (is_text(u, "{") || is_text(u, ";") || is_text(u, "="))) {
            break;
          }
          ++j;
        }
        continue;
      }
      break;
    }
    return j;
  }

  // Parse a constructor member-initializer list starting at ':'; returns the
  // index of the '{' opening the body, or npos-like _toks.size() on failure.
  std::size_t skip_member_init(std::size_t j) const {
    ++j;  // ':'
    while (j < _toks.size()) {
      // Qualified initializer name (Base<T>::member etc.).
      bool saw_name = false;
      while (j < _toks.size()) {
        const Token& t = tok(j);
        if (t.kind == TokenKind::Identifier || is_text(t, "::")) {
          saw_name = true;
          ++j;
        } else if (is_text(t, "<")) {
          int depth = 0;
          while (j < _toks.size()) {
            if (is_text(tok(j), "<")) ++depth;
            else if (is_text(tok(j), ">")) {
              if (--depth == 0) {
                ++j;
                break;
              }
            }
            ++j;
          }
        } else {
          break;
        }
      }
      if (!saw_name || j >= _toks.size()) return _toks.size();
      if (is_text(tok(j), "(")) j = skip_parens(j);
      else if (is_text(tok(j), "{")) j = skip_braces(j);
      else return _toks.size();
      if (j < _toks.size() && is_text(tok(j), ",")) {
        ++j;
        continue;
      }
      break;
    }
    return (j < _toks.size() && is_text(tok(j), "{")) ? j : _toks.size();
  }

  void step() {
    const Token& t = tok(_i);

    if (is_text(t, "{")) {
      _scopes.push_back(Frame{_pending_function});
      if (_pending_function) {
        _active.push_back(_pending_index);
        _pending_function = false;
      }
      ++_i;
      return;
    }
    if (is_text(t, "}")) {
      if (!_scopes.empty()) {
        if (_scopes.back().is_function) _active.pop_back();
        _scopes.pop_back();
      }
      ++_i;
      return;
    }

    if (in_function()) {
      FunctionReport& f = _funcs[_active.back()];
      ++f.tokens;
      if (is_decision(t)) ++f.cyclomatic;
      ++_i;
      return;
    }

    // Function-definition detection (outside any function body).
    std::size_t params = 0;  // index of the parameter-list '('
    if (t.kind == TokenKind::Identifier && t.text == "operator") {
      // Operator overloads: `operator<symbol>(...)`, `operator()(...)`,
      // `operator new(...)`, conversion operators etc.
      std::size_t j = _i + 1;
      if (j + 1 < _toks.size() && is_text(tok(j), "(") && is_text(tok(j + 1), ")")) {
        j += 2;  // operator()
      } else {
        while (j < _toks.size() && !is_text(tok(j), "(") &&
               (tok(j).kind == TokenKind::Punct ||
                tok(j).kind == TokenKind::Identifier)) {
          ++j;
        }
      }
      if (j < _toks.size() && is_text(tok(j), "(")) params = j;
    } else if (t.kind == TokenKind::Identifier && _i + 1 < _toks.size() &&
               is_text(tok(_i + 1), "(") &&
               std::find(kNonFunctionKeywords.begin(), kNonFunctionKeywords.end(),
                         t.text) == kNonFunctionKeywords.end()) {
      params = _i + 1;
    }
    if (params != 0) {
      const std::size_t after_params = skip_parens(params);
      std::size_t j = skip_qualifiers(after_params);
      if (j < _toks.size() && is_text(tok(j), ":")) j = skip_member_init(j);
      if (j < _toks.size() && is_text(tok(j), "{")) {
        _pending_function = true;
        _pending_index = _funcs.size();
        FunctionReport fr;
        fr.name = t.text;
        fr.start_line = t.line;
        _funcs.push_back(std::move(fr));
        _i = j;  // jump to the body '{'; step() pushes the frame next
        return;
      }
    }
    ++_i;
  }

  std::vector<Token> _toks;
  std::size_t _i{0};
  std::vector<Frame> _scopes;
  std::vector<std::size_t> _active;  // stack of active function indices
  std::vector<FunctionReport> _funcs;
  bool _pending_function{false};
  std::size_t _pending_index{0};
};

}  // namespace

CcReport analyze_cyclomatic(std::string_view source) {
  auto tokens = tokenize(source);
  std::erase_if(tokens, [](const Token& t) { return t.kind == TokenKind::Preprocessor; });
  return Analyzer(std::move(tokens)).run();
}

CcReport analyze_cyclomatic_file(const std::string& path) {
  return analyze_cyclomatic(read_file(path));
}

}  // namespace ct
