#include "costtool/lexer.hpp"

#include <algorithm>
#include <cctype>

namespace ct {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuation, longest first so longest-match wins.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>",                          // 3 chars
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##",
};

struct Scanner {
  std::string_view src;
  std::size_t pos{0};
  int line{1};
  bool in_preprocessor{false};
  std::vector<Token> tokens;

  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos + ahead < src.size() ? src[pos + ahead] : '\0';
  }

  void advance() {
    if (src[pos] == '\n') {
      ++line;
      in_preprocessor = false;
    }
    ++pos;
  }

  void emit(TokenKind kind, std::size_t begin) {
    tokens.push_back(Token{in_preprocessor ? TokenKind::Preprocessor : kind,
                           std::string(src.substr(begin, pos - begin)), line});
  }

  void skip_line_comment() {
    while (pos < src.size() && src[pos] != '\n') ++pos;
  }

  void skip_block_comment() {
    advance();  // '/'
    advance();  // '*'
    while (pos < src.size()) {
      if (peek() == '*' && peek(1) == '/') {
        advance();
        advance();
        return;
      }
      advance();
    }
  }

  void scan_string(char quote) {
    const std::size_t begin = pos;
    advance();  // opening quote
    while (pos < src.size() && src[pos] != quote) {
      if (src[pos] == '\\' && pos + 1 < src.size()) advance();
      advance();
    }
    if (pos < src.size()) advance();  // closing quote
    emit(TokenKind::String, begin);
  }

  void scan_raw_string() {
    const std::size_t begin = pos;
    pos += 2;  // R"
    std::string delim;
    while (pos < src.size() && src[pos] != '(') delim.push_back(src[pos++]);
    const std::string closer = ")" + delim + "\"";
    while (pos < src.size() && src.substr(pos, closer.size()) != closer) advance();
    pos = std::min(src.size(), pos + closer.size());
    emit(TokenKind::String, begin);
  }

  void run() {
    while (pos < src.size()) {
      const char c = peek();
      if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        // Line continuation keeps a preprocessor directive alive.
        advance();
        continue;
      }
      if (c == '\\' && peek(1) == '\n') {
        const bool keep = in_preprocessor;
        advance();
        advance();
        in_preprocessor = keep;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (c == '#') {
        in_preprocessor = true;
        const std::size_t begin = pos;
        advance();
        emit(TokenKind::Punct, begin);
        continue;
      }
      if (c == 'R' && peek(1) == '"') {
        scan_raw_string();
        continue;
      }
      if (c == '"' || c == '\'') {
        scan_string(c);
        continue;
      }
      if (is_ident_start(c)) {
        const std::size_t begin = pos;
        while (pos < src.size() && is_ident_char(src[pos])) ++pos;
        emit(TokenKind::Identifier, begin);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        const std::size_t begin = pos;
        while (pos < src.size() &&
               (is_ident_char(src[pos]) || src[pos] == '.' ||
                ((src[pos] == '+' || src[pos] == '-') && pos > begin &&
                 (src[pos - 1] == 'e' || src[pos - 1] == 'E' || src[pos - 1] == 'p' ||
                  src[pos - 1] == 'P')))) {
          ++pos;
        }
        emit(TokenKind::Number, begin);
        continue;
      }
      // Punctuation: longest match over the multi-char table.
      {
        const std::size_t begin = pos;
        bool matched = false;
        for (std::string_view p : kPuncts) {
          if (src.substr(pos, p.size()) == p) {
            pos += p.size();
            matched = true;
            break;
          }
        }
        if (!matched) ++pos;
        emit(TokenKind::Punct, begin);
      }
    }
  }
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  Scanner s{source};
  s.run();
  return std::move(s.tokens);
}

std::vector<LineClass> classify_lines(std::string_view source) {
  // Count physical lines first.
  std::size_t num_lines = 1;
  for (char c : source) {
    if (c == '\n') ++num_lines;
  }
  if (!source.empty() && source.back() == '\n') --num_lines;
  if (source.empty()) num_lines = 0;

  std::vector<LineClass> classes(num_lines, LineClass::Blank);

  // Mark comment-only candidates: any line with a non-space character
  // becomes CommentOnly; token lines upgrade to Code below.
  std::size_t line = 0;
  bool line_has_ink = false;
  for (char c : source) {
    if (c == '\n') {
      if (line < classes.size() && line_has_ink) classes[line] = LineClass::CommentOnly;
      ++line;
      line_has_ink = false;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) line_has_ink = true;
  }
  if (line < classes.size() && line_has_ink) classes[line] = LineClass::CommentOnly;

  for (const Token& t : tokenize(source)) {
    const auto idx = static_cast<std::size_t>(t.line - 1);
    if (idx < classes.size()) classes[idx] = LineClass::Code;
  }
  return classes;
}

}  // namespace ct
