// cyclomatic.hpp - per-function cyclomatic complexity (Lizard stand-in,
// paper Tables I-III; the MCC column of Table II is the maximum complexity
// over the functions of a file set).
//
// Complexity follows Lizard's convention: each function starts at 1 and
// gains one per decision token: if, for, while, case, catch, &&, ||, ?,
// and (in our dialect) `and` / `or`.  Preprocessor lines are excluded.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ct {

struct FunctionReport {
  std::string name;   // best-effort extracted function name
  int start_line{0};
  int cyclomatic{1};
  int tokens{0};      // tokens inside the function body
};

struct CcReport {
  std::vector<FunctionReport> functions;
  int file_cyclomatic{0};  // sum over functions (a file with none reports 0)
  int max_cyclomatic{0};   // MCC: maximum over functions
};

/// Analyze per-function cyclomatic complexity of a source string.
[[nodiscard]] CcReport analyze_cyclomatic(std::string_view source);

/// Analyze a file; throws std::runtime_error when unreadable.
[[nodiscard]] CcReport analyze_cyclomatic_file(const std::string& path);

}  // namespace ct
