#include "costtool/cocomo.hpp"

#include <cmath>

namespace ct {

CocomoEstimate cocomo_organic(int sloc, const CocomoParams& p) {
  CocomoEstimate e;
  if (sloc <= 0) return e;
  const double kloc = static_cast<double>(sloc) / 1000.0;
  e.effort_person_months = p.effort_factor * std::pow(kloc, p.effort_exponent);
  e.effort_person_years = e.effort_person_months / 12.0;
  e.schedule_months = p.schedule_factor * std::pow(e.effort_person_months, p.schedule_exponent);
  e.developers = e.effort_person_months / e.schedule_months;
  e.cost_usd = p.salary_usd * e.effort_person_years * p.overhead;
  return e;
}

}  // namespace ct
