#include "costtool/analyze.hpp"

#include <algorithm>

namespace ct {

SourceReport analyze_source(std::string_view source) {
  return SourceReport{count_loc(source), analyze_cyclomatic(source)};
}

SourceReport analyze_file(const std::string& path) {
  const std::string text = read_file(path);
  return analyze_source(text);
}

ProjectReport analyze_files(const std::vector<std::string>& paths,
                            const CocomoParams& params) {
  ProjectReport pr;
  for (const auto& path : paths) {
    const auto r = analyze_file(path);
    ++pr.files;
    pr.code_lines += r.loc.code_lines;
    pr.tokens += r.loc.tokens;
    pr.total_cyclomatic += r.cc.file_cyclomatic;
    pr.max_cyclomatic = std::max(pr.max_cyclomatic, r.cc.max_cyclomatic);
  }
  pr.cocomo = cocomo_organic(pr.code_lines, params);
  return pr;
}

}  // namespace ct
