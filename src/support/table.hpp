// table.hpp - fixed-width table printing for the benchmark harnesses.
//
// Every figure/table reproduction prints both a human-readable aligned table
// and machine-readable CSV lines (prefixed "CSV,") so plots can be
// regenerated from captured output.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; the row must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render the aligned table to `os`.
  void print(std::ostream& os) const;

  /// Render CSV lines ("CSV,<h1>,<h2>,..." then one line per row) to `os`.
  void print_csv(std::ostream& os, const std::string& tag) const;

  [[nodiscard]] std::size_t num_rows() const { return _rows.size(); }

 private:
  std::vector<std::string> _headers;
  std::vector<std::vector<std::string>> _rows;
};

/// Format a double with the given precision (fixed notation).
[[nodiscard]] std::string fmt(double value, int precision = 2);

/// Format an integer with thousands separators for readability.
[[nodiscard]] std::string fmt_count(long long value);

/// Print a section banner used by all bench mains.
void banner(std::ostream& os, const std::string& title);

}  // namespace support
