// chrono.hpp - wall-clock timing and small summary statistics used by the
// benchmark harnesses to report paper-style runtime rows.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace support {

/// Simple steady-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : _start(clock::now()) {}

  void reset() { _start = clock::now(); }

  /// Elapsed time in milliseconds since construction or last reset().
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - _start).count();
  }

  /// Elapsed time in seconds.
  [[nodiscard]] double elapsed_s() const { return elapsed_ms() / 1000.0; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point _start;
};

/// Summary statistics over a sample of measurements.
struct Stats {
  double mean{0.0};
  double median{0.0};
  double stddev{0.0};
  double min{0.0};
  double max{0.0};
  std::size_t n{0};
};

/// Compute summary statistics; the input is copied because median needs a
/// partial sort.
[[nodiscard]] Stats summarize(std::vector<double> samples);

/// Run `fn` `repeats` times and return the minimum elapsed milliseconds
/// (minimum-of-N is the conventional noise filter for microbenchmarks).
template <typename F>
double time_min_ms(F&& fn, int repeats = 3) {
  double best = -1.0;
  for (int i = 0; i < repeats; ++i) {
    Stopwatch sw;
    fn();
    const double t = sw.elapsed_ms();
    if (best < 0.0 || t < best) best = t;
  }
  return best;
}

}  // namespace support
