// cpu_topology.hpp - machine package/NUMA/SMT layout discovery and thread
// pinning, the substrate of the locality-aware scheduler (DESIGN.md §14).
//
// Discovery reads the Linux sysfs tree (/sys/devices/system/cpu and
// /sys/devices/system/node); the root is a parameter so tests can point it
// at a fabricated fixture tree.  On any platform - or container - where the
// tree is absent or unreadable, discovery degrades to a *flat* single-node
// topology of hardware_concurrency CPUs (fallback() == true), so callers
// never need a platform branch: every query keeps working, it just reports
// one node and no SMT sharing.
//
// Locality between two CPUs is expressed as a small *tier*:
//   tier 0 - same physical core (SMT siblings, shared L1/L2)
//   tier 1 - same NUMA node (shared LLC / local memory)
//   tier 2 - remote node
// The work-stealing executor orders steal victims near-first by these tiers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace support {

/// Where a worker's CPUs should come from when pinning (the `numa_policy`
/// knob of tf::WorkStealingOptions).
enum class NumaPolicy {
  /// Fill one node's cores before touching the next (dense co-location:
  /// maximal cache/memory sharing, the default for graph workloads whose
  /// arena slabs live on one node).
  compact,
  /// Round-robin workers across nodes (maximal aggregate memory bandwidth).
  scatter,
};

/// One online logical CPU and its position in the machine hierarchy.
struct CpuInfo {
  int cpu{-1};      ///< logical CPU id (the sched_setaffinity index)
  int core{-1};     ///< physical core id, unique within its package
  int package{0};   ///< physical package (socket) id
  int node{0};      ///< NUMA node id
};

class CpuTopology {
 public:
  /// Locality tiers (see file comment).  kTiers bounds per-tier arrays.
  static constexpr int kSameCore = 0;
  static constexpr int kSameNode = 1;
  static constexpr int kRemote = 2;
  static constexpr int kTiers = 3;

  /// Discover the machine layout from `sysfs_root` (default "/sys"; tests
  /// substitute a fixture tree).  Never throws: any missing or malformed
  /// file degrades that attribute (missing node dirs -> one node, missing
  /// core ids -> one core per CPU), and an unusable tree degrades to
  /// flat(hardware_concurrency).
  [[nodiscard]] static CpuTopology discover(const std::string& sysfs_root = "/sys");

  /// The graceful single-node fallback shape: `num_cpus` CPUs, each its own
  /// core, one package, one node.
  [[nodiscard]] static CpuTopology flat(std::size_t num_cpus);

  [[nodiscard]] const std::vector<CpuInfo>& cpus() const noexcept { return _cpus; }
  [[nodiscard]] std::size_t num_cpus() const noexcept { return _cpus.size(); }
  [[nodiscard]] int num_nodes() const noexcept { return _num_nodes; }
  [[nodiscard]] int num_cores() const noexcept { return _num_cores; }
  /// True when sysfs discovery was impossible and flat() shaped this object.
  [[nodiscard]] bool fallback() const noexcept { return _fallback; }

  /// Locality tier between two logical CPUs (indices into cpus(), not CPU
  /// ids); out-of-range indices are kRemote.
  [[nodiscard]] int tier(std::size_t a, std::size_t b) const noexcept;

  /// Assign `workers` workers to CPUs of this topology under `policy`;
  /// returns one index into cpus() per worker.  More workers than CPUs wrap
  /// around (oversubscription shares CPUs in the same policy order).
  [[nodiscard]] std::vector<std::size_t> assign(std::size_t workers,
                                                NumaPolicy policy) const;

 private:
  std::vector<CpuInfo> _cpus;
  int _num_nodes{1};
  int _num_cores{0};
  bool _fallback{false};

  void finalize_counts();
};

/// Parse a sysfs CPU list ("0-3,5,8-9") into ids; malformed chunks are
/// skipped.  Exposed for the fixture tests.
[[nodiscard]] std::vector<int> parse_cpu_list(const std::string& text);

/// Pin the calling thread to the single logical CPU `cpu`.  Returns true on
/// success; always false on platforms without sched_setaffinity.
bool pin_current_thread(int cpu) noexcept;

/// The calling thread's current affinity mask as a CPU id list; empty when
/// the platform cannot report it.
[[nodiscard]] std::vector<int> current_affinity();

}  // namespace support
