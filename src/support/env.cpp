#include "support/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace support {

long long env_int(const char* name, long long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

double repro_scale() { return env_double("REPRO_SCALE", 1.0); }

unsigned repro_max_threads() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const long long def = std::max(4u, hw);
  return static_cast<unsigned>(env_int("REPRO_MAX_THREADS", def));
}

int repro_repeats() {
  return static_cast<int>(env_int("REPRO_REPEATS", 3));
}

bool repro_cycle_check() { return env_int("REPRO_CYCLE_CHECK", 1) != 0; }

int repro_fault_iters() {
  return static_cast<int>(env_int("REPRO_FAULT_ITERS", 30));
}

unsigned long long repro_fault_seed() {
  return static_cast<unsigned long long>(env_int("REPRO_FAULT_SEED", 42));
}

long long repro_soak_iters() {
  return std::max(1ll, env_int("REPRO_SOAK_ITERS", 400));
}

}  // namespace support
