// rng.hpp - deterministic pseudo-random number generation for the repro.
//
// All workload generators (random task graphs, synthetic circuits, synthetic
// MNIST) must be reproducible across runs and platforms, so we avoid
// std::mt19937 seeding subtleties and implement splitmix64 (for seeding) and
// xoshiro256** (for streams).  Both are public-domain algorithms by
// Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace support {

/// Splitmix64: used to expand a single 64-bit seed into stream state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : _state(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (_state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t _state;
};

/// Xoshiro256**: the general-purpose generator used by every synthetic
/// workload in this repository.  Satisfies UniformRandomBitGenerator so it
/// can be plugged into <random> distributions and std::shuffle.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : _s) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection-free variant is overkill here; the
    // simple modulo bias is < 2^-40 for all n used by the generators.
    return operator()() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// true with probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (cached second value intentionally not
  /// kept: determinism across call sites matters more than one transcendental).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> _s{};
};

}  // namespace support
