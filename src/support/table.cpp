#include "support/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace support {

Table::Table(std::vector<std::string> headers) : _headers(std::move(headers)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == _headers.size());
  _rows.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(_headers.size());
  for (std::size_t c = 0; c < _headers.size(); ++c) widths[c] = _headers[c].size();
  for (const auto& row : _rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << std::setw(static_cast<int>(widths[c])) << std::left << row[c] << " |";
    os << "\n";
  };

  print_row(_headers);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : _rows) print_row(row);
}

void Table::print_csv(std::ostream& os, const std::string& tag) const {
  auto emit = [&](const std::vector<std::string>& row) {
    os << "CSV," << tag;
    for (const auto& cell : row) os << "," << cell;
    os << "\n";
  };
  emit(_headers);
  for (const auto& row : _rows) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_count(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int cnt = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (cnt != 0 && cnt % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++cnt;
  }
  if (value < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

void banner(std::ostream& os, const std::string& title) {
  const std::size_t pad = title.size() < 72 ? 76 - title.size() : 4;
  os << "\n== " << title << " " << std::string(pad, '=') << "\n\n";
}

}  // namespace support
