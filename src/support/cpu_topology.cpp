#include "support/cpu_topology.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace support {

namespace {

// Read a whole small sysfs file; empty string on any failure (missing file,
// unreadable, ...) - absence is a legal degraded state, never an error.
std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Read a sysfs integer attribute; `fallback` when missing or malformed.
int read_int(const std::string& path, int fallback) {
  const std::string text = read_file(path);
  if (text.empty()) return fallback;
  try {
    return std::stoi(text);
  } catch (...) {
    return fallback;
  }
}

}  // namespace

std::vector<int> parse_cpu_list(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string chunk;
  while (std::getline(ss, chunk, ',')) {
    // Trim whitespace/newlines around the chunk.
    const auto first = chunk.find_first_not_of(" \t\n\r");
    if (first == std::string::npos) continue;
    const auto last = chunk.find_last_not_of(" \t\n\r");
    chunk = chunk.substr(first, last - first + 1);
    try {
      const auto dash = chunk.find('-');
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(chunk));
      } else {
        const int lo = std::stoi(chunk.substr(0, dash));
        const int hi = std::stoi(chunk.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      // Malformed chunk: skip it, keep what parsed.
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology CpuTopology::flat(std::size_t num_cpus) {
  if (num_cpus == 0) num_cpus = 1;
  CpuTopology t;
  t._cpus.reserve(num_cpus);
  for (std::size_t i = 0; i < num_cpus; ++i) {
    t._cpus.push_back(CpuInfo{static_cast<int>(i), static_cast<int>(i), 0, 0});
  }
  t._fallback = true;
  t.finalize_counts();
  return t;
}

CpuTopology CpuTopology::discover(const std::string& sysfs_root) {
  const std::string cpu_root = sysfs_root + "/devices/system/cpu";

  // Online CPU set: the `online` list is authoritative (offline CPUs are
  // excluded); when it is missing, probe cpuN directories sequentially.
  std::vector<int> online = parse_cpu_list(read_file(cpu_root + "/online"));
  if (online.empty()) {
    for (int c = 0;; ++c) {
      if (read_file(cpu_root + "/cpu" + std::to_string(c) +
                    "/topology/physical_package_id")
              .empty() &&
          read_file(cpu_root + "/cpu" + std::to_string(c) + "/topology/core_id")
              .empty()) {
        break;
      }
      online.push_back(c);
    }
  }
  if (online.empty()) {
    return flat(std::thread::hardware_concurrency());
  }

  CpuTopology t;
  t._cpus.reserve(online.size());
  for (const int c : online) {
    const std::string topo =
        cpu_root + "/cpu" + std::to_string(c) + "/topology/";
    CpuInfo info;
    info.cpu = c;
    info.package = read_int(topo + "physical_package_id", 0);
    // A missing core_id degrades to "own core" (no SMT sharing visible).
    info.core = read_int(topo + "core_id", c);
    info.node = 0;
    t._cpus.push_back(info);
  }

  // NUMA nodes: each node directory publishes its CPU list.  Missing node
  // tree (or single node0) leaves everything on node 0.
  const std::string node_root = sysfs_root + "/devices/system/node";
  for (int n = 0;; ++n) {
    const std::string list =
        read_file(node_root + "/node" + std::to_string(n) + "/cpulist");
    if (list.empty()) {
      // Node ids are dense in sysfs; the first gap ends the scan (node0
      // always exists on NUMA kernels).
      if (n > 0) break;
      if (read_file(node_root + "/node0/cpulist").empty() &&
          read_file(node_root + "/possible").empty()) {
        break;  // no node tree at all: single-node machine
      }
      continue;
    }
    for (const int c : parse_cpu_list(list)) {
      for (CpuInfo& info : t._cpus) {
        if (info.cpu == c) info.node = n;
      }
    }
  }

  t.finalize_counts();
  return t;
}

void CpuTopology::finalize_counts() {
  int max_node = 0;
  std::vector<std::pair<int, int>> cores;  // (package, core) pairs
  cores.reserve(_cpus.size());
  for (const CpuInfo& c : _cpus) {
    max_node = std::max(max_node, c.node);
    cores.emplace_back(c.package, c.core);
  }
  std::sort(cores.begin(), cores.end());
  cores.erase(std::unique(cores.begin(), cores.end()), cores.end());
  _num_nodes = max_node + 1;
  _num_cores = static_cast<int>(cores.size());
}

int CpuTopology::tier(std::size_t a, std::size_t b) const noexcept {
  if (a >= _cpus.size() || b >= _cpus.size()) return kRemote;
  const CpuInfo& x = _cpus[a];
  const CpuInfo& y = _cpus[b];
  if (x.package == y.package && x.core == y.core) return kSameCore;
  if (x.node == y.node) return kSameNode;
  return kRemote;
}

std::vector<std::size_t> CpuTopology::assign(std::size_t workers,
                                             NumaPolicy policy) const {
  std::vector<std::size_t> order(_cpus.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // SMT rank: a CPU's position among the threads of its (package, core)
  // group, in cpu-id order.  Both policies order rank-0 threads (one per
  // physical core) before any rank-1 sibling, so SMT sharing only begins
  // once every core already has a worker.
  std::vector<int> smt_rank(_cpus.size(), 0);
  {
    std::vector<std::size_t> by_core = order;
    std::stable_sort(by_core.begin(), by_core.end(),
                     [this](std::size_t a, std::size_t b) {
                       const CpuInfo& x = _cpus[a];
                       const CpuInfo& y = _cpus[b];
                       if (x.package != y.package) return x.package < y.package;
                       if (x.core != y.core) return x.core < y.core;
                       return x.cpu < y.cpu;
                     });
    for (std::size_t i = 0; i < by_core.size(); ++i) {
      smt_rank[by_core[i]] =
          (i > 0 && _cpus[by_core[i]].package == _cpus[by_core[i - 1]].package &&
           _cpus[by_core[i]].core == _cpus[by_core[i - 1]].core)
              ? smt_rank[by_core[i - 1]] + 1
              : 0;
    }
  }

  if (policy == NumaPolicy::compact) {
    // Node-major, then distinct cores, SMT siblings last: the first W
    // workers share one node and spread over its physical cores before any
    // core carries two workers.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const CpuInfo& x = _cpus[a];
                       const CpuInfo& y = _cpus[b];
                       if (x.node != y.node) return x.node < y.node;
                       if (smt_rank[a] != smt_rank[b]) return smt_rank[a] < smt_rank[b];
                       if (x.package != y.package) return x.package < y.package;
                       if (x.core != y.core) return x.core < y.core;
                       return x.cpu < y.cpu;
                     });
  } else {
    // Scatter: interleave nodes round-robin (node-rank-major ordering).
    std::vector<int> rank_in_node(_cpus.size(), 0);
    std::vector<int> seen(static_cast<std::size_t>(_num_nodes), 0);
    // Ranks follow the compact in-node order, so scatter still walks each
    // node core-first.
    std::vector<std::size_t> compact = assign(_cpus.size(), NumaPolicy::compact);
    for (const std::size_t idx : compact) {
      rank_in_node[idx] = seen[static_cast<std::size_t>(_cpus[idx].node)]++;
    }
    order = compact;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (rank_in_node[a] != rank_in_node[b]) {
                         return rank_in_node[a] < rank_in_node[b];
                       }
                       return _cpus[a].node < _cpus[b].node;
                     });
  }

  std::vector<std::size_t> out;
  out.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) out.push_back(order[w % order.size()]);
  return out;
}

bool pin_current_thread(int cpu) noexcept {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

std::vector<int> current_affinity() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) != 0) return {};
  std::vector<int> cpus;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(static_cast<unsigned>(c), &set)) cpus.push_back(c);
  }
  return cpus;
#else
  return {};
#endif
}

}  // namespace support
