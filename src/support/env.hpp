// env.hpp - environment-variable scaling knobs shared by the benchmark
// harnesses, so the same binaries scale from this small VM up to a many-core
// machine matching the paper's testbed.
#pragma once

#include <cstddef>
#include <string>

namespace support {

/// Read an integer environment variable; returns `fallback` when unset or
/// unparsable.
[[nodiscard]] long long env_int(const char* name, long long fallback);

/// Read a double environment variable; returns `fallback` when unset.
[[nodiscard]] double env_double(const char* name, double fallback);

/// Global problem-size multiplier (REPRO_SCALE, default 1.0).  Benches apply
/// this to their largest problem sizes so CI-class machines finish quickly.
[[nodiscard]] double repro_scale();

/// Maximum thread count explored by the thread sweeps (REPRO_MAX_THREADS).
/// Defaults to max(4, hardware_concurrency); the paper sweeps up to 64.
[[nodiscard]] unsigned repro_max_threads();

/// Number of repeats per measurement (REPRO_REPEATS, default 3).
[[nodiscard]] int repro_repeats();

/// Dispatch-time cycle detection of tf::Taskflow (REPRO_CYCLE_CHECK,
/// default on).  Set to 0 to skip the O(V+E) acyclicity sweep for
/// dispatch-latency-critical graphs that are acyclic by construction.
[[nodiscard]] bool repro_cycle_check();

/// Iterations of the fault-injection stress tests (REPRO_FAULT_ITERS,
/// default 30); raise for longer soak runs under the sanitizers.
[[nodiscard]] int repro_fault_iters();

/// Base RNG seed of the fault-injection stress tests (REPRO_FAULT_SEED,
/// default 42); every iteration derives its own stream from it.
[[nodiscard]] unsigned long long repro_fault_seed();

/// Per-client request count of the service-layer soak test
/// (REPRO_SOAK_ITERS, default 400 for the CI short soak).  Set to 42000+ to
/// opt into the acceptance storm: >= 1M requests across 24 client threads.
[[nodiscard]] long long repro_soak_iters();

}  // namespace support
