#include "support/chrono.hpp"

#include <algorithm>
#include <cmath>

namespace support {

Stats summarize(std::vector<double> samples) {
  Stats s;
  s.n = samples.size();
  if (samples.empty()) return s;

  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();

  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());

  const std::size_t mid = samples.size() / 2;
  s.median = (samples.size() % 2 == 1)
                 ? samples[mid]
                 : 0.5 * (samples[mid - 1] + samples[mid]);

  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

}  // namespace support
