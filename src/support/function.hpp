// function.hpp - support::SmallFunction, a small-buffer-optimized move-only
// callable wrapper.
//
// std::function heap-allocates any capture larger than its tiny internal
// buffer (16 bytes on libstdc++) and demands copyability of the target.
// Task bodies are constructed once, moved into the graph, and invoked from
// worker threads - they are never copied - so tf::Node stores its work in a
// SmallFunction instead: callables up to `Capacity` bytes (with fundamental
// alignment and a noexcept move constructor) are placed directly inside the
// node, making graph construction allocation-free for typical captures;
// larger or over-aligned targets transparently fall back to one heap
// allocation.  Move-only captures (std::unique_ptr, std::promise, ...) are
// first-class citizens.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace support {

template <typename Signature, std::size_t Capacity = 32>
class SmallFunction;  // undefined primary; use the R(Args...) specialization

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
  // Pointer alignment covers the captures that matter (pointers, references,
  // integers, doubles); over-aligned targets take the heap path.  Keeping the
  // buffer alignment at 8 rather than max_align_t avoids padding the wrapper
  // (and every tf::Node) to a 16-byte multiple.
  static constexpr std::size_t kAlign = alignof(void*);

 public:
  /// True when a callable of type F is stored inside the buffer (no heap).
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(F) <= Capacity && alignof(F) <= kAlign &&
      std::is_nothrow_move_constructible_v<F>;

  SmallFunction() noexcept = default;
  SmallFunction(std::nullptr_t) noexcept {}

  template <typename F, typename D = std::decay_t<F>>
    requires(!std::is_same_v<D, SmallFunction> && std::is_invocable_r_v<R, D&, Args...>)
  SmallFunction(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    if constexpr (stores_inline<D>) {
      ::new (static_cast<void*>(_buffer)) D(std::forward<F>(f));
      _ops = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(_buffer)) D*(new D(std::forward<F>(f)));
      _ops = &heap_ops<D>;
    }
  }

  SmallFunction(SmallFunction&& rhs) noexcept { move_from(rhs); }

  SmallFunction& operator=(SmallFunction&& rhs) noexcept {
    if (this != &rhs) {
      reset();
      move_from(rhs);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  /// True when a target is held.
  explicit operator bool() const noexcept { return _ops != nullptr; }

  /// True when the held target lives in the inline buffer (diagnostic).
  [[nodiscard]] bool is_inline() const noexcept {
    return _ops != nullptr && _ops->inline_stored;
  }

  R operator()(Args... args) const {
    assert(_ops != nullptr && "invoking an empty SmallFunction");
    return _ops->invoke(_buffer, std::forward<Args>(args)...);
  }

  /// True when the held target can be duplicated with clone() (it is
  /// copy-constructible); empty wrappers report false.
  [[nodiscard]] bool clonable() const noexcept {
    return _ops != nullptr && _ops->clone != nullptr;
  }

  /// Duplicate the held target (module-task graph instantiation needs one
  /// independent copy of each work item per composition site).  Throws
  /// std::logic_error when the target is move-only; cloning an empty wrapper
  /// yields an empty wrapper.
  [[nodiscard]] SmallFunction clone() const {
    SmallFunction out;
    if (_ops == nullptr) return out;
    if (_ops->clone == nullptr) {
      throw std::logic_error(
          "SmallFunction::clone: target is not copy-constructible");
    }
    _ops->clone(out._buffer, _buffer);
    out._ops = _ops;
    return out;
  }

 private:
  struct Ops {
    R (*invoke)(void* buffer, Args&&... args);
    void (*relocate)(void* dst, void* src) noexcept;  // move into dst, destroy src
    void (*destroy)(void* buffer) noexcept;
    void (*clone)(void* dst, const void* src);  // null: target is move-only
    bool inline_stored;
  };

  template <typename D>
  static constexpr auto inline_clone_fn() noexcept {
    using Fn = void (*)(void*, const void*);
    if constexpr (std::is_copy_constructible_v<D>) {
      return Fn{[](void* dst, const void* src) {
        ::new (dst) D(*std::launder(static_cast<const D*>(src)));
      }};
    } else {
      return Fn{nullptr};
    }
  }

  template <typename D>
  static constexpr auto heap_clone_fn() noexcept {
    using Fn = void (*)(void*, const void*);
    if constexpr (std::is_copy_constructible_v<D>) {
      return Fn{[](void* dst, const void* src) {
        ::new (dst) D*(new D(**std::launder(static_cast<const D* const*>(src))));
      }};
    } else {
      return Fn{nullptr};
    }
  }

  template <typename D>
  static constexpr Ops inline_ops{
      [](void* buffer, Args&&... args) -> R {
        return (*std::launder(static_cast<D*>(buffer)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        D* s = std::launder(static_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* buffer) noexcept { std::launder(static_cast<D*>(buffer))->~D(); },
      inline_clone_fn<D>(),
      true};

  template <typename D>
  static constexpr Ops heap_ops{
      [](void* buffer, Args&&... args) -> R {
        return (**std::launder(static_cast<D**>(buffer)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        // The target stays put on the heap; only its pointer relocates.
        ::new (dst) D*(*std::launder(static_cast<D**>(src)));
      },
      [](void* buffer) noexcept { delete *std::launder(static_cast<D**>(buffer)); },
      heap_clone_fn<D>(),
      false};

  void move_from(SmallFunction& rhs) noexcept {
    _ops = rhs._ops;
    if (_ops != nullptr) {
      _ops->relocate(_buffer, rhs._buffer);
      rhs._ops = nullptr;
    }
  }

  void reset() noexcept {
    if (_ops != nullptr) {
      _ops->destroy(_buffer);
      _ops = nullptr;
    }
  }

  static_assert(Capacity >= sizeof(void*), "buffer must at least hold a heap pointer");

  alignas(kAlign) mutable std::byte _buffer[Capacity];
  const Ops* _ops{nullptr};
};

}  // namespace support
