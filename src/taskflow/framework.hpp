// framework.hpp - compatibility shim: tf::Framework is a deprecated alias of
// tf::Taskflow.
//
// The paper-era library split "reusable graph" (Framework) from "graph +
// dispatcher" (Taskflow).  The executor-centric refactor removed the split:
// tf::Taskflow *is* the pure reusable graph, and tf::Executor is the run
// entry point (see taskflow.hpp).  The alias keeps paper-era code compiling:
//
//   tf::Framework fw;              // == tf::Taskflow
//   auto [A, B] = fw.emplace(taskA, taskB);
//   A.precede(B);
//
//   tf::Executor executor;
//   executor.run(fw).get();        // new style
//   executor.run_n(fw, 10);
//
//   tf::Taskflow tf;               // paper-era style still works:
//   tf.run(fw).get();              // shims over a lazy private executor
//   tf.run_n(fw, 10);
#pragma once

#include "taskflow/taskflow.hpp"
