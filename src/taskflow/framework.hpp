// framework.hpp - tf::Framework: a reusable task dependency graph.
//
// The paper's dispatch model consumes the present graph on every dispatch;
// iterative applications (e.g. the incremental-timing inner loop, training
// epochs) that re-run the *same* graph would rebuild it each time.  A
// Framework keeps one graph alive across runs - the library-evolution
// feature this reproduction adds as the paper's future-work direction.
//
//   tf::Framework fw;
//   auto [A, B] = fw.emplace(taskA, taskB);
//   A.precede(B);
//
//   tf::Taskflow tf;
//   tf.run(fw).get();    // run once (non-blocking without the .get())
//   tf.run_n(fw, 10);    // run ten times back-to-back (blocking)
//
// Semantics:
//  * each run re-arms every node (join counters reset, dynamic subflows
//    re-spawn), so runs are independent executions of the same structure;
//  * runs of one framework must not overlap: run() requires the previous
//    run to have finished (run_n serializes internally);
//  * the framework must outlive any run in flight;
//  * errors: run() returns a tf::ExecutionHandle - a task that throws makes
//    the run drain (remaining tasks skipped) and the exception rethrows
//    from handle.get(); handle.cancel() requests a cooperative drain; a
//    cyclic framework graph makes run() throw tf::CycleError.  run_n stops
//    at the first failing or cancelled run.  The framework graph itself
//    stays reusable after a failed or cancelled run (the next run re-arms).
#pragma once

#include "taskflow/flow_builder.hpp"

namespace tf {

class Framework : public FlowBuilder {
 public:
  /// `default_parallelism` seeds algorithm-pattern chunking, as in Taskflow.
  explicit Framework(std::size_t default_parallelism = 1)
      : FlowBuilder(_holder, default_parallelism) {}

  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;

  [[nodiscard]] Graph& graph() noexcept { return _holder; }
  [[nodiscard]] const Graph& graph() const noexcept { return _holder; }

 private:
  Graph _holder;
};

}  // namespace tf
