// timer_wheel.hpp - detail::TimerWheel, the monotonic delayed-callback engine
// behind the resilience layer (retry backoff, run deadlines, cancel_after).
//
// A classic hashed timing wheel (Varghese & Lauck): kSlots buckets of
// kTickNs-granularity ticks, a cursor advancing one slot per tick, and a
// per-entry rounds counter for delays longer than one revolution.  One
// background thread services the wheel; it is created lazily by the first
// schedule_after() call, so executors that never use a resilience feature
// never pay a thread.  No worker ever blocks on a delay: a retrying task
// parks its node *here* and the worker moves on to other work.
//
// Entries are cancelable (deadline timers of runs that finish in time are
// withdrawn so they don't pin the run's error state until expiry), and all
// callbacks run on the wheel thread outside the wheel lock - a callback may
// re-enter schedule_after()/cancel().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

namespace tf {
namespace detail {

class TimerWheel {
 public:
  using Callback = std::function<void()>;
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  /// Wheel geometry: 512 slots of 1 ms cover one revolution of ~0.5 s; longer
  /// delays carry a rounds counter.  1 ms is also the scheduling granularity
  /// floor - a 0-delay entry fires on the next tick.
  static constexpr std::int64_t kTickNs = 1'000'000;
  static constexpr std::size_t kSlots = 512;

  TimerWheel() = default;
  ~TimerWheel() { stop(); }

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arrange for `fn` to run on the wheel thread after at least `delay`
  /// (rounded up to the tick granularity).  Returns an id usable with
  /// cancel().  Starts the wheel thread on first use.
  TimerId schedule_after(std::chrono::nanoseconds delay, Callback fn);

  /// Withdraw a pending entry.  Returns true when the entry had not fired
  /// yet (its callback will never run); false when it already fired, was
  /// already cancelled, or the id is unknown.  The entry's callback (and
  /// captured state) is destroyed by the next service pass of its slot.
  bool cancel(TimerId id);

  /// Entries scheduled and not yet fired/cancelled (diagnostic snapshot).
  [[nodiscard]] std::size_t num_pending() const;

  /// Join the wheel thread.  Pending entries are dropped without firing:
  /// the owning executor only stops the wheel after it has drained all work
  /// that could still be waiting on a timer.  Idempotent.
  void stop();

 private:
  struct Entry {
    TimerId id{kInvalidTimer};
    std::uint32_t rounds{0};  // full revolutions left before firing
    Callback fn;
  };

  void service_loop();

  mutable std::mutex _mutex;
  std::condition_variable _cv;
  std::vector<Entry> _slots[kSlots];
  std::unordered_set<TimerId> _live;  // scheduled, not yet fired/cancelled
  std::chrono::steady_clock::time_point _epoch;  // time of tick 0
  std::int64_t _cursor_tick{0};                  // next tick to service
  TimerId _next_id{1};
  std::size_t _num_live{0};
  bool _started{false};
  bool _stop{false};
  std::thread _thread;
};

}  // namespace detail
}  // namespace tf
