// topology.hpp - tf::Topology, one executable run of a task dependency graph
// (paper §III-C, Fig. 3), and tf::ExecutionHandle, the per-run handle
// exposing completion waiting plus cooperative cancellation.
//
// A topology either owns a one-shot graph (paper-era Taskflow::dispatch moves
// the present graph in) or borrows a reusable one (tf::Executor::run and the
// deprecated Framework path).  It keeps the runtime metadata of the run: a
// promise/shared_future pair for completion signalling, a live-node counter
// that reaches zero when the last task (including dynamically spawned subflow
// tasks) finishes, and a shared ErrorState carrying the first captured
// exception / the cancellation flag (see error.hpp for the drain semantics).
//
// Since the executor-centric refactor a topology is *not* started at
// construction: the owning tf::Executor arms it (arm() resets per-node state
// and collects source nodes) when the run reaches the head of its taskflow's
// FIFO queue, and may re-arm it for repeated runs (run_n / run_until).  When
// the live-node counter hits zero the topology notifies its registered
// detail::TopologyClient - the executor - which decides between re-arming
// for the next repeat and finishing (fulfilling the promise).
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "taskflow/error.hpp"
#include "taskflow/graph.hpp"
#include "taskflow/timer_wheel.hpp"

namespace tf {

class Executor;
class Topology;

namespace detail {

/// Callback target a Topology notifies when a run completes (its live-node
/// counter reaches zero).  tf::Executor implements this to drive repeat
/// runs, FIFO queue hand-off, and completion accounting.  The callee may
/// destroy the topology before returning (async one-shots), so retire_one()
/// must not touch any member after the call.
struct TopologyClient {
  virtual void on_topology_done(Topology& topology) = 0;

 protected:
  ~TopologyClient() = default;
};

}  // namespace detail

class Topology {
 public:
  /// How this topology reached the executor - selects the completion path
  /// in Executor::on_topology_done.
  enum class RunKind : unsigned char {
    dispatched,  // paper-era dispatch(): one shot, owns its moved-in graph
    queued,      // Executor::run/run_n/run_until: serialized per taskflow
    async,       // Executor::async: self-deleting single-task run
  };

  /// Take ownership of a one-shot graph (paper-era Taskflow::dispatch).
  /// Does not arm: the executor arms and schedules the topology.
  explicit Topology(Graph&& graph) : _owned(std::move(graph)), _graph(&_owned) {}

  /// Borrow a reusable graph (Executor::run family).  The caller must keep
  /// `graph` alive and un-mutated until completion.
  explicit Topology(Graph* graph) : _graph(graph) {}

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// (Re)initialize the run state of every node - join counters, subflow
  /// spawn flags, topology back-pointers - and collect the source nodes.
  /// Called by the executor before (re)scheduling; callable once per run so
  /// the same graph executes repeatedly (run_n / run_until).  Must not run
  /// concurrently with task execution of this graph.
  void arm() {
    // Pack any spilled successor arrays contiguously before workers walk
    // them; a no-op on every re-arm (run_n repeats) once the graph settled.
    _graph->finalize_edges();
    _sources.clear();
    for (auto& node : *_graph) {
      node._topology = this;
      node._parent = nullptr;
      // Join counters count *strong* dependents only: weak (condition-out)
      // edges fire on branch selection and never join.  A node whose
      // predecessors are all conditions arms at zero but is not a source -
      // it runs when (and if) a condition selects it.
      node._join_counter.store(node.num_strong_dependents(),
                               std::memory_order_relaxed);
      // Re-armed dynamic/module nodes expand afresh on the next run.  The
      // previous run's subgraph is kept (its slabs are recycled in place at
      // respawn time - see ExecutorInterface::run_task), so repeat runs of a
      // dynamic graph stop paying per-iteration allocation.
      node._spawned = false;
      if (auto* cond = std::get_if<ConditionWork>(&node._work)) {
        cond->last_branch.store(-1, std::memory_order_relaxed);
      }
      // A fresh run gets a fresh retry budget.
      if (node._policy != nullptr) {
        node._policy->failed_attempts.store(0, std::memory_order_relaxed);
      }
      if (node._static_dependents == 0) _sources.push_back(&node);
    }
    // Scheduled-count accounting (control-flow graphs can execute one node
    // many times, so "nodes remaining" is meaningless): _num_active counts
    // scheduled-but-unfinished *executions*.  It starts at the source count
    // and every finished execution nets (successors it scheduled - 1) into
    // it; zero means no execution is in flight or pending - the run is done.
    _num_active.store(static_cast<long>(_sources.size()),
                      std::memory_order_relaxed);
  }

  /// Completion future; shared so multiple parties may wait.  Becomes ready
  /// when the last run retires its last task; carries the first captured
  /// exception.
  [[nodiscard]] std::shared_future<void> future() const noexcept { return _future; }

  /// Source nodes (no dependents) of the current arming, to seed the
  /// executor with.
  [[nodiscard]] const std::vector<Node*>& sources() const noexcept { return _sources; }

  /// The graph run by this topology (valid after completion, used by
  /// dump_topologies to render spawned subflows - paper Fig. 5).
  [[nodiscard]] const Graph& graph() const noexcept { return *_graph; }

  /// Number of task executions scheduled but not yet finished in the current
  /// run.  Dynamic spawns increment it before their children are scheduled,
  /// so it never prematurely reaches zero.
  [[nodiscard]] long num_active() const noexcept {
    return _num_active.load(std::memory_order_acquire);
  }

  /// Internal: add `n` scheduled executions (called before scheduling
  /// spawned children).
  void add_active(long n) noexcept { _num_active.fetch_add(n, std::memory_order_relaxed); }

  /// Internal: net effect of one finished execution that scheduled `delta +
  /// 1` further executions.  Callers skip the call entirely when delta == 0
  /// (a task that scheduled exactly one successor - the linear-chain hot
  /// path - leaves the shared counter untouched).  On reaching zero the
  /// registered client (the executor) is notified - it re-arms for the next
  /// repeat or finishes the topology; without a client the topology finishes
  /// directly.  The client may destroy this topology inside the callback, so
  /// nothing is touched after it returns.
  void retire_delta(long delta) {
    assert(delta != 0);
    if (_num_active.fetch_add(delta, std::memory_order_acq_rel) + delta == 0) {
      if (_client != nullptr) {
        _client->on_topology_done(*this);  // may re-arm, finish, or delete *this
      } else {
        finish();
      }
    }
  }

  /// Internal: retire one execution that scheduled nothing.
  void retire_one() { retire_delta(-1); }

  /// Fulfill the completion promise, delivering the first captured task
  /// exception when there is one.  Called exactly once, after the final run.
  /// This is the very last thing that touches the topology: a waiter may
  /// release it the moment the future becomes ready.
  void finish() {
    if (auto e = _state->stored()) {
      _promise.set_exception(std::move(e));
    } else {
      _promise.set_value();
    }
  }

  /// Shared error/cancellation state (internal; executors read it per task).
  [[nodiscard]] detail::ErrorState* error_state() const noexcept { return _state.get(); }
  [[nodiscard]] const std::shared_ptr<detail::ErrorState>& shared_error_state()
      const noexcept {
    return _state;
  }

  /// Request cooperative cancellation: remaining tasks skip their work but
  /// the topology still drains to completion (the future becomes ready
  /// without an exception).  On a multi-run topology this also stops the
  /// remaining repeats.
  void cancel() noexcept { _state->cancel(); }
  [[nodiscard]] bool is_cancelled() const noexcept { return _state->draining(); }

  /// The first exception captured by a task of this topology (nullptr when
  /// none); populated once the throwing task has finished capturing.
  [[nodiscard]] std::exception_ptr exception() const noexcept { return _state->stored(); }

 private:
  friend class Executor;

  Graph _owned;
  Graph* _graph{nullptr};
  std::promise<void> _promise;
  std::shared_future<void> _future{_promise.get_future().share()};
  std::atomic<long> _num_active{0};
  std::vector<Node*> _sources;
  std::shared_ptr<detail::ErrorState> _state{std::make_shared<detail::ErrorState>()};

  // -- executor-managed run state (see Executor::on_topology_done) ---------
  detail::TopologyClient* _client{nullptr};  // notified at each run completion
  void* _client_tag{nullptr};                // ClientQueue* / AsyncRun*, per kind
  std::shared_ptr<void> _client_hold;        // keeps the tagged object alive
  RunKind _kind{RunKind::dispatched};
  std::size_t _remaining{1};                 // repeats left (run_n)
  std::function<bool()> _stop_pred;          // optional stop test (run_until)

  // -- admission-control state (DESIGN.md §11), written and read only under
  // -- the owning executor's admission lock after submission ----------------
  enum class AdmitState : unsigned char {
    immediate,  // admission control off: PR 3 start-at-queue-head semantics
    queued,     // admitted, waiting in its client queue (sheddable)
    started,    // dispatched onto the worker pool (no longer sheddable)
    shed,       // load-shed before it started; future completes with OverloadError
  };
  AdmitState _admit{AdmitState::immediate};
  int _priority{1};       // RunPolicy::priority band, clamped
  std::size_t _cost{1};   // deficit-round-robin cost: node count of the graph
  bool _breaker_probe{false};  // this run is its taskflow's half-open probe
  // Deadline timer of the run's RunPolicy; withdrawn from the wheel when the
  // run completes in time (so a finished run's state isn't pinned by it).
  detail::TimerWheel::TimerId _deadline_timer{detail::TimerWheel::kInvalidTimer};
};

/// Handle to one submitted execution, returned by Executor::run/run_n/
/// run_until and the paper-era Taskflow::dispatch()/run().  Copyable
/// (shared-future semantics) and implicitly convertible to
/// std::shared_future<void>, so paper-era code written against the future
/// API keeps compiling unchanged.  On top of waiting it offers
/// cancel()/is_cancelled(); the handle stays valid after the topology has
/// been released (wait_for_all), since the state is shared, not borrowed.
class ExecutionHandle {
 public:
  /// An empty handle represents an already-completed (empty) submission.
  ExecutionHandle() {
    std::promise<void> done;
    done.set_value();
    _future = done.get_future().share();
  }

  ExecutionHandle(std::shared_future<void> future,
                  std::shared_ptr<detail::ErrorState> state,
                  std::weak_ptr<detail::TimerWheel> timers = {}) noexcept
      : _future(std::move(future)),
        _state(std::move(state)),
        _timers(std::move(timers)) {}

  /// Request cooperative cancellation: tasks not yet started skip their
  /// work, running tasks observe tf::this_task::is_cancelled(), and the
  /// topology drains to a ready future (repeat runs are stopped).  No-op on
  /// an empty handle.
  void cancel() const noexcept {
    if (_state) _state->cancel();
  }

  /// Deferred cancel: like cancel(), fired from the executor's timer wheel
  /// after `delay` - unless the execution finished first, in which case the
  /// late fire is a harmless no-op on the shared state.  Unlike a RunPolicy
  /// deadline this is a *plain* cancel: the future completes without a
  /// TimeoutError.  An explicit cancel() may still land first; whichever
  /// fires first starts the drain and the other is idempotent.  No-op on an
  /// empty handle or once the owning executor is gone.
  void cancel_after(std::chrono::nanoseconds delay) const {
    if (_state == nullptr) return;
    if (auto wheel = _timers.lock()) {
      wheel->schedule_after(delay, [state = _state] { state->cancel(); });
    }
  }

  /// True when the execution drained because its RunPolicy deadline expired
  /// (get() then rethrows tf::TimeoutError).
  [[nodiscard]] bool timed_out() const noexcept {
    return _state != nullptr && _state->timed_out.load(std::memory_order_relaxed);
  }

  /// True once the execution entered draining mode (cancelled by this or
  /// any other handle, or failed with an exception).
  [[nodiscard]] bool is_cancelled() const noexcept {
    return _state != nullptr && _state->draining();
  }

  /// The first exception a task threw (nullptr when none so far).
  [[nodiscard]] std::exception_ptr exception() const noexcept {
    return _state == nullptr ? nullptr : _state->stored();
  }

  /// Block until the execution finished; rethrows the first task exception.
  void get() const { _future.get(); }

  /// Block until the execution finished without consuming the exception.
  void wait() const { _future.wait(); }

  /// Deadline-based waits, forwarding std::shared_future semantics.
  template <typename Rep, typename Period>
  std::future_status wait_for(const std::chrono::duration<Rep, Period>& d) const {
    return _future.wait_for(d);
  }
  template <typename Clock, typename Duration>
  std::future_status wait_until(const std::chrono::time_point<Clock, Duration>& t) const {
    return _future.wait_until(t);
  }

  /// The underlying completion future (also available implicitly).
  [[nodiscard]] const std::shared_future<void>& future() const noexcept { return _future; }
  operator std::shared_future<void>() const noexcept { return _future; }  // NOLINT

 private:
  std::shared_future<void> _future;
  std::shared_ptr<detail::ErrorState> _state;
  // The submitting executor's timer wheel (cancel_after); weak so a handle
  // outliving its executor degrades to a no-op instead of dangling.
  std::weak_ptr<detail::TimerWheel> _timers;
};

}  // namespace tf
