// topology.hpp - tf::Topology, a dispatched task dependency graph
// (paper §III-C, Fig. 3), and tf::ExecutionHandle, the per-dispatch handle
// exposing completion waiting plus cooperative cancellation.
//
// When a Taskflow dispatches its present graph, the graph is moved into a
// Topology which owns it for the rest of its lifetime.  The topology keeps
// the runtime metadata of the dispatch: a promise/shared_future pair for
// completion signalling, a live-node counter that reaches zero when the
// last task (including dynamically spawned subflow tasks) finishes, and a
// shared ErrorState carrying the first captured exception / the
// cancellation flag (see error.hpp for the drain semantics).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "taskflow/error.hpp"
#include "taskflow/graph.hpp"

namespace tf {

class Topology {
 public:
  /// Take ownership of a one-shot graph (Taskflow::dispatch).
  explicit Topology(Graph&& graph) : _owned(std::move(graph)), _graph(&_owned) {
    arm();
  }

  /// Borrow a reusable graph (Framework runs, paper-successor feature).
  /// The caller must keep `graph` alive and un-mutated until completion;
  /// node state (join counters, spawned subflows) is re-armed here so the
  /// same graph can run again afterwards.
  explicit Topology(Graph* graph) : _graph(graph) { arm(); }

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Completion future; shared so multiple parties may wait.  Becomes ready
  /// when the last task retires; carries the first captured exception.
  [[nodiscard]] std::shared_future<void> future() const noexcept { return _future; }

  /// Source nodes (no dependents) to seed the executor with.
  [[nodiscard]] const std::vector<Node*>& sources() const noexcept { return _sources; }

  /// The graph run by this topology (valid after completion, used by
  /// dump_topologies to render spawned subflows - paper Fig. 5).
  [[nodiscard]] const Graph& graph() const noexcept { return *_graph; }

  /// Number of tasks not yet finished.  Dynamic spawns increment it before
  /// their children are scheduled, so it never prematurely reaches zero.
  [[nodiscard]] long num_active() const noexcept {
    return _num_active.load(std::memory_order_acquire);
  }

  /// Internal: add `n` live tasks (called before scheduling spawned children).
  void add_active(long n) noexcept { _num_active.fetch_add(n, std::memory_order_relaxed); }

  /// Internal: retire one task; fulfills the promise on the last one,
  /// delivering the first captured exception when there is one.
  void retire_one() {
    if (_num_active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (auto e = _state->stored()) {
        _promise.set_exception(std::move(e));
      } else {
        _promise.set_value();
      }
    }
  }

  /// Shared error/cancellation state (internal; executors read it per task).
  [[nodiscard]] detail::ErrorState* error_state() const noexcept { return _state.get(); }
  [[nodiscard]] const std::shared_ptr<detail::ErrorState>& shared_error_state()
      const noexcept {
    return _state;
  }

  /// Request cooperative cancellation: remaining tasks skip their work but
  /// the topology still drains to completion (the future becomes ready
  /// without an exception).
  void cancel() noexcept { _state->cancel(); }
  [[nodiscard]] bool is_cancelled() const noexcept { return _state->draining(); }

  /// The first exception captured by a task of this topology (nullptr when
  /// none); populated once the throwing task has finished capturing.
  [[nodiscard]] std::exception_ptr exception() const noexcept { return _state->stored(); }

 private:
  void arm() {
    _future = _promise.get_future().share();
    _num_active.store(static_cast<long>(_graph->size()), std::memory_order_relaxed);
    for (auto& node : *_graph) {
      node._topology = this;
      node._parent = nullptr;
      node._join_counter.store(node._static_dependents, std::memory_order_relaxed);
      // Re-armed dynamic nodes spawn a fresh subflow on the next run.
      node._spawned = false;
      node._subgraph.reset();
      if (node._static_dependents == 0) _sources.push_back(&node);
    }
    // An empty graph is complete by construction.
    if (_graph->empty()) _promise.set_value();
  }

  Graph _owned;
  Graph* _graph{nullptr};
  std::promise<void> _promise;
  std::shared_future<void> _future;
  std::atomic<long> _num_active{0};
  std::vector<Node*> _sources;
  std::shared_ptr<detail::ErrorState> _state{std::make_shared<detail::ErrorState>()};
};

/// Handle to one dispatched execution, returned by Taskflow::dispatch() and
/// Taskflow::run().  Copyable (shared-future semantics) and implicitly
/// convertible to std::shared_future<void>, so paper-era code written
/// against the future API keeps compiling unchanged.  On top of waiting it
/// offers cancel()/is_cancelled(); the handle stays valid after the
/// taskflow has released the topology (wait_for_all), since the state is
/// shared, not borrowed.
class ExecutionHandle {
 public:
  /// An empty handle represents an already-completed (empty) dispatch.
  ExecutionHandle() {
    std::promise<void> done;
    done.set_value();
    _future = done.get_future().share();
  }

  ExecutionHandle(std::shared_future<void> future,
                  std::shared_ptr<detail::ErrorState> state) noexcept
      : _future(std::move(future)), _state(std::move(state)) {}

  /// Request cooperative cancellation: tasks not yet started skip their
  /// work, running tasks observe tf::this_task::is_cancelled(), and the
  /// topology drains to a ready future.  No-op on an empty handle.
  void cancel() const noexcept {
    if (_state) _state->cancel();
  }

  /// True once the execution entered draining mode (cancelled by this or
  /// any other handle, or failed with an exception).
  [[nodiscard]] bool is_cancelled() const noexcept {
    return _state != nullptr && _state->draining();
  }

  /// The first exception a task threw (nullptr when none so far).
  [[nodiscard]] std::exception_ptr exception() const noexcept {
    return _state == nullptr ? nullptr : _state->stored();
  }

  /// Block until the execution finished; rethrows the first task exception.
  void get() const { _future.get(); }

  /// Block until the execution finished without consuming the exception.
  void wait() const { _future.wait(); }

  /// Deadline-based waits, forwarding std::shared_future semantics.
  template <typename Rep, typename Period>
  std::future_status wait_for(const std::chrono::duration<Rep, Period>& d) const {
    return _future.wait_for(d);
  }
  template <typename Clock, typename Duration>
  std::future_status wait_until(const std::chrono::time_point<Clock, Duration>& t) const {
    return _future.wait_until(t);
  }

  /// The underlying completion future (also available implicitly).
  [[nodiscard]] const std::shared_future<void>& future() const noexcept { return _future; }
  operator std::shared_future<void>() const noexcept { return _future; }  // NOLINT

 private:
  std::shared_future<void> _future;
  std::shared_ptr<detail::ErrorState> _state;
};

}  // namespace tf
