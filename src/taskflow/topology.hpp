// topology.hpp - tf::Topology, a dispatched task dependency graph
// (paper §III-C, Fig. 3).
//
// When a Taskflow dispatches its present graph, the graph is moved into a
// Topology which owns it for the rest of its lifetime.  The topology keeps
// the runtime metadata of the dispatch: a promise/shared_future pair for
// completion signalling and a live-node counter that reaches zero when the
// last task (including dynamically spawned subflow tasks) finishes.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <vector>

#include "taskflow/graph.hpp"

namespace tf {

class Topology {
 public:
  /// Take ownership of a one-shot graph (Taskflow::dispatch).
  explicit Topology(Graph&& graph) : _owned(std::move(graph)), _graph(&_owned) {
    arm();
  }

  /// Borrow a reusable graph (Framework runs, paper-successor feature).
  /// The caller must keep `graph` alive and un-mutated until completion;
  /// node state (join counters, spawned subflows) is re-armed here so the
  /// same graph can run again afterwards.
  explicit Topology(Graph* graph) : _graph(graph) { arm(); }

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Completion future; shared so multiple parties may wait.
  [[nodiscard]] std::shared_future<void> future() const noexcept { return _future; }

  /// Source nodes (no dependents) to seed the executor with.
  [[nodiscard]] const std::vector<Node*>& sources() const noexcept { return _sources; }

  /// The graph run by this topology (valid after completion, used by
  /// dump_topologies to render spawned subflows - paper Fig. 5).
  [[nodiscard]] const Graph& graph() const noexcept { return *_graph; }

  /// Number of tasks not yet finished.  Dynamic spawns increment it before
  /// their children are scheduled, so it never prematurely reaches zero.
  [[nodiscard]] long num_active() const noexcept {
    return _num_active.load(std::memory_order_acquire);
  }

  /// Internal: add `n` live tasks (called before scheduling spawned children).
  void add_active(long n) noexcept { _num_active.fetch_add(n, std::memory_order_relaxed); }

  /// Internal: retire one task; fulfills the promise on the last one.
  void retire_one() {
    if (_num_active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      _promise.set_value();
    }
  }

 private:
  void arm() {
    _future = _promise.get_future().share();
    _num_active.store(static_cast<long>(_graph->size()), std::memory_order_relaxed);
    for (auto& node : *_graph) {
      node._topology = this;
      node._parent = nullptr;
      node._join_counter.store(node._static_dependents, std::memory_order_relaxed);
      // Re-armed dynamic nodes spawn a fresh subflow on the next run.
      node._spawned = false;
      node._subgraph.reset();
      if (node._static_dependents == 0) _sources.push_back(&node);
    }
    // An empty graph is complete by construction.
    if (_graph->empty()) _promise.set_value();
  }

  Graph _owned;
  Graph* _graph{nullptr};
  std::promise<void> _promise;
  std::shared_future<void> _future;
  std::atomic<long> _num_active{0};
  std::vector<Node*> _sources;
};

}  // namespace tf
