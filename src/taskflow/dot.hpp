// dot.hpp - GraphViz DOT emission of task dependency graphs (paper §III-G,
// Fig. 5).  Spawned subflows render as nested clusters, so a graph that went
// through dynamic tasking shows its full runtime expansion.
#pragma once

#include <iosfwd>
#include <string>

#include "taskflow/graph.hpp"

namespace tf {

/// Stream the DOT text of `graph` (with recursive subflow clusters).
void dump_dot(std::ostream& os, const Graph& graph, const std::string& title);

/// Convenience: DOT text as a string.
[[nodiscard]] std::string dump_dot(const Graph& graph, const std::string& title = "Taskflow");

}  // namespace tf
