#include "taskflow/taskflow.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <sstream>
#include <thread>
#include <vector>

#include "support/env.hpp"
#include "taskflow/dot.hpp"

namespace tf {

namespace {

// Throws tf::CycleError when `graph` is cyclic.  Runs before the graph is
// handed to a Topology, so a failed dispatch leaves the caller's graph
// intact (the scratched join counters are re-initialized by the next arm()).
// REPRO_CYCLE_CHECK=0 skips the O(V+E) sweep for dispatch-latency-critical
// code that guarantees acyclicity by construction.
void throw_if_cyclic(Graph& graph, const char* origin) {
  if (!support::repro_cycle_check()) return;
  if (std::string cycle = detail::describe_cycle(graph); !cycle.empty()) {
    throw CycleError(std::string(origin) + ": " + cycle);
  }
}

// Any knob set makes the executor route submissions through the admission
// layer; all-defaults keeps the PR 3 unbounded path, which takes no
// admission lock and fires no admission event.
bool admission_enabled(const ExecutorOptions& options) {
  return options.max_pending_topologies != 0 ||
         options.max_pending_per_client != 0 || options.shed_watermark != 0 ||
         options.max_concurrent_topologies != 0 || options.breaker_threshold != 0;
}

int clamp_band(int priority) {
  return priority < 0 ? 0
         : priority >= kNumPriorities ? kNumPriorities - 1
                                      : priority;
}

}  // namespace

namespace detail {

// One Executor::async submission: a single-node graph and its topology, heap
// boxed so the executor can retire the whole run from the completion
// callback once the task retired.  An async topology never calls finish()
// (the user-visible promise lives in the task callable), so its promise /
// future pair is never consumed and the box is reusable: the graph recycles
// its arena in place and the shared ErrorState resets.
struct AsyncRun {
  Graph graph;
  Topology topology{&graph};
};

// Freelist of retired AsyncRun boxes, sharded so an async storm's concurrent
// submitters and completers don't contend on one lock: each thread hashes to
// a home shard (workers are long-lived threads, so this behaves like a
// per-worker freelist).  Shards are bounded; overflow falls back to the heap.
class AsyncRunPool {
 public:
  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kMaxPerShard = 64;

  ~AsyncRunPool() {
    // Runs after the executor drained: no box is in flight.
    for (Shard& shard : _shards) {
      for (AsyncRun* box : shard.items) delete box;
    }
  }

  /// A recycled box (already reset) or nullptr when the pool is empty.
  /// Tries the home shard first; on a miss it probes the others - boxes are
  /// released on the *completing* worker's shard, so a submitter draining a
  /// different shard than it fills is the normal steady state.
  [[nodiscard]] AsyncRun* acquire() {
    const std::size_t home = home_index();
    for (std::size_t i = 0; i < kShards; ++i) {
      Shard& shard = _shards[(home + i) % kShards];
      SpinGuard guard(shard.lock);
      if (!shard.items.empty()) {
        AsyncRun* box = shard.items.back();
        shard.items.pop_back();
        return box;
      }
    }
    return nullptr;
  }

  /// Return a retired box; false when the home shard is full (caller
  /// deletes - the pool stays bounded under sustained storms).
  [[nodiscard]] bool release(AsyncRun* box) {
    Shard& shard = _shards[home_index()];
    SpinGuard guard(shard.lock);
    if (shard.items.size() >= kMaxPerShard) return false;
    shard.items.push_back(box);
    return true;
  }

 private:
  struct alignas(64) Shard {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    std::vector<AsyncRun*> items;
  };

  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag& f) : flag(f) {
      while (flag.test_and_set(std::memory_order_acquire)) {
        // Uncontended in the common case (one thread per shard); a brief
        // spin beats a futex round trip for the push/pop critical section.
      }
    }
    ~SpinGuard() { flag.clear(std::memory_order_release); }
    std::atomic_flag& flag;
  };

  [[nodiscard]] static std::size_t home_index() {
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return h % kShards;
  }

  Shard _shards[kShards];
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Executor::Executor(std::size_t num_workers, ExecutorOptions options)
    : _backend(std::make_shared<WorkStealingExecutor>(num_workers)),
      _options(options),
      _admission_active(admission_enabled(options)),
      _async_pool(std::make_unique<detail::AsyncRunPool>()) {
  if (_options.fairness_quantum == 0) _options.fairness_quantum = 1;
}

Executor::Executor(std::shared_ptr<ExecutorInterface> backend, ExecutorOptions options)
    : _backend(std::move(backend)),
      _options(options),
      _admission_active(admission_enabled(options)),
      _async_pool(std::make_unique<detail::AsyncRunPool>()) {
  if (_backend == nullptr) _backend = std::make_shared<WorkStealingExecutor>();
  if (_options.fairness_quantum == 0) _options.fairness_quantum = 1;
}

Executor::~Executor() { shutdown(ShutdownMode::drain); }

ExecutionHandle Executor::run(Taskflow& taskflow) {
  return handle_of(submit(taskflow, 1, nullptr));
}

ExecutionHandle Executor::run_n(Taskflow& taskflow, std::size_t n) {
  return handle_of(submit(taskflow, n, nullptr));
}

ExecutionHandle Executor::run_until(Taskflow& taskflow, std::function<bool()> stop) {
  return handle_of(submit(taskflow, 1, std::move(stop)));
}

ExecutionHandle Executor::run(Taskflow& taskflow, RunPolicy policy) {
  return handle_of(submit(taskflow, 1, nullptr, policy));
}

ExecutionHandle Executor::run_n(Taskflow& taskflow, std::size_t n, RunPolicy policy) {
  return handle_of(submit(taskflow, n, nullptr, policy));
}

ExecutionHandle Executor::run_until(Taskflow& taskflow, std::function<bool()> stop,
                                    RunPolicy policy) {
  return handle_of(submit(taskflow, 1, std::move(stop), policy));
}

std::optional<ExecutionHandle> Executor::try_run(Taskflow& taskflow, RunPolicy policy) {
  return try_run_n(taskflow, 1, policy);
}

std::optional<ExecutionHandle> Executor::try_run_n(Taskflow& taskflow, std::size_t n,
                                                   RunPolicy policy) {
  bool rejected = false;
  auto topology = submit(taskflow, n, nullptr, policy, /*nothrow=*/true, &rejected);
  if (rejected) return std::nullopt;
  // nullptr without rejection = empty submission: an engaged ready handle.
  return handle_of(topology);
}

void Executor::throw_if_shutdown() const {
  if (_shutdown.load(std::memory_order_acquire)) {
    throw ShutdownError("executor is shut down: new submissions are rejected");
  }
}

std::shared_ptr<Topology> Executor::submit(Taskflow& taskflow, std::size_t n,
                                           std::function<bool()> stop,
                                           RunPolicy policy, bool nothrow,
                                           bool* rejected) {
  if (_shutdown.load(std::memory_order_acquire)) {
    if (nothrow) {
      if (rejected != nullptr) *rejected = true;
      return nullptr;
    }
    throw ShutdownError("executor is shut down: new submissions are rejected");
  }
  if (taskflow.graph().empty() || n == 0) return nullptr;

  // Phase 1: admission (DESIGN.md §11).  Block/reject per the policy before
  // any allocation; the lock is held across phase 2 so the charged pending
  // slot cannot be shed or stolen between the verdict and the push.
  const int band = clamp_band(policy.priority);
  std::unique_lock<std::mutex> adm(_adm_mutex, std::defer_lock);
  bool claimed_probe = false;
  if (_admission_active) {
    adm.lock();
    const RejectReason why = admit_locked(adm, taskflow, policy, nothrow, claimed_probe);
    if (why != RejectReason::none) {
      adm.unlock();
      if (why != RejectReason::shutdown) {
        // A shutdown rejection is NOT an overload signal: no reject event,
        // no rejected-counter bump (satellite: the two are distinguishable).
        _adm_rejected.fetch_add(1, std::memory_order_relaxed);
        if (auto obs = _backend->observer()) obs->on_topology_reject();
      }
      if (nothrow) {
        if (rejected != nullptr) *rejected = true;
        return nullptr;
      }
      switch (why) {
        case RejectReason::shutdown:
          throw ShutdownError("executor is shut down: new submissions are rejected");
        case RejectReason::breaker_open:
          throw BreakerOpenError(
              "circuit breaker open: recent runs of this taskflow kept failing");
        default:
          throw OverloadError("executor overloaded: admission capacity exhausted");
      }
    }
  }

  auto topology = std::make_shared<Topology>(&taskflow.graph());
  topology->_client = this;
  topology->_kind = Topology::RunKind::queued;
  topology->_remaining = n;
  topology->_stop_pred = std::move(stop);
  topology->_priority = band;
  if (_admission_active) {
    topology->_admit = Topology::AdmitState::queued;
    topology->_cost = std::max<std::size_t>(1, taskflow.graph().size());
    topology->_breaker_probe = claimed_probe;
  }

  // Phase 2: find-or-create the client's run queue, then push under BOTH
  // locks (registry, then queue - the global lock order): releasing the
  // registry lock before the push would let a concurrent drain erase the
  // queue and a concurrent submit create a second one, breaking
  // same-taskflow FIFO serialization.
  std::unique_lock clients_lock(_clients_mutex);
  auto& slot = _clients[&taskflow];
  if (slot == nullptr) slot = std::make_shared<ClientQueue>(&taskflow);
  std::shared_ptr<ClientQueue> cq = slot;
  std::unique_lock queue_lock(cq->mutex);
  clients_lock.unlock();

  const bool head = cq->queue.empty();
  if (head) {
    // An empty queue means nothing of this taskflow is queued or in flight,
    // so the cycle check (which scratches the graph's join counters) cannot
    // race task execution.  Queued resubmissions skip the re-check: the
    // graph is immutable while runs are in flight, so its verdict holds.
    try {
      throw_if_cyclic(taskflow.graph(), "run");
    } catch (...) {
      queue_lock.unlock();
      if (_admission_active) {
        unadmit_locked(taskflow, claimed_probe);
        _adm_cv.notify_all();
        adm.unlock();
      }
      // Drop the (empty) queue we may have just registered, re-checking
      // under both locks: a concurrent submit may have pushed meanwhile.
      std::scoped_lock relock(_clients_mutex);
      auto it = _clients.find(&taskflow);
      if (it != _clients.end() && it->second == cq) {
        std::scoped_lock requeue(cq->mutex);
        if (cq->queue.empty()) _clients.erase(it);
      }
      throw;
    }
  }

  topology->_client_tag = cq.get();
  topology->_client_hold = cq;  // the queue outlives every run it holds
  cq->queue.push_back(topology);
  // Count under the queue lock: the completion-side decrement pops under
  // this lock first, so it can never overtake this increment.
  _num_topologies.fetch_add(1, std::memory_order_relaxed);
  register_live(topology);
  // Arm the deadline before the lock is released: the completion side (which
  // disarms the timer) acquires this lock to pop, so the timer-id write can
  // never race it.  The budget starts now - FIFO queue time counts.
  if (policy.timeout.count() > 0) arm_deadline(*topology, policy);
  queue_lock.unlock();

  if (!_admission_active) {
    // The zero-policy hot path: byte-for-byte the pre-admission behavior.
    if (head) start(*topology);
    return topology;
  }

  // Phase 3: start / ring / shed decisions, still under the admission lock.
  _adm_admitted.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::shared_ptr<Topology>> to_start;
  std::vector<std::shared_ptr<Topology>> shed_victims;
  std::vector<std::shared_ptr<ClientQueue>> emptied;
  if (head) {
    if (_options.max_concurrent_topologies == 0 ||
        _adm_started < _options.max_concurrent_topologies) {
      ++_adm_started;
      topology->_admit = Topology::AdmitState::started;
      to_start.push_back(topology);
    } else {
      ring_push_locked(cq, band);
    }
  }
  if (_options.shed_watermark > 0) {
    // Track the run as a shed candidate (lowest band pops first, newest
    // first within a band), pruning entries of finished/started runs once
    // they clearly dominate.
    _adm_shed_stack[band].push_back(topology);
    std::size_t stacked = 0;
    for (const auto& stack : _adm_shed_stack) stacked += stack.size();
    if (stacked > 2 * _adm_pending + 64) {
      for (auto& stack : _adm_shed_stack) {
        std::erase_if(stack, [](const std::shared_ptr<Topology>& t) {
          return t->_admit != Topology::AdmitState::queued;
        });
      }
    }
    if (_adm_pending > _options.shed_watermark) {
      shed_to_watermark_locked(shed_victims, emptied);
    }
  }
  adm.unlock();

  for (auto& t : to_start) start(*t);
  for (auto& victim : shed_victims) finish_shed(victim);  // fires on_topology_shed
  for (auto& empty_cq : emptied) release_client(empty_cq.get());
  if (auto obs = _backend->observer()) obs->on_topology_admit();
  return topology;
}

Executor::RejectReason Executor::admit_locked(std::unique_lock<std::mutex>& adm,
                                              const Taskflow& taskflow,
                                              RunPolicy policy, bool nothrow,
                                              bool& claimed_probe) {
  const bool bounded_wait = policy.admission_timeout.count() > 0;
  const auto wait_deadline =
      std::chrono::steady_clock::now() + policy.admission_timeout;
  for (;;) {
    if (_shutdown.load(std::memory_order_acquire)) return RejectReason::shutdown;
    AdmissionClient& ac = _adm_clients[&taskflow];
    if (_options.breaker_threshold > 0) {
      // Fail fast while open-and-cooling or while the half-open probe is
      // out; an elapsed cooldown falls through and claims the probe below.
      if (ac.breaker == AdmissionClient::Breaker::open &&
          std::chrono::steady_clock::now() <
              ac.opened_at + _options.breaker_cooldown) {
        return RejectReason::breaker_open;
      }
      if (ac.breaker == AdmissionClient::Breaker::half_open && ac.probe_in_flight) {
        return RejectReason::breaker_open;
      }
    }
    const bool full = (_options.max_pending_topologies != 0 &&
                       _adm_pending >= _options.max_pending_topologies) ||
                      (_options.max_pending_per_client != 0 &&
                       ac.pending >= _options.max_pending_per_client);
    if (!full) {
      if (_options.breaker_threshold > 0 &&
          ac.breaker != AdmissionClient::Breaker::closed) {
        ac.breaker = AdmissionClient::Breaker::half_open;
        ac.probe_in_flight = true;
        claimed_probe = true;
      }
      ++_adm_pending;
      ++ac.pending;
      return RejectReason::none;
    }
    // At capacity.  try_run never waits; a reject policy fails fast; a
    // block policy waits for the completion/shed side to free capacity
    // (bounded by admission_timeout when one was given).
    if (nothrow || policy.admission == AdmissionPolicy::reject) {
      return RejectReason::overload;
    }
    if (bounded_wait) {
      if (std::chrono::steady_clock::now() >= wait_deadline) {
        return RejectReason::overload;
      }
      _adm_cv.wait_until(adm, wait_deadline);
    } else {
      _adm_cv.wait(adm);
    }
    // Loop: re-evaluate shutdown, breaker, and capacity after every wake
    // (the map reference may have been invalidated by a rehash meanwhile).
  }
}

void Executor::unadmit_locked(const Taskflow& taskflow, bool claimed_probe) {
  auto it = _adm_clients.find(&taskflow);
  if (it != _adm_clients.end()) {
    if (it->second.pending > 0) --it->second.pending;
    if (claimed_probe) it->second.probe_in_flight = false;
  }
  if (_adm_pending > 0) --_adm_pending;
}

void Executor::ring_push_locked(const std::shared_ptr<ClientQueue>& cq, int band) {
  if (cq->in_ring) return;
  cq->in_ring = true;
  _adm_ready[band].push_back(cq);
}

void Executor::dispatch_ready_locked(std::vector<std::shared_ptr<Topology>>& to_start) {
  const std::size_t limit = _options.max_concurrent_topologies;
  if (limit == 0) return;
  bool rescan = true;
  while (rescan && _adm_started < limit) {
  rescan = false;
  for (int band = kNumPriorities - 1; band >= 0 && _adm_started < limit; --band) {
    auto& ring = _adm_ready[band];
    std::size_t fruitless = 0;  // consecutive visits that dispatched nothing
    while (_adm_started < limit && !ring.empty()) {
      std::shared_ptr<ClientQueue> cq = ring.front();
      std::shared_ptr<Topology> head;
      {
        std::scoped_lock queue_lock(cq->mutex);
        if (!cq->queue.empty()) head = cq->queue.front();
      }
      if (head == nullptr || head->_admit != Topology::AdmitState::queued) {
        // Stale entry: the head was shed and the queue drained meanwhile.
        ring.pop_front();
        cq->in_ring = false;
        continue;
      }
      if (head->_priority != band) {
        // The client's head changed band since it was ringed (e.g. its old
        // head was shed): re-home it.  An upward re-home lands in a band
        // this scan already passed - without a rescan the client would be
        // stranded until the next completion, which may never come when
        // nothing else is running.
        ring.pop_front();
        _adm_ready[head->_priority].push_back(cq);
        if (head->_priority > band) rescan = true;
        continue;
      }
      if (cq->deficit < head->_cost) {
        cq->deficit += _options.fairness_quantum;
        if (cq->deficit < head->_cost) {
          if (++fruitless < ring.size()) {
            ring.pop_front();
            ring.push_back(cq);  // rotate: cheaper heads go first
            continue;
          }
          // A full fruitless lap: force progress - work conservation beats
          // idling the slot because every queued head is "too expensive".
          cq->deficit = head->_cost;
        }
      }
      cq->deficit -= head->_cost;
      ring.pop_front();
      cq->in_ring = false;
      head->_admit = Topology::AdmitState::started;
      ++_adm_started;
      to_start.push_back(std::move(head));
      fruitless = 0;
    }
  }
  }
}

void Executor::shed_to_watermark_locked(
    std::vector<std::shared_ptr<Topology>>& victims,
    std::vector<std::shared_ptr<ClientQueue>>& emptied) {
  while (_adm_pending > _options.shed_watermark) {
    std::shared_ptr<Topology> victim;
    for (int band = 0; band < kNumPriorities && victim == nullptr; ++band) {
      auto& stack = _adm_shed_stack[band];
      while (!stack.empty()) {
        if (stack.back()->_admit == Topology::AdmitState::queued) {
          victim = std::move(stack.back());
          stack.pop_back();
          break;
        }
        stack.pop_back();  // started / finished meanwhile: prune in passing
      }
    }
    if (victim == nullptr) break;  // everything pending has already started
    auto* vcq = static_cast<ClientQueue*>(victim->_client_tag);
    bool now_empty = false;
    {
      std::scoped_lock queue_lock(vcq->mutex);
      // The newest run of a band sits at/near its deque's back (cross-band
      // interleaving of one client can offset it): scan from the back.
      for (auto it = vcq->queue.rbegin(); it != vcq->queue.rend(); ++it) {
        if (it->get() == victim.get()) {
          vcq->queue.erase(std::next(it).base());
          break;
        }
      }
      now_empty = vcq->queue.empty();
    }
    victim->_admit = Topology::AdmitState::shed;
    --_adm_pending;
    auto it = _adm_clients.find(vcq->owner);
    if (it != _adm_clients.end() && it->second.pending > 0) --it->second.pending;
    if (victim->_breaker_probe) {
      // A shed probe must not wedge the breaker half-open forever.
      victim->_breaker_probe = false;
      if (it != _adm_clients.end()) it->second.probe_in_flight = false;
    }
    if (now_empty && vcq->in_ring) {
      // The emptied client's stale ring entry would suppress its next
      // head submission's ring push (in_ring short-circuit): drop it now.
      for (auto& ring : _adm_ready) {
        auto pos = std::find_if(
            ring.begin(), ring.end(),
            [vcq](const std::shared_ptr<ClientQueue>& p) { return p.get() == vcq; });
        if (pos != ring.end()) {
          ring.erase(pos);
          break;
        }
      }
      vcq->in_ring = false;
    }
    if (now_empty) {
      emptied.push_back(std::static_pointer_cast<ClientQueue>(victim->_client_hold));
    }
    victims.push_back(std::move(victim));
  }
  if (!victims.empty()) _adm_cv.notify_all();  // capacity freed
}

void Executor::finish_shed(const std::shared_ptr<Topology>& victim) {
  disarm_deadline(*victim);
  // First-writer capture: a deadline that expired while the run was queued
  // keeps its TimeoutError (queue time counts as timeout, not shed) — the
  // shed counter and observer event track only runs that observably
  // complete as shed, i.e. whose handle will report the OverloadError.
  const bool won = victim->error_state()->capture(std::make_exception_ptr(
      OverloadError("run load-shed: executor pending depth exceeded the shed "
                    "watermark")));
  if (won) {
    _adm_shed.fetch_add(1, std::memory_order_relaxed);
    if (auto obs = _backend->observer()) obs->on_topology_shed();
  }
  {
    std::scoped_lock lock(_done_mutex);
    _num_topologies.fetch_sub(1, std::memory_order_relaxed);
    _done_cv.notify_all();
  }
  victim->finish();
}

void Executor::breaker_update_locked(const Taskflow* taskflow, Topology& topology) {
  auto it = _adm_clients.find(taskflow);
  if (it == _adm_clients.end()) return;
  AdmissionClient& ac = it->second;
  if (topology._breaker_probe) {
    topology._breaker_probe = false;
    ac.probe_in_flight = false;
  }
  // Failure = the run completed with a stored exception (task error or
  // deadline).  A cancelled or fallback-degraded run completes cleanly and
  // counts as success.
  if (topology.exception() != nullptr) {
    if (ac.breaker == AdmissionClient::Breaker::half_open ||
        (ac.breaker == AdmissionClient::Breaker::closed &&
         ++ac.consecutive_failures >= _options.breaker_threshold)) {
      ac.breaker = AdmissionClient::Breaker::open;
      ac.opened_at = std::chrono::steady_clock::now();
      ac.consecutive_failures = 0;
      _adm_breaker_trips.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    ac.consecutive_failures = 0;
    if (ac.breaker != AdmissionClient::Breaker::closed) {
      ac.breaker = AdmissionClient::Breaker::closed;
      ac.probe_in_flight = false;
    }
  }
}

std::shared_ptr<Topology> Executor::dispatch_owned(Graph&& graph) {
  // Paper-era dispatch: one-shot topologies of one taskflow run
  // concurrently, so they bypass the per-client FIFO queue.  The caller
  // (Taskflow::dispatch) has already cycle-checked the graph.
  throw_if_shutdown();
  auto topology = std::make_shared<Topology>(std::move(graph));
  topology->_client = this;
  topology->_kind = Topology::RunKind::dispatched;
  topology->_client_hold = topology;  // self-keepalive until finish()
  _num_topologies.fetch_add(1, std::memory_order_relaxed);
  // Register for shutdown before the first task can retire the run.
  register_live(topology);
  start(*topology);
  return topology;
}

void Executor::submit_async(StaticWork&& work) {
  throw_if_shutdown();
  // Reuse a retired box when one is pooled: its graph arena already holds a
  // node-sized slab and its topology was reset at release, so the steady
  // state of an async storm allocates nothing.
  detail::AsyncRun* box = _async_pool->acquire();
  if (box == nullptr) box = new detail::AsyncRun;
  Node& node = box->graph.emplace_back();
  node._work.emplace<StaticWork>(std::move(work));
  box->topology._client = this;
  box->topology._kind = Topology::RunKind::async;
  box->topology._client_tag = box;
  _num_asyncs.fetch_add(1, std::memory_order_relaxed);
  start(box->topology);
}

void Executor::start(Topology& topology) {
  try {
    topology.arm();
  } catch (...) {
    // Survivable allocation failure (DESIGN.md §6): arm() may allocate
    // (finalize_edges spill packing, source collection), and start() runs on
    // worker threads for repeat re-arms and queued-run continuations - an
    // escaping bad_alloc there would terminate the process.  Capture into
    // the run's error state and complete it through the normal completion
    // path: the topology was never scheduled (arm() publishes no task before
    // returning), so on_topology_done's front-of-queue / dispatched / async
    // preconditions all still hold and the failure reaches the future.
    topology.error_state()->capture(std::current_exception());
    on_topology_done(topology);
    return;
  }
  _backend->schedule_batch(topology.sources());
}

void Executor::on_topology_done(Topology& topology) {
  // Runs on the worker that retired the topology's last task.  Protocol:
  // executor bookkeeping first, the in-flight decrement + wakeup next, and
  // finish() as the worker's very LAST action: set_value wakes the handle
  // waiter, and on a loaded host that wake can preempt this worker - any
  // work placed after finish() (even an uncontended atomic op that another
  // thread polls) turns into extra context switches per topology (measured
  // +1-3us on BM_DispatchFuture).  Consequently the counters can read zero
  // a few instructions before the last promise is set; the stronger
  // "every handle is ready" guarantee is provided only by shutdown() /
  // the destructor, which wait on the futures themselves via _live.
  switch (topology._kind) {
    case Topology::RunKind::async: {
      // The user-visible promise lives in the task callable (already
      // fulfilled), so the box can be recycled: destroy the node (and its
      // captured state) but keep the arena slab, and reset the shared error
      // state for the next submission.  No other thread can reach the box
      // here - its single task retired and it was never registered in _live.
      auto* box = static_cast<detail::AsyncRun*>(topology._client_tag);
      box->graph.recycle();
      box->topology.error_state()->reset();
      if (!_async_pool->release(box)) delete box;
      std::scoped_lock lock(_done_mutex);
      _num_asyncs.fetch_sub(1, std::memory_order_relaxed);
      _done_cv.notify_all();
      return;
    }

    case Topology::RunKind::dispatched: {
      std::shared_ptr<Topology> self =
          std::static_pointer_cast<Topology>(std::move(topology._client_hold));
      // The _live entry is NOT erased here (that would be executor work after
      // the hot tail): it expires when the last shared_ptr drops and is
      // pruned lazily by register_live() / collected by shutdown().
      {
        std::scoped_lock lock(_done_mutex);
        _num_topologies.fetch_sub(1, std::memory_order_relaxed);
        _done_cv.notify_all();
      }
      self->finish();
      return;
    }

    case Topology::RunKind::queued:
      break;
  }

  // Queued run (Executor::run / run_n / run_until): decide between the next
  // repeat and completion.  A draining run (task exception or cancel) stops
  // the remaining repeats; otherwise run_until consults its predicate and
  // run_n its countdown.
  bool done = topology.error_state()->draining();
  if (!done) {
    done = topology._stop_pred ? topology._stop_pred() : (--topology._remaining == 0);
  }
  if (!done) {
    start(topology);  // re-arm the same graph for the next repeat
    return;
  }

  // Final repeat done: pop from the client FIFO and hand the worker pool to
  // the next pending run of this taskflow, if any.
  auto* cq = static_cast<ClientQueue*>(topology._client_tag);
  std::shared_ptr<Topology> self;  // keeps the topology alive through finish()
  std::shared_ptr<Topology> next;
  bool drained = false;
  {
    std::scoped_lock lock(cq->mutex);
    self = std::move(cq->queue.front());
    cq->queue.pop_front();
    if (cq->queue.empty()) {
      drained = true;
    } else {
      next = cq->queue.front();
    }
  }
  disarm_deadline(*self);  // a finished run's timer must not pin its state
  if (!_admission_active) {
    if (next != nullptr) start(*next);
    if (drained) release_client(cq);
  } else {
    // Admission bookkeeping: free the pending + concurrency slots, update
    // the breaker, and refill free slots from the ready rings.  The queue
    // lock is already released (lock order: _adm_mutex never nests inside
    // a ClientQueue mutex), and start() runs outside the admission lock.
    std::vector<std::shared_ptr<Topology>> to_start;
    {
      std::scoped_lock adm(_adm_mutex);
      if (_adm_pending > 0) --_adm_pending;
      if (_adm_started > 0) --_adm_started;
      if (_options.breaker_threshold > 0) breaker_update_locked(cq->owner, *self);
      auto it = _adm_clients.find(cq->owner);
      if (it != _adm_clients.end()) {
        if (it->second.pending > 0) --it->second.pending;
        // GC trivial entries so the map tracks active clients and open /
        // cooling breakers only (breaker state must survive idle periods).
        if (it->second.pending == 0 && !it->second.probe_in_flight &&
            it->second.breaker == AdmissionClient::Breaker::closed &&
            it->second.consecutive_failures == 0) {
          _adm_clients.erase(it);
        }
      }
      if (next != nullptr && next->_admit != Topology::AdmitState::queued) {
        // The front we captured at pop time was shed before we reached this
        // lock (the shed erased it from the queue): chain to the current
        // front instead - starting the captured one would finish it twice.
        std::scoped_lock requeue(cq->mutex);
        next = cq->queue.empty() ? nullptr : cq->queue.front();
        if (next != nullptr && next->_admit != Topology::AdmitState::queued) {
          next = nullptr;
        }
      }
      if (next != nullptr) {
        if (_options.max_concurrent_topologies == 0) {
          ++_adm_started;
          next->_admit = Topology::AdmitState::started;
          to_start.push_back(next);
        } else {
          // With a concurrency cap the freed slot is contended: route the
          // same-client continuation through the ready ring so the DRR /
          // priority arbiter picks the next run - direct continuation would
          // let a deep-queued hot client monopolize the slot it just freed.
          ring_push_locked(std::static_pointer_cast<ClientQueue>(self->_client_hold),
                           next->_priority);
        }
      }
      dispatch_ready_locked(to_start);
      _adm_cv.notify_all();  // a pending slot freed: wake blocked submitters
    }
    for (auto& t : to_start) start(*t);
    if (drained) release_client(cq);
  }
  {
    std::scoped_lock lock(_done_mutex);
    _num_topologies.fetch_sub(1, std::memory_order_relaxed);
    _done_cv.notify_all();
  }
  self->finish();
}

void Executor::register_live(const std::shared_ptr<Topology>& topology) {
  std::scoped_lock lock(_live_mutex);
  // Completing workers never erase their entry (finish() must stay their
  // last action), so dead entries pile up here until a writer reclaims
  // them.  Prune only once they clearly outnumber the live runs, keeping
  // the amortized cost of this call O(1).
  if (_live.size() >=
      2 * _num_topologies.load(std::memory_order_relaxed) + 8) {
    for (auto it = _live.begin(); it != _live.end();) {
      it = it->second.expired() ? _live.erase(it) : std::next(it);
    }
  }
  // insert_or_assign: the allocator can reuse a retired topology's address,
  // so an expired entry may still squat on this key.
  _live.insert_or_assign(topology.get(), topology);
}

void Executor::arm_deadline(Topology& topology, RunPolicy policy) {
  detail::ErrorState* state = topology.error_state();
  state->set_deadline(std::chrono::steady_clock::now() + policy.timeout);
  // The callback captures the *shared* state (not the topology), so a run
  // finishing before its deadline is never pinned nor dangled; the backend
  // pointer is safe because wheel callbacks run on the wheel's service
  // thread, which the backend joins before any of its teardown.
  topology._deadline_timer = _backend->timer_wheel()->schedule_after(
      policy.timeout,
      [shared = topology.shared_error_state(), backend = _backend.get()] {
        if (shared->expire("run deadline exceeded")) {
          if (auto obs = backend->observer()) obs->on_topology_timeout();
        }
      });
}

void Executor::disarm_deadline(Topology& topology) {
  if (topology._deadline_timer == detail::TimerWheel::kInvalidTimer) return;
  if (auto wheel = _backend->timer_wheel_if_created()) {
    wheel->cancel(topology._deadline_timer);
  }
  topology._deadline_timer = detail::TimerWheel::kInvalidTimer;
}

void Executor::release_client(ClientQueue* cq) {
  // Destroy the registry entry only outside both locks (`hold` outlives the
  // scope), and only when the queue is still drained: a concurrent submit
  // may have pushed - and holds the registry lock across find+push - so the
  // re-check under both locks is authoritative.
  std::shared_ptr<ClientQueue> hold;
  {
    std::scoped_lock clients_lock(_clients_mutex);
    auto it = _clients.find(cq->owner);
    if (it == _clients.end() || it->second.get() != cq) return;
    std::scoped_lock queue_lock(cq->mutex);
    if (!cq->queue.empty()) return;
    hold = std::move(it->second);
    _clients.erase(it);
  }
}

void Executor::wait_for_all() {
  // Counter-based drain: returns once every run has retired its last task.
  // The completing worker sets the run's promise a few instructions AFTER
  // this wakeup (finish() is deliberately its last action; see
  // on_topology_done) - callers needing every handle future ready as well
  // should go through shutdown(), which additionally waits on the futures.
  std::unique_lock lock(_done_mutex);
  _done_cv.wait(lock, [this] {
    return _num_topologies.load(std::memory_order_relaxed) == 0 &&
           _num_asyncs.load(std::memory_order_relaxed) == 0;
  });
}

bool Executor::wait_for_all_for(std::chrono::milliseconds timeout) {
  std::unique_lock lock(_done_mutex);
  return _done_cv.wait_for(lock, timeout, [this] {
    return _num_topologies.load(std::memory_order_relaxed) == 0 &&
           _num_asyncs.load(std::memory_order_relaxed) == 0;
  });
}

void Executor::shutdown(ShutdownMode mode) {
  // Serialized so concurrent shutdown() callers (including the destructor
  // after an explicit shutdown) all block until the drain completed.
  std::scoped_lock shutdown_lock(_shutdown_mutex);
  _shutdown.store(true, std::memory_order_release);
  if (_admission_active) {
    // Submitters blocked in the backpressure wait re-check the flag on wake
    // and fail with ShutdownError (not OverloadError) instead of waiting for
    // capacity that may never free.
    std::scoped_lock adm(_adm_mutex);
    _adm_cv.notify_all();
  }
  // Pin every registered run (queued and dispatched) that is still alive.
  // The flag above is already set, so no new run can register concurrently
  // except one that passed throw_if_shutdown() just before it - that run
  // completes normally and is covered by the counter wait below.
  std::vector<std::shared_ptr<Topology>> live;
  {
    std::scoped_lock lock(_live_mutex);
    live.reserve(_live.size());
    for (auto& [ptr, weak] : _live) {
      if (auto topology = weak.lock()) live.push_back(std::move(topology));
    }
  }
  if (mode == ShutdownMode::abort) {
    // Cancel every queued and in-flight graph run; each drains through the
    // cooperative skip-but-finalize path, so completion (and thus the
    // wait below) stays deterministic.  In-flight asyncs are left to run:
    // skipping one would leave its promise forever unfulfilled.
    for (auto& topology : live) topology->cancel();
  }
  wait_for_all();
  // Readiness guarantee: the counters hit zero a few instructions before the
  // last promise is set (see on_topology_done), so wait each pinned run's
  // future into readiness - a ready future costs one load, and at most the
  // runs mid-tail block for those few instructions.  Asyncs need no such
  // pass: their promise is fulfilled inside the task, before the counter
  // decrement.  After this, every handle handed out is ready.
  for (auto& topology : live) topology->future().wait();
  {
    std::scoped_lock lock(_live_mutex);
    _live.clear();
  }
  disable_watchdog();
}

void Executor::enable_watchdog(WatchdogOptions options) {
  // Probes first: the watchdog thread samples them from its first tick.
  _backend->enable_progress_probes();
  std::scoped_lock lock(_watchdog_mutex);
  _watchdog_options = std::move(options);
  if (_watchdog.joinable()) return;  // already running: options updated
  _watchdog_stop = false;
  _watchdog = std::thread([this] { watchdog_loop(); });
}

void Executor::disable_watchdog() {
  std::thread worker;
  {
    std::scoped_lock lock(_watchdog_mutex);
    if (!_watchdog.joinable()) return;
    _watchdog_stop = true;
    worker = std::move(_watchdog);
  }
  _watchdog_cv.notify_all();
  worker.join();
}

bool Executor::watchdog_enabled() const {
  std::scoped_lock lock(_watchdog_mutex);
  return _watchdog.joinable();
}

void Executor::watchdog_loop() {
  std::unique_lock lock(_watchdog_mutex);
  while (!_watchdog_stop) {
    const WatchdogOptions options = _watchdog_options;
    if (_watchdog_cv.wait_for(lock, options.period, [this] { return _watchdog_stop; })) {
      break;
    }
    lock.unlock();

    // 1. Deadline sweep (belt-and-braces over the timer wheel): collect the
    // expired states under the registry locks, fire expire() outside them -
    // the observer hook is user code and must not run under our locks.
    std::vector<std::shared_ptr<detail::ErrorState>> expired;
    const auto now = std::chrono::steady_clock::now();
    {
      std::scoped_lock clients_lock(_clients_mutex);
      for (auto& [owner, cq] : _clients) {
        std::scoped_lock queue_lock(cq->mutex);
        for (auto& topology : cq->queue) {
          detail::ErrorState* state = topology->error_state();
          if (state->draining()) continue;
          if (auto d = state->deadline(); d && *d <= now) {
            expired.push_back(topology->shared_error_state());
          }
        }
      }
    }
    for (auto& state : expired) {
      if (state->expire("run deadline exceeded")) {
        if (auto obs = _backend->observer()) obs->on_topology_timeout();
      }
    }

    // 2. Progress-probe scan: a worker continuously inside one task for
    // longer than the threshold flags a stall.
    bool stalled = false;
    for (const auto& sample : _backend->sample_probes()) {
      if (sample.node != nullptr && sample.busy_for >= options.task_threshold) {
        stalled = true;
        break;
      }
    }
    if (stalled && options.on_stall) options.on_stall(stall_report());

    lock.lock();
  }
}

void Executor::dump_state(std::ostream& os) const {
  _backend->dump_state(os);
  // Progress probes (allocated by enable_watchdog): one line per busy
  // worker, from atomics only - the Node* is deliberately NOT dereferenced
  // (the task may retire, and an async run free its node, mid-print).
  const auto samples = _backend->sample_probes();
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].node == nullptr) continue;
    os << "worker " << i << ": busy in one task for "
       << std::chrono::duration_cast<std::chrono::milliseconds>(samples[i].busy_for)
              .count()
       << " ms (" << samples[i].completed << " task(s) completed)\n";
  }
  if (auto wheel = _backend->timer_wheel_if_created()) {
    if (const std::size_t pending = wheel->num_pending(); pending > 0) {
      os << "pending resilience timers (retry backoff / deadline / "
            "cancel_after): "
         << pending << "\n";
    }
  }
  os << "in-flight graph runs: " << num_topologies()
     << ", in-flight asyncs: " << num_asyncs() << "\n";
  if (_admission_active) {
    std::scoped_lock adm(_adm_mutex);
    os << "admission: " << _adm_pending << " pending";
    if (_options.max_pending_topologies != 0) {
      os << "/" << _options.max_pending_topologies;
    }
    os << ", " << _adm_started << " started";
    if (_options.max_concurrent_topologies != 0) {
      os << "/" << _options.max_concurrent_topologies;
    }
    std::size_t ringed = 0;
    for (const auto& ring : _adm_ready) ringed += ring.size();
    if (ringed > 0) os << ", " << ringed << " client(s) awaiting a slot";
    os << "; admitted " << num_admitted() << ", rejected " << num_rejected()
       << ", shed " << num_shed();
    if (_options.breaker_threshold > 0) {
      std::size_t open = 0;
      for (const auto& [owner, ac] : _adm_clients) {
        if (ac.breaker != AdmissionClient::Breaker::closed) ++open;
      }
      os << ", breaker trips " << num_breaker_trips() << " (" << open
         << " open/half-open)";
    }
    os << "\n";
  }
  std::scoped_lock clients_lock(_clients_mutex);
  for (const auto& [owner, cq] : _clients) {
    std::scoped_lock queue_lock(cq->mutex);
    os << "client " << owner << ": " << cq->queue.size() << " queued run(s)";
    if (!cq->queue.empty()) {
      // Front = the run in flight.  num_active() is an atomic snapshot, so
      // this stays race-free while the graph executes (unlike a recursive
      // graph-size walk, which would chase subflow pointers mid-spawn).
      const auto& front = cq->queue.front();
      os << "; running: " << front->num_active()
         << " in-flight task execution(s)";
      // Resilience policies and node kinds of the running graph: top-level
      // nodes only (the list is immutable during the run; subflows are not
      // chased mid-spawn).  Condition nodes report their last-returned
      // branch index (-1 = not yet taken), which is what makes a stuck
      // in-graph loop diagnosable: a loop that stopped converging shows the
      // same branch lap after lap.
      std::size_t with_policy = 0;
      int failed_attempts = 0;
      std::size_t modules = 0;
      std::size_t node_index = 0;
      std::string conditions;
      for (const auto& node : front->graph()) {
        if (const auto* pol = node.resilience()) {
          ++with_policy;
          failed_attempts += pol->failed_attempts.load(std::memory_order_relaxed);
        }
        if (node.is_module()) ++modules;
        if (node.is_condition()) {
          if (!conditions.empty()) conditions += ", ";
          conditions += node.name().empty() ? "task#" + std::to_string(node_index)
                                            : "\"" + node.name() + "\"";
          conditions += " last_branch=" + std::to_string(node.last_branch());
        }
        ++node_index;
      }
      if (with_policy > 0) {
        os << "; " << with_policy << " task(s) with retry/fallback policies ("
           << failed_attempts << " failed attempt(s) so far)";
      }
      if (modules > 0) os << "; " << modules << " module task(s)";
      if (!conditions.empty()) os << "; condition(s): " << conditions;
      detail::ErrorState* state = front->error_state();
      if (auto d = state->deadline()) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(*d - now);
        if (remaining.count() >= 0) {
          os << " [deadline in " << remaining.count() << " ms]";
        } else if (!state->draining()) {
          os << " [deadline exceeded " << -remaining.count() << " ms ago]";
        }
      }
      if (front->is_cancelled()) {
        os << (state->timed_out.load(std::memory_order_relaxed)
                   ? " [draining: deadline exceeded]"
               : front->exception() ? " [draining: task exception]"
                                    : " [draining: cancelled]");
      }
    }
    os << "\n";
  }
}

std::string Executor::stall_report() const {
  std::ostringstream os;
  os << "=== executor stall report ===\n";
  dump_state(os);
  return os.str();
}

Executor::Metrics Executor::metrics() const {
  Metrics m;
  m.scheduler = _backend->stats();
  m.num_topologies = num_topologies();
  m.num_asyncs = num_asyncs();
  m.admission_active = _admission_active;
  m.admitted = num_admitted();
  m.rejected = num_rejected();
  m.shed = num_shed();
  m.breaker_trips = num_breaker_trips();
  m.shutdown = _shutdown.load(std::memory_order_relaxed);
  if (_admission_active) {
    std::scoped_lock adm(_adm_mutex);
    m.adm_pending = _adm_pending;
    m.adm_started = _adm_started;
    for (const auto& [owner, ac] : _adm_clients) {
      if (ac.breaker != AdmissionClient::Breaker::closed) ++m.breakers_open;
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// Taskflow
// ---------------------------------------------------------------------------

Taskflow::Taskflow() : Taskflow(std::thread::hardware_concurrency()) {}

Taskflow::Taskflow(std::size_t num_workers)
    : FlowBuilder(detail::GraphOwner::graph, num_workers),
      _legacy_workers(num_workers == 0 ? 1 : num_workers) {}

Taskflow::Taskflow(std::shared_ptr<ExecutorInterface> executor)
    : FlowBuilder(detail::GraphOwner::graph, 1), _legacy_workers(1) {
  // A caller-provided backend cannot be adopted lazily (the shared_ptr
  // would have to be stashed anyway), so wrap it eagerly; no threads are
  // created here beyond the backend's own.
  _legacy = std::make_shared<Executor>(std::move(executor));
  default_parallelism(_legacy->num_workers());
}

Taskflow::~Taskflow() { wait_for_topologies(); }

Executor& Taskflow::legacy() const {
  std::scoped_lock lock(_legacy_mutex);
  if (_legacy == nullptr) _legacy = std::make_shared<Executor>(_legacy_workers);
  return *_legacy;
}

ExecutionHandle Taskflow::dispatch() {
  if (detail::GraphOwner::graph.empty()) {
    // Nothing to run: hand back a ready handle.
    return ExecutionHandle{};
  }
  // Check before the move so a failed dispatch leaves the graph intact.
  throw_if_cyclic(detail::GraphOwner::graph, "dispatch");
  auto topology = legacy().dispatch_owned(std::move(detail::GraphOwner::graph));
  detail::GraphOwner::graph = Graph{};  // the moved-from member gets a fresh graph
  _dispatched.push_back(topology);
  return legacy().handle_of(topology);
}

void Taskflow::silent_dispatch() { (void)dispatch(); }

ExecutionHandle Taskflow::run(Taskflow& taskflow) {
  auto topology = legacy().submit(taskflow, 1, nullptr);
  if (topology == nullptr) return ExecutionHandle{};
  // Retain legacy-run topologies like dispatched ones so wait_for_all()
  // observes (and rethrows) their outcome in submission order.
  _dispatched.push_back(topology);
  return legacy().handle_of(topology);
}

void Taskflow::run_n(Taskflow& taskflow, std::size_t n) {
  // get() (not wait()) so a failing run rethrows immediately and aborts the
  // remaining iterations; a cancelled run completes its future normally and
  // likewise stops the sequence instead of spinning through dead runs.
  for (std::size_t i = 0; i < n; ++i) {
    ExecutionHandle handle = run(taskflow);
    handle.get();
    if (handle.is_cancelled()) break;
  }
}

void Taskflow::wait_for_all() {
  if (!detail::GraphOwner::graph.empty()) silent_dispatch();
  wait_for_topologies();
  // Every topology has fully drained; now surface the first failure (in
  // dispatch order).  Release topologies first so the taskflow is reusable
  // even when rethrowing.
  std::exception_ptr first;
  for (const auto& topology : _dispatched) {
    if (!first) first = topology->exception();
  }
  _dispatched.clear();
  if (first) std::rethrow_exception(first);
}

bool Taskflow::wait_for_all_for(std::chrono::milliseconds timeout) {
  if (!detail::GraphOwner::graph.empty()) silent_dispatch();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (const auto& topology : _dispatched) {
    if (topology->future().wait_until(deadline) != std::future_status::ready) {
      return false;  // stalled: topologies kept for stall_report / retry
    }
  }
  std::exception_ptr first;
  for (const auto& topology : _dispatched) {
    if (!first) first = topology->exception();
  }
  _dispatched.clear();
  if (first) std::rethrow_exception(first);
  return true;
}

std::string Taskflow::stall_report() const {
  std::ostringstream os;
  os << "=== taskflow stall report ===\n";
  legacy().dump_state(os);
  std::size_t i = 0;
  for (const auto& topology : _dispatched) {
    const long active = topology->num_active();
    os << "topology " << i++ << ": " << active
       << " in-flight task execution(s) over "
       << topology->graph().size_recursive() << " node(s)";
    std::size_t node_index = 0;
    for (const auto& node : topology->graph()) {
      if (node.is_condition()) {
        os << "; condition "
           << (node.name().empty() ? "task#" + std::to_string(node_index)
                                   : "\"" + node.name() + "\"")
           << " last_branch=" << node.last_branch();
      } else if (node.is_module()) {
        os << "; module "
           << (node.name().empty() ? "task#" + std::to_string(node_index)
                                   : "\"" + node.name() + "\"");
      }
      ++node_index;
    }
    if (topology->is_cancelled()) {
      os << (topology->exception() ? " [draining: task exception]"
                                   : " [draining: cancelled]");
    }
    os << (active == 0 ? " [complete]\n" : "\n");
  }
  if (i == 0) os << "no dispatched topologies\n";
  return os.str();
}

void Taskflow::wait_for_topologies() {
  for (const auto& topology : _dispatched) topology->future().wait();
}

std::size_t Taskflow::num_workers() const { return legacy().num_workers(); }

const std::shared_ptr<ExecutorInterface>& Taskflow::executor() const {
  return legacy().backend();
}

std::string Taskflow::dump() const {
  return dump_dot(detail::GraphOwner::graph, "Taskflow");
}

std::string Taskflow::dump_topologies() const {
  std::ostringstream os;
  std::size_t i = 0;
  for (const auto& topology : _dispatched) {
    dump_dot(os, topology->graph(), "Topology_" + std::to_string(i++));
  }
  return os.str();
}

}  // namespace tf
