#include "taskflow/taskflow.hpp"

#include <exception>
#include <sstream>

#include "support/env.hpp"
#include "taskflow/dot.hpp"

namespace tf {

namespace {

// Throws tf::CycleError when `graph` is cyclic.  Runs before the graph is
// handed to a Topology, so a failed dispatch leaves the caller's graph
// intact (the scratched join counters are re-initialized by the next arm()).
// REPRO_CYCLE_CHECK=0 skips the O(V+E) sweep for dispatch-latency-critical
// code that guarantees acyclicity by construction.
void throw_if_cyclic(Graph& graph, const char* origin) {
  if (!support::repro_cycle_check()) return;
  if (std::string cycle = detail::describe_cycle(graph); !cycle.empty()) {
    throw CycleError(std::string(origin) + ": " + cycle);
  }
}

}  // namespace

Taskflow::Taskflow(std::size_t num_workers)
    : Taskflow(std::make_shared<WorkStealingExecutor>(num_workers)) {}

Taskflow::Taskflow(std::shared_ptr<ExecutorInterface> executor)
    : FlowBuilder(detail::GraphOwner::graph,
                  executor == nullptr ? 1 : executor->num_workers()),
      _executor(std::move(executor)) {
  if (_executor == nullptr) {
    _executor = std::make_shared<WorkStealingExecutor>();
    _default_par = _executor->num_workers();
  }
}

Taskflow::~Taskflow() { wait_for_topologies(); }

ExecutionHandle Taskflow::dispatch() {
  if (detail::GraphOwner::graph.empty()) {
    // Nothing to run: hand back a ready handle.
    return ExecutionHandle{};
  }
  throw_if_cyclic(detail::GraphOwner::graph, "dispatch");
  Topology& topology = _topologies.emplace_back(std::move(detail::GraphOwner::graph));
  detail::GraphOwner::graph = Graph{};  // the moved-from member gets a fresh graph
  ExecutionHandle handle(topology.future(), topology.shared_error_state());
  _executor->schedule_batch(topology.sources());
  return handle;
}

void Taskflow::silent_dispatch() { (void)dispatch(); }

ExecutionHandle Taskflow::run(Framework& framework) {
  if (framework.graph().empty()) return ExecutionHandle{};
  throw_if_cyclic(framework.graph(), "run");
  Topology& topology = _topologies.emplace_back(&framework.graph());
  ExecutionHandle handle(topology.future(), topology.shared_error_state());
  _executor->schedule_batch(topology.sources());
  return handle;
}

void Taskflow::run_n(Framework& framework, std::size_t n) {
  // get() (not wait()) so a failing run rethrows immediately and aborts the
  // remaining iterations; a cancelled run completes its future normally and
  // likewise stops the sequence instead of spinning through dead runs.
  for (std::size_t i = 0; i < n; ++i) {
    ExecutionHandle handle = run(framework);
    handle.get();
    if (handle.is_cancelled()) break;
  }
}

void Taskflow::wait_for_all() {
  if (!detail::GraphOwner::graph.empty()) silent_dispatch();
  wait_for_topologies();
  // Every topology has fully drained; now surface the first failure (in
  // dispatch order).  Release topologies first so the taskflow is reusable
  // even when rethrowing.
  std::exception_ptr first;
  for (auto& topology : _topologies) {
    if (!first) first = topology.exception();
  }
  _topologies.clear();
  if (first) std::rethrow_exception(first);
}

bool Taskflow::wait_for_all_for(std::chrono::milliseconds timeout) {
  if (!detail::GraphOwner::graph.empty()) silent_dispatch();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (auto& topology : _topologies) {
    if (topology.future().wait_until(deadline) != std::future_status::ready) {
      return false;  // stalled: topologies kept for stall_report / retry
    }
  }
  std::exception_ptr first;
  for (auto& topology : _topologies) {
    if (!first) first = topology.exception();
  }
  _topologies.clear();
  if (first) std::rethrow_exception(first);
  return true;
}

std::string Taskflow::stall_report() const {
  std::ostringstream os;
  os << "=== taskflow stall report ===\n";
  _executor->dump_state(os);
  std::size_t i = 0;
  for (const auto& topology : _topologies) {
    const long active = topology.num_active();
    os << "topology " << i++ << ": " << active << " unfinished task(s) of "
       << topology.graph().size_recursive();
    if (topology.is_cancelled()) {
      os << (topology.exception() ? " [draining: task exception]"
                                  : " [draining: cancelled]");
    }
    os << (active == 0 ? " [complete]\n" : "\n");
  }
  if (i == 0) os << "no dispatched topologies\n";
  return os.str();
}

void Taskflow::wait_for_topologies() {
  for (auto& topology : _topologies) topology.future().wait();
}

std::string Taskflow::dump() const {
  return dump_dot(detail::GraphOwner::graph, "Taskflow");
}

std::string Taskflow::dump_topologies() const {
  std::ostringstream os;
  std::size_t i = 0;
  for (const auto& topology : _topologies) {
    dump_dot(os, topology.graph(), "Topology_" + std::to_string(i++));
  }
  return os.str();
}

}  // namespace tf
