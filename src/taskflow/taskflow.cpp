#include "taskflow/taskflow.hpp"

#include <exception>
#include <sstream>

#include "support/env.hpp"
#include "taskflow/dot.hpp"

namespace tf {

namespace {

// Throws tf::CycleError when `graph` is cyclic.  Runs before the graph is
// handed to a Topology, so a failed dispatch leaves the caller's graph
// intact (the scratched join counters are re-initialized by the next arm()).
// REPRO_CYCLE_CHECK=0 skips the O(V+E) sweep for dispatch-latency-critical
// code that guarantees acyclicity by construction.
void throw_if_cyclic(Graph& graph, const char* origin) {
  if (!support::repro_cycle_check()) return;
  if (std::string cycle = detail::describe_cycle(graph); !cycle.empty()) {
    throw CycleError(std::string(origin) + ": " + cycle);
  }
}

}  // namespace

namespace detail {

// One Executor::async submission: a single-node graph and its topology, heap
// boxed so the executor can delete the whole run from the completion
// callback once the task retired.
struct AsyncRun {
  Graph graph;
  Topology topology{&graph};
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Executor::Executor(std::size_t num_workers)
    : _backend(std::make_shared<WorkStealingExecutor>(num_workers)) {}

Executor::Executor(std::shared_ptr<ExecutorInterface> backend)
    : _backend(std::move(backend)) {
  if (_backend == nullptr) _backend = std::make_shared<WorkStealingExecutor>();
}

Executor::~Executor() { wait_for_all(); }

ExecutionHandle Executor::run(Taskflow& taskflow) {
  return handle_of(submit(taskflow, 1, nullptr));
}

ExecutionHandle Executor::run_n(Taskflow& taskflow, std::size_t n) {
  return handle_of(submit(taskflow, n, nullptr));
}

ExecutionHandle Executor::run_until(Taskflow& taskflow, std::function<bool()> stop) {
  return handle_of(submit(taskflow, 1, std::move(stop)));
}

std::shared_ptr<Topology> Executor::submit(Taskflow& taskflow, std::size_t n,
                                           std::function<bool()> stop) {
  if (taskflow.graph().empty() || n == 0) return nullptr;

  auto topology = std::make_shared<Topology>(&taskflow.graph());
  topology->_client = this;
  topology->_kind = Topology::RunKind::queued;
  topology->_remaining = n;
  topology->_stop_pred = std::move(stop);

  // Find-or-create the client's run queue, then push under BOTH locks
  // (registry, then queue - the global lock order): releasing the registry
  // lock before the push would let a concurrent drain erase the queue and a
  // concurrent submit create a second one, breaking same-taskflow FIFO
  // serialization.
  std::unique_lock clients_lock(_clients_mutex);
  auto& slot = _clients[&taskflow];
  if (slot == nullptr) slot = std::make_shared<ClientQueue>(&taskflow);
  std::shared_ptr<ClientQueue> cq = slot;
  std::unique_lock queue_lock(cq->mutex);
  clients_lock.unlock();

  const bool start_now = cq->queue.empty();
  if (start_now) {
    // An empty queue means nothing of this taskflow is queued or in flight,
    // so the cycle check (which scratches the graph's join counters) cannot
    // race task execution.  Queued resubmissions skip the re-check: the
    // graph is immutable while runs are in flight, so its verdict holds.
    try {
      throw_if_cyclic(taskflow.graph(), "run");
    } catch (...) {
      queue_lock.unlock();
      // Drop the (empty) queue we may have just registered, re-checking
      // under both locks: a concurrent submit may have pushed meanwhile.
      std::scoped_lock relock(_clients_mutex);
      auto it = _clients.find(&taskflow);
      if (it != _clients.end() && it->second == cq) {
        std::scoped_lock requeue(cq->mutex);
        if (cq->queue.empty()) _clients.erase(it);
      }
      throw;
    }
  }

  topology->_client_tag = cq.get();
  topology->_client_hold = cq;  // the queue outlives every run it holds
  cq->queue.push_back(topology);
  // Count under the queue lock: the completion-side decrement pops under
  // this lock first, so it can never overtake this increment.
  _num_topologies.fetch_add(1, std::memory_order_relaxed);
  queue_lock.unlock();

  if (start_now) start(*topology);
  return topology;
}

std::shared_ptr<Topology> Executor::dispatch_owned(Graph&& graph) {
  // Paper-era dispatch: one-shot topologies of one taskflow run
  // concurrently, so they bypass the per-client FIFO queue.  The caller
  // (Taskflow::dispatch) has already cycle-checked the graph.
  auto topology = std::make_shared<Topology>(std::move(graph));
  topology->_client = this;
  topology->_kind = Topology::RunKind::dispatched;
  topology->_client_hold = topology;  // self-keepalive until finish()
  _num_topologies.fetch_add(1, std::memory_order_relaxed);
  start(*topology);
  return topology;
}

void Executor::submit_async(StaticWork&& work) {
  auto* box = new detail::AsyncRun;
  Node& node = box->graph.emplace_back();
  node._work.emplace<StaticWork>(std::move(work));
  box->topology._client = this;
  box->topology._kind = Topology::RunKind::async;
  box->topology._client_tag = box;
  _num_asyncs.fetch_add(1, std::memory_order_relaxed);
  start(box->topology);
}

void Executor::start(Topology& topology) {
  topology.arm();
  _backend->schedule_batch(topology.sources());
}

void Executor::on_topology_done(Topology& topology) {
  // Runs on the worker that retired the topology's last task.  Protocol:
  // executor bookkeeping first, the in-flight decrement + wakeup as the
  // LAST touch of executor state (a wait_for_all caller - possibly the
  // destructor - may proceed the instant the counters read zero), and
  // finish() as the LAST touch of the topology (the handle holder may
  // release it the moment the future becomes ready).
  switch (topology._kind) {
    case Topology::RunKind::async: {
      auto* box = static_cast<detail::AsyncRun*>(topology._client_tag);
      delete box;  // the user-visible promise lives in the task callable
      std::scoped_lock lock(_done_mutex);
      _num_asyncs.fetch_sub(1, std::memory_order_relaxed);
      _done_cv.notify_all();
      return;
    }

    case Topology::RunKind::dispatched: {
      std::shared_ptr<Topology> self =
          std::static_pointer_cast<Topology>(std::move(topology._client_hold));
      {
        std::scoped_lock lock(_done_mutex);
        _num_topologies.fetch_sub(1, std::memory_order_relaxed);
        _done_cv.notify_all();
      }
      self->finish();
      return;
    }

    case Topology::RunKind::queued:
      break;
  }

  // Queued run (Executor::run / run_n / run_until): decide between the next
  // repeat and completion.  A draining run (task exception or cancel) stops
  // the remaining repeats; otherwise run_until consults its predicate and
  // run_n its countdown.
  bool done = topology.error_state()->draining();
  if (!done) {
    done = topology._stop_pred ? topology._stop_pred() : (--topology._remaining == 0);
  }
  if (!done) {
    start(topology);  // re-arm the same graph for the next repeat
    return;
  }

  // Final repeat done: pop from the client FIFO and hand the worker pool to
  // the next pending run of this taskflow, if any.
  auto* cq = static_cast<ClientQueue*>(topology._client_tag);
  std::shared_ptr<Topology> self;  // keeps the topology alive through finish()
  std::shared_ptr<Topology> next;
  bool drained = false;
  {
    std::scoped_lock lock(cq->mutex);
    self = std::move(cq->queue.front());
    cq->queue.pop_front();
    if (cq->queue.empty()) {
      drained = true;
    } else {
      next = cq->queue.front();
    }
  }
  if (next != nullptr) start(*next);
  if (drained) release_client(cq);
  {
    std::scoped_lock lock(_done_mutex);
    _num_topologies.fetch_sub(1, std::memory_order_relaxed);
    _done_cv.notify_all();
  }
  self->finish();
}

void Executor::release_client(ClientQueue* cq) {
  // Destroy the registry entry only outside both locks (`hold` outlives the
  // scope), and only when the queue is still drained: a concurrent submit
  // may have pushed - and holds the registry lock across find+push - so the
  // re-check under both locks is authoritative.
  std::shared_ptr<ClientQueue> hold;
  {
    std::scoped_lock clients_lock(_clients_mutex);
    auto it = _clients.find(cq->owner);
    if (it == _clients.end() || it->second.get() != cq) return;
    std::scoped_lock queue_lock(cq->mutex);
    if (!cq->queue.empty()) return;
    hold = std::move(it->second);
    _clients.erase(it);
  }
}

void Executor::wait_for_all() {
  std::unique_lock lock(_done_mutex);
  _done_cv.wait(lock, [this] {
    return _num_topologies.load(std::memory_order_relaxed) == 0 &&
           _num_asyncs.load(std::memory_order_relaxed) == 0;
  });
}

bool Executor::wait_for_all_for(std::chrono::milliseconds timeout) {
  std::unique_lock lock(_done_mutex);
  return _done_cv.wait_for(lock, timeout, [this] {
    return _num_topologies.load(std::memory_order_relaxed) == 0 &&
           _num_asyncs.load(std::memory_order_relaxed) == 0;
  });
}

void Executor::dump_state(std::ostream& os) const {
  _backend->dump_state(os);
  os << "in-flight graph runs: " << num_topologies()
     << ", in-flight asyncs: " << num_asyncs() << "\n";
  std::scoped_lock clients_lock(_clients_mutex);
  for (const auto& [owner, cq] : _clients) {
    std::scoped_lock queue_lock(cq->mutex);
    os << "client " << owner << ": " << cq->queue.size() << " queued run(s)";
    if (!cq->queue.empty()) {
      // Front = the run in flight.  num_active() is an atomic snapshot, so
      // this stays race-free while the graph executes (unlike a recursive
      // graph-size walk, which would chase subflow pointers mid-spawn).
      const auto& front = cq->queue.front();
      os << "; running: " << front->num_active() << " unfinished task(s)";
      if (front->is_cancelled()) {
        os << (front->exception() ? " [draining: task exception]"
                                  : " [draining: cancelled]");
      }
    }
    os << "\n";
  }
}

std::string Executor::stall_report() const {
  std::ostringstream os;
  os << "=== executor stall report ===\n";
  dump_state(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Taskflow
// ---------------------------------------------------------------------------

Taskflow::Taskflow() : Taskflow(std::thread::hardware_concurrency()) {}

Taskflow::Taskflow(std::size_t num_workers)
    : FlowBuilder(detail::GraphOwner::graph, num_workers),
      _legacy_workers(num_workers == 0 ? 1 : num_workers) {}

Taskflow::Taskflow(std::shared_ptr<ExecutorInterface> executor)
    : FlowBuilder(detail::GraphOwner::graph, 1), _legacy_workers(1) {
  // A caller-provided backend cannot be adopted lazily (the shared_ptr
  // would have to be stashed anyway), so wrap it eagerly; no threads are
  // created here beyond the backend's own.
  _legacy = std::make_shared<Executor>(std::move(executor));
  _default_par = _legacy->num_workers();
}

Taskflow::~Taskflow() { wait_for_topologies(); }

Executor& Taskflow::legacy() const {
  std::scoped_lock lock(_legacy_mutex);
  if (_legacy == nullptr) _legacy = std::make_shared<Executor>(_legacy_workers);
  return *_legacy;
}

ExecutionHandle Taskflow::dispatch() {
  if (detail::GraphOwner::graph.empty()) {
    // Nothing to run: hand back a ready handle.
    return ExecutionHandle{};
  }
  // Check before the move so a failed dispatch leaves the graph intact.
  throw_if_cyclic(detail::GraphOwner::graph, "dispatch");
  auto topology = legacy().dispatch_owned(std::move(detail::GraphOwner::graph));
  detail::GraphOwner::graph = Graph{};  // the moved-from member gets a fresh graph
  _dispatched.push_back(topology);
  return Executor::handle_of(topology);
}

void Taskflow::silent_dispatch() { (void)dispatch(); }

ExecutionHandle Taskflow::run(Taskflow& taskflow) {
  auto topology = legacy().submit(taskflow, 1, nullptr);
  if (topology == nullptr) return ExecutionHandle{};
  // Retain legacy-run topologies like dispatched ones so wait_for_all()
  // observes (and rethrows) their outcome in submission order.
  _dispatched.push_back(topology);
  return Executor::handle_of(topology);
}

void Taskflow::run_n(Taskflow& taskflow, std::size_t n) {
  // get() (not wait()) so a failing run rethrows immediately and aborts the
  // remaining iterations; a cancelled run completes its future normally and
  // likewise stops the sequence instead of spinning through dead runs.
  for (std::size_t i = 0; i < n; ++i) {
    ExecutionHandle handle = run(taskflow);
    handle.get();
    if (handle.is_cancelled()) break;
  }
}

void Taskflow::wait_for_all() {
  if (!detail::GraphOwner::graph.empty()) silent_dispatch();
  wait_for_topologies();
  // Every topology has fully drained; now surface the first failure (in
  // dispatch order).  Release topologies first so the taskflow is reusable
  // even when rethrowing.
  std::exception_ptr first;
  for (const auto& topology : _dispatched) {
    if (!first) first = topology->exception();
  }
  _dispatched.clear();
  if (first) std::rethrow_exception(first);
}

bool Taskflow::wait_for_all_for(std::chrono::milliseconds timeout) {
  if (!detail::GraphOwner::graph.empty()) silent_dispatch();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (const auto& topology : _dispatched) {
    if (topology->future().wait_until(deadline) != std::future_status::ready) {
      return false;  // stalled: topologies kept for stall_report / retry
    }
  }
  std::exception_ptr first;
  for (const auto& topology : _dispatched) {
    if (!first) first = topology->exception();
  }
  _dispatched.clear();
  if (first) std::rethrow_exception(first);
  return true;
}

std::string Taskflow::stall_report() const {
  std::ostringstream os;
  os << "=== taskflow stall report ===\n";
  legacy().dump_state(os);
  std::size_t i = 0;
  for (const auto& topology : _dispatched) {
    const long active = topology->num_active();
    os << "topology " << i++ << ": " << active << " unfinished task(s) of "
       << topology->graph().size_recursive();
    if (topology->is_cancelled()) {
      os << (topology->exception() ? " [draining: task exception]"
                                   : " [draining: cancelled]");
    }
    os << (active == 0 ? " [complete]\n" : "\n");
  }
  if (i == 0) os << "no dispatched topologies\n";
  return os.str();
}

void Taskflow::wait_for_topologies() {
  for (const auto& topology : _dispatched) topology->future().wait();
}

std::size_t Taskflow::num_workers() const { return legacy().num_workers(); }

const std::shared_ptr<ExecutorInterface>& Taskflow::executor() const {
  return legacy().backend();
}

std::string Taskflow::dump() const {
  return dump_dot(detail::GraphOwner::graph, "Taskflow");
}

std::string Taskflow::dump_topologies() const {
  std::ostringstream os;
  std::size_t i = 0;
  for (const auto& topology : _dispatched) {
    dump_dot(os, topology->graph(), "Topology_" + std::to_string(i++));
  }
  return os.str();
}

}  // namespace tf
