#include "taskflow/taskflow.hpp"

#include <sstream>

#include "taskflow/dot.hpp"

namespace tf {

Taskflow::Taskflow(std::size_t num_workers)
    : Taskflow(std::make_shared<WorkStealingExecutor>(num_workers)) {}

Taskflow::Taskflow(std::shared_ptr<ExecutorInterface> executor)
    : FlowBuilder(detail::GraphOwner::graph,
                  executor == nullptr ? 1 : executor->num_workers()),
      _executor(std::move(executor)) {
  if (_executor == nullptr) {
    _executor = std::make_shared<WorkStealingExecutor>();
    _default_par = _executor->num_workers();
  }
}

Taskflow::~Taskflow() { wait_for_topologies(); }

std::shared_future<void> Taskflow::dispatch() {
  if (detail::GraphOwner::graph.empty()) {
    // Nothing to run: hand back a ready future.
    std::promise<void> done;
    done.set_value();
    return done.get_future().share();
  }
  Topology& topology = _topologies.emplace_back(std::move(detail::GraphOwner::graph));
  detail::GraphOwner::graph = Graph{};  // the moved-from member gets a fresh graph
  auto future = topology.future();
  _executor->schedule_batch(topology.sources());
  return future;
}

void Taskflow::silent_dispatch() { (void)dispatch(); }

std::shared_future<void> Taskflow::run(Framework& framework) {
  Topology& topology = _topologies.emplace_back(&framework.graph());
  auto future = topology.future();
  _executor->schedule_batch(topology.sources());
  return future;
}

void Taskflow::run_n(Framework& framework, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) run(framework).wait();
}

void Taskflow::wait_for_all() {
  if (!detail::GraphOwner::graph.empty()) silent_dispatch();
  wait_for_topologies();
  _topologies.clear();
}

void Taskflow::wait_for_topologies() {
  for (auto& topology : _topologies) topology.future().wait();
}

std::string Taskflow::dump() const {
  return dump_dot(detail::GraphOwner::graph, "Taskflow");
}

std::string Taskflow::dump_topologies() const {
  std::ostringstream os;
  std::size_t i = 0;
  for (const auto& topology : _topologies) {
    dump_dot(os, topology.graph(), "Topology_" + std::to_string(i++));
  }
  return os.str();
}

}  // namespace tf
