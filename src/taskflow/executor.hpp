// executor.hpp - pluggable executors (paper §III-E).
//
// ExecutorInterface is the pluggable scheduler abstraction: a Taskflow holds
// one via std::shared_ptr so an executor can be shared among multiple
// taskflow objects (modular development without thread over-subscription,
// paper §III-E).  Two implementations are provided:
//
//  * WorkStealingExecutor - the paper's default scheduler (Algorithm 1):
//    a mixed work-stealing / work-sharing strategy with
//      (1) a per-worker exclusive task *cache* enabling speculative
//          execution of linear task chains without queue round-trips,
//      (2) a precise *idler list*: preempted workers park on their own
//          condition variable and are woken one at a time, either exactly
//          when work arrives or probabilistically for load balancing,
//      (3) *batched* release: all successors made ready by one finishing
//          task are published with a single fence and a single wake_n pass
//          instead of one fence + mutex round-trip per successor, and
//      (4) a bounded *spin-then-park* phase so workers ride out short gaps
//          between bursts without paying the park/wake round-trip.
//
//  * SimpleExecutor - a plain central-queue work-sharing pool, used as the
//    pluggable alternative and by the executor ablation benchmark.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/cpu_topology.hpp"
#include "support/rng.hpp"
#include "taskflow/error.hpp"
#include "taskflow/graph.hpp"
#include "taskflow/observer.hpp"
#include "taskflow/timer_wheel.hpp"
#include "taskflow/wsq.hpp"

namespace tf {

namespace detail {

/// Ready successors collected while finalizing a task, batched so the
/// executor can publish them with one fence / one wake pass.  The first
/// kInline entries (the overwhelmingly common case) live on the stack;
/// larger fan-outs spill to the heap once.
class ReadyBatch {
 public:
  static constexpr std::size_t kInline = 16;

  void push(Node* node) {
    if (_spill.empty()) {
      if (_size < kInline) {
        _inline[_size++] = node;
        return;
      }
      _spill.reserve(kInline * 2);
      _spill.assign(_inline.begin(), _inline.end());
    }
    _spill.push_back(node);
  }

  [[nodiscard]] bool empty() const noexcept { return _size == 0 && _spill.empty(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return _spill.empty() ? _size : _spill.size();
  }
  [[nodiscard]] Node* const* data() const noexcept {
    return _spill.empty() ? _inline.data() : _spill.data();
  }

 private:
  std::array<Node*, kInline> _inline{};
  std::size_t _size{0};
  std::vector<Node*> _spill;
};

}  // namespace detail

class ExecutorInterface {
 public:
  virtual ~ExecutorInterface() = default;

  /// Schedule one ready node for execution.
  virtual void schedule(Node* node) = 0;

  /// Schedule a batch of ready nodes; default forwards to schedule().
  virtual void schedule_batch(Node* const* nodes, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) schedule(nodes[i]);
  }

  /// Convenience overload for callers holding a vector (e.g. dispatch).
  void schedule_batch(const std::vector<Node*>& nodes) {
    schedule_batch(nodes.data(), nodes.size());
  }

  /// Number of worker threads.
  [[nodiscard]] virtual std::size_t num_workers() const noexcept = 0;

  /// Write a one-shot diagnostic snapshot of the executor's scheduling state
  /// (queue depths, parked workers, counters) to `os` - the executor half of
  /// Taskflow::stall_report().  Reads only atomics, so it is safe (and
  /// race-free) to call from any thread while graphs are running; the
  /// numbers are a best-effort snapshot, not a consistent cut.
  virtual void dump_state(std::ostream& os) const;

  /// Machine-readable sibling of dump_state: the backend half of
  /// Executor::metrics() (service-layer /healthz probes).  Best-effort
  /// atomics-only snapshot, callable from any thread while graphs run.
  struct SchedulerStats {
    std::size_t num_workers{0};
    std::size_t queue_depth{0};   // tasks sitting in scheduler queues
    std::size_t num_idlers{0};    // parked workers (0 for SimpleExecutor)
    std::size_t steals{0};        // lifetime counters; 0 where untracked
    std::size_t cache_hits{0};
    std::size_t parks{0};
    std::size_t wakes{0};
    // Locality-aware scheduling counters (DESIGN.md §14); all zero unless
    // the executor runs with adaptive/slab-affine options enabled.
    std::size_t steals_same_core{0};
    std::size_t steals_same_node{0};
    std::size_t steals_remote{0};
    std::size_t steals_central{0};   // central-queue claims from steal passes
    std::size_t slab_placements{0};  // successors kept local for slab affinity
  };
  [[nodiscard]] virtual SchedulerStats stats() const {
    return SchedulerStats{num_workers(), 0, 0, 0, 0, 0, 0};
  }

  /// Attach (or swap) an observer.  Safe to call from any thread at any
  /// time, including while graphs are running: the hot path reads the
  /// observer through an acquire-loaded pointer, and set_observer publishes
  /// the fully set-up observer with a release store.  An observer attached
  /// before a dispatch is guaranteed to see the on_entry/on_exit pair of
  /// every task of that dispatch (tested in test_observer.cpp); one attached
  /// mid-run sees the tasks that start after the attach becomes visible.  A
  /// replaced observer is kept alive until the executor is destroyed, so
  /// workers holding the old pointer never dangle.
  void set_observer(std::shared_ptr<ExecutorObserverInterface> observer) {
    if (observer) observer->set_up(num_workers());
    std::scoped_lock lock(_observer_mutex);
    if (_observer) _retired_observers.push_back(std::move(_observer));
    _observer = std::move(observer);
    _observer_raw.store(_observer.get(), std::memory_order_release);
  }

  [[nodiscard]] std::shared_ptr<ExecutorObserverInterface> observer() const {
    std::scoped_lock lock(_observer_mutex);
    return _observer;
  }

  /// The executor's timer wheel (retry backoff, run deadlines, cancel_after).
  /// Created - together with its service thread - on first call, so
  /// executors that never touch a resilience feature never pay the thread.
  [[nodiscard]] const std::shared_ptr<detail::TimerWheel>& timer_wheel();

  /// The wheel if one was ever created, else nullptr (diagnostics: pending
  /// timer count in stall reports without forcing the thread into being).
  [[nodiscard]] std::shared_ptr<detail::TimerWheel> timer_wheel_if_created() const;

  // ---- per-worker progress probes (watchdog substrate) --------------------

  /// One sampled worker: the node it is currently executing (nullptr when
  /// between tasks), how long it has been on it, and its completion count.
  struct ProbeSample {
    const Node* node{nullptr};
    std::chrono::nanoseconds busy_for{0};
    std::uint64_t completed{0};
  };

  /// Switch on per-worker progress probes (idempotent; normally done by
  /// Executor::enable_watchdog).  While enabled, run_task stamps each task's
  /// begin/end into per-worker atomic slots - two relaxed stores plus one
  /// clock read per task, paid only when a watchdog asked for them.
  void enable_progress_probes();

  /// Race-free snapshot of every worker's probe; empty when probes were
  /// never enabled.  Safe from any thread while graphs run.
  [[nodiscard]] std::vector<ProbeSample> sample_probes() const;

 protected:
  /// Invoke `node`'s work on worker `worker_id`, expand dynamic subflows,
  /// release successors, and schedule every newly ready one as one batch.
  ///
  /// This is the single invocation path shared by every executor (both
  /// WorkStealingExecutor and SimpleExecutor route all tasks through it),
  /// which is what keeps the error model uniform across pluggable
  /// executors: the catch-all exception capture and the cancellation
  /// skip-but-finalize drain live here, so their semantics cannot diverge
  /// between executor implementations.
  void run_task(std::size_t worker_id, Node* node);

  /// Collect a finished node's ready successors into `ready` (for a
  /// condition node, exactly its `selected` branch - or nothing when
  /// selected is -1), notify its joined-subflow parent, and net the
  /// execution into its topology's scheduled count.  Does not schedule
  /// anything itself: the caller publishes `ready` in one batch.
  void finalize(Node* node, detail::ReadyBatch& ready, int selected = -1);

  /// Arm and schedule the (freshly built or instantiated) subgraph of
  /// `node`.  Returns true when the node's finalization is deferred to the
  /// last child of a joined subflow; false when there is nothing to wait for
  /// (empty subgraph, or a detached one).  Throws CycleError on a subgraph
  /// that could never complete.
  bool dispatch_subgraph(Node* node, bool detached);

  /// Stop and join the timer wheel thread if one exists.  Every derived
  /// destructor MUST call this before tearing down its own scheduling state:
  /// wheel callbacks re-enter the virtual schedule(), so the wheel may not
  /// outlive the derived object.  Entries still pending are dropped - legal
  /// because an executor is only destroyed after all topologies (including
  /// any with waiting retries or live deadlines) have drained.
  void stop_timer_wheel() noexcept;

  /// Acquire/release-published observer pointer read by run_task on every
  /// task (a plain load on x86); ownership lives behind _observer_mutex.
  std::atomic<ExecutorObserverInterface*> _observer_raw{nullptr};
  mutable std::mutex _observer_mutex;
  std::shared_ptr<ExecutorObserverInterface> _observer;
  std::vector<std::shared_ptr<ExecutorObserverInterface>> _retired_observers;

 private:
  /// One worker's progress slot, cache-line padded so the per-task stamps of
  /// neighbouring workers never share a line.
  struct alignas(64) WorkerProbe {
    std::atomic<const Node*> current{nullptr};
    std::atomic<std::int64_t> since_ns{0};
    std::atomic<std::uint64_t> completed{0};
  };

  /// Lazily created resilience plumbing; the raw pointers are the hot-path
  /// probes (one acquire load each), ownership sits behind _resilience_mutex.
  mutable std::mutex _resilience_mutex;
  std::shared_ptr<detail::TimerWheel> _timer_wheel;
  std::atomic<detail::TimerWheel*> _timer_wheel_raw{nullptr};
  std::unique_ptr<WorkerProbe[]> _probes;
  std::atomic<WorkerProbe*> _probes_raw{nullptr};
  std::size_t _num_probes{0};  // written once before _probes_raw publishes
};

/// CPU placement shape used by WorkStealingOptions::numa_policy.
using NumaPolicy = support::NumaPolicy;

/// Tuning knobs of WorkStealingExecutor; defaults match the paper's design.
/// The ablation bench (bench_ablation_executor) sweeps these.
struct WorkStealingOptions {
  /// Per-worker cache slot for speculative linear-chain execution
  /// (Algorithm 1 lines 16-25).  Disabling routes every task through queues.
  bool enable_worker_cache{true};
  /// Probability that a worker wakes one idler after draining its chain
  /// (Algorithm 1 lines 26-28).  0 disables proactive load balancing.
  double balance_wake_probability{1.0 / 64.0};
  /// Steal sweeps over all victims before a worker gives up a search pass.
  int steal_rounds{2};
  /// Bounded exponential-backoff spin/yield iterations a worker performs
  /// after an empty sweep before parking on its condition variable.  Each
  /// iteration re-checks the local queue, the victims, and the central
  /// queue.  0 restores park-immediately behavior.
  int spin_tries{64};

  // ---- locality layer (DESIGN.md §14); every knob defaults OFF so the
  // ---- zero-policy hot path is exactly the flat Algorithm 1 scheduler.

  /// Pin each worker thread to one logical CPU of the discovered machine
  /// topology (sysfs on Linux; a no-op on hosts where discovery falls back
  /// to the flat single-node shape, since pinning to "any of one node" is
  /// what the OS does anyway - workers are still pinned to distinct CPUs).
  bool pin_workers{false};
  /// CPU assignment shape when pinning: compact fills one NUMA node's cores
  /// before the next (dense cache/memory sharing), scatter round-robins
  /// workers across nodes (aggregate bandwidth).
  NumaPolicy numa_policy{NumaPolicy::compact};
  /// Adaptive steal-victim selection: probe victims near-first (same core,
  /// then same NUMA node, then remote), ordered within each tier by an EWMA
  /// of past steal success, and widen the sweep to farther tiers only after
  /// nearer ones run dry (per-worker adaptive backoff).  Replaces the flat
  /// random sweep of steal_pass.
  bool adaptive_steal{false};
  /// EWMA smoothing factor of the per-victim success score (0 < a <= 1):
  /// score <- (1-a)*score + a*outcome per probe.  Larger adapts faster,
  /// smaller remembers longer.
  double steal_ewma_alpha{0.25};
  /// Terminal stage of the adaptive backoff: after this many consecutive
  /// steal passes that swept the *widest* tier and still found nothing
  /// (local queues and the central queue all dry), the worker skips the
  /// spin/yield phase and parks directly, taking itself out of the CPU
  /// rotation instead of burning cycles re-probing a starved system.  The
  /// streak resets on any successful steal, central claim, or wakeup.
  /// <= 0 disables give-up parking (spin_tries applies unconditionally).
  int adaptive_park_patience{8};
  /// Slab-affine successor placement: when a finishing task releases a
  /// batch of successors, the ones living in the releasing worker's current
  /// arena slab are pushed at the owner's (LIFO) end of its deque and the
  /// rest at the steal (FIFO) end, so woken thieves drain the cold tasks
  /// while hot graph memory stays on the core that touched it.
  bool slab_affinity{false};
};

class WorkStealingExecutor final : public ExecutorInterface {
 public:
  explicit WorkStealingExecutor(std::size_t num_workers = std::thread::hardware_concurrency(),
                                WorkStealingOptions options = {});
  ~WorkStealingExecutor() override;

  WorkStealingExecutor(const WorkStealingExecutor&) = delete;
  WorkStealingExecutor& operator=(const WorkStealingExecutor&) = delete;

  void schedule(Node* node) override;
  void schedule_batch(Node* const* nodes, std::size_t n) override;
  using ExecutorInterface::schedule_batch;

  void dump_state(std::ostream& os) const override;
  [[nodiscard]] SchedulerStats stats() const override;

  [[nodiscard]] std::size_t num_workers() const noexcept override {
    return _workers.size();
  }

  /// Number of workers currently parked in the idler list (diagnostic).
  [[nodiscard]] std::size_t num_idlers() const noexcept {
    return static_cast<std::size_t>(_num_idlers.load(std::memory_order_relaxed));
  }

  /// Total successful steals across all workers (diagnostic/ablation).
  [[nodiscard]] std::size_t num_steals() const noexcept {
    return _steals.load(std::memory_order_relaxed);
  }

  /// Total direct cache hand-offs (speculative chain executions).
  [[nodiscard]] std::size_t num_cache_hits() const noexcept {
    return _cache_hits.load(std::memory_order_relaxed);
  }

  /// Total times a worker parked on its condition variable (diagnostic:
  /// together with num_wakes this measures park/wake churn; the
  /// spin-then-park phase exists to drive it down on bursty workloads).
  [[nodiscard]] std::size_t num_parks() const noexcept {
    return _parks.load(std::memory_order_relaxed);
  }

  /// Total condition-variable wakeups issued (precise, direct-handoff, and
  /// probabilistic load-balance wakes).
  [[nodiscard]] std::size_t num_wakes() const noexcept {
    return _wakes.load(std::memory_order_relaxed);
  }

  /// Successful steals by locality tier, summed over workers: tier 0 = same
  /// physical core, 1 = same NUMA node, 2 = remote node, 3 = central-queue
  /// claims from adaptive steal passes.  All zero without adaptive_steal.
  [[nodiscard]] std::size_t num_tier_steals(int tier) const noexcept;

  /// Victim probes issued by adaptive steal passes (success + failure),
  /// summed over workers; 0 without adaptive_steal.  steals/attempts is the
  /// steal success rate bench_micro_steal reports.
  [[nodiscard]] std::size_t num_steal_attempts() const noexcept;

  /// Successors kept on their releasing worker's queue because they share
  /// its current arena slab; 0 without slab_affinity.
  [[nodiscard]] std::size_t num_slab_placements() const noexcept;

  /// The machine topology the executor discovered (meaningful only when a
  /// locality option is on; flat fallback otherwise).
  [[nodiscard]] const support::CpuTopology& topology() const noexcept {
    return _topology;
  }

 private:
  /// Per-worker locality state, allocated only when a locality option is on
  /// so the default Worker stays unchanged.  The atomics are diagnostic
  /// counters (read by dump_state/stats from other threads); everything
  /// else is owned by the worker thread.
  struct WorkerLocality {
    detail::VictimOrder order;  // tier-bucketed, EWMA-ordered steal victims
    int cpu{-1};                // pinned logical CPU, -1 when unpinned
    std::uintptr_t slab{0};     // arena slab of the task being executed
    // Cached [base, end) of that slab: membership of successors is two
    // pointer compares instead of an O(slabs) arena scan per node (live
    // slab ranges never overlap, so the range identifies the slab).  A
    // span left over from a destroyed graph can at worst misclassify a
    // successor's hot/cold placement - a benign heuristic miss that heals
    // on the next out-of-span task - never a correctness issue.
    const std::byte* slab_base{nullptr};
    const std::byte* slab_end{nullptr};
    int sweep_width{0};         // widest tier probed; adaptive backoff state
    int dry_streak{0};          // consecutive widest-sweep dry passes
    std::array<std::atomic<std::size_t>, 4> tier_steals{};  // core/node/remote/central
    std::atomic<std::size_t> steal_attempts{0};
    std::atomic<std::size_t> slab_placements{0};
  };

  struct Worker {
    WorkStealingQueue<Node*> queue;
    Node* cache{nullptr};
    std::condition_variable cv;
    bool idle{false};
    std::size_t id{0};
    std::size_t last_victim{0};
    support::Xoshiro256 rng;
    std::unique_ptr<WorkerLocality> locality;  // null unless locality is on
    explicit Worker(std::uint64_t seed) : rng(seed) {}
  };

  void worker_loop(Worker& w);
  /// True when the adaptive dry streak says this worker should stop
  /// spinning and park (see WorkStealingOptions::adaptive_park_patience).
  [[nodiscard]] bool steal_exhausted(const Worker& w) const noexcept;
  /// One pass: pop the local queue, then steal_rounds sweeps, then the
  /// central queue.
  Node* try_pop_or_steal(Worker& w);
  /// One sweep over all victims (last-victim first) plus the central queue.
  Node* steal_pass(Worker& w);
  /// Adaptive variant (DESIGN.md §14): EWMA-ordered near-first tier sweep
  /// with per-worker backoff; used when options.adaptive_steal is set.
  Node* steal_pass_adaptive(Worker& w);
  /// Claim one task from the central overflow queue (steal-pass tail).
  Node* claim_central();
  /// Worker-context batch publish with slab-affine ordering (DESIGN.md §14).
  void schedule_batch_affine(Worker& w, Node* const* nodes, std::size_t n);
  /// Bounded exponential-backoff spin before parking; returns a task if one
  /// arrives within the spin window, else nullptr.
  Node* spin_for_work(Worker& w);
  /// Park `w` on the idler list; returns false when the executor stops.
  /// When central work is found under the park lock it is claimed into
  /// `out` instead of parking (the guaranteed drain when stealing is off).
  bool park(Worker& w, Node*& out);
  /// Wake one idler; `direct` (optional) is handed straight into the woken
  /// worker's cache (precise wakeup, Algorithm 1 line 27); otherwise, when no
  /// idler exists and `direct` != nullptr, it is pushed to the central queue.
  void wake_one(Node* direct);
  /// Wake up to `n` idlers under a single mutex acquisition.
  void wake_n(std::size_t n);
  [[nodiscard]] bool all_queues_empty() const noexcept;

  WorkStealingOptions _options;
  bool _locality{false};  // any locality option on (computed once)
  support::CpuTopology _topology;  // discovered only when _locality
  std::vector<std::unique_ptr<Worker>> _workers;
  std::vector<std::thread> _threads;

  mutable std::mutex _mutex;          // guards _central, _idlers, _stop
  std::deque<Node*> _central;         // overflow queue for external submitters
  std::vector<Worker*> _idlers;       // parked workers (Algorithm 1 line 8)
  bool _stop{false};
  std::atomic<int> _num_idlers{0};
  std::atomic<std::size_t> _num_central{0};  // lock-free emptiness probe of _central

  std::atomic<std::size_t> _steals{0};
  std::atomic<std::size_t> _cache_hits{0};
  std::atomic<std::size_t> _parks{0};
  std::atomic<std::size_t> _wakes{0};
};

/// Plain work-sharing pool over one shared queue: the simplest conforming
/// ExecutorInterface, used for comparison and as a reference scheduler.
class SimpleExecutor final : public ExecutorInterface {
 public:
  explicit SimpleExecutor(std::size_t num_workers = std::thread::hardware_concurrency());
  ~SimpleExecutor() override;

  SimpleExecutor(const SimpleExecutor&) = delete;
  SimpleExecutor& operator=(const SimpleExecutor&) = delete;

  void schedule(Node* node) override;
  void schedule_batch(Node* const* nodes, std::size_t n) override;
  using ExecutorInterface::schedule_batch;

  void dump_state(std::ostream& os) const override;
  [[nodiscard]] SchedulerStats stats() const override;

  [[nodiscard]] std::size_t num_workers() const noexcept override { return _threads.size(); }

 private:
  void worker_loop(std::size_t worker_id);

  mutable std::mutex _mutex;
  std::condition_variable _cv;
  std::deque<Node*> _queue;
  bool _stop{false};
  std::vector<std::thread> _threads;
};

/// Convenience factory: a shared work-stealing executor with `n` workers.
[[nodiscard]] std::shared_ptr<WorkStealingExecutor> make_executor(
    std::size_t n = std::thread::hardware_concurrency(), WorkStealingOptions options = {});

}  // namespace tf
