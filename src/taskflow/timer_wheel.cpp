#include "taskflow/timer_wheel.hpp"

#include <algorithm>

namespace tf {
namespace detail {

TimerWheel::TimerId TimerWheel::schedule_after(std::chrono::nanoseconds delay,
                                               Callback fn) {
  const std::int64_t delay_ticks = std::max<std::int64_t>(
      1, (delay.count() + kTickNs - 1) / kTickNs);  // ceil, never the current tick

  std::unique_lock lock(_mutex);
  if (_stop) return kInvalidTimer;  // shutting down: drop (see stop() contract)
  if (!_started) {
    _started = true;
    _epoch = std::chrono::steady_clock::now();
    _cursor_tick = 0;
    _thread = std::thread([this] { service_loop(); });
  }
  // Anchor the due tick at max(cursor, wall clock): relative to the cursor
  // alone, a service loop lagging behind wall time (late OS wake) would
  // catch up through the entry's slot and fire it *early*; relative to the
  // wall clock alone, an entry could land in a slot the cursor already
  // passed this revolution, silently adding a full revolution of delay.
  const std::int64_t now_tick =
      (std::chrono::steady_clock::now() - _epoch).count() / kTickNs;
  const std::int64_t due_tick = std::max(_cursor_tick, now_tick) + delay_ticks;
  const TimerId id = _next_id++;
  Entry entry;
  entry.id = id;
  // The cursor first visits the due slot (due - cursor - 1) % kSlots + 1
  // ticks from now; every earlier visit (one per revolution) must skip the
  // entry, hence the rounds counter.
  entry.rounds =
      static_cast<std::uint32_t>((due_tick - _cursor_tick - 1) / kSlots);
  entry.fn = std::move(fn);
  _slots[static_cast<std::size_t>(due_tick) % kSlots].push_back(std::move(entry));
  _live.insert(id);
  ++_num_live;
  lock.unlock();
  _cv.notify_one();
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  if (id == kInvalidTimer) return false;
  std::scoped_lock lock(_mutex);
  // The slot entry stays put (erasing would mean a per-slot scan here); the
  // service pass skips and reclaims entries whose id is no longer live.
  if (_live.erase(id) == 0) return false;
  --_num_live;
  return true;
}

std::size_t TimerWheel::num_pending() const {
  std::scoped_lock lock(_mutex);
  return _num_live;
}

void TimerWheel::stop() {
  {
    std::scoped_lock lock(_mutex);
    _stop = true;
  }
  _cv.notify_all();
  if (_thread.joinable()) _thread.join();
}

void TimerWheel::service_loop() {
  std::unique_lock lock(_mutex);
  std::vector<Callback> due;  // fired outside the lock
  while (!_stop) {
    if (_num_live == 0) {
      // Empty wheel: sleep until a schedule or stop.  The cursor re-anchors
      // to "now" on wake so an idle wheel never replays missed ticks.
      _cv.wait(lock, [this] { return _stop || _num_live > 0; });
      if (_stop) break;
      const auto now = std::chrono::steady_clock::now();
      const std::int64_t now_tick = (now - _epoch).count() / kTickNs;
      _cursor_tick = std::max(_cursor_tick, now_tick);
    }
    const auto next_tick_time =
        _epoch + std::chrono::steady_clock::duration((_cursor_tick + 1) * kTickNs);
    if (_cv.wait_until(lock, next_tick_time,
                       [this] { return _stop; })) {
      break;
    }
    // Service every tick between the cursor and wall time (a late wake - OS
    // jitter, long callback - services several slots in one pass).
    const auto now = std::chrono::steady_clock::now();
    const std::int64_t now_tick = (now - _epoch).count() / kTickNs;
    while (_cursor_tick < now_tick) {
      ++_cursor_tick;
      auto& slot = _slots[static_cast<std::size_t>(_cursor_tick) % kSlots];
      for (std::size_t i = 0; i < slot.size();) {
        Entry& e = slot[i];
        if (e.rounds > 0 && _live.find(e.id) != _live.end()) {
          --e.rounds;  // due on a later revolution
          ++i;
          continue;
        }
        // Fire (rounds exhausted) or reclaim (cancelled) - either way the
        // entry leaves the slot via swap-remove.
        if (_live.erase(e.id) > 0) {
          --_num_live;
          due.push_back(std::move(e.fn));
        }
        if (&e != &slot.back()) e = std::move(slot.back());
        slot.pop_back();
      }
    }
    if (!due.empty()) {
      lock.unlock();
      for (auto& fn : due) fn();  // may re-enter schedule_after/cancel
      due.clear();
      lock.lock();
    }
  }
}

}  // namespace detail
}  // namespace tf
