#include "taskflow/dot.hpp"

#include <ostream>
#include <sstream>
#include <variant>

namespace tf {

namespace {

std::string node_id(const Node& n) {
  std::ostringstream os;
  os << "p" << static_cast<const void*>(&n);
  return os.str();
}

// DOT double-quoted strings treat `"` and `\` specially; user-supplied
// names must have them escaped or the emitted file fails to parse.
std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string node_label(const Node& n) {
  return n.name().empty() ? node_id(n) : dot_escape(n.name());
}

// `prefix` namespaces node ids inside a module cluster: one target graph
// composed into several parents is rendered once per module node, and the
// copies must not share DOT identifiers (DOT would merge them).
void emit_node(std::ostream& os, const Node& n, const std::string& prefix) {
  const std::string id = prefix + node_id(n);
  os << "  \"" << id << "\" [label=\"" << node_label(n) << "\"";
  if (n.is_condition()) {
    os << " shape=diamond";  // in-graph control flow, second paper Fig. 4
  } else if (n.is_module()) {
    os << " shape=box3d";  // composed taskflow, second paper Fig. 5
  }
  os << "];\n";
  std::size_t branch = 0;
  for (const Node* succ : n.successors()) {
    os << "  \"" << id << "\" -> \"" << prefix << node_id(*succ) << "\"";
    if (n.is_condition()) {
      // Weak edge: fires on selection, not on join.  The label is the
      // branch index the condition must return to take it.
      os << " [style=dashed label=\"" << branch << "\"]";
    }
    os << ";\n";
    ++branch;
  }
  if (n.is_module()) {
    // The composed taskflow, boxed as a cluster: the live expansion when the
    // module already ran (dump_topologies), else the referenced target.  Ids
    // are namespaced per module node so a target shared between modules (or
    // an unexpanded target also dumped standalone) renders per-module.
    const Graph* body = nullptr;
    if (n._subgraph != nullptr && !n._subgraph->empty()) {
      body = n._subgraph.get();
    } else if (const auto* mod = std::get_if<ModuleWork>(&n._work);
               mod != nullptr && mod->target != nullptr && !mod->target->empty()) {
      body = mod->target;
    }
    if (body != nullptr) {
      os << "  subgraph \"cluster_" << id << "\" {\n"
         << "    label=\"Module: " << node_label(n) << "\";\n";
      for (const auto& child : *body) emit_node(os, child, id + "_");
      os << "  }\n";
    }
  } else if (n._subgraph != nullptr && !n._subgraph->empty()) {
    os << "  subgraph \"cluster_" << id << "\" {\n"
       << "    label=\"Subflow: " << node_label(n) << "\";\n";
    for (const auto& child : *n._subgraph) emit_node(os, child, prefix);
    os << "  }\n";
  }
}

}  // namespace

void dump_dot(std::ostream& os, const Graph& graph, const std::string& title) {
  os << "digraph \"" << dot_escape(title) << "\" {\n";
  for (const auto& node : graph) emit_node(os, node, {});
  os << "}\n";
}

std::string dump_dot(const Graph& graph, const std::string& title) {
  std::ostringstream os;
  dump_dot(os, graph, title);
  return os.str();
}

}  // namespace tf
