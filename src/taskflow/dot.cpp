#include "taskflow/dot.hpp"

#include <ostream>
#include <sstream>

namespace tf {

namespace {

std::string node_id(const Node& n) {
  std::ostringstream os;
  os << "p" << static_cast<const void*>(&n);
  return os.str();
}

// DOT double-quoted strings treat `"` and `\` specially; user-supplied
// names must have them escaped or the emitted file fails to parse.
std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string node_label(const Node& n) {
  return n.name().empty() ? node_id(n) : dot_escape(n.name());
}

void emit_node(std::ostream& os, const Node& n) {
  os << "  \"" << node_id(n) << "\" [label=\"" << node_label(n) << "\"];\n";
  for (const Node* succ : n.successors()) {
    os << "  \"" << node_id(n) << "\" -> \"" << node_id(*succ) << "\";\n";
  }
  if (n._subgraph != nullptr && !n._subgraph->empty()) {
    os << "  subgraph \"cluster_" << node_id(n) << "\" {\n"
       << "    label=\"Subflow: " << node_label(n) << "\";\n";
    for (const auto& child : *n._subgraph) emit_node(os, child);
    os << "  }\n";
  }
}

}  // namespace

void dump_dot(std::ostream& os, const Graph& graph, const std::string& title) {
  os << "digraph \"" << dot_escape(title) << "\" {\n";
  for (const auto& node : graph) emit_node(os, node);
  os << "}\n";
}

std::string dump_dot(const Graph& graph, const std::string& title) {
  std::ostringstream os;
  dump_dot(os, graph, title);
  return os.str();
}

}  // namespace tf
