// wsq.hpp - Chase-Lev work-stealing deque.
//
// Each worker of tf::WorkStealingExecutor owns one of these queues: the
// owner pushes and pops at the bottom, thieves steal from the top.  The
// implementation follows the C11-memory-model formulation of Le, Pop,
// Cohen and Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak
// Memory Models" (PPoPP'13), with a growable circular array.
//
// The element type must be trivially copyable (we store raw Node*).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

// ThreadSanitizer does not model standalone std::atomic_thread_fence, so the
// fence-based formulation is reported as racy even though it is correct.
// Under TSan we substitute per-operation seq_cst orderings (strictly
// stronger, so still correct - just slower), keeping the suite race-checkable.
#if defined(__SANITIZE_THREAD__)
#define TF_WSQ_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TF_WSQ_TSAN 1
#endif
#endif
#ifndef TF_WSQ_TSAN
#define TF_WSQ_TSAN 0
#endif

namespace tf {

template <typename T>
class WorkStealingQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "WorkStealingQueue requires a trivially copyable element");

  struct Array {
    std::int64_t cap;
    std::int64_t mask;
    std::atomic<T>* slots;

    explicit Array(std::int64_t c)
        : cap{c}, mask{c - 1}, slots{new std::atomic<T>[static_cast<std::size_t>(c)]} {}

    ~Array() { delete[] slots; }

    Array(const Array&) = delete;
    Array& operator=(const Array&) = delete;

    void put(std::int64_t i, T item) noexcept {
      slots[i & mask].store(item, std::memory_order_relaxed);
    }

    T get(std::int64_t i) const noexcept {
      return slots[i & mask].load(std::memory_order_relaxed);
    }

    Array* grow(std::int64_t bottom, std::int64_t top) {
      auto* bigger = new Array{2 * cap};
      for (std::int64_t i = top; i != bottom; ++i) bigger->put(i, get(i));
      return bigger;
    }
  };

 public:
  /// `capacity` must be a power of two.
  explicit WorkStealingQueue(std::int64_t capacity = 1024) {
    assert(capacity > 0 && (capacity & (capacity - 1)) == 0);
    _array.store(new Array{capacity}, std::memory_order_relaxed);
    _garbage.reserve(32);
  }

  ~WorkStealingQueue() {
    for (auto* a : _garbage) delete a;
    delete _array.load(std::memory_order_relaxed);
  }

  WorkStealingQueue(const WorkStealingQueue&) = delete;
  WorkStealingQueue& operator=(const WorkStealingQueue&) = delete;

  /// True when no items are visible.  Callable from any thread.
  [[nodiscard]] bool empty() const noexcept {
    const std::int64_t b = _bottom.load(std::memory_order_relaxed);
    const std::int64_t t = _top.load(std::memory_order_relaxed);
    return b <= t;
  }

  /// Approximate size.  Callable from any thread.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::int64_t b = _bottom.load(std::memory_order_relaxed);
    const std::int64_t t = _top.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(b >= t ? b - t : 0);
  }

  [[nodiscard]] std::int64_t capacity() const noexcept {
    return _array.load(std::memory_order_relaxed)->cap;
  }

  /// Owner-only: push one item at the bottom.
  void push(T item) {
    const std::int64_t b = _bottom.load(std::memory_order_relaxed);
    const std::int64_t t = _top.load(std::memory_order_acquire);
    Array* a = _array.load(std::memory_order_relaxed);

    if (a->cap - 1 < (b - t)) {
      Array* bigger = a->grow(b, t);
      _garbage.push_back(a);
      _array.store(bigger, std::memory_order_release);
      a = bigger;
    }

    a->put(b, item);
    // Release store on bottom publishes the slot (and everything the owner
    // saw before pushing) to thieves' acquire loads - equivalent to the
    // paper's release fence + relaxed store, and visible to TSan.
    _bottom.store(b + 1, std::memory_order_release);
  }

  /// Owner-only: pop the most recently pushed item (LIFO).
  std::optional<T> pop() {
    const std::int64_t b = _bottom.load(std::memory_order_relaxed) - 1;
    Array* a = _array.load(std::memory_order_relaxed);
#if TF_WSQ_TSAN
    _bottom.store(b, std::memory_order_seq_cst);
    std::int64_t t = _top.load(std::memory_order_seq_cst);
#else
    _bottom.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = _top.load(std::memory_order_relaxed);
#endif

    std::optional<T> item;
    if (t <= b) {
      item = a->get(b);
      if (t == b) {
        // Single item left: race against thieves for it.
        if (!_top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = std::nullopt;
        }
        _bottom.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      _bottom.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thief: steal the oldest item (FIFO end).  Callable from any thread.
  std::optional<T> steal() {
#if TF_WSQ_TSAN
    std::int64_t t = _top.load(std::memory_order_seq_cst);
    const std::int64_t b = _bottom.load(std::memory_order_seq_cst);
#else
    std::int64_t t = _top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = _bottom.load(std::memory_order_acquire);
#endif

    if (t < b) {
      Array* a = _array.load(std::memory_order_acquire);
      T item = a->get(t);
      if (!_top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return std::nullopt;
      }
      return item;
    }
    return std::nullopt;
  }

 private:
  alignas(64) std::atomic<std::int64_t> _top{0};
  alignas(64) std::atomic<std::int64_t> _bottom{0};
  alignas(64) std::atomic<Array*> _array{nullptr};
  std::vector<Array*> _garbage;  // owner-only; retired arrays freed at destruction
};

}  // namespace tf
