// wsq.hpp - Chase-Lev work-stealing deque.
//
// Each worker of tf::WorkStealingExecutor owns one of these queues: the
// owner pushes and pops at the bottom, thieves steal from the top.  The
// implementation follows the C11-memory-model formulation of Le, Pop,
// Cohen and Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak
// Memory Models" (PPoPP'13), with a growable circular array.
//
// The element type must be trivially copyable (we store raw Node*).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

// ThreadSanitizer does not model standalone std::atomic_thread_fence, so the
// fence-based formulation is reported as racy even though it is correct.
// Under TSan we substitute per-operation seq_cst orderings (strictly
// stronger, so still correct - just slower), keeping the suite race-checkable.
#if defined(__SANITIZE_THREAD__)
#define TF_WSQ_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TF_WSQ_TSAN 1
#endif
#endif
#ifndef TF_WSQ_TSAN
#define TF_WSQ_TSAN 0
#endif

namespace tf {

template <typename T>
class WorkStealingQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "WorkStealingQueue requires a trivially copyable element");

  struct Array {
    std::int64_t cap;
    std::int64_t mask;
    std::atomic<T>* slots;

    explicit Array(std::int64_t c)
        : cap{c}, mask{c - 1}, slots{new std::atomic<T>[static_cast<std::size_t>(c)]} {}

    ~Array() { delete[] slots; }

    Array(const Array&) = delete;
    Array& operator=(const Array&) = delete;

    void put(std::int64_t i, T item) noexcept {
      slots[i & mask].store(item, std::memory_order_relaxed);
    }

    T get(std::int64_t i) const noexcept {
      return slots[i & mask].load(std::memory_order_relaxed);
    }

    Array* grow(std::int64_t bottom, std::int64_t top) {
      auto* bigger = new Array{2 * cap};
      for (std::int64_t i = top; i != bottom; ++i) bigger->put(i, get(i));
      return bigger;
    }
  };

 public:
  /// `capacity` must be a power of two.
  explicit WorkStealingQueue(std::int64_t capacity = 1024) {
    assert(capacity > 0 && (capacity & (capacity - 1)) == 0);
    _array.store(new Array{capacity}, std::memory_order_relaxed);
    _garbage.reserve(32);
  }

  ~WorkStealingQueue() {
    for (auto* a : _garbage) delete a;
    delete _array.load(std::memory_order_relaxed);
  }

  WorkStealingQueue(const WorkStealingQueue&) = delete;
  WorkStealingQueue& operator=(const WorkStealingQueue&) = delete;

  /// True when no items are visible.  Callable from any thread.
  [[nodiscard]] bool empty() const noexcept {
    const std::int64_t b = _bottom.load(std::memory_order_relaxed);
    const std::int64_t t = _top.load(std::memory_order_relaxed);
    return b <= t;
  }

  /// Approximate size.  Callable from any thread.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::int64_t b = _bottom.load(std::memory_order_relaxed);
    const std::int64_t t = _top.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(b >= t ? b - t : 0);
  }

  [[nodiscard]] std::int64_t capacity() const noexcept {
    return _array.load(std::memory_order_relaxed)->cap;
  }

  /// Owner-only: push one item at the bottom.
  void push(T item) {
    const std::int64_t b = _bottom.load(std::memory_order_relaxed);
    const std::int64_t t = _top.load(std::memory_order_acquire);
    Array* a = _array.load(std::memory_order_relaxed);

    if (a->cap - 1 < (b - t)) {
      Array* bigger = a->grow(b, t);
      _garbage.push_back(a);
      _array.store(bigger, std::memory_order_release);
      a = bigger;
    }

    a->put(b, item);
    // Release store on bottom publishes the slot (and everything the owner
    // saw before pushing) to thieves' acquire loads - equivalent to the
    // paper's release fence + relaxed store, and visible to TSan.
    _bottom.store(b + 1, std::memory_order_release);
  }

  /// Owner-only: pop the most recently pushed item (LIFO).
  std::optional<T> pop() {
    const std::int64_t b = _bottom.load(std::memory_order_relaxed) - 1;
    Array* a = _array.load(std::memory_order_relaxed);
#if TF_WSQ_TSAN
    _bottom.store(b, std::memory_order_seq_cst);
    std::int64_t t = _top.load(std::memory_order_seq_cst);
#else
    _bottom.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = _top.load(std::memory_order_relaxed);
#endif

    std::optional<T> item;
    if (t <= b) {
      item = a->get(b);
      if (t == b) {
        // Single item left: race against thieves for it.
        if (!_top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = std::nullopt;
        }
        _bottom.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      _bottom.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thief: steal the oldest item (FIFO end).  Callable from any thread.
  std::optional<T> steal() {
#if TF_WSQ_TSAN
    std::int64_t t = _top.load(std::memory_order_seq_cst);
    const std::int64_t b = _bottom.load(std::memory_order_seq_cst);
#else
    std::int64_t t = _top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = _bottom.load(std::memory_order_acquire);
#endif

    if (t < b) {
      Array* a = _array.load(std::memory_order_acquire);
      T item = a->get(t);
      if (!_top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return std::nullopt;
      }
      return item;
    }
    return std::nullopt;
  }

 private:
  alignas(64) std::atomic<std::int64_t> _top{0};
  alignas(64) std::atomic<std::int64_t> _bottom{0};
  alignas(64) std::atomic<Array*> _array{nullptr};
  std::vector<Array*> _garbage;  // owner-only; retired arrays freed at destruction
};

namespace detail {

/// Victim iteration order for adaptive steal passes (DESIGN.md §14): steal
/// candidates bucketed into locality tiers (same core < same node < remote),
/// each tier internally ordered by an EWMA of steal success so productive
/// victims are probed first.  The structure is owned and mutated by exactly
/// one worker thread; only the per-victim scores are atomic, so diagnostic
/// reads (dump_state's "top victim") from other threads are race-free.
///
/// EWMA update rule (report()):  score <- (1-a)*score + a*outcome, where
/// outcome is 1 on a successful steal and 0 on an empty/lost probe.  After
/// each update the victim is bubbled one slot toward its deserved position
/// inside its tier - O(1) per report, converging to sorted-by-score order
/// over consecutive probes (an incremental insertion sort driven by the
/// probe stream itself).
class VictimOrder {
 public:
  static constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

  /// Build the order for `num_workers` victims where victim `v` sits in
  /// locality tier `tier_of[v]` (0-based, ascending distance); the owner's
  /// own id is expected to be absent (tier < 0 entries are skipped).
  void assign(const std::vector<int>& tier_of, int num_tiers) {
    _scores = std::vector<std::atomic<float>>(tier_of.size());
    for (auto& s : _scores) s.store(0.0f, std::memory_order_relaxed);
    _order.clear();
    _pos.assign(tier_of.size(), kNone);
    _tier.assign(tier_of.size(), -1);
    _tier_begin.assign(static_cast<std::size_t>(num_tiers) + 1, 0);
    for (int t = 0; t < num_tiers; ++t) {
      _tier_begin[static_cast<std::size_t>(t)] =
          static_cast<std::uint32_t>(_order.size());
      for (std::uint32_t v = 0; v < tier_of.size(); ++v) {
        if (tier_of[v] == t) {
          _pos[v] = static_cast<std::uint32_t>(_order.size());
          _tier[v] = t;
          _order.push_back(v);
        }
      }
    }
    _tier_begin.back() = static_cast<std::uint32_t>(_order.size());
  }

  [[nodiscard]] int num_tiers() const noexcept {
    return static_cast<int>(_tier_begin.empty() ? 0 : _tier_begin.size() - 1);
  }

  /// Victims of tier `t`, most-productive first (owner thread only).
  [[nodiscard]] std::span<const std::uint32_t> tier(int t) const noexcept {
    const auto b = _tier_begin[static_cast<std::size_t>(t)];
    const auto e = _tier_begin[static_cast<std::size_t>(t) + 1];
    return {_order.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// Record one probe outcome for `victim` and nudge it one slot toward its
  /// score-sorted position within its tier.  Owner thread only.
  void report(std::uint32_t victim, bool success, double alpha) noexcept {
    const float old = _scores[victim].load(std::memory_order_relaxed);
    const float next = static_cast<float>((1.0 - alpha) * old +
                                          (success ? alpha : 0.0));
    _scores[victim].store(next, std::memory_order_relaxed);
    const std::uint32_t p = _pos[victim];
    const int t = _tier[victim];
    if (t < 0) return;
    const std::uint32_t lo = _tier_begin[static_cast<std::size_t>(t)];
    const std::uint32_t hi = _tier_begin[static_cast<std::size_t>(t) + 1];
    if (success && p > lo &&
        next > _scores[_order[p - 1]].load(std::memory_order_relaxed)) {
      swap_slots(p, p - 1);
    } else if (!success && p + 1 < hi &&
               next < _scores[_order[p + 1]].load(std::memory_order_relaxed)) {
      swap_slots(p, p + 1);
    }
  }

  /// EWMA success score of `victim`; safe from any thread (diagnostics).
  [[nodiscard]] float score(std::uint32_t victim) const noexcept {
    return victim < _scores.size()
               ? _scores[victim].load(std::memory_order_relaxed)
               : 0.0f;
  }

  /// The victim with the highest score (kNone when empty or all-zero);
  /// safe from any thread - computed from the atomic scores only.
  [[nodiscard]] std::uint32_t top_victim() const noexcept {
    std::uint32_t best = kNone;
    float best_score = 0.0f;
    for (std::uint32_t v = 0; v < _scores.size(); ++v) {
      const float s = _scores[v].load(std::memory_order_relaxed);
      if (s > best_score) {
        best_score = s;
        best = v;
      }
    }
    return best;
  }

 private:
  void swap_slots(std::uint32_t a, std::uint32_t b) noexcept {
    std::swap(_pos[_order[a]], _pos[_order[b]]);
    std::swap(_order[a], _order[b]);
  }

  std::vector<std::uint32_t> _order;       // tier-major victim ids
  std::vector<std::uint32_t> _pos;         // victim id -> slot in _order
  std::vector<int> _tier;                  // victim id -> tier (-1 = absent)
  std::vector<std::uint32_t> _tier_begin;  // tier t spans [begin[t], begin[t+1])
  std::vector<std::atomic<float>> _scores; // EWMA success per victim id
};

}  // namespace detail

}  // namespace tf
