// taskflow.hpp - the executor-centric core API: tf::Taskflow, a reusable
// task dependency graph, and tf::Executor, the thread-safe run entry point.
//
//   tf::Taskflow taskflow;
//   auto [A, B, C, D] = taskflow.emplace(
//     [](){ std::cout << "Task A\n"; },
//     [](){ std::cout << "Task B\n"; },
//     [](){ std::cout << "Task C\n"; },
//     [](){ std::cout << "Task D\n"; }
//   );
//   A.precede(B, C);   // A runs before B and C
//   B.precede(D);      // B runs before D
//   C.precede(D);      // C runs before D
//
//   tf::Executor executor;            // shared thread pool, many clients
//   executor.run(taskflow).get();     // run the graph once
//   executor.run_n(taskflow, 10);     // queue ten more runs (non-blocking)
//   auto f = executor.async([]{ return 42; });  // fire-and-forget task
//   executor.wait_for_all();          // drain everything
//
// Ownership model (successor-system design; see DESIGN.md §7):
//  * a Taskflow is a pure reusable graph - building it is single-owner, it
//    spawns no threads, and the deprecated tf::Framework is an alias for it;
//  * an Executor owns the worker threads (via the pluggable
//    ExecutorInterface backends, paper §III-E) and is safe to share across
//    many client threads: run/run_n/run_until/async may be called
//    concurrently from any thread;
//  * runs of the *same* taskflow are serialized through a per-taskflow FIFO
//    topology queue (a queued run starts when its predecessor finishes);
//    runs of *distinct* taskflows execute concurrently;
//  * a taskflow must outlive its submitted runs and must not be mutated
//    while runs are queued or in flight (use handle.get() / wait_for_all()
//    to quiesce before rebuilding).
//
// Paper-era API (dispatch/silent_dispatch/wait_for_all on Taskflow, the
// private-executor constructors) is kept as thin shims over the new layer:
// a Taskflow lazily creates a private Executor the first time a legacy entry
// point needs one, so existing call sites compile and behave unchanged
// while new-style code pays for no hidden thread pool.
//
// Error model (see error.hpp / DESIGN.md §6):
//  * run()/dispatch() verify the graph is acyclic and throw tf::CycleError
//    with a descriptive message instead of deadlocking (disable the check
//    with REPRO_CYCLE_CHECK=0 when submission cost matters more than safety);
//  * a task that throws flips its topology into draining mode (remaining
//    tasks are skipped, bookkeeping still runs, repeat runs stop) and the
//    first exception is rethrown from the handle's get();
//  * the returned ExecutionHandle supports cooperative cancel(), observable
//    inside tasks via tf::this_task::is_cancelled();
//  * wait_for_all_for() + stall_report() bound waits and triage deadlocks.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "taskflow/executor.hpp"
#include "taskflow/flow_builder.hpp"
#include "taskflow/topology.hpp"

namespace tf {

class Executor;

namespace detail {
// Base-from-member: the owned graph must outlive (construction-wise) the
// FlowBuilder base that points at it.  This is the single graph-owning base
// of the library - tf::Taskflow (and thus the deprecated tf::Framework
// alias) builds on it, so static and reusable graphs share one code path.
struct GraphOwner {
  Graph graph;
};

// Heap box of one Executor::async submission: a single-node graph plus its
// topology (defined in taskflow.cpp).
struct AsyncRun;
// Sharded freelist of retired AsyncRun boxes (defined in taskflow.cpp):
// async storms reuse box + graph-arena storage instead of hitting the heap
// per submission, and shards keep concurrent submitters off one lock.
class AsyncRunPool;
}  // namespace detail

/// A reusable task dependency graph.  Building (emplace/precede/linearize
/// and the algorithm patterns of FlowBuilder) is single-owner-thread;
/// execution belongs to tf::Executor, which may run one taskflow any number
/// of times and many taskflows concurrently.
class Taskflow : private detail::GraphOwner, public FlowBuilder {
 public:
  /// A pure graph: no executor, no threads.  Run it through tf::Executor.
  /// Algorithm-pattern chunking defaults to the hardware concurrency.
  Taskflow();

  /// Paper-era constructor: a taskflow with a private executor of
  /// `num_workers` threads.  The executor (and its threads) is created
  /// lazily on first use of a legacy entry point (dispatch / run /
  /// wait_for_all / executor()), so new-style code that only builds the
  /// graph pays nothing.
  explicit Taskflow(std::size_t num_workers);

  /// Paper-era constructor: a taskflow that shares `executor`
  /// (paper §III-E).  Passing nullptr creates a private default executor.
  explicit Taskflow(std::shared_ptr<ExecutorInterface> executor);

  /// Blocks until all legacy-dispatched topologies finish.  Runs submitted
  /// through a tf::Executor are NOT waited here: the taskflow must outlive
  /// them (quiesce with handle.get() or Executor::wait_for_all first).
  ~Taskflow();

  Taskflow(const Taskflow&) = delete;
  Taskflow& operator=(const Taskflow&) = delete;

  /// The underlying present graph (the executor borrows it per run).
  [[nodiscard]] Graph& graph() noexcept { return detail::GraphOwner::graph; }
  [[nodiscard]] const Graph& graph() const noexcept { return detail::GraphOwner::graph; }

  // ---- paper-era API, shimmed over tf::Executor --------------------------

  /// Dispatch the present graph (non-blocking); returns a handle whose
  /// future becomes ready when every task - including dynamically spawned
  /// subflow tasks - has finished, and which exposes cooperative cancel().
  /// The handle converts implicitly to std::shared_future<void>, so
  /// paper-era call sites keep compiling.  The first exception thrown by a
  /// task is rethrown from the handle's get().  Throws tf::CycleError (and
  /// leaves the present graph intact) when the graph is cyclic.  On success
  /// the taskflow is left with a fresh empty graph.
  ExecutionHandle dispatch();

  /// Dispatch the present graph and ignore the execution status (still
  /// throws tf::CycleError on a cyclic graph).
  void silent_dispatch();

  /// Run a reusable taskflow once on the private executor (non-blocking);
  /// the handle's future becomes ready when the run completes and rethrows
  /// the first task exception.  `taskflow` must outlive the run.  Throws
  /// tf::CycleError on a cyclic graph.  (Paper-era Framework entry point;
  /// new code calls Executor::run.)
  ExecutionHandle run(Taskflow& taskflow);

  /// Run a reusable taskflow `n` times back-to-back (blocking).  A run that
  /// fails (task exception) or is cancelled stops the sequence: the
  /// exception, if any, is rethrown immediately.
  void run_n(Taskflow& taskflow, std::size_t n);

  /// Dispatch the present graph (if non-empty) and block until all
  /// topologies finish; finished topologies are then released.  If any
  /// topology captured a task exception, the first one (in dispatch order)
  /// is rethrown - after every topology has fully drained, so no tasks are
  /// left running or stuck.  Like a shared future, a stored failure is
  /// rethrown on every observation: it reports here even when the handle's
  /// get() already delivered it.
  void wait_for_all();

  /// Bounded wait_for_all: returns false when not every topology finished
  /// within `timeout` (topologies are then kept, so the wait can be retried
  /// or triaged with stall_report()); returns true after the wait_for_all
  /// release-and-rethrow behavior.
  bool wait_for_all_for(std::chrono::milliseconds timeout);

  /// Diagnostic snapshot for deadlock/stall triage: executor scheduling
  /// state (queue depths, parked workers, per-client pending runs, in-flight
  /// asyncs) plus per-topology unfinished-task counts.  Safe to call from
  /// any thread at any time.
  [[nodiscard]] std::string stall_report() const;

  /// Block until all already-dispatched topologies finish (keeps them alive
  /// for inspection / dump_topologies()).  Does not rethrow task
  /// exceptions - used by the destructor, which must not throw.
  void wait_for_topologies();

  /// Number of worker threads in the private executor (creates it when
  /// still lazy).
  [[nodiscard]] std::size_t num_workers() const;

  /// Number of legacy-dispatched topologies currently retained.
  [[nodiscard]] std::size_t num_topologies() const noexcept { return _dispatched.size(); }

  /// The shared executor backend (creates the private executor when still
  /// lazy).
  [[nodiscard]] const std::shared_ptr<ExecutorInterface>& executor() const;

  /// GraphViz DOT text of the present (not yet dispatched) graph
  /// (paper §III-G).
  [[nodiscard]] std::string dump() const;

  /// GraphViz DOT text of every retained topology, including spawned subflow
  /// clusters (paper Fig. 5).  Call between dispatch()/wait_for_topologies()
  /// and the next wait_for_all().
  [[nodiscard]] std::string dump_topologies() const;

 private:
  friend class Executor;

  /// The lazily created private executor backing the paper-era API.
  Executor& legacy() const;

  std::size_t _legacy_workers;  // worker count of the lazy private executor
  mutable std::mutex _legacy_mutex;
  mutable std::shared_ptr<Executor> _legacy;
  std::list<std::shared_ptr<Topology>> _dispatched;  // legacy-retained runs
};

/// Deprecated paper-era name for the reusable graph: the Framework/Taskflow
/// split is gone - a Taskflow *is* the reusable graph, and tf::Executor runs
/// it.  Existing `tf::Framework` code compiles unchanged.
using Framework = Taskflow;

/// How Executor::run behaves when admission control is at capacity
/// (DESIGN.md §11).  Irrelevant on an executor with default ExecutorOptions,
/// which admits everything.
enum class AdmissionPolicy : unsigned char {
  block,   // backpressure: wait for capacity (bounded by admission_timeout)
  reject,  // fail fast: throw tf::OverloadError instead of waiting
};

/// Per-submission execution policy (DESIGN.md §8, §11).  `timeout` bounds the
/// whole submission - every repeat of run_n / run_until shares the one
/// budget, measured from submission (a run waiting in its taskflow's FIFO
/// queue spends budget too).  On expiry the run flips into the cooperative
/// drain path (remaining tasks are skipped but the topology still completes
/// deterministically) and the handle's get() rethrows tf::TimeoutError;
/// running tasks observe the remaining budget via tf::this_task::deadline().
/// A zero timeout means unbounded (the default), costing nothing.
struct RunPolicy {
  std::chrono::nanoseconds timeout{0};

  // ---- admission control (meaningful only on an executor constructed with
  // ---- non-default ExecutorOptions; see DESIGN.md §11) --------------------

  /// At capacity: apply backpressure (block) or fail fast (reject).
  AdmissionPolicy admission{AdmissionPolicy::block};

  /// Bound on the backpressure wait of AdmissionPolicy::block: when no
  /// capacity frees within this budget the submission throws
  /// tf::OverloadError.  0 = wait indefinitely (the default).
  std::chrono::nanoseconds admission_timeout{0};

  /// Priority band of the run: 0 = low, 1 = normal (default), 2 = high
  /// (values are clamped).  Higher bands dispatch first under a
  /// max_concurrent_topologies limit, and load shedding evicts the lowest
  /// band first.  Inert when the executor enforces neither.
  int priority{1};
};

/// Number of RunPolicy::priority bands (0 = lowest .. kNumPriorities-1).
inline constexpr int kNumPriorities = 3;

/// Admission-control configuration of an Executor (DESIGN.md §11).  Every
/// knob defaults to off: a default-constructed ExecutorOptions reproduces the
/// unbounded PR 3 submission behavior exactly, and the executor then skips
/// the admission layer entirely - the zero-policy hot path takes no extra
/// lock and fires no extra event.
struct ExecutorOptions {
  /// Upper bound on graph runs admitted but not yet finished, across all
  /// clients.  At the bound, run() applies its RunPolicy::admission choice
  /// (backpressure or OverloadError) and try_run returns std::nullopt.
  /// 0 = unbounded.
  std::size_t max_pending_topologies{0};

  /// The same bound per client taskflow, so one hot client saturating its
  /// own allowance cannot consume the global budget.  0 = unbounded.
  std::size_t max_pending_per_client{0};

  /// Load-shedding high watermark: whenever the pending count exceeds it,
  /// admitted-but-not-yet-started runs are shed - lowest priority band
  /// first, newest first within a band - until the count is back at the
  /// watermark.  A shed run never executes a task; its future completes
  /// with tf::OverloadError.  Memory stays bounded under sustained
  /// overload even with AdmissionPolicy-free submitters.  0 = off.
  std::size_t shed_watermark{0};

  /// Bound on topologies *started* on the worker pool at once.  Admitted
  /// runs above it wait in their client queues and are dispatched by
  /// deficit round-robin over clients within strict priority bands, so one
  /// hot client cannot starve the others.  0 = start at queue head
  /// immediately (the PR 3 behavior; fairness and priority are then inert).
  std::size_t max_concurrent_topologies{0};

  /// Deficit-round-robin refill per dispatch visit, in task-node units (a
  /// run's cost is its graph's node count).  Small quanta interleave
  /// clients finely; a quantum >= every graph size degrades to plain
  /// round-robin.
  std::size_t fairness_quantum{64};

  /// Per-taskflow circuit breaker: after this many consecutive failed runs
  /// (a run completing with a stored exception; fallback-degraded and
  /// cancelled runs count as success) the breaker opens and submissions of
  /// that taskflow fail fast with tf::BreakerOpenError.  After
  /// `breaker_cooldown` one half-open probe run is admitted: success closes
  /// the breaker, failure re-opens it for another cooldown.  0 = off.
  int breaker_threshold{0};
  std::chrono::nanoseconds breaker_cooldown{std::chrono::seconds(1)};
};

/// How Executor::shutdown treats work submitted before the call.
enum class ShutdownMode : unsigned char {
  drain,  // let queued and in-flight runs finish normally
  abort,  // cancel queued and in-flight graph runs (they drain cooperatively)
};

/// Configuration of the executor watchdog thread (Executor::enable_watchdog).
struct WatchdogOptions {
  /// Sampling period of the background watchdog thread.
  std::chrono::milliseconds period{100};

  /// A task running continuously for longer than this flags its worker as
  /// stalled and (together with at least one flagged worker) fires on_stall.
  std::chrono::milliseconds task_threshold{1000};

  /// Stall hook, called from the watchdog thread with the executor's
  /// stall_report() snapshot whenever at least one worker exceeds
  /// `task_threshold`.  Default: none (the watchdog still enforces run
  /// deadlines).  The hook must not submit work to or destroy the executor.
  std::function<void(const std::string& report)> on_stall{};
};

/// The run entry point: owns (or shares) a scheduler backend and accepts
/// graph runs and async tasks from many client threads concurrently.
///
/// Thread safety: every public member may be called from any thread at any
/// time.  Runs of one Taskflow are serialized in submission (FIFO) order;
/// runs of distinct Taskflows and async tasks interleave freely on the
/// shared worker pool.  The executor must outlive all submitted work; the
/// destructor blocks until everything drained (without rethrowing - task
/// errors stay observable through the per-run handles).
class Executor : private detail::TopologyClient {
 public:
  /// An executor with a private work-stealing backend of `num_workers`
  /// threads (default: hardware concurrency).  `options` configures the
  /// admission-control layer; the default admits everything unbounded
  /// (DESIGN.md §11).
  explicit Executor(std::size_t num_workers = std::thread::hardware_concurrency(),
                    ExecutorOptions options = {});

  /// An executor over an existing pluggable backend (paper §III-E); several
  /// Executors may share one backend without thread over-subscription
  /// (admission control stays per-Executor: each front end meters its own
  /// submissions).  Passing nullptr creates a private default work-stealing
  /// backend.
  explicit Executor(std::shared_ptr<ExecutorInterface> backend,
                    ExecutorOptions options = {});

  /// Blocks until all submitted runs and async tasks finished.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Run `taskflow` once (non-blocking).  Returns a handle whose future
  /// becomes ready when the run - including dynamically spawned subflow
  /// tasks - completes; the first task exception rethrows from get().
  /// Throws tf::CycleError when the graph is cyclic (checked when no run of
  /// this taskflow is pending; queued resubmissions of the same - immutable
  /// while in flight - graph skip the re-check).
  ExecutionHandle run(Taskflow& taskflow);

  /// Run `taskflow` `n` times back-to-back (non-blocking).  The handle
  /// completes after the n-th run; a task exception or a cancel() stops the
  /// remaining repeats (the exception rethrows from get()).
  ExecutionHandle run_n(Taskflow& taskflow, std::size_t n);

  /// Run `taskflow` repeatedly until `stop` returns true (evaluated after
  /// each completed run, on a worker thread).  Runs at least once.
  ExecutionHandle run_until(Taskflow& taskflow, std::function<bool()> stop);

  // ---- resilience policies (DESIGN.md §8) --------------------------------

  /// run/run_n/run_until with a RunPolicy: `policy.timeout` deadlines the
  /// whole submission.  On expiry the run drains cooperatively and the
  /// handle's get() rethrows tf::TimeoutError.  On an executor with
  /// admission control (non-default ExecutorOptions) the policy also selects
  /// the at-capacity behavior (block with optional admission_timeout, or
  /// reject with tf::OverloadError) and the run's priority band.
  ExecutionHandle run(Taskflow& taskflow, RunPolicy policy);
  ExecutionHandle run_n(Taskflow& taskflow, std::size_t n, RunPolicy policy);
  ExecutionHandle run_until(Taskflow& taskflow, std::function<bool()> stop,
                            RunPolicy policy);

  // ---- admission control (DESIGN.md §11) ---------------------------------

  /// Non-blocking, non-throwing submission: like run(), but when the
  /// executor is at capacity, the taskflow's circuit breaker is open, or
  /// shutdown() has begun, returns std::nullopt instead of waiting or
  /// throwing.  An engaged handle means the run was admitted (an empty
  /// graph yields an engaged, already-ready handle - there was nothing to
  /// refuse).  `policy.admission`/`admission_timeout` are ignored: try_run
  /// never waits.
  std::optional<ExecutionHandle> try_run(Taskflow& taskflow, RunPolicy policy = {});
  std::optional<ExecutionHandle> try_run_n(Taskflow& taskflow, std::size_t n,
                                           RunPolicy policy = {});

  /// The admission-control configuration this executor was built with.
  [[nodiscard]] const ExecutorOptions& options() const noexcept { return _options; }

  /// Runs admitted / turned away (reject policy, admission-timeout expiry,
  /// open breaker, or a try_run at capacity) / load-shed above the
  /// watermark since construction.  All zero on a default-options executor.
  /// num_shed counts runs whose handle reports the shed OverloadError: an
  /// eviction losing the first-writer race to an already-captured error
  /// (e.g. a deadline that expired while queued) counts as that outcome,
  /// not as a shed.
  [[nodiscard]] std::size_t num_admitted() const noexcept {
    return _adm_admitted.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t num_rejected() const noexcept {
    return _adm_rejected.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t num_shed() const noexcept {
    return _adm_shed.load(std::memory_order_relaxed);
  }

  /// Times a taskflow's circuit breaker tripped open since construction.
  [[nodiscard]] std::size_t num_breaker_trips() const noexcept {
    return _adm_breaker_trips.load(std::memory_order_relaxed);
  }

  /// Start the background watchdog thread: every `options.period` it
  /// enforces expired run deadlines (belt-and-braces over the timer wheel)
  /// and samples per-worker progress probes; a worker stuck in one task for
  /// longer than `options.task_threshold` fires `options.on_stall` with a
  /// stall_report() snapshot.  Calling it again replaces the options.
  void enable_watchdog(WatchdogOptions options);
  void enable_watchdog(std::chrono::milliseconds period) {
    WatchdogOptions options;
    options.period = period;
    enable_watchdog(std::move(options));
  }

  /// Stop (join) the watchdog thread; no-op when not enabled.
  void disable_watchdog();

  /// True while the watchdog thread is running.
  [[nodiscard]] bool watchdog_enabled() const;

  /// Begin shutting down: new submissions (run/run_n/run_until/async and the
  /// legacy dispatch path) throw tf::ShutdownError from now on.  `drain`
  /// lets every already-submitted run finish normally; `abort` cancels
  /// queued and in-flight graph runs, which then drain cooperatively
  /// (skip-but-finalize), so completion stays deterministic.  In-flight
  /// async tasks always run to completion (their promises must be kept).
  /// Blocks until everything drained and the watchdog stopped; on return
  /// every handle/future ever handed out is ready (unlike plain
  /// wait_for_all, which may return an instant before the final promise is
  /// set).  Idempotent, and safe to call from several threads (all of them
  /// block until the drain completes).  The destructor routes through
  /// shutdown(drain).
  void shutdown(ShutdownMode mode = ShutdownMode::drain);

  /// True once shutdown() began: submissions are rejected.
  [[nodiscard]] bool is_shutdown() const noexcept {
    return _shutdown.load(std::memory_order_acquire);
  }

  /// Submit one callable as a task; the result (or thrown exception) is
  /// delivered through the returned future.  Safe from any thread,
  /// including from inside running tasks.
  template <typename F>
  auto async(F&& callable) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto state = std::make_shared<std::promise<R>>();
    std::future<R> future = state->get_future();
    // Errors are delivered through the caller's future, not the topology's
    // ErrorState: an async failure never poisons unrelated work.
    submit_async(StaticWork(
        [state = std::move(state), fn = std::forward<F>(callable)]() mutable {
          try {
            if constexpr (std::is_void_v<R>) {
              fn();
              state->set_value();
            } else {
              state->set_value(fn());
            }
          } catch (...) {
            state->set_exception(std::current_exception());
          }
        }));
    return future;
  }

  /// Block until every submitted run and async task finished.  Does not
  /// rethrow task exceptions (with many concurrent clients no single caller
  /// owns them): observe failures through each run's ExecutionHandle.
  /// Each handle's future becomes ready within a few instructions of this
  /// returning; code needing the strict all-ready guarantee should use
  /// shutdown(), or wait the specific handle it cares about.
  void wait_for_all();

  /// Bounded wait_for_all: false when work is still in flight after
  /// `timeout` (triage with stall_report()).
  bool wait_for_all_for(std::chrono::milliseconds timeout);

  /// Number of worker threads in the backend.
  [[nodiscard]] std::size_t num_workers() const noexcept { return _backend->num_workers(); }

  /// Graph runs currently queued or in flight (all clients).
  [[nodiscard]] std::size_t num_topologies() const noexcept {
    return _num_topologies.load(std::memory_order_relaxed);
  }

  /// Async tasks currently in flight.
  [[nodiscard]] std::size_t num_asyncs() const noexcept {
    return _num_asyncs.load(std::memory_order_relaxed);
  }

  /// One-shot diagnostic snapshot: backend scheduling state plus, per
  /// client taskflow, the pending-topology queue depth and the running
  /// topology's unfinished-task count, plus the in-flight async count.
  /// Safe (and race-free) to call from any thread while graphs run.
  void dump_state(std::ostream& os) const;

  /// Machine-readable metrics snapshot - the structured sibling of
  /// dump_state() consumed by the service layer's /healthz probe
  /// (DESIGN.md §13).  Scheduler numbers are atomics-only best effort;
  /// the admission block is read under the admission lock, so pending/
  /// started/breakers_open form a consistent cut of the admission state.
  struct Metrics {
    ExecutorInterface::SchedulerStats scheduler;
    std::size_t num_topologies{0};  // graph runs in flight (queue depth)
    std::size_t num_asyncs{0};
    bool admission_active{false};   // admission knobs engaged?
    std::size_t admitted{0};        // lifetime admission counters
    std::size_t rejected{0};
    std::size_t shed{0};
    std::size_t breaker_trips{0};
    std::size_t adm_pending{0};     // admitted, not yet finished/shed
    std::size_t adm_started{0};     // holding a concurrency slot
    std::size_t breakers_open{0};   // client breakers currently open
    bool shutdown{false};
  };
  [[nodiscard]] Metrics metrics() const;

  /// dump_state() wrapped as the executor stall report string.
  [[nodiscard]] std::string stall_report() const;

  /// Attach an observer to the backend (safe during live runs; see
  /// ExecutorInterface::set_observer).
  void set_observer(std::shared_ptr<ExecutorObserverInterface> observer) {
    _backend->set_observer(std::move(observer));
  }
  [[nodiscard]] std::shared_ptr<ExecutorObserverInterface> observer() const {
    return _backend->observer();
  }

  /// The pluggable scheduler backend.
  [[nodiscard]] const std::shared_ptr<ExecutorInterface>& backend() const noexcept {
    return _backend;
  }

 private:
  friend class Taskflow;

  /// Per-client FIFO of pending runs; front = the run in flight.  Owned by
  /// the executor (keyed by client address) and kept alive by every queued
  /// topology, so tear-down never races client destruction.  The deficit /
  /// in_ring fields belong to the admission layer and are touched only
  /// under _adm_mutex.
  struct ClientQueue {
    explicit ClientQueue(const Taskflow* o) : owner(o) {}
    const Taskflow* owner;
    std::mutex mutex;
    std::deque<std::shared_ptr<Topology>> queue;
    std::size_t deficit{0};  // deficit-round-robin credit, in node units
    bool in_ring{false};     // member of exactly one _adm_ready ring
  };

  /// Per-taskflow admission state, under _adm_mutex.  Separate from
  /// ClientQueue because it must survive queue teardown: a breaker stays
  /// open across idle periods in which the registry drops the drained queue.
  struct AdmissionClient {
    std::size_t pending{0};  // admitted, not yet finished/shed
    int consecutive_failures{0};
    enum class Breaker : unsigned char { closed, open, half_open } breaker{
        Breaker::closed};
    std::chrono::steady_clock::time_point opened_at{};
    bool probe_in_flight{false};
  };

  /// Why submit() turned a run away (selects the exception / event fired
  /// outside the admission lock).
  enum class RejectReason : unsigned char {
    none,
    overload,       // at capacity with reject policy / expired wait / try_run
    breaker_open,   // the taskflow's circuit breaker is open
    shutdown,       // shutdown() began (NOT an overload: no reject event)
  };

  /// Enqueue a (n, stop)-repeat run of `taskflow`; nullptr when there is
  /// nothing to do (empty graph or n == 0).  Starts it immediately when the
  /// client's queue was empty (and, under admission control, a concurrency
  /// slot is free).  A non-zero `policy.timeout` arms a deadline timer on
  /// the backend's wheel.  Throws tf::ShutdownError after shutdown() began
  /// and tf::OverloadError / tf::BreakerOpenError per the admission verdict
  /// - unless `nothrow` (the try_run path), which reports the verdict
  /// through `rejected` instead and never blocks.
  std::shared_ptr<Topology> submit(Taskflow& taskflow, std::size_t n,
                                   std::function<bool()> stop,
                                   RunPolicy policy = {}, bool nothrow = false,
                                   bool* rejected = nullptr);

  /// The admission gate of submit(): blocks/rejects per `policy` until the
  /// run may enter, then charges the pending counters and claims the
  /// breaker probe when the taskflow is half-open.  Returns the reject
  /// reason (none = admitted).  Called with _adm_mutex held.
  RejectReason admit_locked(std::unique_lock<std::mutex>& adm,
                            const Taskflow& taskflow, RunPolicy policy,
                            bool nothrow, bool& claimed_probe);

  /// Undo an admit_locked() charge when the submission fails after
  /// admission (cycle check).  Called with _adm_mutex held.
  void unadmit_locked(const Taskflow& taskflow, bool claimed_probe);

  /// Shed admitted-but-unstarted runs (lowest band first, newest first
  /// within a band) until the pending count is back at the watermark.
  /// Called with _adm_mutex held; the victims are completed (OverloadError)
  /// by the caller outside the lock via finish_shed().
  void shed_to_watermark_locked(std::vector<std::shared_ptr<Topology>>& victims,
                                std::vector<std::shared_ptr<ClientQueue>>& emptied);

  /// Complete one shed victim outside every lock: disarm its deadline,
  /// capture OverloadError, decrement the in-flight counters, finish().
  void finish_shed(const std::shared_ptr<Topology>& victim);

  /// Fill free concurrency slots from the ready rings: strict priority
  /// across bands, deficit round-robin across clients within one.  Appends
  /// the dispatched topologies to `to_start` (the caller start()s them
  /// outside the lock).  Called with _adm_mutex held.
  void dispatch_ready_locked(std::vector<std::shared_ptr<Topology>>& to_start);

  /// Enqueue `cq` on the ready ring of `band` unless it is already ringed.
  /// Called with _adm_mutex held.
  void ring_push_locked(const std::shared_ptr<ClientQueue>& cq, int band);

  /// Update `taskflow`'s breaker with a finished run's outcome (a stored
  /// exception = failure).  Called with _adm_mutex held.
  void breaker_update_locked(const Taskflow* taskflow, Topology& topology);

  /// Legacy Taskflow::dispatch entry: a one-shot topology owning `graph`,
  /// started immediately (dispatched topologies of one taskflow run
  /// concurrently, matching the paper's semantics).
  std::shared_ptr<Topology> dispatch_owned(Graph&& graph);

  /// Type-erased half of async(): boxes `work` into a single-node graph and
  /// schedules it.
  void submit_async(StaticWork&& work);

  /// Arm `topology` for its (next) run and seed the backend with its
  /// sources.
  void start(Topology& topology);

  /// Completion callback (TopologyClient): decides re-arm vs finish, hands
  /// the client queue to the next pending run, and keeps the in-flight
  /// accounting.  Runs on the worker that retired the last task.
  void on_topology_done(Topology& topology) final;

  /// Drop `cq` from the client registry when its queue drained (so the
  /// registry tracks live clients only).
  void release_client(ClientQueue* cq);

  /// Wake wait_for_all waiters after a decrement of the in-flight counters.
  void note_done();

  /// Throw tf::ShutdownError when shutdown() already began.
  void throw_if_shutdown() const;

  /// Record a freshly created graph run in the weak shutdown registry
  /// (pruning expired entries when they accumulate).
  void register_live(const std::shared_ptr<Topology>& topology);

  /// Arm the RunPolicy deadline of a freshly submitted topology: stamp the
  /// shared ErrorState (for this_task::deadline() and the watchdog sweep)
  /// and schedule the expiry on the backend's timer wheel.
  void arm_deadline(Topology& topology, RunPolicy policy);

  /// Withdraw a completed run's deadline timer from the wheel, so a finished
  /// run's state is not pinned by a timer that can no longer matter.
  void disarm_deadline(Topology& topology);

  /// Watchdog thread body: periodic deadline sweep + progress-probe scan.
  void watchdog_loop();

  /// Handles carry a weak reference to the backend's timer wheel so
  /// cancel_after() outlives neither laziness nor the executor (a late
  /// handle degrades to a no-op).  Creates the wheel object (not its
  /// service thread - that starts on first use) on first call.
  [[nodiscard]] ExecutionHandle handle_of(const std::shared_ptr<Topology>& topology) {
    return topology == nullptr
               ? ExecutionHandle{}
               : ExecutionHandle{topology->future(), topology->shared_error_state(),
                                 _backend->timer_wheel()};
  }

  std::shared_ptr<ExecutorInterface> _backend;

  // -- admission control (DESIGN.md §11) -----------------------------------
  // Lock order: _adm_mutex -> _clients_mutex -> ClientQueue::mutex.  The
  // completion path pops under the queue lock, RELEASES it, and only then
  // takes _adm_mutex - never the reverse.  _done_mutex stays a leaf.
  ExecutorOptions _options;
  const bool _admission_active{false};  // any knob set? computed once
  mutable std::mutex _adm_mutex;
  std::condition_variable _adm_cv;          // backpressure + shed wakeups
  std::size_t _adm_pending{0};              // admitted, not finished/shed
  std::size_t _adm_started{0};              // started on the worker pool
  std::unordered_map<const Taskflow*, AdmissionClient> _adm_clients;
  // Ready rings (one per band) of clients whose queue head waits for a
  // concurrency slot, and shed-candidate stacks (newest admitted last; the
  // stacks hold weak-ish extra refs and are pruned lazily of runs that
  // started or finished meanwhile).
  std::deque<std::shared_ptr<ClientQueue>> _adm_ready[kNumPriorities];
  std::vector<std::shared_ptr<Topology>> _adm_shed_stack[kNumPriorities];
  std::atomic<std::size_t> _adm_admitted{0};
  std::atomic<std::size_t> _adm_rejected{0};
  std::atomic<std::size_t> _adm_shed{0};
  std::atomic<std::size_t> _adm_breaker_trips{0};

  mutable std::mutex _clients_mutex;  // registry of per-taskflow run queues
  std::unordered_map<const Taskflow*, std::shared_ptr<ClientQueue>> _clients;

  // Weak registry of every submitted/dispatched graph run.  Completing
  // workers never touch it (their last action must stay finish(); see
  // on_topology_done): entries simply expire, and writers prune the dead
  // ones lazily in register_live().  shutdown() uses it to abort-cancel and
  // to wait each surviving run's future into readiness.
  std::mutex _live_mutex;
  std::unordered_map<Topology*, std::weak_ptr<Topology>> _live;

  std::atomic<std::size_t> _num_topologies{0};
  std::atomic<std::size_t> _num_asyncs{0};
  // Recycled async-run boxes; destroyed (and its boxes freed) after the
  // drain in ~Executor, when no worker can touch a box anymore.
  std::unique_ptr<detail::AsyncRunPool> _async_pool;
  mutable std::mutex _done_mutex;  // wait_for_all protocol
  mutable std::condition_variable _done_cv;

  // -- shutdown + watchdog state (DESIGN.md §8) ----------------------------
  std::atomic<bool> _shutdown{false};
  std::mutex _shutdown_mutex;  // serializes concurrent shutdown() callers
  mutable std::mutex _watchdog_mutex;
  std::condition_variable _watchdog_cv;
  std::thread _watchdog;
  bool _watchdog_stop{false};
  WatchdogOptions _watchdog_options;
};

// Defined here (declared in flow_builder.hpp) because it needs Taskflow
// complete to reach the composed graph.
inline Task FlowBuilder::composed_of(Taskflow& target) {
  // Static recursion guard: refuse to close a module-reference cycle.  Any
  // cycle built through composed_of alone is caught at the call that closes
  // it (the walk sees every reference added so far); cycles assembled
  // through channels this walk cannot see (a dynamic subflow composing an
  // ancestor at runtime) fall to the kMaxModuleDepth execution backstop.
  if (detail::composes_transitively(target.graph(), *_graph)) {
    throw CompositionError(
        &target.graph() == _graph
            ? "composed_of: a taskflow cannot compose itself - module "
              "expansion would recurse without bound"
            : "composed_of: target taskflow already composes this graph "
              "(mutual/transitive module recursion) - expansion would "
              "recurse without bound");
  }
  Task task = placeholder();
  task._node->_work.emplace<ModuleWork>(ModuleWork{&target.graph()});
  return task;
}

}  // namespace tf
