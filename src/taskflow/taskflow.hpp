// taskflow.hpp - tf::Taskflow, the main entry point of the library
// (paper §III, Listing 1).
//
//   tf::Taskflow tf;
//   auto [A, B, C, D] = tf.emplace(
//     [](){ std::cout << "Task A\n"; },
//     [](){ std::cout << "Task B\n"; },
//     [](){ std::cout << "Task C\n"; },
//     [](){ std::cout << "Task D\n"; }
//   );
//   A.precede(B, C);   // A runs before B and C
//   B.precede(D);      // B runs before D
//   C.precede(D);      // C runs before D
//   tf.wait_for_all(); // block until finish
//
// A taskflow object owns exactly one *present* graph at a time plus a list
// of dispatched topologies (paper Fig. 3).  All FlowBuilder building blocks
// (emplace, placeholder, precede, linearize, parallel_for, reduce,
// transform, ...) operate on the present graph; dispatch()/silent_dispatch()
// move it into a topology for execution; wait_for_all() dispatches the
// present graph (if any) and blocks until every dispatched topology
// finishes.
//
// A taskflow is NOT thread-safe: one owner thread builds and dispatches;
// the executor runs the tasks.  Executors are pluggable and shareable
// across taskflows (paper §III-E) via std::shared_ptr.
//
// Error model (see error.hpp / DESIGN.md §"Error model"):
//  * dispatch()/run() verify the graph is acyclic and throw tf::CycleError
//    with a descriptive message instead of deadlocking (disable the check
//    with REPRO_CYCLE_CHECK=0 when dispatch cost matters more than safety);
//  * a task that throws flips its topology into draining mode (remaining
//    tasks are skipped, bookkeeping still runs) and the first exception is
//    rethrown from the handle's get() and from wait_for_all();
//  * the returned ExecutionHandle supports cooperative cancel(), observable
//    inside tasks via tf::this_task::is_cancelled();
//  * wait_for_all_for() + stall_report() bound waits and triage deadlocks.
#pragma once

#include <chrono>
#include <future>
#include <list>
#include <memory>
#include <string>

#include "taskflow/executor.hpp"
#include "taskflow/flow_builder.hpp"
#include "taskflow/framework.hpp"
#include "taskflow/topology.hpp"

namespace tf {

namespace detail {
// Base-from-member: the owned graph must outlive (construction-wise) the
// FlowBuilder base that points at it.
struct GraphOwner {
  Graph graph;
};
}  // namespace detail

class Taskflow : private detail::GraphOwner, public FlowBuilder {
 public:
  /// Create a taskflow with a private work-stealing executor of
  /// `num_workers` threads (default: hardware concurrency).
  explicit Taskflow(std::size_t num_workers = std::thread::hardware_concurrency());

  /// Create a taskflow that shares `executor` (paper §III-E).
  explicit Taskflow(std::shared_ptr<ExecutorInterface> executor);

  /// Blocks until all dispatched topologies finish (does not auto-dispatch
  /// the present graph).
  ~Taskflow();

  Taskflow(const Taskflow&) = delete;
  Taskflow& operator=(const Taskflow&) = delete;

  /// Dispatch the present graph (non-blocking); returns a handle whose
  /// future becomes ready when every task - including dynamically spawned
  /// subflow tasks - has finished, and which exposes cooperative cancel().
  /// The handle converts implicitly to std::shared_future<void>, so
  /// paper-era call sites keep compiling.  The first exception thrown by a
  /// task is rethrown from the handle's get().  Throws tf::CycleError (and
  /// leaves the present graph intact) when the graph is cyclic.  On success
  /// the taskflow is left with a fresh empty graph.
  ExecutionHandle dispatch();

  /// Dispatch the present graph and ignore the execution status (still
  /// throws tf::CycleError on a cyclic graph).
  void silent_dispatch();

  /// Run a reusable Framework once (non-blocking); the handle's future
  /// becomes ready when the run completes and rethrows the first task
  /// exception.  The framework must outlive the run, and runs of one
  /// framework must not overlap.  Throws tf::CycleError on a cyclic graph.
  ExecutionHandle run(Framework& framework);

  /// Run a Framework `n` times back-to-back (blocking).  A run that fails
  /// (task exception) or is cancelled from another thread stops the
  /// sequence: the exception, if any, is rethrown immediately.
  void run_n(Framework& framework, std::size_t n);

  /// Dispatch the present graph (if non-empty) and block until all
  /// topologies finish; finished topologies are then released.  If any
  /// topology captured a task exception, the first one (in dispatch order)
  /// is rethrown - after every topology has fully drained, so no tasks are
  /// left running or stuck.  Like a shared future, a stored failure is
  /// rethrown on every observation: it reports here even when the handle's
  /// get() already delivered it.
  void wait_for_all();

  /// Bounded wait_for_all: returns false when not every topology finished
  /// within `timeout` (topologies are then kept, so the wait can be retried
  /// or triaged with stall_report()); returns true after the wait_for_all
  /// release-and-rethrow behavior.
  bool wait_for_all_for(std::chrono::milliseconds timeout);

  /// Diagnostic snapshot for deadlock/stall triage: executor scheduling
  /// state (queue depths, parked workers, counters) plus per-topology
  /// unfinished-task counts.  Safe to call from any thread at any time.
  [[nodiscard]] std::string stall_report() const;

  /// Block until all already-dispatched topologies finish (keeps them alive
  /// for inspection / dump_topologies()).  Does not rethrow task
  /// exceptions - used by the destructor, which must not throw.
  void wait_for_topologies();

  /// Number of worker threads in the underlying executor.
  [[nodiscard]] std::size_t num_workers() const noexcept { return _executor->num_workers(); }

  /// Number of dispatched topologies currently retained.
  [[nodiscard]] std::size_t num_topologies() const noexcept { return _topologies.size(); }

  /// The shared executor.
  [[nodiscard]] const std::shared_ptr<ExecutorInterface>& executor() const noexcept {
    return _executor;
  }

  /// GraphViz DOT text of the present (not yet dispatched) graph
  /// (paper §III-G).
  [[nodiscard]] std::string dump() const;

  /// GraphViz DOT text of every retained topology, including spawned subflow
  /// clusters (paper Fig. 5).  Call between dispatch()/wait_for_topologies()
  /// and the next wait_for_all().
  [[nodiscard]] std::string dump_topologies() const;

 private:
  std::shared_ptr<ExecutorInterface> _executor;
  std::list<Topology> _topologies;
};

}  // namespace tf
