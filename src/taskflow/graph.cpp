#include "taskflow/graph.hpp"

namespace tf {

Node::~Node() = default;

void Node::precede(Node& v) {
  // Most tasks carry only a handful of successors: skip the 1->2->4 growth
  // reallocations of the default geometric policy.
  if (_successors.capacity() == 0) _successors.reserve(4);
  _successors.push_back(&v);
  ++v._static_dependents;
}

std::size_t Graph::size_recursive() const {
  std::size_t n = _nodes.size();
  for (const auto& node : _nodes) {
    if (node._subgraph) n += node._subgraph->size_recursive();
  }
  return n;
}

}  // namespace tf
