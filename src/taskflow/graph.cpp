#include "taskflow/graph.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tf {

Node::~Node() = default;

void Node::precede(Node& v) {
  if (_num_successors == _succ_capacity) {
    grow_successors(_num_successors + 1);
  }
  successor_data()[_num_successors++] = &v;
  ++v._static_dependents;
  // Acyclicity witness, maintained as edges are built: an edge into an
  // earlier-created node (or a self-loop) breaks the "creation order is a
  // topological order" invariant, so dispatch must run the full check.
  if (v._creation_index <= _creation_index) _has_backward_edge = true;
}

void Node::grow_successors(std::uint32_t min_capacity) {
  // 2 (inline) -> 8 -> x4: few growth steps even for huge fan-out, and the
  // abandoned chunks are arena slack, not heap churn.
  std::uint32_t capacity =
      _succ_capacity <= kInlineSuccessors ? 8 : _succ_capacity * 4;
  if (capacity < min_capacity) capacity = min_capacity;
  Node** spill = _graph->allocate_edges(capacity);
  std::memcpy(spill, successor_data(), _num_successors * sizeof(Node*));
  _succ_spill = spill;
  _succ_capacity = capacity;
  _graph->_edges_dirty = true;
}

void Graph::finalize_edges() {
  if (!_edges_dirty) return;
  _edges_dirty = false;
  std::size_t spilled = 0;
  for (const Node* node : _index) {
    if (node->_succ_capacity > Node::kInlineSuccessors) {
      spilled += node->_num_successors;
    }
  }
  if (spilled == 0) return;
  // One contiguous block in creation order: the scheduler's finalize sweep
  // then walks successor arrays in (roughly) address order.  Capacities are
  // trimmed to size; a later precede() on a packed node re-spills.
  Node** block = allocate_edges(spilled);
  for (Node* node : _index) {
    if (node->_succ_capacity <= Node::kInlineSuccessors) continue;
    std::memcpy(block, node->_succ_spill, node->_num_successors * sizeof(Node*));
    node->_succ_spill = block;
    // A spilled node always has > kInlineSuccessors successors (growth only
    // happens on overflow), so the spill representation stays in force.
    node->_succ_capacity = node->_num_successors;
    block += node->_num_successors;
  }
}

void Graph::set_node_name(const Node& node, std::string name) {
  if (_names == nullptr) {
    _names = std::make_unique<std::unordered_map<const Node*, std::string>>();
  }
  (*_names)[&node] = std::move(name);
}

const std::string& Graph::node_name(const Node& node) const noexcept {
  static const std::string empty;
  if (_names == nullptr) return empty;
  auto it = _names->find(&node);
  return it == _names->end() ? empty : it->second;
}

namespace detail {
namespace {

// Display label of a node inside a cycle diagnostic: the user-given name, or
// a positional fallback for the (common) unnamed case.
std::string cycle_label(const Node* node,
                        const std::unordered_map<const Node*, std::size_t>& index) {
  if (!node->name().empty()) return "\"" + node->name() + "\"";
  return "task#" + std::to_string(index.at(node));
}

}  // namespace

std::string describe_cycle(Graph& g, std::size_t max_named) {
  // Kahn's algorithm, reusing the join counters as scratch in-degrees.  The
  // graph is quiescent here (dispatch runs before workers see it; a subflow
  // is checked before its children are armed), so the counters can be
  // updated with plain load/store instead of atomic RMWs, and the worklist
  // is a reused thread-local - the no-cycle path costs one O(V+E) sweep
  // and no steady-state allocation.
  // Fast accept: when every edge points from an earlier-created node to a
  // later one, creation order is already a topological order (the common
  // case - precede(A, B) written in build order).  Node::precede maintains
  // that witness per node, so this is one read-only sweep with no edge
  // dereferences.  Patterns that wire successors backward (e.g. the
  // parallel_for source/target pair, created before its workers) fall
  // through to the full check below.
  {
    bool forward = true;
    for (const auto& node : g) {
      if (node._has_backward_edge) {
        forward = false;
        break;
      }
    }
    if (forward) return {};
  }

  static thread_local std::vector<Node*> worklist;
  worklist.clear();
  worklist.reserve(g.size());
  for (auto& node : g) {
    node._join_counter.store(node._static_dependents, std::memory_order_relaxed);
    if (node._static_dependents == 0) worklist.push_back(&node);
  }
  std::size_t processed = 0;
  while (!worklist.empty()) {
    Node* n = worklist.back();
    worklist.pop_back();
    ++processed;
    for (Node* succ : n->successors()) {
      const int remaining = succ->_join_counter.load(std::memory_order_relaxed) - 1;
      succ->_join_counter.store(remaining, std::memory_order_relaxed);
      if (remaining == 0) worklist.push_back(succ);
    }
  }
  if (processed == g.size()) return {};

  // Error path only: recover one concrete cycle with a colored DFS over the
  // unprocessed remainder (counter > 0 = on or downstream of a cycle).
  std::unordered_map<const Node*, std::size_t> index;
  std::unordered_map<const Node*, int> color;  // 0 white, 1 on path, 2 done
  index.reserve(g.size());
  std::size_t i = 0;
  for (const auto& node : g) index.emplace(&node, i++);

  std::vector<Node*> path;
  std::string cycle_text;
  for (auto& root : g) {
    if (root._join_counter.load(std::memory_order_relaxed) == 0 || color[&root] == 2) {
      continue;
    }
    // Iterative DFS with an explicit (node, next-successor) stack.
    std::vector<std::pair<Node*, std::size_t>> stack{{&root, 0}};
    color[&root] = 1;
    path = {&root};
    while (!stack.empty() && cycle_text.empty()) {
      auto& [node, next] = stack.back();
      if (next < node->num_successors()) {
        Node* succ = node->successor_data()[next++];
        if (succ->_join_counter.load(std::memory_order_relaxed) == 0) continue;
        if (color[succ] == 1) {
          // Back edge: the cycle is the path suffix starting at succ.
          auto it = std::find(path.begin(), path.end(), succ);
          std::size_t named = 0;
          for (; it != path.end() && named < max_named; ++it, ++named) {
            cycle_text += cycle_label(*it, index) + " -> ";
          }
          cycle_text += it == path.end() ? cycle_label(succ, index) : "...";
          break;
        }
        if (color[succ] == 0) {
          color[succ] = 1;
          path.push_back(succ);
          stack.emplace_back(succ, 0);
        }
      } else {
        color[node] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
    if (!cycle_text.empty()) break;
  }
  return "dependency cycle detected (" + std::to_string(g.size() - processed) +
         " of " + std::to_string(g.size()) +
         " task(s) can never become ready): " + cycle_text;
}

}  // namespace detail

std::size_t Graph::size_recursive() const {
  std::size_t n = _index.size();
  for (const Node* node : _index) {
    if (node->_subgraph) n += node->_subgraph->size_recursive();
  }
  return n;
}

}  // namespace tf
