#include "taskflow/graph.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tf {

namespace detail {

std::atomic<long long> alloc_failure_countdown{-1};

void alloc_failure_check() {
  if (alloc_failure_countdown.load(std::memory_order_relaxed) < 0) return;
  // fetch_sub makes exactly one acquisition observe 0 even under concurrent
  // slab growth; everything after the trigger sees a negative value and
  // passes (the injector is one-shot until re-armed).
  if (alloc_failure_countdown.fetch_sub(1, std::memory_order_relaxed) == 0) {
    throw std::bad_alloc();
  }
}

}  // namespace detail

Node::~Node() = default;

void Node::precede(Node& v) {
  if (_num_successors == _succ_capacity) {
    grow_successors(_num_successors + 1);
  }
  successor_data()[_num_successors++] = &v;
  ++v._static_dependents;
  // Edges out of a condition task are weak: they fire on branch selection
  // and must not count toward the successor's join.  Task::work keeps these
  // counts consistent when a callable is assigned after edges exist.
  if (is_condition()) ++v._weak_dependents;
  // Acyclicity witness, maintained as edges are built: an edge into an
  // earlier-created node (or a self-loop) breaks the "creation order is a
  // topological order" invariant, so dispatch must run the full check.
  if (v._creation_index <= _creation_index) _has_backward_edge = true;
}

void Node::grow_successors(std::uint32_t min_capacity) {
  // 2 (inline) -> 8 -> x4: few growth steps even for huge fan-out, and the
  // abandoned chunks are arena slack, not heap churn.
  std::uint32_t capacity =
      _succ_capacity <= kInlineSuccessors ? 8 : _succ_capacity * 4;
  if (capacity < min_capacity) capacity = min_capacity;
  Node** spill = _graph->allocate_edges(capacity);
  std::memcpy(spill, successor_data(), _num_successors * sizeof(Node*));
  _succ_spill = spill;
  _succ_capacity = capacity;
  _graph->_edges_dirty = true;
}

void Graph::finalize_edges() {
  if (!_edges_dirty) return;
  _edges_dirty = false;
  std::size_t spilled = 0;
  for (const Node* node : _index) {
    if (node->_succ_capacity > Node::kInlineSuccessors) {
      spilled += node->_num_successors;
    }
  }
  if (spilled == 0) return;
  // One contiguous block in creation order: the scheduler's finalize sweep
  // then walks successor arrays in (roughly) address order.  Capacities are
  // trimmed to size; a later precede() on a packed node re-spills.
  Node** block = allocate_edges(spilled);
  for (Node* node : _index) {
    if (node->_succ_capacity <= Node::kInlineSuccessors) continue;
    std::memcpy(block, node->_succ_spill, node->_num_successors * sizeof(Node*));
    node->_succ_spill = block;
    // A spilled node always has > kInlineSuccessors successors (growth only
    // happens on overflow), so the spill representation stays in force.
    node->_succ_capacity = node->_num_successors;
    block += node->_num_successors;
  }
}

void Graph::set_node_name(const Node& node, std::string name) {
  if (_names == nullptr) {
    _names = std::make_unique<std::unordered_map<const Node*, std::string>>();
  }
  (*_names)[&node] = std::move(name);
}

const std::string& Graph::node_name(const Node& node) const noexcept {
  static const std::string empty;
  if (_names == nullptr) return empty;
  auto it = _names->find(&node);
  return it == _names->end() ? empty : it->second;
}

namespace detail {
namespace {

// Display label of a node inside a cycle diagnostic: the user-given name, or
// a positional fallback for the (common) unnamed case.
std::string cycle_label(const Node* node,
                        const std::unordered_map<const Node*, std::size_t>& index) {
  if (!node->name().empty()) return "\"" + node->name() + "\"";
  return "task#" + std::to_string(index.at(node));
}

}  // namespace

std::string describe_cycle(Graph& g, std::size_t max_named) {
  // Kahn's algorithm, reusing the join counters as scratch in-degrees.  The
  // graph is quiescent here (dispatch runs before workers see it; a subflow
  // is checked before its children are armed), so the counters can be
  // updated with plain load/store instead of atomic RMWs, and the worklist
  // is a reused thread-local - the no-cycle path costs one O(V+E) sweep
  // and no steady-state allocation.
  // Fast accept: when every edge points from an earlier-created node to a
  // later one, creation order is already a topological order (the common
  // case - precede(A, B) written in build order).  Node::precede maintains
  // that witness per node, so this is one read-only sweep with no edge
  // dereferences.  Patterns that wire successors backward (e.g. the
  // parallel_for source/target pair, created before its workers) fall
  // through to the full check below.
  {
    bool forward = true;
    for (const auto& node : g) {
      if (node._has_backward_edge) {
        forward = false;
        break;
      }
    }
    if (forward) return {};
  }

  // Cycles are legal exactly when every lap passes through a condition task
  // (an in-graph loop, second Taskflow paper §III-C): the condition re-arms
  // the loop body one branch at a time, so execution cannot deadlock on it.
  // The check therefore runs over *strong* edges only - in-degrees exclude
  // weak (condition-out) edges and condition successors are not decremented.
  // A strongly-connected lap with no condition on it is a genuine deadlock
  // and stays an error.
  static thread_local std::vector<Node*> worklist;
  worklist.clear();
  worklist.reserve(g.size());
  for (auto& node : g) {
    node._join_counter.store(node.num_strong_dependents(),
                             std::memory_order_relaxed);
    if (node.num_strong_dependents() == 0) worklist.push_back(&node);
  }
  std::size_t processed = 0;
  while (!worklist.empty()) {
    Node* n = worklist.back();
    worklist.pop_back();
    ++processed;
    if (n->is_condition()) continue;  // weak out-edges: no join contribution
    for (Node* succ : n->successors()) {
      const int remaining = succ->_join_counter.load(std::memory_order_relaxed) - 1;
      succ->_join_counter.store(remaining, std::memory_order_relaxed);
      if (remaining == 0) worklist.push_back(succ);
    }
  }
  if (processed == g.size()) {
    // Strong-acyclic, but a control-flow graph still needs an entry point:
    // when every task has a predecessor (e.g. a condition loop with no way
    // in), dispatch would schedule nothing and the run could never finish.
    // Checked only on this path - a pure-static cycle below is the better
    // diagnostic, and the fast-accept above implies node 0 is a source.
    for (const auto& node : g) {
      if (node._static_dependents == 0) return {};
    }
    if (g.empty()) return {};
    return "graph has no source task (every task has a predecessor), so no "
           "task can ever start";
  }

  // Error path only: recover one concrete cycle with a colored DFS over the
  // unprocessed remainder (counter > 0 = on or downstream of a cycle).
  std::unordered_map<const Node*, std::size_t> index;
  std::unordered_map<const Node*, int> color;  // 0 white, 1 on path, 2 done
  index.reserve(g.size());
  std::size_t i = 0;
  for (const auto& node : g) index.emplace(&node, i++);

  std::vector<Node*> path;
  std::string cycle_text;
  for (auto& root : g) {
    if (root._join_counter.load(std::memory_order_relaxed) == 0 || color[&root] == 2) {
      continue;
    }
    // Iterative DFS with an explicit (node, next-successor) stack.
    std::vector<std::pair<Node*, std::size_t>> stack{{&root, 0}};
    color[&root] = 1;
    path = {&root};
    while (!stack.empty() && cycle_text.empty()) {
      auto& [node, next] = stack.back();
      // Condition out-edges are legal back-edges: never walk them, so the
      // named cycle consists of strong edges only.
      if (node->is_condition()) {
        color[node] = 2;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      if (next < node->num_successors()) {
        Node* succ = node->successor_data()[next++];
        if (succ->_join_counter.load(std::memory_order_relaxed) == 0) continue;
        if (color[succ] == 1) {
          // Back edge: the cycle is the path suffix starting at succ.
          auto it = std::find(path.begin(), path.end(), succ);
          std::size_t named = 0;
          for (; it != path.end() && named < max_named; ++it, ++named) {
            cycle_text += cycle_label(*it, index) + " -> ";
          }
          cycle_text += it == path.end() ? cycle_label(succ, index) : "...";
          break;
        }
        if (color[succ] == 0) {
          color[succ] = 1;
          path.push_back(succ);
          stack.emplace_back(succ, 0);
        }
      } else {
        color[node] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
    if (!cycle_text.empty()) break;
  }
  return "dependency cycle detected (" + std::to_string(g.size() - processed) +
         " of " + std::to_string(g.size()) +
         " task(s) can never become ready): " + cycle_text;
}

void instantiate(const Graph& src, Graph& dst) {
  assert(dst.empty());
  std::size_t edges = 0;
  for (const Node& s : src) edges += s.num_successors();
  dst.reserve(src.size(), edges);
  // Pass 1: nodes, work items, policies, names.  Work is assigned before any
  // edge exists so precede() below classifies edge strength (strong vs weak)
  // from the copied source kinds.  The variant is copied by hand: its
  // alternatives hold move-only wrappers (SmallFunction) and an atomic, so
  // plain copy-assignment is unavailable - clone() duplicates the callables
  // and rejects move-only targets with a descriptive error.
  for (const Node& s : src) {
    Node& d = dst.emplace_back();
    switch (s._work.index()) {
      case 1:
        d._work.emplace<StaticWork>(std::get<StaticWork>(s._work).clone());
        break;
      case 2:
        d._work.emplace<DynamicWork>(std::get<DynamicWork>(s._work).clone());
        break;
      case 3:
        d._work.emplace<ConditionWork>(std::get<ConditionWork>(s._work).fn.clone());
        break;
      case 4:
        d._work.emplace<ModuleWork>(std::get<ModuleWork>(s._work));
        break;
      default:
        break;  // monostate placeholder
    }
    if (s._policy != nullptr) {
      auto policy = std::make_unique<ResiliencePolicy>();
      policy->retry = s._policy->retry;
      if (s._policy->fallback) policy->fallback = s._policy->fallback.clone();
      d._policy = std::move(policy);
    }
    if (const std::string& name = src.node_name(s); !name.empty()) {
      dst.set_node_name(d, name);
    }
  }
  // Pass 2: edges, mapped through creation indices (identical in the copy).
  for (const Node& s : src) {
    Node& d = dst.node_at(static_cast<std::size_t>(s._creation_index));
    for (const Node* succ : s.successors()) {
      d.precede(dst.node_at(static_cast<std::size_t>(succ->_creation_index)));
    }
  }
}

bool composes_transitively(const Graph& target, const Graph& owner) {
  if (&target == &owner) return true;
  // Iterative DFS over module references; `seen` also serves as the visit
  // stack guard.  Small vectors beat hashing here - real composition graphs
  // reference a handful of taskflows.
  std::vector<const Graph*> stack{&target};
  std::vector<const Graph*> seen{&target};
  while (!stack.empty()) {
    const Graph* g = stack.back();
    stack.pop_back();
    for (const Node& n : *g) {
      if (!n.is_module()) continue;
      const Graph* ref = std::get<ModuleWork>(n._work).target;
      if (ref == nullptr) continue;
      if (ref == &owner) return true;
      if (std::find(seen.begin(), seen.end(), ref) == seen.end()) {
        seen.push_back(ref);
        stack.push_back(ref);
      }
    }
  }
  return false;
}

}  // namespace detail

std::size_t Graph::size_recursive() const {
  std::size_t n = _index.size();
  for (const Node* node : _index) {
    if (node->_subgraph) n += node->_subgraph->size_recursive();
  }
  return n;
}

}  // namespace tf
