// observer.hpp - executor observer interface (used to reproduce the CPU
// utilization profile of paper Fig. 10 right).
//
// An observer attached to an executor receives an on_entry/on_exit callback
// around every task invocation, tagged with the invoking worker id.  The
// bundled RecordingObserver accumulates busy intervals per worker and can
// aggregate them into a utilization-over-time series.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "taskflow/graph.hpp"

namespace tf {

class ExecutorObserverInterface {
 public:
  virtual ~ExecutorObserverInterface() = default;

  /// Called once when the observer is attached; `num_workers` is the number
  /// of worker threads of the executor.
  virtual void set_up(std::size_t num_workers) { (void)num_workers; }

  /// Called by worker `worker_id` immediately before invoking `node`'s task.
  virtual void on_entry(std::size_t worker_id, const Node& node) {
    (void)worker_id;
    (void)node;
  }

  /// Called by worker `worker_id` immediately after `node`'s task returns.
  virtual void on_exit(std::size_t worker_id, const Node& node) {
    (void)worker_id;
    (void)node;
  }

  // ---- resilience events (DESIGN.md §8); default no-op so pre-resilience
  // ---- observers compile unchanged -----------------------------------------

  /// Called by worker `worker_id` when `node`'s attempt number `attempt`
  /// (1-based) failed and the task is about to be re-enqueued for another
  /// attempt (immediately or after its backoff delay).
  virtual void on_task_retry(std::size_t worker_id, const Node& node, int attempt) {
    (void)worker_id;
    (void)node;
    (void)attempt;
  }

  /// Called by worker `worker_id` just before `node`'s fallback handler runs
  /// (its retry budget - if any - is exhausted).
  virtual void on_task_fallback(std::size_t worker_id, const Node& node) {
    (void)worker_id;
    (void)node;
  }

  /// Called when a run's RunPolicy deadline expired and won the drain race
  /// (the run will complete with tf::TimeoutError).  Invoked from the timer
  /// or watchdog thread, not from a worker.
  virtual void on_topology_timeout() {}

  // ---- admission-control events (DESIGN.md §11); default no-op so
  // ---- pre-admission observers compile unchanged ---------------------------

  /// Called on the submitting thread when a run passed admission control
  /// (only executors with non-default ExecutorOptions admit explicitly, so
  /// the zero-policy hot path never pays for this hook).
  virtual void on_topology_admit() {}

  /// Called on the submitting thread when admission control turned a run
  /// away: AdmissionPolicy::reject at capacity, a backpressure wait that
  /// exceeded its admission_timeout, an open circuit breaker, or a try_run
  /// that would have had to block.
  virtual void on_topology_reject() {}

  /// Called when an admitted but not-yet-started run was load-shed above the
  /// executor's shed watermark (its future completes with tf::OverloadError).
  /// Invoked from the submitting thread that pushed the executor over the
  /// watermark, not from a worker.
  virtual void on_topology_shed() {}
};

/// Records per-worker busy intervals with steady-clock timestamps.
class RecordingObserver final : public ExecutorObserverInterface {
 public:
  struct Interval {
    std::chrono::steady_clock::time_point begin;
    std::chrono::steady_clock::time_point end;
    std::string name;  // task name ("" when unnamed)
  };

  void set_up(std::size_t num_workers) override;
  void on_entry(std::size_t worker_id, const Node& node) override;
  void on_exit(std::size_t worker_id, const Node& node) override;

  /// Total number of recorded task executions.
  [[nodiscard]] std::size_t num_tasks() const;

  /// Aggregate busy time into buckets of `bucket` duration starting at the
  /// first recorded timestamp; each entry is utilization in percent summed
  /// across workers (so the maximum is 100 * num_workers, matching the
  /// paper's Fig. 10 y-axis).
  [[nodiscard]] std::vector<double> utilization(std::chrono::milliseconds bucket) const;

  /// Clear all recorded intervals (the worker count is kept).
  void clear();

  /// Export the execution timeline as Chrome-tracing JSON (load in
  /// chrome://tracing or https://ui.perfetto.dev): one complete event per
  /// task, one row per worker.  Times are microseconds from the first
  /// recorded task.
  void dump_chrome_tracing(std::ostream& os) const;

  /// Per-worker interval access (read after the run has completed).
  [[nodiscard]] const std::vector<Interval>& intervals(std::size_t worker_id) const {
    return _lanes[worker_id].intervals;
  }
  [[nodiscard]] std::size_t num_workers() const noexcept { return _lanes.size(); }

 private:
  struct Lane {
    std::vector<Interval> intervals;
    std::chrono::steady_clock::time_point open{};
  };
  mutable std::mutex _mutex;  // guards _lanes resizing only; lanes are per-worker
  std::vector<Lane> _lanes;
};

}  // namespace tf
