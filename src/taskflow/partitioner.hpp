// partitioner.hpp - pluggable range partitioners for the algorithm patterns
// (paper §III-F; DESIGN.md §9).
//
// The algorithm patterns of FlowBuilder (parallel_for / transform / reduce /
// transform_reduce) no longer emplace one task per chunk.  Each pattern
// creates O(num_workers) *range worker* nodes that loop "grab the next
// [beg, end) index range -> process it" against a shared, cache-line-aligned
// atomic cursor until the iteration space drains.  A partitioner decides how
// large each grabbed range is:
//
//  * StaticPartitioner  - fixed chunk size (0 = even split: ceil(N/W)).
//    Cheapest protocol (one relaxed fetch_add per grab), best locality,
//    no adaptation to load imbalance.
//  * DynamicPartitioner - fixed small chunk (default 1), like OpenMP's
//    schedule(dynamic): maximum balancing, one atomic RMW per chunk, so
//    pick a chunk that amortizes the grab over the per-element cost.
//  * GuidedPartitioner  - decaying chunks, like OpenMP's schedule(guided):
//    chunk = max(remaining / (2W), min_chunk).  Large early grabs amortize
//    the atomic traffic; small late grabs absorb skewed per-element cost.
//    This is the default of every algorithm overload.
//
// The cursor protocol is cooperative and wait-free for the fetch_add
// partitioners (a drained worker performs exactly one overshooting
// fetch_add, so the counter stays within total + W * grain of the domain
// size and can never wrap).  GuidedPartitioner uses a CAS loop because its
// chunk size depends on the remaining length; a failed CAS simply recomputes
// from the freshly observed cursor.  All cursor operations are relaxed: the
// ranges handed out are disjoint by construction, and the data processed
// inside them is published to the combiner/successor tasks by the
// scheduler's join-counter edges, not by the cursor.
//
// A custom partitioner is any type that provides
//     bool grab(detail::RangeCursor&, detail::IndexRange&) const noexcept;
//     std::size_t ranges_hint(std::size_t total, std::size_t workers) const;
// and opts into tf::detail::is_partitioner<P>.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <type_traits>

namespace tf {

namespace detail {

/// One half-open index range [begin, end) handed to a range worker.
struct IndexRange {
  std::size_t begin{0};
  std::size_t end{0};
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

/// The shared iteration cursor of one algorithm pattern: its own cache line,
/// so the workers' grab traffic never false-shares with the pattern's
/// payload (iterators, callables, partial results) that sits next to it in
/// the control block.  `total` and `workers` are immutable after
/// construction; `next` is reset by the pattern's source task at the start
/// of every run (run_n re-runs the same graph).
struct alignas(64) RangeCursor {
  std::atomic<std::size_t> next{0};
  std::size_t total{0};
  std::size_t workers{1};

  RangeCursor() = default;
  RangeCursor(std::size_t t, std::size_t w) : total(t), workers(w == 0 ? 1 : w) {}

  void reset() noexcept { next.store(0, std::memory_order_relaxed); }
};

}  // namespace detail

/// Fixed-size chunks handed out from the shared cursor.  `chunk == 0` (the
/// default, and what the legacy `chunk = 0` auto parameter maps to) means an
/// even split: ceil(total / workers), i.e. each worker typically grabs
/// exactly one range - the classic static schedule with maximal locality and
/// minimal cursor traffic.
class StaticPartitioner {
 public:
  constexpr StaticPartitioner() = default;
  constexpr explicit StaticPartitioner(std::size_t chunk) : _chunk(chunk) {}

  [[nodiscard]] constexpr std::size_t chunk() const noexcept { return _chunk; }

  [[nodiscard]] std::size_t grain(std::size_t total, std::size_t workers) const noexcept {
    if (_chunk != 0) return _chunk;
    return std::max<std::size_t>(1, (total + workers - 1) / workers);
  }

  bool grab(detail::RangeCursor& c, detail::IndexRange& out) const noexcept {
    const std::size_t g = grain(c.total, c.workers);
    const std::size_t beg = c.next.fetch_add(g, std::memory_order_relaxed);
    if (beg >= c.total) return false;
    out = {beg, std::min(beg + g, c.total)};
    return true;
  }

  /// Upper bound of ranges this partitioner will hand out - lets the
  /// patterns spawn no more workers than there are ranges to grab.
  [[nodiscard]] std::size_t ranges_hint(std::size_t total, std::size_t workers) const {
    const std::size_t g = grain(total, workers);
    return (total + g - 1) / g;
  }

 private:
  std::size_t _chunk{0};
};

/// Fixed small chunks (default 1) grabbed on demand - OpenMP's
/// schedule(dynamic).  One atomic RMW per chunk: choose `chunk` so the
/// per-element work amortizes it (e.g. a few hundred for ~ns elements).
class DynamicPartitioner {
 public:
  constexpr DynamicPartitioner() = default;
  constexpr explicit DynamicPartitioner(std::size_t chunk)
      : _chunk(chunk == 0 ? 1 : chunk) {}

  [[nodiscard]] constexpr std::size_t chunk() const noexcept { return _chunk; }

  bool grab(detail::RangeCursor& c, detail::IndexRange& out) const noexcept {
    const std::size_t beg = c.next.fetch_add(_chunk, std::memory_order_relaxed);
    if (beg >= c.total) return false;
    out = {beg, std::min(beg + _chunk, c.total)};
    return true;
  }

  [[nodiscard]] std::size_t ranges_hint(std::size_t total, std::size_t /*workers*/) const {
    return (total + _chunk - 1) / _chunk;
  }

 private:
  std::size_t _chunk{1};
};

/// Exponentially decaying chunks - OpenMP's schedule(guided) and the default
/// of every algorithm overload:
///
///     chunk = max(remaining / (2 * workers), min_chunk)
///
/// The first grabs hand out total/(2W)-sized ranges (few atomics, good
/// locality while every worker is busy anyway); as the space drains the
/// ranges shrink geometrically, so stragglers working on expensive elements
/// near the end are backfilled at min_chunk granularity.  A CAS loop is
/// required because the chunk depends on the remaining length; contention is
/// bounded by W and each failure just recomputes from the fresh cursor.
class GuidedPartitioner {
 public:
  constexpr GuidedPartitioner() = default;
  constexpr explicit GuidedPartitioner(std::size_t min_chunk)
      : _min_chunk(min_chunk == 0 ? 1 : min_chunk) {}

  [[nodiscard]] constexpr std::size_t min_chunk() const noexcept { return _min_chunk; }

  bool grab(detail::RangeCursor& c, detail::IndexRange& out) const noexcept {
    std::size_t beg = c.next.load(std::memory_order_relaxed);
    while (beg < c.total) {
      const std::size_t remaining = c.total - beg;
      std::size_t len = remaining / (2 * c.workers);
      if (len < _min_chunk) len = _min_chunk;
      if (len > remaining) len = remaining;
      if (c.next.compare_exchange_weak(beg, beg + len, std::memory_order_relaxed)) {
        out = {beg, beg + len};
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t ranges_hint(std::size_t total, std::size_t workers) const {
    // Decaying chunks always produce at least one range per worker early on;
    // never a reason to spawn fewer than W workers (the patterns still cap
    // by the domain size).
    return total < workers ? total : workers;
  }

 private:
  std::size_t _min_chunk{1};
};

/// The partitioner used when an algorithm overload is called without one.
using DefaultPartitioner = GuidedPartitioner;

namespace detail {

/// Opt-in trait gating the partitioner overloads of the algorithm patterns
/// (so `parallel_for(beg, end, f, 256)` still resolves the legacy chunk
/// overload).  Specialize to true_type to plug in a custom partitioner.
template <typename P>
struct is_partitioner : std::false_type {};
template <>
struct is_partitioner<StaticPartitioner> : std::true_type {};
template <>
struct is_partitioner<DynamicPartitioner> : std::true_type {};
template <>
struct is_partitioner<GuidedPartitioner> : std::true_type {};

template <typename P>
inline constexpr bool is_partitioner_v = is_partitioner<std::decay_t<P>>::value;

}  // namespace detail

}  // namespace tf
