#include "taskflow/observer.hpp"

#include <algorithm>

namespace tf {

void RecordingObserver::set_up(std::size_t num_workers) {
  std::scoped_lock lock(_mutex);
  _lanes.resize(std::max(_lanes.size(), num_workers));
  for (auto& lane : _lanes) lane.intervals.reserve(1 << 12);
}

void RecordingObserver::on_entry(std::size_t worker_id, const Node&) {
  if (worker_id >= _lanes.size()) return;
  _lanes[worker_id].open = std::chrono::steady_clock::now();
}

void RecordingObserver::on_exit(std::size_t worker_id, const Node& node) {
  if (worker_id >= _lanes.size()) return;
  auto& lane = _lanes[worker_id];
  lane.intervals.push_back({lane.open, std::chrono::steady_clock::now(), node.name()});
}

std::size_t RecordingObserver::num_tasks() const {
  std::size_t n = 0;
  for (const auto& lane : _lanes) n += lane.intervals.size();
  return n;
}

std::vector<double> RecordingObserver::utilization(std::chrono::milliseconds bucket) const {
  using clock = std::chrono::steady_clock;
  clock::time_point first = clock::time_point::max();
  clock::time_point last = clock::time_point::min();
  for (const auto& lane : _lanes) {
    for (const auto& iv : lane.intervals) {
      first = std::min(first, iv.begin);
      last = std::max(last, iv.end);
    }
  }
  if (first >= last) return {};

  const auto span = last - first;
  const std::size_t buckets =
      static_cast<std::size_t>((span + bucket - std::chrono::nanoseconds(1)) / bucket) ;
  std::vector<double> busy(buckets, 0.0);

  for (const auto& lane : _lanes) {
    for (const auto& iv : lane.intervals) {
      auto lo = iv.begin;
      while (lo < iv.end) {
        const auto idx = static_cast<std::size_t>((lo - first) / bucket);
        const auto bucket_end = first + bucket * static_cast<long>(idx + 1);
        const auto hi = std::min(iv.end, bucket_end);
        busy[std::min(idx, buckets - 1)] +=
            std::chrono::duration<double>(hi - lo).count();
        lo = hi;
      }
    }
  }

  const double bucket_s = std::chrono::duration<double>(bucket).count();
  for (auto& b : busy) b = 100.0 * b / bucket_s;
  return busy;
}

void RecordingObserver::clear() {
  std::scoped_lock lock(_mutex);
  for (auto& lane : _lanes) lane.intervals.clear();
}

void RecordingObserver::dump_chrome_tracing(std::ostream& os) const {
  using clock = std::chrono::steady_clock;
  clock::time_point first = clock::time_point::max();
  for (const auto& lane : _lanes) {
    for (const auto& iv : lane.intervals) first = std::min(first, iv.begin);
  }

  auto us_since = [&](clock::time_point t) {
    return std::chrono::duration<double, std::micro>(t - first).count();
  };
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  };

  os << "[";
  bool need_comma = false;
  for (std::size_t w = 0; w < _lanes.size(); ++w) {
    for (const auto& iv : _lanes[w].intervals) {
      if (need_comma) os << ",";
      need_comma = true;
      os << "\n{\"name\":\"" << (iv.name.empty() ? "task" : escape(iv.name))
         << "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":" << us_since(iv.begin)
         << ",\"dur\":" << us_since(iv.end) - us_since(iv.begin)
         << ",\"pid\":0,\"tid\":" << w << "}";
    }
  }
  os << "\n]\n";
}

}  // namespace tf
