// error.hpp - the error model of the library: exception capture, cooperative
// cancellation, and cycle diagnostics (the robustness layer over paper §III).
//
// Every dispatched Topology owns one detail::ErrorState shared with the
// ExecutionHandle returned by Taskflow::dispatch()/run().  The first task
// that throws stores its std::exception_ptr there (first-writer-wins) and
// flips the topology into *draining* mode: remaining tasks skip their work
// but still run the finalize bookkeeping (join counters, subflow parents,
// live-task count), so the topology terminates cleanly and the stored
// exception is rethrown from the completion future.  ExecutionHandle::cancel
// uses the same drain path without an exception.
#pragma once

#include <atomic>
#include <exception>
#include <stdexcept>
#include <string>

namespace tf {

/// Thrown by Taskflow::dispatch()/run() when the dependency graph contains a
/// cycle (which could never complete), and delivered through the completion
/// future when a dynamically spawned subflow turns out to be cyclic.
class CycleError : public std::runtime_error {
 public:
  explicit CycleError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Error/cancellation state of one dispatched topology, shared (via
/// std::shared_ptr) between the Topology and any ExecutionHandle so the
/// handle stays valid after the topology is released by wait_for_all().
struct ErrorState {
  /// Draining flag: set by cancel() and by the first captured exception.
  /// Workers read it once per task to decide the skip-but-finalize path.
  std::atomic<bool> cancelled{false};

  /// Publication protocol for `exception`: 0 = empty, 1 = a winner is
  /// writing, 2 = stored.  A task always captures *before* it retires, and
  /// the final retire_one() synchronizes with every earlier one (acq_rel
  /// RMW chain), so state 2 is visible to whichever task fulfils the
  /// completion promise.
  std::atomic<int> exception_phase{0};
  std::exception_ptr exception;

  [[nodiscard]] bool draining() const noexcept {
    return cancelled.load(std::memory_order_acquire);
  }

  void cancel() noexcept { cancelled.store(true, std::memory_order_release); }

  /// First-writer-wins capture; every caller (winner or not) also flips the
  /// topology into draining mode.  Returns true for the winner.
  bool capture(std::exception_ptr e) noexcept {
    int expected = 0;
    const bool won =
        exception_phase.compare_exchange_strong(expected, 1, std::memory_order_acq_rel);
    if (won) {
      exception = std::move(e);
      exception_phase.store(2, std::memory_order_release);
    }
    cancelled.store(true, std::memory_order_release);
    return won;
  }

  /// The stored exception, or nullptr when none was (fully) captured.
  [[nodiscard]] std::exception_ptr stored() const noexcept {
    return exception_phase.load(std::memory_order_acquire) == 2 ? exception : nullptr;
  }
};

}  // namespace detail

namespace this_task {

/// True when the topology executing the current task is draining (a sibling
/// task threw, or ExecutionHandle::cancel was called).  Long-running tasks
/// poll this to cooperate with cancellation; outside a task it is false.
[[nodiscard]] bool is_cancelled() noexcept;

}  // namespace this_task

}  // namespace tf
