// error.hpp - the error model of the library: exception capture, cooperative
// cancellation, run deadlines, and cycle diagnostics (the robustness layer
// over paper §III).
//
// Every dispatched Topology owns one detail::ErrorState shared with the
// ExecutionHandle returned by Taskflow::dispatch()/run().  The first task
// that throws stores its std::exception_ptr there (first-writer-wins) and
// flips the topology into *draining* mode: remaining tasks skip their work
// but still run the finalize bookkeeping (join counters, subflow parents,
// live-task count), so the topology terminates cleanly and the stored
// exception is rethrown from the completion future.  ExecutionHandle::cancel
// uses the same drain path without an exception; a run deadline
// (Executor::run with a RunPolicy, or ExecutionHandle::cancel_after) uses it
// *with* one - a tf::TimeoutError captured through the same first-writer
// protocol, so a timeout and a task exception can race and exactly one wins.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>

namespace tf {

/// Thrown by Taskflow::dispatch()/run() when the dependency graph contains a
/// cycle (which could never complete), and delivered through the completion
/// future when a dynamically spawned subflow turns out to be cyclic.
class CycleError : public std::runtime_error {
 public:
  explicit CycleError(const std::string& what) : std::runtime_error(what) {}
};

/// Delivered through ExecutionHandle::get() when a run exceeded the deadline
/// of its RunPolicy: the topology flipped into the drain path at expiry and
/// completed with this error instead of its normal result.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by Executor::run/run_n/run_until/async/dispatch after
/// Executor::shutdown() began: a shutting-down executor finishes its
/// in-flight work but accepts no new submissions.
class ShutdownError : public std::runtime_error {
 public:
  explicit ShutdownError(const std::string& what) : std::runtime_error(what) {}
};

/// The admission-control rejection (DESIGN.md §11): thrown by Executor::run
/// when the executor is at capacity and the submission asked for
/// AdmissionPolicy::reject (or its backpressure wait exceeded
/// RunPolicy::admission_timeout), and delivered through the completion future
/// of a run the executor load-shed while it waited, not yet started, above
/// the shed watermark.  Distinct from ShutdownError: an overloaded executor
/// may accept again, a shut-down one never does.
class OverloadError : public std::runtime_error {
 public:
  explicit OverloadError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown (or returned as an empty try_run handle) when the submitting
/// taskflow's circuit breaker is open: its recent runs failed
/// `ExecutorOptions::breaker_threshold` times in a row and the cooldown has
/// not yet admitted a half-open probe.  An OverloadError subtype so callers
/// treating every fail-fast rejection alike need one catch clause.
class BreakerOpenError : public OverloadError {
 public:
  explicit BreakerOpenError(const std::string& what) : OverloadError(what) {}
};

/// Recursive module composition.  Thrown by FlowBuilder::composed_of when the
/// new module edge statically closes a reference cycle (the target taskflow
/// already composes - directly or through other modules - the graph being
/// built: expansion could never terminate), and delivered through the
/// completion future, naming the offending task, when execution-time module
/// expansion exceeds the runtime depth cap (a cycle assembled in a way the
/// build-time walk cannot see, e.g. through a dynamic subflow).
class CompositionError : public std::runtime_error {
 public:
  explicit CompositionError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Error/cancellation state of one dispatched topology, shared (via
/// std::shared_ptr) between the Topology and any ExecutionHandle so the
/// handle stays valid after the topology is released by wait_for_all().
struct ErrorState {
  /// Draining flag: set by cancel() and by the first captured exception.
  /// Workers read it once per task to decide the skip-but-finalize path.
  std::atomic<bool> cancelled{false};

  /// Deadline of the run in steady-clock nanoseconds since epoch (0 = none).
  /// Set once at submission when the run carries a RunPolicy timeout; read
  /// by tf::this_task::deadline() and by the watchdog's deadline sweep.
  std::atomic<std::int64_t> deadline_ns{0};

  /// Set (with the drain) when the deadline fired - distinguishes
  /// "[draining: deadline exceeded]" from a plain cancel in stall reports.
  std::atomic<bool> timed_out{false};

  /// Publication protocol for `exception`: 0 = empty, 1 = a winner is
  /// writing, 2 = stored.  A task always captures *before* it retires, and
  /// the final retire_one() synchronizes with every earlier one (acq_rel
  /// RMW chain), so state 2 is visible to whichever task fulfils the
  /// completion promise.
  std::atomic<int> exception_phase{0};
  std::exception_ptr exception;

  [[nodiscard]] bool draining() const noexcept {
    return cancelled.load(std::memory_order_acquire);
  }

  void cancel() noexcept { cancelled.store(true, std::memory_order_release); }

  /// First-writer-wins capture; every caller (winner or not) also flips the
  /// topology into draining mode.  Returns true for the winner.
  bool capture(std::exception_ptr e) noexcept {
    int expected = 0;
    const bool won =
        exception_phase.compare_exchange_strong(expected, 1, std::memory_order_acq_rel);
    if (won) {
      exception = std::move(e);
      exception_phase.store(2, std::memory_order_release);
    }
    cancelled.store(true, std::memory_order_release);
    return won;
  }

  /// The stored exception, or nullptr when none was (fully) captured.
  [[nodiscard]] std::exception_ptr stored() const noexcept {
    return exception_phase.load(std::memory_order_acquire) == 2 ? exception : nullptr;
  }

  /// Deadline-expiry drain: capture a tf::TimeoutError through the normal
  /// first-writer protocol (so a timeout racing a task exception resolves to
  /// exactly one stored error) and mark the state timed out.  Returns true
  /// when the timeout won the capture race.
  bool expire(const std::string& what) noexcept {
    const bool won = capture(std::make_exception_ptr(TimeoutError(what)));
    // Flag only the winner: when a task exception beat the timeout, get()
    // rethrows that exception and timed_out() must not claim otherwise.
    if (won) timed_out.store(true, std::memory_order_release);
    return won;
  }

  /// Re-initialize for reuse (recycled Executor::async run boxes).  Only
  /// valid when no other thread can touch the state - the pool recycles a
  /// box strictly after its single task retired and before the next
  /// submission publishes it.
  void reset() noexcept {
    cancelled.store(false, std::memory_order_relaxed);
    deadline_ns.store(0, std::memory_order_relaxed);
    timed_out.store(false, std::memory_order_relaxed);
    exception = nullptr;
    exception_phase.store(0, std::memory_order_release);
  }

  /// Steady-clock deadline accessors (0 sentinel = no deadline).
  void set_deadline(std::chrono::steady_clock::time_point t) noexcept {
    deadline_ns.store(t.time_since_epoch().count(), std::memory_order_release);
  }
  [[nodiscard]] std::optional<std::chrono::steady_clock::time_point> deadline()
      const noexcept {
    const auto ns = deadline_ns.load(std::memory_order_acquire);
    if (ns == 0) return std::nullopt;
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(ns));
  }
};

}  // namespace detail

namespace this_task {

/// True when the topology executing the current task is draining (a sibling
/// task threw, ExecutionHandle::cancel was called, or the run's deadline
/// expired).  Long-running tasks poll this to cooperate with cancellation;
/// outside a task it is false.
[[nodiscard]] bool is_cancelled() noexcept;

/// Remaining time budget of the run executing the current task: nullopt when
/// the run carries no deadline (or outside a task), otherwise the duration
/// until the deadline - negative once it has expired.  Long tasks poll this
/// to exit early (checkpoint, degrade, or abandon) instead of being caught
/// mid-flight by the drain.
[[nodiscard]] std::optional<std::chrono::nanoseconds> deadline() noexcept;

}  // namespace this_task

}  // namespace tf
