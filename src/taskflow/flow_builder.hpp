// flow_builder.hpp - tf::FlowBuilder and tf::SubflowBuilder.
//
// FlowBuilder is the set of graph building blocks shared by static tasking
// (tf::Taskflow) and dynamic tasking (tf::SubflowBuilder) - the paper's
// "unified interface" (§III-D): the same emplace/precede/linearize and the
// built-in algorithm patterns (parallel_for / reduce / transform, §III-F)
// work identically in both contexts.
#pragma once

#include <cassert>
#include <cstddef>
#include <future>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "taskflow/graph.hpp"
#include "taskflow/task.hpp"

namespace tf {

class SubflowBuilder;

namespace detail {

/// A callable taking a SubflowBuilder& is a *dynamic* task; a callable
/// taking no argument is a *static* task.  Checked in this order so that
/// generic lambdas (`[](auto& sf){...}`, paper Listing 7) bind dynamically.
template <typename C>
inline constexpr bool is_dynamic_work_v = std::is_invocable_r_v<void, C, SubflowBuilder&>;

template <typename C>
inline constexpr bool is_static_work_v = std::is_invocable_r_v<void, C>;

}  // namespace detail

class FlowBuilder {
 public:
  /// Builders are created internally by Taskflow and by the runtime when it
  /// expands a dynamic task; `default_parallelism` seeds the chunking of the
  /// algorithm patterns (normally the executor's worker count).
  explicit FlowBuilder(Graph& graph, std::size_t default_parallelism = 1)
      : _graph(&graph), _default_par(default_parallelism == 0 ? 1 : default_parallelism) {}

  /// Create one task from a callable; returns its handle.
  template <typename C>
    requires(detail::is_dynamic_work_v<C> || detail::is_static_work_v<C>)
  Task emplace(C&& callable) {
    Task t = placeholder();
    t.work(std::forward<C>(callable));
    return t;
  }

  /// Create multiple tasks at one time; returns a tuple of handles usable
  /// with structured bindings: `auto [A, B, C] = tf.emplace(a, b, c);`
  /// (paper Listing 2).
  template <typename... Cs>
    requires(sizeof...(Cs) > 1)
  auto emplace(Cs&&... callables) {
    return std::make_tuple(emplace(std::forward<Cs>(callables))...);
  }

  /// Create an empty task to be assigned work later via Task::work - used to
  /// pre-allocate storage when the callable target is not yet known
  /// (paper §III-A).
  Task placeholder() { return Task(_graph->emplace_back()); }

  /// Create a task from a value-returning callable; the result is delivered
  /// through the returned std::future once the task has run (the paper-era
  /// emplace/silent_emplace split: use plain emplace when the status is not
  /// needed).
  template <typename C>
    requires(std::is_invocable_v<C> && !detail::is_dynamic_work_v<C>)
  auto emplace_future(C&& callable)
      -> std::pair<Task, std::future<std::invoke_result_t<C>>> {
    using R = std::invoke_result_t<C>;
    auto state = std::make_shared<std::promise<R>>();
    auto future = state->get_future();
    Task task = emplace(
        [state = std::move(state), fn = std::forward<C>(callable)]() mutable {
          if constexpr (std::is_void_v<R>) {
            fn();
            state->set_value();
          } else {
            state->set_value(fn());
          }
        });
    return {task, std::move(future)};
  }

  /// Free-function-style dependency: `from` runs before `to`.
  void precede(Task from, Task to) { from.precede(to); }

  /// Adds dependencies forming a linear chain over `tasks` in order.
  void linearize(std::vector<Task>& tasks) { linearize_range(tasks.begin(), tasks.end()); }
  void linearize(std::initializer_list<Task> tasks) {
    linearize_range(tasks.begin(), tasks.end());
  }

  /// Number of nodes created in the underlying (present) graph.
  [[nodiscard]] std::size_t num_nodes() const noexcept { return _graph->size(); }

  // ---- algorithm collection (paper §III-F) -------------------------------
  //
  // Each pattern returns a (source, target) pair of synchronization tasks:
  // splice the pattern into a larger graph by preceding the source and
  // succeeding the target.
  //
  // Error semantics: if any chunk task throws, the topology drains (the
  // remaining chunks and the target combiner are skipped - so a reduce
  // whose workers failed never touches its partial results) and the first
  // exception is rethrown from the dispatch handle / wait_for_all().

  /// Apply `callable` to every element in [beg, end), `chunk` elements per
  /// task (0 = auto: ~4 chunks per worker).
  template <typename I, typename C>
  std::pair<Task, Task> parallel_for(I beg, I end, C callable, std::size_t chunk = 0) {
    auto [source, target] = sync_pair();
    const auto n = static_cast<std::size_t>(std::distance(beg, end));
    if (n == 0) {
      source.precede(target);
      return {source, target};
    }
    if (chunk == 0) chunk = auto_chunk(n);
    while (beg != end) {
      const auto len = std::min(chunk, static_cast<std::size_t>(std::distance(beg, end)));
      I chunk_end = beg;
      std::advance(chunk_end, static_cast<std::ptrdiff_t>(len));
      Task worker = emplace([beg, chunk_end, callable]() mutable {
        for (I it = beg; it != chunk_end; ++it) callable(*it);
      });
      source.precede(worker);
      worker.precede(target);
      beg = chunk_end;
    }
    return {source, target};
  }

  /// Index-based loop: applies `callable(i)` for i = beg; i < end; i += step
  /// (step > 0) or i > end; i += step (step < 0).
  template <typename I, typename C>
    requires std::is_integral_v<I>
  std::pair<Task, Task> parallel_for(I beg, I end, I step, C callable,
                                     std::size_t chunk = 0) {
    auto [source, target] = sync_pair();
    assert(step != 0);
    const auto total = iteration_count(beg, end, step);
    if (total == 0) {
      source.precede(target);
      return {source, target};
    }
    if (chunk == 0) chunk = auto_chunk(total);
    I cursor = beg;
    std::size_t remaining = total;
    while (remaining > 0) {
      const std::size_t len = std::min(chunk, remaining);
      const I chunk_beg = cursor;
      Task worker = emplace([chunk_beg, len, step, callable]() {
        I i = chunk_beg;
        for (std::size_t k = 0; k < len; ++k, i = static_cast<I>(i + step)) callable(i);
      });
      source.precede(worker);
      worker.precede(target);
      cursor = static_cast<I>(cursor + static_cast<I>(len) * step);
      remaining -= len;
    }
    return {source, target};
  }

  /// Parallel reduction of [beg, end) into `result` with binary op `bop`:
  /// result = bop(result, bop(...elements...)).  `result` must stay alive
  /// until the graph has run.
  template <typename I, typename T, typename B>
  std::pair<Task, Task> reduce(I beg, I end, T& result, B bop) {
    return transform_reduce(beg, end, result, bop,
                            [](const auto& v) -> const auto& { return v; });
  }

  /// Parallel transform-reduce: result = bop(result, bop over uop(elements)).
  template <typename I, typename T, typename B, typename U>
  std::pair<Task, Task> transform_reduce(I beg, I end, T& result, B bop, U uop) {
    auto [source, target] = sync_pair();
    const auto n = static_cast<std::size_t>(std::distance(beg, end));
    if (n == 0) {
      source.precede(target);
      return {source, target};
    }
    const std::size_t chunk = auto_chunk(n);
    auto partials = std::make_shared<std::vector<std::optional<T>>>(
        (n + chunk - 1) / chunk);

    std::size_t slot = 0;
    while (beg != end) {
      const auto len = std::min(chunk, static_cast<std::size_t>(std::distance(beg, end)));
      I chunk_end = beg;
      std::advance(chunk_end, static_cast<std::ptrdiff_t>(len));
      Task worker = emplace([beg, chunk_end, slot, partials, bop, uop]() mutable {
        I it = beg;
        T acc = uop(*it);
        for (++it; it != chunk_end; ++it) acc = bop(std::move(acc), uop(*it));
        (*partials)[slot] = std::move(acc);
      });
      source.precede(worker);
      worker.precede(target);
      beg = chunk_end;
      ++slot;
    }

    target.work([&result, partials, bop]() {
      for (auto& p : *partials) result = bop(std::move(result), std::move(*p));
    });
    return {source, target};
  }

  /// Parallel element-wise transform: out[i] = uop(in[i]).  The output range
  /// must not alias tasks' input chunks across chunk boundaries.
  template <typename I, typename O, typename U>
  std::pair<Task, Task> transform(I beg, I end, O out, U uop, std::size_t chunk = 0) {
    auto [source, target] = sync_pair();
    const auto n = static_cast<std::size_t>(std::distance(beg, end));
    if (n == 0) {
      source.precede(target);
      return {source, target};
    }
    if (chunk == 0) chunk = auto_chunk(n);
    while (beg != end) {
      const auto len = std::min(chunk, static_cast<std::size_t>(std::distance(beg, end)));
      I chunk_end = beg;
      std::advance(chunk_end, static_cast<std::ptrdiff_t>(len));
      Task worker = emplace([beg, chunk_end, out, uop]() mutable {
        O o = out;
        for (I it = beg; it != chunk_end; ++it, ++o) *o = uop(*it);
      });
      source.precede(worker);
      worker.precede(target);
      std::advance(out, static_cast<std::ptrdiff_t>(len));
      beg = chunk_end;
    }
    return {source, target};
  }

 protected:
  /// Create the (source, target) synchronization pair of an algorithm
  /// pattern.
  std::pair<Task, Task> sync_pair() {
    Task source = placeholder();
    Task target = placeholder();
    // Both default to no-op work so they run even when never re-assigned.
    source.work([]() {});
    target.work([]() {});
    return {source, target};
  }

  [[nodiscard]] std::size_t auto_chunk(std::size_t n) const noexcept {
    const std::size_t groups = _default_par * 4;
    return std::max<std::size_t>(1, (n + groups - 1) / groups);
  }

  template <typename It>
  void linearize_range(It first, It last) {
    if (first == last) return;
    It next = first;
    for (++next; next != last; ++first, ++next) {
      const_cast<Task&>(*first).precede(const_cast<Task&>(*next));
    }
  }

  template <typename I>
  static std::size_t iteration_count(I beg, I end, I step) noexcept {
    if (step > 0) {
      if (beg >= end) return 0;
      return (static_cast<std::size_t>(end - beg) + static_cast<std::size_t>(step) - 1) /
             static_cast<std::size_t>(step);
    }
    if (beg <= end) return 0;
    const auto mag = static_cast<std::size_t>(-static_cast<std::ptrdiff_t>(step));
    return (static_cast<std::size_t>(beg - end) + mag - 1) / mag;
  }

  Graph* _graph;
  std::size_t _default_par;
};

/// The builder handed to a dynamic task at runtime (paper §III-D).  It
/// inherits every building block of static tasking and adds the join/detach
/// choice: a joined subflow (default) must finish before its parent task's
/// successors run; a detached one only joins the end of the topology.
class SubflowBuilder : public FlowBuilder {
 public:
  SubflowBuilder(Graph& graph, std::size_t default_parallelism)
      : FlowBuilder(graph, default_parallelism) {}

  /// Detach this subflow from its parent task.
  void detach() noexcept { _detached = true; }

  /// Re-join this subflow to its parent task (the default).
  void join() noexcept { _detached = false; }

  [[nodiscard]] bool detached() const noexcept { return _detached; }
  [[nodiscard]] bool joined() const noexcept { return !_detached; }

 private:
  bool _detached{false};
};

// Task::fallback is defined here because it shares the static-work traits
// with Task::work below.  A fallback is always static work - it runs on the
// plain run_task failure path, which has no SubflowBuilder to offer.
template <typename C>
Task& Task::fallback(C&& callable) {
  static_assert(detail::is_static_work_v<C> && !detail::is_dynamic_work_v<C>,
                "a fallback must be invocable with () - dynamic (subflow) "
                "fallbacks are not supported");
  _node->policy().fallback = StaticWork(std::forward<C>(callable));
  return *this;
}

// Task::work is defined here because the static/dynamic dispatch needs
// SubflowBuilder to be complete.
template <typename C>
Task& Task::work(C&& callable) {
  // emplace<> constructs the wrapper in place inside the node's variant; a
  // temporary + move would pay an extra relocation per task on the graph
  // construction hot path.
  if constexpr (detail::is_dynamic_work_v<C>) {
    _node->_work.emplace<DynamicWork>(std::forward<C>(callable));
  } else {
    static_assert(detail::is_static_work_v<C>,
                  "a task callable must be invocable with () or (SubflowBuilder&)");
    _node->_work.emplace<StaticWork>(std::forward<C>(callable));
  }
  return *this;
}

}  // namespace tf
