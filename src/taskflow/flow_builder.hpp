// flow_builder.hpp - tf::FlowBuilder and tf::SubflowBuilder.
//
// FlowBuilder is the set of graph building blocks shared by static tasking
// (tf::Taskflow) and dynamic tasking (tf::SubflowBuilder) - the paper's
// "unified interface" (§III-D): the same emplace/precede/linearize and the
// built-in algorithm patterns (parallel_for / reduce / transform, §III-F)
// work identically in both contexts.
//
// The algorithm patterns are partitioner-driven (DESIGN.md §9): each pattern
// emplaces O(default_parallelism) *range worker* nodes - never one node per
// chunk - that pull [beg, end) index ranges from a shared atomic cursor
// through a pluggable tf::*Partitioner (GuidedPartitioner by default) until
// the iteration space drains.  Construction cost and node count are thereby
// independent of the element count, and the schedule adapts to skewed
// per-element cost at run time instead of being frozen at build time.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <future>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "taskflow/error.hpp"
#include "taskflow/graph.hpp"
#include "taskflow/partitioner.hpp"
#include "taskflow/task.hpp"

namespace tf {

class SubflowBuilder;
class Taskflow;

namespace detail {

/// A callable taking a SubflowBuilder& is a *dynamic* task; a callable
/// taking no argument is a *static* task.  Checked in this order so that
/// generic lambdas (`[](auto& sf){...}`, paper Listing 7) bind dynamically.
template <typename C>
inline constexpr bool is_dynamic_work_v = std::is_invocable_r_v<void, C, SubflowBuilder&>;

template <typename C>
inline constexpr bool is_static_work_v = std::is_invocable_r_v<void, C>;

/// A no-argument callable returning exactly `int` is a *condition* task
/// (second Taskflow paper §III-C): the returned value selects which successor
/// to fire.  Checked after the dynamic test and before the static one -
/// is_static_work_v accepts int-returning callables too (the result would be
/// discarded), so the ordering is what gives `int()` its control-flow
/// meaning.
template <typename C, typename = void>
struct condition_work_trait : std::false_type {};
template <typename C>
struct condition_work_trait<C, std::void_t<std::invoke_result_t<C>>>
    : std::is_same<std::decay_t<std::invoke_result_t<C>>, int> {};
template <typename C>
inline constexpr bool is_condition_work_v = condition_work_trait<C>::value;

/// Maps element indices of a range [first, first + n) back to iterators so
/// the range workers can operate in index space regardless of iterator
/// category.  Random-access iterators resolve in O(1); weaker categories
/// anchor an iterator every `stride` elements at construction (one O(n)
/// walk, which the legacy per-chunk advance loops paid as well), so
/// resolving an arbitrary index costs at most stride - 1 increments.
template <typename I>
class IndexedRange {
  static constexpr bool kRandom = std::is_base_of_v<
      std::random_access_iterator_tag,
      typename std::iterator_traits<I>::iterator_category>;

 public:
  IndexedRange(I first, std::size_t n, std::size_t workers) : _first(std::move(first)) {
    if constexpr (!kRandom) {
      _stride = std::clamp<std::size_t>(n / (std::max<std::size_t>(workers, 1) * 16),
                                        1, 4096);
      _anchors.reserve(n / _stride + 1);
      I it = _first;
      std::size_t i = 0;
      while (i < n) {
        _anchors.push_back(it);
        const std::size_t step = std::min(_stride, n - i);
        std::advance(it, static_cast<std::ptrdiff_t>(step));
        i += step;
      }
    } else {
      (void)n;
      (void)workers;
    }
  }

  [[nodiscard]] I at(std::size_t i) const {
    if constexpr (kRandom) {
      using D = typename std::iterator_traits<I>::difference_type;
      return _first + static_cast<D>(i);
    } else {
      I it = _anchors[i / _stride];
      std::advance(it, static_cast<std::ptrdiff_t>(i % _stride));
      return it;
    }
  }

 private:
  I _first;
  std::vector<I> _anchors;  // non-random-access categories only
  std::size_t _stride{1};
};

/// Shared state of one range-parallel pattern, heap-allocated once and kept
/// alive by the worker closures' shared_ptr captures: the cursor (its own
/// cache line), the partitioner, and the pattern-specific payload
/// (iterators, user callables, partial results).
template <typename P, typename Payload>
struct RangeControl {
  RangeCursor cursor;
  P part;
  Payload payload;

  RangeControl(std::size_t total, std::size_t workers, P p, Payload pl)
      : cursor(total, workers), part(std::move(p)), payload(std::move(pl)) {}
};

/// The range-worker main loop shared by every pattern: grab the next range
/// from the cursor, process it, repeat until the space drains.  Cooperative
/// cancellation is checked once per grabbed range, so a cancelled (or
/// draining-after-error) topology stops its range workers between ranges
/// instead of spinning through millions of remaining elements.
template <typename P, typename F>
void drain_cursor(RangeCursor& cursor, const P& part, F&& body) {
  IndexRange r;
  while (part.grab(cursor, r)) {
    if (this_task::is_cancelled()) return;
    body(r);
  }
}

}  // namespace detail

class FlowBuilder {
 public:
  /// Builders are created internally by Taskflow and by the runtime when it
  /// expands a dynamic task; `default_parallelism` caps the number of range
  /// worker nodes of the algorithm patterns (normally the executor's worker
  /// count - exact for subflows and executor-constructed taskflows, the
  /// hardware concurrency otherwise; see default_parallelism()).
  explicit FlowBuilder(Graph& graph, std::size_t default_parallelism = 1)
      : _graph(&graph), _default_par(default_parallelism == 0 ? 1 : default_parallelism) {}

  /// Parallelism the algorithm patterns assume: the number of range worker
  /// nodes they emplace and the W in the partitioners' chunk formulas.  Set
  /// from the owning executor's worker count when it is known at build time
  /// (Taskflow(num_workers), Taskflow(executor), and every SubflowBuilder);
  /// a plain Taskflow() defaults to the hardware concurrency.  Adjust it
  /// before building patterns when the graph will run on an executor of a
  /// different width: `taskflow.default_parallelism(executor.num_workers())`.
  [[nodiscard]] std::size_t default_parallelism() const noexcept { return _default_par; }
  void default_parallelism(std::size_t parallelism) noexcept {
    _default_par = parallelism == 0 ? 1 : parallelism;
  }

  /// Create one task from a callable; returns its handle.
  template <typename C>
    requires(detail::is_dynamic_work_v<C> || detail::is_static_work_v<C>)
  Task emplace(C&& callable) {
    Task t = placeholder();
    t.work(std::forward<C>(callable));
    return t;
  }

  /// Create multiple tasks at one time; returns a tuple of handles usable
  /// with structured bindings: `auto [A, B, C] = tf.emplace(a, b, c);`
  /// (paper Listing 2).
  template <typename... Cs>
    requires(sizeof...(Cs) > 1)
  auto emplace(Cs&&... callables) {
    return std::make_tuple(emplace(std::forward<Cs>(callables))...);
  }

  /// Create an empty task to be assigned work later via Task::work - used to
  /// pre-allocate storage when the callable target is not yet known
  /// (paper §III-A).
  Task placeholder() { return Task(_graph->emplace_back()); }

  /// Compose another Taskflow into this graph as one *module* task (second
  /// Taskflow paper §III-D): the module node holds a non-owning reference to
  /// `target`'s graph and, when it runs, instantiates a private copy of that
  /// graph and executes it as a joined subflow - so the same Taskflow can be
  /// composed into several parents that run concurrently.  `target` must
  /// outlive every run of this graph and every task it stores must be
  /// copy-constructible.  Defined in taskflow.hpp (needs Taskflow complete).
  Task composed_of(Taskflow& target);

  /// Pre-size the graph arena for `nodes` emplaces and `edges` precede
  /// calls (Graph::reserve): the fast path for graphs of known shape -
  /// construction after this performs no heap allocation.
  void reserve(std::size_t nodes, std::size_t edges = 0) {
    _graph->reserve(nodes, edges);
  }

  /// Create a task from a value-returning callable; the result is delivered
  /// through the returned std::future once the task has run (the paper-era
  /// emplace/silent_emplace split: use plain emplace when the status is not
  /// needed).
  template <typename C>
    requires(std::is_invocable_v<C> && !detail::is_dynamic_work_v<C>)
  auto emplace_future(C&& callable)
      -> std::pair<Task, std::future<std::invoke_result_t<C>>> {
    using R = std::invoke_result_t<C>;
    auto state = std::make_shared<std::promise<R>>();
    auto future = state->get_future();
    Task task = emplace(
        [state = std::move(state), fn = std::forward<C>(callable)]() mutable {
          if constexpr (std::is_void_v<R>) {
            fn();
            state->set_value();
          } else {
            state->set_value(fn());
          }
        });
    return {task, std::move(future)};
  }

  /// Free-function-style dependency: `from` runs before `to`.
  void precede(Task from, Task to) { from.precede(to); }

  /// Adds dependencies forming a linear chain over `tasks` in order.
  void linearize(std::vector<Task>& tasks) { linearize_range(tasks.begin(), tasks.end()); }
  void linearize(std::initializer_list<Task> tasks) {
    linearize_range(tasks.begin(), tasks.end());
  }

  /// Number of nodes created in the underlying (present) graph.
  [[nodiscard]] std::size_t num_nodes() const noexcept { return _graph->size(); }

  /// Handle over the index-th created node (creation order, 0-based).
  /// Escape hatch for tooling and tests that must reach tasks a builder API
  /// created internally - e.g. attaching retry/fallback policies to the
  /// range workers of an algorithm pattern, which are emplaced right after
  /// its (source, target) pair.
  [[nodiscard]] Task task_at(std::size_t index) { return Task(_graph->node_at(index)); }

  // ---- algorithm collection (paper §III-F; DESIGN.md §9) -----------------
  //
  // Each pattern returns a (source, target) pair of synchronization tasks:
  // splice the pattern into a larger graph by preceding the source and
  // succeeding the target.  Between the pair sit at most
  // default_parallelism() range worker nodes pulling index ranges from a
  // shared cursor through the given partitioner (GuidedPartitioner when
  // omitted); the legacy `chunk` overloads map to StaticPartitioner{chunk}.
  //
  // Error semantics: if a range worker throws, the topology drains (pending
  // workers and the target combiner are skipped - so a reduce whose workers
  // failed never touches its partial results), sibling workers stop at the
  // next range boundary, and the first exception is rethrown from the
  // dispatch handle / wait_for_all().  Cancellation stops workers between
  // grabbed ranges the same way.  A retry policy attached to a range worker
  // re-enters its grab loop: the cursor is not rewound, so the range that
  // failed mid-flight is abandoned (its elements may have been partially
  // processed) and the retried worker continues with whatever the cursor
  // still holds.

  /// Apply `callable` to every element in [beg, end), pulling ranges through
  /// `part` (default: guided).
  template <typename I, typename C, typename P = DefaultPartitioner>
    requires(detail::is_partitioner_v<P>)
  std::pair<Task, Task> parallel_for(I beg, I end, C callable, P part = P{}) {
    auto [source, target] = sync_pair();
    const auto n = static_cast<std::size_t>(std::distance(beg, end));
    if (n == 0) {
      source.precede(target);
      return {source, target};
    }
    const std::size_t w = range_worker_count(n, part);
    struct Payload {
      detail::IndexedRange<I> range;
      C callable;
    };
    auto ctrl = std::make_shared<detail::RangeControl<P, Payload>>(
        n, w, std::move(part),
        Payload{detail::IndexedRange<I>(std::move(beg), n, w), std::move(callable)});
    source.work([ctrl] { ctrl->cursor.reset(); });
    spawn_range_workers(source, target, w, [&](std::size_t) {
      return [ctrl] {
        detail::drain_cursor(ctrl->cursor, ctrl->part, [&](detail::IndexRange r) {
          I it = ctrl->payload.range.at(r.begin);
          for (std::size_t i = r.begin; i < r.end; ++i, ++it) {
            ctrl->payload.callable(*it);
          }
        });
      };
    });
    return {source, target};
  }

  /// Legacy chunked overload: `chunk` elements per grabbed range
  /// (0 = even split), i.e. StaticPartitioner{chunk}.
  template <typename I, typename C>
  std::pair<Task, Task> parallel_for(I beg, I end, C callable, std::size_t chunk) {
    return parallel_for(std::move(beg), std::move(end), std::move(callable),
                        StaticPartitioner{chunk});
  }

  /// Index-based loop: applies `callable(i)` for i = beg; i < end; i += step
  /// (step > 0) or i > end; i += step (step < 0).  Throws
  /// std::invalid_argument on step == 0 before any node is created; a
  /// direction mismatch (e.g. beg > end with a positive step) is an empty -
  /// valid - range.
  template <typename I, typename C, typename P = DefaultPartitioner>
    requires(std::is_integral_v<I> && detail::is_partitioner_v<P>)
  std::pair<Task, Task> parallel_for(I beg, I end, I step, C callable, P part = P{}) {
    const std::size_t total = iteration_count(beg, end, step);  // may throw
    auto [source, target] = sync_pair();
    if (total == 0) {
      source.precede(target);
      return {source, target};
    }
    const std::size_t w = range_worker_count(total, part);
    struct Payload {
      I beg;
      I step;
      C callable;
    };
    auto ctrl = std::make_shared<detail::RangeControl<P, Payload>>(
        total, w, std::move(part), Payload{beg, step, std::move(callable)});
    source.work([ctrl] { ctrl->cursor.reset(); });
    spawn_range_workers(source, target, w, [&](std::size_t) {
      return [ctrl] {
        detail::drain_cursor(ctrl->cursor, ctrl->part, [&](detail::IndexRange r) {
          // Modular unsigned arithmetic: every produced value is in
          // [beg, end) and thus representable, but intermediates like
          // r.begin * step may not be - computing them in U keeps the
          // arithmetic exact without signed overflow.
          using U = std::make_unsigned_t<I>;
          const U ustep = static_cast<U>(ctrl->payload.step);
          U v = static_cast<U>(ctrl->payload.beg) + static_cast<U>(r.begin) * ustep;
          for (std::size_t k = r.begin; k < r.end; ++k, v += ustep) {
            ctrl->payload.callable(static_cast<I>(v));
          }
        });
      };
    });
    return {source, target};
  }

  /// Legacy chunked overload of the stepped loop (StaticPartitioner{chunk}).
  template <typename I, typename C>
    requires std::is_integral_v<I>
  std::pair<Task, Task> parallel_for(I beg, I end, I step, C callable,
                                     std::size_t chunk) {
    return parallel_for(beg, end, step, std::move(callable), StaticPartitioner{chunk});
  }

  /// Parallel reduction of [beg, end) into `result` with binary op `bop`:
  /// result = bop(result, bop(...elements...)).  `result` must stay alive
  /// until the graph has run.  `bop` must be associative and commutative:
  /// each range worker folds the ranges it grabbed into a thread-local
  /// partial, and the target task combines the partials in worker order.
  template <typename I, typename T, typename B, typename P = DefaultPartitioner>
    requires(detail::is_partitioner_v<P>)
  std::pair<Task, Task> reduce(I beg, I end, T& result, B bop, P part = P{}) {
    return transform_reduce(std::move(beg), std::move(end), result, std::move(bop),
                            [](const auto& v) -> const auto& { return v; },
                            std::move(part));
  }

  /// Parallel transform-reduce: result = bop(result, bop over uop(elements)).
  /// Same associativity/commutativity contract as reduce().
  template <typename I, typename T, typename B, typename U,
            typename P = DefaultPartitioner>
    requires(detail::is_partitioner_v<P>)
  std::pair<Task, Task> transform_reduce(I beg, I end, T& result, B bop, U uop,
                                         P part = P{}) {
    auto [source, target] = sync_pair();
    const auto n = static_cast<std::size_t>(std::distance(beg, end));
    if (n == 0) {
      source.precede(target);
      return {source, target};
    }
    const std::size_t w = range_worker_count(n, part);
    struct Payload {
      detail::IndexedRange<I> range;
      B bop;
      U uop;
      // One slot per worker; disengaged when the worker grabbed no range
      // (or threw before finishing its first one).
      std::vector<std::optional<T>> partials;
    };
    auto ctrl = std::make_shared<detail::RangeControl<P, Payload>>(
        n, w, std::move(part),
        Payload{detail::IndexedRange<I>(std::move(beg), n, w), std::move(bop),
                std::move(uop), std::vector<std::optional<T>>(w)});
    source.work([ctrl] {
      for (auto& p : ctrl->payload.partials) p.reset();  // run_n reuse
      ctrl->cursor.reset();
    });
    spawn_range_workers(source, target, w, [&](std::size_t slot) {
      return [ctrl, slot] {
        std::optional<T> acc;
        detail::drain_cursor(ctrl->cursor, ctrl->part, [&](detail::IndexRange r) {
          I it = ctrl->payload.range.at(r.begin);
          std::size_t i = r.begin;
          if (!acc.has_value()) {
            acc.emplace(ctrl->payload.uop(*it));
            ++it;
            ++i;
          }
          for (; i < r.end; ++i, ++it) {
            acc = ctrl->payload.bop(std::move(*acc), ctrl->payload.uop(*it));
          }
        });
        if (acc.has_value()) ctrl->payload.partials[slot] = std::move(*acc);
      };
    });
    target.work([ctrl, &result] {
      for (auto& p : ctrl->payload.partials) {
        if (p.has_value()) result = ctrl->payload.bop(std::move(result), std::move(*p));
      }
    });
    return {source, target};
  }

  /// Parallel element-wise transform: out[i] = uop(in[i]).  The output range
  /// must not alias the input across range boundaries.
  template <typename I, typename O, typename U, typename P = DefaultPartitioner>
    requires(detail::is_partitioner_v<P>)
  std::pair<Task, Task> transform(I beg, I end, O out, U uop, P part = P{}) {
    auto [source, target] = sync_pair();
    const auto n = static_cast<std::size_t>(std::distance(beg, end));
    if (n == 0) {
      source.precede(target);
      return {source, target};
    }
    const std::size_t w = range_worker_count(n, part);
    struct Payload {
      detail::IndexedRange<I> in;
      detail::IndexedRange<O> out;
      U uop;
    };
    auto ctrl = std::make_shared<detail::RangeControl<P, Payload>>(
        n, w, std::move(part),
        Payload{detail::IndexedRange<I>(std::move(beg), n, w),
                detail::IndexedRange<O>(std::move(out), n, w), std::move(uop)});
    source.work([ctrl] { ctrl->cursor.reset(); });
    spawn_range_workers(source, target, w, [&](std::size_t) {
      return [ctrl] {
        detail::drain_cursor(ctrl->cursor, ctrl->part, [&](detail::IndexRange r) {
          I it = ctrl->payload.in.at(r.begin);
          O o = ctrl->payload.out.at(r.begin);
          for (std::size_t i = r.begin; i < r.end; ++i, ++it, ++o) {
            *o = ctrl->payload.uop(*it);
          }
        });
      };
    });
    return {source, target};
  }

  /// Legacy chunked overload (StaticPartitioner{chunk}).
  template <typename I, typename O, typename U>
  std::pair<Task, Task> transform(I beg, I end, O out, U uop, std::size_t chunk) {
    return transform(std::move(beg), std::move(end), std::move(out), std::move(uop),
                     StaticPartitioner{chunk});
  }

 protected:
  /// Create the (source, target) synchronization pair of an algorithm
  /// pattern.
  std::pair<Task, Task> sync_pair() {
    Task source = placeholder();
    Task target = placeholder();
    // Both default to no-op work so they run even when never re-assigned.
    source.work([]() {});
    target.work([]() {});
    return {source, target};
  }

  /// Range worker nodes a pattern emplaces: the builder's parallelism, but
  /// never more than the domain (or the partitioner's range count) can keep
  /// busy.  Always >= 1.
  template <typename P>
  [[nodiscard]] std::size_t range_worker_count(std::size_t total, const P& part) const {
    const std::size_t hint = part.ranges_hint(total, _default_par);
    return std::max<std::size_t>(1, std::min({_default_par, total, hint}));
  }

  /// Emplace `workers` range-worker nodes between `source` and `target`;
  /// `make_body(slot)` builds each worker's closure.  The closures must stay
  /// within the node's inline capture buffer: the whole point of O(W)
  /// algorithm nodes is an allocation-free construction path, and the Node
  /// itself is static_asserted to 128 bytes (graph.hpp) - a closure that
  /// spilled to the heap would silently pay one allocation per worker.
  template <typename MakeBody>
  void spawn_range_workers(Task source, Task target, std::size_t workers,
                           MakeBody&& make_body) {
    for (std::size_t slot = 0; slot < workers; ++slot) {
      auto body = make_body(slot);
      static_assert(StaticWork::stores_inline<decltype(body)>,
                    "range-worker closure must fit the Node's inline capture "
                    "buffer (kWorkCapacity) - capture one shared_ptr to the "
                    "pattern's control block, nothing more");
      Task worker = emplace(std::move(body));
      source.precede(worker);
      worker.precede(target);
    }
  }

  template <typename It>
  void linearize_range(It first, It last) {
    if (first == last) return;
    It next = first;
    for (++next; next != last; ++first, ++next) {
      const_cast<Task&>(*first).precede(const_cast<Task&>(*next));
    }
  }

  /// Trip count of `for (i = beg; step > 0 ? i < end : i > end; i += step)`,
  /// exact for any I including spans that overflow it (e.g. [INT_MIN,
  /// INT_MAX)): the span is computed in the matching unsigned type, where
  /// wraparound arithmetic yields the true distance.  Throws
  /// std::invalid_argument on step == 0 - a silent infinite loop wired into
  /// a graph is strictly worse than an eager error.
  template <typename I>
  [[nodiscard]] static std::size_t iteration_count(I beg, I end, I step) {
    if (step == I{0}) {
      throw std::invalid_argument("parallel_for: step must be non-zero");
    }
    using U = std::make_unsigned_t<I>;
    if (step > I{0}) {
      if (!(beg < end)) return 0;
      const U span = static_cast<U>(end) - static_cast<U>(beg);
      const U s = static_cast<U>(step);
      return static_cast<std::size_t>(span / s) + ((span % s) != 0 ? 1 : 0);
    }
    if (!(end < beg)) return 0;
    const U span = static_cast<U>(beg) - static_cast<U>(end);
    const U s = U{0} - static_cast<U>(step);  // |step|, safe even for I_MIN
    return static_cast<std::size_t>(span / s) + ((span % s) != 0 ? 1 : 0);
  }

  Graph* _graph;
  std::size_t _default_par;
};

/// The builder handed to a dynamic task at runtime (paper §III-D).  It
/// inherits every building block of static tasking and adds the join/detach
/// choice: a joined subflow (default) must finish before its parent task's
/// successors run; a detached one only joins the end of the topology.
class SubflowBuilder : public FlowBuilder {
 public:
  SubflowBuilder(Graph& graph, std::size_t default_parallelism)
      : FlowBuilder(graph, default_parallelism) {}

  /// Detach this subflow from its parent task.
  void detach() noexcept { _detached = true; }

  /// Re-join this subflow to its parent task (the default).
  void join() noexcept { _detached = false; }

  [[nodiscard]] bool detached() const noexcept { return _detached; }
  [[nodiscard]] bool joined() const noexcept { return !_detached; }

 private:
  bool _detached{false};
};

// Task::fallback is defined here because it shares the static-work traits
// with Task::work below.  A fallback is always static work - it runs on the
// plain run_task failure path, which has no SubflowBuilder to offer.
template <typename C>
Task& Task::fallback(C&& callable) {
  static_assert(detail::is_static_work_v<C> && !detail::is_dynamic_work_v<C>,
                "a fallback must be invocable with () - dynamic (subflow) "
                "fallbacks are not supported");
  _node->policy().fallback = StaticWork(std::forward<C>(callable));
  return *this;
}

// Task::work is defined here because the static/dynamic dispatch needs
// SubflowBuilder to be complete.
template <typename C>
Task& Task::work(C&& callable) {
  const bool was_condition = _node->is_condition();
  // emplace<> constructs the wrapper in place inside the node's variant; a
  // temporary + move would pay an extra relocation per task on the graph
  // construction hot path.
  if constexpr (detail::is_dynamic_work_v<C>) {
    _node->_work.emplace<DynamicWork>(std::forward<C>(callable));
  } else if constexpr (detail::is_condition_work_v<C>) {
    _node->_work.emplace<ConditionWork>(std::forward<C>(callable));
  } else {
    static_assert(detail::is_static_work_v<C>,
                  "a task callable must be invocable with () or (SubflowBuilder&)");
    _node->_work.emplace<StaticWork>(std::forward<C>(callable));
  }
  // The placeholder pattern assigns work after edges exist: when the node's
  // kind flips to or from condition, its out-edges change strength, so the
  // successors' weak-dependent counts must follow.
  if (const bool now_condition = _node->is_condition();
      now_condition != was_condition) {
    Node* const* succ = _node->successor_data();
    for (std::uint32_t i = 0; i < _node->_num_successors; ++i) {
      if (now_condition) {
        ++succ[i]->_weak_dependents;
      } else {
        --succ[i]->_weak_dependents;
      }
    }
  }
  return *this;
}

}  // namespace tf
