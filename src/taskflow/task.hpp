// task.hpp - tf::Task, the lightweight user-facing handle over a graph node
// (paper §III-A).  A Task wraps a Node* and exposes attribute modification
// and dependency construction; it never owns the node.  A default-constructed
// Task is *empty* and can be used as a placeholder variable until assigned.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "taskflow/graph.hpp"

namespace tf {

class FlowBuilder;
class SubflowBuilder;

class Task {
 public:
  /// Construct an empty (null) handle.
  Task() = default;

  Task(const Task&) = default;
  Task& operator=(const Task&) = default;

  /// True when this handle is not associated with any node.
  [[nodiscard]] bool empty() const noexcept { return _node == nullptr; }

  /// Name accessors.  Naming tasks improves dump() output and profiling.
  Task& name(std::string n) {
    _node->set_name(std::move(n));
    return *this;
  }
  [[nodiscard]] const std::string& name() const noexcept { return _node->name(); }

  [[nodiscard]] std::size_t num_successors() const noexcept {
    return _node->num_successors();
  }
  [[nodiscard]] std::size_t num_dependents() const noexcept {
    return _node->num_dependents();
  }

  /// True when the node carries no callable yet.
  [[nodiscard]] bool is_placeholder() const noexcept { return _node->is_placeholder(); }

  /// True when this task is a condition task (int()-returning callable whose
  /// result selects the successor to fire).
  [[nodiscard]] bool is_condition() const noexcept { return _node->is_condition(); }

  /// True when this task is a module task (composed_of another Taskflow).
  [[nodiscard]] bool is_module() const noexcept { return _node->is_module(); }

  /// For condition tasks: the branch index returned by the most recent
  /// execution, or -1 before the first run / when no branch was taken.
  /// Always -1 for non-condition tasks.
  [[nodiscard]] int last_branch() const noexcept { return _node->last_branch(); }

  /// Adds dependency links: *this runs before every task in `others...`
  /// (variadic, paper Listing 3: `a1.precede(a2, b2)`).
  template <typename... Ts>
  Task& precede(Ts&&... others) {
    static_assert(sizeof...(Ts) >= 1, "precede requires at least one task");
    (_node->precede(*std::forward<Ts>(others)._node), ...);
    return *this;
  }

  /// Adds dependency links: *this runs after every task in `others...`.
  template <typename... Ts>
  Task& succeed(Ts&&... others) {
    static_assert(sizeof...(Ts) >= 1, "succeed requires at least one task");
    (std::forward<Ts>(others)._node->precede(*_node), ...);
    return *this;
  }

  /// v1-style container forms: *this precedes / succeeds every task in the
  /// vector.
  Task& broadcast(const std::vector<Task>& others) {
    for (const Task& t : others) _node->precede(*t._node);
    return *this;
  }
  Task& gather(const std::vector<Task>& others) {
    for (const Task& t : others) t._node->precede(*_node);
    return *this;
  }

  /// Replace the callable stored in the node.  The same static/dynamic
  /// dispatch rules as FlowBuilder::emplace apply.
  template <typename C>
  Task& work(C&& callable);

  // ---- resilience policies (DESIGN.md §8) --------------------------------

  /// Allow up to `n` retries after a failed first attempt (n + 1 total
  /// attempts), re-enqueued immediately with no backoff.  Only after every
  /// attempt failed does the error drain the topology (or the fallback run).
  Task& retry(int n) {
    RetryPolicy p;
    p.max_attempts = (n < 0 ? 0 : n) + 1;
    p.backoff = std::chrono::nanoseconds{0};
    return retry(std::move(p));
  }

  /// Attach a full retry policy: attempt budget, exponential backoff with
  /// jitter (the node re-enqueues through the executor's timer wheel - no
  /// worker blocks during the delay), and an optional failure filter.
  Task& retry(RetryPolicy p) {
    if (p.max_attempts < 1) p.max_attempts = 1;
    if (p.multiplier < 1.0) p.multiplier = 1.0;
    if (p.jitter < 0.0) p.jitter = 0.0;
    if (p.jitter > 1.0) p.jitter = 1.0;
    if (p.max_backoff < p.backoff) p.max_backoff = p.backoff;
    _node->policy().retry = std::move(p);
    return *this;
  }

  /// Attach a degradation handler, run on the worker when the task's retry
  /// budget is exhausted (or on the first failure without a retry policy).
  /// If it returns normally the topology proceeds as if the task succeeded;
  /// if it throws, its exception drains the topology instead of the
  /// original.  Defined in flow_builder.hpp (needs the static-work traits).
  template <typename C>
  Task& fallback(C&& callable);

  /// True when a retry policy or fallback is attached.
  [[nodiscard]] bool has_policy() const noexcept { return _node->has_policy(); }

  [[nodiscard]] bool operator==(const Task& rhs) const noexcept {
    return _node == rhs._node;
  }

 private:
  friend class FlowBuilder;
  friend class SubflowBuilder;
  friend class Taskflow;

  explicit Task(Node& node) noexcept : _node(&node) {}

  Node* _node{nullptr};
};

}  // namespace tf
