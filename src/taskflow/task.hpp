// task.hpp - tf::Task, the lightweight user-facing handle over a graph node
// (paper §III-A).  A Task wraps a Node* and exposes attribute modification
// and dependency construction; it never owns the node.  A default-constructed
// Task is *empty* and can be used as a placeholder variable until assigned.
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "taskflow/graph.hpp"

namespace tf {

class FlowBuilder;
class SubflowBuilder;

class Task {
 public:
  /// Construct an empty (null) handle.
  Task() = default;

  Task(const Task&) = default;
  Task& operator=(const Task&) = default;

  /// True when this handle is not associated with any node.
  [[nodiscard]] bool empty() const noexcept { return _node == nullptr; }

  /// Name accessors.  Naming tasks improves dump() output and profiling.
  Task& name(std::string n) {
    _node->set_name(std::move(n));
    return *this;
  }
  [[nodiscard]] const std::string& name() const noexcept { return _node->name(); }

  [[nodiscard]] std::size_t num_successors() const noexcept {
    return _node->num_successors();
  }
  [[nodiscard]] std::size_t num_dependents() const noexcept {
    return _node->num_dependents();
  }

  /// True when the node carries no callable yet.
  [[nodiscard]] bool is_placeholder() const noexcept { return _node->is_placeholder(); }

  /// Adds dependency links: *this runs before every task in `others...`
  /// (variadic, paper Listing 3: `a1.precede(a2, b2)`).
  template <typename... Ts>
  Task& precede(Ts&&... others) {
    static_assert(sizeof...(Ts) >= 1, "precede requires at least one task");
    (_node->precede(*std::forward<Ts>(others)._node), ...);
    return *this;
  }

  /// Adds dependency links: *this runs after every task in `others...`.
  template <typename... Ts>
  Task& succeed(Ts&&... others) {
    static_assert(sizeof...(Ts) >= 1, "succeed requires at least one task");
    (std::forward<Ts>(others)._node->precede(*_node), ...);
    return *this;
  }

  /// v1-style container forms: *this precedes / succeeds every task in the
  /// vector.
  Task& broadcast(const std::vector<Task>& others) {
    for (const Task& t : others) _node->precede(*t._node);
    return *this;
  }
  Task& gather(const std::vector<Task>& others) {
    for (const Task& t : others) t._node->precede(*_node);
    return *this;
  }

  /// Replace the callable stored in the node.  The same static/dynamic
  /// dispatch rules as FlowBuilder::emplace apply.
  template <typename C>
  Task& work(C&& callable);

  [[nodiscard]] bool operator==(const Task& rhs) const noexcept {
    return _node == rhs._node;
  }

 private:
  friend class FlowBuilder;
  friend class SubflowBuilder;
  friend class Taskflow;

  explicit Task(Node& node) noexcept : _node(&node) {}

  Node* _node{nullptr};
};

}  // namespace tf
