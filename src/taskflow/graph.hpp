// graph.hpp - task dependency graph storage: tf::Node and tf::Graph.
//
// A Node stores a polymorphic work item (std::variant over a static
// callable and a dynamic subflow callable, per paper §III-D), its successor
// links, a runtime join counter of unfinished dependents, and - for dynamic
// tasking - the spawned subgraph plus a link to its parent node.
//
// Storage layout (DESIGN.md §10): nodes and successor arrays are carved out
// of large cache-aligned slabs owned by the Graph's arena, not the general-
// purpose heap.  Each node holds a small inline successor array (covering
// the common fan-out of <= 2) that spills to an arena-allocated chunk when
// it overflows; Graph::finalize_edges() packs the spilled arrays into one
// contiguous block at dispatch time so the scheduler walks linear memory
// (a CSR-style layout).  Graph::reserve(nodes, edges) pre-sizes the arena
// so steady-state construction performs no heap allocation at all.
//
// Nodes are created through tf::FlowBuilder (Taskflow / SubflowBuilder) and
// manipulated through the lightweight tf::Task handle; this header is the
// internal storage layer.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "support/function.hpp"

namespace tf {

class Graph;
class SubflowBuilder;
class Topology;

/// Inline capture capacity of a task callable: lambdas up to this many bytes
/// (the common case: a few pointers/references plus loop bounds) are stored
/// directly inside the Node with no heap allocation - twice what libstdc++'s
/// std::function can hold inline, without growing the node noticeably.
inline constexpr std::size_t kWorkCapacity = 32;

/// Work signature of a static task.
using StaticWork = support::SmallFunction<void(), kWorkCapacity>;
/// Work signature of a dynamic task: receives a SubflowBuilder to spawn a
/// subflow at runtime.
using DynamicWork = support::SmallFunction<void(SubflowBuilder&), kWorkCapacity>;

/// Inline capture capacity of a condition callable.  Smaller than
/// kWorkCapacity so that ConditionWork (callable + last-branch scratch) stays
/// no larger than StaticWork and the Node's work variant - and therefore the
/// Node itself - does not grow; larger captures fall back to one heap
/// allocation, exactly like oversized static work.
inline constexpr std::size_t kConditionCapacity = 24;

/// Work of a condition task (control-flow graph model, second Taskflow paper
/// §III-C): the callable returns the index of the successor to schedule; all
/// other successors stay idle.  Out-of-range indices are captured as errors
/// by the executor.  `last_branch` records the most recent selection (-1
/// before the first execution / when no branch was taken) for diagnostics -
/// atomic so stall reports can read it while a loop is running.
struct ConditionWork {
  support::SmallFunction<int(), kConditionCapacity> fn;
  std::atomic<int> last_branch{-1};

  template <typename C>
    requires(!std::is_same_v<std::decay_t<C>, ConditionWork>)
  explicit ConditionWork(C&& callable) : fn(std::forward<C>(callable)) {}
};

/// Work of a module task (Taskflow composition, second paper §III-D): a
/// non-owning reference to another Taskflow's graph.  At execution the
/// executor instantiates (deep-copies) the target into the module node's
/// private subgraph and runs it as a joined subflow, so one Taskflow can be
/// composed into several concurrently running parents.
struct ModuleWork {
  Graph* target{nullptr};
};

/// Per-task retry policy (Task::retry): how often and with what delay a
/// throwing task is re-attempted before the failure is surfaced.
struct RetryPolicy {
  /// Total attempts including the first (>= 1; 1 = no retry).
  int max_attempts{1};
  /// Delay before the first retry; 0 re-enqueues immediately.
  std::chrono::nanoseconds backoff{std::chrono::milliseconds(1)};
  /// Exponential growth factor of the delay per further retry (>= 1).
  double multiplier{2.0};
  /// Delay ceiling the exponential growth saturates at.
  std::chrono::nanoseconds max_backoff{std::chrono::seconds(1)};
  /// Uniform jitter fraction in [0, 1]: each delay d becomes a uniform draw
  /// from [d * (1 - jitter), d] to decorrelate retry storms.
  double jitter{0.1};
  /// Optional failure filter: return false to surface the exception at once
  /// (e.g. retry only transient I/O errors).  Empty = retry everything.
  std::function<bool(const std::exception_ptr&)> retry_if{};
};

namespace detail {

/// Allocation-failure injection (tests only).  `alloc_failure_countdown`
/// counts *slab acquisitions* across every GraphArena: arm(n) makes the n-th
/// subsequent acquisition (0 = the very next one) throw std::bad_alloc, after
/// which the injector disarms itself.  The check lives on the slab-growth
/// path only - the steady-state bump allocation fast path never reads it -
/// and the counter is process-global, so tests must pre-reserve any graphs
/// they do not want to trip (test_fault's allocation-failure suite).
extern std::atomic<long long> alloc_failure_countdown;  // < 0 = disarmed
inline void arm_alloc_failure(long long nth_acquisition) noexcept {
  alloc_failure_countdown.store(nth_acquisition, std::memory_order_relaxed);
}
inline void disarm_alloc_failure() noexcept {
  alloc_failure_countdown.store(-1, std::memory_order_relaxed);
}
void alloc_failure_check();  // throws std::bad_alloc when armed and expired

/// Resilience state of one node, allocated lazily by Task::retry /
/// Task::fallback.  Nodes without policies keep a null pointer, so the
/// zero-policy execution hot path never touches (or allocates) any of this -
/// the executor reads the pointer only on the failure path.
struct ResiliencePolicy {
  RetryPolicy retry;
  /// Degradation handler: runs (on the worker) when retries are exhausted;
  /// if it returns normally the topology proceeds as if the task succeeded.
  StaticWork fallback;
  /// Failed attempts of the current run; reset at arm() and when a re-armed
  /// dynamic node respawns.  Atomic only for race-free stall reporting - the
  /// executor mutates it single-threaded per node.
  std::atomic<int> failed_attempts{0};
};

/// Slab/bump allocator behind one Graph: nodes and successor chunks are
/// carved sequentially out of cache-line-aligned slabs, so a million-node
/// build performs O(log n) heap allocations instead of one per node/edge
/// (and exactly the reserved ones after GraphArena::reserve).  Nothing is
/// freed individually - construction garbage (abandoned successor chunks
/// after growth) stays in the slab until release()/reset(), which is the
/// right trade for build-once-run-many graphs.
class GraphArena {
 public:
  /// Slab start alignment: one cache line, so the first node of every slab
  /// (and, at 128 B per node, every node after it) is cache-line aligned.
  static constexpr std::size_t kSlabAlignment = 64;
  /// Every allocation is rounded up to this granule; covers the alignment
  /// of everything the graph stores (Node's strictest member is 8-aligned).
  static constexpr std::size_t kGranule = 16;
  /// First slab size: small, so a single-node graph (Executor::async) does
  /// not commit more than the old per-node allocation scheme did.
  static constexpr std::size_t kFirstSlabBytes = 512;
  /// Slab growth doubles up to this cap, bounding worst-case slack on huge
  /// graphs to one slab.
  static constexpr std::size_t kMaxSlabBytes = std::size_t{4} << 20;

  GraphArena() = default;
  ~GraphArena() { release(); }

  GraphArena(GraphArena&& other) noexcept
      : _slabs(std::move(other._slabs)), _active(other._active) {
    other._slabs.clear();
    other._active = 0;
  }
  GraphArena& operator=(GraphArena&& other) noexcept {
    if (this != &other) {
      release();
      _slabs = std::move(other._slabs);
      _active = other._active;
      other._slabs.clear();
      other._active = 0;
    }
    return *this;
  }
  GraphArena(const GraphArena&) = delete;
  GraphArena& operator=(const GraphArena&) = delete;

  /// Bump-allocate `bytes` (rounded up to kGranule).  The returned storage
  /// is never individually freed; it lives until release()/reset().
  [[nodiscard]] void* allocate(std::size_t bytes) {
    bytes = (bytes + kGranule - 1) & ~(kGranule - 1);
    // Advance through (possibly recycled) slabs until one fits; slack left
    // behind in a skipped slab is abandoned, as in any bump allocator.
    while (_active < _slabs.size()) {
      Slab& s = _slabs[_active];
      if (s.used + bytes <= s.size) {
        void* p = s.data + s.used;
        s.used += bytes;
        return p;
      }
      ++_active;
    }
    grow(bytes);
    Slab& s = _slabs.back();
    void* p = s.data + s.used;
    s.used += bytes;
    return p;
  }

  /// Ensure at least `bytes` can be allocated without acquiring a new slab:
  /// the fast path behind Graph::reserve.
  void reserve(std::size_t bytes) {
    bytes = (bytes + kGranule - 1) & ~(kGranule - 1);
    std::size_t free = 0;
    for (std::size_t i = _active; i < _slabs.size(); ++i) {
      free += _slabs[i].size - _slabs[i].used;
    }
    if (free >= bytes) return;
    _slabs.push_back(make_slab(bytes - free));
    if (_slabs.size() == 1) _active = 0;
  }

  /// Rewind every slab to empty, keeping the memory for reuse (graph
  /// recycling: subflow respawn, topology replays, async-box reuse).
  void reset() noexcept {
    for (Slab& s : _slabs) s.used = 0;
    _active = 0;
  }

  /// Free every slab (Graph::clear / destruction).
  void release() noexcept {
    for (Slab& s : _slabs) {
      ::operator delete(s.data, std::align_val_t{kSlabAlignment});
    }
    _slabs.clear();
    _active = 0;
  }

  /// Drop slabs not touched since the last reset (Graph::shrink_to_fit).
  void shrink_to_fit() noexcept {
    while (!_slabs.empty() && _slabs.back().used == 0) {
      ::operator delete(_slabs.back().data, std::align_val_t{kSlabAlignment});
      _slabs.pop_back();
    }
    if (_active >= _slabs.size() && _active > 0) {
      _active = _slabs.empty() ? 0 : _slabs.size() - 1;
    }
    _slabs.shrink_to_fit();
  }

  /// Identity of the slab containing `p` - its base address - or 0 when `p`
  /// was not carved from this arena.  O(num_slabs) scan, cheap because slab
  /// growth is geometric (even a million-node graph holds a few dozen
  /// slabs); used only by the opt-in slab-affinity scheduler path
  /// (DESIGN.md §14), never on the default hot path.
  [[nodiscard]] std::uintptr_t slab_cookie(const void* p) const noexcept {
    const std::byte* q = static_cast<const std::byte*>(p);
    for (const Slab& s : _slabs) {
      if (q >= s.data && q < s.data + s.size) {
        return reinterpret_cast<std::uintptr_t>(s.data);
      }
    }
    return 0;
  }

  /// Half-open address range of the slab containing `p`, {nullptr, nullptr}
  /// when `p` was not carved from this arena.  Lets the scheduler cache one
  /// slab membership test as two pointer compares (slab ranges of live
  /// arenas never overlap, so the range identifies the slab globally)
  /// instead of re-running the cookie scan per task.
  struct SlabSpan {
    const std::byte* base{nullptr};
    const std::byte* end{nullptr};
  };
  [[nodiscard]] SlabSpan slab_span(const void* p) const noexcept {
    const std::byte* q = static_cast<const std::byte*>(p);
    for (const Slab& s : _slabs) {
      if (q >= s.data && q < s.data + s.size) {
        return SlabSpan{s.data, s.data + s.size};
      }
    }
    return SlabSpan{};
  }

  // Introspection for tests and reports.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t n = 0;
    for (const Slab& s : _slabs) n += s.size;
    return n;
  }
  [[nodiscard]] std::size_t bytes_used() const noexcept {
    std::size_t n = 0;
    for (const Slab& s : _slabs) n += s.used;
    return n;
  }
  [[nodiscard]] std::size_t num_slabs() const noexcept { return _slabs.size(); }

 private:
  struct Slab {
    std::byte* data{nullptr};
    std::size_t size{0};
    std::size_t used{0};
  };

  [[nodiscard]] static Slab make_slab(std::size_t bytes) {
    alloc_failure_check();  // test hook: no-op unless armed
    bytes = (bytes + kSlabAlignment - 1) & ~(kSlabAlignment - 1);
    return Slab{static_cast<std::byte*>(
                    ::operator new(bytes, std::align_val_t{kSlabAlignment})),
                bytes, 0};
  }

  void grow(std::size_t min_bytes) {
    std::size_t next = _slabs.empty()
                           ? kFirstSlabBytes
                           : std::min(_slabs.back().size * 2, kMaxSlabBytes);
    if (next < min_bytes) next = min_bytes;
    _slabs.push_back(make_slab(next));
    _active = _slabs.size() - 1;
  }

  std::vector<Slab> _slabs;
  std::size_t _active{0};  // slab currently bumped into
};

}  // namespace detail

/// One vertex of a task dependency graph.  Internal type: users hold
/// tf::Task handles instead (paper §III-A).
class Node {
 public:
  /// Successor pointers stored directly in the node before spilling to an
  /// arena chunk: covers the dominant <= 2 fan-out (chains, diamonds).
  static constexpr std::uint32_t kInlineSuccessors = 2;

  Node() = default;
  ~Node();  // out-of-line: Graph is incomplete here

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  Node(Node&&) = delete;
  Node& operator=(Node&&) = delete;

  /// Add a successor edge this -> v and bump v's dependent count.
  void precede(Node& v);

  /// Name accessors.  Names are rare debug/visualization metadata: they live
  /// in a side table on the owning Graph (node_name), not in the node, so
  /// the node spends its 128-byte budget on what dispatch actually reads.
  [[nodiscard]] const std::string& name() const noexcept;
  void set_name(std::string n);

  [[nodiscard]] std::size_t num_successors() const noexcept {
    return _num_successors;
  }
  [[nodiscard]] std::size_t num_dependents() const noexcept {
    return static_cast<std::size_t>(_static_dependents);
  }

  /// Successors in insertion order (contiguous; see Graph::finalize_edges).
  [[nodiscard]] std::span<Node* const> successors() const noexcept {
    return {successor_data(), _num_successors};
  }

  /// True when no callable has been assigned (a placeholder).
  [[nodiscard]] bool is_placeholder() const noexcept {
    return std::holds_alternative<std::monostate>(_work);
  }
  [[nodiscard]] bool is_dynamic() const noexcept {
    return std::holds_alternative<DynamicWork>(_work);
  }
  /// True when this node holds an int()-returning condition callable.
  [[nodiscard]] bool is_condition() const noexcept {
    return std::holds_alternative<ConditionWork>(_work);
  }
  /// True when this node is a module task (composed_of another Taskflow).
  [[nodiscard]] bool is_module() const noexcept {
    return std::holds_alternative<ModuleWork>(_work);
  }

  /// Predecessor counts split by edge kind: an edge from a condition task is
  /// *weak* (it fires on branch selection, not on join), every other edge is
  /// *strong* (it decrements the join counter).  num_dependents() stays the
  /// total of both.
  [[nodiscard]] int num_weak_dependents() const noexcept {
    return _weak_dependents;
  }
  [[nodiscard]] int num_strong_dependents() const noexcept {
    return _static_dependents - _weak_dependents;
  }

  /// Branch index the condition callable returned most recently: -1 before
  /// the first execution, when no branch was taken (error/fallback/drain),
  /// or when this is not a condition node.  Safe to call concurrently with
  /// execution (diagnostics).
  [[nodiscard]] int last_branch() const noexcept {
    const auto* cond = std::get_if<ConditionWork>(&_work);
    return cond == nullptr ? -1 : cond->last_branch.load(std::memory_order_relaxed);
  }

  /// True once this node has spawned a (non-empty or empty) subflow.
  [[nodiscard]] bool has_subgraph() const noexcept { return _subgraph != nullptr; }

  /// The arena slab this node lives in (see Graph::slab_cookie); 0 when the
  /// node has no owning graph.
  [[nodiscard]] std::uintptr_t slab_cookie() const noexcept;

  /// Address range of that slab ({nullptr, nullptr} without an owning
  /// graph); lets callers cache slab membership as two pointer compares.
  [[nodiscard]] detail::GraphArena::SlabSpan slab_span() const noexcept;

  /// True when a retry policy or fallback is attached (Task::retry/fallback).
  [[nodiscard]] bool has_policy() const noexcept { return _policy != nullptr; }

  /// The node's resilience state, created on first access (build-time only;
  /// the executor never calls this).
  [[nodiscard]] detail::ResiliencePolicy& policy() {
    if (_policy == nullptr) _policy = std::make_unique<detail::ResiliencePolicy>();
    return *_policy;
  }

  /// Read-only view of the resilience state (nullptr when none attached);
  /// never allocates - used by stall reports and tests.
  [[nodiscard]] const detail::ResiliencePolicy* resilience() const noexcept {
    return _policy.get();
  }

  // -- internal execution state (used by executors and Topology) ----------

  [[nodiscard]] Node* const* successor_data() const noexcept {
    return _succ_capacity <= kInlineSuccessors ? _succ_inline : _succ_spill;
  }
  [[nodiscard]] Node** successor_data() noexcept {
    return _succ_capacity <= kInlineSuccessors ? _succ_inline : _succ_spill;
  }

  Graph* _graph{nullptr};  // owning graph: arena for edge spill, name table
  std::variant<std::monostate, StaticWork, DynamicWork, ConditionWork, ModuleWork>
      _work;
  // Successor storage: the inline array while _succ_capacity stays at
  // kInlineSuccessors, an arena-allocated chunk once it spills.  Same 24
  // bytes as the std::vector it replaced, but growth allocates from the
  // graph arena and dispatch-time finalize packs the chunks contiguously.
  union {
    Node* _succ_inline[kInlineSuccessors];
    Node** _succ_spill;
  };
  std::uint32_t _num_successors{0};
  std::uint32_t _succ_capacity{kInlineSuccessors};
  int _static_dependents{0};          // number of predecessors at build time
  std::atomic<int> _join_counter{0};  // pending dependents (or pending subflow
                                      // children once spawned); reset at dispatch
  int _creation_index{0};             // position in the owning graph's build order
  // The flags and the weak-dependent count pack into the ints' tail padding:
  // Node must stay <= 128 bytes (two cache lines) so arena slabs hold a
  // round number of cache-aligned nodes - construction throughput is
  // directly proportional to nodes per slab allocation.
  bool _has_backward_edge : 1 {false};  // some successor was created before this
                                        // node - the cheap acyclicity witness fails
  bool _spawned : 1 {false};            // dynamic/module work already expanded
  bool _detached : 1 {false};           // subflow spawned by this node detached
  // Predecessors that are condition tasks (weak edges).  uint16_t keeps the
  // node at 128 bytes; 65k condition predecessors on one node is far past
  // any sane control-flow graph.
  std::uint16_t _weak_dependents{0};
  std::unique_ptr<Graph> _subgraph;   // spawned subflow; recycled across runs
  // Retry/fallback policy, absent (nullptr) on the overwhelming majority of
  // nodes: one pointer of storage, dereferenced only on the failure path.
  std::unique_ptr<detail::ResiliencePolicy> _policy;
  Node* _parent{nullptr};             // joined-subflow parent, else nullptr
  Topology* _topology{nullptr};       // owning dispatched topology

 private:
  friend class Graph;

  /// Move the successor array to an arena chunk of at least `min_capacity`.
  void grow_successors(std::uint32_t min_capacity);
};

static_assert(sizeof(Node) == 128,
              "Node must stay exactly two cache lines; see the flag-packing "
              "comment above before growing it");
static_assert(alignof(Node) <= detail::GraphArena::kGranule,
              "arena granule must satisfy Node alignment");

/// An owning container of nodes with pointer stability (arena slabs), movable
/// so a Taskflow can hand its present graph to a Topology at dispatch time.
class Graph {
 public:
  Graph() = default;
  ~Graph() { destroy_nodes(); }

  /// Moves transfer the slabs (node addresses stay stable) and re-point each
  /// node's owner link: O(n), but only the legacy one-shot dispatch path
  /// moves graphs, and it pays an O(n) arm() right after anyway.
  Graph(Graph&& other) noexcept
      : _arena(std::move(other._arena)),
        _index(std::move(other._index)),
        _names(std::move(other._names)),
        _edges_dirty(other._edges_dirty) {
    for (Node* node : _index) node->_graph = this;
    other._edges_dirty = false;
  }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) {
      destroy_nodes();
      _arena = std::move(other._arena);
      _index = std::move(other._index);
      _names = std::move(other._names);
      _edges_dirty = other._edges_dirty;
      for (Node* node : _index) node->_graph = this;
      other._edges_dirty = false;
    }
    return *this;
  }
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Construct a new node in place (in the arena) and return it.
  Node& emplace_back() {
    void* mem = _arena.allocate(sizeof(Node));
    Node* node = new (mem) Node();
    node->_graph = this;
    node->_creation_index = static_cast<int>(_index.size());
    _index.push_back(node);
    return *node;
  }

  /// Pre-size the arena (and the node index) for `nodes` nodes and `edges`
  /// precede() calls: the fast path for graphs of known shape - steady-state
  /// emplace/precede after this performs no heap allocation (heavy fan-out
  /// past the growth slack may still acquire one more slab).
  void reserve(std::size_t nodes, std::size_t edges = 0) {
    _arena.reserve(nodes * sizeof(Node) + 2 * edges * sizeof(Node*));
    _index.reserve(_index.size() + nodes);
  }

  [[nodiscard]] std::size_t size() const noexcept { return _index.size(); }
  [[nodiscard]] bool empty() const noexcept { return _index.empty(); }

  /// The index-th node in creation order (0-based, index < size()).
  [[nodiscard]] Node& node_at(std::size_t index) noexcept { return *_index[index]; }

  /// Destroy every node and release the arena slabs back to the heap: a
  /// cleared million-node graph pins no memory.
  void clear() {
    destroy_nodes();
    _arena.release();
    std::vector<Node*>().swap(_index);
    _edges_dirty = false;
  }

  /// Destroy every node but keep the slabs (and index capacity) for reuse:
  /// the respawn path of recycled subflows and async runs builds the next
  /// generation of nodes with zero heap traffic.
  void recycle() {
    destroy_nodes();
    _arena.reset();
    _edges_dirty = false;
  }

  /// Return slab memory not used since the last recycle to the heap.
  void shrink_to_fit() {
    _arena.shrink_to_fit();
    _index.shrink_to_fit();
  }

  /// Pack every spilled successor array into one contiguous arena block in
  /// creation order (the CSR finalize step), so dispatch walks linear
  /// memory.  Idempotent and cheap when nothing spilled since the last call;
  /// must not run concurrently with task execution (same contract as arm()).
  void finalize_edges();

  // Iteration in creation order, yielding Node& (the nodes themselves live
  // in arena slabs; the index holds stable pointers to them).
  template <typename NodeT>
  class Iterator {
   public:
    using value_type = NodeT;
    using reference = NodeT&;
    using pointer = NodeT*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    Iterator() = default;
    explicit Iterator(Node* const* it) noexcept : _it(it) {}

    [[nodiscard]] reference operator*() const noexcept { return **_it; }
    [[nodiscard]] pointer operator->() const noexcept { return *_it; }
    Iterator& operator++() noexcept {
      ++_it;
      return *this;
    }
    Iterator operator++(int) noexcept {
      Iterator copy = *this;
      ++_it;
      return copy;
    }
    [[nodiscard]] bool operator==(const Iterator&) const noexcept = default;

   private:
    Node* const* _it{nullptr};
  };
  using iterator = Iterator<Node>;
  using const_iterator = Iterator<const Node>;

  [[nodiscard]] iterator begin() noexcept { return iterator(_index.data()); }
  [[nodiscard]] iterator end() noexcept {
    return iterator(_index.data() + _index.size());
  }
  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(_index.data());
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(_index.data() + _index.size());
  }

  /// Total node count including recursively spawned subgraphs.
  [[nodiscard]] std::size_t size_recursive() const;

  /// Name side table (see Node::name): empty string when unnamed.
  void set_node_name(const Node& node, std::string name);
  [[nodiscard]] const std::string& node_name(const Node& node) const noexcept;

  /// The arena slab a node lives in (slab base address as an opaque id; 0
  /// for a node not of this graph).  The physical-home query behind the
  /// scheduler's slab-affine placement: two nodes with equal non-zero
  /// cookies share one contiguous slab of graph memory.
  [[nodiscard]] std::uintptr_t slab_cookie(const Node& node) const noexcept {
    return _arena.slab_cookie(&node);
  }

  /// Address range of the slab a node lives in (see GraphArena::slab_span).
  [[nodiscard]] detail::GraphArena::SlabSpan slab_span(
      const Node& node) const noexcept {
    return _arena.slab_span(&node);
  }

  // Arena introspection for tests and memory reports.
  [[nodiscard]] std::size_t arena_bytes_reserved() const noexcept {
    return _arena.bytes_reserved();
  }
  [[nodiscard]] std::size_t arena_bytes_used() const noexcept {
    return _arena.bytes_used();
  }
  [[nodiscard]] std::size_t arena_slabs() const noexcept {
    return _arena.num_slabs();
  }

 private:
  friend class Node;

  /// Arena storage for a spilled successor array of `count` pointers.
  [[nodiscard]] Node** allocate_edges(std::size_t count) {
    return static_cast<Node**>(_arena.allocate(count * sizeof(Node*)));
  }

  void destroy_nodes() noexcept {
    for (Node* node : _index) node->~Node();
    _index.clear();
    if (_names != nullptr) _names->clear();
  }

  detail::GraphArena _arena;
  std::vector<Node*> _index;  // creation order; stable across arena growth
  // Lazily allocated: the overwhelming majority of graphs name no task.
  std::unique_ptr<std::unordered_map<const Node*, std::string>> _names;
  bool _edges_dirty{false};  // a successor array spilled since finalize_edges
};

inline const std::string& Node::name() const noexcept {
  static const std::string empty;
  return _graph == nullptr ? empty : _graph->node_name(*this);
}

inline void Node::set_name(std::string n) {
  assert(_graph != nullptr);
  _graph->set_node_name(*this, std::move(n));
}

inline std::uintptr_t Node::slab_cookie() const noexcept {
  return _graph == nullptr ? 0 : _graph->slab_cookie(*this);
}

inline detail::GraphArena::SlabSpan Node::slab_span() const noexcept {
  return _graph == nullptr ? detail::GraphArena::SlabSpan{}
                           : _graph->slab_span(*this);
}

namespace detail {

/// Kahn's-algorithm acyclicity check over the static edges of `g`: returns
/// the empty string when the graph is acyclic, otherwise a human-readable
/// description naming one dependency cycle (up to `max_named` tasks).  The
/// nodes' join counters are used as scratch in-degrees, so this must only
/// run while `g` is not executing; Topology::arm / the subflow spawn path
/// re-initialize the counters right afterwards.
[[nodiscard]] std::string describe_cycle(Graph& g, std::size_t max_named = 8);

/// Deep-copy `src` into `dst` (which must be empty - freshly constructed or
/// recycled): the module-task instantiation step.  Work items, names,
/// resilience policies, and edges (with their strong/weak classification)
/// are all duplicated; nested module references are copied as references and
/// expand recursively at execution.  Throws std::logic_error when a work
/// item is move-only (a composed Taskflow must hold copyable callables).
void instantiate(const Graph& src, Graph& dst);

/// Build-time guard of FlowBuilder::composed_of: walks the module-reference
/// graph reachable from `target` (each graph's ModuleWork pointers) and
/// returns true when `owner` is reachable - i.e. making `owner` compose
/// `target` would close a reference cycle whose execution-time expansion
/// could never terminate.  `target == owner` (direct self-composition) is
/// the trivial positive.  O(reachable modules), build time only.
[[nodiscard]] bool composes_transitively(const Graph& target, const Graph& owner);

/// Runtime backstop for reference cycles assembled in ways the build-time
/// walk cannot see (e.g. a dynamic subflow composing its own ancestor
/// taskflow): module expansion deeper than this many nested module ancestors
/// throws a task-naming tf::CompositionError through the normal capture +
/// drain path instead of overflowing the worker stack.
inline constexpr std::size_t kMaxModuleDepth = 64;

}  // namespace detail

}  // namespace tf
