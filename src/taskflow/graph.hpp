// graph.hpp - task dependency graph storage: tf::Node and tf::Graph.
//
// A Node stores a polymorphic work item (std::variant over a static
// callable and a dynamic subflow callable, per paper §III-D), its successor
// links, a runtime join counter of unfinished dependents, and - for dynamic
// tasking - the spawned subgraph plus a link to its parent node.
//
// Nodes are created through tf::FlowBuilder (Taskflow / SubflowBuilder) and
// manipulated through the lightweight tf::Task handle; this header is the
// internal storage layer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "support/function.hpp"

namespace tf {

class Graph;
class SubflowBuilder;
class Topology;

/// Inline capture capacity of a task callable: lambdas up to this many bytes
/// (the common case: a few pointers/references plus loop bounds) are stored
/// directly inside the Node with no heap allocation - twice what libstdc++'s
/// std::function can hold inline, without growing the node noticeably.
inline constexpr std::size_t kWorkCapacity = 32;

/// Work signature of a static task.
using StaticWork = support::SmallFunction<void(), kWorkCapacity>;
/// Work signature of a dynamic task: receives a SubflowBuilder to spawn a
/// subflow at runtime.
using DynamicWork = support::SmallFunction<void(SubflowBuilder&), kWorkCapacity>;

/// Per-task retry policy (Task::retry): how often and with what delay a
/// throwing task is re-attempted before the failure is surfaced.
struct RetryPolicy {
  /// Total attempts including the first (>= 1; 1 = no retry).
  int max_attempts{1};
  /// Delay before the first retry; 0 re-enqueues immediately.
  std::chrono::nanoseconds backoff{std::chrono::milliseconds(1)};
  /// Exponential growth factor of the delay per further retry (>= 1).
  double multiplier{2.0};
  /// Delay ceiling the exponential growth saturates at.
  std::chrono::nanoseconds max_backoff{std::chrono::seconds(1)};
  /// Uniform jitter fraction in [0, 1]: each delay d becomes a uniform draw
  /// from [d * (1 - jitter), d] to decorrelate retry storms.
  double jitter{0.1};
  /// Optional failure filter: return false to surface the exception at once
  /// (e.g. retry only transient I/O errors).  Empty = retry everything.
  std::function<bool(const std::exception_ptr&)> retry_if{};
};

namespace detail {

/// Resilience state of one node, allocated lazily by Task::retry /
/// Task::fallback.  Nodes without policies keep a null pointer, so the
/// zero-policy execution hot path never touches (or allocates) any of this -
/// the executor reads the pointer only on the failure path.
struct ResiliencePolicy {
  RetryPolicy retry;
  /// Degradation handler: runs (on the worker) when retries are exhausted;
  /// if it returns normally the topology proceeds as if the task succeeded.
  StaticWork fallback;
  /// Failed attempts of the current run; reset at arm() and when a re-armed
  /// dynamic node respawns.  Atomic only for race-free stall reporting - the
  /// executor mutates it single-threaded per node.
  std::atomic<int> failed_attempts{0};
};

}  // namespace detail

/// One vertex of a task dependency graph.  Internal type: users hold
/// tf::Task handles instead (paper §III-A).
class Node {
 public:
  Node() = default;
  ~Node();  // out-of-line: Graph is incomplete here

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  Node(Node&&) = delete;
  Node& operator=(Node&&) = delete;

  /// Add a successor edge this -> v and bump v's dependent count.
  void precede(Node& v);

  [[nodiscard]] const std::string& name() const noexcept {
    static const std::string empty;
    return _name == nullptr ? empty : *_name;
  }
  void set_name(std::string n) {
    if (_name == nullptr) {
      _name = std::make_unique<std::string>(std::move(n));
    } else {
      *_name = std::move(n);
    }
  }

  [[nodiscard]] std::size_t num_successors() const noexcept { return _successors.size(); }
  [[nodiscard]] std::size_t num_dependents() const noexcept {
    return static_cast<std::size_t>(_static_dependents);
  }

  /// True when no callable has been assigned (a placeholder).
  [[nodiscard]] bool is_placeholder() const noexcept {
    return std::holds_alternative<std::monostate>(_work);
  }
  [[nodiscard]] bool is_dynamic() const noexcept {
    return std::holds_alternative<DynamicWork>(_work);
  }

  /// True once this node has spawned a (non-empty or empty) subflow.
  [[nodiscard]] bool has_subgraph() const noexcept { return _subgraph != nullptr; }

  /// True when a retry policy or fallback is attached (Task::retry/fallback).
  [[nodiscard]] bool has_policy() const noexcept { return _policy != nullptr; }

  /// The node's resilience state, created on first access (build-time only;
  /// the executor never calls this).
  [[nodiscard]] detail::ResiliencePolicy& policy() {
    if (_policy == nullptr) _policy = std::make_unique<detail::ResiliencePolicy>();
    return *_policy;
  }

  /// Read-only view of the resilience state (nullptr when none attached);
  /// never allocates - used by stall reports and tests.
  [[nodiscard]] const detail::ResiliencePolicy* resilience() const noexcept {
    return _policy.get();
  }

  // -- internal execution state (used by executors and Topology) ----------

  // Names are debug/visualization metadata and almost always absent: keeping
  // them behind a pointer shrinks every node by 24 bytes, which is what the
  // large-graph construction and dispatch paths actually traffic in.
  std::unique_ptr<std::string> _name;
  std::variant<std::monostate, StaticWork, DynamicWork> _work;
  std::vector<Node*> _successors;
  int _static_dependents{0};          // number of predecessors at build time
  std::atomic<int> _join_counter{0};  // pending dependents (or pending subflow
                                      // children once spawned); reset at dispatch
  int _creation_index{0};             // position in the owning graph's build order
  // The flags pack into the ints' tail padding: Node must stay <= 128 bytes
  // so a deque block (512 B) holds 4 nodes - construction throughput is
  // directly proportional to nodes per block allocation.
  bool _has_backward_edge{false};     // some successor was created before this
                                      // node - the cheap acyclicity witness fails
  bool _spawned{false};               // dynamic work already expanded
  bool _detached{false};              // subflow spawned by this node detached
  std::unique_ptr<Graph> _subgraph;   // spawned subflow, built lazily at runtime
  // Retry/fallback policy, absent (nullptr) on the overwhelming majority of
  // nodes: one pointer of storage, dereferenced only on the failure path.
  std::unique_ptr<detail::ResiliencePolicy> _policy;
  Node* _parent{nullptr};             // joined-subflow parent, else nullptr
  Topology* _topology{nullptr};       // owning dispatched topology
};

static_assert(sizeof(Node) <= 128,
              "Node must fit 4-per-512B-deque-block; see the flag-packing "
              "comment above");

/// An owning container of nodes with pointer stability (std::deque), movable
/// so a Taskflow can hand its present graph to a Topology at dispatch time.
class Graph {
 public:
  Graph() = default;
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Construct a new node in place and return it.
  Node& emplace_back() {
    Node& node = _nodes.emplace_back();
    node._creation_index = static_cast<int>(_nodes.size()) - 1;
    return node;
  }

  [[nodiscard]] std::size_t size() const noexcept { return _nodes.size(); }
  [[nodiscard]] bool empty() const noexcept { return _nodes.empty(); }

  /// The index-th node in creation order (0-based, index < size()).
  [[nodiscard]] Node& node_at(std::size_t index) noexcept { return _nodes[index]; }

  void clear() { _nodes.clear(); }

  [[nodiscard]] auto begin() noexcept { return _nodes.begin(); }
  [[nodiscard]] auto end() noexcept { return _nodes.end(); }
  [[nodiscard]] auto begin() const noexcept { return _nodes.begin(); }
  [[nodiscard]] auto end() const noexcept { return _nodes.end(); }

  /// Total node count including recursively spawned subgraphs.
  [[nodiscard]] std::size_t size_recursive() const;

 private:
  std::deque<Node> _nodes;
};

namespace detail {

/// Kahn's-algorithm acyclicity check over the static edges of `g`: returns
/// the empty string when the graph is acyclic, otherwise a human-readable
/// description naming one dependency cycle (up to `max_named` tasks).  The
/// nodes' join counters are used as scratch in-degrees, so this must only
/// run while `g` is not executing; Topology::arm / the subflow spawn path
/// re-initialize the counters right afterwards.
[[nodiscard]] std::string describe_cycle(Graph& g, std::size_t max_named = 8);

}  // namespace detail

}  // namespace tf
