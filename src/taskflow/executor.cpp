#include "taskflow/executor.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <ostream>

#include "taskflow/flow_builder.hpp"
#include "taskflow/topology.hpp"

namespace tf {

namespace {
// Identifies the worker context of the current thread, so schedule() can use
// the worker-local cache / local queue fast paths (Algorithm 1).
struct TlsWorker {
  void* executor{nullptr};
  void* worker{nullptr};
};
thread_local TlsWorker tls_worker;

// Error state of the topology whose task the current thread is executing;
// backs tf::this_task::is_cancelled().  Scoped strictly to the invocation of
// user work inside run_task.
thread_local detail::ErrorState* tls_error_state = nullptr;

struct TlsErrorGuard {
  explicit TlsErrorGuard(detail::ErrorState* s) noexcept { tls_error_state = s; }
  ~TlsErrorGuard() { tls_error_state = nullptr; }
  TlsErrorGuard(const TlsErrorGuard&) = delete;
  TlsErrorGuard& operator=(const TlsErrorGuard&) = delete;
};

// One CPU relax hint (dense spin loops); falls back to a compiler barrier.
inline void spin_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Exponential backoff with jitter for attempt `failed` (1-based count of
// failures so far): delay = backoff * multiplier^(failed-1), capped at
// max_backoff, then jittered down by a uniform fraction of `jitter`.
std::chrono::nanoseconds retry_delay(const RetryPolicy& policy, int failed) noexcept {
  if (policy.backoff.count() <= 0) return std::chrono::nanoseconds{0};
  double d = static_cast<double>(policy.backoff.count());
  for (int i = 1; i < failed; ++i) {
    d *= policy.multiplier;
    if (d >= static_cast<double>(policy.max_backoff.count())) break;
  }
  d = std::min(d, static_cast<double>(policy.max_backoff.count()));
  if (policy.jitter > 0.0) {
    // Per-thread stream: retries are rare, seeding quality is irrelevant,
    // decorrelation across workers is what matters.
    thread_local support::Xoshiro256 rng(
        0xda3e39cb94b95bdbULL ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    d *= 1.0 - policy.jitter * rng.uniform();
  }
  return std::chrono::nanoseconds(static_cast<std::int64_t>(d));
}
}  // namespace

// ---------------------------------------------------------------------------
// ExecutorInterface: shared invocation + finalization logic
// ---------------------------------------------------------------------------

void ExecutorInterface::run_task(std::size_t worker_id, Node* node) {
  ExecutorObserverInterface* obs = _observer_raw.load(std::memory_order_acquire);
  detail::ErrorState* err = node->_topology->error_state();

  // Watchdog progress probes: stamp the task into this worker's slot for the
  // duration of the invocation.  One acquire load when disabled (the common
  // case); two relaxed stores + a clock read per task when a watchdog asked
  // for them.  The guard clears the slot on every exit path (normal, joined-
  // subflow defer, and retry re-enqueue).
  WorkerProbe* probes = _probes_raw.load(std::memory_order_acquire);
  struct ProbeGuard {
    WorkerProbe* slot{nullptr};
    ~ProbeGuard() {
      if (slot != nullptr) {
        slot->current.store(nullptr, std::memory_order_relaxed);
        slot->completed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } probe_guard;
  if (probes != nullptr) {
    probes[worker_id].since_ns.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
    probes[worker_id].current.store(node, std::memory_order_relaxed);
    probe_guard.slot = &probes[worker_id];
  }

  // A draining topology (a task threw, cancel() was called, or the run's
  // deadline expired) skips the user work of every remaining node but still
  // runs the finalize bookkeeping below: join counters, joined-subflow
  // parents, and the live-task count all reach their terminal state, so the
  // topology terminates cleanly instead of leaking stuck nodes.  A skipped
  // condition selects no branch, so in-graph loops break between iterations.
  // Skipped tasks are not reported to the observer (they never executed).
  int selected = -1;  // branch a condition task chose; -1 = none
  if (!err->draining()) {
    TlsErrorGuard guard(err);  // visibility for tf::this_task::is_cancelled
    try {
      if (std::holds_alternative<StaticWork>(node->_work)) {
        if (obs) obs->on_entry(worker_id, *node);
        std::get<StaticWork>(node->_work)();
        if (obs) obs->on_exit(worker_id, *node);
      } else if (auto* cond = std::get_if<ConditionWork>(&node->_work)) {
        if (obs) obs->on_entry(worker_id, *node);
        const int branch = cond->fn();
        // An out-of-range branch is a captured error (same path as a throw:
        // retry/fallback compose, then first-writer capture + drain), never
        // a silent no-op - a typo'd index must not end a loop cleanly.
        if (branch < 0 || branch >= static_cast<int>(node->num_successors())) {
          throw std::out_of_range(
              "condition task" +
              (node->name().empty() ? std::string{} : " \"" + node->name() + "\"") +
              " returned branch " + std::to_string(branch) + " but has " +
              std::to_string(node->num_successors()) + " successor(s)");
        }
        cond->last_branch.store(branch, std::memory_order_relaxed);
        selected = branch;
        if (obs) obs->on_exit(worker_id, *node);
      } else if (std::holds_alternative<DynamicWork>(node->_work) && !node->_spawned) {
        node->_spawned = true;
        // Recycle a previous run's (or attempt's) subgraph in place: the
        // nodes are destroyed but the arena slabs stay, so run_n replays,
        // retries, and in-graph loop laps of a dynamic task rebuild their
        // subflow with no heap traffic.
        if (node->_subgraph != nullptr) {
          node->_subgraph->recycle();
        } else {
          node->_subgraph = std::make_unique<Graph>();
        }
        SubflowBuilder builder(*node->_subgraph, num_workers());

        if (obs) obs->on_entry(worker_id, *node);
        std::get<DynamicWork>(node->_work)(builder);
        if (obs) obs->on_exit(worker_id, *node);

        if (dispatch_subgraph(node, builder.detached())) {
          return;  // joined: finalization deferred to the last child
        }
      } else if (std::holds_alternative<ModuleWork>(node->_work) && !node->_spawned) {
        node->_spawned = true;
        // Runtime recursion backstop: count module ancestors through the
        // joined-subflow parent chain (each expansion level contributes
        // exactly one).  composed_of catches statically visible cycles at
        // build time; this catches the rest - the throw lands in the catch
        // below and drains through the normal capture path instead of
        // overflowing the worker stack.
        std::size_t module_depth = 0;
        for (const Node* p = node->_parent; p != nullptr; p = p->_parent) {
          if (p->is_module()) ++module_depth;
        }
        if (module_depth >= detail::kMaxModuleDepth) {
          const std::string& name = node->name();
          throw CompositionError(
              "module task " + (name.empty() ? std::string("<unnamed>") : name) +
              " exceeded the module expansion depth cap (" +
              std::to_string(detail::kMaxModuleDepth) +
              " nested modules): recursive composition assembled at runtime");
        }
        // Module expansion: instantiate a private copy of the composed
        // Taskflow's graph into this node's subgraph (recycled in place,
        // like a dynamic respawn) and run it as a joined subflow.  Copying
        // is what lets one target run inside several parents concurrently.
        if (node->_subgraph != nullptr) {
          node->_subgraph->recycle();
        } else {
          node->_subgraph = std::make_unique<Graph>();
        }
        if (obs) obs->on_entry(worker_id, *node);
        detail::instantiate(*std::get<ModuleWork>(node->_work).target,
                            *node->_subgraph);
        if (obs) obs->on_exit(worker_id, *node);

        if (dispatch_subgraph(node, /*detached=*/false)) {
          return;  // finalization deferred to the last child
        }
      }
      // Placeholder (monostate) nodes fall through: they only synchronize.
    } catch (...) {
      // Failure path - the only place resilience policies are consulted, so
      // the zero-policy success path stays branch- and allocation-neutral.
      std::exception_ptr eptr = std::current_exception();
      detail::ResiliencePolicy* pol = node->_policy.get();
      if (pol != nullptr && !err->draining()) {
        const int failed = pol->failed_attempts.load(std::memory_order_relaxed) + 1;
        pol->failed_attempts.store(failed, std::memory_order_relaxed);
        bool retryable = failed < pol->retry.max_attempts;
        if (retryable && pol->retry.retry_if) {
          try {
            retryable = pol->retry.retry_if(eptr);
          } catch (...) {
            retryable = false;  // a throwing filter surfaces the original error
          }
        }
        if (retryable) {
          // A retried dynamic node respawns a fresh subflow on the next
          // attempt; the partially built one was never made live (children
          // attach only after every throwing point above), so nothing of it
          // was scheduled - its storage is recycled in place at respawn.
          node->_spawned = false;
          if (obs) obs->on_task_retry(worker_id, *node, failed);
          const auto delay = retry_delay(pol->retry, failed);
          if (delay.count() <= 0) {
            schedule(node);
          } else {
            // Park the node on the timer wheel: no worker blocks while the
            // backoff elapses, and the wheel re-enqueues through the normal
            // external-submission path.
            timer_wheel()->schedule_after(delay, [this, node] { schedule(node); });
          }
          return;  // NOT finalized: the node is still a live task of its run
        }
        if (pol->fallback) {
          // Retry budget exhausted (or no retries): degrade instead of
          // failing the topology.  A throwing fallback surfaces *its*
          // exception - it is the later, more specific failure.
          if (obs) obs->on_task_fallback(worker_id, *node);
          try {
            pol->fallback();
            eptr = nullptr;
          } catch (...) {
            eptr = std::current_exception();
          }
        }
      }
      // First exception wins (atomic first-writer); the topology flips into
      // draining mode so remaining tasks skip their work.  A partially
      // built subflow is simply abandoned here: its children are made live
      // (add_active) only after every throwing point above, so nothing
      // leaks and nothing was scheduled.
      if (eptr) err->capture(std::move(eptr));
    }
  }

  // Collect every successor made ready by this completion (including those
  // released by finalizing joined-subflow parents) and publish them as one
  // batch: one fence and one wake pass instead of one per successor.
  detail::ReadyBatch ready;
  finalize(node, ready, selected);
  if (!ready.empty()) schedule_batch(ready.data(), ready.size());
}

bool ExecutorInterface::dispatch_subgraph(Node* node, bool detached) {
  Graph& sub = *node->_subgraph;
  if (sub.empty()) return false;
  // A subflow that could never complete (a pure-static cycle, or no source
  // task at all) must surface a descriptive error through the topology
  // instead of hanging wait_for_all; condition-guarded cycles pass.
  if (std::string cycle = detail::describe_cycle(sub); !cycle.empty()) {
    throw CycleError(node->name().empty()
                         ? "spawned subflow: " + cycle
                         : "subflow of \"" + node->name() + "\": " + cycle);
  }
  node->_detached = detached;
  sub.finalize_edges();  // pack spilled successor arrays (CSR step)
  // Reused per-thread scratch: the sources are consumed by schedule_batch
  // below (which only enqueues, never runs tasks inline) and workers process
  // one task at a time, so reuse across invocations - and thus across run_n
  // subflow respawns - is safe and keeps replays allocation-free.
  static thread_local std::vector<Node*> sources;
  sources.clear();
  for (auto& child : sub) {
    child._topology = node->_topology;
    child._join_counter.store(child.num_strong_dependents(),
                              std::memory_order_relaxed);
    if (!detached) child._parent = node;
    if (child._static_dependents == 0) sources.push_back(&child);
  }
  // Scheduled-count accounting: only the child *sources* are scheduled here;
  // every further child execution is netted in by its scheduler's finalize.
  // The count is added before any child can possibly run, so the topology
  // cannot complete early.
  node->_topology->add_active(static_cast<long>(sources.size()));

  if (!detached) {
    // Joined subflow: defer this node's finalization until every child
    // execution has finished.  The node's join counter doubles as the count
    // of scheduled-but-unfinished child executions (same netting as the
    // topology counter); the child that brings it to zero finalizes us.
    node->_join_counter.store(static_cast<int>(sources.size()),
                              std::memory_order_release);
    schedule_batch(sources);
    return true;
  }
  schedule_batch(sources);
  return false;
}

void ExecutorInterface::finalize(Node* node, detail::ReadyBatch& ready,
                                 int selected) {
  // Restore this node's join counter for in-graph loop re-entry (a condition
  // downstream may select this node again) *before* releasing successors: a
  // released successor chain could loop back and start decrementing it
  // concurrently.  For acyclic graphs the restored value is simply re-armed
  // state for the next run_n repeat.
  const int strong = node->num_strong_dependents();
  if (strong > 0) {
    node->_join_counter.store(strong, std::memory_order_relaxed);
  }
  // A re-selected dynamic/module node re-expands on the next lap (its
  // subgraph slabs are recycled in place - no per-iteration allocation).
  if (node->_spawned) node->_spawned = false;

  // Release successors.  A condition schedules exactly its selected branch,
  // overriding the successor's join (weak-edge semantics); everything else
  // joins: the successor arrays were packed contiguously at arm()/spawn
  // time, so this walk is linear.
  long scheduled = 0;
  if (node->is_condition()) {
    if (selected >= 0 && selected < static_cast<int>(node->num_successors())) {
      Node* branch = node->successor_data()[selected];
      branch->_join_counter.store(0, std::memory_order_relaxed);
      ready.push(branch);
      scheduled = 1;
    }
  } else {
    for (Node* succ : node->successors()) {
      if (succ->_join_counter.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        ready.push(succ);
        ++scheduled;
      }
    }
  }

  // Scheduled-count netting: this execution retires (-1) and `scheduled`
  // further executions begin.  A task that released exactly one successor -
  // the linear-chain hot path - nets to zero and skips the shared atomics
  // entirely.
  const long delta = scheduled - 1;
  Node* parent = node->_parent;
  Topology* topology = node->_topology;
  assert(topology != nullptr);

  // Joined-subflow bookkeeping: the parent's join counter tracks scheduled-
  // but-unfinished child executions; the child that nets it to zero
  // finalizes the parent (which releases the parent's successors), recursing
  // upward through nested subflows.
  if (parent != nullptr && delta != 0 &&
      parent->_join_counter.fetch_add(static_cast<int>(delta),
                                      std::memory_order_acq_rel) +
              static_cast<int>(delta) ==
          0) {
    finalize(parent, ready, -1);
  }
  if (delta != 0) topology->retire_delta(delta);
}

void ExecutorInterface::dump_state(std::ostream& os) const {
  os << "executor: " << num_workers() << " worker(s)\n";
}

const std::shared_ptr<detail::TimerWheel>& ExecutorInterface::timer_wheel() {
  // Double-checked lazy creation: the service thread only exists once some
  // resilience feature (retry backoff, deadline, cancel_after) is used.
  if (_timer_wheel_raw.load(std::memory_order_acquire) == nullptr) {
    std::scoped_lock lock(_resilience_mutex);
    if (_timer_wheel == nullptr) {
      _timer_wheel = std::make_shared<detail::TimerWheel>();
      _timer_wheel_raw.store(_timer_wheel.get(), std::memory_order_release);
    }
  }
  return _timer_wheel;
}

std::shared_ptr<detail::TimerWheel> ExecutorInterface::timer_wheel_if_created()
    const {
  if (_timer_wheel_raw.load(std::memory_order_acquire) == nullptr) return nullptr;
  std::scoped_lock lock(_resilience_mutex);
  return _timer_wheel;
}

void ExecutorInterface::stop_timer_wheel() noexcept {
  std::shared_ptr<detail::TimerWheel> wheel;
  {
    std::scoped_lock lock(_resilience_mutex);
    wheel = _timer_wheel;
  }
  // stop() joins the service thread, so after this no wheel callback can be
  // re-entering schedule() on the (derived) executor being destroyed.
  if (wheel != nullptr) wheel->stop();
}

void ExecutorInterface::enable_progress_probes() {
  std::scoped_lock lock(_resilience_mutex);
  if (_probes != nullptr) return;
  _num_probes = num_workers();
  _probes = std::make_unique<WorkerProbe[]>(_num_probes);
  _probes_raw.store(_probes.get(), std::memory_order_release);
}

std::vector<ExecutorInterface::ProbeSample> ExecutorInterface::sample_probes()
    const {
  WorkerProbe* probes = _probes_raw.load(std::memory_order_acquire);
  if (probes == nullptr) return {};
  std::vector<ProbeSample> out(_num_probes);
  const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  for (std::size_t i = 0; i < _num_probes; ++i) {
    // Read the timestamp first: if `current` is set from a concurrent task
    // start in between, the pairing is off by one task but the age can only
    // be *under*-reported - a stall is never invented.
    const std::int64_t since = probes[i].since_ns.load(std::memory_order_relaxed);
    const Node* node = probes[i].current.load(std::memory_order_relaxed);
    out[i].node = node;
    out[i].busy_for =
        node == nullptr ? std::chrono::nanoseconds{0}
                        : std::chrono::nanoseconds(std::max<std::int64_t>(0, now - since));
    out[i].completed = probes[i].completed.load(std::memory_order_relaxed);
  }
  return out;
}

namespace this_task {

bool is_cancelled() noexcept {
  return tls_error_state != nullptr && tls_error_state->draining();
}

std::optional<std::chrono::nanoseconds> deadline() noexcept {
  if (tls_error_state == nullptr) return std::nullopt;
  const auto t = tls_error_state->deadline();
  if (!t) return std::nullopt;
  return *t - std::chrono::steady_clock::now();
}

}  // namespace this_task

// ---------------------------------------------------------------------------
// WorkStealingExecutor (paper Algorithm 1)
// ---------------------------------------------------------------------------

WorkStealingExecutor::WorkStealingExecutor(std::size_t num_workers,
                                           WorkStealingOptions options)
    : _options(options) {
  if (num_workers == 0) num_workers = 1;
  _locality = options.pin_workers || options.adaptive_steal || options.slab_affinity;

  // Locality layer (DESIGN.md §14), built once before any thread starts.
  // Topology discovery and the per-worker victim orders exist only when a
  // locality option asked for them; the default construction path allocates
  // nothing extra.
  std::vector<std::size_t> assignment;
  if (_locality) {
    _topology = support::CpuTopology::discover();
    if (options.pin_workers) {
      assignment = _topology.assign(num_workers, options.numa_policy);
    }
  }

  _workers.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    auto w = std::make_unique<Worker>(0x9e3779b97f4a7c15ULL ^ (i * 0xbf58476d1ce4e5b9ULL));
    w->id = i;
    // "No proven victim yet": the remembered-victim probe of steal_pass is
    // skipped while last_victim == id, so the first sweep starts unbiased
    // instead of trusting a neighbour nothing was ever stolen from.
    w->last_victim = i;
    if (_locality) {
      w->locality = std::make_unique<WorkerLocality>();
      // Victim locality tiers: with pinned workers, distance comes from the
      // CPU assignment (same core < same node < remote); unpinned workers
      // cannot know their CPU, so every victim sits in the same-node tier
      // and the EWMA ordering alone biases the probe order.
      std::vector<int> tier_of(num_workers, support::CpuTopology::kSameNode);
      if (!assignment.empty()) {
        w->locality->cpu = _topology.cpus()[assignment[i]].cpu;
        for (std::size_t j = 0; j < num_workers; ++j) {
          tier_of[j] = _topology.tier(assignment[i], assignment[j]);
        }
      }
      tier_of[i] = -1;  // never steal from yourself
      w->locality->order.assign(tier_of, support::CpuTopology::kTiers);
    }
    _workers.push_back(std::move(w));
  }
  _threads.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    _threads.emplace_back([this, i] { worker_loop(*_workers[i]); });
  }
}

WorkStealingExecutor::~WorkStealingExecutor() {
  // Join the timer-wheel service thread first: its callbacks re-enter the
  // virtual schedule(), which must not race worker teardown.
  stop_timer_wheel();
  {
    std::scoped_lock lock(_mutex);
    _stop = true;
  }
  for (auto& w : _workers) w->cv.notify_all();
  for (auto& t : _threads) t.join();
}

void WorkStealingExecutor::dump_state(std::ostream& os) const {
  // Diagnostic snapshot from atomics only: safe to call mid-run from any
  // thread (per-worker queue sizes are the WSQ's approximate atomic probe).
  os << "work-stealing executor: " << _workers.size() << " worker(s), "
     << _num_idlers.load(std::memory_order_relaxed) << " parked, central_depth="
     << _num_central.load(std::memory_order_relaxed)
     << ", steals=" << _steals.load(std::memory_order_relaxed)
     << ", cache_hits=" << _cache_hits.load(std::memory_order_relaxed)
     << ", parks=" << _parks.load(std::memory_order_relaxed)
     << ", wakes=" << _wakes.load(std::memory_order_relaxed) << "\n";
  for (const auto& w : _workers) {
    os << "  worker " << w->id << ": queue_depth=" << w->queue.size();
    if (w->locality != nullptr) {
      const auto& loc = *w->locality;
      os << ", cpu=" << loc.cpu
         << ", steals[core/node/remote/central]="
         << loc.tier_steals[0].load(std::memory_order_relaxed) << "/"
         << loc.tier_steals[1].load(std::memory_order_relaxed) << "/"
         << loc.tier_steals[2].load(std::memory_order_relaxed) << "/"
         << loc.tier_steals[3].load(std::memory_order_relaxed)
         << ", steal_attempts="
         << loc.steal_attempts.load(std::memory_order_relaxed)
         << ", slab_placements="
         << loc.slab_placements.load(std::memory_order_relaxed);
      const auto top = loc.order.top_victim();
      if (top != detail::VictimOrder::kNone) {
        os << ", top_victim=" << top << " (score=" << loc.order.score(top)
           << ")";
      }
    }
    os << "\n";
  }
}

ExecutorInterface::SchedulerStats WorkStealingExecutor::stats() const {
  SchedulerStats s;
  s.num_workers = _workers.size();
  s.queue_depth = _num_central.load(std::memory_order_relaxed);
  for (const auto& w : _workers) s.queue_depth += w->queue.size();
  s.num_idlers =
      static_cast<std::size_t>(_num_idlers.load(std::memory_order_relaxed));
  s.steals = _steals.load(std::memory_order_relaxed);
  s.cache_hits = _cache_hits.load(std::memory_order_relaxed);
  s.parks = _parks.load(std::memory_order_relaxed);
  s.wakes = _wakes.load(std::memory_order_relaxed);
  for (const auto& w : _workers) {
    if (w->locality == nullptr) continue;
    const auto& loc = *w->locality;
    s.steals_same_core += loc.tier_steals[0].load(std::memory_order_relaxed);
    s.steals_same_node += loc.tier_steals[1].load(std::memory_order_relaxed);
    s.steals_remote += loc.tier_steals[2].load(std::memory_order_relaxed);
    s.steals_central += loc.tier_steals[3].load(std::memory_order_relaxed);
    s.slab_placements += loc.slab_placements.load(std::memory_order_relaxed);
  }
  return s;
}

std::size_t WorkStealingExecutor::num_tier_steals(int tier) const noexcept {
  std::size_t n = 0;
  if (tier < 0 || tier > 3) return n;
  for (const auto& w : _workers) {
    if (w->locality != nullptr) {
      n += w->locality->tier_steals[static_cast<std::size_t>(tier)].load(
          std::memory_order_relaxed);
    }
  }
  return n;
}

std::size_t WorkStealingExecutor::num_steal_attempts() const noexcept {
  std::size_t n = 0;
  for (const auto& w : _workers) {
    if (w->locality != nullptr) {
      n += w->locality->steal_attempts.load(std::memory_order_relaxed);
    }
  }
  return n;
}

std::size_t WorkStealingExecutor::num_slab_placements() const noexcept {
  std::size_t n = 0;
  for (const auto& w : _workers) {
    if (w->locality != nullptr) {
      n += w->locality->slab_placements.load(std::memory_order_relaxed);
    }
  }
  return n;
}

bool WorkStealingExecutor::all_queues_empty() const noexcept {
  // Called under _mutex right after the central queue has been checked, so
  // only the per-worker queues remain.
  for (const auto& w : _workers) {
    if (!w->queue.empty()) return false;
  }
  return true;
}

void WorkStealingExecutor::schedule(Node* node) {
  if (tls_worker.executor == this) {
    auto* w = static_cast<Worker*>(tls_worker.worker);
    // Fast path (Algorithm 1 lines 16-25): stash into the exclusive cache so
    // the current worker continues a linear chain without touching queues.
    if (_options.enable_worker_cache && w->cache == nullptr) {
      w->cache = node;
      _cache_hits.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    w->queue.push(node);
    // Dekker-style pairing with park(): the push above must be ordered
    // before reading the idler count, and the parking worker's increment is
    // ordered before its emptiness re-check.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (_num_idlers.load(std::memory_order_relaxed) > 0) wake_one(nullptr);
    return;
  }
  // External submitter: go through the central queue (or hand the task
  // directly to a parked worker).
  wake_one(node);
}

void WorkStealingExecutor::schedule_batch(Node* const* nodes, std::size_t n) {
  if (n == 0) return;
  if (n == 1) {
    schedule(nodes[0]);
    return;
  }

  if (tls_worker.executor == this) {
    auto* w = static_cast<Worker*>(tls_worker.worker);
    if (_options.slab_affinity && w->locality != nullptr) {
      schedule_batch_affine(*w, nodes, n);
      return;
    }
    std::size_t i = 0;
    // The first ready successor continues on this worker (linear-chain /
    // depth-first fast path); the rest go to the local queue in one sweep.
    if (_options.enable_worker_cache && w->cache == nullptr) {
      w->cache = nodes[0];
      _cache_hits.fetch_add(1, std::memory_order_relaxed);
      i = 1;
    }
    const std::size_t pushed = n - i;
    for (; i < n; ++i) w->queue.push(nodes[i]);
    if (pushed == 0) return;
    // One Dekker fence and one wake pass for the whole batch (the per-node
    // path pays both per successor).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const int idlers = _num_idlers.load(std::memory_order_relaxed);
    if (idlers > 0) {
      wake_n(std::min(pushed, static_cast<std::size_t>(idlers)));
    }
    return;
  }

  // External submitter: hand tasks straight into the caches of parked
  // workers (precise wakeup) and spill the rest to the central queue, all
  // under a single mutex acquisition per chunk; notifications go out after
  // the lock is released.
  std::size_t i = 0;
  while (i < n) {
    Worker* to_wake[16];
    std::size_t k = 0;
    {
      std::scoped_lock lock(_mutex);
      while (i < n && k < 16 && !_idlers.empty()) {
        Worker* victim = _idlers.back();
        _idlers.pop_back();
        _num_idlers.fetch_sub(1, std::memory_order_relaxed);
        victim->idle = false;
        assert(victim->cache == nullptr);
        victim->cache = nodes[i++];
        to_wake[k++] = victim;
      }
      if (k < 16 || i == n) {
        // Idlers exhausted (or batch fully handed off): spill the remainder.
        for (; i < n; ++i) _central.push_back(nodes[i]);
        _num_central.store(_central.size(), std::memory_order_release);
      }
    }
    if (k > 0) _wakes.fetch_add(k, std::memory_order_relaxed);
    for (std::size_t j = 0; j < k; ++j) to_wake[j]->cv.notify_one();
    if (k < 16) break;  // remainder already spilled under the last lock
  }
}

void WorkStealingExecutor::schedule_batch_affine(Worker& w, Node* const* nodes,
                                                 std::size_t n) {
  // Slab-affine placement (DESIGN.md §14): split the ready batch around the
  // releasing worker's *current* arena slab.  Cold successors (other slabs)
  // are pushed first, so they sit at the deque's steal (FIFO) end where
  // woken thieves take them; hot successors (same slab - memory this core
  // just touched) are pushed last, at the owner's (LIFO) end, and one of
  // them goes straight into the worker cache.  Thieves therefore drain the
  // batch cold-first while hot graph memory stays on the core that owns it.
  static thread_local std::vector<Node*> hot;
  hot.clear();
  // Membership in the current slab is a pure range test against the span
  // cached by worker_loop - no arena scan per successor.
  const std::byte* const slab_base = w.locality->slab_base;
  const std::byte* const slab_end = w.locality->slab_end;
  std::size_t pushed = 0;
  Node* cache = nullptr;
  const bool want_cache = _options.enable_worker_cache && w.cache == nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    const auto* q = reinterpret_cast<const std::byte*>(nodes[i]);
    if (q >= slab_base && q < slab_end) {
      hot.push_back(nodes[i]);
      continue;
    }
    if (cache == nullptr && want_cache && hot.empty()) {
      cache = nodes[i];  // provisional: an affine node replaces it below
      continue;
    }
    w.queue.push(nodes[i]);
    ++pushed;
  }
  const std::size_t cold_pushed = pushed;
  if (!hot.empty()) {
    w.locality->slab_placements.fetch_add(hot.size(), std::memory_order_relaxed);
    if (want_cache) {
      // Prefer continuing on hot memory: a provisional cold cache pick goes
      // to the queue ahead of the hot group, and the cache takes an affine
      // node instead.
      if (cache != nullptr) {
        w.queue.push(cache);
        ++pushed;
      }
      cache = hot.back();
      hot.pop_back();
    }
    for (Node* node : hot) {
      w.queue.push(node);
      ++pushed;
    }
  }
  if (cache != nullptr) {
    w.cache = cache;
    _cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  if (pushed == 0) return;
  // One Dekker fence + one wake pass, as in the flat batch path - but the
  // wake count follows the *cold* tasks (plus one spare when hot work could
  // still overflow this worker), so a hot batch is not scattered across
  // wakeups just because idlers exist; parked workers that do wake steal
  // cold-first by construction.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const int idlers = _num_idlers.load(std::memory_order_relaxed);
  if (idlers > 0) {
    const std::size_t want =
        std::min(pushed, cold_pushed + (pushed > cold_pushed + 1 ? 1 : 0));
    if (want > 0) wake_n(std::min(want, static_cast<std::size_t>(idlers)));
  }
}

void WorkStealingExecutor::wake_one(Node* direct) {
  Worker* victim = nullptr;
  {
    std::scoped_lock lock(_mutex);
    if (_idlers.empty()) {
      if (direct != nullptr) {
        _central.push_back(direct);
        _num_central.store(_central.size(), std::memory_order_release);
      }
      return;
    }
    victim = _idlers.back();
    _idlers.pop_back();
    _num_idlers.fetch_sub(1, std::memory_order_relaxed);
    victim->idle = false;
    if (direct != nullptr) {
      assert(victim->cache == nullptr);
      victim->cache = direct;  // precise wakeup with zero queue traffic
    }
  }
  _wakes.fetch_add(1, std::memory_order_relaxed);
  victim->cv.notify_one();
}

void WorkStealingExecutor::wake_n(std::size_t n) {
  std::size_t woken = 0;
  while (n > 0) {
    Worker* batch[16];
    std::size_t k = 0;
    const std::size_t want = std::min<std::size_t>(n, 16);
    {
      std::scoped_lock lock(_mutex);
      while (k < want && !_idlers.empty()) {
        Worker* victim = _idlers.back();
        _idlers.pop_back();
        _num_idlers.fetch_sub(1, std::memory_order_relaxed);
        victim->idle = false;
        batch[k++] = victim;
      }
    }
    for (std::size_t j = 0; j < k; ++j) batch[j]->cv.notify_one();
    woken += k;
    if (k < want) break;  // idler list exhausted
    n -= k;
  }
  if (woken > 0) _wakes.fetch_add(woken, std::memory_order_relaxed);
}

Node* WorkStealingExecutor::claim_central() {
  // The lock-free probe keeps the mutex out of the (common) empty case.
  if (_num_central.load(std::memory_order_acquire) > 0) {
    std::scoped_lock lock(_mutex);
    if (!_central.empty()) {
      Node* t = _central.front();
      _central.pop_front();
      _num_central.store(_central.size(), std::memory_order_release);
      return t;
    }
  }
  return nullptr;
}

Node* WorkStealingExecutor::steal_pass(Worker& w) {
  if (_options.adaptive_steal && w.locality != nullptr) {
    return steal_pass_adaptive(w);
  }
  const std::size_t n = _workers.size();
  // Try the remembered last victim first (Algorithm 1 line 3); last_victim
  // only ever holds a *proven* victim (set on successful steals below) or
  // the worker's own id when nothing was stolen yet.
  if (w.last_victim != w.id) {
    if (auto t = _workers[w.last_victim]->queue.steal()) {
      _steals.fetch_add(1, std::memory_order_relaxed);
      return *t;
    }
  }
  // Sweep all victims from a random start.
  const std::size_t start = static_cast<std::size_t>(w.rng.below(n));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    if (v == w.id) continue;
    if (auto t = _workers[v]->queue.steal()) {
      w.last_victim = v;
      _steals.fetch_add(1, std::memory_order_relaxed);
      return *t;
    }
  }
  // Fall back to the central overflow queue.
  return claim_central();
}

Node* WorkStealingExecutor::steal_pass_adaptive(Worker& w) {
  // Adaptive victim selection (DESIGN.md §14): probe near tiers first (same
  // core, then same node, then remote), most-productive victim first within
  // each tier (EWMA order), and only widen the sweep to a farther tier when
  // every nearer one came up dry on a previous pass.  A success narrows the
  // next pass back to the tier that produced it, so a worker feeding off a
  // hot neighbour never pays full sweeps; repeated dry passes escalate
  // outward one tier at a time instead of hammering all queues at once.
  WorkerLocality& loc = *w.locality;
  const double alpha = _options.steal_ewma_alpha;
  const int tiers = loc.order.num_tiers();
  std::size_t attempts = 0;  // batched into the atomic once per pass
  for (int t = 0; t < tiers && t <= loc.sweep_width; ++t) {
    for (const std::uint32_t v : loc.order.tier(t)) {
      ++attempts;
      Worker& victim = *_workers[v];
      // Cheap emptiness probe (two relaxed loads) before the fenced steal:
      // most probes of a dry system hit empty queues, and skipping the
      // seq_cst fence + CAS attempt there is most of this path's win.
      if (victim.queue.empty()) {
        loc.order.report(v, false, alpha);
        continue;
      }
      if (auto task = victim.queue.steal()) {
        loc.order.report(v, true, alpha);
        loc.tier_steals[static_cast<std::size_t>(t)].fetch_add(
            1, std::memory_order_relaxed);
        loc.steal_attempts.fetch_add(attempts, std::memory_order_relaxed);
        _steals.fetch_add(1, std::memory_order_relaxed);
        w.last_victim = v;
        loc.sweep_width = t;  // success this near: stay near next pass
        loc.dry_streak = 0;
        return *task;
      }
      loc.order.report(v, false, alpha);
    }
  }
  if (attempts > 0) {
    loc.steal_attempts.fetch_add(attempts, std::memory_order_relaxed);
  }
  // Every probed tier was dry: widen the next pass by one tier.  Once the
  // sweep is already maximally wide, further dry passes feed the give-up
  // streak that eventually sends this worker to park (worker_loop) instead
  // of yield-spinning through a starved system.
  if (loc.sweep_width + 1 < tiers) {
    ++loc.sweep_width;
  } else {
    ++loc.dry_streak;
  }
  if (Node* t = claim_central()) {
    loc.tier_steals[3].fetch_add(1, std::memory_order_relaxed);
    loc.dry_streak = 0;
    return t;
  }
  return nullptr;
}

bool WorkStealingExecutor::steal_exhausted(const Worker& w) const noexcept {
  // Terminal adaptive backoff (DESIGN.md §14): the worker has swept its
  // widest tier adaptive_park_patience times in a row - plus the central
  // queue - without finding anything.  Parking now is safe (park() re-checks
  // under the lock and producers wake idlers on every push); it removes a
  // provably-starved thief from the CPU rotation rather than letting it
  // yield-spin against the workers that still have work to publish.
  return _options.adaptive_steal && _options.adaptive_park_patience > 0 &&
         w.locality != nullptr &&
         w.locality->dry_streak >= _options.adaptive_park_patience;
}

Node* WorkStealingExecutor::try_pop_or_steal(Worker& w) {
  if (auto t = w.queue.pop()) return *t;

  for (int round = 0; round < _options.steal_rounds; ++round) {
    if (Node* t = steal_pass(w)) return t;
    if (steal_exhausted(w)) break;  // adaptive give-up: park, don't yield
    std::this_thread::yield();
  }
  // Last-chance central probe: external submissions must drain even when
  // stealing is disabled (steal_rounds = 0).
  return claim_central();
}

Node* WorkStealingExecutor::spin_for_work(Worker& w) {
  // Bounded exponential backoff: ride out short work gaps (bursty graphs,
  // inter-topology gaps) without the park/wake round-trip.  The worker is
  // not registered as an idler while spinning, so producers skip the wake
  // syscall entirely and the spinner picks the task up via steal_pass.
  for (int spin = 0; spin < _options.spin_tries; ++spin) {
    // Adaptive give-up: once the dry streak crosses the patience threshold
    // mid-spin, fall through to park instead of finishing the backoff.
    if (steal_exhausted(w)) return nullptr;
    const int pauses = 1 << std::min(spin, 6);
    for (int p = 0; p < pauses; ++p) spin_pause();
    // Donate the time slice once backoff saturates (essential on hosts with
    // fewer cores than workers: the producer needs CPU to publish work).
    if (spin >= 4) std::this_thread::yield();
    if (Node* t = steal_pass(w)) return t;
  }
  return nullptr;
}

bool WorkStealingExecutor::park(Worker& w, Node*& out) {
  std::unique_lock lock(_mutex);
  if (_stop) return false;

  // Two-phase commit against concurrent pushes: advertise intent, then
  // re-check all queues; a pusher either sees the advertised idler (and
  // wakes us) or we see its pushed task here.
  _num_idlers.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!_central.empty()) {
    // Claim central work directly under the park lock - the guaranteed
    // drain path for external submissions when stealing is disabled.
    out = _central.front();
    _central.pop_front();
    _num_central.store(_central.size(), std::memory_order_release);
    _num_idlers.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  if (!all_queues_empty()) {
    _num_idlers.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  w.idle = true;
  _idlers.push_back(&w);
  _parks.fetch_add(1, std::memory_order_relaxed);
  w.cv.wait(lock, [&] { return !w.idle || _stop; });

  if (w.idle) {
    // Woken by stop while still parked: deregister ourselves.
    std::erase(_idlers, &w);
    _num_idlers.fetch_sub(1, std::memory_order_relaxed);
    w.idle = false;
    return false;
  }
  return !_stop || w.cache != nullptr;
}

void WorkStealingExecutor::worker_loop(Worker& w) {
  tls_worker.executor = this;
  tls_worker.worker = &w;

  // Locality layer: pin this thread to its assigned CPU before touching any
  // work, and track the arena slab of the executing task only when the
  // slab-affinity knob asked for it (the cookie lookup is O(slabs)).
  if (w.locality != nullptr && w.locality->cpu >= 0) {
    support::pin_current_thread(w.locality->cpu);
  }
  const bool track_slab = _options.slab_affinity && w.locality != nullptr;

  Node* task = nullptr;
  for (;;) {
    task = try_pop_or_steal(w);
    if (task == nullptr && _options.spin_tries > 0 && !steal_exhausted(w)) {
      task = spin_for_work(w);
    }
    if (task == nullptr) {
      Node* handed = nullptr;
      if (!park(w, handed)) break;
      if (w.locality != nullptr) w.locality->dry_streak = 0;  // fresh wakeup
      task = handed;
      // Algorithm 1 line 14: a precise wakeup may have deposited a task
      // directly into our cache.
      if (task == nullptr && w.cache != nullptr) {
        task = w.cache;
        w.cache = nullptr;
      }
      if (task == nullptr) continue;
    }
    // Algorithm 1 lines 16-25: execute, then keep draining the cache so a
    // linear chain runs back-to-back without any queue operation.
    while (task != nullptr) {
      if (track_slab) {
        // Refresh the cached slab span only when execution actually leaves
        // the current slab; the steady state (a worker chewing through one
        // slab's nodes) pays two pointer compares per task.
        WorkerLocality& loc = *w.locality;
        const auto* q = reinterpret_cast<const std::byte*>(task);
        if (q < loc.slab_base || q >= loc.slab_end) {
          const auto span = task->slab_span();
          loc.slab_base = span.base;
          loc.slab_end = span.end;
          loc.slab = reinterpret_cast<std::uintptr_t>(span.base);
        }
      }
      run_task(w.id, task);
      if (w.cache != nullptr) {
        task = w.cache;
        w.cache = nullptr;
      } else {
        task = nullptr;
      }
    }
    // Algorithm 1 lines 26-28: occasionally wake an idler to balance load.
    if (_options.balance_wake_probability > 0.0 &&
        w.rng.uniform() < _options.balance_wake_probability &&
        _num_idlers.load(std::memory_order_relaxed) > 0) {
      wake_one(nullptr);
    }
  }

  tls_worker.executor = nullptr;
  tls_worker.worker = nullptr;
}

// ---------------------------------------------------------------------------
// SimpleExecutor
// ---------------------------------------------------------------------------

SimpleExecutor::SimpleExecutor(std::size_t num_workers) {
  if (num_workers == 0) num_workers = 1;
  _threads.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    _threads.emplace_back([this, i] { worker_loop(i); });
  }
}

SimpleExecutor::~SimpleExecutor() {
  stop_timer_wheel();  // see WorkStealingExecutor::~WorkStealingExecutor
  {
    std::scoped_lock lock(_mutex);
    _stop = true;
  }
  _cv.notify_all();
  for (auto& t : _threads) t.join();
}

void SimpleExecutor::schedule(Node* node) {
  {
    std::scoped_lock lock(_mutex);
    _queue.push_back(node);
  }
  _cv.notify_one();
}

void SimpleExecutor::schedule_batch(Node* const* nodes, std::size_t n) {
  if (n == 0) return;
  {
    std::scoped_lock lock(_mutex);
    for (std::size_t i = 0; i < n; ++i) _queue.push_back(nodes[i]);
  }
  if (n == 1) {
    _cv.notify_one();
  } else {
    _cv.notify_all();
  }
}

void SimpleExecutor::dump_state(std::ostream& os) const {
  std::size_t depth = 0;
  {
    std::scoped_lock lock(_mutex);
    depth = _queue.size();
  }
  os << "simple executor: " << _threads.size() << " worker(s), central_depth=" << depth
     << "\n";
}

ExecutorInterface::SchedulerStats SimpleExecutor::stats() const {
  SchedulerStats s;
  s.num_workers = _threads.size();
  {
    std::scoped_lock lock(_mutex);
    s.queue_depth = _queue.size();
  }
  return s;
}

void SimpleExecutor::worker_loop(std::size_t worker_id) {
  for (;;) {
    Node* task = nullptr;
    {
      std::unique_lock lock(_mutex);
      _cv.wait(lock, [&] { return _stop || !_queue.empty(); });
      if (_queue.empty()) return;  // stop and drained
      task = _queue.front();
      _queue.pop_front();
    }
    run_task(worker_id, task);
  }
}

std::shared_ptr<WorkStealingExecutor> make_executor(std::size_t n,
                                                    WorkStealingOptions options) {
  return std::make_shared<WorkStealingExecutor>(n, options);
}

}  // namespace tf
