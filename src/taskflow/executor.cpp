#include "taskflow/executor.hpp"

#include <cassert>

#include "taskflow/flow_builder.hpp"
#include "taskflow/topology.hpp"

namespace tf {

namespace {
// Identifies the worker context of the current thread, so schedule() can use
// the worker-local cache / local queue fast paths (Algorithm 1).
struct TlsWorker {
  void* executor{nullptr};
  void* worker{nullptr};
};
thread_local TlsWorker tls_worker;
}  // namespace

// ---------------------------------------------------------------------------
// ExecutorInterface: shared invocation + finalization logic
// ---------------------------------------------------------------------------

void ExecutorInterface::run_task(std::size_t worker_id, Node* node) {
  ExecutorObserverInterface* obs = _observer.get();

  if (std::holds_alternative<StaticWork>(node->_work)) {
    if (obs) obs->on_entry(worker_id, *node);
    std::get<StaticWork>(node->_work)();
    if (obs) obs->on_exit(worker_id, *node);
  } else if (std::holds_alternative<DynamicWork>(node->_work)) {
    if (!node->_spawned) {
      node->_spawned = true;
      node->_subgraph = std::make_unique<Graph>();
      SubflowBuilder builder(*node->_subgraph, num_workers());

      if (obs) obs->on_entry(worker_id, *node);
      std::get<DynamicWork>(node->_work)(builder);
      if (obs) obs->on_exit(worker_id, *node);

      Graph& sub = *node->_subgraph;
      if (!sub.empty()) {
        node->_detached = builder.detached();
        std::vector<Node*> sources;
        for (auto& child : sub) {
          child._topology = node->_topology;
          child._join_counter.store(child._static_dependents, std::memory_order_relaxed);
          if (!builder.detached()) child._parent = node;
          if (child._static_dependents == 0) sources.push_back(&child);
        }
        assert(!sources.empty() && "a spawned subflow must be acyclic");
        // Children become live tasks of the same topology before any of them
        // can possibly run, so the topology cannot complete early.
        node->_topology->add_active(static_cast<long>(sub.size()));

        if (!builder.detached()) {
          // Joined subflow: defer this node's finalization until every child
          // has finished (the last child triggers it through _join_counter).
          node->_join_counter.store(static_cast<int>(sub.size()),
                                    std::memory_order_release);
          schedule_batch(sources);
          return;
        }
        schedule_batch(sources);
      }
    }
  }
  // Placeholder (monostate) nodes fall through: they only synchronize.

  finalize(node);
}

void ExecutorInterface::finalize(Node* node) {
  // Release successors whose dependents all finished.
  for (Node* succ : node->_successors) {
    if (succ->_join_counter.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      schedule(succ);
    }
  }

  Node* parent = node->_parent;
  Topology* topology = node->_topology;
  assert(topology != nullptr);
  topology->retire_one();

  // Joined-subflow bookkeeping: the last finishing child finalizes the
  // parent (which releases the parent's successors), recursing upward
  // through nested subflows.
  if (parent != nullptr &&
      parent->_join_counter.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finalize(parent);
  }
}

// ---------------------------------------------------------------------------
// WorkStealingExecutor (paper Algorithm 1)
// ---------------------------------------------------------------------------

WorkStealingExecutor::WorkStealingExecutor(std::size_t num_workers,
                                           WorkStealingOptions options)
    : _options(options) {
  if (num_workers == 0) num_workers = 1;
  _workers.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    auto w = std::make_unique<Worker>(0x9e3779b97f4a7c15ULL ^ (i * 0xbf58476d1ce4e5b9ULL));
    w->id = i;
    w->last_victim = (i + 1) % num_workers;
    _workers.push_back(std::move(w));
  }
  _threads.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    _threads.emplace_back([this, i] { worker_loop(*_workers[i]); });
  }
}

WorkStealingExecutor::~WorkStealingExecutor() {
  {
    std::scoped_lock lock(_mutex);
    _stop = true;
  }
  for (auto& w : _workers) w->cv.notify_all();
  for (auto& t : _threads) t.join();
}

bool WorkStealingExecutor::all_queues_empty() const noexcept {
  if (!_central.empty()) return false;
  for (const auto& w : _workers) {
    if (!w->queue.empty()) return false;
  }
  return true;
}

void WorkStealingExecutor::schedule(Node* node) {
  if (tls_worker.executor == this) {
    auto* w = static_cast<Worker*>(tls_worker.worker);
    // Fast path (Algorithm 1 lines 16-25): stash into the exclusive cache so
    // the current worker continues a linear chain without touching queues.
    if (_options.enable_worker_cache && w->cache == nullptr) {
      w->cache = node;
      _cache_hits.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    w->queue.push(node);
    // Dekker-style pairing with park(): the push above must be ordered
    // before reading the idler count, and the parking worker's increment is
    // ordered before its emptiness re-check.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (_num_idlers.load(std::memory_order_relaxed) > 0) wake_one(nullptr);
    return;
  }
  // External submitter: go through the central queue (or hand the task
  // directly to a parked worker).
  wake_one(node);
}

void WorkStealingExecutor::schedule_batch(const std::vector<Node*>& nodes) {
  for (Node* n : nodes) schedule(n);
}

void WorkStealingExecutor::wake_one(Node* direct) {
  Worker* victim = nullptr;
  {
    std::scoped_lock lock(_mutex);
    if (_idlers.empty()) {
      if (direct != nullptr) _central.push_back(direct);
      return;
    }
    victim = _idlers.back();
    _idlers.pop_back();
    _num_idlers.fetch_sub(1, std::memory_order_relaxed);
    victim->idle = false;
    if (direct != nullptr) {
      assert(victim->cache == nullptr);
      victim->cache = direct;  // precise wakeup with zero queue traffic
    }
  }
  victim->cv.notify_one();
}

Node* WorkStealingExecutor::try_pop_or_steal(Worker& w) {
  if (auto t = w.queue.pop()) return *t;

  const std::size_t n = _workers.size();
  for (int round = 0; round < _options.steal_rounds; ++round) {
    // Try the remembered last victim first (Algorithm 1 line 3).
    if (w.last_victim != w.id) {
      if (auto t = _workers[w.last_victim]->queue.steal()) {
        _steals.fetch_add(1, std::memory_order_relaxed);
        return *t;
      }
    }
    // Sweep all victims from a random start.
    const std::size_t start = static_cast<std::size_t>(w.rng.below(n));
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t v = (start + k) % n;
      if (v == w.id) continue;
      if (auto t = _workers[v]->queue.steal()) {
        w.last_victim = v;
        _steals.fetch_add(1, std::memory_order_relaxed);
        return *t;
      }
    }
    // Fall back to the central overflow queue.
    {
      std::scoped_lock lock(_mutex);
      if (!_central.empty()) {
        Node* t = _central.front();
        _central.pop_front();
        return t;
      }
    }
    std::this_thread::yield();
  }
  return nullptr;
}

bool WorkStealingExecutor::park(Worker& w) {
  std::unique_lock lock(_mutex);
  if (_stop) return false;

  // Two-phase commit against concurrent pushes: advertise intent, then
  // re-check all queues; a pusher either sees the advertised idler (and
  // wakes us) or we see its pushed task here.
  _num_idlers.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!all_queues_empty()) {
    _num_idlers.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  w.idle = true;
  _idlers.push_back(&w);
  w.cv.wait(lock, [&] { return !w.idle || _stop; });

  if (w.idle) {
    // Woken by stop while still parked: deregister ourselves.
    std::erase(_idlers, &w);
    _num_idlers.fetch_sub(1, std::memory_order_relaxed);
    w.idle = false;
    return false;
  }
  return !_stop || w.cache != nullptr;
}

void WorkStealingExecutor::worker_loop(Worker& w) {
  tls_worker.executor = this;
  tls_worker.worker = &w;

  Node* task = nullptr;
  for (;;) {
    task = try_pop_or_steal(w);
    if (task == nullptr) {
      if (!park(w)) break;
      // Algorithm 1 line 14: a precise wakeup may have deposited a task
      // directly into our cache.
      if (w.cache != nullptr) {
        task = w.cache;
        w.cache = nullptr;
      }
      if (task == nullptr) continue;
    }
    // Algorithm 1 lines 16-25: execute, then keep draining the cache so a
    // linear chain runs back-to-back without any queue operation.
    while (task != nullptr) {
      run_task(w.id, task);
      if (w.cache != nullptr) {
        task = w.cache;
        w.cache = nullptr;
      } else {
        task = nullptr;
      }
    }
    // Algorithm 1 lines 26-28: occasionally wake an idler to balance load.
    if (_options.balance_wake_probability > 0.0 &&
        w.rng.uniform() < _options.balance_wake_probability &&
        _num_idlers.load(std::memory_order_relaxed) > 0) {
      wake_one(nullptr);
    }
  }

  tls_worker.executor = nullptr;
  tls_worker.worker = nullptr;
}

// ---------------------------------------------------------------------------
// SimpleExecutor
// ---------------------------------------------------------------------------

SimpleExecutor::SimpleExecutor(std::size_t num_workers) {
  if (num_workers == 0) num_workers = 1;
  _threads.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    _threads.emplace_back([this, i] { worker_loop(i); });
  }
}

SimpleExecutor::~SimpleExecutor() {
  {
    std::scoped_lock lock(_mutex);
    _stop = true;
  }
  _cv.notify_all();
  for (auto& t : _threads) t.join();
}

void SimpleExecutor::schedule(Node* node) {
  {
    std::scoped_lock lock(_mutex);
    _queue.push_back(node);
  }
  _cv.notify_one();
}

void SimpleExecutor::worker_loop(std::size_t worker_id) {
  for (;;) {
    Node* task = nullptr;
    {
      std::unique_lock lock(_mutex);
      _cv.wait(lock, [&] { return _stop || !_queue.empty(); });
      if (_queue.empty()) return;  // stop and drained
      task = _queue.front();
      _queue.pop_front();
    }
    run_task(worker_id, task);
  }
}

std::shared_ptr<WorkStealingExecutor> make_executor(std::size_t n,
                                                    WorkStealingOptions options) {
  return std::make_shared<WorkStealingExecutor>(n, options);
}

}  // namespace tf
