#include "service/metrics.hpp"

#include <bit>
#include <cmath>
#include <ostream>

namespace tf {

const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::ok: return "ok";
    case Outcome::degraded: return "degraded";
    case Outcome::rejected: return "rejected";
    case Outcome::shed: return "shed";
    case Outcome::timed_out: return "timed_out";
    case Outcome::cancelled: return "cancelled";
    case Outcome::failed: return "failed";
    case Outcome::shutdown_rejected: return "shutdown_rejected";
  }
  return "unknown";
}

namespace {

// Bucket of a nanosecond value: octave = position of the highest set bit,
// sub-bucket = the next kSubBits bits (linear refinement within the octave).
std::size_t bucket_of(std::uint64_t ns) noexcept {
  if (ns < LatencyHistogram::kSub) return static_cast<std::size_t>(ns);
  const int octave = 63 - std::countl_zero(ns);
  const std::uint64_t sub =
      (ns >> (octave - static_cast<int>(LatencyHistogram::kSubBits))) &
      (LatencyHistogram::kSub - 1);
  return static_cast<std::size_t>(octave) * LatencyHistogram::kSub +
         static_cast<std::size_t>(sub);
}

// Representative value (ns) of a bucket: midpoint of its covered range.
double bucket_value_ns(std::size_t b) noexcept {
  if (b < LatencyHistogram::kSub) return static_cast<double>(b);
  const std::size_t octave = b / LatencyHistogram::kSub;
  const std::size_t sub = b % LatencyHistogram::kSub;
  const double base = std::ldexp(1.0, static_cast<int>(octave));
  const double width = base / LatencyHistogram::kSub;
  return base + (static_cast<double>(sub) + 0.5) * width;
}

}  // namespace

void LatencyHistogram::record(std::chrono::nanoseconds latency) noexcept {
  const auto ns = static_cast<std::uint64_t>(latency.count() < 0 ? 0 : latency.count());
  _bucket[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  _count.fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::percentile_us(double p) const noexcept {
  const std::uint64_t n = _count.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  auto target = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(n));
  if (target == 0) target = 1;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += _bucket[b].load(std::memory_order_relaxed);
    if (cum >= target) return bucket_value_ns(b) / 1000.0;
  }
  return bucket_value_ns(kBuckets - 1) / 1000.0;
}

std::uint64_t MetricsSnapshot::accounted() const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : outcomes) sum += c;
  return sum;
}

MetricsSnapshot MetricsRegistry::snapshot(const Executor& executor) const {
  MetricsSnapshot s;
  s.submitted = submitted();
  for (std::size_t i = 0; i < kNumOutcomes; ++i) {
    s.outcomes[i] = _outcomes[i].load(std::memory_order_relaxed);
  }
  s.p50_us = _latency.percentile_us(50);
  s.p99_us = _latency.percentile_us(99);
  s.p999_us = _latency.percentile_us(99.9);
  s.shed_rate = s.submitted == 0
                    ? 0
                    : static_cast<double>(s.outcome(Outcome::shed)) /
                          static_cast<double>(s.submitted);
  s.executor = executor.metrics();
  return s;
}

void render_healthz(std::ostream& os, const std::string& status,
                    const MetricsSnapshot& s) {
  os << "status " << status << "\n"
     << "submitted " << s.submitted << "\n";
  for (std::size_t i = 0; i < kNumOutcomes; ++i) {
    os << to_string(static_cast<Outcome>(i)) << " " << s.outcomes[i] << "\n";
  }
  os << "accounted " << s.accounted() << "\n"
     << "p50_us " << s.p50_us << "\n"
     << "p99_us " << s.p99_us << "\n"
     << "p999_us " << s.p999_us << "\n"
     << "shed_rate " << s.shed_rate << "\n"
     << "queue_depth " << s.executor.num_topologies << "\n"
     << "scheduler_queue_depth " << s.executor.scheduler.queue_depth << "\n"
     << "workers " << s.executor.scheduler.num_workers << "\n"
     << "adm_admitted " << s.executor.admitted << "\n"
     << "adm_rejected " << s.executor.rejected << "\n"
     << "adm_shed " << s.executor.shed << "\n"
     << "adm_pending " << s.executor.adm_pending << "\n"
     << "adm_started " << s.executor.adm_started << "\n"
     << "breaker_trips " << s.executor.breaker_trips << "\n"
     << "breakers_open " << s.executor.breakers_open << "\n";
}

}  // namespace tf
