// server.hpp - tf::Server: the end-to-end serving layer over the taskflow
// admission/resilience primitives (DESIGN.md §13).
//
// A Server owns one tf::Executor configured with admission control and
// accepts requests from N in-process client threads.  Each client thread
// calls Server::connect() once and submits through its ServerClient, which
// owns a small window of *slots*; each slot is a reusable composed /
// conditional pipeline taskflow:
//
//     ingest ──> validate ──0──> [process module: handle(retry+fallback)]
//                    │                        │
//                    1──> degrade (respond)   └──> respond
//
// `validate` is a condition task (malformed requests branch straight to the
// degraded response); `process` is a module task composed of the slot's
// handler taskflow (retry + fallback-to-degraded attach to the handler, so a
// chaos exception that exhausts its retries still produces a degraded
// response instead of a failure).  Each submission runs under a RunPolicy
// carrying the server's deadline and the request's priority band, so the
// executor's backpressure / shedding / fairness / breaker machinery applies
// per request.
//
// Outcome accounting (the zero-lost-responses contract): every submit()
// tallies exactly one Outcome through the server's MetricsRegistry - door
// rejections immediately, everything else when the slot's handle is
// harvested (on window reuse, drain(), or after shutdown()).  The soak test
// asserts the counter identities at quiescence.
//
// Chaos mode (ChaosOptions) deterministically injects malformed requests,
// stage exceptions, and stage stalls from a per-slot seeded stream; slow
// clients are the storm driver's half (it simply sleeps between submits).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/metrics.hpp"
#include "support/rng.hpp"
#include "taskflow/taskflow.hpp"

namespace tf {

/// Deterministic fault injection of the request pipeline.  Rates are
/// probabilities in [0, 1], drawn per request from a seeded per-slot stream
/// (reproducible storms; REPRO_FAULT_SEED-style).
struct ChaosOptions {
  bool enabled{false};
  /// P(request is malformed): the validate condition branches straight to
  /// the degraded response.
  double malformed_rate{0.0};
  /// P(one handler attempt throws).  Independent per attempt, so retries
  /// usually recover and only unlucky streaks fall to the fallback.
  double exception_rate{0.0};
  /// P(the handler stalls for `stall` before finishing).
  double stall_rate{0.0};
  std::chrono::microseconds stall{200};
  std::uint64_t seed{0x5eed5eed};
};

/// Server configuration: executor shape + per-request policy + chaos.
struct ServerOptions {
  std::size_t num_workers{2};
  /// Admission-control knobs of the owned executor (bounds, watermark,
  /// fairness, breaker).  All-default = unbounded admission.
  ExecutorOptions executor{};
  /// RunPolicy::timeout of every request; 0 = no deadline.
  std::chrono::nanoseconds deadline{0};
  /// Backpressure vs fail-fast at the admission bound.
  AdmissionPolicy admission{AdmissionPolicy::block};
  /// Bound on a blocked submission's wait; 0 = wait indefinitely.
  std::chrono::nanoseconds admission_timeout{0};
  /// Handler retry budget (total attempts) and backoff before a retry.
  int max_attempts{2};
  std::chrono::nanoseconds retry_backoff{std::chrono::microseconds(50)};
  /// In-flight requests each client pipelines before submit() harvests the
  /// oldest (also the number of pipeline slots built per client).
  std::size_t client_window{4};
  ChaosOptions chaos{};
};

/// One request.  `priority` maps to the RunPolicy band (0 = low .. 2 =
/// high); `work` is the simulated handler cost.
struct Request {
  std::uint64_t id{0};
  int priority{1};
  std::chrono::microseconds work{20};
};

/// One accounted response.  `latency` is admission→response for completed
/// (ok/degraded) requests, zero otherwise.
struct Response {
  std::uint64_t id{0};
  Outcome outcome{Outcome::ok};
  std::chrono::nanoseconds latency{0};
};

class Server;

/// Per-client-thread submission endpoint (not thread-safe: one ServerClient
/// per client thread, the server side is).  Owns `client_window` pipeline
/// slots; every submit() eventually yields exactly one Response, delivered
/// to the optional sink and tallied in the server's MetricsRegistry.
class ServerClient {
 public:
  /// Submit one request.  May block on window harvest and (AdmissionPolicy::
  /// block) admission backpressure.  When the window is full the oldest
  /// slot's Response is harvested first (delivered through the sink, if
  /// set); door rejections are delivered inline.
  void submit(const Request& request);

  /// Harvest every outstanding slot (blocks until their handles are ready).
  void drain();

  /// Submit-and-wait convenience: the window is bypassed (the request's own
  /// handle is harvested immediately).
  Response call(const Request& request);

  /// Per-response hook (latency collection, per-client tallies); called on
  /// this client's thread during submit()/drain().
  void set_response_sink(std::function<void(const Response&)> sink) {
    _sink = std::move(sink);
  }

  [[nodiscard]] std::uint64_t submitted() const noexcept { return _submitted; }
  [[nodiscard]] std::uint64_t count(Outcome o) const noexcept {
    return _counts[static_cast<std::size_t>(o)];
  }

 private:
  friend class Server;

  /// One reusable pipeline instance.  Reused only after harvest, so the
  /// non-atomic per-request fields are never touched while in flight.
  struct Slot {
    Taskflow handler;   // the composed "process" module target
    Taskflow pipeline;  // ingest -> validate -> process/degrade -> respond
    ExecutionHandle handle;
    bool inflight{false};

    std::uint64_t id{0};
    std::chrono::microseconds work{0};
    std::chrono::steady_clock::time_point admitted_at{};
    std::chrono::steady_clock::time_point completed_at{};
    bool malformed{false};         // chaos draw: validate branches to degrade
    int throwing_attempts{0};      // chaos draw: handler attempts that throw
    bool stalling{false};          // chaos draw: handler stalls once
    std::chrono::microseconds _chaos_stall{0};  // stall duration when stalling
    std::atomic<int> attempt{0};   // handler attempt counter (worker-side)
    std::atomic<bool> degraded{false};
    std::atomic<bool> responded{false};  // respond/degrade stage ran
  };

  ServerClient(Server& server, std::uint64_t chaos_seed);
  void build_slot(Slot& slot);
  void harvest(Slot& slot);
  void deliver(const Response& r);
  [[nodiscard]] Response classify(Slot& slot);

  Server* _server;
  std::vector<std::unique_ptr<Slot>> _slots;
  std::uint64_t _seq{0};  // submissions started (slot = _seq % window)
  std::uint64_t _submitted{0};
  std::array<std::uint64_t, kNumOutcomes> _counts{};
  std::function<void(const Response&)> _sink;
  Response _last{};  // most recently delivered response (for call())
  support::Xoshiro256 _chaos_rng;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  /// Drains via shutdown(ShutdownMode::drain).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register a client endpoint (thread-safe; typically once per client
  /// thread).  The returned reference lives as long as the server.
  ServerClient& connect();

  /// Stop accepting (subsequent submits tally Outcome::shutdown_rejected
  /// without touching the executor) and shut the executor down.  drain lets
  /// queued and running requests finish; abort cancels them (their
  /// responses harvest as cancelled).  On return every in-flight handle is
  /// ready - clients still call drain() to harvest and account them.
  void shutdown(ShutdownMode mode = ShutdownMode::drain);

  [[nodiscard]] bool is_shutdown() const noexcept {
    return _executor.is_shutdown();
  }

  /// Counter + percentile + executor-state snapshot (DESIGN.md §13).
  [[nodiscard]] MetricsSnapshot metrics() const {
    return _registry.snapshot(_executor);
  }

  /// The /healthz probe body: "status ok|overloaded|draining" plus the
  /// snapshot rendered one key per line.
  [[nodiscard]] std::string healthz() const;

  /// Human-readable state dump: healthz + the executor's dump_state.
  void dump_state(std::ostream& os) const;

  [[nodiscard]] Executor& executor() noexcept { return _executor; }
  [[nodiscard]] const ServerOptions& options() const noexcept { return _options; }
  [[nodiscard]] MetricsRegistry& registry() noexcept { return _registry; }

 private:
  friend class ServerClient;

  ServerOptions _options;
  Executor _executor;
  MetricsRegistry _registry;

  std::mutex _clients_mutex;
  std::deque<std::unique_ptr<ServerClient>> _clients;
};

}  // namespace tf
