// probe.hpp - HealthzProbe: a minimal POSIX-socket /healthz listener for the
// demo binary (examples/overload_server).  Binds a loopback TCP port (0 =
// ephemeral), runs one accept-loop thread, and answers every connection with
// an HTTP/1.0 200 whose body is Server::healthz().  Deliberately tiny: one
// blocking accept loop, one response per connection, no keep-alive - the
// probe is an observability tap, not a request path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace tf {

class Server;

class HealthzProbe {
 public:
  /// Bind 127.0.0.1:`port` (0 = pick an ephemeral port) and start the accept
  /// thread.  Returns false (and stays stopped) if sockets are unavailable.
  bool start(Server& server, std::uint16_t port = 0);

  /// Close the listener and join the accept thread.  Idempotent.
  void stop();

  /// The bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return _port; }
  [[nodiscard]] bool running() const noexcept {
    return _running.load(std::memory_order_acquire);
  }

  ~HealthzProbe() { stop(); }

 private:
  void accept_loop();

  Server* _server{nullptr};
  int _listen_fd{-1};
  std::uint16_t _port{0};
  std::atomic<bool> _running{false};
  std::thread _thread;
};

/// One-shot client helper (tests/demo): connect to 127.0.0.1:`port`, read
/// the whole response, return it.  Empty string on connection failure.
[[nodiscard]] std::string probe_fetch(std::uint16_t port);

}  // namespace tf
