#include "service/server.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace tf {

namespace {

/// Injected handler failure (chaos mode).  A plain runtime_error subtype so
/// the retry/fallback machinery treats it like any user exception.
struct ChaosError : std::runtime_error {
  ChaosError() : std::runtime_error("chaos: injected handler exception") {}
};

/// Simulated handler cost: busy-spin (the work is CPU-bound by contract);
/// cancel-aware so deadline-cancelled and abort-shutdown runs drain
/// promptly, and long waits yield so an oversubscribed host keeps moving.
void busy_spin(std::chrono::microseconds us) {
  if (us.count() <= 0) return;
  const auto end = std::chrono::steady_clock::now() + us;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= end || tf::this_task::is_cancelled()) return;
    if (end - now > std::chrono::microseconds(500)) std::this_thread::yield();
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ServerClient
// ---------------------------------------------------------------------------

ServerClient::ServerClient(Server& server, std::uint64_t chaos_seed)
    : _server(&server), _chaos_rng(chaos_seed) {
  const std::size_t window =
      std::max<std::size_t>(1, server._options.client_window);
  _slots.reserve(window);
  for (std::size_t i = 0; i < window; ++i) {
    _slots.push_back(std::make_unique<Slot>());
    build_slot(*_slots.back());
  }
}

void ServerClient::build_slot(Slot& slot) {
  Slot* s = &slot;
  const ServerOptions& opts = _server->_options;

  // The handler module target: one task carrying the simulated work plus
  // the chaos injection points.  Retry + fallback attach HERE - the policy
  // is deep-copied by module instantiation, so a chaos exception that
  // exhausts its retries degrades the response instead of failing the run.
  Task handle = slot.handler.emplace([s] {
    const int attempt = s->attempt.fetch_add(1, std::memory_order_relaxed);
    if (attempt < s->throwing_attempts) throw ChaosError{};
    if (s->stalling) busy_spin(s->_chaos_stall);
    busy_spin(s->work);
  });
  handle.name("handle");
  RetryPolicy retry;
  retry.max_attempts = std::max(1, opts.max_attempts);
  retry.backoff = opts.retry_backoff;
  handle.retry(retry);
  handle.fallback([s] { s->degraded.store(true, std::memory_order_relaxed); });

  // The request pipeline: ingest -> validate (condition) -> process (module)
  // -> respond, with the malformed branch short-circuiting to a degraded
  // response.  Forward-built, so dispatch takes the O(V) fast accept.
  Task ingest = slot.pipeline.emplace([] {});
  ingest.name("ingest");
  Task validate = slot.pipeline.emplace(
      [s]() -> int { return s->malformed ? 1 : 0; });
  validate.name("validate");
  Task process = slot.pipeline.composed_of(slot.handler);
  process.name("process");
  Task respond = slot.pipeline.emplace([s] {
    s->completed_at = std::chrono::steady_clock::now();
    s->responded.store(true, std::memory_order_relaxed);
  });
  respond.name("respond");
  Task degrade = slot.pipeline.emplace([s] {
    s->degraded.store(true, std::memory_order_relaxed);
    s->completed_at = std::chrono::steady_clock::now();
    s->responded.store(true, std::memory_order_relaxed);
  });
  degrade.name("degrade");

  ingest.precede(validate);
  validate.precede(process);  // branch 0: valid request
  validate.precede(degrade);  // branch 1: malformed -> degraded response
  process.precede(respond);
}

void ServerClient::submit(const Request& request) {
  Slot& slot = *_slots[_seq % _slots.size()];
  if (slot.inflight) harvest(slot);  // window full: harvest the oldest

  const ServerOptions& opts = _server->_options;
  slot.id = request.id;
  slot.work = request.work;
  slot.attempt.store(0, std::memory_order_relaxed);
  slot.degraded.store(false, std::memory_order_relaxed);
  slot.responded.store(false, std::memory_order_relaxed);
  slot.malformed = false;
  slot.throwing_attempts = 0;
  slot.stalling = false;
  if (opts.chaos.enabled) {
    slot.malformed = _chaos_rng.uniform() < opts.chaos.malformed_rate;
    // Geometric draw: each attempt fails independently, so retries usually
    // absorb the fault and only streaks reach the fallback.
    while (slot.throwing_attempts < opts.max_attempts &&
           _chaos_rng.uniform() < opts.chaos.exception_rate) {
      ++slot.throwing_attempts;
    }
    slot.stalling = _chaos_rng.uniform() < opts.chaos.stall_rate;
    slot._chaos_stall = opts.chaos.stall;
  }

  ++_seq;
  ++_submitted;
  _server->_registry.record_submitted();

  RunPolicy policy;
  policy.timeout = opts.deadline;
  policy.admission = opts.admission;
  policy.admission_timeout = opts.admission_timeout;
  policy.priority = request.priority;
  try {
    slot.admitted_at = std::chrono::steady_clock::now();
    slot.handle = _server->_executor.run(slot.pipeline, policy);
    slot.inflight = true;
  } catch (const ShutdownError&) {
    deliver(Response{slot.id, Outcome::shutdown_rejected, {}});
  } catch (const OverloadError&) {
    // Door rejection: at-capacity reject, bounded backpressure wait that
    // expired, or an open breaker (BreakerOpenError IS-A OverloadError).
    deliver(Response{slot.id, Outcome::rejected, {}});
  }
}

void ServerClient::drain() {
  for (auto& slot : _slots) {
    if (slot->inflight) harvest(*slot);
  }
}

Response ServerClient::call(const Request& request) {
  const std::size_t idx = _seq % _slots.size();
  submit(request);
  Slot& slot = *_slots[idx];
  if (slot.inflight) harvest(slot);
  return _last;
}

void ServerClient::harvest(Slot& slot) {
  slot.inflight = false;
  deliver(classify(slot));
}

Response ServerClient::classify(Slot& slot) {
  Response r;
  r.id = slot.id;
  try {
    slot.handle.get();  // synchronizes with the pipeline's final task
    if (slot.responded.load(std::memory_order_relaxed)) {
      r.outcome = slot.degraded.load(std::memory_order_relaxed)
                      ? Outcome::degraded
                      : Outcome::ok;
      r.latency = slot.completed_at - slot.admitted_at;
      if (r.latency.count() < 0) r.latency = {};
    } else {
      // Drained without reaching a respond stage: cancelled (shutdown(abort)
      // or an explicit handle cancel).
      r.outcome = Outcome::cancelled;
    }
  } catch (const TimeoutError&) {
    r.outcome = Outcome::timed_out;
  } catch (const OverloadError&) {
    r.outcome = Outcome::shed;  // admitted, evicted above the watermark
  } catch (...) {
    r.outcome = Outcome::failed;  // unabsorbed pipeline exception
  }
  return r;
}

void ServerClient::deliver(const Response& r) {
  ++_counts[static_cast<std::size_t>(r.outcome)];
  _server->_registry.record_outcome(r.outcome, r.latency);
  _last = r;
  if (_sink) _sink(r);
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(ServerOptions options)
    : _options(std::move(options)),
      _executor(std::max<std::size_t>(1, _options.num_workers),
                _options.executor) {}

Server::~Server() {
  // Drain BEFORE members die: clients own the pipeline graphs, and queued
  // topologies reference them until the executor finishes.
  shutdown(ShutdownMode::drain);
}

ServerClient& Server::connect() {
  std::scoped_lock lock(_clients_mutex);
  // Decorrelate per-client chaos streams from one configured seed.
  const std::uint64_t seed =
      _options.chaos.seed ^
      (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(_clients.size() + 1));
  _clients.push_back(
      std::unique_ptr<ServerClient>(new ServerClient(*this, seed)));
  return *_clients.back();
}

void Server::shutdown(ShutdownMode mode) { _executor.shutdown(mode); }

std::string Server::healthz() const {
  const MetricsSnapshot s = metrics();
  const char* status = "ok";
  if (s.executor.shutdown) {
    status = "draining";
  } else if (s.executor.breakers_open > 0 ||
             (_options.executor.max_pending_topologies != 0 &&
              s.executor.adm_pending >=
                  _options.executor.max_pending_topologies)) {
    status = "overloaded";
  }
  std::ostringstream os;
  render_healthz(os, status, s);
  return os.str();
}

void Server::dump_state(std::ostream& os) const {
  os << healthz() << "--- executor ---\n";
  _executor.dump_state(os);
}

}  // namespace tf
