#include "service/probe.hpp"

#include <cstring>
#include <string>

#include "service/server.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define REPRO_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define REPRO_HAVE_SOCKETS 0
#endif

namespace tf {

#if REPRO_HAVE_SOCKETS

bool HealthzProbe::start(Server& server, std::uint16_t port) {
  if (_running.load(std::memory_order_acquire)) return false;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return false;
  }

  _server = &server;
  _listen_fd = fd;
  _port = ntohs(addr.sin_port);
  _running.store(true, std::memory_order_release);
  _thread = std::thread([this] { accept_loop(); });
  return true;
}

void HealthzProbe::stop() {
  if (!_running.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() unblocks a pending accept(); close() releases the fd.
  ::shutdown(_listen_fd, SHUT_RDWR);
  ::close(_listen_fd);
  if (_thread.joinable()) _thread.join();
  _listen_fd = -1;
}

void HealthzProbe::accept_loop() {
  while (_running.load(std::memory_order_acquire)) {
    const int conn = ::accept(_listen_fd, nullptr, nullptr);
    if (conn < 0) continue;  // stop() in flight, or a transient accept error
    const std::string body = _server->healthz();
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "\r\n" + body;
    const char* p = response.data();
    std::size_t left = response.size();
    while (left > 0) {
      const ssize_t n = ::send(conn, p, left, 0);
      if (n <= 0) break;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

std::string probe_fetch(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  std::string out;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

#else  // !REPRO_HAVE_SOCKETS: the probe degrades to a no-op.

bool HealthzProbe::start(Server&, std::uint16_t) { return false; }
void HealthzProbe::stop() {}
void HealthzProbe::accept_loop() {}
std::string probe_fetch(std::uint16_t) { return {}; }

#endif

}  // namespace tf
