// metrics.hpp - tf::MetricsRegistry: the observability surface of the
// service layer (DESIGN.md §13).  One registry per tf::Server tallies every
// request outcome exactly once, records completed-request latency into a
// lock-free log-bucketed histogram (p50/p99/p999), and folds the owning
// executor's admission metrics (queue depth, shed rate, breaker state,
// admit/reject counters) into one consistent MetricsSnapshot - the payload
// behind Server::healthz() and Server::dump_state().
//
// Everything on the record path is a relaxed atomic increment: clients call
// record_outcome concurrently from dozens of threads mid-storm, and the
// snapshot is a best-effort cut (exact once the storm has drained - the
// counter identities the soak test asserts hold at quiescence).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "taskflow/taskflow.hpp"

namespace tf {

/// Terminal classification of one request.  Every submitted request maps to
/// exactly one Outcome - the zero-lost-responses contract: submitted ==
/// ok + degraded + rejected + shed + timed_out + cancelled + failed +
/// shutdown_rejected (MetricsSnapshot::accounted).
enum class Outcome : unsigned char {
  ok = 0,             // pipeline completed normally
  degraded,           // completed through a fallback / degrade branch
  rejected,           // refused at the door (OverloadError / open breaker)
  shed,               // admitted, then load-shed before starting
  timed_out,          // RunPolicy deadline expired
  cancelled,          // drained by shutdown(abort) before responding
  failed,             // pipeline exception that no fallback absorbed
  shutdown_rejected,  // refused because the server is shutting down
};
inline constexpr std::size_t kNumOutcomes = 8;

[[nodiscard]] const char* to_string(Outcome o) noexcept;

/// Lock-free latency histogram: 64 power-of-two octaves x 8 linear
/// sub-buckets over nanosecond values (~±6% relative resolution), 512
/// relaxed atomic counters.  record() is two shifts and one fetch_add;
/// percentile() walks the cumulative distribution.
class LatencyHistogram {
 public:
  static constexpr std::size_t kSubBits = 3;
  static constexpr std::size_t kSub = 1u << kSubBits;  // 8 sub-buckets
  static constexpr std::size_t kBuckets = 64 * kSub;

  void record(std::chrono::nanoseconds latency) noexcept;

  /// Approximate value (microseconds) at percentile `p` in [0, 100];
  /// 0 when the histogram is empty.
  [[nodiscard]] double percentile_us(double p) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return _count.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> _bucket{};
  std::atomic<std::uint64_t> _count{0};
};

/// One consistent-at-quiescence cut of a server's counters, percentiles, and
/// the executor's admission state.
struct MetricsSnapshot {
  std::uint64_t submitted{0};
  std::array<std::uint64_t, kNumOutcomes> outcomes{};

  double p50_us{0};
  double p99_us{0};
  double p999_us{0};

  double shed_rate{0};  // shed / submitted

  Executor::Metrics executor;  // queue depth, breaker state, admit counters

  [[nodiscard]] std::uint64_t outcome(Outcome o) const noexcept {
    return outcomes[static_cast<std::size_t>(o)];
  }
  /// Sum over every outcome - must equal `submitted` once the storm has
  /// drained (the zero-lost-responses identity).
  [[nodiscard]] std::uint64_t accounted() const noexcept;
  /// Requests that completed with a response body (ok + degraded).
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return outcome(Outcome::ok) + outcome(Outcome::degraded);
  }
};

/// Render `s` as the /healthz probe body (one "key value" per line,
/// prefixed by the status line).
void render_healthz(std::ostream& os, const std::string& status,
                    const MetricsSnapshot& s);

class MetricsRegistry {
 public:
  void record_submitted() noexcept {
    _submitted.fetch_add(1, std::memory_order_relaxed);
  }

  /// Tally `o`; a positive latency additionally lands in the histogram
  /// (completed requests record admission→response time, terminal
  /// non-responses pass 0).
  void record_outcome(Outcome o, std::chrono::nanoseconds latency =
                                     std::chrono::nanoseconds{0}) noexcept {
    _outcomes[static_cast<std::size_t>(o)].fetch_add(1, std::memory_order_relaxed);
    if (latency.count() > 0) _latency.record(latency);
  }

  [[nodiscard]] std::uint64_t submitted() const noexcept {
    return _submitted.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t outcome(Outcome o) const noexcept {
    return _outcomes[static_cast<std::size_t>(o)].load(std::memory_order_relaxed);
  }

  /// Snapshot counters + percentiles, folding in `executor.metrics()`.
  [[nodiscard]] MetricsSnapshot snapshot(const Executor& executor) const;

 private:
  std::atomic<std::uint64_t> _submitted{0};
  std::array<std::atomic<std::uint64_t>, kNumOutcomes> _outcomes{};
  LatencyHistogram _latency;
};

}  // namespace tf
