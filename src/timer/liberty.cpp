#include "timer/liberty.hpp"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ot {

namespace {

// ---------------------------------------------------------------------------
// Generic Liberty tokenizer + group-tree parser.  Liberty is a simple
// nested-group format: groups `name (args) { statements }` containing
// attributes `name : value ;` and complex attributes `name (v1, v2, ...);`.
// ---------------------------------------------------------------------------

struct LibToken {
  enum class Kind { Ident, String, Number, Punct, End };
  Kind kind{Kind::End};
  std::string text;
  int line{1};
};

class LibLexer {
 public:
  explicit LibLexer(std::istream& is) {
    std::ostringstream ss;
    ss << is.rdbuf();
    _src = ss.str();
    advance();
  }

  [[nodiscard]] const LibToken& peek() const { return _current; }

  LibToken take() {
    LibToken t = _current;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("liberty parse error at line " +
                             std::to_string(_current.line) + ": " + why);
  }

 private:
  void advance() {
    skip_space_and_comments();
    _current.line = _line;
    if (_pos >= _src.size()) {
      _current = {LibToken::Kind::End, "", _line};
      return;
    }
    const char c = _src[_pos];
    if (c == '"') {
      ++_pos;
      std::string text;
      while (_pos < _src.size() && _src[_pos] != '"') {
        if (_src[_pos] == '\n') ++_line;
        text.push_back(_src[_pos++]);
      }
      if (_pos < _src.size()) ++_pos;
      _current = {LibToken::Kind::String, std::move(text), _line};
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (_pos < _src.size() &&
             (std::isalnum(static_cast<unsigned char>(_src[_pos])) ||
              _src[_pos] == '_' || _src[_pos] == '.')) {
        text.push_back(_src[_pos++]);
      }
      _current = {LibToken::Kind::Ident, std::move(text), _line};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      std::string text;
      while (_pos < _src.size() &&
             (std::isalnum(static_cast<unsigned char>(_src[_pos])) ||
              _src[_pos] == '.' || _src[_pos] == '-' || _src[_pos] == '+')) {
        text.push_back(_src[_pos++]);
      }
      _current = {LibToken::Kind::Number, std::move(text), _line};
      return;
    }
    _current = {LibToken::Kind::Punct, std::string(1, c), _line};
    ++_pos;
  }

  void skip_space_and_comments() {
    for (;;) {
      while (_pos < _src.size() &&
             (std::isspace(static_cast<unsigned char>(_src[_pos])) ||
              // Liberty line continuation: backslash before end-of-line.
              (_src[_pos] == '\\' &&
               (_pos + 1 >= _src.size() ||
                _src[_pos + 1] == '\n' || _src[_pos + 1] == '\r')))) {
        if (_src[_pos] == '\n') ++_line;
        ++_pos;
      }
      if (_pos + 1 < _src.size() && _src[_pos] == '/' && _src[_pos + 1] == '*') {
        _pos += 2;
        while (_pos + 1 < _src.size() &&
               !(_src[_pos] == '*' && _src[_pos + 1] == '/')) {
          if (_src[_pos] == '\n') ++_line;
          ++_pos;
        }
        _pos = std::min(_src.size(), _pos + 2);
        continue;
      }
      if (_pos + 1 < _src.size() && _src[_pos] == '/' && _src[_pos + 1] == '/') {
        while (_pos < _src.size() && _src[_pos] != '\n') ++_pos;
        continue;
      }
      return;
    }
  }

  std::string _src;
  std::size_t _pos{0};
  int _line{1};
  LibToken _current;
};

/// A parsed group: `type (args...) { attributes + subgroups }`.
struct LibGroup {
  std::string type;
  std::vector<std::string> args;
  std::vector<std::pair<std::string, std::string>> attributes;        // name : value
  std::vector<std::pair<std::string, std::vector<std::string>>> complex;  // name(v...)
  std::vector<LibGroup> groups;

  [[nodiscard]] const std::string* attribute(const std::string& name) const {
    for (const auto& [k, v] : attributes) {
      if (k == name) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] const std::vector<std::string>* complex_values(
      const std::string& name) const {
    for (const auto& [k, v] : complex) {
      if (k == name) return &v;
    }
    return nullptr;
  }
};

class LibParser {
 public:
  explicit LibParser(std::istream& is) : _lex(is) {}

  LibGroup parse_top() {
    LibGroup g = parse_group();
    if (g.type != "library") _lex.fail("expected a top-level library group");
    return g;
  }

 private:
  LibGroup parse_group() {
    LibGroup g;
    const LibToken name = _lex.take();
    if (name.kind != LibToken::Kind::Ident) _lex.fail("expected group name");
    g.type = name.text;
    expect_punct("(");
    while (!is_punct(")")) {
      const LibToken arg = _lex.take();
      if (arg.kind == LibToken::Kind::Punct && arg.text == ",") continue;
      g.args.push_back(arg.text);
    }
    expect_punct(")");
    expect_punct("{");
    while (!is_punct("}")) {
      parse_statement(g);
    }
    expect_punct("}");
    return g;
  }

  void parse_statement(LibGroup& g) {
    const LibToken name = _lex.take();
    if (name.kind != LibToken::Kind::Ident) _lex.fail("expected statement name");
    if (is_punct(":")) {
      _lex.take();  // ':'
      const LibToken value = _lex.take();
      g.attributes.emplace_back(name.text, value.text);
      if (is_punct(";")) _lex.take();
      return;
    }
    if (is_punct("(")) {
      // Either a complex attribute `name (values...);` or a subgroup
      // `name (args) { ... }` - disambiguated by what follows ')'.
      std::vector<std::string> values;
      _lex.take();  // '('
      while (!is_punct(")")) {
        const LibToken v = _lex.take();
        if (v.kind == LibToken::Kind::Punct && v.text == ",") continue;
        if (v.kind == LibToken::Kind::End) _lex.fail("unterminated argument list");
        values.push_back(v.text);
      }
      _lex.take();  // ')'
      if (is_punct("{")) {
        _lex.take();  // '{'
        LibGroup sub;
        sub.type = name.text;
        sub.args = std::move(values);
        while (!is_punct("}")) parse_statement(sub);
        _lex.take();  // '}'
        g.groups.push_back(std::move(sub));
        return;
      }
      if (is_punct(";")) _lex.take();
      g.complex.emplace_back(name.text, std::move(values));
      return;
    }
    _lex.fail("expected ':' or '(' after " + name.text);
  }

  [[nodiscard]] bool is_punct(const char* p) {
    return _lex.peek().kind == LibToken::Kind::Punct && _lex.peek().text == p;
  }

  void expect_punct(const char* p) {
    if (!is_punct(p)) _lex.fail(std::string("expected '") + p + "'");
    _lex.take();
  }

  LibLexer _lex;
};

// ---------------------------------------------------------------------------
// Interpretation: group tree -> CellLibrary
// ---------------------------------------------------------------------------

double to_double(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw std::runtime_error("liberty: bad number '" + s + "'");
  }
  return v;
}

// Axis / values strings are comma-separated numbers inside one quoted string.
std::vector<double> parse_number_list(const std::string& s) {
  std::vector<double> out;
  std::string token;
  std::istringstream ss(s);
  while (std::getline(ss, token, ',')) {
    if (token.find_first_not_of(" \t") == std::string::npos) continue;
    out.push_back(to_double(token));
  }
  return out;
}

Lut parse_lut(const LibGroup& g) {
  const auto* index1 = g.complex_values("index_1");
  const auto* index2 = g.complex_values("index_2");
  const auto* values = g.complex_values("values");
  if (index1 == nullptr || index2 == nullptr || values == nullptr) {
    throw std::runtime_error("liberty: table missing index_1/index_2/values");
  }
  const auto slews = parse_number_list((*index1)[0]);
  const auto loads = parse_number_list((*index2)[0]);
  if (slews.size() != Lut::kPoints || loads.size() != Lut::kPoints) {
    throw std::runtime_error("liberty: only " + std::to_string(Lut::kPoints) +
                             "-point tables are supported");
  }
  Lut lut;
  for (std::size_t i = 0; i < Lut::kPoints; ++i) {
    lut.slew_axis[i] = slews[i];
    lut.load_axis[i] = loads[i];
  }
  if (values->size() != Lut::kPoints) {
    throw std::runtime_error("liberty: values row count mismatch");
  }
  for (std::size_t s = 0; s < Lut::kPoints; ++s) {
    const auto row = parse_number_list((*values)[s]);
    if (row.size() != Lut::kPoints) {
      throw std::runtime_error("liberty: values column count mismatch");
    }
    for (std::size_t l = 0; l < Lut::kPoints; ++l) lut.value[s][l] = row[l];
  }
  return lut;
}

TimingSense parse_sense(const std::string& s) {
  if (s == "positive_unate") return TimingSense::PositiveUnate;
  if (s == "negative_unate") return TimingSense::NegativeUnate;
  if (s == "non_unate") return TimingSense::NonUnate;
  throw std::runtime_error("liberty: unknown timing_sense " + s);
}

CellKind kind_from_name(const std::string& name, bool sequential) {
  if (sequential) return CellKind::Dff;
  static constexpr std::pair<const char*, CellKind> kPrefixes[] = {
      {"INV", CellKind::Inv},     {"BUF", CellKind::Buf},
      {"NAND2", CellKind::Nand2}, {"NOR2", CellKind::Nor2},
      {"AND2", CellKind::And2},   {"OR2", CellKind::Or2},
      {"XOR2", CellKind::Xor2},   {"AOI21", CellKind::Aoi21},
      {"OAI21", CellKind::Oai21}, {"DFF", CellKind::Dff},
  };
  for (const auto& [prefix, kind] : kPrefixes) {
    if (name.rfind(prefix, 0) == 0) return kind;
  }
  throw std::runtime_error("liberty: cannot infer cell kind from name " + name);
}

Cell interpret_cell(const LibGroup& g) {
  Cell cell;
  if (g.args.empty()) throw std::runtime_error("liberty: cell without a name");
  cell.name = g.args[0];

  bool sequential = false;
  for (const auto& sub : g.groups) {
    if (sub.type == "ff") sequential = true;
  }
  cell.kind = kind_from_name(cell.name, sequential);
  if (const auto* drive = g.attribute("drive_strength")) {
    cell.drive = static_cast<int>(to_double(*drive));
  }

  // Pins first (arcs reference pin indices).
  struct PendingArc {
    std::string related_pin;
    CellArc arc;
  };
  std::vector<PendingArc> pending;

  for (const auto& sub : g.groups) {
    if (sub.type != "pin") continue;
    CellPin pin;
    pin.name = sub.args.empty() ? "" : sub.args[0];
    if (const auto* dir = sub.attribute("direction")) pin.is_input = (*dir == "input");
    if (const auto* cap = sub.attribute("capacitance")) pin.capacitance = to_double(*cap);
    if (const auto* clk = sub.attribute("clock")) pin.is_clock = (*clk == "true");
    cell.pins.push_back(pin);

    for (const auto& timing : sub.groups) {
      if (timing.type != "timing") continue;
      PendingArc pa;
      if (const auto* related = timing.attribute("related_pin")) {
        pa.related_pin = *related;
      } else {
        throw std::runtime_error("liberty: timing group without related_pin");
      }
      if (const auto* sense = timing.attribute("timing_sense")) {
        pa.arc.sense = parse_sense(*sense);
      }
      for (const auto& table : timing.groups) {
        if (table.type == "cell_rise") pa.arc.delay_lut[kRise] = parse_lut(table);
        else if (table.type == "cell_fall") pa.arc.delay_lut[kFall] = parse_lut(table);
        else if (table.type == "rise_transition") pa.arc.slew_lut[kRise] = parse_lut(table);
        else if (table.type == "fall_transition") pa.arc.slew_lut[kFall] = parse_lut(table);
      }
      // Summary linear coefficients recovered from the table corners (used
      // only as metadata; queries interpolate the tables).
      for (int t : {kRise, kFall}) {
        const auto tt = static_cast<std::size_t>(t);
        pa.arc.intrinsic[tt] = pa.arc.delay_lut[tt].value[0][0];
        const auto& lut = pa.arc.delay_lut[tt];
        pa.arc.resistance[tt] =
            (lut.value[0][Lut::kPoints - 1] - lut.value[0][0]) /
            (lut.load_axis[Lut::kPoints - 1] - lut.load_axis[0]);
        pa.arc.slew_intrinsic[tt] = pa.arc.slew_lut[tt].value[0][0];
        pa.arc.slew_resistance[tt] =
            (pa.arc.slew_lut[tt].value[0][Lut::kPoints - 1] -
             pa.arc.slew_lut[tt].value[0][0]) /
            (lut.load_axis[Lut::kPoints - 1] - lut.load_axis[0]);
      }
      pending.push_back(std::move(pa));
    }
  }

  for (auto& pa : pending) {
    int from = -1;
    for (std::size_t i = 0; i < cell.pins.size(); ++i) {
      if (cell.pins[i].name == pa.related_pin) from = static_cast<int>(i);
    }
    if (from < 0) {
      throw std::runtime_error("liberty: related_pin " + pa.related_pin +
                               " not found in cell " + cell.name);
    }
    pa.arc.from_pin = from;
    cell.arcs.push_back(std::move(pa.arc));
  }
  return cell;
}

std::string lut_row(const Lut& lut, std::size_t s) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (std::size_t l = 0; l < Lut::kPoints; ++l) {
    if (l != 0) os << ", ";
    os << lut.value[s][l];
  }
  return os.str();
}

std::string axis_string(const std::array<double, Lut::kPoints>& axis) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (std::size_t i = 0; i < Lut::kPoints; ++i) {
    if (i != 0) os << ", ";
    os << axis[i];
  }
  return os.str();
}

void write_lut(std::ostream& os, const char* type, const Lut& lut) {
  os << "        " << type << " (nldm_7x7) {\n";
  os << "          index_1 (\"" << axis_string(lut.slew_axis) << "\");\n";
  os << "          index_2 (\"" << axis_string(lut.load_axis) << "\");\n";
  os << "          values ( \\\n";
  for (std::size_t s = 0; s < Lut::kPoints; ++s) {
    os << "            \"" << lut_row(lut, s) << "\""
       << (s + 1 < Lut::kPoints ? ", \\\n" : " \\\n");
  }
  os << "          );\n";
  os << "        }\n";
}

}  // namespace

CellLibrary parse_liberty(std::istream& is) {
  LibParser parser(is);
  const LibGroup library = parser.parse_top();

  CellLibrary lib = [] {
    // IO pseudo cells are implementation artifacts, not Liberty content.
    CellLibrary base;
    return base;
  }();

  // Start from an empty library but keep the pseudo IO cells available:
  // easiest is to build the synthetic library's IO cells by hand.
  {
    Cell pi;
    pi.name = "__PI__";
    pi.kind = CellKind::Input;
    CellPin y;
    y.name = "Y";
    y.is_input = false;
    pi.pins.push_back(y);
    lib.add_cell(std::move(pi));

    Cell po;
    po.name = "__PO__";
    po.kind = CellKind::Output;
    CellPin a;
    a.name = "A";
    a.is_input = true;
    a.capacitance = 2.0;
    po.pins.push_back(a);
    lib.add_cell(std::move(po));
  }

  for (const auto& sub : library.groups) {
    if (sub.type == "cell") lib.add_cell(interpret_cell(sub));
  }
  return lib;
}

CellLibrary parse_liberty_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open liberty file: " + path);
  return parse_liberty(in);
}

void write_liberty(std::ostream& os, const CellLibrary& lib,
                   const std::string& library_name) {
  os << std::setprecision(17);
  os << "/* synthetic 45nm-class library, NLDM subset (generated) */\n";
  os << "library (" << library_name << ") {\n";
  os << "  time_unit : \"1ns\";\n";
  os << "  capacitive_load_unit (1, ff);\n";
  for (const Cell& cell : lib.cells()) {
    if (cell.kind == CellKind::Input || cell.kind == CellKind::Output) continue;
    os << "  cell (" << cell.name << ") {\n";
    os << "    drive_strength : " << cell.drive << ";\n";
    if (cell.is_sequential()) os << "    ff (IQ, IQN) {\n    }\n";
    for (std::size_t p = 0; p < cell.pins.size(); ++p) {
      const CellPin& pin = cell.pins[p];
      os << "    pin (" << pin.name << ") {\n";
      os << "      direction : " << (pin.is_input ? "input" : "output") << ";\n";
      if (pin.is_input) os << "      capacitance : " << pin.capacitance << ";\n";
      if (pin.is_clock) os << "      clock : true;\n";
      if (!pin.is_input) {
        for (const CellArc& arc : cell.arcs) {
          os << "      timing () {\n";
          os << "        related_pin : \""
             << cell.pins[static_cast<std::size_t>(arc.from_pin)].name << "\";\n";
          os << "        timing_sense : "
             << (arc.sense == TimingSense::PositiveUnate   ? "positive_unate"
                 : arc.sense == TimingSense::NegativeUnate ? "negative_unate"
                                                           : "non_unate")
             << ";\n";
          write_lut(os, "cell_rise", arc.delay_lut[kRise]);
          write_lut(os, "cell_fall", arc.delay_lut[kFall]);
          write_lut(os, "rise_transition", arc.slew_lut[kRise]);
          write_lut(os, "fall_transition", arc.slew_lut[kFall]);
          os << "      }\n";
        }
      }
      os << "    }\n";
    }
    os << "  }\n";
  }
  os << "}\n";
}

}  // namespace ot
