#include "timer/shell.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "timer/modifier.hpp"
#include "timer/report.hpp"
#include "timer/sdc.hpp"
#include "timer/verilog.hpp"

namespace ot {

namespace {

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream ss(line);
  std::string w;
  while (ss >> w) words.push_back(w);
  return words;
}

constexpr const char* kHelp = R"(commands:
  read_celllib <file.lib>     read_verilog <file.v>     read_netlist <file.ckt>
  read_sdc <file.sdc>         generate <gates> <seed>   set_threads <n>
  set_corners <n>             init_timer [v1|v2|seq]    report_worst_slack
  report_slack                report_timing [k]         resize_gate <gate> <cell>
  write_verilog <f>           write_liberty <f>         write_sdc <f>
  dump_taskgraph <f>          stats                     help | quit
)";

}  // namespace

Shell::Shell() : _library(CellLibrary::make_synthetic()) {
  _options.num_threads = 2;
  _options.clock_period = 2.0;
}

void Shell::require_design() const {
  if (_netlist == nullptr) throw std::runtime_error("no design loaded");
}

void Shell::require_timer() const {
  if (_timer == nullptr) throw std::runtime_error("timer not initialized (init_timer)");
}

bool Shell::execute(const std::string& line, std::ostream& out) {
  const auto words = split(line);
  if (words.empty() || words[0][0] == '#') return true;
  const std::string& cmd = words[0];

  try {
    if (cmd == "help") {
      out << kHelp;
    } else if (cmd == "quit" || cmd == "exit") {
      _quit = true;
    } else if (cmd == "read_celllib") {
      if (words.size() < 2) throw std::runtime_error("usage: read_celllib <file>");
      _library = parse_liberty_file(words[1]);
      out << "loaded " << _library.size() << " cells\n";
    } else if (cmd == "read_verilog") {
      if (words.size() < 2) throw std::runtime_error("usage: read_verilog <file>");
      _netlist = std::make_unique<Netlist>(parse_verilog_file(words[1], _library));
      _timer.reset();
      out << "read " << _netlist->num_gates() << " gates\n";
    } else if (cmd == "read_netlist") {
      if (words.size() < 2) throw std::runtime_error("usage: read_netlist <file>");
      std::ifstream in(words[1]);
      if (!in) throw std::runtime_error("cannot open " + words[1]);
      _netlist = std::make_unique<Netlist>(parse_netlist(in, _library));
      _timer.reset();
      out << "read " << _netlist->num_gates() << " gates\n";
    } else if (cmd == "read_sdc") {
      if (words.size() < 2) throw std::runtime_error("usage: read_sdc <file>");
      _options = parse_sdc_file(words[1], _options, /*lenient=*/true).options;
      out << "clock period " << _options.clock_period << " ns\n";
    } else if (cmd == "generate") {
      if (words.size() < 3) throw std::runtime_error("usage: generate <gates> <seed>");
      CircuitSpec spec;
      spec.num_gates = static_cast<std::size_t>(std::stoull(words[1]));
      spec.seed = std::stoull(words[2]);
      _netlist = std::make_unique<Netlist>(make_circuit(_library, spec));
      _timer.reset();
      out << "generated " << _netlist->num_gates() << " gates, " << _netlist->num_nets()
          << " nets\n";
    } else if (cmd == "set_threads") {
      if (words.size() < 2) throw std::runtime_error("usage: set_threads <n>");
      _options.num_threads = std::stoul(words[1]);
    } else if (cmd == "set_corners") {
      if (words.size() < 2) throw std::runtime_error("usage: set_corners <n>");
      _options.corners = std::stoi(words[1]);
    } else if (cmd == "init_timer") {
      require_design();
      _engine = words.size() > 1 ? words[1] : "v2";
      if (_engine == "v1") _timer = std::make_unique<TimerV1>(*_netlist, _options);
      else if (_engine == "seq") _timer = std::make_unique<SeqTimer>(*_netlist, _options);
      else if (_engine == "v2") _timer = std::make_unique<TimerV2>(*_netlist, _options);
      else throw std::runtime_error("unknown engine " + _engine + " (v1|v2|seq)");
      _timer->full_update();
      out << "engine " << _engine << ": " << _timer->last_update_tasks()
          << " tasks, worst slack " << _timer->worst_slack() << " ns\n";
    } else if (cmd == "report_worst_slack") {
      require_timer();
      out << "worst slack " << _timer->worst_slack() << " ns\n";
    } else if (cmd == "report_slack") {
      require_timer();
      const auto s = slack_stats(_timer->graph(), _timer->state());
      out << "WNS " << s.wns << " ns, TNS " << s.tns << " ns, " << s.violations
          << " of " << s.endpoints << " endpoints violating\n";
    } else if (cmd == "report_timing") {
      require_timer();
      const std::size_t k = words.size() > 1 ? std::stoull(words[1]) : 1;
      for (const auto& path :
           report_paths(*_netlist, _timer->graph(), _timer->state(), k)) {
        print_path(out, *_netlist, path);
      }
    } else if (cmd == "resize_gate") {
      require_timer();
      if (words.size() < 3) throw std::runtime_error("usage: resize_gate <gate> <cell>");
      const int gate = _netlist->find_gate(words[1]);
      if (gate < 0) throw std::runtime_error("unknown gate " + words[1]);
      _timer->resize(gate, _library.at(words[2]));
      out << "resized " << words[1] << " -> " << words[2] << ", "
          << _timer->last_update_tasks() << " tasks re-timed, worst slack "
          << _timer->worst_slack() << " ns\n";
    } else if (cmd == "write_verilog") {
      require_design();
      if (words.size() < 2) throw std::runtime_error("usage: write_verilog <file>");
      std::ofstream f(words[1]);
      write_verilog(f, *_netlist);
      out << "wrote " << words[1] << "\n";
    } else if (cmd == "write_liberty") {
      if (words.size() < 2) throw std::runtime_error("usage: write_liberty <file>");
      std::ofstream f(words[1]);
      write_liberty(f, _library);
      out << "wrote " << words[1] << "\n";
    } else if (cmd == "write_sdc") {
      if (words.size() < 2) throw std::runtime_error("usage: write_sdc <file>");
      std::ofstream f(words[1]);
      write_sdc(f, _options);
      out << "wrote " << words[1] << "\n";
    } else if (cmd == "dump_taskgraph") {
      require_timer();
      if (words.size() < 2) throw std::runtime_error("usage: dump_taskgraph <file>");
      auto* v2 = dynamic_cast<TimerV2*>(_timer.get());
      if (v2 == nullptr) throw std::runtime_error("dump_taskgraph needs the v2 engine");
      std::ofstream f(words[1]);
      f << v2->dump_last_task_graph();
      out << "wrote " << words[1] << "\n";
    } else if (cmd == "stats") {
      require_design();
      out << "gates " << _netlist->num_gates() << ", nets " << _netlist->num_nets()
          << ", pins " << _netlist->num_pins() << ", cells " << _library.size()
          << ", threads " << _options.num_threads << ", corners " << _options.corners
          << "\n";
    } else {
      throw std::runtime_error("unknown command '" + cmd + "' (try help)");
    }
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    return false;
  }
  return true;
}

int Shell::run(std::istream& in, std::ostream& out, std::ostream& err) {
  int failures = 0;
  std::string line;
  while (!_quit && std::getline(in, line)) {
    if (!execute(line, out)) {
      err << "command failed: " << line << "\n";
      ++failures;
    }
  }
  return failures;
}

}  // namespace ot
