#include "timer/celllib.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ot {

double Lut::operator()(double slew, double load) const {
  auto bracket = [](const std::array<double, kPoints>& axis, double x) {
    // Clamp outside the characterized window, else find the cell [i, i+1].
    if (x <= axis.front()) return std::pair<int, double>{0, 0.0};
    if (x >= axis.back()) return std::pair<int, double>{kPoints - 2, 1.0};
    int i = 0;
    while (x > axis[static_cast<std::size_t>(i + 1)]) ++i;
    const double lo = axis[static_cast<std::size_t>(i)];
    const double hi = axis[static_cast<std::size_t>(i + 1)];
    return std::pair<int, double>{i, (x - lo) / (hi - lo)};
  };
  const auto [si, sf] = bracket(slew_axis, slew);
  const auto [li, lf] = bracket(load_axis, load);
  const auto s0 = static_cast<std::size_t>(si);
  const auto l0 = static_cast<std::size_t>(li);
  const double v00 = value[s0][l0];
  const double v01 = value[s0][l0 + 1];
  const double v10 = value[s0 + 1][l0];
  const double v11 = value[s0 + 1][l0 + 1];
  return (1.0 - sf) * ((1.0 - lf) * v00 + lf * v01) +
         sf * ((1.0 - lf) * v10 + lf * v11);
}

namespace {

// Characterization grids shared by every synthetic cell.
constexpr std::array<double, Lut::kPoints> kSlewAxis = {0.005, 0.01, 0.02, 0.04,
                                                        0.08, 0.16, 0.32};
constexpr std::array<double, Lut::kPoints> kLoadAxis = {0.25, 0.5, 1.0, 2.0,
                                                        4.0, 8.0, 16.0};

// Characterize one table from the linear skeleton plus a mild square-root
// cross term (the saturation real libraries exhibit at slow inputs under
// heavy loads).
Lut characterize(double intrinsic, double resistance, double slew_coeff) {
  Lut lut;
  lut.slew_axis = kSlewAxis;
  lut.load_axis = kLoadAxis;
  for (std::size_t s = 0; s < Lut::kPoints; ++s) {
    for (std::size_t l = 0; l < Lut::kPoints; ++l) {
      const double slew = kSlewAxis[s];
      const double load = kLoadAxis[l];
      lut.value[s][l] = intrinsic + resistance * load + slew_coeff * slew +
                        0.25 * slew_coeff * std::sqrt(slew * load);
    }
  }
  return lut;
}

void characterize_arc(CellArc& arc) {
  for (int t = 0; t < 2; ++t) {
    const auto tt = static_cast<std::size_t>(t);
    arc.delay_lut[tt] =
        characterize(arc.intrinsic[tt], arc.resistance[tt], arc.slew_sensitivity);
    arc.slew_lut[tt] = characterize(arc.slew_intrinsic[tt], arc.slew_resistance[tt],
                                    arc.slew_passthrough);
  }
}

struct KindSpec {
  CellKind kind;
  const char* base_name;
  int inputs;
  TimingSense sense;
  double intrinsic_rise;  // X1 values; X2/X4 derived
  double intrinsic_fall;
  double resistance;      // ns/fF at X1
  double input_cap;       // fF at X1
};

// Loosely calibrated to 45nm-class magnitudes (ns, fF).
constexpr KindSpec kCombinational[] = {
    {CellKind::Inv, "INV", 1, TimingSense::NegativeUnate, 0.010, 0.008, 0.0040, 1.0},
    {CellKind::Buf, "BUF", 1, TimingSense::PositiveUnate, 0.022, 0.020, 0.0038, 1.1},
    {CellKind::Nand2, "NAND2", 2, TimingSense::NegativeUnate, 0.014, 0.011, 0.0046, 1.2},
    {CellKind::Nor2, "NOR2", 2, TimingSense::NegativeUnate, 0.016, 0.018, 0.0052, 1.3},
    {CellKind::And2, "AND2", 2, TimingSense::PositiveUnate, 0.028, 0.025, 0.0044, 1.2},
    {CellKind::Or2, "OR2", 2, TimingSense::PositiveUnate, 0.030, 0.027, 0.0047, 1.3},
    {CellKind::Xor2, "XOR2", 2, TimingSense::NonUnate, 0.034, 0.032, 0.0055, 1.8},
    {CellKind::Aoi21, "AOI21", 3, TimingSense::NegativeUnate, 0.020, 0.024, 0.0058, 1.4},
    {CellKind::Oai21, "OAI21", 3, TimingSense::NegativeUnate, 0.022, 0.025, 0.0060, 1.4},
};

Cell make_combinational(const KindSpec& spec, int drive) {
  Cell c;
  c.kind = spec.kind;
  c.drive = drive;
  c.name = std::string(spec.base_name) + "_X" + std::to_string(drive);

  const char* input_names[] = {"A", "B", "C", "D"};
  for (int i = 0; i < spec.inputs; ++i) {
    CellPin p;
    p.name = input_names[i];
    p.is_input = true;
    // Larger drives present larger input capacitance.
    p.capacitance = spec.input_cap * (1.0 + 0.6 * (drive - 1));
    c.pins.push_back(p);
  }
  {
    CellPin y;
    y.name = "Y";
    y.is_input = false;
    y.capacitance = 0.0;
    c.pins.push_back(y);
  }

  const double drive_scale = 1.0 / static_cast<double>(drive);
  for (int i = 0; i < spec.inputs; ++i) {
    CellArc a;
    a.from_pin = i;
    a.sense = spec.sense;
    // Later inputs are marginally slower (stacked transistors).
    const double stagger = 1.0 + 0.08 * i;
    a.intrinsic = {spec.intrinsic_rise * stagger, spec.intrinsic_fall * stagger};
    a.resistance = {spec.resistance * drive_scale, spec.resistance * 0.9 * drive_scale};
    a.slew_intrinsic = {spec.intrinsic_rise * 0.8, spec.intrinsic_fall * 0.8};
    a.slew_resistance = {spec.resistance * 1.6 * drive_scale,
                         spec.resistance * 1.5 * drive_scale};
    characterize_arc(a);
    c.arcs.push_back(a);
  }
  return c;
}

Cell make_dff(int drive) {
  Cell c;
  c.kind = CellKind::Dff;
  c.drive = drive;
  c.name = "DFF_X" + std::to_string(drive);

  CellPin clk;
  clk.name = "CLK";
  clk.is_input = true;
  clk.is_clock = true;
  clk.capacitance = 0.8 * (1.0 + 0.5 * (drive - 1));
  c.pins.push_back(clk);

  CellPin d;
  d.name = "D";
  d.is_input = true;
  d.capacitance = 1.0 * (1.0 + 0.5 * (drive - 1));
  c.pins.push_back(d);

  CellPin q;
  q.name = "Q";
  q.is_input = false;
  c.pins.push_back(q);

  // Single CLK->Q arc; the D pin is a constrained endpoint with no arc.
  CellArc a;
  a.from_pin = 0;
  a.sense = TimingSense::PositiveUnate;
  a.intrinsic = {0.060, 0.055};
  a.resistance = {0.0042 / drive, 0.0040 / drive};
  a.slew_intrinsic = {0.045, 0.042};
  a.slew_resistance = {0.0065 / drive, 0.0062 / drive};
  characterize_arc(a);
  c.arcs.push_back(a);
  return c;
}

}  // namespace

const char* to_string(CellKind kind) {
  switch (kind) {
    case CellKind::Input: return "INPUT";
    case CellKind::Output: return "OUTPUT";
    case CellKind::Inv: return "INV";
    case CellKind::Buf: return "BUF";
    case CellKind::Nand2: return "NAND2";
    case CellKind::Nor2: return "NOR2";
    case CellKind::And2: return "AND2";
    case CellKind::Or2: return "OR2";
    case CellKind::Xor2: return "XOR2";
    case CellKind::Aoi21: return "AOI21";
    case CellKind::Oai21: return "OAI21";
    case CellKind::Dff: return "DFF";
  }
  return "?";
}

CellLibrary CellLibrary::make_synthetic() {
  CellLibrary lib;

  // IO pseudo cells.
  {
    Cell pi;
    pi.name = "__PI__";
    pi.kind = CellKind::Input;
    CellPin y;
    y.name = "Y";
    y.is_input = false;
    pi.pins.push_back(y);
    lib.add(std::move(pi));

    Cell po;
    po.name = "__PO__";
    po.kind = CellKind::Output;
    CellPin a;
    a.name = "A";
    a.is_input = true;
    a.capacitance = 2.0;
    po.pins.push_back(a);
    lib.add(std::move(po));
  }

  for (const auto& spec : kCombinational) {
    for (int drive : {1, 2, 4}) lib.add(make_combinational(spec, drive));
  }
  for (int drive : {1, 2, 4}) lib.add(make_dff(drive));
  return lib;
}

void CellLibrary::add(Cell cell) { _cells.push_back(std::move(cell)); }

const Cell* CellLibrary::find(const std::string& name) const {
  for (const auto& c : _cells) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const Cell& CellLibrary::at(const std::string& name) const {
  const Cell* c = find(name);
  if (c == nullptr) throw std::out_of_range("unknown cell: " + name);
  return *c;
}

std::vector<const Cell*> CellLibrary::variants(CellKind kind) const {
  std::vector<const Cell*> out;
  for (const auto& c : _cells) {
    if (c.kind == kind) out.push_back(&c);
  }
  return out;
}

std::vector<const Cell*> CellLibrary::combinational_with_inputs(int num_inputs) const {
  std::vector<const Cell*> out;
  for (const auto& c : _cells) {
    if (c.kind == CellKind::Input || c.kind == CellKind::Output ||
        c.kind == CellKind::Dff) {
      continue;
    }
    if (c.num_inputs() == num_inputs) out.push_back(&c);
  }
  return out;
}

}  // namespace ot
