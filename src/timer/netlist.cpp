#include "timer/netlist.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "support/rng.hpp"

namespace ot {

int Netlist::add_gate(const std::string& name, const Cell& cell) {
  const int id = static_cast<int>(_gates.size());
  Gate g;
  g.name = name;
  g.cell = &cell;
  for (std::size_t cp = 0; cp < cell.pins.size(); ++cp) {
    const int pin_id = static_cast<int>(_pins.size());
    _pins.push_back(Pin{id, static_cast<int>(cp), -1});
    g.pins.push_back(pin_id);
  }
  _gates.push_back(std::move(g));
  _gate_index.emplace(name, id);
  return id;
}

int Netlist::add_net(const std::string& name, double wire_cap) {
  const int id = static_cast<int>(_nets.size());
  Net n;
  n.name = name;
  n.wire_cap = wire_cap;
  _nets.push_back(std::move(n));
  _net_index.emplace(name, id);
  return id;
}

void Netlist::connect(int gate, int cell_pin, int net) {
  Gate& g = _gates[static_cast<std::size_t>(gate)];
  const int pin_id = g.pins[static_cast<std::size_t>(cell_pin)];
  Pin& p = _pins[static_cast<std::size_t>(pin_id)];
  if (p.net >= 0) throw std::runtime_error("pin already connected: " + pin_name(pin_id));
  p.net = net;
  Net& n = _nets[static_cast<std::size_t>(net)];
  if (g.cell->pins[static_cast<std::size_t>(cell_pin)].is_input) {
    n.sinks.push_back(pin_id);
  } else {
    if (n.driver >= 0) throw std::runtime_error("net already driven: " + n.name);
    n.driver = pin_id;
  }
}

int Netlist::add_primary_input(const std::string& name, int net) {
  const int g = add_gate(name, _lib->input_cell());
  connect(g, 0, net);
  return g;
}

int Netlist::add_primary_output(const std::string& name, int net) {
  const int g = add_gate(name, _lib->output_cell());
  connect(g, 0, net);
  return g;
}

void Netlist::resize_gate(int gate, const Cell& new_cell) {
  Gate& g = _gates[static_cast<std::size_t>(gate)];
  if (g.cell->kind != new_cell.kind || g.cell->pins.size() != new_cell.pins.size()) {
    throw std::runtime_error("resize requires a drive variant of the same cell kind");
  }
  g.cell = &new_cell;
}

void Netlist::validate() const {
  for (std::size_t i = 0; i < _nets.size(); ++i) {
    if (_nets[i].driver < 0) {
      throw std::runtime_error("undriven net: " + _nets[i].name);
    }
  }
  for (std::size_t i = 0; i < _pins.size(); ++i) {
    const Pin& p = _pins[i];
    if (p.is_floating()) {
      throw std::runtime_error("floating pin: " + pin_name(static_cast<int>(i)));
    }
  }
}

std::string Netlist::pin_name(int pin_id) const {
  const Pin& p = pin(pin_id);
  const Gate& g = _gates[static_cast<std::size_t>(p.gate)];
  return g.name + ":" + g.cell->pins[static_cast<std::size_t>(p.cell_pin)].name;
}

double Netlist::net_load(int net_id) const {
  const Net& n = net(net_id);
  double load = n.wire_cap;
  for (int sink : n.sinks) load += cell_pin_of(sink).capacitance;
  return load;
}

int Netlist::find_gate(const std::string& name) const {
  const auto it = _gate_index.find(name);
  return it == _gate_index.end() ? -1 : it->second;
}

int Netlist::find_net(const std::string& name) const {
  const auto it = _net_index.find(name);
  return it == _net_index.end() ? -1 : it->second;
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

Netlist make_circuit(const CellLibrary& lib, const CircuitSpec& spec) {
  support::Xoshiro256 rng(spec.seed);
  Netlist nl(lib);

  const std::size_t window =
      spec.locality_window != 0
          ? spec.locality_window
          : std::max<std::size_t>(64, spec.num_gates / 64);

  // Candidate driver nets, in creation order (older nets feed newer gates).
  std::vector<int> driven_nets;
  driven_nets.reserve(spec.num_inputs + spec.num_gates);

  auto fresh_cap = [&] { return rng.uniform(spec.wire_cap_min, spec.wire_cap_max); };

  // The dedicated clock tree root: every flop's CLK pin hangs off it.
  const int clock_net = nl.add_net("clk", fresh_cap());
  nl.add_primary_input("clock", clock_net);

  for (std::size_t i = 0; i < spec.num_inputs; ++i) {
    const int net = nl.add_net("ni" + std::to_string(i), fresh_cap());
    nl.add_primary_input("inp" + std::to_string(i), net);
    driven_nets.push_back(net);
  }

  // Fanout bookkeeping so unused nets can feed primary outputs at the end.
  std::vector<char> net_has_sink;
  net_has_sink.resize(driven_nets.size(), 0);

  auto pick_driver = [&]() -> std::size_t {
    const std::size_t hi = driven_nets.size();
    const std::size_t lo = hi > window ? hi - window : 0;
    return lo + static_cast<std::size_t>(rng.below(hi - lo));
  };

  const auto inverters = lib.variants(CellKind::Inv);
  const auto buffers = lib.variants(CellKind::Buf);
  const auto two_input = lib.combinational_with_inputs(2);
  const auto three_input = lib.combinational_with_inputs(3);
  const auto flops = lib.variants(CellKind::Dff);

  for (std::size_t i = 0; i < spec.num_gates; ++i) {
    const bool is_flop = rng.uniform() < spec.dff_fraction;
    const Cell* cell = nullptr;
    if (is_flop) {
      cell = flops[rng.below(flops.size())];
    } else {
      const double r = rng.uniform();
      if (r < 0.12) cell = inverters[rng.below(inverters.size())];
      else if (r < 0.20) cell = buffers[rng.below(buffers.size())];
      else if (r < 0.88) cell = two_input[rng.below(two_input.size())];
      else cell = three_input[rng.below(three_input.size())];
    }

    const int g = nl.add_gate("u" + std::to_string(i), *cell);
    const int out_net = nl.add_net("n" + std::to_string(i), fresh_cap());

    // Connect every input pin to an existing driven net (CLK pins go to the
    // clock tree).
    for (std::size_t cp = 0; cp < cell->pins.size(); ++cp) {
      if (!cell->pins[cp].is_input) {
        nl.connect(g, static_cast<int>(cp), out_net);
        continue;
      }
      if (cell->pins[cp].is_clock) {
        nl.connect(g, static_cast<int>(cp), clock_net);
        continue;
      }
      const std::size_t src_idx = pick_driver();
      nl.connect(g, static_cast<int>(cp), driven_nets[src_idx]);
      net_has_sink[src_idx] = 1;
    }
    driven_nets.push_back(out_net);
    net_has_sink.push_back(0);
  }

  // Terminate: every sink-less net feeds a primary output (bounded by
  // num_outputs for the freshest nets; the rest get outputs too so that no
  // net dangles - matching validate()'s invariant).
  std::size_t outs = 0;
  for (std::size_t idx = driven_nets.size(); idx-- > 0;) {
    if (net_has_sink[idx]) continue;
    nl.add_primary_output("out" + std::to_string(outs++), driven_nets[idx]);
  }
  (void)spec.num_outputs;  // implied by the dangling-net rule

  nl.validate();
  return nl;
}

CircuitSpec tv80_spec(double scale) {
  CircuitSpec s;
  s.num_gates = static_cast<std::size_t>(5300 * scale);
  s.num_inputs = 38;
  s.num_outputs = 35;
  s.seed = 0x7480;
  return s;
}

CircuitSpec vga_lcd_spec(double scale) {
  CircuitSpec s;
  s.num_gates = static_cast<std::size_t>(139500 * scale);
  s.num_inputs = 90;
  s.num_outputs = 100;
  s.seed = 0x76A;
  return s;
}

CircuitSpec netcard_spec(double scale) {
  CircuitSpec s;
  s.num_gates = static_cast<std::size_t>(1400000 * scale);
  s.num_inputs = 210;
  s.num_outputs = 220;
  s.seed = 0xCA4D;
  return s;
}

CircuitSpec leon3mp_spec(double scale) {
  CircuitSpec s;
  s.num_gates = static_cast<std::size_t>(1200000 * scale);
  s.num_inputs = 300;
  s.num_outputs = 280;
  s.seed = 0x1E03;
  return s;
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

void write_netlist(std::ostream& os, const Netlist& nl) {
  // Full round-trip precision for capacitances.
  os.precision(17);
  os << "# mini-OpenTimer netlist: " << nl.num_gates() << " gates, "
     << nl.num_nets() << " nets\n";
  for (const Net& n : nl.nets()) {
    os << "net " << n.name << " " << n.wire_cap << "\n";
  }
  for (const Gate& g : nl.gates()) {
    if (g.cell->kind == CellKind::Input) {
      os << "input " << g.name << " " << nl.net(nl.pin(g.pins[0]).net).name << "\n";
    } else if (g.cell->kind == CellKind::Output) {
      os << "output " << g.name << " " << nl.net(nl.pin(g.pins[0]).net).name << "\n";
    } else {
      os << "gate " << g.name << " " << g.cell->name;
      for (std::size_t cp = 0; cp < g.cell->pins.size(); ++cp) {
        os << " " << g.cell->pins[cp].name << "="
           << nl.net(nl.pin(g.pins[cp]).net).name;
      }
      os << "\n";
    }
  }
}

Netlist parse_netlist(std::istream& is, const CellLibrary& lib) {
  Netlist nl(lib);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw) || kw[0] == '#') continue;
    const auto fail = [&](const std::string& why) {
      throw std::runtime_error("parse error at line " + std::to_string(line_no) + ": " + why);
    };
    if (kw == "net") {
      std::string name;
      double cap = 0.0;
      if (!(ls >> name >> cap)) fail("expected: net <name> <cap>");
      nl.add_net(name, cap);
    } else if (kw == "input" || kw == "output") {
      std::string gname, nname;
      if (!(ls >> gname >> nname)) fail("expected: " + kw + " <gate> <net>");
      const int net = nl.find_net(nname);
      if (net < 0) fail("unknown net " + nname);
      if (kw == "input") nl.add_primary_input(gname, net);
      else nl.add_primary_output(gname, net);
    } else if (kw == "gate") {
      std::string gname, cname;
      if (!(ls >> gname >> cname)) fail("expected: gate <name> <cell> <pin>=<net>...");
      const Cell* cell = lib.find(cname);
      if (cell == nullptr) fail("unknown cell " + cname);
      const int g = nl.add_gate(gname, *cell);
      std::string binding;
      while (ls >> binding) {
        const auto eq = binding.find('=');
        if (eq == std::string::npos) fail("bad binding " + binding);
        const std::string pin_name = binding.substr(0, eq);
        const std::string net_name = binding.substr(eq + 1);
        int cp = -1;
        for (std::size_t k = 0; k < cell->pins.size(); ++k) {
          if (cell->pins[k].name == pin_name) cp = static_cast<int>(k);
        }
        if (cp < 0) fail("cell " + cname + " has no pin " + pin_name);
        const int net = nl.find_net(net_name);
        if (net < 0) fail("unknown net " + net_name);
        nl.connect(g, cp, net);
      }
    } else {
      throw std::runtime_error("parse error at line " + std::to_string(line_no) +
                               ": unknown keyword " + kw);
    }
  }
  nl.validate();
  return nl;
}

}  // namespace ot
