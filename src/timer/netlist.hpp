// netlist.hpp - gate-level netlist storage, a text format parser/writer,
// and the deterministic random-circuit generator that stands in for the
// paper's proprietary benchmark designs (tv80, vga_lcd, netcard, leon3mp;
// DESIGN.md substitution #3).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "timer/celllib.hpp"

namespace ot {

/// One instantiated pin: belongs to gate `gate`, realizes cell pin
/// `cell_pin` of the gate's cell, and attaches to net `net` (-1 = floating).
struct Pin {
  int gate{-1};
  int cell_pin{-1};
  int net{-1};
  [[nodiscard]] bool is_floating() const noexcept { return net < 0; }
};

struct Gate {
  std::string name;
  const Cell* cell{nullptr};
  std::vector<int> pins;  // pin ids, parallel to cell->pins
};

struct Net {
  std::string name;
  double wire_cap{0.0};    // fF
  int driver{-1};          // pin id of the driving (output) pin
  std::vector<int> sinks;  // pin ids of input pins on this net
};

class Netlist {
 public:
  explicit Netlist(const CellLibrary& lib) : _lib(&lib) {}

  /// Instantiate a gate of `cell`; creates one floating pin per cell pin.
  int add_gate(const std::string& name, const Cell& cell);

  /// Create a net.
  int add_net(const std::string& name, double wire_cap = 0.0);

  /// Attach cell pin `cell_pin` of `gate` to `net`.  Output pins become the
  /// net's driver (a net has at most one driver); input pins become sinks.
  void connect(int gate, int cell_pin, int net);

  /// Convenience: add a primary input/output (pseudo gates around one net).
  int add_primary_input(const std::string& name, int net);
  int add_primary_output(const std::string& name, int net);

  /// Replace the cell of `gate` with `new_cell` (same pin layout required) -
  /// the resize operation of the incremental-timing experiments.
  void resize_gate(int gate, const Cell& new_cell);

  /// Structural checks: every net driven, no floating input pins, pin
  /// layouts consistent.  Throws std::runtime_error on violation.
  void validate() const;

  [[nodiscard]] const CellLibrary& library() const noexcept { return *_lib; }
  [[nodiscard]] std::size_t num_gates() const noexcept { return _gates.size(); }
  [[nodiscard]] std::size_t num_nets() const noexcept { return _nets.size(); }
  [[nodiscard]] std::size_t num_pins() const noexcept { return _pins.size(); }

  [[nodiscard]] const Gate& gate(int i) const { return _gates[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Net& net(int i) const { return _nets[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Pin& pin(int i) const { return _pins[static_cast<std::size_t>(i)]; }

  [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return _gates; }
  [[nodiscard]] const std::vector<Net>& nets() const noexcept { return _nets; }
  [[nodiscard]] const std::vector<Pin>& pins() const noexcept { return _pins; }

  /// Cell-pin metadata of an instantiated pin.
  [[nodiscard]] const CellPin& cell_pin_of(int pin_id) const {
    const Pin& p = pin(pin_id);
    return _gates[static_cast<std::size_t>(p.gate)].cell->pins[static_cast<std::size_t>(p.cell_pin)];
  }
  [[nodiscard]] bool pin_is_input(int pin_id) const { return cell_pin_of(pin_id).is_input; }

  /// Full hierarchical pin name "gate:PIN" (paper Fig. 8 labels).
  [[nodiscard]] std::string pin_name(int pin_id) const;

  /// Total capacitive load on a net: wire capacitance + sink pin caps.
  [[nodiscard]] double net_load(int net_id) const;

  [[nodiscard]] int find_gate(const std::string& name) const;
  [[nodiscard]] int find_net(const std::string& name) const;

 private:
  const CellLibrary* _lib;
  std::vector<Gate> _gates;
  std::vector<Net> _nets;
  std::vector<Pin> _pins;
  std::unordered_map<std::string, int> _gate_index;
  std::unordered_map<std::string, int> _net_index;
};

/// Parameters of the synthetic circuit generator.
struct CircuitSpec {
  std::size_t num_gates{1000};     // combinational gates + flops (excl. IO)
  std::size_t num_inputs{32};
  std::size_t num_outputs{32};
  double dff_fraction{0.08};       // share of gates that are flops
  std::size_t locality_window{0};  // candidate-driver window (0 = auto)
  double wire_cap_min{0.5};        // fF
  double wire_cap_max{3.0};
  std::uint64_t seed{1};
};

/// Generate a deterministic random DAG circuit: gates pick drivers among
/// earlier nets (bounded window => bounded logic depth), flops re-source
/// downstream logic, dangling nets feed primary outputs.
[[nodiscard]] Netlist make_circuit(const CellLibrary& lib, const CircuitSpec& spec);

/// Named presets matching the paper's designs at true gate counts; pass
/// `scale` < 1 to shrink proportionally (1-core host default in benches).
[[nodiscard]] CircuitSpec tv80_spec(double scale = 1.0);      // 5.3K gates
[[nodiscard]] CircuitSpec vga_lcd_spec(double scale = 1.0);   // 139.5K gates
[[nodiscard]] CircuitSpec netcard_spec(double scale = 1.0);   // 1.4M gates
[[nodiscard]] CircuitSpec leon3mp_spec(double scale = 1.0);   // 1.2M gates

/// Text-format writer/parser (".ckt"): one line per gate,
/// `gate <name> <cell> <PIN>=<net> ...`, plus `input`/`output`/`netcap`
/// lines.  Round-trips through parse_netlist.
void write_netlist(std::ostream& os, const Netlist& nl);
[[nodiscard]] Netlist parse_netlist(std::istream& is, const CellLibrary& lib);

}  // namespace ot
