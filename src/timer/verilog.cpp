#include "timer/verilog.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace ot {

namespace {

class VLexer {
 public:
  explicit VLexer(std::istream& is) {
    std::ostringstream ss;
    ss << is.rdbuf();
    _src = ss.str();
  }

  /// Next token: identifier (incl. escaped \name), punct char, or "" at EOF.
  std::string next() {
    skip();
    if (_pos >= _src.size()) return "";
    const char c = _src[_pos];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\') {
      std::string t;
      if (c == '\\') ++_pos;  // escaped identifier: up to whitespace
      while (_pos < _src.size() &&
             (std::isalnum(static_cast<unsigned char>(_src[_pos])) ||
              _src[_pos] == '_' || _src[_pos] == '$' ||
              (c == '\\' && !std::isspace(static_cast<unsigned char>(_src[_pos]))))) {
        t.push_back(_src[_pos++]);
      }
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string t;
      while (_pos < _src.size() &&
             (std::isalnum(static_cast<unsigned char>(_src[_pos])) ||
              _src[_pos] == '\'' || _src[_pos] == '_')) {
        t.push_back(_src[_pos++]);
      }
      return t;
    }
    ++_pos;
    return std::string(1, c);
  }

  [[nodiscard]] int line() const noexcept { return _line; }

 private:
  void skip() {
    for (;;) {
      while (_pos < _src.size() &&
             std::isspace(static_cast<unsigned char>(_src[_pos]))) {
        if (_src[_pos] == '\n') ++_line;
        ++_pos;
      }
      if (_pos + 1 < _src.size() && _src[_pos] == '/' && _src[_pos + 1] == '/') {
        while (_pos < _src.size() && _src[_pos] != '\n') ++_pos;
        continue;
      }
      if (_pos + 1 < _src.size() && _src[_pos] == '/' && _src[_pos + 1] == '*') {
        _pos += 2;
        while (_pos + 1 < _src.size() &&
               !(_src[_pos] == '*' && _src[_pos + 1] == '/')) {
          if (_src[_pos] == '\n') ++_line;
          ++_pos;
        }
        _pos = std::min(_src.size(), _pos + 2);
        continue;
      }
      return;
    }
  }

  std::string _src;
  std::size_t _pos{0};
  int _line{1};
};

[[noreturn]] void fail(const VLexer& lex, const std::string& why) {
  throw std::runtime_error("verilog parse error at line " +
                           std::to_string(lex.line()) + ": " + why);
}

}  // namespace

Netlist parse_verilog(std::istream& is, const CellLibrary& lib,
                      double default_wire_cap) {
  VLexer lex(is);
  Netlist nl(lib);

  auto expect = [&](const std::string& want) {
    const std::string got = lex.next();
    if (got != want) fail(lex, "expected '" + want + "', got '" + got + "'");
  };

  expect("module");
  (void)lex.next();  // module name
  // Port header: ( a, b, ... );  - names repeated in input/output decls.
  expect("(");
  while (true) {
    const std::string t = lex.next();
    if (t == ")") break;
    if (t.empty()) fail(lex, "unterminated port list");
  }
  expect(";");

  std::vector<std::string> inputs, outputs;
  auto net_of = [&](const std::string& name) {
    const int existing = nl.find_net(name);
    if (existing >= 0) return existing;
    return nl.add_net(name, default_wire_cap);
  };

  for (;;) {
    std::string t = lex.next();
    if (t.empty()) fail(lex, "missing endmodule");
    if (t == "endmodule") break;

    if (t == "input" || t == "output" || t == "wire") {
      const bool is_in = (t == "input");
      const bool is_out = (t == "output");
      for (;;) {
        const std::string name = lex.next();
        if (name.empty()) fail(lex, "bad declaration list");
        (void)net_of(name);
        if (is_in) inputs.push_back(name);
        if (is_out) outputs.push_back(name);
        const std::string sep = lex.next();
        if (sep == ";") break;
        if (sep != ",") fail(lex, "expected ',' or ';' in declaration");
      }
      continue;
    }

    // Gate instantiation: <cell> <inst> ( .PIN(net), ... );
    const Cell* cell = lib.find(t);
    if (cell == nullptr) fail(lex, "unknown cell '" + t + "'");
    const std::string inst = lex.next();
    if (inst.empty()) fail(lex, "missing instance name");
    const int gate = nl.add_gate(inst, *cell);
    expect("(");
    for (;;) {
      std::string tok = lex.next();
      if (tok == ")") break;
      if (tok == ",") continue;
      if (tok != ".") fail(lex, "expected '.PIN(net)' connection");
      const std::string pin_name = lex.next();
      expect("(");
      const std::string net_name = lex.next();
      expect(")");
      int cp = -1;
      for (std::size_t k = 0; k < cell->pins.size(); ++k) {
        if (cell->pins[k].name == pin_name) cp = static_cast<int>(k);
      }
      if (cp < 0) fail(lex, "cell " + cell->name + " has no pin " + pin_name);
      const int net = nl.find_net(net_name);
      if (net < 0) fail(lex, "undeclared net '" + net_name + "'");
      nl.connect(gate, cp, net);
    }
    expect(";");
  }

  // Ports become the IO pseudo gates.
  for (const auto& name : inputs) nl.add_primary_input(name + "__pi", nl.find_net(name));
  for (const auto& name : outputs) nl.add_primary_output(name + "__po", nl.find_net(name));

  nl.validate();
  return nl;
}

Netlist parse_verilog_file(const std::string& path, const CellLibrary& lib,
                           double default_wire_cap) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open verilog file: " + path);
  return parse_verilog(in, lib, default_wire_cap);
}

void write_verilog(std::ostream& os, const Netlist& nl,
                   const std::string& module_name) {
  std::vector<std::pair<std::string, std::string>> inputs;   // (port, net)
  std::vector<std::pair<std::string, std::string>> outputs;
  for (const Gate& g : nl.gates()) {
    if (g.cell->kind == CellKind::Input) {
      inputs.emplace_back(g.name, nl.net(nl.pin(g.pins[0]).net).name);
    } else if (g.cell->kind == CellKind::Output) {
      outputs.emplace_back(g.name, nl.net(nl.pin(g.pins[0]).net).name);
    }
  }

  os << "// generated by mini-OpenTimer (structural subset)\n";
  os << "module " << module_name << " (";
  bool first = true;
  for (const auto& [port, net] : inputs) {
    os << (first ? "" : ", ") << net;
    first = false;
    (void)port;
  }
  for (const auto& [port, net] : outputs) {
    os << (first ? "" : ", ") << net;
    first = false;
    (void)port;
  }
  os << ");\n";

  std::unordered_set<std::string> io_nets;
  for (const auto& [port, net] : inputs) {
    os << "  input " << net << ";\n";
    io_nets.insert(net);
  }
  for (const auto& [port, net] : outputs) {
    os << "  output " << net << ";\n";
    io_nets.insert(net);
  }
  for (const Net& n : nl.nets()) {
    if (io_nets.count(n.name) == 0) os << "  wire " << n.name << ";\n";
  }

  for (const Gate& g : nl.gates()) {
    if (g.cell->kind == CellKind::Input || g.cell->kind == CellKind::Output) continue;
    os << "  " << g.cell->name << " " << g.name << " (";
    for (std::size_t cp = 0; cp < g.cell->pins.size(); ++cp) {
      os << (cp == 0 ? " " : ", ") << "." << g.cell->pins[cp].name << "("
         << nl.net(nl.pin(g.pins[cp]).net).name << ")";
    }
    os << " );\n";
  }
  os << "endmodule\n";
}

}  // namespace ot
