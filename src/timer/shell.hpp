// shell.hpp - ot::Shell, the command-driven front end of the mini-OpenTimer
// (real OpenTimer ships the same kind of shell).  Commands, one per line:
//
//   read_celllib <file.lib>        load a Liberty library (else synthetic)
//   read_verilog <file.v>          load a structural Verilog netlist
//   read_netlist <file.ckt>        load the native netlist format
//   read_sdc <file.sdc>            apply constraints
//   generate <gates> <seed>        synthesize a random circuit
//   set_threads <n>                worker threads for the next init
//   set_corners <n>                analysis corners
//   init_timer [v1|v2|seq]         build the engine and run full timing
//   report_worst_slack
//   report_slack                   WNS / TNS / violating endpoints
//   report_timing [k]              k worst paths (default 1)
//   resize_gate <gate> <cell>      incremental design transform
//   write_verilog <file> | write_liberty <file> | write_sdc <file>
//   dump_taskgraph <file>          DOT of the last v2 update (Fig. 8)
//   stats                          design statistics
//   help | quit
//
// Unknown commands report an error and continue; run() returns the number
// of failed commands (0 = clean session).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "timer/liberty.hpp"
#include "timer/netlist.hpp"
#include "timer/timers.hpp"

namespace ot {

class Shell {
 public:
  Shell();

  /// Process commands from `in`, writing results to `out` and diagnostics
  /// to `err`; returns the number of failed commands.
  int run(std::istream& in, std::ostream& out, std::ostream& err);

  /// Execute a single command line; returns false when it failed.
  bool execute(const std::string& line, std::ostream& out);

  [[nodiscard]] bool has_design() const noexcept { return _netlist != nullptr; }
  [[nodiscard]] bool wants_quit() const noexcept { return _quit; }

 private:
  void require_design() const;
  void require_timer() const;

  CellLibrary _library;
  std::unique_ptr<Netlist> _netlist;
  std::unique_ptr<TimerBase> _timer;
  TimerOptions _options;
  std::string _engine{"v2"};
  bool _quit{false};
};

}  // namespace ot
