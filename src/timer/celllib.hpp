// celllib.hpp - a synthetic standard-cell library for the mini-OpenTimer
// substrate (ot::).
//
// The paper's experiments use the NanGate 45nm library, which is not
// redistributable here; this module provides a deterministic synthetic
// library with the same structure (DESIGN.md substitution #3): cells with
// typed pins, per-arc linear delay models
//
//     delay(load, slew_in) = intrinsic + resistance * load
//                            + slew_sensitivity * slew_in
//     slew_out(load)       = slew_intrinsic + slew_resistance * load
//                            + slew_passthrough * slew_in
//
// per transition (rise/fall), with unateness deciding the input-to-output
// transition mapping, and X1/X2/X4 drive variants (resize targets for the
// incremental-timing experiments).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace ot {

/// Rise/fall transition index.
enum Tran : int { kRise = 0, kFall = 1 };

enum class CellKind {
  Input,   // primary-input pseudo cell (one output pin)
  Output,  // primary-output pseudo cell (one input pin)
  Inv,
  Buf,
  Nand2,
  Nor2,
  And2,
  Or2,
  Xor2,
  Aoi21,
  Oai21,
  Dff,     // CLK->Q arc; D is a constrained endpoint
};

/// How an input transition maps to the output transition through an arc.
enum class TimingSense { PositiveUnate, NegativeUnate, NonUnate };

struct CellPin {
  std::string name;
  bool is_input{true};
  bool is_clock{false};
  double capacitance{0.0};  // fF
};

/// An NLDM-style 2D lookup table: value(input_slew, output_load) with
/// bilinear interpolation between grid points and clamping outside the
/// characterized window (as production timers do for out-of-range indices).
class Lut {
 public:
  static constexpr int kPoints = 7;

  std::array<double, kPoints> slew_axis{};
  std::array<double, kPoints> load_axis{};
  std::array<std::array<double, kPoints>, kPoints> value{};  // [slew][load]

  [[nodiscard]] double operator()(double slew, double load) const;
};

/// One timing arc: input pin `from_pin` to the (single) output pin.  The
/// linear coefficients are the *generation parameters* of the synthetic
/// library; timing queries go through the characterized NLDM tables
/// (delay(slew_in, load) and output-slew(slew_in, load) per transition),
/// which add a mild nonlinearity on top of the linear skeleton.
struct CellArc {
  int from_pin{0};                          // index into Cell::pins
  TimingSense sense{TimingSense::PositiveUnate};
  std::array<double, 2> intrinsic{};        // ns, per output transition
  std::array<double, 2> resistance{};       // ns per fF of load
  std::array<double, 2> slew_intrinsic{};   // ns
  std::array<double, 2> slew_resistance{};  // ns per fF
  double slew_sensitivity{0.05};            // delay contribution of input slew
  double slew_passthrough{0.10};            // slew contribution of input slew
  std::array<Lut, 2> delay_lut{};           // per output transition
  std::array<Lut, 2> slew_lut{};
};

struct Cell {
  std::string name;
  CellKind kind{CellKind::Inv};
  int drive{1};  // 1, 2, 4 (X1/X2/X4)
  std::vector<CellPin> pins;
  std::vector<CellArc> arcs;

  [[nodiscard]] int num_inputs() const noexcept {
    int n = 0;
    for (const auto& p : pins) n += p.is_input ? 1 : 0;
    return n;
  }
  /// Index of the unique output pin (-1 for the Output pseudo cell).
  [[nodiscard]] int output_pin() const noexcept {
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (!pins[i].is_input) return static_cast<int>(i);
    }
    return -1;
  }
  [[nodiscard]] bool is_sequential() const noexcept { return kind == CellKind::Dff; }
};

class CellLibrary {
 public:
  /// The deterministic synthetic library used by every experiment: each
  /// combinational kind in X1/X2/X4 drives, plus DFF and the IO pseudo cells.
  [[nodiscard]] static CellLibrary make_synthetic();

  /// Find a cell by name; returns nullptr when absent.
  [[nodiscard]] const Cell* find(const std::string& name) const;

  /// Find a cell by name; throws std::out_of_range when absent.
  [[nodiscard]] const Cell& at(const std::string& name) const;

  /// All cells of `kind`, ordered by drive (the resize ladder).
  [[nodiscard]] std::vector<const Cell*> variants(CellKind kind) const;

  /// All combinational kinds with exactly `num_inputs` inputs.
  [[nodiscard]] std::vector<const Cell*> combinational_with_inputs(int num_inputs) const;

  [[nodiscard]] const Cell& input_cell() const { return at("__PI__"); }
  [[nodiscard]] const Cell& output_cell() const { return at("__PO__"); }

  [[nodiscard]] std::size_t size() const noexcept { return _cells.size(); }
  [[nodiscard]] const std::vector<Cell>& cells() const noexcept { return _cells; }

  /// Append a cell (used by the Liberty reader; names must be unique).
  void add_cell(Cell cell) { add(std::move(cell)); }

 private:
  void add(Cell cell);
  std::vector<Cell> _cells;
};

/// Human-readable kind name (used by the netlist writer).
[[nodiscard]] const char* to_string(CellKind kind);

}  // namespace ot
