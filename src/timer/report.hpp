// report.hpp - timing reports on top of an analyzed TimingState: critical
// path extraction (the black path of paper Fig. 8), worst/total negative
// slack, and slack histograms.
#pragma once

#include <iosfwd>
#include <vector>

#include "timer/propagation.hpp"

namespace ot {

struct PathPoint {
  int pin{-1};
  int tran{kRise};      // transition at this pin on the path
  double arrival{0.0};  // late arrival time
  double delay{0.0};    // delay of the arc from the previous point
};

struct TimingPath {
  double slack{0.0};
  int endpoint{-1};
  std::vector<PathPoint> points;  // launch (source) first, endpoint last
};

/// Extract the worst late path ending at each of the `k` worst endpoints
/// (one path per endpoint, sorted by ascending slack).  Backtracks the
/// arrival support through the timing graph.
[[nodiscard]] std::vector<TimingPath> report_paths(const Netlist& nl,
                                                   const TimingGraph& graph,
                                                   const TimingState& state,
                                                   std::size_t k = 1);

struct SlackStats {
  double wns{0.0};     // worst negative slack (0 when all paths meet timing)
  double tns{0.0};     // total negative slack over endpoints
  int violations{0};   // endpoints with negative slack
  int endpoints{0};
  std::vector<int> histogram;  // slack histogram over [lo, hi)
  double histo_lo{0.0};
  double histo_hi{0.0};
};

/// Endpoint slack statistics and a `bins`-bucket histogram over [lo, hi).
[[nodiscard]] SlackStats slack_stats(const TimingGraph& graph, const TimingState& state,
                                     int bins = 20, double lo = -1.0, double hi = 1.0);

/// Pretty-print a path, one line per pin with arrival/delay (Fig. 8 style).
void print_path(std::ostream& os, const Netlist& nl, const TimingPath& path);

}  // namespace ot
