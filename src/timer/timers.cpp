// timers.cpp - TimerBase and SeqTimer (TimerV1/TimerV2 live in their own
// translation units so their software costs can be measured separately for
// paper Table II, and so that only timer_v1.cpp needs OpenMP).
#include "timer/timers.hpp"

namespace ot {

TimerBase::TimerBase(Netlist& netlist, const TimerOptions& options)
    : _netlist(&netlist), _graph(netlist), _state(netlist, options), _options(options) {}

void TimerBase::full_update() {
  _state.update_all_loads(*_netlist);
  const std::vector<int>& fwd = _graph.topo_order();
  std::vector<int> bwd(fwd.rbegin(), fwd.rend());
  _last_update_tasks = fwd.size() + bwd.size();
  run_update(fwd, bwd);
}

void TimerBase::resize(int gate_id, const Cell& new_cell) {
  Netlist& nl = *_netlist;
  const Gate& gate = nl.gate(gate_id);

  // Apply the design transform.
  nl.resize_gate(gate_id, new_cell);

  // Input pin capacitances changed -> the loads of the gate's input nets
  // changed -> the *drivers* of those nets produce new delays/slews.  The
  // gate's own arcs changed too -> its output pin is re-timed.
  std::vector<int> seeds;
  for (std::size_t cp = 0; cp < gate.cell->pins.size(); ++cp) {
    const int pin_id = gate.pins[cp];
    const Pin& p = nl.pin(pin_id);
    if (gate.cell->pins[cp].is_input) {
      _state.update_net_load(nl, p.net);
      const int driver = nl.net(p.net).driver;
      if (driver >= 0) seeds.push_back(driver);
    } else {
      seeds.push_back(pin_id);
    }
  }

  const std::vector<int> fwd = _graph.forward_cone(seeds);
  const std::vector<int> bwd = _graph.backward_cone(fwd);
  _last_update_tasks = fwd.size() + bwd.size();
  run_update(fwd, bwd);
}

void TimerBase::run_update(const std::vector<int>& fwd, const std::vector<int>& bwd) {
  run_forward(fwd);
  run_backward(bwd);
}

SeqTimer::SeqTimer(Netlist& netlist, const TimerOptions& options)
    : TimerBase(netlist, options) {}

void SeqTimer::run_forward(const std::vector<int>& pins) {
  for (int p : pins) propagate_pin_forward(*_netlist, _graph, _state, p);
}

void SeqTimer::run_backward(const std::vector<int>& pins) {
  for (int p : pins) propagate_pin_backward(*_netlist, _graph, _state, p);
}

}  // namespace ot
