// timing_graph.hpp - the pin-level timing graph of a netlist.
//
// Nodes are pins; arcs are either *cell arcs* (input pin -> output pin of a
// gate, carrying the library delay model) or *net arcs* (driver pin -> sink
// pin, carrying the wire delay).  Sequential cells contribute only their
// CLK->Q arc, so the graph is a DAG; DFF D pins and primary outputs are the
// constrained endpoints.
//
// The graph also provides levelization (the substrate of the OpenTimer-v1
// execution style) and forward/backward cone extraction (the substrate of
// incremental timing).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "timer/netlist.hpp"

namespace ot {

struct TimingArcRef {
  enum class Kind { Cell, Net };
  Kind kind{Kind::Cell};
  int from_pin{-1};
  int to_pin{-1};
  int gate{-1};      // Kind::Cell: the owning gate
  int cell_arc{-1};  // Kind::Cell: index into gate's cell->arcs
  int net{-1};       // Kind::Net: the owning net
};

class TimingGraph {
 public:
  explicit TimingGraph(const Netlist& nl);

  [[nodiscard]] std::size_t num_pins() const noexcept { return _fanin.size(); }
  [[nodiscard]] std::size_t num_arcs() const noexcept { return _arcs.size(); }

  [[nodiscard]] const TimingArcRef& arc(int id) const {
    return _arcs[static_cast<std::size_t>(id)];
  }
  /// Arc ids entering / leaving `pin`.
  [[nodiscard]] const std::vector<int>& fanin(int pin) const {
    return _fanin[static_cast<std::size_t>(pin)];
  }
  [[nodiscard]] const std::vector<int>& fanout(int pin) const {
    return _fanout[static_cast<std::size_t>(pin)];
  }

  [[nodiscard]] bool is_source(int pin) const { return fanin(pin).empty(); }
  [[nodiscard]] bool is_endpoint(int pin) const { return fanout(pin).empty(); }

  /// Topological order over all pins (sources first) and per-pin levels.
  [[nodiscard]] const std::vector<int>& topo_order() const noexcept { return _topo; }
  [[nodiscard]] int level(int pin) const { return _level[static_cast<std::size_t>(pin)]; }
  [[nodiscard]] int max_level() const noexcept { return _max_level; }
  /// Position of `pin` in topo_order (usable as a topological key).
  [[nodiscard]] int topo_index(int pin) const {
    return _topo_index[static_cast<std::size_t>(pin)];
  }

  /// Pins reachable forward from `seeds` (inclusive), sorted topologically.
  [[nodiscard]] std::vector<int> forward_cone(std::span<const int> seeds) const;

  /// Pins reaching any pin of `region` backward (inclusive), sorted in
  /// *reverse* topological order (endpoint side first).
  [[nodiscard]] std::vector<int> backward_cone(std::span<const int> region) const;

 private:
  std::vector<TimingArcRef> _arcs;
  std::vector<std::vector<int>> _fanin;
  std::vector<std::vector<int>> _fanout;
  std::vector<int> _topo;
  std::vector<int> _topo_index;
  std::vector<int> _level;
  int _max_level{0};
};

}  // namespace ot
