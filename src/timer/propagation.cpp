#include "timer/propagation.hpp"

#include <algorithm>

namespace ot {

TimingState::TimingState(const Netlist& nl, const TimerOptions& opt) : _opt(opt) {
  _data.resize(nl.num_pins());
  _load.assign(nl.num_pins(), 0.0);
  update_all_loads(nl);
}

void TimingState::update_net_load(const Netlist& nl, int net) {
  const Net& n = nl.net(net);
  if (n.driver >= 0) _load[static_cast<std::size_t>(n.driver)] = nl.net_load(net);
}

void TimingState::update_all_loads(const Netlist& nl) {
  for (std::size_t i = 0; i < nl.num_nets(); ++i) {
    update_net_load(nl, static_cast<int>(i));
  }
}

double cell_arc_delay(const CellArc& ca, int tran_out, double load, double slew_in) {
  return ca.delay_lut[static_cast<std::size_t>(tran_out)](slew_in, load);
}

double cell_arc_slew(const CellArc& ca, int tran_out, double load, double slew_in) {
  return ca.slew_lut[static_cast<std::size_t>(tran_out)](slew_in, load);
}

bool sense_allows(TimingSense sense, int tran_in, int tran_out) {
  switch (sense) {
    case TimingSense::PositiveUnate: return tran_in == tran_out;
    case TimingSense::NegativeUnate: return tran_in != tran_out;
    case TimingSense::NonUnate: return true;
  }
  return false;
}

namespace {

const CellArc& arc_model(const Netlist& nl, const TimingArcRef& a) {
  return nl.gate(a.gate).cell->arcs[static_cast<std::size_t>(a.cell_arc)];
}

}  // namespace

void propagate_pin_forward(const Netlist& nl, const TimingGraph& graph,
                           TimingState& state, int pin) {
  TimingData& d = state.data(pin);

  if (graph.is_source(pin)) {
    for (int t : {kRise, kFall}) {
      d.at[kEarly][static_cast<std::size_t>(t)] = 0.0;
      d.at[kLate][static_cast<std::size_t>(t)] = 0.0;
      d.slew[kEarly][static_cast<std::size_t>(t)] = state.options().input_slew;
      d.slew[kLate][static_cast<std::size_t>(t)] = state.options().input_slew;
    }
    return;
  }

  // Reset to identity of the merge.
  for (int t : {kRise, kFall}) {
    d.at[kEarly][static_cast<std::size_t>(t)] = kInf;
    d.at[kLate][static_cast<std::size_t>(t)] = -kInf;
    d.slew[kEarly][static_cast<std::size_t>(t)] = kInf;
    d.slew[kLate][static_cast<std::size_t>(t)] = -kInf;
  }

  for (int aid : graph.fanin(pin)) {
    const TimingArcRef& a = graph.arc(aid);
    const TimingData& src = state.data(a.from_pin);

    if (a.kind == TimingArcRef::Kind::Net) {
      const double wire = nl.net(a.net).wire_cap * kWireDelayPerCap;
      for (int t : {kRise, kFall}) {
        const auto tt = static_cast<std::size_t>(t);
        d.at[kEarly][tt] = std::min(d.at[kEarly][tt], src.at[kEarly][tt] + wire);
        d.at[kLate][tt] = std::max(d.at[kLate][tt], src.at[kLate][tt] + wire);
        d.slew[kEarly][tt] = std::min(d.slew[kEarly][tt], src.slew[kEarly][tt]);
        d.slew[kLate][tt] = std::max(d.slew[kLate][tt], src.slew[kLate][tt]);
      }
      continue;
    }

    const CellArc& ca = arc_model(nl, a);
    const double load = state.load(pin);
    const int corners = state.options().corners;
    for (int to = 0; to < 2; ++to) {
      for (int ti = 0; ti < 2; ++ti) {
        if (!sense_allows(ca.sense, ti, to)) continue;
        const auto tos = static_cast<std::size_t>(to);
        const auto tis = static_cast<std::size_t>(ti);
        // Early uses early input values, late uses late - per-split
        // propagation as in standard STA.  Every corner re-interpolates the
        // NLDM tables at its derated operating point; the merge keeps the
        // best (early) / worst (late) value across corners.
        for (int c = 0; c < corners; ++c) {
          const double derate = 1.0 + 0.04 * c;
          {
            const double slew_in = src.slew[kEarly][tis] / derate;
            const double delay = cell_arc_delay(ca, to, load / derate, slew_in);
            const double slew = cell_arc_slew(ca, to, load / derate, slew_in);
            d.at[kEarly][tos] = std::min(d.at[kEarly][tos], src.at[kEarly][tis] + delay);
            d.slew[kEarly][tos] = std::min(d.slew[kEarly][tos], slew);
          }
          {
            const double slew_in = src.slew[kLate][tis] * derate;
            const double delay = cell_arc_delay(ca, to, load * derate, slew_in);
            const double slew = cell_arc_slew(ca, to, load * derate, slew_in);
            d.at[kLate][tos] = std::max(d.at[kLate][tos], src.at[kLate][tis] + delay);
            d.slew[kLate][tos] = std::max(d.slew[kLate][tos], slew);
          }
        }
      }
    }
  }
}

void propagate_pin_backward(const Netlist& nl, const TimingGraph& graph,
                            TimingState& state, int pin) {
  TimingData& d = state.data(pin);
  const TimerOptions& opt = state.options();

  if (graph.is_endpoint(pin)) {
    const Pin& p = nl.pin(pin);
    const Gate& g = nl.gate(p.gate);
    const bool is_dff_d = g.cell->is_sequential();
    const double late_req = opt.clock_period - (is_dff_d ? opt.setup : 0.0);
    const double early_req = opt.hold;
    for (int t : {kRise, kFall}) {
      d.rat[kLate][static_cast<std::size_t>(t)] = late_req;
      d.rat[kEarly][static_cast<std::size_t>(t)] = early_req;
    }
    return;
  }

  for (int t : {kRise, kFall}) {
    d.rat[kLate][static_cast<std::size_t>(t)] = kInf;     // min-merge
    d.rat[kEarly][static_cast<std::size_t>(t)] = -kInf;   // max-merge
  }

  for (int aid : graph.fanout(pin)) {
    const TimingArcRef& a = graph.arc(aid);
    const TimingData& dst = state.data(a.to_pin);

    if (a.kind == TimingArcRef::Kind::Net) {
      const double wire = nl.net(a.net).wire_cap * kWireDelayPerCap;
      for (int t : {kRise, kFall}) {
        const auto tt = static_cast<std::size_t>(t);
        d.rat[kLate][tt] = std::min(d.rat[kLate][tt], dst.rat[kLate][tt] - wire);
        d.rat[kEarly][tt] = std::max(d.rat[kEarly][tt], dst.rat[kEarly][tt] - wire);
      }
      continue;
    }

    const CellArc& ca = arc_model(nl, a);
    const double load = state.load(a.to_pin);
    const int corners = state.options().corners;
    const TimingData& self = d;
    for (int to = 0; to < 2; ++to) {
      for (int ti = 0; ti < 2; ++ti) {
        if (!sense_allows(ca.sense, ti, to)) continue;
        const auto tos = static_cast<std::size_t>(to);
        const auto tis = static_cast<std::size_t>(ti);
        // Mirror the forward corner sweep so slack = rat - at stays
        // consistent (late rat subtracts the worst-corner delay, early rat
        // the best-corner one).
        for (int c = 0; c < corners; ++c) {
          const double derate = 1.0 + 0.04 * c;
          const double delay_late =
              cell_arc_delay(ca, to, load * derate, self.slew[kLate][tis] * derate);
          const double delay_early =
              cell_arc_delay(ca, to, load / derate, self.slew[kEarly][tis] / derate);
          d.rat[kLate][tis] =
              std::min(d.rat[kLate][tis], dst.rat[kLate][tos] - delay_late);
          d.rat[kEarly][tis] =
              std::max(d.rat[kEarly][tis], dst.rat[kEarly][tos] - delay_early);
        }
      }
    }
  }
}

double late_slack(const TimingState& state, int pin) {
  const TimingData& d = state.data(pin);
  double worst = kInf;
  for (int t : {kRise, kFall}) {
    const auto tt = static_cast<std::size_t>(t);
    worst = std::min(worst, d.rat[kLate][tt] - d.at[kLate][tt]);
  }
  return worst;
}

double early_slack(const TimingState& state, int pin) {
  const TimingData& d = state.data(pin);
  double worst = kInf;
  for (int t : {kRise, kFall}) {
    const auto tt = static_cast<std::size_t>(t);
    worst = std::min(worst, d.at[kEarly][tt] - d.rat[kEarly][tt]);
  }
  return worst;
}

double worst_late_slack(const TimingGraph& graph, const TimingState& state) {
  double worst = kInf;
  for (std::size_t p = 0; p < graph.num_pins(); ++p) {
    if (!graph.is_endpoint(static_cast<int>(p))) continue;
    worst = std::min(worst, late_slack(state, static_cast<int>(p)));
  }
  return worst;
}

}  // namespace ot
