// timers.hpp - the timing engines.
//
//  * SeqTimer  - sequential reference implementation (correctness oracle).
//  * TimerV1   - "OpenTimer v1" style: levelization + per-level OpenMP
//                parallel-for, with the level-bucket data structure rebuilt
//                on every incremental iteration (paper §IV-B: v1's overhead
//                is dominated by reconstructing this structure).
//  * TimerV2   - "OpenTimer v2" style: each update builds a tf::Taskflow
//                task dependency graph over the affected cone and lets the
//                computation flow asynchronously with the timing graph.
//
// All engines share the update algebra of TimerBase: a full update
// propagates every pin; an incremental update (after a gate resize) fixes
// net loads, extracts the forward cone of the change and the backward cone
// of that region, and re-propagates exactly those pins.
#pragma once

#include <memory>
#include <vector>

#include "timer/propagation.hpp"

namespace tf {
class WorkStealingExecutor;
class ExecutorObserverInterface;
}

namespace ot {

class TimerBase {
 public:
  TimerBase(Netlist& netlist, const TimerOptions& options);
  virtual ~TimerBase() = default;

  /// Recompute timing of the whole design.
  void full_update();

  /// Resize `gate` to `new_cell` and incrementally re-time the affected
  /// cone (one "incremental iteration" of paper Fig. 9).
  void resize(int gate, const Cell& new_cell);

  // -- queries --------------------------------------------------------------
  [[nodiscard]] double arrival(int pin, int split, int tran) const {
    return _state.data(pin).at[static_cast<std::size_t>(split)][static_cast<std::size_t>(tran)];
  }
  [[nodiscard]] double required(int pin, int split, int tran) const {
    return _state.data(pin).rat[static_cast<std::size_t>(split)][static_cast<std::size_t>(tran)];
  }
  [[nodiscard]] double slack_late(int pin) const { return late_slack(_state, pin); }
  [[nodiscard]] double slack_early(int pin) const { return early_slack(_state, pin); }
  [[nodiscard]] double worst_slack() const { return worst_late_slack(_graph, _state); }

  [[nodiscard]] const TimingGraph& graph() const noexcept { return _graph; }
  [[nodiscard]] const TimingState& state() const noexcept { return _state; }
  [[nodiscard]] Netlist& netlist() noexcept { return *_netlist; }

  /// Pins touched by the last update (the paper's per-iteration task count).
  [[nodiscard]] std::size_t last_update_tasks() const noexcept {
    return _last_update_tasks;
  }

 protected:
  /// Propagate forward over `pins` (already topologically sorted).
  virtual void run_forward(const std::vector<int>& pins) = 0;
  /// Propagate backward over `pins` (already reverse-topologically sorted).
  virtual void run_backward(const std::vector<int>& pins) = 0;
  /// One full incremental pass; default = run_forward then run_backward.
  /// TimerV2 overrides it with a single fused task graph.
  virtual void run_update(const std::vector<int>& fwd, const std::vector<int>& bwd);

  Netlist* _netlist;
  TimingGraph _graph;
  TimingState _state;
  TimerOptions _options;
  std::size_t _last_update_tasks{0};
};

/// Sequential reference engine.
class SeqTimer final : public TimerBase {
 public:
  SeqTimer(Netlist& netlist, const TimerOptions& options = {});

 protected:
  void run_forward(const std::vector<int>& pins) override;
  void run_backward(const std::vector<int>& pins) override;
};

/// OpenTimer-v1 style engine (levelized OpenMP loops).
class TimerV1 final : public TimerBase {
 public:
  TimerV1(Netlist& netlist, const TimerOptions& options = {});

  /// Number of level buckets built during the last update (diagnostic).
  [[nodiscard]] std::size_t last_num_levels() const noexcept { return _last_levels; }

 protected:
  void run_forward(const std::vector<int>& pins) override;
  void run_backward(const std::vector<int>& pins) override;

 private:
  /// Rebuild the level-bucket list for `pins` - the per-iteration
  /// reconstruction cost inherent to the v1 pipeline.
  [[nodiscard]] std::vector<std::vector<int>> build_buckets(
      const std::vector<int>& pins, bool reverse);

  std::size_t _last_levels{0};
  std::vector<char> _in_region;    // scratch: update-region membership
  std::vector<int> _region_level;  // scratch: per-update levelization
};

/// OpenTimer-v2 style engine (Cpp-Taskflow task dependency graph).
class TimerV2 final : public TimerBase {
 public:
  TimerV2(Netlist& netlist, const TimerOptions& options = {});

  /// Share an existing executor (paper §III-E: modular development without
  /// thread over-subscription - e.g. one executor driving several timers,
  /// or a timer plus other taskflow workloads).
  TimerV2(Netlist& netlist, const TimerOptions& options,
          std::shared_ptr<tf::WorkStealingExecutor> executor);

  ~TimerV2() override;

  /// DOT dump of the task graph of the last update (paper Fig. 8).
  [[nodiscard]] std::string dump_last_task_graph() const;

  /// Attach an executor observer (CPU-utilization profiling, paper Fig. 10).
  void set_observer(std::shared_ptr<tf::ExecutorObserverInterface> observer);

 protected:
  void run_forward(const std::vector<int>& pins) override;
  void run_backward(const std::vector<int>& pins) override;
  void run_update(const std::vector<int>& fwd, const std::vector<int>& bwd) override;

 private:
  /// True when `pin` lies on the frontier of the forward cone (no in-cone
  /// successor) and must therefore feed the forward/backward barrier.
  [[nodiscard]] bool fanout_outside(const std::vector<int>& cone, int pin) const;

  struct Impl;
  std::unique_ptr<Impl> _impl;
};

}  // namespace ot
