#include "timer/timing_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace ot {

TimingGraph::TimingGraph(const Netlist& nl) {
  const std::size_t n = nl.num_pins();
  _fanin.resize(n);
  _fanout.resize(n);

  auto add_arc = [&](TimingArcRef a) {
    const int id = static_cast<int>(_arcs.size());
    _fanout[static_cast<std::size_t>(a.from_pin)].push_back(id);
    _fanin[static_cast<std::size_t>(a.to_pin)].push_back(id);
    _arcs.push_back(a);
  };

  // Cell arcs.
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(static_cast<int>(g));
    const int out = gate.cell->output_pin();
    for (std::size_t k = 0; k < gate.cell->arcs.size(); ++k) {
      const CellArc& ca = gate.cell->arcs[k];
      TimingArcRef a;
      a.kind = TimingArcRef::Kind::Cell;
      a.from_pin = gate.pins[static_cast<std::size_t>(ca.from_pin)];
      a.to_pin = gate.pins[static_cast<std::size_t>(out)];
      a.gate = static_cast<int>(g);
      a.cell_arc = static_cast<int>(k);
      add_arc(a);
    }
  }

  // Net arcs.
  for (std::size_t nid = 0; nid < nl.num_nets(); ++nid) {
    const Net& net = nl.net(static_cast<int>(nid));
    for (int sink : net.sinks) {
      TimingArcRef a;
      a.kind = TimingArcRef::Kind::Net;
      a.from_pin = net.driver;
      a.to_pin = sink;
      a.net = static_cast<int>(nid);
      add_arc(a);
    }
  }

  // Kahn topological sort + ASAP levelization.
  _level.assign(n, 0);
  _topo.reserve(n);
  std::vector<int> pending(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    pending[p] = static_cast<int>(_fanin[p].size());
  }
  std::vector<int> queue;
  for (std::size_t p = 0; p < n; ++p) {
    if (pending[p] == 0) queue.push_back(static_cast<int>(p));
  }
  while (!queue.empty()) {
    const int u = queue.back();
    queue.pop_back();
    _topo.push_back(u);
    for (int aid : _fanout[static_cast<std::size_t>(u)]) {
      const int v = _arcs[static_cast<std::size_t>(aid)].to_pin;
      _level[static_cast<std::size_t>(v)] =
          std::max(_level[static_cast<std::size_t>(v)],
                   _level[static_cast<std::size_t>(u)] + 1);
      if (--pending[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
    }
  }
  if (_topo.size() != n) {
    throw std::runtime_error("timing graph contains a combinational cycle");
  }
  _topo_index.assign(n, 0);
  for (std::size_t i = 0; i < _topo.size(); ++i) {
    _topo_index[static_cast<std::size_t>(_topo[i])] = static_cast<int>(i);
  }
  for (int lv : _level) _max_level = std::max(_max_level, lv);
}

std::vector<int> TimingGraph::forward_cone(std::span<const int> seeds) const {
  std::vector<char> in_cone(num_pins(), 0);
  std::vector<int> stack(seeds.begin(), seeds.end());
  for (int s : stack) in_cone[static_cast<std::size_t>(s)] = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int aid : fanout(u)) {
      const int v = _arcs[static_cast<std::size_t>(aid)].to_pin;
      if (!in_cone[static_cast<std::size_t>(v)]) {
        in_cone[static_cast<std::size_t>(v)] = 1;
        stack.push_back(v);
      }
    }
  }
  std::vector<int> cone;
  for (int p : _topo) {
    if (in_cone[static_cast<std::size_t>(p)]) cone.push_back(p);
  }
  return cone;
}

std::vector<int> TimingGraph::backward_cone(std::span<const int> region) const {
  std::vector<char> in_cone(num_pins(), 0);
  std::vector<int> stack(region.begin(), region.end());
  for (int s : stack) in_cone[static_cast<std::size_t>(s)] = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int aid : fanin(u)) {
      const int v = _arcs[static_cast<std::size_t>(aid)].from_pin;
      if (!in_cone[static_cast<std::size_t>(v)]) {
        in_cone[static_cast<std::size_t>(v)] = 1;
        stack.push_back(v);
      }
    }
  }
  std::vector<int> cone;
  for (auto it = _topo.rbegin(); it != _topo.rend(); ++it) {
    if (in_cone[static_cast<std::size_t>(*it)]) cone.push_back(*it);
  }
  return cone;
}

}  // namespace ot
