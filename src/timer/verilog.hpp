// verilog.hpp - structural (gate-level) Verilog subset reader/writer.
//
// The paper's benchmark circuits (tv80, vga_lcd, netcard, leon3mp) are
// gate-level Verilog netlists; this module implements the subset those
// files use:
//
//   module <name> ( <port>, ... );
//     input  a, b, clock;
//     output y;
//     wire w1, w2;
//     NAND2_X1 u1 ( .A(a), .B(b), .Y(w1) );
//     DFF_X1   f1 ( .CLK(clock), .D(w1), .Q(w2) );
//   endmodule
//
// Named port connections only (as netlist synthesis emits).  The writer
// round-trips through the parser (tested), so generated circuits can be
// exported, inspected, and reloaded.
#pragma once

#include <iosfwd>
#include <string>

#include "timer/netlist.hpp"

namespace ot {

/// Parse a structural Verilog module into a Netlist over `lib`.  Wire
/// capacitances are not part of Verilog; sinks' pin caps still load nets,
/// and `default_wire_cap` seeds each net's wire capacitance.
[[nodiscard]] Netlist parse_verilog(std::istream& is, const CellLibrary& lib,
                                    double default_wire_cap = 1.0);
[[nodiscard]] Netlist parse_verilog_file(const std::string& path,
                                         const CellLibrary& lib,
                                         double default_wire_cap = 1.0);

/// Emit `nl` as a structural Verilog module named `module_name`.
void write_verilog(std::ostream& os, const Netlist& nl,
                   const std::string& module_name = "top");

}  // namespace ot
