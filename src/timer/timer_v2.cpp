// timer_v2.cpp - the "OpenTimer v2" engine: every update builds a
// tf::Taskflow task dependency graph over the affected cone - one task per
// pin, one dependency per timing arc inside the cone - and dispatches it.
// No levelization, no per-level barriers: computation flows asynchronously
// with the timing graph (paper §IV-B).
#include <sstream>

#include "taskflow/taskflow.hpp"
#include "timer/timers.hpp"

namespace ot {

struct TimerV2::Impl {
  std::shared_ptr<tf::WorkStealingExecutor> executor;
  std::string last_dot;

  // Persistent scratch reused across updates (sized to the pin count once).
  std::vector<tf::Task> fwd_task;
  std::vector<tf::Task> bwd_task;
  std::vector<char> in_fwd;
  std::vector<char> in_bwd;

  /// Keep a DOT snapshot only for small task graphs (Fig. 8-scale dumps);
  /// million-task graphs would spend more time printing than timing.
  static constexpr std::size_t kDumpLimit = 4096;
};

TimerV2::TimerV2(Netlist& netlist, const TimerOptions& options)
    : TimerV2(netlist, options,
              tf::make_executor(options.num_threads == 0 ? 1 : options.num_threads)) {}

TimerV2::TimerV2(Netlist& netlist, const TimerOptions& options,
                 std::shared_ptr<tf::WorkStealingExecutor> executor)
    : TimerBase(netlist, options), _impl(std::make_unique<Impl>()) {
  _impl->executor = std::move(executor);
  const std::size_t n = netlist.num_pins();
  _impl->fwd_task.resize(n);
  _impl->bwd_task.resize(n);
  _impl->in_fwd.assign(n, 0);
  _impl->in_bwd.assign(n, 0);
}

TimerV2::~TimerV2() = default;

void TimerV2::run_update(const std::vector<int>& fwd, const std::vector<int>& bwd) {
  Impl& im = *_impl;
  tf::Taskflow taskflow(im.executor);
  Netlist& nl = *_netlist;
  const bool want_dot = fwd.size() + bwd.size() <= Impl::kDumpLimit;

  // Forward tasks: one per cone pin, wired along timing arcs inside the cone.
  for (int p : fwd) {
    im.in_fwd[static_cast<std::size_t>(p)] = 1;
    auto task = taskflow.emplace(
        [this, p] { propagate_pin_forward(*_netlist, _graph, _state, p); });
    if (want_dot) task.name("fwd:" + nl.pin_name(p));
    im.fwd_task[static_cast<std::size_t>(p)] = task;
  }
  for (int p : fwd) {
    for (int aid : _graph.fanin(p)) {
      const int from = _graph.arc(aid).from_pin;
      if (im.in_fwd[static_cast<std::size_t>(from)]) {
        im.fwd_task[static_cast<std::size_t>(from)].precede(
            im.fwd_task[static_cast<std::size_t>(p)]);
      }
    }
  }

  if (!bwd.empty()) {
    // The backward pass reads arrival/slew values, so it starts after the
    // entire forward wave: a single synchronization task separates them.
    tf::Task barrier = taskflow.placeholder();
    if (want_dot) barrier.name("forward/backward");
    for (int p : fwd) {
      if (_graph.is_endpoint(p) || fanout_outside(fwd, p)) {
        im.fwd_task[static_cast<std::size_t>(p)].precede(barrier);
      }
    }
    // Fallback when the forward cone is empty (pure backward refresh).
    if (fwd.empty()) barrier.work([] {});

    for (int p : bwd) {
      im.in_bwd[static_cast<std::size_t>(p)] = 1;
      auto task = taskflow.emplace(
          [this, p] { propagate_pin_backward(*_netlist, _graph, _state, p); });
      if (want_dot) task.name("bwd:" + nl.pin_name(p));
      im.bwd_task[static_cast<std::size_t>(p)] = task;
      barrier.precede(task);
    }
    for (int p : bwd) {
      for (int aid : _graph.fanout(p)) {
        const int to = _graph.arc(aid).to_pin;
        if (im.in_bwd[static_cast<std::size_t>(to)]) {
          im.bwd_task[static_cast<std::size_t>(to)].precede(
              im.bwd_task[static_cast<std::size_t>(p)]);
        }
      }
    }
  }

  if (want_dot) im.last_dot = taskflow.dump();
  taskflow.wait_for_all();

  for (int p : fwd) im.in_fwd[static_cast<std::size_t>(p)] = 0;
  for (int p : bwd) im.in_bwd[static_cast<std::size_t>(p)] = 0;
}

bool TimerV2::fanout_outside(const std::vector<int>&, int pin) const {
  // A forward task must reach the barrier unless some in-cone successor
  // already transitively does; feeding only the cone's frontier (pins with
  // any out-of-cone or zero fanout) keeps the barrier fan-in small.
  for (int aid : _graph.fanout(pin)) {
    if (!_impl->in_fwd[static_cast<std::size_t>(_graph.arc(aid).to_pin)]) return true;
  }
  return _graph.fanout(pin).empty();
}

void TimerV2::run_forward(const std::vector<int>& pins) {
  run_update(pins, {});
}

void TimerV2::run_backward(const std::vector<int>& pins) {
  run_update({}, pins);
}

std::string TimerV2::dump_last_task_graph() const { return _impl->last_dot; }

void TimerV2::set_observer(std::shared_ptr<tf::ExecutorObserverInterface> observer) {
  _impl->executor->set_observer(std::move(observer));
}

}  // namespace ot
