// timer_v1.cpp - the "OpenTimer v1" engine: the levelization approach of
// paper §II-D, using genuine OpenMP as v1 did.
//
// v1 models task dependencies through a bucket-list pipeline: every update
// re-derives the level of each affected pin (longest dependency chain
// inside the update region) and re-buckets the pins, then executes a
// `#pragma omp parallel for` per bucket.  The bucket list is reconstructed
// from scratch on every incremental iteration - exactly the overhead the
// paper measures in Fig. 9 ("the time to reconstruct the data structure
// required by OpenMP to alter the task dependencies") - and every level
// boundary is an OpenMP fork/join barrier, which is the structural reason
// v1 cannot flow computation asynchronously with the timing graph.
#include <omp.h>

#include <algorithm>

#include "timer/timers.hpp"

namespace ot {

TimerV1::TimerV1(Netlist& netlist, const TimerOptions& options)
    : TimerBase(netlist, options) {
  omp_set_num_threads(static_cast<int>(options.num_threads == 0 ? 1 : options.num_threads));
  _in_region.assign(netlist.num_pins(), 0);
  _region_level.assign(netlist.num_pins(), 0);
}

std::vector<std::vector<int>> TimerV1::build_buckets(const std::vector<int>& pins,
                                                     bool reverse) {
  // Mark the update region.
  for (int p : pins) _in_region[static_cast<std::size_t>(p)] = 1;

  // Re-derive levels inside the region: `pins` arrives topologically sorted
  // (forward order, or reverse order for the backward pass), so one sweep
  // computes the longest-chain level of every pin.
  int max_level = 0;
  std::vector<std::vector<int>> buckets(1);
  for (int p : pins) {
    int level = 0;
    const auto& arcs = reverse ? _graph.fanout(p) : _graph.fanin(p);
    for (int aid : arcs) {
      const auto& arc = _graph.arc(aid);
      const int other = reverse ? arc.to_pin : arc.from_pin;
      if (_in_region[static_cast<std::size_t>(other)] != 0) {
        level = std::max(level, _region_level[static_cast<std::size_t>(other)] + 1);
      }
    }
    _region_level[static_cast<std::size_t>(p)] = level;
    if (level > max_level) {
      max_level = level;
      buckets.resize(static_cast<std::size_t>(max_level) + 1);
    }
    buckets[static_cast<std::size_t>(level)].push_back(p);
  }

  // Unmark for the next update.
  for (int p : pins) _in_region[static_cast<std::size_t>(p)] = 0;
  return buckets;
}

void TimerV1::run_forward(const std::vector<int>& pins) {
  if (pins.empty()) return;
  const auto buckets = build_buckets(pins, /*reverse=*/false);
  _last_levels = buckets.size();
  for (const auto& bucket : buckets) {
    const auto n = static_cast<long>(bucket.size());
#pragma omp parallel for schedule(static)
    for (long i = 0; i < n; ++i) {
      propagate_pin_forward(*_netlist, _graph, _state, bucket[static_cast<std::size_t>(i)]);
    }
  }
}

void TimerV1::run_backward(const std::vector<int>& pins) {
  if (pins.empty()) return;
  const auto buckets = build_buckets(pins, /*reverse=*/true);
  for (const auto& bucket : buckets) {
    const auto n = static_cast<long>(bucket.size());
#pragma omp parallel for schedule(static)
    for (long i = 0; i < n; ++i) {
      propagate_pin_backward(*_netlist, _graph, _state, bucket[static_cast<std::size_t>(i)]);
    }
  }
}

}  // namespace ot
