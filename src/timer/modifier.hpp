// modifier.hpp - deterministic incremental design-transform stream.
//
// Models the optimization loop of the paper's Fig. 9 experiment: each
// "incremental iteration" applies one design modification (a gate resize to
// a different drive strength) followed by a timing query.  Some picks touch
// tiny local cones, others land near the primary inputs and ripple across
// the entire timing landscape - reproducing the runtime fluctuation the
// paper attributes to its design modifiers.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "timer/netlist.hpp"

namespace ot {

struct Modification {
  int gate{-1};
  const Cell* new_cell{nullptr};
};

class ModifierStream {
 public:
  /// Build a stream over the resizable (combinational and sequential,
  /// non-IO) gates of `nl`.
  ModifierStream(const Netlist& nl, std::uint64_t seed);

  /// Next modification: a uniformly random resizable gate moved to a
  /// different drive variant of its cell kind.
  [[nodiscard]] Modification next();

  [[nodiscard]] std::size_t num_candidates() const noexcept {
    return _candidates.size();
  }

 private:
  const Netlist* _nl;
  std::vector<int> _candidates;
  support::Xoshiro256 _rng;
};

}  // namespace ot
