#include "timer/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace ot {

namespace {

/// Find the (arc, tran_in) pair whose contribution equals `pin`'s late
/// arrival at transition `tran` (the support of the max-merge).
struct Support {
  int arc{-1};
  int tran_in{kRise};
  double delay{0.0};
};

Support find_support(const Netlist& nl, const TimingGraph& graph,
                     const TimingState& state, int pin, int tran) {
  const TimingData& d = state.data(pin);
  const double target = d.at[kLate][static_cast<std::size_t>(tran)];
  Support best;
  double best_err = kInf;

  for (int aid : graph.fanin(pin)) {
    const TimingArcRef& a = graph.arc(aid);
    const TimingData& src = state.data(a.from_pin);

    if (a.kind == TimingArcRef::Kind::Net) {
      const double wire = nl.net(a.net).wire_cap * kWireDelayPerCap;
      const double cand = src.at[kLate][static_cast<std::size_t>(tran)] + wire;
      const double err = std::abs(cand - target);
      if (err < best_err) {
        best_err = err;
        best = Support{aid, tran, wire};
      }
      continue;
    }

    const CellArc& ca =
        nl.gate(a.gate).cell->arcs[static_cast<std::size_t>(a.cell_arc)];
    const double load = state.load(pin);
    const int corners = state.options().corners;
    for (int ti = 0; ti < 2; ++ti) {
      if (!sense_allows(ca.sense, ti, tran)) continue;
      for (int c = 0; c < corners; ++c) {
        const double derate = 1.0 + 0.04 * c;
        const double slew_in =
            src.slew[kLate][static_cast<std::size_t>(ti)] * derate;
        const double delay = cell_arc_delay(ca, tran, load * derate, slew_in);
        const double cand = src.at[kLate][static_cast<std::size_t>(ti)] + delay;
        const double err = std::abs(cand - target);
        if (err < best_err) {
          best_err = err;
          best = Support{aid, ti, delay};
        }
      }
    }
  }
  return best;
}

TimingPath trace_path(const Netlist& nl, const TimingGraph& graph,
                      const TimingState& state, int endpoint) {
  TimingPath path;
  path.endpoint = endpoint;
  path.slack = late_slack(state, endpoint);

  // Worst transition at the endpoint.
  const TimingData& d = state.data(endpoint);
  int tran = (d.rat[kLate][kRise] - d.at[kLate][kRise] <=
              d.rat[kLate][kFall] - d.at[kLate][kFall])
                 ? kRise
                 : kFall;

  // Backtrack to a source following the arrival support.
  std::vector<PathPoint> reversed;
  int pin = endpoint;
  for (;;) {
    reversed.push_back(PathPoint{
        pin, tran, state.data(pin).at[kLate][static_cast<std::size_t>(tran)], 0.0});
    if (graph.is_source(pin)) break;
    const Support s = find_support(nl, graph, state, pin, tran);
    if (s.arc < 0) break;  // disconnected (degenerate)
    pin = graph.arc(s.arc).from_pin;
    tran = s.tran_in;
  }
  std::reverse(reversed.begin(), reversed.end());
  // Per-point incremental delay = difference of consecutive arrivals.
  for (std::size_t i = 1; i < reversed.size(); ++i) {
    reversed[i].delay = reversed[i].arrival - reversed[i - 1].arrival;
  }
  path.points = std::move(reversed);
  return path;
}

}  // namespace

std::vector<TimingPath> report_paths(const Netlist& nl, const TimingGraph& graph,
                                     const TimingState& state, std::size_t k) {
  // Rank endpoints by late slack.
  std::vector<std::pair<double, int>> endpoints;
  for (std::size_t p = 0; p < graph.num_pins(); ++p) {
    if (!graph.is_endpoint(static_cast<int>(p))) continue;
    endpoints.emplace_back(late_slack(state, static_cast<int>(p)), static_cast<int>(p));
  }
  std::sort(endpoints.begin(), endpoints.end());
  k = std::min(k, endpoints.size());

  std::vector<TimingPath> paths;
  paths.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    paths.push_back(trace_path(nl, graph, state, endpoints[i].second));
  }
  return paths;
}

SlackStats slack_stats(const TimingGraph& graph, const TimingState& state, int bins,
                       double lo, double hi) {
  SlackStats s;
  s.histogram.assign(static_cast<std::size_t>(bins), 0);
  s.histo_lo = lo;
  s.histo_hi = hi;
  s.wns = 0.0;
  for (std::size_t p = 0; p < graph.num_pins(); ++p) {
    if (!graph.is_endpoint(static_cast<int>(p))) continue;
    const double slack = late_slack(state, static_cast<int>(p));
    ++s.endpoints;
    if (slack < 0.0) {
      ++s.violations;
      s.tns += slack;
      s.wns = std::min(s.wns, slack);
    }
    const double clamped = std::clamp(slack, lo, std::nextafter(hi, lo));
    const auto bin = static_cast<std::size_t>((clamped - lo) / (hi - lo) *
                                              static_cast<double>(bins));
    ++s.histogram[std::min(bin, static_cast<std::size_t>(bins - 1))];
  }
  return s;
}

void print_path(std::ostream& os, const Netlist& nl, const TimingPath& path) {
  os << "Path to " << nl.pin_name(path.endpoint) << "  slack "
     << std::fixed << std::setprecision(4) << path.slack << " ns\n";
  for (const PathPoint& pt : path.points) {
    os << "  " << std::setw(24) << std::left << nl.pin_name(pt.pin)
       << (pt.tran == kRise ? " ^ " : " v ") << " at " << std::setw(8)
       << pt.arrival << "  +" << pt.delay << "\n";
  }
}

}  // namespace ot
