#include "timer/modifier.hpp"

#include <stdexcept>

namespace ot {

ModifierStream::ModifierStream(const Netlist& nl, std::uint64_t seed)
    : _nl(&nl), _rng(seed) {
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const CellKind kind = nl.gate(static_cast<int>(g)).cell->kind;
    if (kind == CellKind::Input || kind == CellKind::Output) continue;
    _candidates.push_back(static_cast<int>(g));
  }
  if (_candidates.empty()) {
    throw std::runtime_error("netlist has no resizable gate");
  }
}

Modification ModifierStream::next() {
  const int gate = _candidates[_rng.below(_candidates.size())];
  const Cell* current = _nl->gate(gate).cell;
  const auto variants = _nl->library().variants(current->kind);

  // Pick a different drive variant (the ladder always has >= 2 entries).
  const Cell* pick = current;
  while (pick == current) {
    pick = variants[_rng.below(variants.size())];
  }
  return Modification{gate, pick};
}

}  // namespace ot
