// liberty.hpp - a Liberty (.lib) subset reader/writer for the cell library.
//
// The paper's experiments use the NanGate 45nm library, which ships in
// Liberty format; a timer that downstream users can adopt must speak it.
// This module implements the subset needed for NLDM delay/slew analysis:
//
//   library (<name>) {
//     cell (<name>) {
//       drive_strength : <int> ;
//       ff (IQ, IQN) { ... }                      // marks sequential cells
//       pin (<name>) {
//         direction : input|output ;
//         capacitance : <fF> ;
//         clock : true ;                          // clock pins
//         timing () {
//           related_pin : "<pin>" ;
//           timing_sense : positive_unate|negative_unate|non_unate ;
//           cell_rise (tpl)  { index_1(...); index_2(...); values(...); }
//           cell_fall (tpl)  { ... }
//           rise_transition (tpl) { ... }
//           fall_transition (tpl) { ... }
//         }
//       }
//     }
//   }
//
// index_1 = input slew axis, index_2 = output load axis (NLDM convention).
// The writer emits exactly this subset, and write->parse round-trips the
// synthetic library bit-for-bit (tested).
#pragma once

#include <iosfwd>
#include <string>

#include "timer/celllib.hpp"

namespace ot {

/// Parse a Liberty subset into a CellLibrary.  Throws std::runtime_error
/// with a line-numbered message on malformed input.
[[nodiscard]] CellLibrary parse_liberty(std::istream& is);
[[nodiscard]] CellLibrary parse_liberty_file(const std::string& path);

/// Emit `lib` in the Liberty subset above.
void write_liberty(std::ostream& os, const CellLibrary& lib,
                   const std::string& library_name = "synthetic45");

}  // namespace ot
