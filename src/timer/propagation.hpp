// propagation.hpp - the STA propagation kernels shared by every timer
// engine (sequential reference, v1-OpenMP, v2-taskflow).
//
// Quantities are tracked per split (early = min / late = max analysis) and
// per transition (rise / fall), as in OpenTimer:
//   - arrival times propagate forward, merging min (early) / max (late);
//   - slews propagate forward with the library slew model;
//   - required times propagate backward, merging max (early) / min (late);
//   - slack = rat - at (late) and at - rat (early).
//
// Per-pin propagation is a pure function of the pin's fan-in/fan-out
// neighborhood, so pins of one level (or independent cone branches) can be
// processed concurrently - the property all three engines exploit.
#pragma once

#include <array>
#include <limits>
#include <vector>

#include "timer/netlist.hpp"
#include "timer/timing_graph.hpp"

namespace ot {

inline constexpr int kEarly = 0;
inline constexpr int kLate = 1;
inline constexpr double kInf = std::numeric_limits<double>::infinity();
/// Wire delay per fF of net wire capacitance (lumped RC surrogate).
inline constexpr double kWireDelayPerCap = 0.002;  // ns/fF

struct TimingData {
  // Indexed [split][transition].
  std::array<std::array<double, 2>, 2> at{};
  std::array<std::array<double, 2>, 2> slew{};
  std::array<std::array<double, 2>, 2> rat{};
};

struct TimerOptions {
  std::size_t num_threads{1};
  double clock_period{1.0};  // ns
  double input_slew{0.05};   // ns at primary inputs
  double setup{0.05};        // ns setup margin at DFF D endpoints
  double hold{0.0};          // ns hold requirement (early analysis)
  /// Number of analysis corners evaluated per arc (>= 1).  Each corner
  /// re-interpolates the NLDM tables at a derated operating point and the
  /// worst (late) / best (early) value is kept - the multi-corner evaluation
  /// that makes sign-off analysis expensive (paper §II: "several hours or
  /// days when sign-off is taken into count").  Corner 0 equals the nominal
  /// single-corner analysis.
  int corners{1};
};

/// Mutable analysis state: one TimingData per pin plus cached output loads.
class TimingState {
 public:
  TimingState(const Netlist& nl, const TimerOptions& opt);

  [[nodiscard]] const TimingData& data(int pin) const {
    return _data[static_cast<std::size_t>(pin)];
  }
  [[nodiscard]] TimingData& data(int pin) { return _data[static_cast<std::size_t>(pin)]; }

  /// Cached total load of the net driven by output pin `pin` (0 for inputs).
  [[nodiscard]] double load(int pin) const { return _load[static_cast<std::size_t>(pin)]; }

  /// Recompute the cached load of `net` (call after a resize changed sink
  /// pin capacitances).
  void update_net_load(const Netlist& nl, int net);

  /// Recompute all loads.
  void update_all_loads(const Netlist& nl);

  [[nodiscard]] const TimerOptions& options() const noexcept { return _opt; }

 private:
  std::vector<TimingData> _data;
  std::vector<double> _load;  // per pin; meaningful on driver (output) pins
  TimerOptions _opt;
};

/// Arc delay of cell arc `ca` for output transition `tran_out` under `load`
/// and input slew `slew_in`.
[[nodiscard]] double cell_arc_delay(const CellArc& ca, int tran_out, double load,
                                    double slew_in);

/// Output slew of cell arc `ca` under `load` and input slew `slew_in`.
[[nodiscard]] double cell_arc_slew(const CellArc& ca, int tran_out, double load,
                                   double slew_in);

/// Does an input transition `tran_in` drive output transition `tran_out`
/// through an arc of the given sense?
[[nodiscard]] bool sense_allows(TimingSense sense, int tran_in, int tran_out);

/// Recompute arrival time and slew of `pin` from its fan-in (one forward
/// relaxation step).  Thread-safe across pins of the same level.
void propagate_pin_forward(const Netlist& nl, const TimingGraph& graph,
                           TimingState& state, int pin);

/// Recompute required time of `pin` from its fan-out (one backward step).
void propagate_pin_backward(const Netlist& nl, const TimingGraph& graph,
                            TimingState& state, int pin);

/// Setup (late) slack of `pin`, worst over transitions.
[[nodiscard]] double late_slack(const TimingState& state, int pin);
/// Hold (early) slack of `pin`, worst over transitions.
[[nodiscard]] double early_slack(const TimingState& state, int pin);

/// Worst late slack over all endpoints.
[[nodiscard]] double worst_late_slack(const TimingGraph& graph, const TimingState& state);

}  // namespace ot
