// sdc.hpp - an SDC (Synopsys Design Constraints) subset reader.
//
// Real timing flows drive the timer with an .sdc file; this module parses
// the commands the mini-OpenTimer honors and folds them into TimerOptions:
//
//   create_clock -period <ns> [-name <n>] [get_ports <port>]
//   set_input_transition <ns> [all_inputs]
//   set_clock_uncertainty <ns>          # folded into the setup margin
//   set_hold_margin <ns>                # extension: early-analysis margin
//
// Unknown commands raise an error by default (strict mode) or are skipped
// when `lenient` is set - real SDC files carry many commands a reduced
// timer cannot honor, and silently dropping constraints must be opt-in.
#pragma once

#include <iosfwd>
#include <string>

#include "timer/propagation.hpp"

namespace ot {

struct SdcResult {
  TimerOptions options;        // input options with constraints applied
  std::string clock_name;     // from create_clock -name
  std::string clock_port;     // from get_ports
  int num_commands{0};        // commands honored
  int num_skipped{0};         // commands skipped (lenient mode only)
};

/// Parse SDC text and apply it on top of `base` options.
[[nodiscard]] SdcResult parse_sdc(std::istream& is, const TimerOptions& base = {},
                                  bool lenient = false);
[[nodiscard]] SdcResult parse_sdc_file(const std::string& path,
                                       const TimerOptions& base = {},
                                       bool lenient = false);

/// Emit the honored subset of constraints for `options`.
void write_sdc(std::ostream& os, const TimerOptions& options,
               const std::string& clock_name = "clk",
               const std::string& clock_port = "clock");

}  // namespace ot
