// bench_fig12_dnn - reproduces paper Fig. 12: parallel DNN training on
// MNIST-shaped data with the Fig. 11 decomposition.
//   Sections 1-2: runtime vs epoch count at 16 threads, for the 3-layer
//                 (784x32x32x10) and 5-layer (784x64x32x16x8x10) nets.
//   Sections 3-4: runtime vs thread count at a fixed epoch budget.
// Trainers: Cpp-Taskflow, TBB dialect (fg::), OpenMP task-depend; every run
// must end at the same loss as the sequential reference (asserted).
//
// Scaling: REPRO_NN_IMAGES (default 6000; paper uses 60000) and
// REPRO_NN_EPOCH_MAX (default 10; paper sweeps to 100 and uses 500 for the
// thread sweep).
#include "bench_util.hpp"
#include "nn/trainers.hpp"

namespace {

struct Arch {
  const char* name;
  std::vector<std::size_t> dims;
};

void epochs_section(std::ostream& os, const Arch& arch, const nn::Dataset& ds,
                    unsigned threads, int max_epochs) {
  support::banner(os, std::string("Fig. 12 (top): ") + arch.name + " runtime vs epochs, " +
                          std::to_string(threads) + " threads");
  support::Table table({"epochs", "tasks", "taskflow_s", "tbb_s", "omp_s", "seq_s"});

  for (int epochs = std::max(1, max_epochs / 4); epochs <= max_epochs;
       epochs += std::max(1, max_epochs / 4)) {
    nn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 100;
    cfg.num_threads = threads;

    nn::Mlp seq(arch.dims, 1), tfw(arch.dims, 1), fgr(arch.dims, 1), omp(arch.dims, 1);
    const auto r_seq = nn::train_sequential(seq, ds, cfg);
    const auto r_tf = nn::train_taskflow(tfw, ds, cfg);
    const auto r_fg = nn::train_flowgraph(fgr, ds, cfg);
    const auto r_omp = nn::train_openmp(omp, ds, cfg);

    for (const auto* r : {&r_tf, &r_fg, &r_omp}) {
      if (std::abs(r->last_epoch_loss - r_seq.last_epoch_loss) > 1e-4f) {
        std::cerr << "LOSS MISMATCH: " << r->last_epoch_loss << " vs "
                  << r_seq.last_epoch_loss << "\n";
      }
    }
    table.add_row({std::to_string(epochs),
                   support::fmt_count(static_cast<long long>(r_tf.total_tasks)),
                   support::fmt(r_tf.elapsed_ms / 1000.0, 3),
                   support::fmt(r_fg.elapsed_ms / 1000.0, 3),
                   support::fmt(r_omp.elapsed_ms / 1000.0, 3),
                   support::fmt(r_seq.elapsed_ms / 1000.0, 3)});
  }
  table.print(os);
  table.print_csv(os, std::string("fig12_epochs_") + arch.name);
}

void threads_section(std::ostream& os, const Arch& arch, const nn::Dataset& ds,
                     int epochs) {
  support::banner(os, std::string("Fig. 12 (bottom): ") + arch.name +
                          " runtime vs #threads, " + std::to_string(epochs) + " epochs");
  support::Table table({"threads", "taskflow_s", "tbb_s", "omp_s"});
  for (unsigned t : bench::thread_sweep()) {
    nn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 100;
    cfg.num_threads = t;

    nn::Mlp tfw(arch.dims, 1), fgr(arch.dims, 1), omp(arch.dims, 1);
    const auto r_tf = nn::train_taskflow(tfw, ds, cfg);
    const auto r_fg = nn::train_flowgraph(fgr, ds, cfg);
    const auto r_omp = nn::train_openmp(omp, ds, cfg);
    table.add_row({std::to_string(t), support::fmt(r_tf.elapsed_ms / 1000.0, 3),
                   support::fmt(r_fg.elapsed_ms / 1000.0, 3),
                   support::fmt(r_omp.elapsed_ms / 1000.0, 3)});
  }
  table.print(os);
  table.print_csv(os, std::string("fig12_threads_") + arch.name);
}

}  // namespace

int main() {
  std::ostream& os = std::cout;

  const auto n_images =
      static_cast<std::size_t>(support::env_int("REPRO_NN_IMAGES", 6000));
  const int max_epochs = static_cast<int>(support::env_int("REPRO_NN_EPOCH_MAX", 10));
  const unsigned threads = bench::fixed_threads(16);

  const auto ds = nn::load_or_synthesize("data", n_images);
  os << "dataset: " << ds.size() << " images ("
     << (ds.size() == 60000 ? "paper scale" : "scaled; set REPRO_NN_IMAGES=60000")
     << ")\n";

  const Arch three{"3-layer", {784, 32, 32, 10}};
  const Arch five{"5-layer", {784, 64, 32, 16, 8, 10}};

  epochs_section(os, three, ds, threads, max_epochs);
  epochs_section(os, five, ds, threads, max_epochs);
  threads_section(os, three, ds, std::max(1, max_epochs / 2));
  threads_section(os, five, ds, std::max(1, max_epochs / 2));

  os << "\nPaper shape: Cpp-Taskflow is consistently the fastest (1.38x vs OpenMP\n"
        "and 1.14x vs TBB on the 3-layer net at 16 CPUs) and the margin grows with\n"
        "epoch count; all libraries saturate at 8-16 CPUs (hardware-gated here).\n";
  return 0;
}
