// bench_micro_wsq - microbenchmarks of the Chase-Lev work-stealing deque
// (google-benchmark): owner push/pop throughput and steal throughput under
// thief contention.
#include <benchmark/benchmark.h>

#include <thread>

#include "taskflow/wsq.hpp"

namespace {

void BM_Wsq_PushPop(benchmark::State& state) {
  tf::WorkStealingQueue<std::intptr_t> q;
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) q.push(i);
    for (std::int64_t i = 0; i < n; ++i) benchmark::DoNotOptimize(q.pop());
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(2 * n),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Wsq_PushPop)->Arg(1024)->Arg(65536);

void BM_Wsq_OwnerWithThieves(benchmark::State& state) {
  const int thieves = static_cast<int>(state.range(0));
  constexpr std::int64_t n = 1 << 16;
  for (auto _ : state) {
    state.PauseTiming();
    tf::WorkStealingQueue<std::intptr_t> q;
    std::atomic<bool> stop{false};
    std::atomic<long> stolen{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < thieves; ++t) {
      pool.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          if (q.steal()) stolen.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    state.ResumeTiming();

    long popped = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      q.push(i);
      if ((i & 3) == 0 && q.pop()) ++popped;
    }
    while (q.pop()) ++popped;

    state.PauseTiming();
    stop.store(true, std::memory_order_release);
    for (auto& t : pool) t.join();
    long drained = stolen.load() + popped;
    while (q.steal()) ++drained;
    if (drained > static_cast<long>(n)) state.SkipWithError("queue over-delivered");
    state.ResumeTiming();
  }
  state.counters["items/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * static_cast<double>(n),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Wsq_OwnerWithThieves)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_Wsq_Grow(benchmark::State& state) {
  for (auto _ : state) {
    tf::WorkStealingQueue<std::intptr_t> q(64);
    for (std::int64_t i = 0; i < (1 << 15); ++i) q.push(i);
    benchmark::DoNotOptimize(q.capacity());
  }
}
BENCHMARK(BM_Wsq_Grow)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
