// bench_table1_software_costs - regenerates paper Table I ("Software Costs
// Comparison on Micro-benchmarks"): LOC and cyclomatic complexity of the
// wavefront and graph-traversal kernels in each dialect, measured by the
// ct:: costtool (the SLOCCount/Lizard stand-in) over the checked-in kernel
// sources in bench/kernels/.
//
// Also reports token counts for the paper's Listings 3/5 comparison scale.
#include <vector>

#include "bench_util.hpp"
#include "costtool/analyze.hpp"

#ifndef REPRO_SOURCE_DIR
#define REPRO_SOURCE_DIR "."
#endif

namespace {

struct Row {
  const char* benchmark;
  const char* dialect;
  const char* file;
  int paper_loc;
  int paper_cc;
};

const Row kRows[] = {
    {"Wavefront", "Cpp-Taskflow", "bench/kernels/wavefront_taskflow.cpp", 30, 7},
    {"Wavefront", "OpenMP", "bench/kernels/wavefront_omp.cpp", 64, 12},
    {"Wavefront", "TBB", "bench/kernels/wavefront_tbb.cpp", 38, 8},
    {"Wavefront", "Sequential", "bench/kernels/wavefront_seq.cpp", 14, 3},
    {"Graph Traversal", "Cpp-Taskflow", "bench/kernels/traversal_taskflow.cpp", 40, 6},
    {"Graph Traversal", "OpenMP", "bench/kernels/traversal_omp.cpp", 213, 28},
    {"Graph Traversal", "TBB", "bench/kernels/traversal_tbb.cpp", 59, 8},
    {"Graph Traversal", "Sequential", "bench/kernels/traversal_seq.cpp", 14, 3},
};

}  // namespace

int main() {
  std::ostream& os = std::cout;
  support::banner(os, "Table I: software costs on micro-benchmarks (LOC, cyclomatic)");

  support::Table table({"benchmark", "dialect", "LOC", "CC", "tokens", "paper_LOC",
                        "paper_CC"});
  for (const Row& row : kRows) {
    const std::string path = std::string(REPRO_SOURCE_DIR) + "/" + row.file;
    const auto report = ct::analyze_file(path);
    table.add_row({row.benchmark, row.dialect, std::to_string(report.loc.code_lines),
                   std::to_string(report.cc.file_cyclomatic),
                   std::to_string(report.loc.tokens), std::to_string(row.paper_loc),
                   std::to_string(row.paper_cc)});
  }
  table.print(os);
  table.print_csv(os, "table1");

  // -- the paper's listing captions (LOC and token counts) -----------------
  support::banner(os, "Listing metrics (paper captions: Listings 3/4/5/7/8)");
  struct Listing {
    const char* name;
    const char* file;
    int paper_loc;
    int paper_tokens;
  };
  const Listing kListings[] = {
      {"Listing 3 (Cpp-Taskflow, Fig. 2)", "bench/kernels/listings/listing3_taskflow.cpp",
       17, 178},
      {"Listing 4 (OpenMP, Fig. 2)", "bench/kernels/listings/listing4_openmp.cpp", 22,
       181},
      {"Listing 5 (TBB, Fig. 2)", "bench/kernels/listings/listing5_tbb.cpp", 37, 295},
      {"Listing 7 (Cpp-Taskflow, Fig. 4)",
       "bench/kernels/listings/listing7_taskflow.cpp", 20, 190},
      {"Listing 8 (TBB, Fig. 4)", "bench/kernels/listings/listing8_tbb.cpp", 38, 299},
  };
  support::Table listings({"listing", "LOC", "tokens", "paper_LOC", "paper_tokens"});
  for (const Listing& l : kListings) {
    const auto r = ct::analyze_file(std::string(REPRO_SOURCE_DIR) + "/" + l.file);
    listings.add_row({l.name, std::to_string(r.loc.code_lines),
                      std::to_string(r.loc.tokens), std::to_string(l.paper_loc),
                      std::to_string(l.paper_tokens)});
  }
  listings.print(os);
  listings.print_csv(os, "listings");

  os << "\nNotes:\n"
        "  * LOC here counts whole kernel files including comments-adjacent code\n"
        "    structure; the paper counted the bare listing bodies.  The *ordering*\n"
        "    is the reproduced claim: taskflow < TBB < OpenMP in both LOC and CC,\n"
        "    with the OpenMP traversal exploding (~5x taskflow) due to the\n"
        "    exhaustive 5x5 degree-combination enumeration.\n"
        "  * The TBB dialect is compiled against the API-compatible fg:: baseline\n"
        "    (see DESIGN.md substitution #1); the source text is what Intel TBB\n"
        "    FlowGraph code looks like.\n";
  return 0;
}
