// bench_scheduler_hotpath - microbenchmark of the scheduler fast paths
// (google-benchmark):
//   * linear chain: the worker-cache speculative path (no queue traffic);
//   * fan-out burst: one finishing node releasing many successors at once -
//     the batched release / wake_n path;
//   * bursty repeat: small bursts separated by idle gaps, with the
//     spin-then-park phase on vs off; reports num_parks / num_wakes so the
//     park/wake churn reduction is directly visible;
//   * external submit: many small topologies dispatched from a non-worker
//     thread, exercising the central-queue batch hand-off;
//   * iterative convergence: N laps of a tiny pipeline, as one in-graph
//     condition loop (one topology, the condition re-arms the body) vs
//     run_until resubmission (one topology per lap) - the per-iteration
//     cost of in-graph control flow vs the submit/arm/retire cycle.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "taskflow/taskflow.hpp"

namespace {

// One source fans out to `fanout` independent tasks which all join a sink;
// the source's finalization releases the whole middle layer in one batch.
void run_fanout_burst(const std::shared_ptr<tf::ExecutorInterface>& executor,
                      int fanout) {
  tf::Taskflow tf(executor);
  std::atomic<long> value{0};
  auto source = tf.emplace([] {});
  auto sink = tf.emplace([] {});
  for (int i = 0; i < fanout; ++i) {
    auto mid = tf.emplace([&value] { value.fetch_add(1, std::memory_order_relaxed); });
    source.precede(mid);
    mid.precede(sink);
  }
  tf.wait_for_all();
  benchmark::DoNotOptimize(value.load());
}

void BM_LinearChain(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  auto executor = tf::make_executor(workers);
  for (auto _ : state) {
    tf::Taskflow tf(executor);
    long value = 0;
    std::vector<tf::Task> chain;
    chain.reserve(static_cast<std::size_t>(length));
    for (int i = 0; i < length; ++i) chain.push_back(tf.emplace([&value] { ++value; }));
    tf.linearize(chain);
    tf.wait_for_all();
    benchmark::DoNotOptimize(value);
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * length, benchmark::Counter::kIsRate);
  state.counters["cache_hits"] = static_cast<double>(executor->num_cache_hits());
}
BENCHMARK(BM_LinearChain)
    ->Args({16384, 1})
    ->Args({16384, 4})
    ->Unit(benchmark::kMillisecond);

void BM_FanOutBurst(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  auto executor = tf::make_executor(workers);
  for (auto _ : state) run_fanout_burst(executor, fanout);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * (fanout + 2), benchmark::Counter::kIsRate);
  state.counters["wakes"] = static_cast<double>(executor->num_wakes());
}
BENCHMARK(BM_FanOutBurst)
    ->Args({256, 4})
    ->Args({4096, 4})
    ->Unit(benchmark::kMillisecond);

// Bursts of independent tasks separated by a gap slightly longer than a
// scheduling quantum.  Without the spin phase every worker parks in each gap
// and must be woken by the next burst; with it, workers ride out the gap
// spinning/yielding.  Arg: spin_tries (0 = park immediately, seed behavior).
void BM_BurstyRepeat(benchmark::State& state) {
  tf::WorkStealingOptions opt;
  opt.spin_tries = static_cast<int>(state.range(0));
  auto executor = tf::make_executor(4, opt);
  constexpr int kBurst = 64;
  constexpr int kBurstsPerIter = 32;
  for (auto _ : state) {
    for (int b = 0; b < kBurstsPerIter; ++b) {
      tf::Taskflow tf(executor);
      std::atomic<long> value{0};
      for (int i = 0; i < kBurst; ++i) {
        tf.emplace([&value] { value.fetch_add(1, std::memory_order_relaxed); });
      }
      tf.wait_for_all();
      benchmark::DoNotOptimize(value.load());
    }
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBurst * kBurstsPerIter,
      benchmark::Counter::kIsRate);
  state.counters["parks"] = static_cast<double>(executor->num_parks());
  state.counters["wakes"] = static_cast<double>(executor->num_wakes());
  state.counters["parks/burst"] =
      static_cast<double>(executor->num_parks()) /
      (static_cast<double>(state.iterations()) * kBurstsPerIter);
}
BENCHMARK(BM_BurstyRepeat)->Arg(0)->Arg(64)->Unit(benchmark::kMillisecond);

// Many small independent topologies dispatched from the calling (non-worker)
// thread: every dispatch goes through the external schedule_batch path into
// parked workers' caches / the central queue.
void BM_ExternalSubmit(benchmark::State& state) {
  auto executor = tf::make_executor(static_cast<std::size_t>(state.range(0)));
  constexpr int kGraphs = 64;
  constexpr int kTasksPerGraph = 16;
  for (auto _ : state) {
    std::atomic<long> value{0};
    std::vector<std::unique_ptr<tf::Taskflow>> flows;
    flows.reserve(kGraphs);
    for (int g = 0; g < kGraphs; ++g) {
      flows.push_back(std::make_unique<tf::Taskflow>(executor));
      for (int i = 0; i < kTasksPerGraph; ++i) {
        flows.back()->emplace(
            [&value] { value.fetch_add(1, std::memory_order_relaxed); });
      }
      flows.back()->silent_dispatch();
    }
    for (auto& f : flows) f->wait_for_all();
    benchmark::DoNotOptimize(value.load());
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kGraphs * kTasksPerGraph,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExternalSubmit)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// The per-lap pipeline of the iterative-convergence pair below: a chain of
// kPipelineDepth tasks, the shape of one optimization step in the paper's
// motivating applications.  Both variants execute the same chain per lap;
// they differ only in who drives the next lap - an in-graph condition
// (re-fires the chain head, nothing else is touched) or the executor's
// repeat machinery (re-arms every node of the topology and resubmits).
constexpr int kPipelineDepth = 8;

// N laps where the chain's last task is the convergence condition itself
// (the idiomatic in-graph loop: do the tail work, return the branch): the
// whole convergence is ONE topology, each lap costing exactly kPipelineDepth
// node executions with no submission, re-arming, or retirement.
void BM_IterativeConditionLoop(benchmark::State& state) {
  const int laps = static_cast<int>(state.range(0));
  tf::Executor executor(static_cast<std::size_t>(state.range(1)));
  tf::Taskflow flow;
  int lap = 0;
  long value = 0;
  auto init = flow.emplace([&] { lap = 0; });
  std::vector<tf::Task> chain;
  for (int i = 0; i < kPipelineDepth; ++i) {
    chain.push_back(flow.emplace([&] { ++value; }));
    if (i > 0) chain[i - 1].precede(chain[i]);
  }
  chain.back().work([&]() -> int {
    ++value;
    return ++lap < laps ? 0 : 1;
  });
  auto done = flow.emplace([] {});
  init.precede(chain.front());
  chain.back().precede(chain.front());  // branch 0: next lap
  chain.back().precede(done);           // branch 1: converged
  for (auto _ : state) {
    executor.run(flow).get();
    benchmark::DoNotOptimize(value);
  }
  state.counters["laps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * laps, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IterativeConditionLoop)
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The same convergence via executor resubmission: run_until re-runs the
// chain until the predicate trips, paying a topology re-arm (every node's
// counters) plus the repeat bookkeeping per lap.  laps/s here vs the
// condition loop above is the per-iteration saving of in-graph control flow.
void BM_IterativeRunUntil(benchmark::State& state) {
  const int laps = static_cast<int>(state.range(0));
  tf::Executor executor(static_cast<std::size_t>(state.range(1)));
  tf::Taskflow flow;
  int lap = 0;
  long value = 0;
  std::vector<tf::Task> chain;
  for (int i = 0; i < kPipelineDepth; ++i) {
    chain.push_back(flow.emplace([&] { ++value; }));
    if (i > 0) chain[i - 1].precede(chain[i]);
  }
  chain.back().work([&] {
    ++value;
    ++lap;
  });
  for (auto _ : state) {
    lap = 0;
    executor.run_until(flow, [&] { return lap >= laps; }).get();
    benchmark::DoNotOptimize(value);
  }
  state.counters["laps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * laps, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IterativeRunUntil)
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Locality A/B (DESIGN.md §14) ------------------------------------------
// The contended release shapes twice over: mode 0 = flat round-robin steal
// sweep (all locality knobs off, the seed behavior), mode 1 = pinned
// workers + adaptive victim selection + slab-affine placement.  Both modes
// live in one binary so `run_scheduler_bench.py --locality` can interleave
// them via --benchmark_filter and compare medians without a rebuild.
tf::WorkStealingOptions locality_mode_options(int mode) {
  tf::WorkStealingOptions opt;
  if (mode == 1) {
    opt.pin_workers = true;
    opt.adaptive_steal = true;
    opt.slab_affinity = true;
  }
  return opt;
}

// One source releasing a wide middle layer in a single batch: the batched
// release either round-robins successors through wake-ups (flat) or keeps
// same-slab successors on the releasing worker's LIFO end (slab-affine),
// while the thieves' probe order decides how fast the remainder drains.
void BM_ContendedFanOut(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const int fanout = static_cast<int>(state.range(1));
  auto executor = tf::make_executor(4, locality_mode_options(mode));
  for (auto _ : state) run_fanout_burst(executor, fanout);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * (fanout + 2),
      benchmark::Counter::kIsRate);
  state.counters["steals"] = static_cast<double>(executor->num_steals());
  state.counters["wakes"] = static_cast<double>(executor->num_wakes());
}
BENCHMARK(BM_ContendedFanOut)
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Unit(benchmark::kMillisecond);

// Chains against a thieving pool.  With more chains than workers each chain
// completion triggers a fresh steal hunt; with fewer chains than workers the
// surplus workers are pure thieves that the balance heuristic keeps waking
// into a dry system - the flat sweep yield-spins through its whole backoff
// (steal_rounds + spin_tries) before re-parking, while the adaptive arm's
// dry-streak give-up parks after a handful of widest-tier sweeps.
void BM_ContendedChains(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const int chains = static_cast<int>(state.range(1));
  const auto workers = static_cast<std::size_t>(state.range(2));
  constexpr int kLength = 256;
  auto executor = tf::make_executor(workers, locality_mode_options(mode));
  for (auto _ : state) {
    tf::Taskflow tf(executor);
    std::atomic<long> value{0};
    auto source = tf.emplace([] {});
    for (int c = 0; c < chains; ++c) {
      tf::Task prev = source;
      for (int i = 0; i < kLength; ++i) {
        auto t = tf.emplace(
            [&value] { value.fetch_add(1, std::memory_order_relaxed); });
        prev.precede(t);
        prev = t;
      }
    }
    tf.wait_for_all();
    benchmark::DoNotOptimize(value.load());
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * chains * kLength,
      benchmark::Counter::kIsRate);
  state.counters["steals"] = static_cast<double>(executor->num_steals());
}
BENCHMARK(BM_ContendedChains)
    ->Args({0, 16, 4})
    ->Args({1, 16, 4})
    ->Args({0, 2, 8})
    ->Args({1, 2, 8})
    ->Unit(benchmark::kMillisecond);

// A chain whose every step also releases `width` small leaves, run on a pool
// that parks between releases (spin_tries = 0, more workers than the shape
// keeps busy): the dominant cost is the wake fan-out per release.  The flat
// batch path wakes one parked worker per pushed successor, so each step pays
// up to `width` futex round-trips; slab-affine placement keeps the same-slab
// leaves on the releasing worker's own queue and wakes at most one spare,
// one futex per step regardless of width.
void BM_BurstyChain(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  const auto workers = static_cast<std::size_t>(state.range(2));
  constexpr int kSteps = 64;
  tf::WorkStealingOptions opt = locality_mode_options(mode);
  opt.spin_tries = 0;  // park immediately: wake traffic IS the workload
  auto executor = tf::make_executor(workers, opt);
  for (auto _ : state) {
    tf::Taskflow tf(executor);
    std::atomic<long> value{0};
    tf::Task prev = tf.emplace([] {});
    for (int s = 0; s < kSteps; ++s) {
      for (int i = 0; i < width; ++i) {
        auto leaf = tf.emplace(
            [&value] { value.fetch_add(1, std::memory_order_relaxed); });
        prev.precede(leaf);
      }
      auto next = tf.emplace(
          [&value] { value.fetch_add(1, std::memory_order_relaxed); });
      prev.precede(next);
      prev = next;
    }
    tf.wait_for_all();
    benchmark::DoNotOptimize(value.load());
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kSteps * (width + 1),
      benchmark::Counter::kIsRate);
  state.counters["wakes"] = static_cast<double>(executor->num_wakes());
  state.counters["parks"] = static_cast<double>(executor->num_parks());
}
BENCHMARK(BM_BurstyChain)
    ->Args({0, 8, 8})
    ->Args({1, 8, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
