// bench_scheduler_hotpath - microbenchmark of the scheduler fast paths
// (google-benchmark):
//   * linear chain: the worker-cache speculative path (no queue traffic);
//   * fan-out burst: one finishing node releasing many successors at once -
//     the batched release / wake_n path;
//   * bursty repeat: small bursts separated by idle gaps, with the
//     spin-then-park phase on vs off; reports num_parks / num_wakes so the
//     park/wake churn reduction is directly visible;
//   * external submit: many small topologies dispatched from a non-worker
//     thread, exercising the central-queue batch hand-off.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "taskflow/taskflow.hpp"

namespace {

// One source fans out to `fanout` independent tasks which all join a sink;
// the source's finalization releases the whole middle layer in one batch.
void run_fanout_burst(const std::shared_ptr<tf::ExecutorInterface>& executor,
                      int fanout) {
  tf::Taskflow tf(executor);
  std::atomic<long> value{0};
  auto source = tf.emplace([] {});
  auto sink = tf.emplace([] {});
  for (int i = 0; i < fanout; ++i) {
    auto mid = tf.emplace([&value] { value.fetch_add(1, std::memory_order_relaxed); });
    source.precede(mid);
    mid.precede(sink);
  }
  tf.wait_for_all();
  benchmark::DoNotOptimize(value.load());
}

void BM_LinearChain(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  auto executor = tf::make_executor(workers);
  for (auto _ : state) {
    tf::Taskflow tf(executor);
    long value = 0;
    std::vector<tf::Task> chain;
    chain.reserve(static_cast<std::size_t>(length));
    for (int i = 0; i < length; ++i) chain.push_back(tf.emplace([&value] { ++value; }));
    tf.linearize(chain);
    tf.wait_for_all();
    benchmark::DoNotOptimize(value);
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * length, benchmark::Counter::kIsRate);
  state.counters["cache_hits"] = static_cast<double>(executor->num_cache_hits());
}
BENCHMARK(BM_LinearChain)
    ->Args({16384, 1})
    ->Args({16384, 4})
    ->Unit(benchmark::kMillisecond);

void BM_FanOutBurst(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  auto executor = tf::make_executor(workers);
  for (auto _ : state) run_fanout_burst(executor, fanout);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * (fanout + 2), benchmark::Counter::kIsRate);
  state.counters["wakes"] = static_cast<double>(executor->num_wakes());
}
BENCHMARK(BM_FanOutBurst)
    ->Args({256, 4})
    ->Args({4096, 4})
    ->Unit(benchmark::kMillisecond);

// Bursts of independent tasks separated by a gap slightly longer than a
// scheduling quantum.  Without the spin phase every worker parks in each gap
// and must be woken by the next burst; with it, workers ride out the gap
// spinning/yielding.  Arg: spin_tries (0 = park immediately, seed behavior).
void BM_BurstyRepeat(benchmark::State& state) {
  tf::WorkStealingOptions opt;
  opt.spin_tries = static_cast<int>(state.range(0));
  auto executor = tf::make_executor(4, opt);
  constexpr int kBurst = 64;
  constexpr int kBurstsPerIter = 32;
  for (auto _ : state) {
    for (int b = 0; b < kBurstsPerIter; ++b) {
      tf::Taskflow tf(executor);
      std::atomic<long> value{0};
      for (int i = 0; i < kBurst; ++i) {
        tf.emplace([&value] { value.fetch_add(1, std::memory_order_relaxed); });
      }
      tf.wait_for_all();
      benchmark::DoNotOptimize(value.load());
    }
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBurst * kBurstsPerIter,
      benchmark::Counter::kIsRate);
  state.counters["parks"] = static_cast<double>(executor->num_parks());
  state.counters["wakes"] = static_cast<double>(executor->num_wakes());
  state.counters["parks/burst"] =
      static_cast<double>(executor->num_parks()) /
      (static_cast<double>(state.iterations()) * kBurstsPerIter);
}
BENCHMARK(BM_BurstyRepeat)->Arg(0)->Arg(64)->Unit(benchmark::kMillisecond);

// Many small independent topologies dispatched from the calling (non-worker)
// thread: every dispatch goes through the external schedule_batch path into
// parked workers' caches / the central queue.
void BM_ExternalSubmit(benchmark::State& state) {
  auto executor = tf::make_executor(static_cast<std::size_t>(state.range(0)));
  constexpr int kGraphs = 64;
  constexpr int kTasksPerGraph = 16;
  for (auto _ : state) {
    std::atomic<long> value{0};
    std::vector<std::unique_ptr<tf::Taskflow>> flows;
    flows.reserve(kGraphs);
    for (int g = 0; g < kGraphs; ++g) {
      flows.push_back(std::make_unique<tf::Taskflow>(executor));
      for (int i = 0; i < kTasksPerGraph; ++i) {
        flows.back()->emplace(
            [&value] { value.fetch_add(1, std::memory_order_relaxed); });
      }
      flows.back()->silent_dispatch();
    }
    for (auto& f : flows) f->wait_for_all();
    benchmark::DoNotOptimize(value.load());
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kGraphs * kTasksPerGraph,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExternalSubmit)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
