// bench_algorithms - partitioner-driven parallel algorithms (DESIGN.md §9):
// for each scheduling strategy, run an index-space parallel_for over n
// elements and report wall time plus the number of task nodes the pattern
// emplaced.  Strategies:
//
//   * guided / static / dynamic - the O(workers)-node range-worker engine
//     with the three partitioners;
//   * per_chunk_auto / per_chunk_1024 - the pre-partitioner design this PR
//     replaced, reproduced here verbatim: one task node per chunk, chunk
//     frozen at construction time (auto = ceil(n / (4 W)), the old default);
//   * threads - a hand-rolled std::thread static split, the no-scheduler
//     floor.
//
// Two per-element cost profiles:
//
//   * uniform - every element costs one hash round; isolates pure
//     construction + scheduling overhead (node allocs, edge wires, grabs);
//   * skewed - the last 1% of the index space costs 64x; a construction-time
//     static split assigns the whole expensive tail to one worker, while
//     decaying guided chunks backfill it.  The tail is kept narrow so the
//     total compute stays small enough for per-node overhead to be visible
//     in the same run.
//
// Note (EXPERIMENTS.md): load-balancing deltas between strategies only
// materialize with real parallel hardware; on few-core hosts the dominant
// measured effect is the per-node construction/scheduling overhead, which is
// exactly what the per_chunk_* strategies pay and the O(W) engine does not.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "taskflow/taskflow.hpp"

namespace {

constexpr std::size_t kWorkers = 4;

/// One unit of per-element work: a 64-bit mix round the optimizer cannot
/// hoist or fold across elements.
inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x;
}

/// Element cost in mix rounds: uniform = 1; skewed = 64 for the last 1%.
template <bool Skewed>
inline std::uint64_t process(std::size_t i, std::size_t n) {
  std::uint64_t acc = i;
  const std::size_t rounds = (Skewed && i >= n - n / 100) ? 64 : 1;
  for (std::size_t r = 0; r < rounds; ++r) acc = mix(acc + r);
  return acc;
}

/// The O(workers)-node engine with a given partitioner.
template <bool Skewed, typename P>
void run_partitioned(benchmark::State& state, P part) {
  const std::size_t n = bench::scaled(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> sink(n);
  tf::Taskflow tf(kWorkers);
  std::size_t nodes = 0;
  for (auto _ : state) {
    std::uint64_t* out = sink.data();
    tf.parallel_for(std::size_t{0}, n, std::size_t{1},
                    [out, n](std::size_t i) { out[i] = process<Skewed>(i, n); },
                    part);
    nodes = tf.num_nodes();
    tf.wait_for_all();
    benchmark::DoNotOptimize(sink.data());
    benchmark::ClobberMemory();
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["elements"] = static_cast<double>(n);
}

/// The strategy this PR replaced: one task node per chunk, wired between a
/// source/target pair, chunk size frozen before dispatch.
template <bool Skewed>
void run_per_chunk_node(benchmark::State& state, std::size_t chunk) {
  const std::size_t n = bench::scaled(static_cast<std::size_t>(state.range(0)));
  if (chunk == 0) chunk = std::max<std::size_t>(1, (n + 4 * kWorkers - 1) / (4 * kWorkers));
  std::vector<std::uint64_t> sink(n);
  tf::Taskflow tf(kWorkers);
  std::size_t nodes = 0;
  for (auto _ : state) {
    std::uint64_t* out = sink.data();
    auto source = tf.emplace([] {});
    auto target = tf.emplace([] {});
    for (std::size_t beg = 0; beg < n; beg += chunk) {
      const std::size_t end = std::min(beg + chunk, n);
      auto node = tf.emplace([out, n, beg, end] {
        for (std::size_t i = beg; i < end; ++i) out[i] = process<Skewed>(i, n);
      });
      source.precede(node);
      node.precede(target);
    }
    nodes = tf.num_nodes();
    tf.wait_for_all();
    benchmark::DoNotOptimize(sink.data());
    benchmark::ClobberMemory();
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["elements"] = static_cast<double>(n);
}

/// Hand-rolled std::thread static split: no task graph, no scheduler.
template <bool Skewed>
void run_threads(benchmark::State& state) {
  const std::size_t n = bench::scaled(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> sink(n);
  for (auto _ : state) {
    std::uint64_t* out = sink.data();
    std::vector<std::thread> pool;
    pool.reserve(kWorkers);
    for (std::size_t w = 0; w < kWorkers; ++w) {
      const std::size_t beg = w * n / kWorkers;
      const std::size_t end = (w + 1) * n / kWorkers;
      pool.emplace_back([out, n, beg, end] {
        for (std::size_t i = beg; i < end; ++i) out[i] = process<Skewed>(i, n);
      });
    }
    for (auto& t : pool) t.join();
    benchmark::DoNotOptimize(sink.data());
    benchmark::ClobberMemory();
  }
  state.counters["nodes"] = 0;
  state.counters["elements"] = static_cast<double>(n);
}

// ---- uniform cost ----------------------------------------------------------

void BM_uniform_guided(benchmark::State& s) { run_partitioned<false>(s, tf::GuidedPartitioner{}); }
void BM_uniform_static(benchmark::State& s) { run_partitioned<false>(s, tf::StaticPartitioner{}); }
void BM_uniform_dynamic1024(benchmark::State& s) { run_partitioned<false>(s, tf::DynamicPartitioner{1024}); }
void BM_uniform_per_chunk_auto(benchmark::State& s) { run_per_chunk_node<false>(s, 0); }
void BM_uniform_per_chunk_1024(benchmark::State& s) { run_per_chunk_node<false>(s, 1024); }
void BM_uniform_threads(benchmark::State& s) { run_threads<false>(s); }

#define UNIFORM_ARGS ->Arg(10000)->Arg(1000000)->Arg(10000000)->Unit(benchmark::kMillisecond)
BENCHMARK(BM_uniform_guided) UNIFORM_ARGS;
BENCHMARK(BM_uniform_static) UNIFORM_ARGS;
BENCHMARK(BM_uniform_dynamic1024) UNIFORM_ARGS;
BENCHMARK(BM_uniform_per_chunk_auto) UNIFORM_ARGS;
BENCHMARK(BM_uniform_per_chunk_1024) UNIFORM_ARGS;
BENCHMARK(BM_uniform_threads) UNIFORM_ARGS;

// ---- skewed cost (64x tail) ------------------------------------------------

void BM_skewed_guided(benchmark::State& s) { run_partitioned<true>(s, tf::GuidedPartitioner{}); }
void BM_skewed_static(benchmark::State& s) { run_partitioned<true>(s, tf::StaticPartitioner{}); }
void BM_skewed_dynamic1024(benchmark::State& s) { run_partitioned<true>(s, tf::DynamicPartitioner{1024}); }
void BM_skewed_per_chunk_auto(benchmark::State& s) { run_per_chunk_node<true>(s, 0); }
void BM_skewed_per_chunk_1024(benchmark::State& s) { run_per_chunk_node<true>(s, 1024); }
void BM_skewed_threads(benchmark::State& s) { run_threads<true>(s); }

#define SKEWED_ARGS ->Arg(1000000)->Arg(10000000)->Unit(benchmark::kMillisecond)
BENCHMARK(BM_skewed_guided) SKEWED_ARGS;
BENCHMARK(BM_skewed_static) SKEWED_ARGS;
BENCHMARK(BM_skewed_dynamic1024) SKEWED_ARGS;
BENCHMARK(BM_skewed_per_chunk_auto) SKEWED_ARGS;
BENCHMARK(BM_skewed_per_chunk_1024) SKEWED_ARGS;
BENCHMARK(BM_skewed_threads) SKEWED_ARGS;

}  // namespace

BENCHMARK_MAIN();
