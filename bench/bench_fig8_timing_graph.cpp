// bench_fig8_timing_graph - reproduces paper Fig. 8: the task dependency
// graph of a single incremental timing update, dumped in DOT format with
// pin-level task names (e.g. "u1:A", "f1:CLK").  Builds the small circuit
// sketched in the paper's figure (primary inputs, a NAND stage, a flop, an
// inverter chain, a reconvergent NAND), runs one incremental update and
// writes fig8_timing_update.dot.
#include <fstream>

#include "bench_util.hpp"
#include "timer/timers.hpp"

int main() {
  std::ostream& os = std::cout;
  support::banner(os, "Fig. 8: task dependency graph of a single timing update");

  const auto lib = ot::CellLibrary::make_synthetic();
  ot::Netlist nl(lib);

  const int n_inp1 = nl.add_net("inp1_n", 1.0);
  const int n_inp2 = nl.add_net("inp2_n", 1.0);
  const int n_clk = nl.add_net("clk_n", 0.5);
  const int n_u1 = nl.add_net("u1_n", 1.2);
  const int n_q = nl.add_net("q_n", 1.0);
  const int n_u2 = nl.add_net("u2_n", 0.8);
  const int n_u3 = nl.add_net("u3_n", 0.8);
  const int n_u4 = nl.add_net("u4_n", 2.0);

  nl.add_primary_input("inp1", n_inp1);
  nl.add_primary_input("inp2", n_inp2);
  nl.add_primary_input("clock", n_clk);

  const int u1 = nl.add_gate("u1", lib.at("NAND2_X1"));
  nl.connect(u1, 0, n_inp1);
  nl.connect(u1, 1, n_inp2);
  nl.connect(u1, 2, n_u1);

  const int f1 = nl.add_gate("f1", lib.at("DFF_X1"));
  nl.connect(f1, 0, n_clk);
  nl.connect(f1, 1, n_u1);
  nl.connect(f1, 2, n_q);

  const int u2 = nl.add_gate("u2", lib.at("INV_X1"));
  nl.connect(u2, 0, n_q);
  nl.connect(u2, 1, n_u2);

  const int u3 = nl.add_gate("u3", lib.at("INV_X1"));
  nl.connect(u3, 0, n_u2);
  nl.connect(u3, 1, n_u3);

  const int u4 = nl.add_gate("u4", lib.at("NAND2_X1"));
  nl.connect(u4, 0, n_u1);
  nl.connect(u4, 1, n_u3);
  nl.connect(u4, 2, n_u4);

  nl.add_primary_output("out", n_u4);
  nl.validate();

  ot::TimerOptions opt;
  opt.num_threads = 2;
  opt.clock_period = 1.0;
  ot::TimerV2 timer(nl, opt);
  timer.full_update();
  os << "full timing done: worst slack = " << support::fmt(timer.worst_slack(), 4)
     << " ns over " << timer.last_update_tasks() << " pin tasks\n";

  // One design transform: resize u1, re-time its cone (a "single timing
  // update"), and dump the task dependency graph that performed it.
  timer.resize(u1, lib.at("NAND2_X2"));
  os << "incremental update after resizing u1 -> NAND2_X2: "
     << timer.last_update_tasks() << " pin tasks, worst slack = "
     << support::fmt(timer.worst_slack(), 4) << " ns\n";

  const std::string dot = timer.dump_last_task_graph();
  std::ofstream("fig8_timing_update.dot") << dot;
  os << "\n" << dot << "\n";
  os << "wrote fig8_timing_update.dot (render with: dot -Tpng)\n";

  // The update graph must contain the pin-level tasks of the figure.
  for (const char* name : {"u1:Y", "u4:A", "u4:Y", "out:A"}) {
    if (dot.find(name) == std::string::npos) {
      std::cerr << "MISSING expected task " << name << " in Fig. 8 dump\n";
      return 1;
    }
  }
  return 0;
}
