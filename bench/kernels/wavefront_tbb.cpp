// TBB FlowGraph wavefront, written exactly as against Intel TBB's
// continue_node API (paper Table I: 38 LOC / CC 8); compiled here against
// the API-compatible fg:: baseline (DESIGN.md substitution #1).
#include <deque>

#include "baselines/flowgraph.hpp"
#include "kernels.hpp"

namespace kernels {

using node_t = fg::continue_node<fg::continue_msg>;

double wavefront_tbb(int nb, int work, unsigned threads) {
  fg::task_scheduler_init init(static_cast<int>(threads));
  std::vector<std::vector<double>> v(nb, std::vector<double>(nb, 0.0));

  fg::graph g;
  std::deque<node_t> storage;
  std::vector<std::vector<node_t*>> node(nb, std::vector<node_t*>(nb, nullptr));

  for (int i = 0; i < nb; ++i) {
    for (int j = 0; j < nb; ++j) {
      node[i][j] = &storage.emplace_back(g, [&v, i, j, work](const fg::continue_msg&) {
        const double up = i > 0 ? v[i - 1][j] : 0.0;
        const double left = j > 0 ? v[i][j - 1] : 0.0;
        v[i][j] = node_op(up + left, work);
      });
      if (i > 0) fg::make_edge(*node[i - 1][j], *node[i][j]);
      if (j > 0) fg::make_edge(*node[i][j - 1], *node[i][j]);
    }
  }

  node[0][0]->try_put(fg::continue_msg());
  g.wait_for_all();
  return v[nb - 1][nb - 1];
}

}  // namespace kernels
