// Shared traversal workload: the random bounded-degree DAG generator and
// the sequential reference (paper Table I: Sequential 14 LOC / CC 3).
#include <algorithm>

#include "kernels.hpp"
#include "support/rng.hpp"

namespace kernels {

TraversalGraph make_traversal_graph(std::size_t num_nodes, std::uint64_t seed) {
  TraversalGraph g;
  g.preds.resize(num_nodes);
  g.succs.resize(num_nodes);
  g.in_edge.resize(num_nodes);
  g.out_edge.resize(num_nodes);
  g.topo.resize(static_cast<std::size_t>(num_nodes));

  support::Xoshiro256 rng(seed);
  const std::size_t window = 64;

  // Rolling pool of candidate predecessors with remaining out-capacity.
  std::vector<int> pool;
  pool.reserve(window * 2);

  for (std::size_t v = 0; v < num_nodes; ++v) {
    g.topo[v] = static_cast<int>(v);
    const std::size_t max_in = std::min<std::size_t>({4, v, pool.size()});
    const std::size_t indeg = max_in == 0 ? 0 : rng.below(max_in + 1);

    for (std::size_t e = 0; e < indeg && !pool.empty(); ++e) {
      const std::size_t pick = rng.below(pool.size());
      const int u = pool[pick];
      // Reject duplicate edges to the same node.
      bool dup = false;
      for (int p : g.preds[v]) dup |= (p == u);
      if (dup) continue;

      const int edge_id = static_cast<int>(g.num_edges++);
      g.preds[v].push_back(u);
      g.in_edge[v].push_back(edge_id);
      g.succs[static_cast<std::size_t>(u)].push_back(static_cast<int>(v));
      g.out_edge[static_cast<std::size_t>(u)].push_back(edge_id);
      if (g.succs[static_cast<std::size_t>(u)].size() >= 4) {
        pool[pick] = pool.back();
        pool.pop_back();
      }
    }

    pool.push_back(static_cast<int>(v));
    // Keep the pool bounded so the DAG has bounded "width" (depth grows
    // with size, like a levelized circuit).
    if (pool.size() > window) {
      const std::size_t evict = rng.below(pool.size());
      pool[evict] = pool.back();
      pool.pop_back();
    }
  }
  return g;
}
}  // namespace kernels
