// Sequential graph traversal (paper Table I baseline: 14 LOC / CC 3).
#include "kernels.hpp"

namespace kernels {

double traversal_seq(const TraversalGraph& g, int work) {
  std::vector<double> val(g.size(), 0.0);
  double sum = 0.0;
  for (int v : g.topo) {
    val[v] = node_op(in_sum(g, val, v), work);
    sum += val[v];
  }
  return sum;
}

}  // namespace kernels
