// TBB FlowGraph traversal written against the continue_node API (paper
// Table I: 59 LOC / CC 8); compiled against the API-compatible fg::
// baseline.  Source nodes must be collected and try_put explicitly.
#include <atomic>
#include <deque>

#include "baselines/flowgraph.hpp"
#include "kernels.hpp"

namespace kernels {

using node_t = fg::continue_node<fg::continue_msg>;

double traversal_tbb(const TraversalGraph& g, int work, unsigned threads) {
  fg::task_scheduler_init init(static_cast<int>(threads));
  std::vector<double> val(g.size(), 0.0);
  std::atomic<double> sum{0.0};

  fg::graph graph;
  std::deque<node_t> storage;
  std::vector<node_t*> node(g.size(), nullptr);

  for (std::size_t v = 0; v < g.size(); ++v) {
    node[v] = &storage.emplace_back(graph, [&g, &val, &sum, v, work](const fg::continue_msg&) {
      val[v] = node_op(in_sum(g, val, static_cast<int>(v)), work);
      double cur = sum.load(std::memory_order_relaxed);
      while (!sum.compare_exchange_weak(cur, cur + val[v], std::memory_order_relaxed)) {
      }
    });
  }
  for (std::size_t u = 0; u < g.size(); ++u) {
    for (int v : g.succs[u]) {
      fg::make_edge(*node[u], *node[static_cast<std::size_t>(v)]);
    }
  }

  for (std::size_t v = 0; v < g.size(); ++v) {
    if (g.preds[v].empty()) node[v]->try_put(fg::continue_msg());
  }
  graph.wait_for_all();
  return sum.load();
}

}  // namespace kernels
