// Cpp-Taskflow graph traversal (paper Table I: 40 LOC / CC 6): the runtime
// graph casts directly onto a task dependency graph - no degree
// enumeration, no message plumbing.
#include <atomic>

#include "kernels.hpp"
#include "taskflow/taskflow.hpp"

namespace kernels {

double traversal_taskflow(const TraversalGraph& g, int work, unsigned threads) {
  std::vector<double> val(g.size(), 0.0);
  std::atomic<double> sum{0.0};

  tf::Taskflow tf(threads);
  std::vector<tf::Task> task(g.size());

  for (std::size_t v = 0; v < g.size(); ++v) {
    task[v] = tf.emplace([&g, &val, &sum, v, work]() {
      val[v] = node_op(in_sum(g, val, static_cast<int>(v)), work);
      double cur = sum.load(std::memory_order_relaxed);
      while (!sum.compare_exchange_weak(cur, cur + val[v], std::memory_order_relaxed)) {
      }
    });
  }
  for (std::size_t u = 0; u < g.size(); ++u) {
    for (int v : g.succs[u]) {
      task[u].precede(task[static_cast<std::size_t>(v)]);
    }
  }

  tf.wait_for_all();
  return sum.load();
}

}  // namespace kernels
