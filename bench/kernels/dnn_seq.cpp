// Sequential DNN training (paper Table III: 33 LOC / CC 9 / 2 hours).
#include "kernels.hpp"
#include "nn/trainers_common.hpp"

namespace kernels {

float dnn_seq(nn::Mlp& net, const nn::Dataset& ds, int epochs, std::size_t batch,
              float lr) {
  const std::size_t batches = ds.size() / batch;
  nn::detail::Storage slot;
  nn::Matrix x;
  std::vector<int> y;
  float loss = 0.0f;
  for (int e = 0; e < epochs; ++e) {
    nn::detail::shuffle_into(ds, slot, 0x5u, e);
    loss = 0.0f;
    for (std::size_t b = 0; b < batches; ++b) {
      nn::detail::make_batch(slot, b, batch, x, y);
      loss += net.forward(x, y) / static_cast<float>(batches);
      for (std::size_t i = net.num_layers(); i-- > 0;) net.backward_layer(i);
      for (std::size_t i = 0; i < net.num_layers(); ++i) net.update_layer(i, lr);
    }
  }
  return loss;
}

}  // namespace kernels
