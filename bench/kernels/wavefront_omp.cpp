// OpenMP 4.5 task-depend wavefront (paper Table I: 64 LOC / CC 12).
//
// The depend clause forces one explicitly-written task block per structural
// case (corner, top row, left column, interior) because the clause list is
// part of the pragma text - the source-bloat the paper measures.
#include <omp.h>

#include "kernels.hpp"

namespace kernels {

double wavefront_omp(int nb, int work, unsigned threads) {
  std::vector<std::vector<double>> v(nb, std::vector<double>(nb, 0.0));
  std::vector<char> tok_buf(static_cast<std::size_t>(nb) * static_cast<std::size_t>(nb));
  char* tok = tok_buf.data();
  omp_set_num_threads(static_cast<int>(threads));

#pragma omp parallel default(none) shared(v, tok, nb, work)
  {
#pragma omp single
    {
      for (int i = 0; i < nb; ++i) {
        for (int j = 0; j < nb; ++j) {
          const int self = i * nb + j;
          const int up = (i - 1) * nb + j;
          const int left = i * nb + (j - 1);
          if (i == 0 && j == 0) {
#pragma omp task default(none) shared(v) firstprivate(i, j, work) \
    depend(out : tok[self])
            {
              v[i][j] = node_op(0.0, work);
            }
          } else if (i == 0) {
#pragma omp task default(none) shared(v) firstprivate(i, j, work) \
    depend(in : tok[left]) depend(out : tok[self])
            {
              v[i][j] = node_op(v[i][j - 1], work);
            }
          } else if (j == 0) {
#pragma omp task default(none) shared(v) firstprivate(i, j, work) \
    depend(in : tok[up]) depend(out : tok[self])
            {
              v[i][j] = node_op(v[i - 1][j], work);
            }
          } else {
#pragma omp task default(none) shared(v) firstprivate(i, j, work) \
    depend(in : tok[up], tok[left]) depend(out : tok[self])
            {
              v[i][j] = node_op(v[i - 1][j] + v[i][j - 1], work);
            }
          }
        }
      }
    }
  }
  return v[nb - 1][nb - 1];
}

}  // namespace kernels
