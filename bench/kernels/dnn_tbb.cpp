// TBB FlowGraph DNN training decomposition (paper Table III: 90 LOC / CC 12
// / 3 hours), written against the continue_node API (compiled against the
// API-compatible fg:: baseline).  Note the extra plumbing relative to the
// taskflow dialect: explicit node storage, message-type boilerplate, and
// manual source activation.
#include <deque>

#include "baselines/flowgraph.hpp"
#include "kernels.hpp"
#include "nn/trainers_common.hpp"

namespace kernels {

using node_t = fg::continue_node<fg::continue_msg>;

float dnn_tbb(nn::Mlp& net, const nn::Dataset& ds, int epochs, std::size_t batch,
              float lr, unsigned threads) {
  const std::size_t B = ds.size() / batch;
  const std::size_t L = net.num_layers();
  const std::size_t K = std::min<std::size_t>(2 * threads, static_cast<std::size_t>(epochs));
  std::vector<nn::detail::Storage> store(K);
  nn::Matrix x;
  std::vector<int> y;
  float loss = 0.0f;

  fg::task_scheduler_init init(static_cast<int>(threads));
  fg::graph graph;
  std::deque<node_t> nodes;
  const auto E = static_cast<std::size_t>(epochs);
  std::vector<node_t*> S(E), F(E * B), G(E * B * L), U(E * B * L);

  for (std::size_t e = 0; e < E; ++e) {
    S[e] = &nodes.emplace_back(graph, [&, e](const fg::continue_msg&) {
      nn::detail::shuffle_into(ds, store[e % K], 0x5u, static_cast<int>(e));
    });
    for (std::size_t b = 0; b < B; ++b) {
      F[e * B + b] = &nodes.emplace_back(graph, [&, e, b](const fg::continue_msg&) {
        nn::detail::make_batch(store[e % K], b, batch, x, y);
        if (b == 0) loss = 0.0f;
        loss += net.forward(x, y) / static_cast<float>(B);
      });
      for (std::size_t i = 0; i < L; ++i) {
        G[(e * B + b) * L + i] =
            &nodes.emplace_back(graph, [&, i](const fg::continue_msg&) {
              net.backward_layer(i);
            });
        U[(e * B + b) * L + i] =
            &nodes.emplace_back(graph, [&, i](const fg::continue_msg&) {
              net.update_layer(i, lr);
            });
      }
    }
  }
  for (std::size_t e = 0; e < E; ++e) {
    if (e >= K) fg::make_edge(*F[(e - K) * B + B - 1], *S[e]);
    fg::make_edge(*S[e], *F[e * B]);
    for (std::size_t b = 0; b < B; ++b) {
      const std::size_t fb = e * B + b;
      fg::make_edge(*F[fb], *G[fb * L + L - 1]);
      for (std::size_t i = L; i-- > 0;) {
        if (i > 0) fg::make_edge(*G[fb * L + i], *G[fb * L + i - 1]);
        fg::make_edge(*G[fb * L + i], *U[fb * L + i]);
      }
      if (fb + 1 < E * B) {
        for (std::size_t i = 0; i < L; ++i) fg::make_edge(*U[fb * L + i], *F[fb + 1]);
      }
    }
  }

  for (std::size_t e = 0; e < std::min(K, E); ++e) S[e]->try_put(fg::continue_msg());
  graph.wait_for_all();
  return loss;
}

}  // namespace kernels
