using namespace tbb;
using namespace tbb::flow;

int n = task_scheduler_init::default_num_threads();
task_scheduler_init init(n);

graph g;
continue_node<continue_msg> a0(g, [](const continue_msg&) {
  std::cout << "a0\n";
});
continue_node<continue_msg> a1(g, [](const continue_msg&) {
  std::cout << "a1\n";
});
continue_node<continue_msg> a2(g, [](const continue_msg&) {
  std::cout << "a2\n";
});
continue_node<continue_msg> a3(g, [](const continue_msg&) {
  std::cout << "a3\n";
});
continue_node<continue_msg> b0(g, [](const continue_msg&) {
  std::cout << "b0\n";
});
continue_node<continue_msg> b1(g, [](const continue_msg&) {
  std::cout << "b1\n";
});
continue_node<continue_msg> b2(g, [](const continue_msg&) {
  std::cout << "b2\n";
});

make_edge(a0, a1);
make_edge(a1, a2);
make_edge(a1, b2);
make_edge(a2, a3);
make_edge(b0, b1);
make_edge(b1, b2);
make_edge(b1, a2);
make_edge(b2, a3);

a0.try_put(continue_msg());
b0.try_put(continue_msg());

g.wait_for_all();
