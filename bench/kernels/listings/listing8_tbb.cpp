using namespace tbb;
using namespace tbb::flow;

int n = task_scheduler_init::default_num_threads();
task_scheduler_init init(n);

graph G; // create an outer graph

continue_node<continue_msg> A(G, [](const continue_msg&) {
  std::cout << "A\n";
});
continue_node<continue_msg> C(G, [](const continue_msg&) {
  std::cout << "C\n";
});
continue_node<continue_msg> D(G, [](const continue_msg&) {
  std::cout << "D\n";
});
continue_node<continue_msg> B(G, [](const continue_msg&) {
  std::cout << "B\n";
  graph subgraph; // create another inner graph
  continue_node<continue_msg> B1(subgraph, [](const continue_msg&) {
    std::cout << "B1\n";
  });
  continue_node<continue_msg> B2(subgraph, [](const continue_msg&) {
    std::cout << "B2\n";
  });
  continue_node<continue_msg> B3(subgraph, [](const continue_msg&) {
    std::cout << "B3\n";
  });
  make_edge(B1, B3);
  make_edge(B2, B3);
  B1.try_put(continue_msg());
  B2.try_put(continue_msg());
  subgraph.wait_for_all();
});
make_edge(A, B);
make_edge(A, C);
make_edge(B, D);
make_edge(C, D);

A.try_put(continue_msg()); // explicit source A
G.wait_for_all();
