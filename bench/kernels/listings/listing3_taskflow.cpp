tf::Taskflow tf;
auto [a0, a1, a2, a3, b0, b1, b2] = tf.emplace(
  [] () { std::cout << "a0\n"; },
  [] () { std::cout << "a1\n"; },
  [] () { std::cout << "a2\n"; },
  [] () { std::cout << "a3\n"; },
  [] () { std::cout << "b0\n"; },
  [] () { std::cout << "b1\n"; },
  [] () { std::cout << "b2\n"; }
);
a0.precede(a1);
a1.precede(a2, b2);
a2.precede(a3);
b0.precede(b1);
b1.precede(a2, b2);
b2.precede(a3);
tf.wait_for_all();
