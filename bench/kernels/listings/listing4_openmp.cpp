#pragma omp parallel
{
#pragma omp single
{
int a0_a1, a1_a2, a1_b2, a2_a3;
int b0_b1, b1_b2, b1_a2, b2_a3;
#pragma omp task depend(out: a0_a1)
std::cout << "a0\n";
#pragma omp task depend(out: b0_b1)
std::cout << "b0\n";
#pragma omp task depend(in: a0_a1) depend(out: a1_a2, a1_b2)
std::cout << "a1\n";
#pragma omp task depend(in: b0_b1) depend(out: b1_b2, b1_a2)
std::cout << "b1\n";
#pragma omp task depend(in: a1_a2, b1_a2) depend(out: a2_a3)
std::cout << "a2\n";
#pragma omp task depend(in: a1_b2, b1_b2) depend(out: b2_a3)
std::cout << "b2\n";
#pragma omp task depend(in: a2_a3, b2_a3)
std::cout << "a3\n";
}
}
