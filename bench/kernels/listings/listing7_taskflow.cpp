tf::Taskflow tf;

auto [A, C, D] = tf.emplace(
  [] () { std::cout << "A\n"; },
  [] () { std::cout << "C\n"; },
  [] () { std::cout << "D\n"; }
);
auto B = tf.emplace([] (auto& subflow) {
  std::cout << "B\n";
  auto [B1, B2, B3] = subflow.emplace(
    [] () { std::cout << "B1\n"; },
    [] () { std::cout << "B2\n"; },
    [] () { std::cout << "B3\n"; }
  );
  B1.precede(B3);
  B2.precede(B3);
});
A.precede(B, C);
B.precede(D);
C.precede(D);

tf.wait_for_all();
