// Sequential wavefront (paper Table I baseline).
#include "kernels.hpp"

namespace kernels {

double wavefront_seq(int nb, int work) {
  std::vector<std::vector<double>> v(nb, std::vector<double>(nb, 0.0));
  for (int i = 0; i < nb; ++i) {
    for (int j = 0; j < nb; ++j) {
      const double up = i > 0 ? v[i - 1][j] : 0.0;
      const double left = j > 0 ? v[i][j - 1] : 0.0;
      v[i][j] = node_op(up + left, work);
    }
  }
  return v[nb - 1][nb - 1];
}

}  // namespace kernels
