// Cpp-Taskflow DNN training decomposition (paper Table III: 59 LOC / CC 11
// / 3 hours): the whole Fig. 11 graph - shuffle tasks E_e, forward F, the
// per-layer G_i/U_i pipeline - in one pass of plain precede() calls.
#include "kernels.hpp"
#include "nn/trainers_common.hpp"
#include "taskflow/taskflow.hpp"

namespace kernels {

float dnn_taskflow(nn::Mlp& net, const nn::Dataset& ds, int epochs, std::size_t batch,
                   float lr, unsigned threads) {
  const std::size_t B = ds.size() / batch;
  const std::size_t L = net.num_layers();
  const std::size_t K = std::min<std::size_t>(2 * threads, epochs);
  std::vector<nn::detail::Storage> store(K);
  nn::Matrix x;
  std::vector<int> y;
  float loss = 0.0f;

  tf::Taskflow tf(threads);
  const auto E = static_cast<std::size_t>(epochs);
  std::vector<tf::Task> S(E), F(E * B), G(E * B * L), U(E * B * L);

  for (std::size_t e = 0; e < E; ++e) {
    S[e] = tf.emplace([&, e] { nn::detail::shuffle_into(ds, store[e % K], 0x5u, static_cast<int>(e)); });
    for (std::size_t b = 0; b < B; ++b) {
      F[e * B + b] = tf.emplace([&, e, b] {
        nn::detail::make_batch(store[e % K], b, batch, x, y);
        if (b == 0) loss = 0.0f;
        loss += net.forward(x, y) / static_cast<float>(B);
      });
      for (std::size_t i = 0; i < L; ++i) {
        G[(e * B + b) * L + i] = tf.emplace([&, i] { net.backward_layer(i); });
        U[(e * B + b) * L + i] = tf.emplace([&, i] { net.update_layer(i, lr); });
      }
    }
  }
  for (std::size_t e = 0; e < E; ++e) {
    if (e >= K) F[(e - K) * B + B - 1].precede(S[e]);
    S[e].precede(F[e * B]);
    for (std::size_t b = 0; b < B; ++b) {
      const std::size_t fb = e * B + b;
      F[fb].precede(G[fb * L + L - 1]);
      for (std::size_t i = L; i-- > 0;) {
        if (i > 0) G[fb * L + i].precede(G[fb * L + i - 1]);
        G[fb * L + i].precede(U[fb * L + i]);
      }
      if (fb + 1 < E * B) {
        for (std::size_t i = 0; i < L; ++i) U[fb * L + i].precede(F[fb + 1]);
      }
    }
  }

  tf.wait_for_all();
  return loss;
}

}  // namespace kernels
