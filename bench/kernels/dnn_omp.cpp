// OpenMP 4.5 task-depend DNN training decomposition (paper Table III:
// 162 LOC / CC 23 / 9 hours - "most time was spent on debugging the order
// of dependent tasks").
//
// The Fig. 11 graph cannot be expressed directly: clause lists are fixed
// pragma text, so every positional variant of every task needs its own
// hard-coded block, and the U_i fan-in to the next forward is rewritten as
// a U_{L-1} -> ... -> U_0 chain whose tail gates F.  The enumeration below
// is specific to this task shape; changing the architecture's layer
// structure means re-deriving the clause order by hand.
#include <omp.h>

#include "kernels.hpp"
#include "nn/trainers_common.hpp"

namespace kernels {

float dnn_omp(nn::Mlp& net, const nn::Dataset& ds, int epochs, std::size_t batch,
              float lr, unsigned threads) {
  const std::size_t B = ds.size() / batch;
  const std::size_t L = net.num_layers();
  const std::size_t K = std::min<std::size_t>(2 * threads, static_cast<std::size_t>(epochs));
  std::vector<nn::detail::Storage> store(K);
  nn::Matrix x;
  std::vector<int> y;
  float loss = 0.0f;

  omp_set_num_threads(static_cast<int>(threads));
  const auto E = static_cast<std::size_t>(epochs);
  std::vector<char> sh_b(E), f_b(E * B), g_b(E * B * L), u_b(E * B * L);
  char* sh = sh_b.data();
  char* ft = f_b.data();
  char* gt = g_b.data();
  char* ut = u_b.data();

#pragma omp parallel default(none) \
    shared(net, ds, store, x, y, loss, sh, ft, gt, ut, E, B, L, K, batch, lr)
  {
#pragma omp single
    {
      for (std::size_t e = 0; e < E; ++e) {
        if (e >= K) {
          const std::size_t gate = (e - K) * B + B - 1;
#pragma omp task default(none) shared(ds, store) firstprivate(e, K) \
    depend(in : ft[gate]) depend(out : sh[e])
          nn::detail::shuffle_into(ds, store[e % K], 0x5u, static_cast<int>(e));
        } else {
#pragma omp task default(none) shared(ds, store) firstprivate(e, K) \
    depend(out : sh[e])
          nn::detail::shuffle_into(ds, store[e % K], 0x5u, static_cast<int>(e));
        }
        for (std::size_t b = 0; b < B; ++b) {
          const std::size_t fb = e * B + b;
          if (b == 0 && e == 0) {
#pragma omp task default(none) shared(net, store, x, y, loss) \
    firstprivate(e, b, K, B, batch) depend(in : sh[e]) depend(out : ft[fb])
            {
              nn::detail::make_batch(store[e % K], b, batch, x, y);
              loss = net.forward(x, y) / static_cast<float>(B);
            }
          } else if (b == 0) {
            const std::size_t pu = (fb - 1) * L;
#pragma omp task default(none) shared(net, store, x, y, loss)               \
    firstprivate(e, b, K, B, batch) depend(in : sh[e]) depend(in : ut[pu])  \
    depend(out : ft[fb])
            {
              nn::detail::make_batch(store[e % K], b, batch, x, y);
              loss = net.forward(x, y) / static_cast<float>(B);
            }
          } else {
            const std::size_t pu = (fb - 1) * L;
#pragma omp task default(none) shared(net, store, x, y, loss) \
    firstprivate(e, b, K, B, batch) depend(in : ut[pu]) depend(out : ft[fb])
            {
              nn::detail::make_batch(store[e % K], b, batch, x, y);
              loss += net.forward(x, y) / static_cast<float>(B);
            }
          }
          for (std::size_t i = L; i-- > 0;) {
            const std::size_t gi = fb * L + i;
            if (i == L - 1) {
#pragma omp task default(none) shared(net) firstprivate(i) \
    depend(in : ft[fb]) depend(out : gt[gi])
              net.backward_layer(i);
            } else {
#pragma omp task default(none) shared(net) firstprivate(i) \
    depend(in : gt[gi + 1]) depend(out : gt[gi])
              net.backward_layer(i);
            }
          }
          for (std::size_t i = L; i-- > 0;) {
            const std::size_t gi = fb * L + i;
            if (i == L - 1) {
#pragma omp task default(none) shared(net) firstprivate(i, lr) \
    depend(in : gt[gi]) depend(out : ut[gi])
              net.update_layer(i, lr);
            } else {
#pragma omp task default(none) shared(net) firstprivate(i, lr) \
    depend(in : gt[gi]) depend(in : ut[gi + 1]) depend(out : ut[gi])
              net.update_layer(i, lr);
            }
          }
        }
      }
    }
  }
  return loss;
}

}  // namespace kernels
