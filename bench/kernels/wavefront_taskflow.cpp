// Cpp-Taskflow wavefront (paper §IV-A, Table I: 30 LOC / CC 7).
#include "kernels.hpp"
#include "taskflow/taskflow.hpp"

namespace kernels {

double wavefront_taskflow(int nb, int work, unsigned threads) {
  std::vector<std::vector<double>> v(nb, std::vector<double>(nb, 0.0));
  tf::Taskflow tf(threads);
  std::vector<std::vector<tf::Task>> task(nb, std::vector<tf::Task>(nb));

  for (int i = 0; i < nb; ++i) {
    for (int j = 0; j < nb; ++j) {
      task[i][j] = tf.emplace([&v, i, j, work]() {
        const double up = i > 0 ? v[i - 1][j] : 0.0;
        const double left = j > 0 ? v[i][j - 1] : 0.0;
        v[i][j] = node_op(up + left, work);
      });
      if (i > 0) task[i - 1][j].precede(task[i][j]);
      if (j > 0) task[i][j - 1].precede(task[i][j]);
    }
  }

  tf.wait_for_all();
  return v[nb - 1][nb - 1];
}

}  // namespace kernels
