// OpenMP 4.5 task-depend graph traversal (paper Table I: 213 LOC / CC 28).
//
// OpenMP dependencies are per-edge lvalues baked into the pragma text, so a
// runtime graph needs one explicitly-written task block per (input-degree,
// output-degree) combination.  With the paper's cap of at most four input
// and four output edges per node that is an exhaustive 5x5 enumeration -
// "to avoid blowing up the OpenMP code, we limit each node to have at most
// four input and output edges" (§IV-A).  This mirrors the OpenMP-based
// circuit analyzers the paper cites and their limitation.
#include <omp.h>

#include "kernels.hpp"

namespace kernels {

double traversal_omp(const TraversalGraph& g, int work, unsigned threads) {
  std::vector<double> val(g.size(), 0.0);
  std::vector<char> tok_buf(g.num_edges + 1);
  char* t = tok_buf.data();
  omp_set_num_threads(static_cast<int>(threads));
  const auto n = static_cast<int>(g.size());

#pragma omp parallel default(none) shared(g, val, t, n, work)
  {
#pragma omp single
    {
      for (int v = 0; v < n; ++v) {
        const auto& ie = g.in_edge[v];
        const auto& oe = g.out_edge[v];
        const int i0 = ie.size() > 0 ? ie[0] : 0;
        const int i1 = ie.size() > 1 ? ie[1] : 0;
        const int i2 = ie.size() > 2 ? ie[2] : 0;
        const int i3 = ie.size() > 3 ? ie[3] : 0;
        const int o0 = oe.size() > 0 ? oe[0] : 0;
        const int o1 = oe.size() > 1 ? oe[1] : 0;
        const int o2 = oe.size() > 2 ? oe[2] : 0;
        const int o3 = oe.size() > 3 ? oe[3] : 0;
        switch (ie.size() * 5 + oe.size()) {
          case 0:  // in 0, out 0
#pragma omp task default(none) shared(g, val) firstprivate(v, work)
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 1:  // in 0, out 1
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, o0) \
    depend(out : t[o0])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 2:  // in 0, out 2
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, o0, o1) \
    depend(out : t[o0], t[o1])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 3:  // in 0, out 3
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, o0, o1, o2) \
    depend(out : t[o0], t[o1], t[o2])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 4:  // in 0, out 4
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, o0, o1, o2, o3) \
    depend(out : t[o0], t[o1], t[o2], t[o3])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 5:  // in 1, out 0
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, i0) \
    depend(in : t[i0])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 6:  // in 1, out 1
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, i0, o0) \
    depend(in : t[i0]) depend(out : t[o0])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 7:  // in 1, out 2
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, i0, o0, o1) \
    depend(in : t[i0]) depend(out : t[o0], t[o1])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 8:  // in 1, out 3
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, i0, o0, o1, o2) \
    depend(in : t[i0]) depend(out : t[o0], t[o1], t[o2])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 9:  // in 1, out 4
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, o0, o1, o2, o3) depend(in : t[i0])             \
    depend(out : t[o0], t[o1], t[o2], t[o3])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 10:  // in 2, out 0
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, i0, i1) \
    depend(in : t[i0], t[i1])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 11:  // in 2, out 1
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, i0, i1, o0) \
    depend(in : t[i0], t[i1]) depend(out : t[o0])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 12:  // in 2, out 2
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, o0, o1) depend(in : t[i0], t[i1])          \
    depend(out : t[o0], t[o1])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 13:  // in 2, out 3
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, o0, o1, o2) depend(in : t[i0], t[i1])      \
    depend(out : t[o0], t[o1], t[o2])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 14:  // in 2, out 4
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, o0, o1, o2, o3) depend(in : t[i0], t[i1])  \
    depend(out : t[o0], t[o1], t[o2], t[o3])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 15:  // in 3, out 0
#pragma omp task default(none) shared(g, val, t) firstprivate(v, work, i0, i1, i2) \
    depend(in : t[i0], t[i1], t[i2])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 16:  // in 3, out 1
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, i2, o0) depend(in : t[i0], t[i1], t[i2])   \
    depend(out : t[o0])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 17:  // in 3, out 2
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, i2, o0, o1)                                \
    depend(in : t[i0], t[i1], t[i2]) depend(out : t[o0], t[o1])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 18:  // in 3, out 3
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, i2, o0, o1, o2)                            \
    depend(in : t[i0], t[i1], t[i2]) depend(out : t[o0], t[o1], t[o2])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 19:  // in 3, out 4
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, i2, o0, o1, o2, o3)                        \
    depend(in : t[i0], t[i1], t[i2]) depend(out : t[o0], t[o1], t[o2], t[o3])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 20:  // in 4, out 0
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, i2, i3) depend(in : t[i0], t[i1], t[i2], t[i3])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 21:  // in 4, out 1
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, i2, i3, o0)                                \
    depend(in : t[i0], t[i1], t[i2], t[i3]) depend(out : t[o0])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 22:  // in 4, out 2
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, i2, i3, o0, o1)                            \
    depend(in : t[i0], t[i1], t[i2], t[i3]) depend(out : t[o0], t[o1])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 23:  // in 4, out 3
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, i2, i3, o0, o1, o2)                        \
    depend(in : t[i0], t[i1], t[i2], t[i3]) depend(out : t[o0], t[o1], t[o2])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          case 24:  // in 4, out 4
#pragma omp task default(none) shared(g, val, t)                            \
    firstprivate(v, work, i0, i1, i2, i3, o0, o1, o2, o3)                    \
    depend(in : t[i0], t[i1], t[i2], t[i3])                                  \
    depend(out : t[o0], t[o1], t[o2], t[o3])
            val[v] = node_op(in_sum(g, val, v), work);
            break;
          default:
            break;
        }
      }
    }
  }

  double sum = 0.0;
  for (double x : val) sum += x;
  return sum;
}

}  // namespace kernels
