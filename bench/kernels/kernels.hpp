// kernels.hpp - declarations of the micro-benchmark kernels (paper §IV-A).
//
// Each kernel is implemented once per dialect in its own source file
// (wavefront_*.cpp, traversal_*.cpp, dnn_*.cpp).  Those files are the exact
// units measured by the software-cost tables (Tables I and III), so they
// are kept minimal and idiomatic for their library; this shared header
// (graph container, declarations) is common to all dialects and excluded
// from the per-dialect counts.
//
// Every kernel returns a checksum so the figure benches can assert that all
// dialects computed the same thing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/mnist.hpp"
#include "nn/network.hpp"

namespace kernels {

// ---------------------------------------------------------------------------
// Wavefront (paper Fig. 6): nb x nb blocks, each block depends on its upper
// and left neighbors and performs `work` iterations of nominal arithmetic.
// ---------------------------------------------------------------------------

double wavefront_seq(int nb, int work);
double wavefront_taskflow(int nb, int work, unsigned threads);
double wavefront_tbb(int nb, int work, unsigned threads);  // fg:: TBB dialect
double wavefront_omp(int nb, int work, unsigned threads);

// ---------------------------------------------------------------------------
// Graph traversal: a random DAG with at most four input and four output
// edges per node (the degree cap the paper imposes to keep the OpenMP
// dependency-clause enumeration finite).  Visiting a node consumes its
// predecessors' values and produces a new one.
// ---------------------------------------------------------------------------

struct TraversalGraph {
  // Per node: up to 4 predecessors/successors plus the ids of the incident
  // edges (the OpenMP dialect needs one dependency token per edge).
  std::vector<std::vector<int>> preds;     // preds[v], size <= 4
  std::vector<std::vector<int>> succs;     // succs[u], size <= 4
  std::vector<std::vector<int>> in_edge;   // edge ids parallel to preds
  std::vector<std::vector<int>> out_edge;  // edge ids parallel to succs
  std::vector<int> topo;                   // topological order (= 0..n-1)
  std::size_t num_edges{0};

  [[nodiscard]] std::size_t size() const noexcept { return preds.size(); }
};

/// Deterministic random DAG with the paper's degree cap.
TraversalGraph make_traversal_graph(std::size_t num_nodes, std::uint64_t seed);

double traversal_seq(const TraversalGraph& g, int work);
double traversal_taskflow(const TraversalGraph& g, int work, unsigned threads);
double traversal_tbb(const TraversalGraph& g, int work, unsigned threads);
double traversal_omp(const TraversalGraph& g, int work, unsigned threads);

// ---------------------------------------------------------------------------
// DNN training decomposition kernels (paper §IV-C, Table III): the Fig. 11
// strategy - per-batch F / per-layer G_i / per-layer U_i tasks plus
// per-epoch shuffle tasks - written once per dialect.  These are the units
// Table III measures; the full-featured, heavily-tested variants live in
// src/nn/trainers.*.  Each returns the mean loss of the last epoch.
// ---------------------------------------------------------------------------

float dnn_seq(nn::Mlp& net, const nn::Dataset& ds, int epochs, std::size_t batch,
              float lr);
float dnn_taskflow(nn::Mlp& net, const nn::Dataset& ds, int epochs, std::size_t batch,
                   float lr, unsigned threads);
float dnn_tbb(nn::Mlp& net, const nn::Dataset& ds, int epochs, std::size_t batch,
              float lr, unsigned threads);
float dnn_omp(nn::Mlp& net, const nn::Dataset& ds, int epochs, std::size_t batch,
              float lr, unsigned threads);

/// The per-node operation, shared verbatim by all dialects.
inline double node_op(double in, int work) {
  double acc = in + 1.0;
  for (int k = 0; k < work; ++k) acc += 1e-9 * static_cast<double>(k);
  return acc;
}

/// Sum of a node's predecessor values (shared by all traversal dialects).
inline double in_sum(const TraversalGraph& g, const std::vector<double>& val, int v) {
  double s = 0.0;
  for (int p : g.preds[static_cast<std::size_t>(v)]) s += val[static_cast<std::size_t>(p)];
  return s;
}

}  // namespace kernels
