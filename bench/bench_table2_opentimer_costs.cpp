// bench_table2_opentimer_costs - regenerates paper Table II ("Software
// Costs of OpenTimer v1 and v2"): SLOCCount-style LOC, maximum cyclomatic
// complexity, and COCOMO organic-mode effort/developers/cost estimates for
// the two timer engines.
//
// The paper compares whole OpenTimer releases (9,123 vs 4,482 LOC).  Our
// reproduction shares one STA core between engines, so two granularities
// are reported: (a) engine-specific sources only (the code a team must
// write *because* of the task model), and (b) engine + shared core (the
// full-tool view).  Both preserve the claim: the Cpp-Taskflow engine needs
// roughly half the engine code and much lower peak complexity than the
// levelized OpenMP engine.
#include <vector>

#include "bench_util.hpp"
#include "costtool/analyze.hpp"

#ifndef REPRO_SOURCE_DIR
#define REPRO_SOURCE_DIR "."
#endif

namespace {

std::vector<std::string> prefixed(std::initializer_list<const char*> files) {
  std::vector<std::string> out;
  for (const char* f : files) out.push_back(std::string(REPRO_SOURCE_DIR) + "/" + f);
  return out;
}

void print_section(std::ostream& os, const char* title,
                   const std::vector<std::pair<std::string, ct::ProjectReport>>& rows) {
  support::banner(os, title);
  support::Table table({"tool", "task model", "LOC", "MCC", "Effort(py)", "Dev",
                        "Cost($)"});
  for (const auto& [name, pr] : rows) {
    table.add_row({name, name.find("v1") != std::string::npos ? "OpenMP 4.5"
                                                              : "Cpp-Taskflow",
                   support::fmt_count(pr.code_lines), std::to_string(pr.max_cyclomatic),
                   support::fmt(pr.cocomo.effort_person_years),
                   support::fmt(pr.cocomo.developers),
                   support::fmt_count(static_cast<long long>(pr.cocomo.cost_usd))});
  }
  table.print(os);
  table.print_csv(os, "table2");
}

}  // namespace

int main() {
  std::ostream& os = std::cout;

  const auto v1_engine = prefixed({"src/timer/timer_v1.cpp"});
  const auto v2_engine = prefixed({"src/timer/timer_v2.cpp"});
  const auto shared_core = prefixed({
      "src/timer/celllib.hpp", "src/timer/celllib.cpp", "src/timer/netlist.hpp",
      "src/timer/netlist.cpp", "src/timer/timing_graph.hpp",
      "src/timer/timing_graph.cpp", "src/timer/propagation.hpp",
      "src/timer/propagation.cpp", "src/timer/timers.hpp", "src/timer/timers.cpp",
      "src/timer/modifier.hpp", "src/timer/modifier.cpp",
  });

  print_section(os, "Table II (a): engine-specific sources",
                {{"mini-OpenTimer v1 (engine)", ct::analyze_files(v1_engine)},
                 {"mini-OpenTimer v2 (engine)", ct::analyze_files(v2_engine)}});

  auto with_core = [&](std::vector<std::string> engine) {
    engine.insert(engine.end(), shared_core.begin(), shared_core.end());
    return engine;
  };
  print_section(os, "Table II (b): engine + shared STA core",
                {{"mini-OpenTimer v1 (full)", ct::analyze_files(with_core(v1_engine))},
                 {"mini-OpenTimer v2 (full)", ct::analyze_files(with_core(v2_engine))}});

  support::banner(os, "Paper Table II reference (full OpenTimer releases)");
  support::Table paper({"tool", "task model", "LOC", "MCC", "Effort(py)", "Dev", "Cost($)"});
  paper.add_row({"OpenTimer v1", "OpenMP 4.5", "9,123", "58", "2.04", "2.90", "275,287"});
  paper.add_row({"OpenTimer v2", "Cpp-Taskflow", "4,482", "20", "0.97", "1.83", "130,523"});
  paper.print(os);

  // Demonstrate the COCOMO model reproduces the paper's derived columns
  // from its LOC inputs.
  support::banner(os, "COCOMO cross-check on the paper's LOC inputs");
  support::Table check({"LOC", "Effort(py)", "Dev", "Cost($)"});
  for (int loc : {9123, 4482}) {
    const auto e = ct::cocomo_organic(loc);
    check.add_row({support::fmt_count(loc), support::fmt(e.effort_person_years),
                   support::fmt(e.developers),
                   support::fmt_count(static_cast<long long>(e.cost_usd))});
  }
  check.print(os);
  return 0;
}
