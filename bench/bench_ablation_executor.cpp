// bench_ablation_executor - ablation of the Algorithm-1 design choices the
// paper highlights (google-benchmark):
//   * per-worker cache (speculative linear-chain execution) on vs off,
//     on a chain-heavy workload;
//   * probabilistic load-balance wakeups at several probabilities, on an
//     independent-task workload;
//   * WorkStealingExecutor vs the central-queue SimpleExecutor.
#include <benchmark/benchmark.h>

#include "taskflow/taskflow.hpp"

namespace {

constexpr int kChainLength = 20000;
constexpr int kFanTasks = 20000;

void run_chain(const std::shared_ptr<tf::ExecutorInterface>& executor) {
  tf::Taskflow tf(executor);
  long value = 0;
  std::vector<tf::Task> chain;
  chain.reserve(kChainLength);
  for (int i = 0; i < kChainLength; ++i) {
    chain.push_back(tf.emplace([&value] { ++value; }));
  }
  tf.linearize(chain);
  tf.wait_for_all();
  benchmark::DoNotOptimize(value);
}

void run_fan(const std::shared_ptr<tf::ExecutorInterface>& executor) {
  tf::Taskflow tf(executor);
  std::atomic<long> value{0};
  for (int i = 0; i < kFanTasks; ++i) {
    tf.emplace([&value] { value.fetch_add(1, std::memory_order_relaxed); });
  }
  tf.wait_for_all();
  benchmark::DoNotOptimize(value.load());
}

void BM_Chain_WorkerCache(benchmark::State& state) {
  tf::WorkStealingOptions opt;
  opt.enable_worker_cache = state.range(0) != 0;
  auto executor = tf::make_executor(4, opt);
  for (auto _ : state) run_chain(executor);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kChainLength, benchmark::Counter::kIsRate);
  state.counters["cache_hits"] = static_cast<double>(executor->num_cache_hits());
}
BENCHMARK(BM_Chain_WorkerCache)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Fan_WakeProbability(benchmark::State& state) {
  tf::WorkStealingOptions opt;
  opt.balance_wake_probability = static_cast<double>(state.range(0)) / 1024.0;
  auto executor = tf::make_executor(4, opt);
  for (auto _ : state) run_fan(executor);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kFanTasks, benchmark::Counter::kIsRate);
  state.counters["steals"] = static_cast<double>(executor->num_steals());
}
BENCHMARK(BM_Fan_WakeProbability)->Arg(0)->Arg(16)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_Fan_WorkStealing(benchmark::State& state) {
  auto executor = tf::make_executor(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) run_fan(executor);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kFanTasks, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fan_WorkStealing)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Fan_SimpleExecutor(benchmark::State& state) {
  auto executor = std::make_shared<tf::SimpleExecutor>(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) run_fan(executor);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kFanTasks, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fan_SimpleExecutor)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Chain_SimpleExecutor(benchmark::State& state) {
  auto executor = std::make_shared<tf::SimpleExecutor>(4);
  for (auto _ : state) run_chain(executor);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kChainLength, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Chain_SimpleExecutor)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
