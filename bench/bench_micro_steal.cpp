// bench_micro_steal - microbenchmark of the steal pass itself (DESIGN.md
// §14), in two contention shapes, each runnable with the locality layer off
// (mode 0: flat round-robin sweep) or on (mode 1: adaptive victim selection
// + slab-affine placement + pinned workers):
//
//   * one-producer/N-thieves: a single linear chain rides one worker's cache
//     while every chain step sprays leaf tasks into that worker's queue -
//     all other workers live exclusively off steals from one hot victim.
//     The adaptive order should converge onto that victim after a few EWMA
//     updates and stop probing the empty queues of fellow thieves.
//
//   * all-to-all churn: W independent chains (one per worker) each spraying
//     leaves every step - every queue is both a steal source and a steal
//     target, so the victim scores keep shifting and the sweep-width
//     backoff, not the EWMA ranking, carries the win.
//
// Counters: steals split by locality tier (core/node/remote + central-queue
// claims), raw probe attempts, and the success rate attempts bought - the
// direct measure of how much victim-selection quality improved.  Tier and
// attempt counters only exist on the adaptive path; mode 0 reports the
// aggregate steal count alone.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <vector>

#include "taskflow/taskflow.hpp"

namespace {

tf::WorkStealingOptions steal_options(int mode) {
  tf::WorkStealingOptions opt;
  if (mode == 1) {
    opt.pin_workers = true;
    opt.adaptive_steal = true;
    opt.slab_affinity = true;
  }
  return opt;
}

void report_steal_counters(
    benchmark::State& state,
    const std::shared_ptr<tf::WorkStealingExecutor>& ws) {
  state.counters["steals"] = static_cast<double>(ws->num_steals());
  const auto attempts = ws->num_steal_attempts();
  if (attempts == 0) return;  // flat mode: probes are not counted
  state.counters["steal_attempts"] = static_cast<double>(attempts);
  state.counters["steal_success"] =
      static_cast<double>(ws->num_steals()) / static_cast<double>(attempts);
  state.counters["steals_core"] = static_cast<double>(ws->num_tier_steals(0));
  state.counters["steals_node"] = static_cast<double>(ws->num_tier_steals(1));
  state.counters["steals_remote"] = static_cast<double>(ws->num_tier_steals(2));
  state.counters["steals_central"] = static_cast<double>(ws->num_tier_steals(3));
  state.counters["slab_placements"] =
      static_cast<double>(ws->num_slab_placements());
}

// One chain of `steps` nodes; each step also releases `spray` independent
// leaves.  The chain advances through the producing worker's cache, so the
// leaves always pile into that one queue.
void run_producer_chain(const std::shared_ptr<tf::ExecutorInterface>& exec,
                        int chains, int steps, int spray) {
  tf::Taskflow tf(exec);
  std::atomic<long> value{0};
  auto sink = tf.emplace([] {});
  for (int c = 0; c < chains; ++c) {
    tf::Task prev;
    for (int s = 0; s < steps; ++s) {
      auto step = tf.emplace(
          [&value] { value.fetch_add(1, std::memory_order_relaxed); });
      if (s > 0) prev.precede(step);
      for (int l = 0; l < spray; ++l) {
        auto leaf = tf.emplace(
            [&value] { value.fetch_add(1, std::memory_order_relaxed); });
        step.precede(leaf);
        leaf.precede(sink);
      }
      prev = step;
    }
    prev.precede(sink);
  }
  tf.wait_for_all();
  benchmark::DoNotOptimize(value.load());
}

void BM_StealOneProducer(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  auto executor = tf::make_executor(workers, steal_options(mode));
  constexpr int kSteps = 128;
  constexpr int kSpray = 8;
  for (auto _ : state) run_producer_chain(executor, 1, kSteps, kSpray);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kSteps * (kSpray + 1),
      benchmark::Counter::kIsRate);
  report_steal_counters(state, executor);
}
BENCHMARK(BM_StealOneProducer)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond);

void BM_StealAllToAll(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  auto executor = tf::make_executor(workers, steal_options(mode));
  constexpr int kSteps = 32;
  constexpr int kSpray = 4;
  const int chains = static_cast<int>(workers);
  for (auto _ : state) run_producer_chain(executor, chains, kSteps, kSpray);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * chains * kSteps * (kSpray + 1),
      benchmark::Counter::kIsRate);
  report_steal_counters(state, executor);
}
BENCHMARK(BM_StealAllToAll)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
