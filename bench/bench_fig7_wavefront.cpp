// bench_fig7_wavefront - reproduces paper Fig. 7 (left column): wavefront
// micro-benchmark.
//   Section 1: runtime vs problem size at 8 threads (Cpp-Taskflow, TBB
//              dialect via fg::, OpenMP) - paper top-left plot.
//   Section 2: runtime vs thread count at the largest size (Cpp-Taskflow vs
//              TBB; OpenMP skipped, as in the paper) - bottom-left plot.
// The measurement includes library ramp-up, graph construction, execution
// and clean-up, exactly as the paper specifies.
#include "bench_util.hpp"
#include "kernels.hpp"

int main() {
  using namespace bench;
  std::ostream& os = std::cout;

  const unsigned threads = fixed_threads(8);
  const int work = 100;

  support::banner(os, "Fig. 7 (top-left): wavefront runtime vs block count, " +
                          std::to_string(threads) + " threads");

  const std::vector<int> block_sides = {32, 64, 128, 256,
                                        static_cast<int>(scaled(512))};
  support::Table size_table({"tasks", "seq_ms", "taskflow_ms", "tbb_ms", "omp_ms"});

  int largest = 0;
  for (int nb : block_sides) {
    if (nb < 2) continue;
    largest = nb;
    const double ref = kernels::wavefront_seq(nb, work);

    double seq_ms = time_ms([&] { (void)kernels::wavefront_seq(nb, work); });
    double tf_ms = 0.0, tbb_ms = 0.0, omp_ms = 0.0;
    double sink = 0.0;
    tf_ms = time_ms([&] { sink = kernels::wavefront_taskflow(nb, work, threads); });
    check(ref, sink, "wavefront_taskflow");
    tbb_ms = time_ms([&] { sink = kernels::wavefront_tbb(nb, work, threads); });
    check(ref, sink, "wavefront_tbb");
    omp_ms = time_ms([&] { sink = kernels::wavefront_omp(nb, work, threads); });
    check(ref, sink, "wavefront_omp");

    size_table.add_row({support::fmt_count(static_cast<long long>(nb) * nb),
                        support::fmt(seq_ms), support::fmt(tf_ms), support::fmt(tbb_ms),
                        support::fmt(omp_ms)});
  }
  size_table.print(os);
  size_table.print_csv(os, "fig7_wavefront_size");

  support::banner(os, "Fig. 7 (bottom-left): wavefront runtime vs #threads at " +
                          support::fmt_count(static_cast<long long>(largest) * largest) +
                          " tasks");
  support::Table thread_table({"threads", "taskflow_ms", "tbb_ms"});
  const double ref = kernels::wavefront_seq(largest, work);
  for (unsigned t : thread_sweep()) {
    double sink = 0.0;
    const double tf_ms =
        time_ms([&] { sink = kernels::wavefront_taskflow(largest, work, t); });
    check(ref, sink, "wavefront_taskflow");
    const double tbb_ms = time_ms([&] { sink = kernels::wavefront_tbb(largest, work, t); });
    check(ref, sink, "wavefront_tbb");
    thread_table.add_row({std::to_string(t), support::fmt(tf_ms), support::fmt(tbb_ms)});
  }
  thread_table.print(os);
  thread_table.print_csv(os, "fig7_wavefront_threads");

  os << "\nPaper shape: Cpp-Taskflow scales best as block count grows and is\n"
        "consistently faster than TBB across thread counts (32-84% at 1 CPU);\n"
        "OpenMP trails both.  Note: this host has "
     << std::thread::hardware_concurrency()
     << " hardware thread(s); thread-sweep speedups saturate accordingly.\n";
  return 0;
}
