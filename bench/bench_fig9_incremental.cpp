// bench_fig9_incremental - reproduces paper Fig. 9: per-iteration runtime
// of incremental timing, OpenTimer v1 (levelized OpenMP) vs v2
// (Cpp-Taskflow), on tv80-scale and vga_lcd-scale synthetic circuits under
// 16 threads.  Each "incremental iteration" applies one gate resize and
// answers a worst-slack query; the per-iteration series plus the paper's
// summary statistics (max and average v1/v2 speed-up) are printed.
//
// Circuit scale: REPRO_TIMER_SCALE multiplies the paper's gate counts
// (default 1.0 for tv80 = 5.3K gates; vga_lcd defaults to 0.2 of 139.5K on
// this class of host - raise it on a bigger machine).
#include "bench_util.hpp"
#include "timer/modifier.hpp"
#include "timer/timers.hpp"

namespace {

struct Series {
  std::vector<double> v1_ms;
  std::vector<double> v2_ms;
  std::vector<std::size_t> tasks;
};

Series run_design(std::ostream& os, const char* name, const ot::CircuitSpec& spec,
                  int iterations, unsigned threads) {
  const auto lib = ot::CellLibrary::make_synthetic();

  auto nl_v1 = ot::make_circuit(lib, spec);
  auto nl_v2 = ot::make_circuit(lib, spec);

  ot::TimerOptions opt;
  opt.num_threads = threads;
  opt.clock_period = 2.0;
  // Sign-off-grade per-pin effort: multi-corner NLDM evaluation (see
  // TimerOptions::corners).  Raise/lower with REPRO_TIMER_CORNERS.
  opt.corners = static_cast<int>(support::env_int("REPRO_TIMER_CORNERS", 1));
  ot::TimerV1 v1(nl_v1, opt);
  ot::TimerV2 v2(nl_v2, opt);
  v1.full_update();
  v2.full_update();

  ot::ModifierStream mods_v1(nl_v1, 0xF19u);
  ot::ModifierStream mods_v2(nl_v2, 0xF19u);

  Series s;
  std::size_t total_tasks = 0;
  for (int i = 0; i < iterations; ++i) {
    const auto m1 = mods_v1.next();
    const auto m2 = mods_v2.next();

    support::Stopwatch sw1;
    v1.resize(m1.gate, *m1.new_cell);
    volatile double q1 = v1.worst_slack();
    s.v1_ms.push_back(sw1.elapsed_ms());

    support::Stopwatch sw2;
    v2.resize(m2.gate, *m2.new_cell);
    volatile double q2 = v2.worst_slack();
    s.v2_ms.push_back(sw2.elapsed_ms());

    if (std::abs(q1 - q2) > 1e-6) {
      std::cerr << "SLACK MISMATCH at iteration " << i << ": " << q1 << " vs " << q2
                << "\n";
    }
    s.tasks.push_back(v2.last_update_tasks());
    total_tasks += v2.last_update_tasks();
  }

  support::banner(os, std::string("Fig. 9: ") + name + " (" +
                          support::fmt_count(static_cast<long long>(nl_v1.num_gates())) +
                          " gates, " +
                          support::fmt_count(static_cast<long long>(total_tasks)) +
                          " tasks across " + std::to_string(iterations) +
                          " iterations, " + std::to_string(threads) + " threads)");
  support::Table table({"iteration", "tasks", "v1_openmp_ms", "v2_taskflow_ms",
                        "speedup"});
  double max_speedup = 0.0, sum_speedup = 0.0;
  for (std::size_t i = 0; i < s.v1_ms.size(); ++i) {
    const double sp = s.v1_ms[i] / std::max(1e-9, s.v2_ms[i]);
    max_speedup = std::max(max_speedup, sp);
    sum_speedup += sp;
    table.add_row({std::to_string(i), support::fmt_count(static_cast<long long>(s.tasks[i])),
                   support::fmt(s.v1_ms[i], 3), support::fmt(s.v2_ms[i], 3),
                   support::fmt(sp)});
  }
  table.print(os);
  table.print_csv(os, std::string("fig9_") + name);
  os << "max speed-up (v1/v2) = " << support::fmt(max_speedup)
     << ", average = " << support::fmt(sum_speedup / static_cast<double>(s.v1_ms.size()))
     << "\n";
  return s;
}

}  // namespace

int main() {
  std::ostream& os = std::cout;
  const unsigned threads = bench::fixed_threads(16);
  const double scale = support::env_double("REPRO_TIMER_SCALE", 1.0);

  auto tv80 = ot::tv80_spec(scale);
  run_design(os, "tv80", tv80, 30, threads);

  auto vga = ot::vga_lcd_spec(support::env_double("REPRO_TIMER_SCALE_VGA", 0.2 * scale));
  run_design(os, "vga_lcd", vga, 100, threads);

  os << "\nPaper shape: v2 (Cpp-Taskflow) is consistently faster per iteration;\n"
        "maximum speed-up 9.8x on tv80 and 3.1x on vga_lcd (average 2.9x / 2.0x).\n"
        "The fluctuation across iterations comes from the modifier stream: local\n"
        "changes touch small cones, others ripple across the timing landscape.\n";
  return 0;
}
