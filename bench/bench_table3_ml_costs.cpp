// bench_table3_ml_costs - regenerates paper Table III ("Software Costs
// Comparison on Machine Learning"): LOC and cyclomatic complexity of the
// Fig. 11 DNN-training decomposition in each dialect, measured over the
// checked-in kernel sources.  (The paper's third column, development time
// in hours, is a human measurement; the paper's values are echoed for
// reference.)
#include "bench_util.hpp"
#include "costtool/analyze.hpp"

#ifndef REPRO_SOURCE_DIR
#define REPRO_SOURCE_DIR "."
#endif

namespace {

struct Row {
  const char* dialect;
  const char* file;
  int paper_loc;
  int paper_cc;
  int paper_hours;
};

const Row kRows[] = {
    {"Cpp-Taskflow", "bench/kernels/dnn_taskflow.cpp", 59, 11, 3},
    {"OpenMP", "bench/kernels/dnn_omp.cpp", 162, 23, 9},
    {"TBB", "bench/kernels/dnn_tbb.cpp", 90, 12, 3},
    {"Sequential", "bench/kernels/dnn_seq.cpp", 33, 9, 2},
};

}  // namespace

int main() {
  std::ostream& os = std::cout;
  support::banner(os, "Table III: software costs of the parallel DNN decomposition");

  support::Table table({"dialect", "LOC", "CC", "tokens", "paper_LOC", "paper_CC",
                        "paper_T(h)"});
  for (const Row& row : kRows) {
    const auto report =
        ct::analyze_file(std::string(REPRO_SOURCE_DIR) + "/" + row.file);
    table.add_row({row.dialect, std::to_string(report.loc.code_lines),
                   std::to_string(report.cc.file_cyclomatic),
                   std::to_string(report.loc.tokens), std::to_string(row.paper_loc),
                   std::to_string(row.paper_cc), std::to_string(row.paper_hours)});
  }
  table.print(os);
  table.print_csv(os, "table3");

  os << "\nReproduced claim: Cpp-Taskflow has the fewest LOC and lowest complexity\n"
        "among the parallel dialects (1.5-2.7x less coding complexity); the OpenMP\n"
        "port balloons because every positional variant of every task needs its own\n"
        "hard-coded depend-clause block.\n";
  return 0;
}
