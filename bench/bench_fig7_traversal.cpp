// bench_fig7_traversal - reproduces paper Fig. 7 (right column): random
// graph-traversal micro-benchmark (irregular compute pattern, node degree
// capped at 4-in/4-out so the OpenMP clause enumeration stays finite).
//   Section 1: runtime vs graph size at 8 threads (top-right plot).
//   Section 2: runtime vs thread count at the largest size, Cpp-Taskflow vs
//              TBB (bottom-right plot).
#include "bench_util.hpp"
#include "kernels.hpp"

int main() {
  using namespace bench;
  std::ostream& os = std::cout;

  const unsigned threads = fixed_threads(8);
  const int work = 100;

  support::banner(os, "Fig. 7 (top-right): graph traversal runtime vs size, " +
                          std::to_string(threads) + " threads");

  const std::vector<std::size_t> sizes = {50000, 100000, 200000, 400000,
                                          scaled(711002)};
  support::Table size_table(
      {"tasks", "edges", "seq_ms", "taskflow_ms", "tbb_ms", "omp_ms"});

  kernels::TraversalGraph largest_graph;
  for (std::size_t n : sizes) {
    if (n < 16) continue;
    auto g = kernels::make_traversal_graph(n, 0xF16u);
    const double ref = kernels::traversal_seq(g, work);

    const double seq_ms = time_ms([&] { (void)kernels::traversal_seq(g, work); });
    double sink = 0.0;
    const double tf_ms =
        time_ms([&] { sink = kernels::traversal_taskflow(g, work, threads); });
    check(ref, sink, "traversal_taskflow");
    const double tbb_ms = time_ms([&] { sink = kernels::traversal_tbb(g, work, threads); });
    check(ref, sink, "traversal_tbb");
    const double omp_ms = time_ms([&] { sink = kernels::traversal_omp(g, work, threads); });
    check(ref, sink, "traversal_omp");

    size_table.add_row({support::fmt_count(static_cast<long long>(n)),
                        support::fmt_count(static_cast<long long>(g.num_edges)),
                        support::fmt(seq_ms), support::fmt(tf_ms), support::fmt(tbb_ms),
                        support::fmt(omp_ms)});
    largest_graph = std::move(g);
  }
  size_table.print(os);
  size_table.print_csv(os, "fig7_traversal_size");

  support::banner(os, "Fig. 7 (bottom-right): traversal runtime vs #threads at " +
                          support::fmt_count(static_cast<long long>(largest_graph.size())) +
                          " tasks");
  support::Table thread_table({"threads", "taskflow_ms", "tbb_ms"});
  const double ref = kernels::traversal_seq(largest_graph, work);
  for (unsigned t : thread_sweep()) {
    double sink = 0.0;
    const double tf_ms =
        time_ms([&] { sink = kernels::traversal_taskflow(largest_graph, work, t); });
    check(ref, sink, "traversal_taskflow");
    const double tbb_ms =
        time_ms([&] { sink = kernels::traversal_tbb(largest_graph, work, t); });
    check(ref, sink, "traversal_tbb");
    thread_table.add_row({std::to_string(t), support::fmt(tf_ms), support::fmt(tbb_ms)});
  }
  thread_table.print(os);
  thread_table.print_csv(os, "fig7_traversal_threads");

  os << "\nPaper shape: at size 348K Cpp-Taskflow is 7.9x faster than OpenMP and\n"
        "1.9x faster than TBB; the margin grows with problem size, and taskflow\n"
        "stays ahead of TBB at every thread count.\n";
  return 0;
}
