// bench_fig8_stress - scaled-up stress variant of the paper's Fig. 8
// scenario (google-benchmark): instead of the toy 5-gate circuit whose
// update graph the figure renders, this builds synthetic designs of 4K-64K
// gates and times the *task-graph machinery* of TimerV2 updates.  With
// corners=1 the per-task arithmetic is minimal, so each update is dominated
// by constructing, dispatching and retiring the pin-level task dependency
// graph - the construction path the arena/CSR layout is meant to speed up.
//
// Recorded into BENCH_construction.json by tools/run_scheduler_bench.py and
// gated by its --compare mode alongside bench_micro_construction.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <map>
#include <memory>

#include "timer/timers.hpp"

namespace {

// The generated netlists are cached per gate count: benchmark re-enters the
// same function many times (timing runs, repetitions) and circuit synthesis
// is far more expensive than the updates under measurement.
ot::Netlist& stress_circuit(std::size_t num_gates) {
  static const ot::CellLibrary lib = ot::CellLibrary::make_synthetic();
  static std::map<std::size_t, std::unique_ptr<ot::Netlist>> cache;
  auto& slot = cache[num_gates];
  if (slot == nullptr) {
    ot::CircuitSpec spec;
    spec.num_gates = num_gates;
    spec.num_inputs = 64;
    spec.num_outputs = 64;
    slot = std::make_unique<ot::Netlist>(ot::make_circuit(lib, spec));
  }
  return *slot;
}

ot::TimerOptions stress_options() {
  ot::TimerOptions opt;
  opt.num_threads = 4;
  opt.clock_period = 2.0;
  opt.corners = 1;  // minimal per-task math: graph construction dominates
  return opt;
}

// Repeated full updates: every iteration builds one task per pin direction
// over the whole design (2 * num_pins tasks) plus the dependency edges of
// the timing graph, runs it, and tears it down.
void BM_Fig8StressFullUpdate(benchmark::State& state) {
  ot::Netlist& nl = stress_circuit(static_cast<std::size_t>(state.range(0)));
  ot::TimerV2 timer(nl, stress_options());
  for (auto _ : state) {
    timer.full_update();
    benchmark::DoNotOptimize(timer.worst_slack());
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(timer.last_update_tasks()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fig8StressFullUpdate)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

// Repeated incremental updates: alternate one gate between two drive
// strengths, re-timing its cone each iteration - the steady-state design
// transform loop of Fig. 9, here measured for its per-iteration task-graph
// construction cost.
void BM_Fig8StressIncremental(benchmark::State& state) {
  ot::Netlist& nl = stress_circuit(static_cast<std::size_t>(state.range(0)));
  const ot::CellLibrary& lib = nl.library();
  int victim = -1;
  for (std::size_t i = 0; i < nl.num_gates(); ++i) {
    if (nl.gate(static_cast<int>(i)).cell->kind == ot::CellKind::Nand2) {
      victim = static_cast<int>(i);
      break;
    }
  }
  if (victim < 0) {
    state.SkipWithError("no NAND2 gate in the generated circuit");
    return;
  }
  ot::TimerV2 timer(nl, stress_options());
  timer.full_update();
  bool upsized = false;
  std::size_t tasks = 0;
  for (auto _ : state) {
    upsized = !upsized;
    timer.resize(victim, lib.at(upsized ? "NAND2_X2" : "NAND2_X1"));
    tasks += timer.last_update_tasks();
    benchmark::DoNotOptimize(timer.worst_slack());
  }
  state.counters["tasks/s"] =
      benchmark::Counter(static_cast<double>(tasks), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fig8StressIncremental)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
