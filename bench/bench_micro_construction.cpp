// bench_micro_construction - microbenchmarks of graph construction and
// dispatch overhead (google-benchmark): emplace throughput, precede edge
// insertion, end-to-end empty-task throughput (the "library ramp-up +
// construction + execution + clean-up" cost the paper's Fig. 7 includes),
// and subflow spawn overhead.
#include <benchmark/benchmark.h>

#include "taskflow/taskflow.hpp"

namespace {

void BM_Emplace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto executor = tf::make_executor(1);
  for (auto _ : state) {
    tf::Taskflow tf(executor);
    for (std::size_t i = 0; i < n; ++i) tf.emplace([] {});
    benchmark::DoNotOptimize(tf.num_nodes());
    // Graph dropped without dispatch: pure construction cost.
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Emplace)
    ->Arg(1024)
    ->Arg(65536)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

void BM_PrecedeEdges(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto executor = tf::make_executor(1);
  for (auto _ : state) {
    tf::Taskflow tf(executor);
    tf::Task prev = tf.emplace([] {});
    for (std::size_t i = 1; i < n; ++i) {
      tf::Task next = tf.emplace([] {});
      prev.precede(next);
      prev = next;
    }
    benchmark::DoNotOptimize(tf.num_nodes());
  }
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n - 1),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PrecedeEdges)
    ->Arg(65536)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

void BM_PrecedeFanout(benchmark::State& state) {
  // One hub preceding `n` spokes: stresses successor-array growth (the
  // worst case for any inline-successor layout) rather than edge-per-node.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto executor = tf::make_executor(1);
  for (auto _ : state) {
    tf::Taskflow tf(executor);
    tf::Task hub = tf.emplace([] {});
    for (std::size_t i = 0; i < n; ++i) {
      tf::Task spoke = tf.emplace([] {});
      hub.precede(spoke);
    }
    benchmark::DoNotOptimize(tf.num_nodes());
  }
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PrecedeFanout)->Arg(65536)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

void BM_EndToEndEmptyTasks(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  auto executor = tf::make_executor(workers);
  for (auto _ : state) {
    tf::Taskflow tf(executor);
    for (std::size_t i = 0; i < n; ++i) tf.emplace([] {});
    tf.wait_for_all();
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndEmptyTasks)
    ->Args({16384, 1})
    ->Args({16384, 2})
    ->Args({16384, 4})
    ->Unit(benchmark::kMillisecond);

void BM_SubflowSpawn(benchmark::State& state) {
  const auto children = static_cast<std::size_t>(state.range(0));
  auto executor = tf::make_executor(2);
  for (auto _ : state) {
    tf::Taskflow tf(executor);
    tf.emplace([children](tf::SubflowBuilder& sf) {
      for (std::size_t i = 0; i < children; ++i) sf.emplace([] {});
    });
    tf.wait_for_all();
  }
  state.counters["children/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(children),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SubflowSpawn)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_DispatchFuture(benchmark::State& state) {
  auto executor = tf::make_executor(2);
  for (auto _ : state) {
    tf::Taskflow tf(executor);
    tf.emplace([] {});
    auto fut = tf.dispatch();
    fut.get();
    tf.wait_for_all();
  }
}
BENCHMARK(BM_DispatchFuture)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
