// bench_service_ingest.cpp - multi-client service-ingest latency under
// oversubscription (ISSUE 7, DESIGN.md §11).
//
// Models a task-graph service: N client threads (default 8, a 4x
// oversubscription of the default 2 workers) each submit a stream of small
// two-node request graphs to one shared executor and harvest the results in
// FIFO order.  Three admission modes, one per process so the peak-RSS
// high-water mark (getrusage ru_maxrss) isolates each policy's queue buildup:
//
//   unbounded  no admission control: every request is accepted immediately
//              and queues inside the executor.  Accepted-request latency
//              (admission -> completion) grows linearly with queue depth and
//              the topology backlog dominates peak RSS.
//   bounded    max_pending_per_client bounds each client's backlog; run()
//              blocks the submitter (backpressure) until a slot frees.
//              Accepted requests see a short bounded queue; the wait moves
//              to the submission edge where the client can react.
//   shed       a shed watermark caps the global backlog; excess accepted
//              requests complete immediately with tf::OverloadError and the
//              survivors keep bounded latency.
//
// Latency is measured from successful admission (run() returning a handle)
// to completion - the service-level claim of admission control is that
// *accepted* requests get predictable latency, with overload pushed to the
// edge (blocking) or converted to explicit shed errors, never into an
// unbounded invisible queue.  Reported percentiles aggregate all clients.
//
// Output: human-readable summary plus a machine-readable CSV line
//   CSV,service_ingest,<header...> / CSV,service_ingest,<row...>
// consumed by tools/run_scheduler_bench.py into BENCH_service.json.
//
// Knobs: REPRO_SERVICE_MODE      unbounded|bounded|shed (default bounded)
//        REPRO_SERVICE_CLIENTS   client threads (default 8)
//        REPRO_SERVICE_REQUESTS  requests per client (default 1500)
//        REPRO_SERVICE_WORKERS   executor workers (default 2)
//        REPRO_SERVICE_BOUND     per-client bound / watermark unit (default 4)
//        REPRO_SERVICE_WORK_US   per-request busy work in us (default 40)
#include "taskflow/taskflow.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "support/env.hpp"

namespace {

using Clock = std::chrono::steady_clock;

void busy_spin(std::chrono::microseconds d) {
  const auto until = Clock::now() + d;
  while (Clock::now() < until) {
  }
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

double peak_rss_mib() {
  // Prefer /proc/self/status VmHWM: unlike ru_maxrss it resets on execve,
  // so a fork()ing launcher (the python harness) doesn't bequeath its own
  // resident pages to our high-water mark.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      long kib = 0;
      if (std::sscanf(line, "VmHWM: %ld kB", &kib) == 1) {
        std::fclose(f);
        return static_cast<double>(kib) / 1024.0;
      }
    }
    std::fclose(f);
  }
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB -> MiB on Linux
}

}  // namespace

int main() {
  const std::string mode = [] {
    const char* m = std::getenv("REPRO_SERVICE_MODE");
    return std::string(m != nullptr ? m : "bounded");
  }();
  const auto clients =
      static_cast<std::size_t>(support::env_int("REPRO_SERVICE_CLIENTS", 8));
  const auto requests =
      static_cast<std::size_t>(support::env_int("REPRO_SERVICE_REQUESTS", 1500));
  const auto workers =
      static_cast<std::size_t>(support::env_int("REPRO_SERVICE_WORKERS", 2));
  const auto bound =
      static_cast<std::size_t>(support::env_int("REPRO_SERVICE_BOUND", 4));
  const std::chrono::microseconds work_us(
      support::env_int("REPRO_SERVICE_WORK_US", 40));

  tf::ExecutorOptions opts;  // "unbounded": all knobs zero = no admission
  if (mode == "bounded") {
    opts.max_pending_per_client = bound;
  } else if (mode == "shed") {
    opts.shed_watermark = clients * bound;
  } else if (mode != "unbounded") {
    std::fprintf(stderr, "unknown REPRO_SERVICE_MODE '%s'\n", mode.c_str());
    return 1;
  }

  // One request graph per client, outliving the executor drain below.  The
  // sink node stamps each run's completion time: same-taskflow runs are FIFO
  // serialized, so the per-client index needs no synchronization, and the
  // k-th stamp belongs to the k-th run that executed (shed runs never do).
  std::vector<std::unique_ptr<tf::Taskflow>> graphs;
  std::vector<std::vector<Clock::time_point>> done_at(clients);
  std::vector<std::size_t> done_idx(clients, 0);
  for (std::size_t c = 0; c < clients; ++c) {
    done_at[c].resize(requests);
    graphs.push_back(std::make_unique<tf::Taskflow>());
    auto ingest = graphs.back()->emplace([work_us] { busy_spin(work_us); });
    auto* stamps = done_at[c].data();
    auto* cursor = &done_idx[c];
    ingest.precede(
        graphs.back()->emplace([stamps, cursor] { stamps[(*cursor)++] = Clock::now(); }));
  }

  std::vector<std::vector<double>> latencies_us(clients);
  std::atomic<long> shed_count{0};
  const auto wall_begin = Clock::now();
  {
    tf::Executor executor(workers, opts);
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        auto& flow = *graphs[c];
        auto& lat = latencies_us[c];
        lat.reserve(requests);
        std::vector<tf::ExecutionHandle> handles;
        std::vector<Clock::time_point> admitted_at;
        handles.reserve(requests);
        admitted_at.reserve(requests);
        for (std::size_t r = 0; r < requests; ++r) {
          // In bounded mode this blocks at the per-client bound: the wait
          // lands here, at the edge, not in the accepted-request latency.
          handles.push_back(executor.run(flow));
          admitted_at.push_back(Clock::now());
        }
        // Successful runs executed in FIFO order: the k-th success pairs
        // with the k-th completion stamp the sink recorded.
        std::size_t k = 0;
        for (std::size_t r = 0; r < requests; ++r) {
          try {
            handles[r].get();
            lat.push_back(std::chrono::duration<double, std::micro>(
                              done_at[c][k++] - admitted_at[r])
                              .count());
          } catch (const tf::OverloadError&) {
            shed_count.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : pool) t.join();
    executor.wait_for_all();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - wall_begin)
          .count();

  std::vector<double> all_us;
  for (auto& lat : latencies_us) {
    all_us.insert(all_us.end(), lat.begin(), lat.end());
  }
  std::sort(all_us.begin(), all_us.end());
  const double p50 = percentile(all_us, 0.50);
  const double p99 = percentile(all_us, 0.99);
  const double p999 = percentile(all_us, 0.999);
  const double rss = peak_rss_mib();
  const auto completed = static_cast<long>(all_us.size());
  const double oversub =
      static_cast<double>(clients) / static_cast<double>(workers);

  std::printf("service ingest: mode=%s clients=%zu requests=%zu workers=%zu "
              "(%.1fx oversubscription) bound=%zu work=%lldus\n",
              mode.c_str(), clients, requests, workers, oversub, bound,
              static_cast<long long>(work_us.count()));
  std::printf("  completed %ld, shed %ld (%.1f%%), wall %.1f ms\n", completed,
              shed_count.load(),
              100.0 * static_cast<double>(shed_count.load()) /
                  static_cast<double>(clients * requests),
              wall_ms);
  std::printf("  accepted-request latency: p50 %.0f us, p99 %.0f us, "
              "p999 %.0f us; peak RSS %.1f MiB\n",
              p50, p99, p999, rss);

  std::printf("CSV,service_ingest,mode,clients,requests,workers,bound,"
              "completed,shed,p50_us,p99_us,p999_us,wall_ms,peak_rss_mib\n");
  std::printf("CSV,service_ingest,%s,%zu,%zu,%zu,%zu,%ld,%ld,"
              "%.1f,%.1f,%.1f,%.1f,%.1f\n",
              mode.c_str(), clients, requests, workers, bound, completed,
              shed_count.load(), p50, p99, p999, wall_ms, rss);
  return 0;
}
