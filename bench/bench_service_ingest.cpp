// bench_service_ingest.cpp - multi-client service-ingest latency under
// oversubscription, measured end-to-end through the tf::Server service layer
// (ISSUE 9, DESIGN.md §13; admission machinery from ISSUE 7, §11).
//
// N client threads (default 8, a 4x oversubscription of the default 2
// workers) each connect() to one tf::Server and stream small request
// pipelines (ingest -> validate -> process module -> respond) through it.
// Three admission modes, one per process so the peak-RSS high-water mark
// (VmHWM) isolates each policy's queue buildup:
//
//   unbounded  no admission control: every request is accepted immediately
//              and queues inside the executor.  Accepted-request latency
//              grows with queue depth and the backlog dominates peak RSS.
//   bounded    max_pending_per_client bounds each client's backlog; the
//              submission edge absorbs the wait (client window = bound), so
//              accepted requests see a short bounded queue.
//   shed       a shed watermark caps the global backlog; excess accepted
//              requests complete immediately as Outcome::shed and the
//              survivors keep bounded latency.
//
// Latency is the server's own accounting - admission (run() returning) to
// the respond stage - aggregated in the MetricsRegistry histogram across all
// clients, so the bench exercises exactly the observability path /healthz
// exposes.  The service-level claim: *accepted* requests get predictable
// latency, with overload pushed to the edge or converted to explicit sheds,
// never into an unbounded invisible queue.
//
// Output: human-readable summary plus a machine-readable CSV line
//   CSV,service_ingest,<header...> / CSV,service_ingest,<row...>
// consumed by tools/run_scheduler_bench.py into BENCH_service.json.
//
// Knobs: REPRO_SERVICE_MODE      unbounded|bounded|shed (default bounded)
//        REPRO_SERVICE_CLIENTS   client threads (default 8)
//        REPRO_SERVICE_REQUESTS  requests per client (default 1500)
//        REPRO_SERVICE_WORKERS   server workers (default 2)
//        REPRO_SERVICE_BOUND     per-client bound / watermark unit (default 4)
//        REPRO_SERVICE_WORK_US   per-request busy work in us (default 40)
#include "service/server.hpp"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "support/env.hpp"

namespace {

double peak_rss_mib() {
  // Prefer /proc/self/status VmHWM: unlike ru_maxrss it resets on execve,
  // so a fork()ing launcher (the python harness) doesn't bequeath its own
  // resident pages to our high-water mark.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      long kib = 0;
      if (std::sscanf(line, "VmHWM: %ld kB", &kib) == 1) {
        std::fclose(f);
        return static_cast<double>(kib) / 1024.0;
      }
    }
    std::fclose(f);
  }
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB -> MiB on Linux
}

}  // namespace

int main() {
  const std::string mode = [] {
    const char* m = std::getenv("REPRO_SERVICE_MODE");
    return std::string(m != nullptr ? m : "bounded");
  }();
  const auto clients =
      static_cast<std::size_t>(support::env_int("REPRO_SERVICE_CLIENTS", 8));
  const auto requests =
      static_cast<std::size_t>(support::env_int("REPRO_SERVICE_REQUESTS", 1500));
  const auto workers =
      static_cast<std::size_t>(support::env_int("REPRO_SERVICE_WORKERS", 2));
  const auto bound =
      static_cast<std::size_t>(support::env_int("REPRO_SERVICE_BOUND", 4));
  const std::chrono::microseconds work_us(
      support::env_int("REPRO_SERVICE_WORK_US", 40));

  tf::ServerOptions opts;  // "unbounded": all knobs zero = no admission
  opts.num_workers = workers;
  if (mode == "bounded") {
    opts.executor.max_pending_per_client = bound;
    // The window matches the bound, so the submission edge self-throttles at
    // exactly the per-client backlog the executor would enforce.
    opts.client_window = bound;
  } else if (mode == "shed" || mode == "unbounded") {
    // Unthrottled submission: the whole stream may be in flight at once, so
    // the backlog (and in shed mode the watermark) is actually exercised.
    opts.client_window = requests;
    if (mode == "shed") {
      // Every slot is a distinct taskflow, so runs are only sheddable while
      // they wait in the admission ring: cap concurrent starts so the
      // backlog queues there instead of inside the scheduler.
      opts.executor.max_concurrent_topologies = workers * 4;
      opts.executor.shed_watermark = clients * bound;
    }
  } else {
    std::fprintf(stderr, "unknown REPRO_SERVICE_MODE '%s'\n", mode.c_str());
    return 1;
  }

  using Clock = std::chrono::steady_clock;
  const auto wall_begin = Clock::now();
  tf::Server server(opts);
  {
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        auto& client = server.connect();
        for (std::size_t r = 0; r < requests; ++r) {
          tf::Request req;
          req.id = c * requests + r;
          req.work = work_us;
          client.submit(req);
        }
        client.drain();
      });
    }
    for (auto& t : pool) t.join();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - wall_begin)
          .count();

  const tf::MetricsSnapshot snap = server.metrics();
  const double p50 = snap.p50_us;
  const double p99 = snap.p99_us;
  const double p999 = snap.p999_us;
  const double rss = peak_rss_mib();
  const auto completed = static_cast<long>(snap.completed());
  const auto shed_count = static_cast<long>(snap.outcome(tf::Outcome::shed));
  const double oversub =
      static_cast<double>(clients) / static_cast<double>(workers);

  std::printf("service ingest: mode=%s clients=%zu requests=%zu workers=%zu "
              "(%.1fx oversubscription) bound=%zu work=%lldus\n",
              mode.c_str(), clients, requests, workers, oversub, bound,
              static_cast<long long>(work_us.count()));
  std::printf("  completed %ld, shed %ld (%.1f%%), wall %.1f ms, "
              "accounted %llu/%llu\n",
              completed, shed_count,
              100.0 * static_cast<double>(shed_count) /
                  static_cast<double>(clients * requests),
              wall_ms,
              static_cast<unsigned long long>(snap.accounted()),
              static_cast<unsigned long long>(snap.submitted));
  std::printf("  accepted-request latency: p50 %.0f us, p99 %.0f us, "
              "p999 %.0f us; peak RSS %.1f MiB\n",
              p50, p99, p999, rss);
  if (snap.accounted() != snap.submitted) {
    std::fprintf(stderr, "LOST RESPONSES: accounted %llu != submitted %llu\n",
                 static_cast<unsigned long long>(snap.accounted()),
                 static_cast<unsigned long long>(snap.submitted));
    return 1;
  }

  std::printf("CSV,service_ingest,mode,clients,requests,workers,bound,"
              "completed,shed,p50_us,p99_us,p999_us,wall_ms,peak_rss_mib\n");
  std::printf("CSV,service_ingest,%s,%zu,%zu,%zu,%zu,%ld,%ld,"
              "%.1f,%.1f,%.1f,%.1f,%.1f\n",
              mode.c_str(), clients, requests, workers, bound, completed,
              shed_count, p50, p99, p999, wall_ms, rss);
  return 0;
}
