// bench_util.hpp - shared plumbing of the figure/table reproduction
// harnesses: scaled problem sizes, thread sweep lists, timing repeats, and
// checksum validation across dialects.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "support/chrono.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

namespace bench {

/// Threads used for the fixed-thread sections (the paper uses 8 for Fig. 7
/// and 16 for Figs. 9/12; both are capped by REPRO_MAX_THREADS).
inline unsigned fixed_threads(unsigned paper_value) {
  return std::min(paper_value, support::repro_max_threads());
}

/// The {1, 2, 4, ...} sweep list up to REPRO_MAX_THREADS.
inline std::vector<unsigned> thread_sweep() {
  std::vector<unsigned> out;
  for (unsigned t = 1; t <= support::repro_max_threads(); t *= 2) out.push_back(t);
  return out;
}

/// Minimum-of-N timing (N = REPRO_REPEATS).
template <typename F>
double time_ms(F&& fn) {
  return support::time_min_ms(std::forward<F>(fn), support::repro_repeats());
}

/// Validate that a dialect reproduced the reference checksum.
inline bool check(double reference, double got, const std::string& what) {
  const double tol = 1e-6 * std::max(1.0, std::abs(reference));
  if (std::abs(reference - got) > tol) {
    std::cerr << "CHECKSUM MISMATCH in " << what << ": expected " << reference
              << ", got " << got << "\n";
    return false;
  }
  return true;
}

/// Scale a paper problem size by REPRO_SCALE.
inline std::size_t scaled(std::size_t paper_size) {
  return static_cast<std::size_t>(static_cast<double>(paper_size) * support::repro_scale());
}

}  // namespace bench
