// bench_fig10_scalability - reproduces paper Fig. 10:
//   (left)  full-timing runtime vs thread count on million-gate-class
//           designs, v1 (levelized OpenMP) vs v2 (Cpp-Taskflow), on
//           netcard-scale and leon3mp-scale synthetic circuits;
//   (right) CPU utilization over time of the v2 run, recorded by the
//           executor observer and bucketed into a time series.
//
// Gate counts scale with REPRO_TIMER_SCALE_BIG (default 0.02 -> ~28K/24K
// gates, sized for a small host; set 1.0 to reproduce the paper's 1.4M/1.2M).
#include "bench_util.hpp"
#include "taskflow/observer.hpp"
#include "timer/timers.hpp"

namespace {

void run_design(std::ostream& os, const char* name, const ot::CircuitSpec& spec) {
  const auto lib = ot::CellLibrary::make_synthetic();
  auto nl = ot::make_circuit(lib, spec);

  support::banner(os, std::string("Fig. 10 (left): ") + name + " full-timing runtime, " +
                          support::fmt_count(static_cast<long long>(nl.num_gates())) +
                          " gates / " +
                          support::fmt_count(static_cast<long long>(2 * nl.num_pins())) +
                          " tasks per update");

  support::Table table({"threads", "v1_openmp_ms", "v2_taskflow_ms"});
  for (unsigned t : bench::thread_sweep()) {
    ot::TimerOptions opt;
    opt.num_threads = t;
    opt.clock_period = 2.0;
    opt.corners = static_cast<int>(support::env_int("REPRO_TIMER_CORNERS", 32));

    double v1_ms = 0.0, v2_ms = 0.0;
    {
      ot::TimerV1 v1(nl, opt);
      v1_ms = bench::time_ms([&] { v1.full_update(); });
    }
    {
      ot::TimerV2 v2(nl, opt);
      v2_ms = bench::time_ms([&] { v2.full_update(); });
    }
    table.add_row({std::to_string(t), support::fmt(v1_ms), support::fmt(v2_ms)});
  }
  table.print(os);
  table.print_csv(os, std::string("fig10_") + name);
}

void utilization_profile(std::ostream& os, const ot::CircuitSpec& spec) {
  const auto lib = ot::CellLibrary::make_synthetic();
  auto nl = ot::make_circuit(lib, spec);

  support::banner(os, "Fig. 10 (right): CPU utilization profile (leon3mp, v2)");
  support::Table table({"threads", "bucket", "utilization_pct"});
  for (unsigned t : bench::thread_sweep()) {
    ot::TimerOptions opt;
    opt.num_threads = t;
    opt.corners = static_cast<int>(support::env_int("REPRO_TIMER_CORNERS", 32));
    ot::TimerV2 v2(nl, opt);
    auto obs = std::make_shared<tf::RecordingObserver>();
    v2.set_observer(obs);
    v2.full_update();

    const auto util = obs->utilization(std::chrono::milliseconds(20));
    for (std::size_t b = 0; b < util.size(); ++b) {
      table.add_row({std::to_string(t), std::to_string(b), support::fmt(util[b], 1)});
    }
  }
  table.print(os);
  table.print_csv(os, "fig10_utilization");
  os << "utilization is summed across workers (max = 100% x threads), bucketed\n"
        "at 20 ms, as in the paper's per-second percentage profile.\n";
}

}  // namespace

int main() {
  std::ostream& os = std::cout;
  const double scale = support::env_double("REPRO_TIMER_SCALE_BIG", 0.01);

  run_design(os, "netcard", ot::netcard_spec(scale));
  run_design(os, "leon3mp", ot::leon3mp_spec(scale));
  utilization_profile(os, ot::leon3mp_spec(scale));

  os << "\nPaper shape: v2 is ~3-4% slower than v1 at one CPU (the task-graph\n"
        "overhead, negligible) and consistently faster at every other CPU count.\n"
        "On this host (" << std::thread::hardware_concurrency()
     << " hardware thread(s)) multi-thread points time-slice; the 1-thread\n"
        "overhead comparison is the portable part of the shape.\n";
  return 0;
}
