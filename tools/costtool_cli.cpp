// costtool_cli - the SLOCCount/Lizard/COCOMO stand-in as a command-line
// tool: per-file LOC / cyclomatic complexity / token counts plus a COCOMO
// organic-mode project estimate.
//
//   build/tools/costtool_cli <file.cpp> [more files...]
#include <iostream>

#include "costtool/analyze.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: costtool_cli <file> [files...]\n";
    return 2;
  }
  std::vector<std::string> paths(argv + 1, argv + argc);

  support::Table table({"file", "LOC", "comments", "tokens", "functions", "CC", "MCC"});
  try {
    for (const auto& path : paths) {
      const auto r = ct::analyze_file(path);
      table.add_row({path, std::to_string(r.loc.code_lines),
                     std::to_string(r.loc.comment_lines), std::to_string(r.loc.tokens),
                     std::to_string(r.cc.functions.size()),
                     std::to_string(r.cc.file_cyclomatic),
                     std::to_string(r.cc.max_cyclomatic)});
    }
    table.print(std::cout);

    const auto project = ct::analyze_files(paths);
    std::cout << "\nCOCOMO (organic): " << support::fmt(project.cocomo.effort_person_years)
              << " person-years, " << support::fmt(project.cocomo.developers)
              << " developers, $"
              << support::fmt_count(static_cast<long long>(project.cocomo.cost_usd))
              << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
