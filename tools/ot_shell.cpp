// ot_shell - the interactive mini-OpenTimer shell (see ot::Shell for the
// command set).  Reads commands from stdin or from files given as args.
//
//   build/tools/ot_shell            # interactive
//   build/tools/ot_shell script.ot  # batch
#include <fstream>
#include <iostream>

#include "timer/shell.hpp"

int main(int argc, char** argv) {
  ot::Shell shell;
  if (argc > 1) {
    int failures = 0;
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i]);
      if (!in) {
        std::cerr << "cannot open " << argv[i] << "\n";
        return 1;
      }
      failures += shell.run(in, std::cout, std::cerr);
    }
    return failures == 0 ? 0 : 1;
  }
  std::cout << "mini-OpenTimer shell (type 'help')\n";
  return shell.run(std::cin, std::cout, std::cerr) == 0 ? 0 : 1;
}
