#!/usr/bin/env python3
"""run_scheduler_bench.py - scheduler performance harness.

Builds and runs the scheduler-sensitive benchmarks (micro construction,
executor ablation, scheduler hot path, Fig. 7 kernels, Fig. 10 timer sweep),
collects everything into one JSON document, and - when given a baseline
produced by an earlier run - attaches per-benchmark percentage deltas.
The committed BENCH_scheduler.json at the repository root is the output of
this script with the seed revision as baseline; BENCH_algorithms.json is the
algorithm-pattern record (partitioners vs the legacy per-chunk-node
strategy), BENCH_construction.json the graph-construction record
(micro construction + the Fig. 8 stress variant), and BENCH_service.json
the service-layer record (per-admission-mode accepted-latency percentiles +
peak RSS through tf::Server, plus the scaled clients x request-count sweep
of the bounded mode), all written by the same record run and gated by the
same --compare.

Typical use:

    # record the current tree's numbers against a saved baseline
    python3 tools/run_scheduler_bench.py --baseline BENCH_seed.json \
        --output BENCH_scheduler.json

    # regression gate: fail when a hot-path bench regresses > 10% vs the
    # committed record
    python3 tools/run_scheduler_bench.py --compare BENCH_scheduler.json

    # locality A/B: interleave the flat steal sweep against the locality
    # layer (pinned + adaptive victims + slab-affine) on the contended
    # benches and record the medians into BENCH_scheduler.json
    python3 tools/run_scheduler_bench.py --locality

    # gate the taskflow test suite under ThreadSanitizer
    python3 tools/run_scheduler_bench.py --tsan

    # gate it under AddressSanitizer + UBSan (leaks in the error-drain paths)
    python3 tools/run_scheduler_bench.py --asan

    # peak-RSS probe of the construction benches plus the service-ingest
    # bench per admission mode (massif-friendly: prints the valgrind
    # command for a full allocation profile)
    python3 tools/run_scheduler_bench.py --peak-rss

Benchmarks honor REPRO_MAX_THREADS / REPRO_TIMER_CORNERS / REPRO_SCALE from
the environment (see EXPERIMENTS.md); pin them for stable comparisons.
"""

import argparse
import json
import os
import platform
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

GOOGLE_BENCHES = [
    "bench_micro_construction",
    "bench_ablation_executor",
    "bench_scheduler_hotpath",
]

# The algorithm-pattern benches (partitioners vs the legacy per-chunk-node
# strategy vs a std::thread baseline) record into their own document,
# BENCH_algorithms.json, gated by --compare alongside the scheduler record.
ALGO_BENCHES = [
    "bench_algorithms",
]

# The graph-construction benches (arena/CSR layout, DESIGN.md §10): emplace
# and precede throughput at up to 1M nodes plus the scaled-up Fig. 8 timing
# stress.  They record into BENCH_construction.json and are gated by
# --compare the same way.  bench_micro_construction also feeds the scheduler
# record; record/compare runs execute each binary once and reuse the result.
CONSTRUCTION_BENCHES = [
    "bench_micro_construction",
    "bench_fig8_stress",
]

# Figure harnesses emit machine-readable `CSV,<table>,...` lines next to the
# human-readable tables.
FIGURE_BENCHES = [
    "bench_fig7_wavefront",
    "bench_fig7_traversal",
    "bench_fig10_scalability",
]

# The service-ingest bench (admission control, DESIGN.md §11) runs once per
# admission mode in its own process so the peak-RSS high-water mark isolates
# each policy's queue buildup.  It records into BENCH_service.json; --compare
# gates the bounded and shed accepted-latency p99 (the unbounded mode is the
# overload baseline - its p99 IS the backlog, reported informationally).
SERVICE_BENCH = "bench_service_ingest"
SERVICE_MODES = ["unbounded", "bounded", "shed"]
SERVICE_GATED_MODES = ["bounded", "shed"]
# Per-mode repeats; record and compare both keep the median-p99 row.  The
# shed mode's survivor population is a few hundred requests, so a single
# run's p99 is one noisy order statistic - the median of three keeps the
# +-25% gate meaningful on a small machine.
SERVICE_REPEATS = 3

# The scaled SERVICE lane: a clients x request-count sweep of the bounded
# mode (the production configuration - backpressure at the edge), recorded
# informationally next to the gated per-mode rows so the record shows how
# accepted-latency percentiles and peak RSS scale with offered load, not
# just one operating point.  Kept small: each cell is a full server process.
SERVICE_SWEEP_CLIENTS = [4, 8, 16]
SERVICE_SWEEP_REQUESTS = [500, 1500]


def run(cmd, **kwargs):
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, check=True, **kwargs)


def build(build_dir, targets):
    run(["cmake", "-B", build_dir, "-S", REPO_ROOT],
        stdout=subprocess.DEVNULL)
    run(["cmake", "--build", build_dir, "-j", "--target"] + targets)


# One run per binary per invocation: bench_micro_construction feeds both the
# scheduler and the construction records, and --compare gates it twice.
_google_bench_cache = {}


def run_google_bench(build_dir, name):
    """Run one google-benchmark binary; returns {bench_name: record}."""
    if (build_dir, name) in _google_bench_cache:
        return _google_bench_cache[(build_dir, name)]
    exe = os.path.join(build_dir, "bench", name)
    if not os.path.exists(exe):
        print(f"skipping {name}: {exe} not built", file=sys.stderr)
        return {}
    out_json = os.path.join(build_dir, name + ".json")
    run([exe, "--benchmark_format=json",
         "--benchmark_out=" + out_json, "--benchmark_out_format=json"],
        stdout=subprocess.DEVNULL)
    with open(out_json) as f:
        doc = json.load(f)
    results = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
        skip = {"name", "run_name", "run_type", "repetitions",
                "repetition_index", "threads", "iterations", "real_time",
                "cpu_time", "time_unit", "family_index",
                "per_family_instance_index"}
        counters = {k: v for k, v in b.items()
                    if k not in skip and isinstance(v, (int, float))}
        results[b["name"]] = {
            "real_time_ms": b["real_time"] * scale,
            "cpu_time_ms": b["cpu_time"] * scale,
            "iterations": b["iterations"],
            "counters": counters,
        }
    _google_bench_cache[(build_dir, name)] = results
    return results


def run_figure_bench(build_dir, name):
    """Run one figure harness; returns {table_name: [row dicts]}."""
    exe = os.path.join(build_dir, "bench", name)
    proc = run([exe], capture_output=True, text=True)
    tables = {}
    headers = {}
    for line in proc.stdout.splitlines():
        if not line.startswith("CSV,"):
            continue
        fields = line.split(",")[1:]
        table, cells = fields[0], fields[1:]
        if table not in headers:
            headers[table] = cells  # first CSV line of a table is its header
            tables[table] = []
            continue
        row = {}
        for key, cell in zip(headers[table], cells):
            try:
                row[key] = float(cell)
            except ValueError:
                row[key] = cell
        tables[table].append(row)
    return tables


def _run_service_once(exe, extra_env):
    """Run the service-ingest binary once with `extra_env` on top of the
    caller's environment; returns the parsed CSV row (the bench emits one
    header + one data line per process)."""
    env = dict(os.environ, **extra_env)
    knobs = " ".join(f"{k}={v}" for k, v in sorted(extra_env.items()))
    print("+", exe, f"({knobs})", flush=True)
    proc = subprocess.run([exe], check=True, capture_output=True,
                          text=True, env=env)
    header, parsed = None, None
    for line in proc.stdout.splitlines():
        if not line.startswith("CSV,service_ingest,"):
            continue
        cells = line.split(",")[2:]
        if header is None:
            header = cells
            continue
        parsed = {}
        for key, cell in zip(header, cells):
            try:
                parsed[key] = float(cell)
            except ValueError:
                parsed[key] = cell
    if parsed is None:
        sys.exit(f"error: {exe} emitted no CSV,service_ingest data line")
    return parsed


def run_service_bench(build_dir):
    """Run the service-ingest bench SERVICE_REPEATS times per admission
    mode (separate processes: ru_maxrss is a per-process high-water mark)
    and keep each mode's median-p99 row; returns {mode: row dict} from the
    CSV lines."""
    exe = os.path.join(build_dir, "bench", SERVICE_BENCH)
    if not os.path.exists(exe):
        print(f"skipping {SERVICE_BENCH}: {exe} not built", file=sys.stderr)
        return {}
    modes = {}
    for mode in SERVICE_MODES:
        rows = [_run_service_once(exe, {"REPRO_SERVICE_MODE": mode})
                for _ in range(SERVICE_REPEATS)]
        rows.sort(key=lambda r: r.get("p99_us", 0.0))
        row = rows[len(rows) // 2]
        modes[row.pop("mode", mode)] = row
    return modes


def run_service_sweep(build_dir):
    """The scaled SERVICE lane: sweep the bounded mode over the clients x
    request-count grid; returns {"c<N>xr<M>": row dict}.  Recorded into the
    service document informationally (the per-mode rows are the gate)."""
    exe = os.path.join(build_dir, "bench", SERVICE_BENCH)
    if not os.path.exists(exe):
        print(f"skipping {SERVICE_BENCH} sweep: {exe} not built",
              file=sys.stderr)
        return {}
    cells = {}
    for clients in SERVICE_SWEEP_CLIENTS:
        for requests in SERVICE_SWEEP_REQUESTS:
            row = _run_service_once(exe, {
                "REPRO_SERVICE_MODE": "bounded",
                "REPRO_SERVICE_CLIENTS": str(clients),
                "REPRO_SERVICE_REQUESTS": str(requests),
            })
            row.pop("mode", None)
            cells[f"c{clients}xr{requests}"] = row
    return cells


def compare_service(record_path, build_dir, threshold):
    """Re-run the service bench and gate accepted-latency p99 of the gated
    modes against the committed record; returns (compared, regressions)."""
    try:
        with open(record_path) as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read record {record_path}: {e}")
    recorded = record.get("service_ingest", {})
    if not recorded:
        sys.exit(f"error: {record_path} has no service_ingest section")
    current = run_service_bench(build_dir)

    regressions, compared = [], 0
    print(f"\ncomparing against {record_path} "
          f"(label: {record.get('label', '?')}, "
          f"threshold: +{threshold:.0f}% on accepted p99)")
    for mode in SERVICE_MODES:
        if mode not in current or mode not in recorded:
            continue
        delta = pct(recorded[mode].get("p99_us"), current[mode].get("p99_us"))
        if mode not in SERVICE_GATED_MODES:
            print(f"  service_ingest/{mode:<9}  p99 "
                  f"{recorded[mode]['p99_us']:10.1f} us"
                  f" -> {current[mode]['p99_us']:10.1f} us"
                  f"  {delta:+6.1f}%  (informational)")
            continue
        compared += 1
        verdict = "ok"
        if delta is not None and delta > threshold:
            verdict = "REGRESSION"
            regressions.append((f"service_ingest/{mode}/p99_us", delta))
        print(f"  service_ingest/{mode:<9}  p99 "
              f"{recorded[mode]['p99_us']:10.1f} us"
              f" -> {current[mode]['p99_us']:10.1f} us"
              f"  {delta:+6.1f}%  {verdict}")
    if compared == 0:
        sys.exit(f"error: no service mode overlaps with {record_path}")
    return compared, regressions


def pct(before, after):
    if before is None or before == 0:
        return None
    return round(100.0 * (after - before) / before, 1)


# The locality A/B lane (DESIGN.md §14): the mode-parameterized contended
# benches carry both arms in one binary - /0/... runs the flat round-robin
# steal sweep, /1/... the full locality layer (pinned workers + adaptive
# victim selection + slab-affine placement).  The lane interleaves the two
# arms via --benchmark_filter across LOCALITY_AB_ROUNDS rounds (flat,
# locality, flat, locality, ...) so slow drift on a shared host hits both
# arms equally, then keeps each benchmark's per-arm median.  Negative
# locality_vs_flat_pct = the locality layer is faster.
LOCALITY_AB_BINARIES = {
    "bench_scheduler_hotpath": [
        "BM_ContendedFanOut",
        "BM_ContendedChains",
        "BM_BurstyChain",
    ],
    "bench_micro_steal": ["BM_StealOneProducer", "BM_StealAllToAll"],
}
LOCALITY_AB_ROUNDS = 5


def _run_filtered_bench(exe, pattern, out_json):
    """Run one google-benchmark binary under --benchmark_filter; returns
    {bench_name: real_time_ms}."""
    run([exe, f"--benchmark_filter={pattern}",
         "--benchmark_format=json",
         "--benchmark_out=" + out_json, "--benchmark_out_format=json"],
        stdout=subprocess.DEVNULL)
    with open(out_json) as f:
        doc = json.load(f)
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
    return {b["name"]: b["real_time"] * scale[b.get("time_unit", "ns")]
            for b in doc.get("benchmarks", [])
            if b.get("run_type") != "aggregate"}


def run_locality_ab(build_dir, rounds=LOCALITY_AB_ROUNDS):
    """Interleaved same-binary A/B of the locality layer on the contended
    benches; returns {bench_key: {flat_ms, locality_ms, locality_vs_flat_pct,
    rounds}}."""
    samples = {}
    for binary, families in sorted(LOCALITY_AB_BINARIES.items()):
        exe = os.path.join(build_dir, "bench", binary)
        if not os.path.exists(exe):
            print(f"skipping {binary}: {exe} not built", file=sys.stderr)
            continue
        fam = "|".join(families)
        out_json = os.path.join(build_dir, binary + "_locality_ab.json")
        for r in range(rounds):
            for mode, arm in ((0, "flat"), (1, "locality")):
                res = _run_filtered_bench(exe, f"^({fam})/{mode}/", out_json)
                for name, ms in res.items():
                    key = name.replace(f"/{mode}/", "/", 1)
                    samples.setdefault(key, {"flat": [], "locality": []})
                    samples[key][arm].append(ms)

    table = {}
    for key, arms in sorted(samples.items()):
        if not arms["flat"] or not arms["locality"]:
            continue
        flat = sorted(arms["flat"])[len(arms["flat"]) // 2]
        local = sorted(arms["locality"])[len(arms["locality"]) // 2]
        table[key] = {
            "flat_ms": flat,
            "locality_ms": local,
            "locality_vs_flat_pct": pct(flat, local),
            "rounds": rounds,
        }
    width = max((len(k) for k in table), default=0)
    for key, row in sorted(table.items()):
        print(f"  {key:<{width}}  flat {row['flat_ms']:10.4f} ms"
              f" vs locality {row['locality_ms']:10.4f} ms"
              f"  {row['locality_vs_flat_pct']:+6.1f}%")
    return table


def run_locality(args):
    """The --locality mode: run the interleaved A/B and fold the medians
    into the scheduler record (key `locality_ab`) without disturbing the
    rest of the document."""
    binaries = sorted(LOCALITY_AB_BINARIES)
    if not args.skip_build:
        build(args.build_dir, binaries)
    print(f"\nlocality A/B ({LOCALITY_AB_ROUNDS} interleaved rounds, "
          "medians; negative = locality layer faster):")
    table = run_locality_ab(args.build_dir)
    if not table:
        sys.exit("error: no locality A/B benchmark produced samples")
    doc = {}
    if os.path.exists(args.output):
        with open(args.output) as f:
            doc = json.load(f)
    doc["locality_ab"] = table
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print("wrote", args.output)


# The iterative-convergence pair of bench_scheduler_hotpath (in-graph
# condition loop vs run_until resubmission, same per-lap pipeline): the
# record carries a derived summary so the per-iteration advantage of
# in-graph control flow is a first-class number, not something readers
# reconstruct from two rows.  The two variants differ by only a few
# percent, well inside single-shot noise, so the summary comes from a
# dedicated repetitions pass (median of ITERATIVE_REPETITIONS) rather
# than the one-sample google_benchmarks rows.
ITERATIVE_PAIRS = [
    ("BM_IterativeConditionLoop/1024/1/real_time",
     "BM_IterativeRunUntil/1024/1/real_time"),
    ("BM_IterativeConditionLoop/1024/4/real_time",
     "BM_IterativeRunUntil/1024/4/real_time"),
]
ITERATIVE_REPETITIONS = 15


def attach_iterative_convergence(doc, build_dir):
    """Derive condition-loop vs run_until per-iteration deltas into the
    scheduler record (negative delta = the condition loop is faster)."""
    exe = os.path.join(build_dir, "bench", "bench_scheduler_hotpath")
    if not os.path.exists(exe):
        return
    out_json = os.path.join(build_dir, "bench_scheduler_iterative.json")
    run([exe, "--benchmark_filter=BM_Iterative",
         f"--benchmark_repetitions={ITERATIVE_REPETITIONS}",
         "--benchmark_report_aggregates_only=true",
         "--benchmark_format=json",
         "--benchmark_out=" + out_json, "--benchmark_out_format=json"],
        stdout=subprocess.DEVNULL)
    with open(out_json) as f:
        medians = {b["run_name"]: b["real_time"]
                   for b in json.load(f).get("benchmarks", [])
                   if b.get("aggregate_name") == "median"}
    summary = {}
    for cond_name, until_name in ITERATIVE_PAIRS:
        if cond_name not in medians or until_name not in medians:
            continue
        workers = cond_name.split("/")[2]
        cond_ms = medians[cond_name]
        until_ms = medians[until_name]
        summary[f"workers_{workers}"] = {
            "condition_loop_ms": cond_ms,
            "run_until_ms": until_ms,
            "condition_vs_run_until_pct": pct(until_ms, cond_ms),
            "repetitions": ITERATIVE_REPETITIONS,
        }
    if not summary:
        return
    doc["iterative_convergence"] = summary
    for key, row in sorted(summary.items()):
        print(f"  iterative convergence ({key}): condition loop "
              f"{row['condition_loop_ms']:.4f} ms vs run_until "
              f"{row['run_until_ms']:.4f} ms "
              f"({row['condition_vs_run_until_pct']:+.1f}%)")


def attach_deltas(doc, baseline):
    """Per-benchmark %-change vs baseline (negative = faster now)."""
    deltas = {}
    base_gb = baseline.get("google_benchmarks", {})
    for name, rec in doc["google_benchmarks"].items():
        if name in base_gb:
            deltas[name] = pct(base_gb[name]["real_time_ms"],
                               rec["real_time_ms"])
    base_fig = baseline.get("figures", {})
    for table, rows in doc["figures"].items():
        for row in rows:
            key_cols = [k for k in row if not k.endswith("_ms")]
            match = next(
                (r for r in base_fig.get(table, [])
                 if all(r.get(k) == row[k] for k in key_cols)), None)
            if match is None:
                continue
            for col in row:
                if col.endswith("_ms"):
                    d = pct(match.get(col), row[col])
                    if d is not None:
                        deltas[f"{table}/{'/'.join(str(row[k]) for k in key_cols)}/{col}"] = d
    doc["baseline_label"] = baseline.get("label", "baseline")
    doc["delta_pct_vs_baseline"] = deltas


# Every taskflow/support gtest binary the sanitizer gates build and run,
# including the error-model suites (test_errors/test_cancel/test_diagnostics),
# the fault-injection harness (test_fault, ctest label "fault"), the
# multi-client executor suite (test_executor_api, label "executor_api"), the
# resilience-policy suite (test_resilience, label "resilience"), the
# graph-memory suite (test_arena, label "arena"), the in-graph
# control-flow suites (test_condition/test_composition, label
# "control_flow"), the shutdown-under-storm races (test_shutdown_storm,
# label "admission"), and the service layer (test_server, label
# "service" - shutdown/drain races with chaos on are exactly what TSan
# should see).  test_alloc is deliberately
# absent: its operator-new interposer cannot coexist with the sanitizer
# runtimes, so CMake only builds it in plain trees.
SANITIZER_TEST_TARGETS = [
    "test_basics", "test_wsq", "test_subflow", "test_algorithms",
    "test_partitioner", "test_executor", "test_dot", "test_dispatch",
    "test_observer", "test_framework", "test_executor_matrix", "test_batch",
    "test_errors", "test_cancel", "test_diagnostics", "test_fault",
    "test_executor_api", "test_function", "test_resilience", "test_arena",
    "test_admission", "test_condition", "test_composition",
    "test_shutdown_storm", "test_server", "test_locality",
    "test_cpu_topology",
]


def run_sanitized(build_dir, cmake_flag, label):
    """Configure a sanitizer build tree and run the taskflow suite under it."""
    run(["cmake", "-B", build_dir, "-S", REPO_ROOT, cmake_flag],
        stdout=subprocess.DEVNULL)
    run(["cmake", "--build", build_dir, "-j", "--target"]
        + SANITIZER_TEST_TARGETS)
    run(["ctest", "--test-dir", build_dir, "--output-on-failure", "-j2",
         "-L", "taskflow|support|service|locality"])
    print(f"{label}: taskflow + support + service suites clean")


def run_peak_rss(build_dir, benches):
    """Peak-RSS probe: fork each binary, wait with os.wait4 and report the
    child's ru_maxrss - the same high-water mark massif tracks, without
    requiring valgrind in the image.  `benches` entries are either a bare
    target name or (label, target, env-overrides) - the service bench runs
    once per admission mode so each policy's queue buildup is isolated in
    its own process.  For a full allocation profile run the printed massif
    command by hand."""
    rows, first_exe = [], None
    for bench in benches:
        label, name, extra_env = \
            bench if isinstance(bench, tuple) else (bench, bench, {})
        exe = os.path.join(build_dir, "bench", name)
        if not os.path.exists(exe):
            print(f"skipping {label}: {exe} not built", file=sys.stderr)
            continue
        first_exe = first_exe or exe
        print("+", exe, "(peak-RSS probe)", flush=True)
        pid = os.fork()
        if pid == 0:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, 1)
            os.execve(exe, [exe], dict(os.environ, **extra_env))
        _, status, rusage = os.wait4(pid, 0)
        if not (os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0):
            sys.exit(f"error: {label} exited abnormally (status {status})")
        rows.append((label, rusage.ru_maxrss))  # KiB on Linux

    if not rows:
        sys.exit("error: no peak-RSS bench binary found")
    width = max(len(n) for n, _ in rows)
    print("\npeak RSS (ru_maxrss):")
    for name, kib in rows:
        print(f"  {name:<{width}}  {kib / 1024.0:10.1f} MiB")
    print("\nfor a full heap profile: valgrind --tool=massif "
          f"{first_exe} --benchmark_filter=<name>")
    return {name: kib for name, kib in rows}


def run_tsan(tsan_dir):
    run_sanitized(tsan_dir, "-DREPRO_TSAN=ON", "TSan")


def run_asan(asan_dir):
    run_sanitized(asan_dir, "-DREPRO_ASAN=ON", "ASan/UBSan")


def compare_record(record_path, benches, build_dir, threshold):
    """Re-run `benches` and compare against one committed record; returns
    (compared, regressions) where regressions is a list of (name, delta)."""
    try:
        with open(record_path) as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read record {record_path}: {e}")
    recorded = record.get("google_benchmarks", {})
    if not recorded:
        sys.exit(f"error: {record_path} has no google_benchmarks section")

    current = {}
    for name in benches:
        current.update(run_google_bench(build_dir, name))

    regressions, compared = [], 0
    width = max((len(n) for n in current), default=0)
    print(f"\ncomparing against {record_path} "
          f"(label: {record.get('label', '?')}, "
          f"threshold: +{threshold:.0f}%)")
    for name in sorted(current):
        if name not in recorded:
            print(f"  {name:<{width}}  (new benchmark, no record)")
            continue
        compared += 1
        delta = pct(recorded[name]["real_time_ms"], current[name]["real_time_ms"])
        verdict = "ok"
        if delta is not None and delta > threshold:
            verdict = "REGRESSION"
            regressions.append((name, delta))
        print(f"  {name:<{width}}  {recorded[name]['real_time_ms']:10.4f} ms"
              f" -> {current[name]['real_time_ms']:10.4f} ms"
              f"  {delta:+6.1f}%  {verdict}")
    if compared == 0:
        sys.exit(f"error: no benchmark overlaps with {record_path}")
    return compared, regressions


def run_compare(args):
    """Regression gate: re-run the hot-path benches (and, when their records
    exist, the algorithm and construction benches) and fail when any one
    regresses beyond the noise threshold against the committed records."""
    gate_algorithms = os.path.exists(args.algo_record)
    gate_construction = os.path.exists(args.construction_record)
    gate_service = os.path.exists(args.service_record)
    benches = GOOGLE_BENCHES + (ALGO_BENCHES if gate_algorithms else []) \
        + (CONSTRUCTION_BENCHES if gate_construction else []) \
        + ([SERVICE_BENCH] if gate_service else [])
    benches = list(dict.fromkeys(benches))  # micro_construction appears twice
    if not args.skip_build:
        build(args.build_dir, benches)

    compared, regressions = compare_record(
        args.compare, GOOGLE_BENCHES, args.build_dir, args.threshold)
    if gate_algorithms:
        c, r = compare_record(
            args.algo_record, ALGO_BENCHES, args.build_dir, args.threshold)
        compared += c
        regressions += r
    else:
        print(f"note: {args.algo_record} not found, "
              "algorithm benches not gated")
    if gate_construction:
        c, r = compare_record(
            args.construction_record, CONSTRUCTION_BENCHES, args.build_dir,
            args.threshold)
        compared += c
        regressions += r
    else:
        print(f"note: {args.construction_record} not found, "
              "construction benches not gated")
    if gate_service:
        c, r = compare_service(
            args.service_record, args.build_dir, args.service_threshold)
        compared += c
        regressions += r
    else:
        print(f"note: {args.service_record} not found, "
              "service-ingest bench not gated")

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        sys.exit(f"FAIL: {len(regressions)} bench(es) beyond "
                 f"+{args.threshold:.0f}% (worst: {worst[0]} {worst[1]:+.1f}%)")
    print(f"\nPASS: {compared} benches within +{args.threshold:.0f}% "
          "of the records")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument("--baseline", help="earlier output of this script")
    ap.add_argument("--output", default=os.path.join(REPO_ROOT, "BENCH_scheduler.json"))
    ap.add_argument("--label", default="current",
                    help="label recorded in the output (e.g. a git revision)")
    ap.add_argument("--skip-build", action="store_true")
    ap.add_argument("--skip-figures", action="store_true",
                    help="micro/ablation/hotpath only (much faster)")
    ap.add_argument("--tsan", action="store_true",
                    help="instead of benchmarking, run the taskflow tests "
                         "under ThreadSanitizer (separate build tree)")
    ap.add_argument("--tsan-dir", default=os.path.join(REPO_ROOT, "build-tsan"))
    ap.add_argument("--asan", action="store_true",
                    help="instead of benchmarking, run the taskflow tests "
                         "under AddressSanitizer + UBSan (separate build tree)")
    ap.add_argument("--asan-dir", default=os.path.join(REPO_ROOT, "build-asan"))
    ap.add_argument("--compare", metavar="BENCH_scheduler.json",
                    help="instead of recording, re-run the hot-path benches "
                         "and exit non-zero when any regresses beyond "
                         "--threshold vs this record (the algorithm benches "
                         "are gated against --algo-record the same way)")
    ap.add_argument("--algo-output",
                    default=os.path.join(REPO_ROOT, "BENCH_algorithms.json"),
                    help="output of the algorithm-pattern benches "
                         "(default: BENCH_algorithms.json)")
    ap.add_argument("--algo-record",
                    default=os.path.join(REPO_ROOT, "BENCH_algorithms.json"),
                    help="committed algorithm-bench record gated by --compare")
    ap.add_argument("--skip-algorithms", action="store_true",
                    help="record mode: skip the algorithm benches")
    ap.add_argument("--construction-output",
                    default=os.path.join(REPO_ROOT, "BENCH_construction.json"),
                    help="output of the graph-construction benches "
                         "(default: BENCH_construction.json)")
    ap.add_argument("--construction-record",
                    default=os.path.join(REPO_ROOT, "BENCH_construction.json"),
                    help="committed construction-bench record gated by "
                         "--compare")
    ap.add_argument("--skip-construction", action="store_true",
                    help="record mode: skip the construction benches")
    ap.add_argument("--service-output",
                    default=os.path.join(REPO_ROOT, "BENCH_service.json"),
                    help="output of the service-ingest admission bench "
                         "(default: BENCH_service.json)")
    ap.add_argument("--service-record",
                    default=os.path.join(REPO_ROOT, "BENCH_service.json"),
                    help="committed service-ingest record gated by --compare")
    ap.add_argument("--skip-service", action="store_true",
                    help="record mode: skip the service-ingest bench")
    ap.add_argument("--service-threshold", type=float, default=25.0,
                    help="noise threshold for the service-ingest p99 gate, "
                         "in percent (default: 25 - latency percentiles on "
                         "an oversubscribed small host are noisier than "
                         "throughput means)")
    ap.add_argument("--locality", action="store_true",
                    help="instead of recording, run the interleaved "
                         "flat-vs-locality A/B on the contended benches and "
                         "fold the medians into --output (key locality_ab)")
    ap.add_argument("--peak-rss", action="store_true",
                    help="instead of benchmarking, fork the construction "
                         "benches and report each binary's peak RSS "
                         "(ru_maxrss)")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="noise threshold for --compare, in percent "
                         "(default: 10)")
    args = ap.parse_args()

    if args.tsan:
        run_tsan(args.tsan_dir)
    if args.asan:
        run_asan(args.asan_dir)
    if args.tsan or args.asan:
        return
    if args.peak_rss:
        rss_benches = list(CONSTRUCTION_BENCHES)
        if not args.skip_service:
            rss_benches += [(f"{SERVICE_BENCH}/{mode}", SERVICE_BENCH,
                             {"REPRO_SERVICE_MODE": mode})
                            for mode in SERVICE_MODES]
        if not args.skip_build:
            build(args.build_dir, CONSTRUCTION_BENCHES
                  + ([] if args.skip_service else [SERVICE_BENCH]))
        run_peak_rss(args.build_dir, rss_benches)
        return
    if args.locality:
        run_locality(args)
        return
    if args.compare:
        run_compare(args)
        return

    # Validate the baseline before spending minutes on benchmark runs.
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"error: cannot read baseline {args.baseline}: {e}")

    figure_benches = [] if args.skip_figures else FIGURE_BENCHES
    algo_benches = [] if args.skip_algorithms else ALGO_BENCHES
    construction_benches = [] if args.skip_construction else CONSTRUCTION_BENCHES
    service_benches = [] if args.skip_service else [SERVICE_BENCH]
    if not args.skip_build:
        build(args.build_dir, list(dict.fromkeys(
            GOOGLE_BENCHES + figure_benches + algo_benches
            + construction_benches + service_benches)))

    doc = {
        "label": args.label,
        "generated_by": "tools/run_scheduler_bench.py",
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "env": {k: os.environ[k] for k in
                ("REPRO_MAX_THREADS", "REPRO_TIMER_CORNERS", "REPRO_SCALE",
                 "REPRO_REPEATS") if k in os.environ},
        "google_benchmarks": {},
        "figures": {},
    }
    for name in GOOGLE_BENCHES:
        doc["google_benchmarks"].update(run_google_bench(args.build_dir, name))
    attach_iterative_convergence(doc, args.build_dir)
    for name in figure_benches:
        doc["figures"].update(run_figure_bench(args.build_dir, name))

    if baseline is not None:
        attach_deltas(doc, baseline)

    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print("wrote", args.output)

    if algo_benches:
        algo_doc = {
            "label": args.label,
            "generated_by": "tools/run_scheduler_bench.py",
            "host": doc["host"],
            "env": doc["env"],
            "google_benchmarks": {},
        }
        for name in algo_benches:
            algo_doc["google_benchmarks"].update(
                run_google_bench(args.build_dir, name))
        with open(args.algo_output, "w") as f:
            json.dump(algo_doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print("wrote", args.algo_output)

    if construction_benches:
        construction_doc = {
            "label": args.label,
            "generated_by": "tools/run_scheduler_bench.py",
            "host": doc["host"],
            "env": doc["env"],
            "google_benchmarks": {},
        }
        for name in construction_benches:
            construction_doc["google_benchmarks"].update(
                run_google_bench(args.build_dir, name))
        with open(args.construction_output, "w") as f:
            json.dump(construction_doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print("wrote", args.construction_output)

    if service_benches:
        service_doc = {
            "label": args.label,
            "generated_by": "tools/run_scheduler_bench.py",
            "host": doc["host"],
            "env": doc["env"],
            "service_ingest": run_service_bench(args.build_dir),
            "service_sweep": run_service_sweep(args.build_dir),
        }
        with open(args.service_output, "w") as f:
            json.dump(service_doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print("wrote", args.service_output)


if __name__ == "__main__":
    main()
