// Tests for support/cpu_topology: sysfs discovery against a fabricated
// fixture tree (multi-node, SMT siblings, offline CPUs, missing attributes),
// the flat fallback, worker-to-CPU assignment under both NUMA policies, and
// the pinning round-trip on Linux.
#include "support/cpu_topology.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace fs = std::filesystem;
using support::CpuTopology;
using support::NumaPolicy;

namespace {

// Builds a fake /sys under a unique temp directory and removes it on exit.
class FakeSysfs {
 public:
  FakeSysfs() {
    _root = fs::temp_directory_path() /
            ("cpu_topology_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter()++));
    fs::create_directories(_root);
  }

  ~FakeSysfs() {
    std::error_code ec;
    fs::remove_all(_root, ec);
  }

  [[nodiscard]] std::string root() const { return _root.string(); }

  void write(const std::string& rel, const std::string& content) const {
    const fs::path p = _root / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
  }

  void cpu(int id, int package, int core) const {
    const std::string base =
        "devices/system/cpu/cpu" + std::to_string(id) + "/topology/";
    write(base + "physical_package_id", std::to_string(package) + "\n");
    write(base + "core_id", std::to_string(core) + "\n");
  }

  void node(int id, const std::string& cpulist) const {
    write("devices/system/node/node" + std::to_string(id) + "/cpulist",
          cpulist + "\n");
  }

 private:
  static int& counter() {
    static int c = 0;
    return c;
  }
  fs::path _root;
};

TEST(ParseCpuList, RangesSinglesAndGarbage) {
  EXPECT_EQ(support::parse_cpu_list("0-3,5,8-9\n"),
            (std::vector<int>{0, 1, 2, 3, 5, 8, 9}));
  EXPECT_EQ(support::parse_cpu_list("2"), (std::vector<int>{2}));
  EXPECT_EQ(support::parse_cpu_list(" 1 , 0 "), (std::vector<int>{0, 1}));
  EXPECT_EQ(support::parse_cpu_list("3,3,1-3"), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(support::parse_cpu_list("").empty());
  EXPECT_TRUE(support::parse_cpu_list("banana").empty());
  // A malformed chunk is dropped, the rest survives.
  EXPECT_EQ(support::parse_cpu_list("0,x,2"), (std::vector<int>{0, 2}));
}

TEST(CpuTopology, DiscoverTwoNodesWithSmt) {
  // 2 nodes x 2 cores x 2 SMT threads: node0 = {0,1,4,5}, node1 = {2,3,6,7};
  // cpu i and cpu i+4 are SMT siblings of one core.
  FakeSysfs sys;
  sys.write("devices/system/cpu/online", "0-7\n");
  for (int i = 0; i < 8; ++i) {
    const int core = i % 4;            // cores 0..3
    const int package = core / 2;      // package 0 holds cores 0,1
    sys.cpu(i, package, core % 2);     // core_id unique within package
  }
  sys.node(0, "0-1,4-5");
  sys.node(1, "2-3,6-7");

  const auto topo = CpuTopology::discover(sys.root());
  ASSERT_EQ(topo.num_cpus(), 8u);
  EXPECT_FALSE(topo.fallback());
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.num_cores(), 4);

  // cpus() preserves online order, so index == cpu id here.
  EXPECT_EQ(topo.cpus()[5].node, 0);
  EXPECT_EQ(topo.cpus()[6].node, 1);

  // SMT siblings (same package, same core): cpu0 and cpu4.
  EXPECT_EQ(topo.tier(0, 4), CpuTopology::kSameCore);
  // Same node, different core: cpu0 and cpu1.
  EXPECT_EQ(topo.tier(0, 1), CpuTopology::kSameNode);
  // Across nodes: cpu0 and cpu2.
  EXPECT_EQ(topo.tier(0, 2), CpuTopology::kRemote);
  // Out-of-range index is remote, not UB.
  EXPECT_EQ(topo.tier(0, 99), CpuTopology::kRemote);
}

TEST(CpuTopology, OfflineCpusAreExcluded) {
  FakeSysfs sys;
  sys.write("devices/system/cpu/online", "0-1,3\n");  // cpu2 offline
  for (int i = 0; i < 4; ++i) sys.cpu(i, 0, i);
  sys.node(0, "0-3");

  const auto topo = CpuTopology::discover(sys.root());
  ASSERT_EQ(topo.num_cpus(), 3u);
  EXPECT_EQ(topo.cpus()[2].cpu, 3);  // cpu3 follows cpu1
}

TEST(CpuTopology, MissingOnlineFileProbesCpuDirs) {
  FakeSysfs sys;  // no `online` file at all
  sys.cpu(0, 0, 0);
  sys.cpu(1, 0, 1);

  const auto topo = CpuTopology::discover(sys.root());
  ASSERT_EQ(topo.num_cpus(), 2u);
  EXPECT_FALSE(topo.fallback());
  EXPECT_EQ(topo.num_nodes(), 1);  // no node tree: single node
}

TEST(CpuTopology, MissingCoreIdsDegradeToOwnCore) {
  FakeSysfs sys;
  sys.write("devices/system/cpu/online", "0-1\n");
  // Only package ids exist; core_id files are absent.
  sys.write("devices/system/cpu/cpu0/topology/physical_package_id", "0\n");
  sys.write("devices/system/cpu/cpu1/topology/physical_package_id", "0\n");

  const auto topo = CpuTopology::discover(sys.root());
  ASSERT_EQ(topo.num_cpus(), 2u);
  EXPECT_EQ(topo.num_cores(), 2);  // each CPU its own core: no false SMT tier
  EXPECT_EQ(topo.tier(0, 1), CpuTopology::kSameNode);
}

TEST(CpuTopology, EmptyTreeFallsBackFlat) {
  FakeSysfs sys;  // nothing at all under the root
  const auto topo = CpuTopology::discover(sys.root());
  EXPECT_TRUE(topo.fallback());
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_EQ(topo.num_nodes(), 1);
  // Flat shape: every CPU is its own core, all same-node, none same-core.
  if (topo.num_cpus() > 1) {
    EXPECT_EQ(topo.tier(0, 1), CpuTopology::kSameNode);
  }
  EXPECT_EQ(topo.tier(0, 0), CpuTopology::kSameCore);
}

TEST(CpuTopology, FlatShape) {
  const auto topo = CpuTopology::flat(4);
  EXPECT_TRUE(topo.fallback());
  EXPECT_EQ(topo.num_cpus(), 4u);
  EXPECT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.num_cores(), 4);
  const auto a = topo.assign(6, NumaPolicy::compact);
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a[4], a[0]);  // oversubscription wraps around
}

TEST(CpuTopology, CompactAssignmentFillsOneNodeFirst) {
  FakeSysfs sys;
  sys.write("devices/system/cpu/online", "0-7\n");
  for (int i = 0; i < 8; ++i) sys.cpu(i, i / 4, i % 4);
  sys.node(0, "0-3");
  sys.node(1, "4-7");

  const auto topo = CpuTopology::discover(sys.root());
  const auto a = topo.assign(4, NumaPolicy::compact);
  ASSERT_EQ(a.size(), 4u);
  for (const auto idx : a) {
    EXPECT_EQ(topo.cpus()[idx].node, 0) << "compact must fill node0 first";
  }
}

TEST(CpuTopology, ScatterAssignmentAlternatesNodes) {
  FakeSysfs sys;
  sys.write("devices/system/cpu/online", "0-7\n");
  for (int i = 0; i < 8; ++i) sys.cpu(i, i / 4, i % 4);
  sys.node(0, "0-3");
  sys.node(1, "4-7");

  const auto topo = CpuTopology::discover(sys.root());
  const auto a = topo.assign(4, NumaPolicy::scatter);
  ASSERT_EQ(a.size(), 4u);
  int on_node0 = 0;
  for (const auto idx : a) on_node0 += topo.cpus()[idx].node == 0 ? 1 : 0;
  EXPECT_EQ(on_node0, 2) << "scatter must interleave the two nodes";
  EXPECT_NE(topo.cpus()[a[0]].node, topo.cpus()[a[1]].node);
}

TEST(CpuTopology, SmtSiblingsAssignedLast) {
  // 1 node, 2 cores x 2 threads: compact must give the first two workers
  // distinct cores, resorting to SMT siblings only for workers 3 and 4.
  FakeSysfs sys;
  sys.write("devices/system/cpu/online", "0-3\n");
  sys.cpu(0, 0, 0);
  sys.cpu(1, 0, 1);
  sys.cpu(2, 0, 0);  // sibling of cpu0
  sys.cpu(3, 0, 1);  // sibling of cpu1
  sys.node(0, "0-3");

  const auto topo = CpuTopology::discover(sys.root());
  const auto a = topo.assign(4, NumaPolicy::compact);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(topo.tier(a[0], a[1]), CpuTopology::kSameNode)
      << "first two workers must land on distinct cores";
  EXPECT_EQ(topo.tier(a[0], a[2]), CpuTopology::kSameCore)
      << "third worker takes the first SMT sibling";
}

TEST(CpuTopology, RealSysfsDiscoveryNeverThrows) {
  // Whatever this host looks like, discovery must produce a usable shape.
  const auto topo = CpuTopology::discover();
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_GE(topo.num_nodes(), 1);
  const auto a = topo.assign(8, NumaPolicy::compact);
  EXPECT_EQ(a.size(), 8u);
  for (const auto idx : a) EXPECT_LT(idx, topo.num_cpus());
}

#if defined(__linux__)
TEST(Pinning, RoundTripAndRestore) {
  const std::vector<int> before = support::current_affinity();
  ASSERT_FALSE(before.empty());

  const int target = before.front();
  ASSERT_TRUE(support::pin_current_thread(target));
  const std::vector<int> pinned = support::current_affinity();
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned.front(), target);

  // Restore the original mask so later tests in this binary see the full
  // machine again.
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int c : before) CPU_SET(static_cast<unsigned>(c), &set);
  ASSERT_EQ(pthread_setaffinity_np(pthread_self(), sizeof(set), &set), 0);
  EXPECT_EQ(support::current_affinity(), before);
}

TEST(Pinning, RejectsNegativeCpu) {
  EXPECT_FALSE(support::pin_current_thread(-1));
}
#endif

}  // namespace
