#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

TEST(Table, AlignedOutputContainsAllCells) {
  support::Table t({"name", "runtime_ms"});
  t.add_row({"taskflow", "12.5"});
  t.add_row({"tbb-flowgraph", "19.1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("taskflow"), std::string::npos);
  EXPECT_NE(out.find("tbb-flowgraph"), std::string::npos);
  EXPECT_NE(out.find("19.1"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutputIsMachineReadable) {
  support::Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os, "fig7");
  const std::string out = os.str();
  EXPECT_NE(out.find("CSV,fig7,x,y"), std::string::npos);
  EXPECT_NE(out.find("CSV,fig7,1,2"), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(support::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(support::fmt(3.14159, 0), "3");
  EXPECT_EQ(support::fmt(-1.5, 1), "-1.5");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(support::fmt_count(0), "0");
  EXPECT_EQ(support::fmt_count(999), "999");
  EXPECT_EQ(support::fmt_count(1000), "1,000");
  EXPECT_EQ(support::fmt_count(1234567), "1,234,567");
  EXPECT_EQ(support::fmt_count(-12345), "-12,345");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  support::banner(os, "Table I");
  EXPECT_NE(os.str().find("Table I"), std::string::npos);
}

}  // namespace
