// support::SmallFunction - the small-buffer-optimized move-only callable
// that backs tf::StaticWork / tf::DynamicWork.
#include "support/function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <utility>

namespace {

using Fn = support::SmallFunction<int(), 32>;

TEST(SmallFunction, DefaultIsEmpty) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  Fn g(nullptr);
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(SmallFunction, InvokesSmallCallableInline) {
  int x = 41;
  Fn f([&x] { return x + 1; });
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 42);
}

TEST(SmallFunction, ForwardsArgumentsAndReturn) {
  support::SmallFunction<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(20, 22), 42);
}

TEST(SmallFunction, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(7);
  Fn f([p = std::move(p)] { return *p; });
  static_assert(!std::is_copy_constructible_v<Fn>);
  EXPECT_EQ(f(), 7);

  // ... and survives being moved around.
  Fn g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT: moved-from check is the point
  EXPECT_EQ(g(), 7);
}

TEST(SmallFunction, OversizeCaptureFallsBackToHeap) {
  std::array<char, 128> big{};
  big[0] = 1;
  Fn f([big] { return static_cast<int>(big[0]); });
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 1);

  // Heap targets relocate by pointer: moving must preserve the target.
  Fn g(std::move(f));
  EXPECT_FALSE(g.is_inline());
  EXPECT_EQ(g(), 1);
}

TEST(SmallFunction, ThrowingMoveCaptureFallsBackToHeap) {
  // A std::string capture is small but (pre-C++17 ABI aside) its lambda's
  // move may not be noexcept on all standard libraries; what matters here is
  // the general rule: stores_inline demands a noexcept move.
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    ThrowingMove(const ThrowingMove&) = default;
    int operator()() const { return 3; }
  };
  static_assert(!Fn::stores_inline<ThrowingMove>);
  Fn f{ThrowingMove{}};
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 3);
}

struct Counted {
  static int live;
  static int destroyed;
  Counted() { ++live; }
  Counted(const Counted&) { ++live; }
  Counted(Counted&&) noexcept { ++live; }
  ~Counted() {
    --live;
    ++destroyed;
  }
};
int Counted::live = 0;
int Counted::destroyed = 0;

TEST(SmallFunction, DestroysInlineTargetExactlyOnce) {
  Counted::live = 0;
  Counted::destroyed = 0;
  {
    Fn f([c = Counted{}] { return Counted::live; });
    EXPECT_TRUE(f.is_inline());
    EXPECT_EQ(Counted::live, 1);
    const int destroyed_before = Counted::destroyed;

    Fn g(std::move(f));  // relocation moves + destroys the source capture
    EXPECT_EQ(Counted::live, 1);
    EXPECT_EQ(Counted::destroyed, destroyed_before + 1);

    g = Fn([] { return 0; });  // assignment destroys the old target
    EXPECT_EQ(Counted::live, 0);
  }
  EXPECT_EQ(Counted::live, 0);
}

TEST(SmallFunction, DestroysHeapTargetExactlyOnce) {
  Counted::live = 0;
  Counted::destroyed = 0;
  {
    std::array<char, 128> pad{};
    Fn f([c = Counted{}, pad] { return static_cast<int>(pad[0]); });
    EXPECT_FALSE(f.is_inline());
    EXPECT_EQ(Counted::live, 1);

    Fn g(std::move(f));  // heap relocation moves the pointer, not the target
    EXPECT_EQ(Counted::live, 1);
  }
  EXPECT_EQ(Counted::live, 0);
}

TEST(SmallFunction, MoveAssignReleasesOldTarget) {
  Counted::live = 0;
  Fn a([c = Counted{}] { return 1; });
  Fn b([c = Counted{}] { return 2; });
  EXPECT_EQ(Counted::live, 2);
  a = std::move(b);
  EXPECT_EQ(Counted::live, 1);
  EXPECT_EQ(a(), 2);
  a = nullptr;
  EXPECT_EQ(Counted::live, 0);
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(SmallFunction, SelfMoveAssignIsSafe) {
  Fn f([] { return 9; });
  Fn& alias = f;
  f = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 9);
}

}  // namespace
