#include "support/chrono.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  support::Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = sw.elapsed_ms();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 2000.0);
  EXPECT_NEAR(sw.elapsed_s() * 1000.0, sw.elapsed_ms(), 50.0);
}

TEST(Stopwatch, ResetRestarts) {
  support::Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.elapsed_ms(), 15.0);
}

TEST(Summarize, EmptySample) {
  const auto s = support::summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const auto s = support::summarize({4.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, OddCountMedian) {
  const auto s = support::summarize({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Summarize, EvenCountMedianAveragesMiddle) {
  const auto s = support::summarize({1.0, 2.0, 3.0, 10.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Summarize, SampleStddev) {
  // Sample (n-1) standard deviation of {2,4,4,4,5,5,7,9} is ~2.138.
  const auto s = support::summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(s.stddev, 2.138, 0.01);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
}

TEST(TimeMinMs, ReturnsMinimumOfRepeats) {
  int calls = 0;
  const double t = support::time_min_ms(
      [&] {
        ++calls;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      },
      4);
  EXPECT_EQ(calls, 4);
  EXPECT_GE(t, 1.0);
}

}  // namespace
