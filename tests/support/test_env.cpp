#include "support/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* name : {"REPRO_TEST_INT", "REPRO_TEST_DBL", "REPRO_SCALE",
                             "REPRO_MAX_THREADS", "REPRO_REPEATS",
                             "REPRO_CYCLE_CHECK", "REPRO_FAULT_ITERS",
                             "REPRO_FAULT_SEED"}) {
      unsetenv(name);
    }
  }
};

TEST_F(EnvTest, IntFallbackWhenUnset) {
  EXPECT_EQ(support::env_int("REPRO_TEST_INT", 7), 7);
}

TEST_F(EnvTest, IntParsesValue) {
  setenv("REPRO_TEST_INT", "123", 1);
  EXPECT_EQ(support::env_int("REPRO_TEST_INT", 7), 123);
  setenv("REPRO_TEST_INT", "-5", 1);
  EXPECT_EQ(support::env_int("REPRO_TEST_INT", 7), -5);
}

TEST_F(EnvTest, IntFallbackOnGarbage) {
  setenv("REPRO_TEST_INT", "12abc", 1);
  EXPECT_EQ(support::env_int("REPRO_TEST_INT", 7), 7);
  setenv("REPRO_TEST_INT", "", 1);
  EXPECT_EQ(support::env_int("REPRO_TEST_INT", 7), 7);
}

TEST_F(EnvTest, DoubleParsesAndFallsBack) {
  EXPECT_DOUBLE_EQ(support::env_double("REPRO_TEST_DBL", 1.5), 1.5);
  setenv("REPRO_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(support::env_double("REPRO_TEST_DBL", 1.5), 0.25);
  setenv("REPRO_TEST_DBL", "abc", 1);
  EXPECT_DOUBLE_EQ(support::env_double("REPRO_TEST_DBL", 1.5), 1.5);
}

TEST_F(EnvTest, ScaleKnob) {
  EXPECT_DOUBLE_EQ(support::repro_scale(), 1.0);
  setenv("REPRO_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(support::repro_scale(), 0.5);
}

TEST_F(EnvTest, MaxThreadsKnob) {
  EXPECT_GE(support::repro_max_threads(), 4u);  // default floor
  setenv("REPRO_MAX_THREADS", "16", 1);
  EXPECT_EQ(support::repro_max_threads(), 16u);
}

TEST_F(EnvTest, RepeatsKnob) {
  EXPECT_EQ(support::repro_repeats(), 3);
  setenv("REPRO_REPEATS", "1", 1);
  EXPECT_EQ(support::repro_repeats(), 1);
}

TEST_F(EnvTest, CycleCheckKnobDefaultsOn) {
  EXPECT_TRUE(support::repro_cycle_check());
  setenv("REPRO_CYCLE_CHECK", "0", 1);
  EXPECT_FALSE(support::repro_cycle_check());
  setenv("REPRO_CYCLE_CHECK", "1", 1);
  EXPECT_TRUE(support::repro_cycle_check());
}

TEST_F(EnvTest, FaultInjectionKnobs) {
  EXPECT_EQ(support::repro_fault_iters(), 30);
  setenv("REPRO_FAULT_ITERS", "200", 1);
  EXPECT_EQ(support::repro_fault_iters(), 200);

  EXPECT_EQ(support::repro_fault_seed(), 42ull);
  setenv("REPRO_FAULT_SEED", "7", 1);
  EXPECT_EQ(support::repro_fault_seed(), 7ull);
}

}  // namespace
