#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  support::SplitMix64 a(42), b(42), c(43);
  std::vector<std::uint64_t> sa, sb, sc;
  for (int i = 0; i < 16; ++i) {
    sa.push_back(a.next());
    sb.push_back(b.next());
    sc.push_back(c.next());
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

TEST(SplitMix64, KnownFirstValue) {
  // splitmix64(0) first output is a published constant.
  support::SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(Xoshiro256, DeterministicStreams) {
  support::Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  support::Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  support::Xoshiro256 rng(123);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRespectsBounds) {
  support::Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 7.0);
  }
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  support::Xoshiro256 rng(9);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.below(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // ~1000 expected each
}

TEST(Xoshiro256, RangeInclusive) {
  support::Xoshiro256 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, NormalMomentsMatch) {
  support::Xoshiro256 rng(17);
  constexpr int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro256, NormalShifted) {
  support::Xoshiro256 rng(19);
  constexpr int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Xoshiro256, BernoulliProbability) {
  support::Xoshiro256 rng(23);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, UsableWithStdShuffle) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto orig = v;
  support::Xoshiro256 rng(29);
  std::shuffle(v.begin(), v.end(), rng);
  EXPECT_NE(v, orig);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);  // permutation property
}

}  // namespace
