// Cross-module integration: the paper's §III-E executor-sharing story
// exercised across subsystems - one executor driving several taskflows,
// the timing engine, and mixed workloads concurrently.
#include "nn/trainers.hpp"
#include "taskflow/taskflow.hpp"
#include "timer/modifier.hpp"
#include "timer/timers.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Integration, SharedExecutorAcrossTimers) {
  // Two timing engines sharing one executor (no thread over-subscription)
  // must match two engines with private executors.
  const auto lib = ot::CellLibrary::make_synthetic();
  ot::CircuitSpec spec;
  spec.num_gates = 600;
  spec.seed = 3;

  auto nl_a = ot::make_circuit(lib, spec);
  auto nl_b = ot::make_circuit(lib, spec);
  auto nl_ref = ot::make_circuit(lib, spec);

  ot::TimerOptions opt;
  opt.num_threads = 4;

  auto shared = tf::make_executor(4);
  ot::TimerV2 ta(nl_a, opt, shared);
  ot::TimerV2 tb(nl_b, opt, shared);
  ot::SeqTimer ref(nl_ref, opt);

  ta.full_update();
  tb.full_update();
  ref.full_update();

  EXPECT_NEAR(ta.worst_slack(), ref.worst_slack(), 1e-9);
  EXPECT_NEAR(tb.worst_slack(), ref.worst_slack(), 1e-9);
}

TEST(Integration, SharedExecutorTimerPlusGenericTaskflow) {
  // A timer and an unrelated task graph interleave on the same executor -
  // the animation-program use case the paper describes (renderer taskflow +
  // resource-loading taskflows on one executor).
  const auto lib = ot::CellLibrary::make_synthetic();
  ot::CircuitSpec spec;
  spec.num_gates = 400;
  spec.seed = 9;
  auto nl = ot::make_circuit(lib, spec);
  auto nl_ref = ot::make_circuit(lib, spec);

  ot::TimerOptions opt;
  opt.num_threads = 4;
  auto shared = tf::make_executor(4);
  ot::TimerV2 timer(nl, opt, shared);
  ot::SeqTimer ref(nl_ref, opt);

  std::atomic<int> side_work{0};
  tf::Taskflow side(shared);
  for (int i = 0; i < 2000; ++i) side.emplace([&] { side_work++; });
  side.silent_dispatch();

  timer.full_update();
  ref.full_update();

  ot::ModifierStream mods(nl, 2);
  for (int i = 0; i < 5; ++i) {
    const auto m = mods.next();
    timer.resize(m.gate, *m.new_cell);
    ref.netlist().resize_gate(m.gate, *m.new_cell);
    ref.full_update();
    ASSERT_NEAR(timer.worst_slack(), ref.worst_slack(), 1e-9);
  }

  side.wait_for_all();
  EXPECT_EQ(side_work.load(), 2000);
}

TEST(Integration, TimerRoundTripThroughNetlistFile) {
  // Generate -> serialize -> parse -> time: both paths give identical slack.
  const auto lib = ot::CellLibrary::make_synthetic();
  ot::CircuitSpec spec;
  spec.num_gates = 300;
  spec.seed = 21;
  auto nl = ot::make_circuit(lib, spec);

  std::stringstream ss;
  ot::write_netlist(ss, nl);
  auto parsed = ot::parse_netlist(ss, lib);

  ot::TimerOptions opt;
  opt.num_threads = 2;
  ot::SeqTimer t1(nl, opt);
  ot::SeqTimer t2(parsed, opt);
  t1.full_update();
  t2.full_update();
  EXPECT_NEAR(t1.worst_slack(), t2.worst_slack(), 1e-12);
}

TEST(Integration, TrainingWhileTimingOnSeparateExecutors) {
  // Heavy mixed load: DNN training and incremental timing running at the
  // same time must both produce correct results.
  const auto lib = ot::CellLibrary::make_synthetic();
  ot::CircuitSpec spec;
  spec.num_gates = 500;
  spec.seed = 77;
  auto nl = ot::make_circuit(lib, spec);
  auto nl_ref = ot::make_circuit(lib, spec);

  ot::TimerOptions topt;
  topt.num_threads = 2;
  ot::TimerV2 timer(nl, topt);
  ot::SeqTimer ref(nl_ref, topt);

  const auto ds = nn::make_synthetic(200, 1);
  nn::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 50;
  cfg.num_threads = 2;

  nn::Mlp net_par({784, 16, 10}, 3);
  nn::Mlp net_seq({784, 16, 10}, 3);

  std::thread trainer([&] { (void)nn::train_taskflow(net_par, ds, cfg); });

  timer.full_update();
  ref.full_update();
  ot::ModifierStream mods(nl, 4);
  for (int i = 0; i < 10; ++i) {
    const auto m = mods.next();
    timer.resize(m.gate, *m.new_cell);
    ref.netlist().resize_gate(m.gate, *m.new_cell);
    ref.full_update();
    ASSERT_NEAR(timer.worst_slack(), ref.worst_slack(), 1e-9);
  }
  trainer.join();

  const auto r_seq = nn::train_sequential(net_seq, ds, cfg);
  // The concurrently-trained network matches the sequential oracle.
  for (std::size_t i = 0; i < net_par.num_layers(); ++i) {
    EXPECT_TRUE(net_par.layer(i).w == net_seq.layer(i).w);
  }
  (void)r_seq;
}

TEST(Integration, ManyTaskflowsOnOneExecutorStress) {
  auto shared = tf::make_executor(4);
  std::atomic<long> counter{0};
  std::vector<std::unique_ptr<tf::Taskflow>> flows;
  for (int f = 0; f < 16; ++f) {
    flows.push_back(std::make_unique<tf::Taskflow>(shared));
    auto& tf_ = *flows.back();
    // Mix static tasks, subflows and algorithms per flow.
    for (int i = 0; i < 50; ++i) tf_.emplace([&] { counter++; });
    tf_.emplace([&](tf::SubflowBuilder& sf) {
      for (int j = 0; j < 20; ++j) sf.emplace([&] { counter++; });
    });
    tf_.parallel_for(0, 100, 1, [&](int) { counter++; });
    tf_.silent_dispatch();
  }
  for (auto& f : flows) f->wait_for_all();
  EXPECT_EQ(counter.load(), 16 * (50 + 20 + 100));
}

}  // namespace
