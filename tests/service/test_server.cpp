// Service-layer suite (ISSUE 9 tentpole): tf::Server end-to-end - the
// composed/conditional request pipeline with retry + fallback-to-degraded,
// priority-banded admission under RunPolicy deadlines, the /healthz metrics
// snapshot and socket probe, chaos injection, and the soak contract: a
// multi-threaded ingest storm finishes with ZERO lost responses (submitted
// == sum of all outcome counters, exactly) and survives a mid-storm
// shutdown(drain) with every handle ready.
//
//   REPRO_SOAK_ITERS   requests per client in the soak (default 400, the CI
//                      short soak; >= 42000 with 24 clients is the 1M-request
//                      acceptance storm)
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/probe.hpp"
#include "support/env.hpp"

namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Single-request semantics.
// ---------------------------------------------------------------------------

TEST(Server, CallCompletesOk) {
  tf::Server server;
  auto& client = server.connect();
  const tf::Response r = client.call({/*id=*/7, /*priority=*/1, /*work=*/50us});
  EXPECT_EQ(r.id, 7u);
  EXPECT_EQ(r.outcome, tf::Outcome::ok);
  EXPECT_GT(r.latency.count(), 0);
  EXPECT_EQ(client.count(tf::Outcome::ok), 1u);
  const auto snap = server.metrics();
  EXPECT_EQ(snap.submitted, 1u);
  EXPECT_EQ(snap.accounted(), 1u);
  EXPECT_EQ(snap.completed(), 1u);
}

TEST(Server, MalformedRequestDegrades) {
  tf::ServerOptions opts;
  opts.chaos.enabled = true;
  opts.chaos.malformed_rate = 1.0;  // every validate branches to degrade
  tf::Server server(opts);
  auto& client = server.connect();
  const tf::Response r = client.call({1});
  EXPECT_EQ(r.outcome, tf::Outcome::degraded);
  EXPECT_GT(r.latency.count(), 0);  // a degraded response is still a response
}

TEST(Server, ExhaustedRetriesFallBackToDegraded) {
  tf::ServerOptions opts;
  opts.max_attempts = 2;
  opts.retry_backoff = 10us;
  opts.chaos.enabled = true;
  opts.chaos.exception_rate = 1.0;  // every handler attempt throws
  tf::Server server(opts);
  auto& client = server.connect();
  for (int i = 0; i < 8; ++i) {
    const tf::Response r = client.call({static_cast<std::uint64_t>(i)});
    EXPECT_EQ(r.outcome, tf::Outcome::degraded) << "request " << i;
  }
  // The fallback absorbed every injected failure: nothing surfaced as
  // `failed`, and the executor saw only successful runs (breaker stays shut).
  EXPECT_EQ(client.count(tf::Outcome::failed), 0u);
  EXPECT_EQ(client.count(tf::Outcome::degraded), 8u);
}

TEST(Server, DeadlineSurfacesTimedOut) {
  tf::ServerOptions opts;
  opts.deadline = 2ms;
  tf::Server server(opts);
  auto& client = server.connect();
  const tf::Response r = client.call({1, 1, /*work=*/50ms});
  EXPECT_EQ(r.outcome, tf::Outcome::timed_out);
  EXPECT_EQ(r.latency.count(), 0);  // no response was produced
}

TEST(Server, BoundedAdmissionRejectsAtTheDoor) {
  tf::ServerOptions opts;
  opts.num_workers = 1;
  opts.executor.max_pending_topologies = 1;
  opts.admission = tf::AdmissionPolicy::reject;
  tf::Server server(opts);
  auto& client = server.connect();
  for (int i = 0; i < 16; ++i) {
    client.submit({static_cast<std::uint64_t>(i), 1, /*work=*/2ms});
  }
  client.drain();
  const auto snap = server.metrics();
  EXPECT_EQ(snap.submitted, 16u);
  EXPECT_EQ(snap.accounted(), 16u);
  EXPECT_GE(snap.outcome(tf::Outcome::rejected), 1u);
  EXPECT_GE(snap.outcome(tf::Outcome::ok), 1u);
  // Door rejections match the executor's overload-reject counter.
  EXPECT_EQ(snap.executor.rejected, snap.outcome(tf::Outcome::rejected));
}

// ---------------------------------------------------------------------------
// Observability surface.
// ---------------------------------------------------------------------------

TEST(Server, HealthzRendersTheSnapshot) {
  tf::Server server;
  auto& client = server.connect();
  (void)client.call({1});
  const std::string body = server.healthz();
  EXPECT_NE(body.find("status ok"), std::string::npos) << body;
  EXPECT_NE(body.find("submitted 1"), std::string::npos) << body;
  EXPECT_NE(body.find("accounted 1"), std::string::npos) << body;
  EXPECT_NE(body.find("p99_us "), std::string::npos) << body;
  std::ostringstream os;
  server.dump_state(os);
  EXPECT_NE(os.str().find("--- executor ---"), std::string::npos);
  server.shutdown();
  EXPECT_NE(server.healthz().find("status draining"), std::string::npos);
}

TEST(Server, ProbeServesHealthzOverASocket) {
  tf::Server server;
  auto& client = server.connect();
  (void)client.call({1});
  tf::HealthzProbe probe;
  if (!probe.start(server, 0)) {
    GTEST_SKIP() << "sockets unavailable in this environment";
  }
  ASSERT_GT(probe.port(), 0);
  const std::string reply = tf::probe_fetch(probe.port());
  EXPECT_NE(reply.find("HTTP/1.0 200 OK"), std::string::npos) << reply;
  EXPECT_NE(reply.find("status ok"), std::string::npos) << reply;
  EXPECT_NE(reply.find("submitted 1"), std::string::npos) << reply;
  probe.stop();
  EXPECT_FALSE(probe.running());
}

// ---------------------------------------------------------------------------
// The soak contract: a chaos-mode multi-client storm loses nothing.
// ---------------------------------------------------------------------------

tf::ServerOptions storm_options() {
  tf::ServerOptions opts;
  opts.num_workers = 2;
  opts.executor.max_pending_topologies = 64;
  // Requests are sheddable only while queued in admission (each slot is a
  // distinct taskflow): cap concurrent starts so the watermark has a queue
  // to cut.
  opts.executor.max_concurrent_topologies = 8;
  opts.executor.shed_watermark = 48;
  opts.executor.breaker_threshold = 4;
  opts.admission = tf::AdmissionPolicy::block;
  opts.admission_timeout = 2ms;
  opts.deadline = 100ms;
  opts.max_attempts = 2;
  opts.retry_backoff = 10us;
  opts.client_window = 4;
  opts.chaos.enabled = true;
  opts.chaos.malformed_rate = 0.02;
  opts.chaos.exception_rate = 0.05;
  opts.chaos.stall_rate = 0.01;
  opts.chaos.stall = 200us;
  opts.chaos.seed = support::repro_fault_seed();
  return opts;
}

TEST(ServerSoak, StormWithChaosAccountsEveryRequest) {
  const auto iters = static_cast<std::uint64_t>(support::repro_soak_iters());
  constexpr std::uint64_t kClients = 24;
  tf::Server server(storm_options());

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::uint64_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto& client = server.connect();
      for (std::uint64_t i = 0; i < iters; ++i) {
        tf::Request req;
        req.id = c * iters + i;
        req.priority = static_cast<int>(i % 3);
        req.work = 2us;
        client.submit(req);
        // Every 3rd client is a slow client: it stalls mid-stream while its
        // window stays in flight (chaos from the consumer side).
        if (c % 3 == 0 && i % 512 == 511) {
          std::this_thread::sleep_for(200us);
        }
      }
      client.drain();
    });
  }
  for (auto& t : threads) t.join();

  const auto snap = server.metrics();
  const std::uint64_t total = kClients * iters;
  // Zero lost responses: every request accounted exactly once.
  EXPECT_EQ(snap.submitted, total);
  EXPECT_EQ(snap.accounted(), total);
  // No abort ran and every chaos exception was absorbed by the fallback.
  EXPECT_EQ(snap.outcome(tf::Outcome::cancelled), 0u);
  EXPECT_EQ(snap.outcome(tf::Outcome::failed), 0u);
  EXPECT_EQ(snap.outcome(tf::Outcome::shutdown_rejected), 0u);
  // Real responses flowed (the exact ok/shed/rejected split is load- and
  // machine-dependent; the identities above are the contract).
  EXPECT_GT(snap.completed(), 0u);
  // The executor's admission counters agree with the outcome split: door
  // rejections never reached it, everything else was admitted.
  EXPECT_EQ(snap.executor.admitted,
            total - snap.outcome(tf::Outcome::rejected));
  EXPECT_EQ(snap.executor.rejected, snap.outcome(tf::Outcome::rejected));
  EXPECT_EQ(snap.executor.shed, snap.outcome(tf::Outcome::shed));
  EXPECT_EQ(snap.executor.num_topologies, 0u);
  // Latency percentiles are populated and monotone.
  EXPECT_GT(snap.p50_us, 0.0);
  EXPECT_LE(snap.p50_us, snap.p99_us);
  EXPECT_LE(snap.p99_us, snap.p999_us);

  // Graceful drain under no load: shutdown after the storm is immediate and
  // the server refuses new work distinctly.
  server.shutdown(tf::ShutdownMode::drain);
  auto& late = server.connect();
  late.submit({99});
  EXPECT_EQ(late.count(tf::Outcome::shutdown_rejected), 1u);
}

TEST(ServerSoak, MidStormDrainShutdownLosesNothing) {
  tf::Server server(storm_options());
  constexpr std::uint64_t kClients = 8;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::uint64_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto& client = server.connect();
      std::uint64_t i = 0;
      // Keep storming until the shutdown is observed (plus a tail), so the
      // drain provably races live submissions from every client.
      while (client.count(tf::Outcome::shutdown_rejected) < 8 &&
             i < 2'000'000) {
        client.submit({c << 32 | i, static_cast<int>(i % 3), 2us});
        ++i;
      }
      client.drain();
    });
  }

  std::this_thread::sleep_for(20ms);  // let the storm build
  server.shutdown(tf::ShutdownMode::drain);  // under fire
  for (auto& t : threads) t.join();

  const auto snap = server.metrics();
  // Every handle was ready (drain() returned) and every submission landed in
  // exactly one outcome - nothing lost across the shutdown race.
  EXPECT_EQ(snap.accounted(), snap.submitted);
  EXPECT_GE(snap.outcome(tf::Outcome::shutdown_rejected), kClients);
  // drain (not abort): admitted work finished normally.
  EXPECT_EQ(snap.outcome(tf::Outcome::cancelled), 0u);
  EXPECT_EQ(snap.executor.num_topologies, 0u);
}

TEST(ServerSoak, AbortShutdownCancelsInFlightButAccountsThem) {
  tf::ServerOptions opts;
  opts.num_workers = 1;
  opts.client_window = 8;
  tf::Server server(opts);
  auto& client = server.connect();
  for (std::uint64_t i = 0; i < 8; ++i) {
    client.submit({i, 1, /*work=*/20ms});
  }
  server.shutdown(tf::ShutdownMode::abort);
  client.drain();
  const auto snap = server.metrics();
  EXPECT_EQ(snap.submitted, 8u);
  EXPECT_EQ(snap.accounted(), 8u);
  EXPECT_GE(snap.outcome(tf::Outcome::cancelled), 1u);
}

}  // namespace
