// Cross-trainer equivalence: the four Fig. 11 implementations must produce
// identical weights and losses given identical shuffles - parallelism must
// not change the arithmetic.
#include "nn/trainers.hpp"

#include <gtest/gtest.h>

namespace {

nn::TrainConfig small_config() {
  nn::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 50;
  cfg.learning_rate = 0.05f;
  cfg.num_threads = 4;
  cfg.shuffle_seed = 77;
  return cfg;
}

void expect_same_weights(const nn::Mlp& a, const nn::Mlp& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (std::size_t i = 0; i < a.num_layers(); ++i) {
    EXPECT_TRUE(a.layer(i).w == b.layer(i).w) << "weights differ at layer " << i;
    EXPECT_EQ(a.layer(i).b, b.layer(i).b) << "biases differ at layer " << i;
  }
}

class TrainerEquivalence : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(TrainerEquivalence, AllTrainersMatchSequential) {
  const auto dims = GetParam();
  const auto ds = nn::make_synthetic(400, 9);
  const auto cfg = small_config();

  nn::Mlp seq(dims, 11), tfw(dims, 11), fgr(dims, 11), omp(dims, 11);
  const auto r_seq = nn::train_sequential(seq, ds, cfg);
  const auto r_tf = nn::train_taskflow(tfw, ds, cfg);
  const auto r_fg = nn::train_flowgraph(fgr, ds, cfg);
  const auto r_omp = nn::train_openmp(omp, ds, cfg);

  expect_same_weights(seq, tfw);
  expect_same_weights(seq, fgr);
  expect_same_weights(seq, omp);
  EXPECT_FLOAT_EQ(r_seq.last_epoch_loss, r_tf.last_epoch_loss);
  EXPECT_FLOAT_EQ(r_seq.last_epoch_loss, r_fg.last_epoch_loss);
  EXPECT_FLOAT_EQ(r_seq.last_epoch_loss, r_omp.last_epoch_loss);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, TrainerEquivalence,
    ::testing::Values(std::vector<std::size_t>{784, 16, 10},
                      std::vector<std::size_t>{784, 32, 32, 10},          // paper 3-layer
                      std::vector<std::size_t>{784, 64, 32, 16, 8, 10}  // paper 5-layer
                      ));

TEST(TrainerAccounting, PaperTaskCounts) {
  // 60K images / batch 100 = 600 batches: 3-layer -> 4201 tasks/epoch,
  // 5-layer -> 6601 (paper §IV-C).
  const auto ds = nn::make_synthetic(6000, 1);  // scaled 10x down: 60 batches
  nn::TrainConfig cfg;
  cfg.batch_size = 100;
  nn::Mlp three({784, 32, 32, 10}, 1);
  nn::Mlp five({784, 64, 32, 16, 8, 10}, 1);
  EXPECT_EQ(nn::tasks_per_epoch(three, ds, cfg), 60u * 7u + 1u);
  EXPECT_EQ(nn::tasks_per_epoch(five, ds, cfg), 60u * 11u + 1u);
}

TEST(TrainerProgress, LossDecreasesAcrossEpochs) {
  const auto ds = nn::make_synthetic(500, 3);
  nn::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 50;
  cfg.learning_rate = 0.3f;
  cfg.num_threads = 2;

  nn::Mlp net1({784, 32, 10}, 5);
  const auto first = nn::train_taskflow(net1, ds, cfg);

  nn::Mlp net2({784, 32, 10}, 5);
  cfg.epochs = 20;
  const auto many = nn::train_taskflow(net2, ds, cfg);
  EXPECT_LT(many.last_epoch_loss, first.last_epoch_loss * 0.8f);
}

TEST(TrainerConfig, StorageCountRespectsCaps) {
  const auto ds = nn::make_synthetic(200, 1);
  nn::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 50;
  cfg.num_threads = 8;  // 2*8 = 16 storages, but only 2 epochs
  nn::Mlp net({784, 16, 10}, 1);
  // Must not crash or deadlock with storages > epochs.
  const auto r = nn::train_taskflow(net, ds, cfg);
  EXPECT_GT(r.total_tasks, 0u);
}

TEST(TrainerConfig, SingleThreadAllTrainersComplete) {
  const auto ds = nn::make_synthetic(200, 2);
  nn::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 50;
  cfg.num_threads = 1;

  nn::Mlp a({784, 16, 10}, 3), b({784, 16, 10}, 3), c({784, 16, 10}, 3),
      d({784, 16, 10}, 3);
  const auto rs = nn::train_sequential(a, ds, cfg);
  const auto rt = nn::train_taskflow(b, ds, cfg);
  const auto rf = nn::train_flowgraph(c, ds, cfg);
  const auto ro = nn::train_openmp(d, ds, cfg);
  EXPECT_FLOAT_EQ(rs.last_epoch_loss, rt.last_epoch_loss);
  EXPECT_FLOAT_EQ(rs.last_epoch_loss, rf.last_epoch_loss);
  EXPECT_FLOAT_EQ(rs.last_epoch_loss, ro.last_epoch_loss);
}

TEST(TrainerResult, ReportsTiming) {
  const auto ds = nn::make_synthetic(100, 4);
  nn::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 50;
  nn::Mlp net({784, 16, 10}, 1);
  const auto r = nn::train_taskflow(net, ds, cfg);
  EXPECT_GT(r.elapsed_ms, 0.0);
  EXPECT_EQ(r.total_tasks, 1u * (2u * 5u + 1u));  // 2 batches * (1+2+2) + 1
}

}  // namespace
