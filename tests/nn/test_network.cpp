#include "nn/network.hpp"
#include "nn/mnist.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using nn::Matrix;

std::vector<int> labels_mod(std::size_t n) {
  std::vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i % 10);
  return v;
}

TEST(Mlp, ShapesOfPaperArchitectures) {
  nn::Mlp three({784, 32, 32, 10}, 1);
  EXPECT_EQ(three.num_layers(), 3u);
  EXPECT_EQ(three.tasks_per_batch(), 7u);  // 1 F + 3 G + 3 U
  nn::Mlp five({784, 64, 32, 16, 8, 10}, 1);
  EXPECT_EQ(five.num_layers(), 5u);
  EXPECT_EQ(five.tasks_per_batch(), 11u);
  EXPECT_EQ(five.layer(0).w.rows(), 784u);
  EXPECT_EQ(five.layer(0).w.cols(), 64u);
  EXPECT_EQ(five.layer(4).w.cols(), 10u);
}

TEST(Mlp, InitialLossNearUniform) {
  // Softmax cross-entropy at random init must be about ln(10).
  nn::Mlp net({784, 32, 10}, 3);
  const auto ds = nn::make_synthetic(100, 1);
  const float loss = net.forward(ds.images, ds.labels);
  EXPECT_NEAR(loss, std::log(10.0f), 0.3f);
}

TEST(Mlp, SeedReproducibility) {
  nn::Mlp a({784, 16, 10}, 42);
  nn::Mlp b({784, 16, 10}, 42);
  EXPECT_TRUE(a.layer(0).w == b.layer(0).w);
  nn::Mlp c({784, 16, 10}, 43);
  EXPECT_FALSE(a.layer(0).w == c.layer(0).w);
}

TEST(Mlp, NumericalGradientCheck) {
  // Finite-difference check of dW on a tiny network: the backbone
  // correctness proof for every trainer.
  nn::Mlp net({6, 5, 4}, 7);
  support::Xoshiro256 rng(9);
  Matrix x = Matrix::randn(3, 6, 1.0, rng);
  std::vector<int> y{0, 2, 3};

  (void)net.forward(x, y);
  for (std::size_t i = net.num_layers(); i-- > 0;) net.backward_layer(i);

  // Probe several weights in each layer.
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    auto& layer = const_cast<nn::Dense&>(net.layer(li));
    for (std::size_t probe = 0; probe < 5; ++probe) {
      const std::size_t r = probe % layer.w.rows();
      const std::size_t c = (probe * 3) % layer.w.cols();
      const float analytic = layer.dw(r, c);

      const float eps = 1e-3f;
      const float orig = layer.w(r, c);
      layer.w(r, c) = orig + eps;
      const float lp = net.forward(x, y);
      layer.w(r, c) = orig - eps;
      const float lm = net.forward(x, y);
      layer.w(r, c) = orig;
      const float numeric = (lp - lm) / (2 * eps);

      EXPECT_NEAR(analytic, numeric, 5e-3f)
          << "layer " << li << " w(" << r << "," << c << ")";
    }
    // Restore caches for the next layer's analytic gradients.
    (void)net.forward(x, y);
    for (std::size_t i = net.num_layers(); i-- > 0;) net.backward_layer(i);
  }
}

TEST(Mlp, TrainingReducesLossOnSyntheticData) {
  nn::Mlp net({784, 32, 10}, 5);
  const auto ds = nn::make_synthetic(500, 2);
  Matrix batch(100, 784);
  std::vector<int> labels(100);

  float first = 0.0f, last = 0.0f;
  for (int epoch = 0; epoch < 30; ++epoch) {
    float sum = 0.0f;
    for (std::size_t b = 0; b < 5; ++b) {
      for (std::size_t r = 0; r < 100; ++r) {
        std::copy_n(ds.images.row(b * 100 + r), 784, batch.row(r));
        labels[r] = ds.labels[b * 100 + r];
      }
      sum += net.train_step(batch, labels, 0.5f);
    }
    if (epoch == 0) first = sum / 5;
    last = sum / 5;
  }
  EXPECT_LT(last, first * 0.7f);
}

TEST(Mlp, AccuracyImprovesOverChance) {
  nn::Mlp net({784, 32, 10}, 5);
  const auto ds = nn::make_synthetic(1000, 2);
  Matrix batch(100, 784);
  std::vector<int> labels(100);
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (std::size_t b = 0; b < 10; ++b) {
      for (std::size_t r = 0; r < 100; ++r) {
        std::copy_n(ds.images.row(b * 100 + r), 784, batch.row(r));
        labels[r] = ds.labels[b * 100 + r];
      }
      net.train_step(batch, labels, 0.5f);
    }
  }
  EXPECT_GT(net.accuracy(ds.images, ds.labels), 0.5f);  // chance = 0.1
}

TEST(Mlp, UpdateLayerAppliesSgdStep) {
  nn::Mlp net({4, 3, 2}, 1);
  support::Xoshiro256 rng(2);
  Matrix x = Matrix::randn(2, 4, 1.0, rng);
  std::vector<int> y{0, 1};
  (void)net.forward(x, y);
  for (std::size_t i = net.num_layers(); i-- > 0;) net.backward_layer(i);

  const float w_before = net.layer(0).w(0, 0);
  const float g = net.layer(0).dw(0, 0);
  const_cast<nn::Mlp&>(net).update_layer(0, 0.1f);
  EXPECT_NEAR(net.layer(0).w(0, 0), w_before - 0.1f * g, 1e-6f);
}

TEST(Mlp, StepOrderMatchesDecomposedCalls) {
  // train_step must equal the decomposed F / G_i / U_i call sequence.
  nn::Mlp a({10, 8, 6, 4}, 3);
  nn::Mlp b({10, 8, 6, 4}, 3);
  support::Xoshiro256 rng(4);
  Matrix x = Matrix::randn(5, 10, 1.0, rng);
  std::vector<int> y{0, 1, 2, 3, 0};

  const float la = a.train_step(x, y, 0.01f);
  const float lb = b.forward(x, y);
  for (std::size_t i = b.num_layers(); i-- > 0;) b.backward_layer(i);
  for (std::size_t i = 0; i < b.num_layers(); ++i) b.update_layer(i, 0.01f);

  EXPECT_FLOAT_EQ(la, lb);
  for (std::size_t i = 0; i < a.num_layers(); ++i) {
    EXPECT_TRUE(a.layer(i).w == b.layer(i).w) << "layer " << i;
  }
}

}  // namespace
