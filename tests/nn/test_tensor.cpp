#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using nn::Matrix;

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.row(1)[2], 5.0f);
}

TEST(Matrix, FillAndResize) {
  Matrix m(2, 2);
  m.fill(3.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 3.0f);
  m.resize(3, 1);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_FLOAT_EQ(m(2, 0), 0.0f);  // resize zeroes
}

TEST(Matrix, RandnMoments) {
  support::Xoshiro256 rng(3);
  const auto m = Matrix::randn(100, 100, 0.5, rng);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  const double mean = sum / static_cast<double>(m.size());
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(sq / static_cast<double>(m.size()) - mean * mean, 0.25, 0.01);
}

TEST(Gemm, KnownProduct) {
  Matrix a(2, 3), b(3, 2), c;
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  nn::gemm(a, b, c);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(Gemm, TransposedVariantsAgreeWithExplicitTranspose) {
  support::Xoshiro256 rng(5);
  const auto a = Matrix::randn(7, 4, 1.0, rng);
  const auto b = Matrix::randn(7, 5, 1.0, rng);

  // at = a^T explicitly.
  Matrix at(4, 7);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 4; ++c) at(c, r) = a(r, c);
  }
  Matrix expected, got;
  nn::gemm(at, b, expected);
  nn::gemm_tn(a, b, got);
  ASSERT_EQ(expected.rows(), got.rows());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-4f);
  }
}

TEST(Gemm, NtVariantAgrees) {
  support::Xoshiro256 rng(6);
  const auto a = Matrix::randn(3, 6, 1.0, rng);
  const auto b = Matrix::randn(5, 6, 1.0, rng);
  Matrix bt(6, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 6; ++c) bt(c, r) = b(r, c);
  }
  Matrix expected, got;
  nn::gemm(a, bt, expected);
  nn::gemm_nt(a, b, got);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-4f);
  }
}

TEST(Axpy, AddsScaled) {
  Matrix x(1, 3), y(1, 3);
  x(0, 0) = 1;
  x(0, 1) = 2;
  x(0, 2) = 3;
  y.fill(10.0f);
  nn::axpy(-2.0f, x, y);
  EXPECT_FLOAT_EQ(y(0, 0), 8.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 6.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 4.0f);
}

TEST(AddBias, PerColumn) {
  Matrix m(2, 2);
  nn::add_bias(m, {1.0f, -1.0f});
  EXPECT_FLOAT_EQ(m(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m(0, 1), -1.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 1.0f);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Matrix m(2, 3);
  m(0, 0) = 1.0f;
  m(0, 1) = 2.0f;
  m(0, 2) = 3.0f;
  m(1, 0) = -100.0f;
  m(1, 1) = 0.0f;
  m(1, 2) = 100.0f;  // stability test
  nn::softmax_rows(m);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GE(m(r, c), 0.0f);
      sum += m(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_LT(m(0, 0), m(0, 2));
  EXPECT_NEAR(m(1, 2), 1.0f, 1e-5f);
  EXPECT_TRUE(std::isfinite(m(1, 0)));
}

TEST(Argmax, FindsLargestColumn) {
  Matrix m(2, 4);
  m(0, 2) = 5.0f;
  m(1, 0) = 1.0f;
  EXPECT_EQ(nn::argmax_row(m, 0), 2u);
  EXPECT_EQ(nn::argmax_row(m, 1), 0u);
}

}  // namespace
