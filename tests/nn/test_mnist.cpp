#include "nn/mnist.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace {

TEST(SyntheticMnist, ShapesAndRanges) {
  const auto ds = nn::make_synthetic(1000, 7);
  EXPECT_EQ(ds.size(), 1000u);
  EXPECT_EQ(ds.images.rows(), 1000u);
  EXPECT_EQ(ds.images.cols(), nn::kMnistPixels);
  for (std::size_t i = 0; i < ds.images.size(); ++i) {
    ASSERT_GE(ds.images.data()[i], 0.0f);
    ASSERT_LE(ds.images.data()[i], 1.0f);
  }
  for (int l : ds.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, nn::kMnistClasses);
  }
}

TEST(SyntheticMnist, Deterministic) {
  const auto a = nn::make_synthetic(200, 11);
  const auto b = nn::make_synthetic(200, 11);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_TRUE(a.images == b.images);
}

TEST(SyntheticMnist, SeedChangesImages) {
  const auto a = nn::make_synthetic(100, 1);
  const auto b = nn::make_synthetic(100, 2);
  EXPECT_FALSE(a.images == b.images);
}

TEST(SyntheticMnist, ClassBalanced) {
  const auto ds = nn::make_synthetic(1000, 3);
  std::vector<int> counts(10, 0);
  for (int l : ds.labels) counts[static_cast<std::size_t>(l)]++;
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(SyntheticMnist, ClassesAreSeparable) {
  // Same-class images must be closer (on average) than cross-class images -
  // otherwise training-loss curves would be meaningless.
  const auto ds = nn::make_synthetic(200, 5);
  auto dist = [&](std::size_t i, std::size_t j) {
    double d = 0.0;
    for (std::size_t p = 0; p < nn::kMnistPixels; ++p) {
      const double diff = ds.images(i, p) - ds.images(j, p);
      d += diff * diff;
    }
    return d;
  };
  double same = 0.0, cross = 0.0;
  int n_same = 0, n_cross = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = i + 1; j < 50; ++j) {
      if (ds.labels[i] == ds.labels[j]) {
        same += dist(i, j);
        ++n_same;
      } else {
        cross += dist(i, j);
        ++n_cross;
      }
    }
  }
  EXPECT_LT(same / n_same, cross / n_cross);
}

class IdxFiles : public ::testing::Test {
 protected:
  std::string img_path = ::testing::TempDir() + "/t10k-images-test";
  std::string lab_path = ::testing::TempDir() + "/t10k-labels-test";

  static void write_be32(std::ofstream& o, std::uint32_t v) {
    const unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                                static_cast<unsigned char>(v >> 16),
                                static_cast<unsigned char>(v >> 8),
                                static_cast<unsigned char>(v)};
    o.write(reinterpret_cast<const char*>(b), 4);
  }

  void write_valid(int n) {
    std::ofstream img(img_path, std::ios::binary);
    write_be32(img, 0x00000803u);
    write_be32(img, static_cast<std::uint32_t>(n));
    write_be32(img, 28);
    write_be32(img, 28);
    for (int i = 0; i < n * 784; ++i) {
      const char c = static_cast<char>(i % 256);
      img.write(&c, 1);
    }
    std::ofstream lab(lab_path, std::ios::binary);
    write_be32(lab, 0x00000801u);
    write_be32(lab, static_cast<std::uint32_t>(n));
    for (int i = 0; i < n; ++i) {
      const char c = static_cast<char>(i % 10);
      lab.write(&c, 1);
    }
  }

  void TearDown() override {
    std::remove(img_path.c_str());
    std::remove(lab_path.c_str());
  }
};

TEST_F(IdxFiles, LoadsValidFiles) {
  write_valid(5);
  const auto ds = nn::load_idx(img_path, lab_path);
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds.labels[3], 3);
  EXPECT_NEAR(ds.images(0, 1), 1.0f / 255.0f, 1e-6f);
}

TEST_F(IdxFiles, RejectsBadMagic) {
  write_valid(2);
  {
    std::ofstream img(img_path, std::ios::binary);
    write_be32(img, 0xdeadbeefu);
  }
  EXPECT_THROW((void)nn::load_idx(img_path, lab_path), std::runtime_error);
}

TEST_F(IdxFiles, RejectsTruncatedImages) {
  {
    std::ofstream img(img_path, std::ios::binary);
    write_be32(img, 0x00000803u);
    write_be32(img, 3);
    write_be32(img, 28);
    write_be32(img, 28);
    const char c = 0;
    img.write(&c, 1);  // far too short
  }
  {
    std::ofstream lab(lab_path, std::ios::binary);
    write_be32(lab, 0x00000801u);
    write_be32(lab, 3);
    const char c[3] = {0, 1, 2};
    lab.write(c, 3);
  }
  EXPECT_THROW((void)nn::load_idx(img_path, lab_path), std::runtime_error);
}

TEST_F(IdxFiles, MissingFileThrows) {
  EXPECT_THROW((void)nn::load_idx("/no/such/images", "/no/such/labels"),
               std::runtime_error);
}

TEST(LoadOrSynthesize, FallsBackToSynthetic) {
  const auto ds = nn::load_or_synthesize("/definitely/not/a/dir", 300, 1);
  EXPECT_EQ(ds.size(), 300u);
}

}  // namespace
