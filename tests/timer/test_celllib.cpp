#include "timer/celllib.hpp"

#include <gtest/gtest.h>

namespace {

class SyntheticLib : public ::testing::Test {
 protected:
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();
};

TEST_F(SyntheticLib, HasIoPseudoCells) {
  EXPECT_EQ(lib.input_cell().kind, ot::CellKind::Input);
  EXPECT_EQ(lib.output_cell().kind, ot::CellKind::Output);
  EXPECT_EQ(lib.input_cell().num_inputs(), 0);
  EXPECT_EQ(lib.output_cell().num_inputs(), 1);
  EXPECT_EQ(lib.output_cell().output_pin(), -1);
}

TEST_F(SyntheticLib, AllKindsInThreeDrives) {
  for (ot::CellKind kind :
       {ot::CellKind::Inv, ot::CellKind::Buf, ot::CellKind::Nand2, ot::CellKind::Nor2,
        ot::CellKind::And2, ot::CellKind::Or2, ot::CellKind::Xor2, ot::CellKind::Aoi21,
        ot::CellKind::Oai21, ot::CellKind::Dff}) {
    const auto v = lib.variants(kind);
    ASSERT_EQ(v.size(), 3u) << ot::to_string(kind);
    EXPECT_EQ(v[0]->drive, 1);
    EXPECT_EQ(v[1]->drive, 2);
    EXPECT_EQ(v[2]->drive, 4);
  }
}

TEST_F(SyntheticLib, LookupByName) {
  EXPECT_NE(lib.find("NAND2_X1"), nullptr);
  EXPECT_NE(lib.find("INV_X4"), nullptr);
  EXPECT_EQ(lib.find("NAND9_X1"), nullptr);
  EXPECT_THROW((void)lib.at("NAND9_X1"), std::out_of_range);
  EXPECT_EQ(lib.at("DFF_X2").drive, 2);
}

TEST_F(SyntheticLib, OneArcPerCombinationalInput) {
  const ot::Cell& nand2 = lib.at("NAND2_X1");
  EXPECT_EQ(nand2.num_inputs(), 2);
  EXPECT_EQ(nand2.arcs.size(), 2u);
  const ot::Cell& aoi = lib.at("AOI21_X1");
  EXPECT_EQ(aoi.num_inputs(), 3);
  EXPECT_EQ(aoi.arcs.size(), 3u);
}

TEST_F(SyntheticLib, DffHasOnlyClkToQArc) {
  const ot::Cell& dff = lib.at("DFF_X1");
  EXPECT_TRUE(dff.is_sequential());
  ASSERT_EQ(dff.arcs.size(), 1u);
  EXPECT_TRUE(dff.pins[static_cast<std::size_t>(dff.arcs[0].from_pin)].is_clock);
  // D pin exists, is an input, and carries no arc.
  bool has_d = false;
  for (const auto& p : dff.pins) has_d |= (p.name == "D" && p.is_input);
  EXPECT_TRUE(has_d);
}

TEST_F(SyntheticLib, HigherDriveIsFasterUnderLoad) {
  const ot::Cell& x1 = lib.at("NAND2_X1");
  const ot::Cell& x4 = lib.at("NAND2_X4");
  // Same intrinsic family, lower resistance at higher drive.
  EXPECT_LT(x4.arcs[0].resistance[ot::kRise], x1.arcs[0].resistance[ot::kRise]);
  // But larger input capacitance (the resize trade-off).
  EXPECT_GT(x4.pins[0].capacitance, x1.pins[0].capacitance);
}

TEST_F(SyntheticLib, UnatenessBySenseConvention) {
  EXPECT_EQ(lib.at("INV_X1").arcs[0].sense, ot::TimingSense::NegativeUnate);
  EXPECT_EQ(lib.at("BUF_X1").arcs[0].sense, ot::TimingSense::PositiveUnate);
  EXPECT_EQ(lib.at("XOR2_X1").arcs[0].sense, ot::TimingSense::NonUnate);
}

TEST_F(SyntheticLib, CombinationalQueryByInputCount) {
  const auto two = lib.combinational_with_inputs(2);
  // NAND2/NOR2/AND2/OR2/XOR2 in three drives each.
  EXPECT_EQ(two.size(), 15u);
  const auto one = lib.combinational_with_inputs(1);
  EXPECT_EQ(one.size(), 6u);  // INV, BUF x 3 drives
  const auto three = lib.combinational_with_inputs(3);
  EXPECT_EQ(three.size(), 6u);  // AOI21, OAI21 x 3 drives
}

TEST_F(SyntheticLib, KindNamesRoundTrip) {
  EXPECT_STREQ(ot::to_string(ot::CellKind::Nand2), "NAND2");
  EXPECT_STREQ(ot::to_string(ot::CellKind::Dff), "DFF");
}

}  // namespace
