// Liberty reader/writer: the synthetic library must round-trip exactly, and
// malformed inputs must produce line-numbered errors.
#include "timer/liberty.hpp"
#include "timer/timers.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

class LibertyTest : public ::testing::Test {
 protected:
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();
};

TEST_F(LibertyTest, WriterEmitsAllCells) {
  std::stringstream ss;
  ot::write_liberty(ss, lib);
  const std::string text = ss.str();
  EXPECT_NE(text.find("library (synthetic45)"), std::string::npos);
  EXPECT_NE(text.find("cell (NAND2_X1)"), std::string::npos);
  EXPECT_NE(text.find("cell (DFF_X4)"), std::string::npos);
  EXPECT_NE(text.find("timing_sense : negative_unate"), std::string::npos);
  EXPECT_NE(text.find("cell_rise"), std::string::npos);
  EXPECT_NE(text.find("index_1"), std::string::npos);
  // IO pseudo cells must NOT leak into the Liberty file.
  EXPECT_EQ(text.find("__PI__"), std::string::npos);
}

TEST_F(LibertyTest, RoundTripPreservesEverything) {
  std::stringstream ss;
  ot::write_liberty(ss, lib);
  const auto parsed = ot::parse_liberty(ss);

  EXPECT_EQ(parsed.size(), lib.size());
  for (const ot::Cell& orig : lib.cells()) {
    const ot::Cell* got = parsed.find(orig.name);
    ASSERT_NE(got, nullptr) << orig.name;
    EXPECT_EQ(got->kind, orig.kind);
    EXPECT_EQ(got->drive, orig.drive);
    ASSERT_EQ(got->pins.size(), orig.pins.size());
    for (std::size_t p = 0; p < orig.pins.size(); ++p) {
      EXPECT_EQ(got->pins[p].name, orig.pins[p].name);
      EXPECT_EQ(got->pins[p].is_input, orig.pins[p].is_input);
      EXPECT_EQ(got->pins[p].is_clock, orig.pins[p].is_clock);
      EXPECT_DOUBLE_EQ(got->pins[p].capacitance, orig.pins[p].capacitance);
    }
    ASSERT_EQ(got->arcs.size(), orig.arcs.size());
    for (std::size_t a = 0; a < orig.arcs.size(); ++a) {
      EXPECT_EQ(got->arcs[a].from_pin, orig.arcs[a].from_pin);
      EXPECT_EQ(got->arcs[a].sense, orig.arcs[a].sense);
      for (int t = 0; t < 2; ++t) {
        const auto tt = static_cast<std::size_t>(t);
        EXPECT_EQ(got->arcs[a].delay_lut[tt].value, orig.arcs[a].delay_lut[tt].value);
        EXPECT_EQ(got->arcs[a].slew_lut[tt].value, orig.arcs[a].slew_lut[tt].value);
        EXPECT_EQ(got->arcs[a].delay_lut[tt].slew_axis,
                  orig.arcs[a].delay_lut[tt].slew_axis);
      }
    }
  }
}

TEST_F(LibertyTest, ParsedLibraryDrivesTheTimerIdentically) {
  std::stringstream ss;
  ot::write_liberty(ss, lib);
  const auto parsed = ot::parse_liberty(ss);

  ot::CircuitSpec spec;
  spec.num_gates = 300;
  spec.seed = 12;
  auto nl_a = ot::make_circuit(lib, spec);
  auto nl_b = ot::make_circuit(parsed, spec);

  ot::TimerOptions opt;
  opt.num_threads = 2;
  ot::SeqTimer ta(nl_a, opt);
  ot::SeqTimer tb(nl_b, opt);
  ta.full_update();
  tb.full_update();
  EXPECT_DOUBLE_EQ(ta.worst_slack(), tb.worst_slack());
}

TEST_F(LibertyTest, CommentsAndWhitespaceTolerated) {
  std::stringstream ss;
  ss << "/* header */\n"
        "library (mini) { // inline\n"
        "  cell (INV_X1) {\n"
        "    drive_strength : 1;\n"
        "    pin (A) { direction : input; capacitance : 1.0; }\n"
        "    pin (Y) { direction : output; }\n"
        "  }\n"
        "}\n";
  const auto parsed = ot::parse_liberty(ss);
  const ot::Cell* inv = parsed.find("INV_X1");
  ASSERT_NE(inv, nullptr);
  EXPECT_EQ(inv->kind, ot::CellKind::Inv);
  EXPECT_EQ(inv->num_inputs(), 1);
}

TEST_F(LibertyTest, FfGroupMarksSequential) {
  std::stringstream ss;
  ss << "library (mini) {\n"
        "  cell (MYDFF_X1) {\n"  // name alone would not say DFF
        "    ff (IQ, IQN) { }\n"
        "    pin (CLK) { direction : input; capacitance : 1.0; clock : true; }\n"
        "    pin (D) { direction : input; capacitance : 1.0; }\n"
        "    pin (Q) { direction : output; }\n"
        "  }\n"
        "}\n";
  const auto parsed = ot::parse_liberty(ss);
  const ot::Cell* dff = parsed.find("MYDFF_X1");
  ASSERT_NE(dff, nullptr);
  EXPECT_TRUE(dff->is_sequential());
  EXPECT_TRUE(dff->pins[0].is_clock);
}

TEST_F(LibertyTest, RejectsMissingLibraryGroup) {
  std::stringstream ss("cell (X) { }\n");
  EXPECT_THROW((void)ot::parse_liberty(ss), std::runtime_error);
}

TEST_F(LibertyTest, RejectsUnknownSense) {
  std::stringstream ss;
  ss << "library (m) { cell (INV_X1) {\n"
        "  pin (A) { direction : input; capacitance : 1; }\n"
        "  pin (Y) { direction : output;\n"
        "    timing () { related_pin : \"A\"; timing_sense : sideways; }\n"
        "  } } }\n";
  EXPECT_THROW((void)ot::parse_liberty(ss), std::runtime_error);
}

TEST_F(LibertyTest, RejectsUnknownRelatedPin) {
  std::stringstream ss;
  ss << "library (m) { cell (INV_X1) {\n"
        "  pin (A) { direction : input; capacitance : 1; }\n"
        "  pin (Y) { direction : output;\n"
        "    timing () { related_pin : \"Z\"; }\n"
        "  } } }\n";
  EXPECT_THROW((void)ot::parse_liberty(ss), std::runtime_error);
}

TEST_F(LibertyTest, MissingFileThrows) {
  EXPECT_THROW((void)ot::parse_liberty_file("/no/such.lib"), std::runtime_error);
}

}  // namespace
