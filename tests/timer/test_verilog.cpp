// Structural Verilog reader/writer round trips and error handling.
#include "timer/verilog.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "timer/timers.hpp"

namespace {

class VerilogTest : public ::testing::Test {
 protected:
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();

  static constexpr const char* kSample = R"(
// a tiny sample design
module sample (a, b, clock, y);
  input a, b, clock;
  output y;
  wire w1, w2, w3;
  NAND2_X1 u1 ( .A(a), .B(b), .Y(w1) );
  DFF_X1   f1 ( .CLK(clock), .D(w1), .Q(w2) );
  INV_X2   u2 ( .A(w2), .Y(w3) );
  NAND2_X1 u3 ( .A(w1), .B(w3), .Y(y) );
endmodule
)";
};

TEST_F(VerilogTest, ParsesSampleDesign) {
  std::stringstream ss(kSample);
  const auto nl = ot::parse_verilog(ss, lib);
  EXPECT_EQ(nl.num_gates(), 4u + 4u);  // 4 instances + 3 PI + 1 PO
  EXPECT_EQ(nl.num_nets(), 7u);        // a b clock y w1 w2 w3
  const int u1 = nl.find_gate("u1");
  ASSERT_GE(u1, 0);
  EXPECT_EQ(nl.gate(u1).cell->name, "NAND2_X1");
  const int f1 = nl.find_gate("f1");
  ASSERT_GE(f1, 0);
  EXPECT_TRUE(nl.gate(f1).cell->is_sequential());
}

TEST_F(VerilogTest, ParsedDesignIsTimable) {
  std::stringstream ss(kSample);
  auto nl = ot::parse_verilog(ss, lib);
  ot::TimerOptions opt;
  opt.num_threads = 2;
  opt.clock_period = 2.0;
  ot::SeqTimer timer(nl, opt);
  timer.full_update();
  EXPECT_TRUE(std::isfinite(timer.worst_slack()));
  EXPECT_LT(timer.worst_slack(), opt.clock_period);
}

TEST_F(VerilogTest, WriterRoundTripsGeneratedCircuit) {
  ot::CircuitSpec spec;
  spec.num_gates = 400;
  spec.seed = 6;
  spec.wire_cap_min = 1.0;  // Verilog carries no wire caps: fix them so the
  spec.wire_cap_max = 1.0;  // round trip preserves timing exactly
  auto nl = ot::make_circuit(lib, spec);

  std::stringstream ss;
  ot::write_verilog(ss, nl, "generated");
  auto parsed = ot::parse_verilog(ss, lib, /*default_wire_cap=*/1.0);

  EXPECT_EQ(parsed.num_gates(), nl.num_gates());
  EXPECT_EQ(parsed.num_nets(), nl.num_nets());
  EXPECT_EQ(parsed.num_pins(), nl.num_pins());

  ot::TimerOptions opt;
  opt.num_threads = 2;
  ot::SeqTimer ta(nl, opt);
  ot::SeqTimer tb(parsed, opt);
  ta.full_update();
  tb.full_update();
  EXPECT_DOUBLE_EQ(ta.worst_slack(), tb.worst_slack());
}

TEST_F(VerilogTest, RejectsUnknownCell) {
  std::stringstream ss(
      "module m (a, y);\n input a;\n output y;\n FOO_X9 u1 ( .A(a), .Y(y) );\n"
      "endmodule\n");
  EXPECT_THROW((void)ot::parse_verilog(ss, lib), std::runtime_error);
}

TEST_F(VerilogTest, RejectsUnknownPin) {
  std::stringstream ss(
      "module m (a, y);\n input a;\n output y;\n INV_X1 u1 ( .Q(a), .Y(y) );\n"
      "endmodule\n");
  EXPECT_THROW((void)ot::parse_verilog(ss, lib), std::runtime_error);
}

TEST_F(VerilogTest, RejectsUndeclaredNet) {
  std::stringstream ss(
      "module m (a, y);\n input a;\n output y;\n INV_X1 u1 ( .A(ghost), .Y(y) );\n"
      "endmodule\n");
  EXPECT_THROW((void)ot::parse_verilog(ss, lib), std::runtime_error);
}

TEST_F(VerilogTest, RejectsMissingEndmodule) {
  std::stringstream ss("module m (a);\n input a;\n");
  EXPECT_THROW((void)ot::parse_verilog(ss, lib), std::runtime_error);
}

TEST_F(VerilogTest, CommentsIgnored) {
  std::stringstream ss(
      "// c1\nmodule m (a, y);\n/* c2\n c3 */ input a;\n output y;\n"
      " INV_X1 u1 ( .A(a), .Y(y) ); // trailing\nendmodule\n");
  const auto nl = ot::parse_verilog(ss, lib);
  EXPECT_EQ(nl.num_gates(), 3u);
}

}  // namespace
