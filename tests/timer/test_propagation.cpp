// STA propagation kernels: hand-computed golden values on tiny circuits plus
// structural invariants on generated ones.
#include "timer/propagation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

class PropTest : public ::testing::Test {
 protected:
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();
  ot::TimerOptions opt;

  PropTest() {
    opt.clock_period = 2.0;
    opt.input_slew = 0.05;
    opt.setup = 0.05;
  }

  // in -> BUF -> out (positive-unate single arc; easiest golden check).
  ot::Netlist buf1() {
    ot::Netlist nl(lib);
    const int a = nl.add_net("a", 1.0);
    const int y = nl.add_net("y", 2.0);
    nl.add_primary_input("in", a);
    const int g = nl.add_gate("u", lib.at("BUF_X1"));
    nl.connect(g, 0, a);
    nl.connect(g, 1, y);
    nl.add_primary_output("out", y);
    nl.validate();
    return nl;
  }

  void full_seq(const ot::Netlist& nl, const ot::TimingGraph& g, ot::TimingState& st) {
    for (int p : g.topo_order()) ot::propagate_pin_forward(nl, g, st, p);
    for (auto it = g.topo_order().rbegin(); it != g.topo_order().rend(); ++it) {
      ot::propagate_pin_backward(nl, g, st, *it);
    }
  }
};

TEST_F(PropTest, DelayModelExactAtGridPoints) {
  // NLDM lookup must return the characterized value exactly on grid points.
  const ot::CellArc& arc = lib.at("BUF_X1").arcs[0];
  const ot::Lut& lut = arc.delay_lut[ot::kRise];
  for (int s : {0, 3, ot::Lut::kPoints - 1}) {
    for (int l : {0, 2, ot::Lut::kPoints - 1}) {
      const double expect = lut.value[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)];
      EXPECT_DOUBLE_EQ(ot::cell_arc_delay(arc, ot::kRise,
                                          lut.load_axis[static_cast<std::size_t>(l)],
                                          lut.slew_axis[static_cast<std::size_t>(s)]),
                       expect);
    }
  }
}

TEST_F(PropTest, DelayModelBilinearBetweenPoints) {
  const ot::CellArc& arc = lib.at("BUF_X1").arcs[0];
  const ot::Lut& lut = arc.delay_lut[ot::kFall];
  // Midpoint of a grid cell = average of the four corners (bilinear).
  const double sm = 0.5 * (lut.slew_axis[2] + lut.slew_axis[3]);
  const double lm = 0.5 * (lut.load_axis[4] + lut.load_axis[5]);
  const double expect =
      0.25 * (lut.value[2][4] + lut.value[2][5] + lut.value[3][4] + lut.value[3][5]);
  EXPECT_NEAR(lut(sm, lm), expect, 1e-12);
}

TEST_F(PropTest, DelayModelClampsOutsideWindow) {
  const ot::CellArc& arc = lib.at("NAND2_X1").arcs[0];
  const ot::Lut& lut = arc.delay_lut[ot::kRise];
  EXPECT_DOUBLE_EQ(lut(1e-9, 1e-9), lut.value[0][0]);
  EXPECT_DOUBLE_EQ(lut(100.0, 1000.0),
                   lut.value[ot::Lut::kPoints - 1][ot::Lut::kPoints - 1]);
}

TEST_F(PropTest, DelayModelMonotoneInLoadAndSlew) {
  const ot::CellArc& arc = lib.at("INV_X1").arcs[0];
  double prev = -1.0;
  // Stay inside the characterized load window (values clamp beyond it).
  for (double load = 0.1; load < 15.5; load += 0.7) {
    const double d = ot::cell_arc_delay(arc, ot::kRise, load, 0.05);
    EXPECT_GT(d, prev);
    prev = d;
  }
  prev = -1.0;
  for (double slew = 0.002; slew < 0.5; slew *= 1.7) {
    const double d = ot::cell_arc_delay(arc, ot::kFall, 2.0, slew);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST_F(PropTest, SenseMappings) {
  using ot::TimingSense;
  EXPECT_TRUE(ot::sense_allows(TimingSense::PositiveUnate, ot::kRise, ot::kRise));
  EXPECT_FALSE(ot::sense_allows(TimingSense::PositiveUnate, ot::kRise, ot::kFall));
  EXPECT_TRUE(ot::sense_allows(TimingSense::NegativeUnate, ot::kRise, ot::kFall));
  EXPECT_FALSE(ot::sense_allows(TimingSense::NegativeUnate, ot::kFall, ot::kFall));
  EXPECT_TRUE(ot::sense_allows(TimingSense::NonUnate, ot::kRise, ot::kRise));
  EXPECT_TRUE(ot::sense_allows(TimingSense::NonUnate, ot::kFall, ot::kRise));
}

TEST_F(PropTest, GoldenBufferChain) {
  auto nl = buf1();
  const ot::TimingGraph g(nl);
  ot::TimingState st(nl, opt);
  full_seq(nl, g, st);

  const ot::Gate& u = nl.gate(nl.find_gate("u"));
  const int a_pin = u.pins[0];
  const int y_pin = u.pins[1];
  const int in_y = nl.gate(nl.find_gate("in")).pins[0];
  const int out_a = nl.gate(nl.find_gate("out")).pins[0];

  // Source: at 0, slew = input slew.
  EXPECT_DOUBLE_EQ(st.data(in_y).at[ot::kLate][ot::kRise], 0.0);
  EXPECT_DOUBLE_EQ(st.data(in_y).slew[ot::kLate][ot::kRise], 0.05);

  // Net arc in->u:A: wire delay = wire_cap * kWireDelayPerCap.
  const double wire_a = 1.0 * ot::kWireDelayPerCap;
  EXPECT_NEAR(st.data(a_pin).at[ot::kLate][ot::kRise], wire_a, 1e-12);
  EXPECT_NEAR(st.data(a_pin).slew[ot::kLate][ot::kRise], 0.05, 1e-12);

  // Cell arc A->Y: load = net y wire 2.0 + out pin cap.
  const double load = 2.0 + lib.output_cell().pins[0].capacitance;
  const ot::CellArc& arc = lib.at("BUF_X1").arcs[0];
  const double d_rise = ot::cell_arc_delay(arc, ot::kRise, load, 0.05);
  EXPECT_NEAR(st.data(y_pin).at[ot::kLate][ot::kRise], wire_a + d_rise, 1e-12);

  // PO pin: + wire delay of net y.
  const double wire_y = 2.0 * ot::kWireDelayPerCap;
  EXPECT_NEAR(st.data(out_a).at[ot::kLate][ot::kRise], wire_a + d_rise + wire_y, 1e-12);

  // Required at PO = clock period; slack = T - at.
  EXPECT_DOUBLE_EQ(st.data(out_a).rat[ot::kLate][ot::kRise], 2.0);
  EXPECT_NEAR(ot::late_slack(st, out_a), 2.0 - (wire_a + d_rise + wire_y), 1e-12);
}

TEST_F(PropTest, NegativeUnateSwapsTransitions) {
  // in -> INV -> out: output rise arrival comes from input fall.
  ot::Netlist nl(lib);
  const int a = nl.add_net("a", 1.0);
  const int y = nl.add_net("y", 1.0);
  nl.add_primary_input("in", a);
  const int g = nl.add_gate("u", lib.at("INV_X1"));
  nl.connect(g, 0, a);
  nl.connect(g, 1, y);
  nl.add_primary_output("out", y);
  const ot::TimingGraph tg(nl);
  ot::TimingState st(nl, opt);
  full_seq(nl, tg, st);

  const int y_pin = nl.gate(nl.find_gate("u")).pins[1];
  const ot::CellArc& arc = lib.at("INV_X1").arcs[0];
  const double load = nl.net_load(y);
  const double wire_a = 1.0 * ot::kWireDelayPerCap;
  // INV rise intrinsic (0.010) != fall intrinsic (0.008): rise-out uses the
  // rise-out model fed by the fall-in arrival.
  const double d_rise = ot::cell_arc_delay(arc, ot::kRise, load, 0.05);
  const double d_fall = ot::cell_arc_delay(arc, ot::kFall, load, 0.05);
  EXPECT_NEAR(st.data(y_pin).at[ot::kLate][ot::kRise], wire_a + d_rise, 1e-12);
  EXPECT_NEAR(st.data(y_pin).at[ot::kLate][ot::kFall], wire_a + d_fall, 1e-12);
  EXPECT_NE(d_rise, d_fall);
}

TEST_F(PropTest, EarlyLateOrdering) {
  // On any circuit: early arrival <= late arrival, early slew <= late slew.
  ot::CircuitSpec spec;
  spec.num_gates = 600;
  spec.seed = 21;
  auto nl = ot::make_circuit(lib, spec);
  const ot::TimingGraph g(nl);
  ot::TimingState st(nl, opt);
  full_seq(nl, g, st);
  for (std::size_t p = 0; p < g.num_pins(); ++p) {
    const auto& d = st.data(static_cast<int>(p));
    for (int t : {ot::kRise, ot::kFall}) {
      const auto tt = static_cast<std::size_t>(t);
      ASSERT_LE(d.at[ot::kEarly][tt], d.at[ot::kLate][tt] + 1e-12);
      ASSERT_LE(d.slew[ot::kEarly][tt], d.slew[ot::kLate][tt] + 1e-12);
      ASSERT_TRUE(std::isfinite(d.at[ot::kLate][tt]));
      ASSERT_TRUE(std::isfinite(d.rat[ot::kLate][tt]));
    }
  }
}

TEST_F(PropTest, SlackDecreasesAlongCriticalPath) {
  // The worst endpoint slack is a lower bound of every pin's late slack on
  // its input cone; globally: min over endpoints == min over all pins.
  ot::CircuitSpec spec;
  spec.num_gates = 400;
  spec.seed = 33;
  auto nl = ot::make_circuit(lib, spec);
  const ot::TimingGraph g(nl);
  ot::TimingState st(nl, opt);
  full_seq(nl, g, st);

  double min_all = ot::kInf, min_ep = ot::kInf;
  for (std::size_t p = 0; p < g.num_pins(); ++p) {
    const double s = ot::late_slack(st, static_cast<int>(p));
    min_all = std::min(min_all, s);
    if (g.is_endpoint(static_cast<int>(p))) min_ep = std::min(min_ep, s);
  }
  EXPECT_NEAR(min_all, min_ep, 1e-9);
  EXPECT_NEAR(ot::worst_late_slack(g, st), min_ep, 1e-12);
}

TEST_F(PropTest, DffDEndpointGetsSetupMargin) {
  // clock -> DFF(CLK), in -> DFF(D): required at D = T - setup.
  ot::Netlist nl(lib);
  const int nc = nl.add_net("c", 0.5);
  const int nd = nl.add_net("d", 0.5);
  const int nq = nl.add_net("q", 0.5);
  nl.add_primary_input("clock", nc);
  nl.add_primary_input("din", nd);
  const int f = nl.add_gate("f1", lib.at("DFF_X1"));
  nl.connect(f, 0, nc);
  nl.connect(f, 1, nd);
  nl.connect(f, 2, nq);
  nl.add_primary_output("qo", nq);
  const ot::TimingGraph g(nl);
  ot::TimingState st(nl, opt);
  full_seq(nl, g, st);

  const int d_pin = nl.gate(f).pins[1];
  EXPECT_DOUBLE_EQ(st.data(d_pin).rat[ot::kLate][ot::kRise], 2.0 - 0.05);
  // Q arrival = clock wire + CLK->Q delay > 0.
  const int q_pin = nl.gate(f).pins[2];
  EXPECT_GT(st.data(q_pin).at[ot::kLate][ot::kRise], 0.05);
}

TEST_F(PropTest, LoadCacheTracksResize) {
  auto nl = buf1();
  ot::TimingState st(nl, opt);
  const int in_y = nl.gate(nl.find_gate("in")).pins[0];
  const double load_before = st.load(in_y);
  nl.resize_gate(nl.find_gate("u"), lib.at("BUF_X4"));
  st.update_net_load(nl, nl.find_net("a"));
  EXPECT_GT(st.load(in_y), load_before);  // X4 input cap is larger
}

}  // namespace
