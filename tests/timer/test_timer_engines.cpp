// Engine equivalence: the OpenMP-levelized v1 and the taskflow v2 engines
// must agree with the sequential oracle on full updates and - crucially -
// across long incremental resize sequences.
#include "timer/modifier.hpp"
#include "timer/timers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace {

class EngineTest : public ::testing::Test {
 protected:
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();
  ot::TimerOptions opt;

  EngineTest() {
    opt.num_threads = 4;
    opt.clock_period = 2.0;
  }

  ot::Netlist circuit(std::size_t gates, std::uint64_t seed) {
    ot::CircuitSpec spec;
    spec.num_gates = gates;
    spec.num_inputs = 16;
    spec.seed = seed;
    return ot::make_circuit(lib, spec);
  }

  static void expect_equal_state(const ot::TimerBase& a, const ot::TimerBase& b,
                                 double tol = 1e-9) {
    ASSERT_EQ(a.graph().num_pins(), b.graph().num_pins());
    for (std::size_t p = 0; p < a.graph().num_pins(); ++p) {
      const auto& da = a.state().data(static_cast<int>(p));
      const auto& db = b.state().data(static_cast<int>(p));
      for (int s : {ot::kEarly, ot::kLate}) {
        for (int t : {ot::kRise, ot::kFall}) {
          const auto ss = static_cast<std::size_t>(s);
          const auto tt = static_cast<std::size_t>(t);
          ASSERT_NEAR(da.at[ss][tt], db.at[ss][tt], tol) << "pin " << p;
          ASSERT_NEAR(da.slew[ss][tt], db.slew[ss][tt], tol) << "pin " << p;
          ASSERT_NEAR(da.rat[ss][tt], db.rat[ss][tt], tol) << "pin " << p;
        }
      }
    }
  }
};

TEST_F(EngineTest, FullUpdateAgreesAcrossEngines) {
  auto nl_seq = circuit(1500, 77);
  auto nl_v1 = circuit(1500, 77);
  auto nl_v2 = circuit(1500, 77);

  ot::SeqTimer seq(nl_seq, opt);
  ot::TimerV1 v1(nl_v1, opt);
  ot::TimerV2 v2(nl_v2, opt);
  seq.full_update();
  v1.full_update();
  v2.full_update();

  expect_equal_state(seq, v1);
  expect_equal_state(seq, v2);
  EXPECT_TRUE(std::isfinite(seq.worst_slack()));
  EXPECT_NEAR(seq.worst_slack(), v2.worst_slack(), 1e-9);
}

TEST_F(EngineTest, IncrementalResizeMatchesFullRecompute) {
  // Oracle: after each incremental update, a from-scratch sequential
  // recompute over an identical netlist must give identical state.
  auto nl_inc = circuit(800, 13);
  auto nl_ref = circuit(800, 13);

  ot::TimerV2 inc(nl_inc, opt);
  ot::SeqTimer ref(nl_ref, opt);
  inc.full_update();
  ref.full_update();

  ot::ModifierStream mods(nl_inc, 99);
  for (int iter = 0; iter < 15; ++iter) {
    const auto m = mods.next();
    inc.resize(m.gate, *m.new_cell);
    ref.netlist().resize_gate(m.gate, *m.new_cell);
    ref.full_update();
    expect_equal_state(ref, inc);
  }
}

TEST_F(EngineTest, IncrementalV1MatchesFullRecompute) {
  auto nl_inc = circuit(800, 13);
  auto nl_ref = circuit(800, 13);

  ot::TimerV1 inc(nl_inc, opt);
  ot::SeqTimer ref(nl_ref, opt);
  inc.full_update();
  ref.full_update();

  ot::ModifierStream mods(nl_inc, 99);
  for (int iter = 0; iter < 15; ++iter) {
    const auto m = mods.next();
    inc.resize(m.gate, *m.new_cell);
    ref.netlist().resize_gate(m.gate, *m.new_cell);
    ref.full_update();
    expect_equal_state(ref, inc);
  }
}

TEST_F(EngineTest, SequentialIncrementalAlsoMatches) {
  // The cone algebra itself (independent of parallel execution).
  auto nl_inc = circuit(600, 5);
  auto nl_ref = circuit(600, 5);
  ot::SeqTimer inc(nl_inc, opt);
  ot::SeqTimer ref(nl_ref, opt);
  inc.full_update();
  ref.full_update();
  ot::ModifierStream mods(nl_inc, 7);
  for (int iter = 0; iter < 25; ++iter) {
    const auto m = mods.next();
    inc.resize(m.gate, *m.new_cell);
    ref.netlist().resize_gate(m.gate, *m.new_cell);
    ref.full_update();
    expect_equal_state(ref, inc);
  }
}

TEST_F(EngineTest, ResizeIsObservableAndInvertible) {
  auto nl = circuit(500, 3);
  auto nl_ref = circuit(500, 3);
  ot::SeqTimer t(nl, opt);
  ot::SeqTimer ref(nl_ref, opt);
  t.full_update();
  ref.full_update();

  // Find a resizable gate and move it along its drive ladder.
  ot::ModifierStream mods(nl, 17);
  const auto m = mods.next();
  const ot::Cell* original = nl.gate(m.gate).cell;

  t.resize(m.gate, *m.new_cell);
  // The gate's output arrival must have changed (resistance differs and its
  // output net carries a positive load).
  const int out_pin = nl.gate(m.gate).pins[static_cast<std::size_t>(
      nl.gate(m.gate).cell->output_pin())];
  EXPECT_NE(t.arrival(out_pin, ot::kLate, ot::kRise),
            ref.arrival(out_pin, ot::kLate, ot::kRise));

  // Resizing back restores the exact original analysis state.
  t.resize(m.gate, *original);
  expect_equal_state(ref, t, 0.0);
}

TEST_F(EngineTest, LastUpdateTaskCountsReported) {
  auto nl = circuit(700, 19);
  ot::TimerV2 t(nl, opt);
  t.full_update();
  EXPECT_EQ(t.last_update_tasks(), 2 * nl.num_pins());
  ot::ModifierStream mods(nl, 1);
  const auto m = mods.next();
  t.resize(m.gate, *m.new_cell);
  EXPECT_GT(t.last_update_tasks(), 0u);
  EXPECT_LE(t.last_update_tasks(), 2 * nl.num_pins());
}

TEST_F(EngineTest, V1ReportsLevelBuckets) {
  auto nl = circuit(400, 23);
  ot::TimerV1 t(nl, opt);
  t.full_update();
  EXPECT_GT(t.last_num_levels(), 2u);
}

TEST_F(EngineTest, V2DumpsTaskGraphOnSmallUpdates) {
  auto nl = circuit(60, 2);
  ot::TimerV2 t(nl, opt);
  t.full_update();
  const auto dot = t.dump_last_task_graph();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("fwd:"), std::string::npos);
  EXPECT_NE(dot.find("bwd:"), std::string::npos);
}

TEST_F(EngineTest, WorstSlackQueriesAgreeAfterManyMods) {
  auto nl_v1 = circuit(1000, 41);
  auto nl_v2 = circuit(1000, 41);
  ot::TimerV1 v1(nl_v1, opt);
  ot::TimerV2 v2(nl_v2, opt);
  v1.full_update();
  v2.full_update();
  ot::ModifierStream m1(nl_v1, 5);
  ot::ModifierStream m2(nl_v2, 5);
  for (int i = 0; i < 20; ++i) {
    const auto a = m1.next();
    const auto b = m2.next();
    ASSERT_EQ(a.gate, b.gate);
    v1.resize(a.gate, *a.new_cell);
    v2.resize(b.gate, *b.new_cell);
    ASSERT_NEAR(v1.worst_slack(), v2.worst_slack(), 1e-9) << "iteration " << i;
  }
}

TEST_F(EngineTest, ModifierStreamIsDeterministicAndValid) {
  auto nl = circuit(300, 1);
  ot::ModifierStream a(nl, 42), b(nl, 42);
  for (int i = 0; i < 50; ++i) {
    const auto ma = a.next();
    const auto mb = b.next();
    EXPECT_EQ(ma.gate, mb.gate);
    EXPECT_EQ(ma.new_cell, mb.new_cell);
    EXPECT_NE(ma.new_cell, nl.gate(ma.gate).cell);  // always a real change
    EXPECT_EQ(ma.new_cell->kind, nl.gate(ma.gate).cell->kind);
  }
}

}  // namespace
