#include "timer/timing_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

class GraphTest : public ::testing::Test {
 protected:
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();

  ot::Netlist chain3() {
    // in -> INV(u0) -> INV(u1) -> INV(u2) -> out
    ot::Netlist nl(lib);
    const int n_in = nl.add_net("n_in", 1.0);
    nl.add_primary_input("in", n_in);
    int prev = n_in;
    for (int i = 0; i < 3; ++i) {
      const int g = nl.add_gate("u" + std::to_string(i), lib.at("INV_X1"));
      const int n = nl.add_net("n" + std::to_string(i), 1.0);
      nl.connect(g, 0, prev);
      nl.connect(g, 1, n);
      prev = n;
    }
    nl.add_primary_output("out", prev);
    nl.validate();
    return nl;
  }

  ot::Netlist generated(std::size_t gates = 800, std::uint64_t seed = 11) {
    ot::CircuitSpec spec;
    spec.num_gates = gates;
    spec.num_inputs = 12;
    spec.seed = seed;
    return ot::make_circuit(lib, spec);
  }
};

TEST_F(GraphTest, ArcCounts) {
  const auto nl = chain3();
  const ot::TimingGraph g(nl);
  // Cell arcs: 3 INV.  Net arcs: 4 nets x 1 sink.
  EXPECT_EQ(g.num_arcs(), 3u + 4u);
  EXPECT_EQ(g.num_pins(), nl.num_pins());
}

TEST_F(GraphTest, SourcesAndEndpoints) {
  const auto nl = chain3();
  const ot::TimingGraph g(nl);
  int sources = 0, endpoints = 0;
  for (std::size_t p = 0; p < g.num_pins(); ++p) {
    sources += g.is_source(static_cast<int>(p)) ? 1 : 0;
    endpoints += g.is_endpoint(static_cast<int>(p)) ? 1 : 0;
  }
  EXPECT_EQ(sources, 1);    // the PI's Y pin
  EXPECT_EQ(endpoints, 1);  // the PO's A pin
}

TEST_F(GraphTest, TopoOrderRespectsArcs) {
  const auto nl = generated();
  const ot::TimingGraph g(nl);
  for (std::size_t a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(static_cast<int>(a));
    ASSERT_LT(g.topo_index(arc.from_pin), g.topo_index(arc.to_pin));
  }
}

TEST_F(GraphTest, LevelsAreMonotoneAlongArcs) {
  const auto nl = generated();
  const ot::TimingGraph g(nl);
  for (std::size_t a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(static_cast<int>(a));
    ASSERT_LT(g.level(arc.from_pin), g.level(arc.to_pin));
  }
  EXPECT_GT(g.max_level(), 0);
}

TEST_F(GraphTest, ChainLevels) {
  const auto nl = chain3();
  const ot::TimingGraph g(nl);
  // in:Y -> u0:A -> u0:Y -> u1:A -> u1:Y -> u2:A -> u2:Y -> out:A
  EXPECT_EQ(g.max_level(), 7);
}

TEST_F(GraphTest, ForwardConeOfSourceCoversItsReachableSet) {
  const auto nl = chain3();
  const ot::TimingGraph g(nl);
  int src = -1;
  for (std::size_t p = 0; p < g.num_pins(); ++p) {
    if (g.is_source(static_cast<int>(p))) src = static_cast<int>(p);
  }
  const std::vector<int> seeds{src};
  const auto cone = g.forward_cone(seeds);
  EXPECT_EQ(cone.size(), g.num_pins());
  for (std::size_t i = 1; i < cone.size(); ++i) {
    EXPECT_LT(g.topo_index(cone[i - 1]), g.topo_index(cone[i]));
  }
}

TEST_F(GraphTest, ForwardConeOfEndpointIsItself) {
  const auto nl = chain3();
  const ot::TimingGraph g(nl);
  int ep = -1;
  for (std::size_t p = 0; p < g.num_pins(); ++p) {
    if (g.is_endpoint(static_cast<int>(p))) ep = static_cast<int>(p);
  }
  const std::vector<int> seeds{ep};
  EXPECT_EQ(g.forward_cone(seeds).size(), 1u);
}

TEST_F(GraphTest, BackwardConeIsReverseSortedAndCoversRegion) {
  const auto nl = generated();
  const ot::TimingGraph g(nl);
  const std::vector<int> seeds{g.topo_order()[g.num_pins() / 2]};
  const auto fwd = g.forward_cone(seeds);
  const auto bwd = g.backward_cone(fwd);
  EXPECT_GE(bwd.size(), fwd.size());
  for (std::size_t i = 1; i < bwd.size(); ++i) {
    ASSERT_GT(g.topo_index(bwd[i - 1]), g.topo_index(bwd[i]));
  }
}

TEST_F(GraphTest, ForwardConeIsClosedUnderFanout) {
  const auto nl = generated(1000, 3);
  const ot::TimingGraph g(nl);
  const std::vector<int> seeds{g.topo_order().front()};
  const auto cone = g.forward_cone(seeds);
  std::vector<char> in_cone(g.num_pins(), 0);
  for (int p : cone) in_cone[static_cast<std::size_t>(p)] = 1;
  for (int p : cone) {
    for (int aid : g.fanout(p)) {
      ASSERT_TRUE(in_cone[static_cast<std::size_t>(g.arc(aid).to_pin)]);
    }
  }
}

TEST_F(GraphTest, DffBreaksCombinationalPathsAtD) {
  // A DFF's D pin must be an endpoint (no outgoing arcs through the flop).
  const auto nl = generated(2000, 5);
  const ot::TimingGraph g(nl);
  for (std::size_t gi = 0; gi < nl.num_gates(); ++gi) {
    const ot::Gate& gate = nl.gate(static_cast<int>(gi));
    if (!gate.cell->is_sequential()) continue;
    const int d_pin = gate.pins[1];  // CLK, D, Q layout
    EXPECT_TRUE(g.is_endpoint(d_pin));
    const int q_pin = gate.pins[2];
    EXPECT_EQ(g.fanin(q_pin).size(), 1u);  // only CLK->Q
  }
}

TEST_F(GraphTest, GeneratedMillionPinGraphBuilds) {
  // Scale sanity: a ~50K-gate circuit levelizes without recursion issues.
  const auto nl = generated(50000, 9);
  const ot::TimingGraph g(nl);
  EXPECT_EQ(g.topo_order().size(), g.num_pins());
  EXPECT_GT(g.num_arcs(), g.num_pins());
}

}  // namespace
