#include "timer/netlist.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

class NetlistTest : public ::testing::Test {
 protected:
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();

  /// Build the small circuit of paper Fig. 8:
  /// inp1,inp2 -> u1(NAND2) -> u4(NAND2) -> out; clock -> f1(DFF);
  /// f1.Q -> u2(INV) -> u3(INV) -> u4.B; u1.Y -> f1.D is simplified here.
  ot::Netlist make_fig8() {
    ot::Netlist nl(lib);
    const int n_inp1 = nl.add_net("inp1_n", 1.0);
    const int n_inp2 = nl.add_net("inp2_n", 1.0);
    const int n_clk = nl.add_net("clk_n", 0.5);
    const int n_u1 = nl.add_net("u1_n", 1.2);
    const int n_q = nl.add_net("q_n", 1.0);
    const int n_u2 = nl.add_net("u2_n", 0.8);
    const int n_u3 = nl.add_net("u3_n", 0.8);
    const int n_u4 = nl.add_net("u4_n", 2.0);

    nl.add_primary_input("inp1", n_inp1);
    nl.add_primary_input("inp2", n_inp2);
    nl.add_primary_input("clock", n_clk);

    const int u1 = nl.add_gate("u1", lib.at("NAND2_X1"));
    nl.connect(u1, 0, n_inp1);  // A
    nl.connect(u1, 1, n_inp2);  // B
    nl.connect(u1, 2, n_u1);    // Y

    const int f1 = nl.add_gate("f1", lib.at("DFF_X1"));
    nl.connect(f1, 0, n_clk);  // CLK
    nl.connect(f1, 1, n_u1);   // D
    nl.connect(f1, 2, n_q);    // Q

    const int u2 = nl.add_gate("u2", lib.at("INV_X1"));
    nl.connect(u2, 0, n_q);
    nl.connect(u2, 1, n_u2);

    const int u3 = nl.add_gate("u3", lib.at("INV_X1"));
    nl.connect(u3, 0, n_u2);
    nl.connect(u3, 1, n_u3);

    const int u4 = nl.add_gate("u4", lib.at("NAND2_X1"));
    nl.connect(u4, 0, n_u1);
    nl.connect(u4, 1, n_u3);
    nl.connect(u4, 2, n_u4);

    nl.add_primary_output("out", n_u4);
    nl.validate();
    return nl;
  }
};

TEST_F(NetlistTest, BuildAndValidateFig8) {
  auto nl = make_fig8();
  EXPECT_EQ(nl.num_gates(), 9u);  // 3 PI + 1 PO + 5 logic
  EXPECT_EQ(nl.num_nets(), 8u);
  EXPECT_EQ(nl.find_gate("u4"), 7);
  EXPECT_EQ(nl.find_gate("nope"), -1);
}

TEST_F(NetlistTest, PinNamesFollowGateColonPin) {
  auto nl = make_fig8();
  const int u1 = nl.find_gate("u1");
  const auto& g = nl.gate(u1);
  EXPECT_EQ(nl.pin_name(g.pins[0]), "u1:A");
  EXPECT_EQ(nl.pin_name(g.pins[2]), "u1:Y");
}

TEST_F(NetlistTest, NetLoadSumsWireAndSinkCaps) {
  auto nl = make_fig8();
  const int n_u1 = nl.find_net("u1_n");
  // u1_n: wire 1.2 + sinks f1.D and u4.A.
  const double expected = 1.2 + lib.at("DFF_X1").pins[1].capacitance +
                          lib.at("NAND2_X1").pins[0].capacitance;
  EXPECT_DOUBLE_EQ(nl.net_load(n_u1), expected);
}

TEST_F(NetlistTest, DoubleDriverRejected) {
  ot::Netlist nl(lib);
  const int n = nl.add_net("n", 1.0);
  nl.add_primary_input("a", n);
  EXPECT_THROW(nl.add_primary_input("b", n), std::runtime_error);
}

TEST_F(NetlistTest, DoubleConnectRejected) {
  ot::Netlist nl(lib);
  const int n1 = nl.add_net("n1", 1.0);
  const int n2 = nl.add_net("n2", 1.0);
  const int g = nl.add_gate("g", lib.at("INV_X1"));
  nl.connect(g, 0, n1);
  EXPECT_THROW(nl.connect(g, 0, n2), std::runtime_error);
}

TEST_F(NetlistTest, ValidateRejectsFloatingPins) {
  ot::Netlist nl(lib);
  const int n1 = nl.add_net("n1", 1.0);
  nl.add_primary_input("a", n1);
  const int g = nl.add_gate("g", lib.at("INV_X1"));
  nl.connect(g, 0, n1);  // output Y left floating
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST_F(NetlistTest, ResizeSwapsDriveVariant) {
  auto nl = make_fig8();
  const int u1 = nl.find_gate("u1");
  nl.resize_gate(u1, lib.at("NAND2_X4"));
  EXPECT_EQ(nl.gate(u1).cell->drive, 4);
  // Kind mismatch rejected.
  EXPECT_THROW(nl.resize_gate(u1, lib.at("INV_X1")), std::runtime_error);
}

TEST_F(NetlistTest, GeneratorProducesValidCircuits) {
  ot::CircuitSpec spec;
  spec.num_gates = 2000;
  spec.num_inputs = 16;
  spec.seed = 42;
  const auto nl = ot::make_circuit(lib, spec);  // validate() runs inside
  EXPECT_GE(nl.num_gates(), 2000u);
  EXPECT_GE(nl.num_nets(), 2000u);
}

TEST_F(NetlistTest, GeneratorIsDeterministic) {
  ot::CircuitSpec spec;
  spec.num_gates = 500;
  spec.seed = 7;
  const auto a = ot::make_circuit(lib, spec);
  const auto b = ot::make_circuit(lib, spec);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (std::size_t g = 0; g < a.num_gates(); ++g) {
    EXPECT_EQ(a.gate(static_cast<int>(g)).cell->name,
              b.gate(static_cast<int>(g)).cell->name);
  }
}

TEST_F(NetlistTest, GeneratorSeedChangesStructure) {
  ot::CircuitSpec spec;
  spec.num_gates = 500;
  spec.seed = 7;
  const auto a = ot::make_circuit(lib, spec);
  spec.seed = 8;
  const auto b = ot::make_circuit(lib, spec);
  bool differs = a.num_nets() != b.num_nets() || a.num_pins() != b.num_pins();
  for (std::size_t g = 0; !differs && g < std::min(a.num_gates(), b.num_gates()); ++g) {
    differs = a.gate(static_cast<int>(g)).cell->name !=
              b.gate(static_cast<int>(g)).cell->name;
  }
  EXPECT_TRUE(differs);
}

TEST_F(NetlistTest, PresetSpecsMatchPaperGateCounts) {
  EXPECT_EQ(ot::tv80_spec().num_gates, 5300u);
  EXPECT_EQ(ot::vga_lcd_spec().num_gates, 139500u);
  EXPECT_EQ(ot::netcard_spec().num_gates, 1400000u);
  EXPECT_EQ(ot::leon3mp_spec().num_gates, 1200000u);
  EXPECT_EQ(ot::tv80_spec(0.1).num_gates, 530u);
}

TEST_F(NetlistTest, WriterParserRoundTrip) {
  auto nl = make_fig8();
  std::stringstream ss;
  ot::write_netlist(ss, nl);
  const auto parsed = ot::parse_netlist(ss, lib);
  EXPECT_EQ(parsed.num_gates(), nl.num_gates());
  EXPECT_EQ(parsed.num_nets(), nl.num_nets());
  EXPECT_EQ(parsed.num_pins(), nl.num_pins());
  const int u4 = parsed.find_gate("u4");
  ASSERT_GE(u4, 0);
  EXPECT_EQ(parsed.gate(u4).cell->name, "NAND2_X1");
  EXPECT_DOUBLE_EQ(parsed.net_load(parsed.find_net("u1_n")), nl.net_load(nl.find_net("u1_n")));
}

TEST_F(NetlistTest, ParserRejectsUnknownCell) {
  std::stringstream ss("net n1 1.0\ngate g FOO_X1 A=n1\n");
  EXPECT_THROW((void)ot::parse_netlist(ss, lib), std::runtime_error);
}

TEST_F(NetlistTest, ParserRejectsUnknownNet) {
  std::stringstream ss("net n1 1.0\ninput a missing_net\n");
  EXPECT_THROW((void)ot::parse_netlist(ss, lib), std::runtime_error);
}

TEST_F(NetlistTest, ParserRejectsGarbageKeyword) {
  std::stringstream ss("frobnicate x y\n");
  EXPECT_THROW((void)ot::parse_netlist(ss, lib), std::runtime_error);
}

TEST_F(NetlistTest, ParserSkipsCommentsAndBlanks) {
  std::stringstream ss("# header\n\nnet n1 1.0\ninput a n1\noutput b n1\n");
  const auto nl = ot::parse_netlist(ss, lib);
  EXPECT_EQ(nl.num_gates(), 2u);
}

}  // namespace
