// ot::Shell command-driver tests (stringstream-driven sessions).
#include "timer/shell.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace {

std::pair<int, std::string> run_session(const std::string& script) {
  ot::Shell shell;
  std::istringstream in(script);
  std::ostringstream out, err;
  const int failures = shell.run(in, out, err);
  return {failures, out.str()};
}

TEST(Shell, HelpAndQuit) {
  const auto [failures, out] = run_session("help\nquit\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("report_timing"), std::string::npos);
}

TEST(Shell, GenerateInitReport) {
  const auto [failures, out] = run_session(
      "generate 300 5\n"
      "init_timer v2\n"
      "report_worst_slack\n"
      "report_slack\n"
      "report_timing 2\n"
      "stats\n");
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.find("generated"), std::string::npos);
  EXPECT_NE(out.find("worst slack"), std::string::npos);
  EXPECT_NE(out.find("WNS"), std::string::npos);
  EXPECT_NE(out.find("Path to"), std::string::npos);
  EXPECT_NE(out.find("gates "), std::string::npos);
}

TEST(Shell, AllEnginesReportSameSlack) {
  std::string slack_line[3];
  const char* engines[] = {"seq", "v1", "v2"};
  for (int i = 0; i < 3; ++i) {
    const auto [failures, out] = run_session(
        std::string("generate 200 9\ninit_timer ") + engines[i] +
        "\nreport_worst_slack\n");
    EXPECT_EQ(failures, 0) << engines[i];
    const auto pos = out.find("worst slack");
    ASSERT_NE(pos, std::string::npos);
    slack_line[i] = out.substr(pos, 40);
  }
  EXPECT_EQ(slack_line[0], slack_line[1]);
  EXPECT_EQ(slack_line[0], slack_line[2]);
}

TEST(Shell, ResizeUpdatesIncrementally) {
  // Resize every gate u0..u29 to every drive of its own kind: at least one
  // command must succeed and none may crash; successful ones re-time.
  std::string script = "generate 300 5\ninit_timer v2\n";
  for (int g = 0; g < 30; ++g) {
    for (const char* cell : {"INV_X4", "NAND2_X4", "NOR2_X4", "AND2_X4", "OR2_X4",
                             "XOR2_X4", "AOI21_X4", "OAI21_X4", "BUF_X4", "DFF_X4"}) {
      script += "resize_gate u" + std::to_string(g) + " " + cell + "\n";
    }
  }
  const auto [failures, out] = run_session(script);
  EXPECT_NE(out.find("resized"), std::string::npos);    // some succeeded
  EXPECT_NE(out.find("tasks re-timed"), std::string::npos);
  EXPECT_LT(failures, 300);                             // kind mismatches only
}

TEST(Shell, CommandErrorsAreReportedAndCounted) {
  const auto [failures, out] = run_session(
      "report_worst_slack\n"      // no timer
      "init_timer v2\n"           // no design
      "frobnicate\n"              // unknown
      "generate nonsense 1\n");   // bad number
  EXPECT_EQ(failures, 4);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(Shell, CommentsAndBlankLinesIgnored)
{
  const auto [failures, out] = run_session("# a comment\n\n# another\n");
  EXPECT_EQ(failures, 0);
  EXPECT_TRUE(out.empty());
}

TEST(Shell, WriteAndReadBackRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string v = dir + "/shell_rt.v";
  const std::string lib = dir + "/shell_rt.lib";
  const std::string sdc = dir + "/shell_rt.sdc";

  {
    const auto [failures, out] = run_session(
        "generate 150 3\n"
        "write_verilog " + v + "\n" +
        "write_liberty " + lib + "\n" +
        "write_sdc " + sdc + "\n");
    EXPECT_EQ(failures, 0);
    EXPECT_NE(out.find("wrote"), std::string::npos);
  }
  {
    const auto [failures, out] = run_session(
        "read_celllib " + lib + "\n" +
        "read_sdc " + sdc + "\n" +
        "read_verilog " + v + "\n" +
        "init_timer seq\nreport_worst_slack\n");
    EXPECT_EQ(failures, 0);
    EXPECT_NE(out.find("worst slack"), std::string::npos);
  }
  std::remove(v.c_str());
  std::remove(lib.c_str());
  std::remove(sdc.c_str());
}

TEST(Shell, DumpTaskgraphNeedsV2) {
  const std::string dot = ::testing::TempDir() + "/shell_graph.dot";
  {
    const auto [failures, out] = run_session(
        "generate 100 2\ninit_timer v1\ndump_taskgraph " + dot + "\n");
    EXPECT_EQ(failures, 1);  // v1 cannot dump a task graph
    EXPECT_NE(out.find("error"), std::string::npos);
  }
  {
    const auto [failures, out] = run_session(
        "generate 100 2\ninit_timer v2\ndump_taskgraph " + dot + "\n");
    EXPECT_EQ(failures, 0);
    std::ifstream in(dot);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("digraph"), std::string::npos);
  }
  std::remove(dot.c_str());
}

TEST(Shell, QuitStopsProcessing) {
  ot::Shell shell;
  std::istringstream in("quit\ngenerate 100 1\n");
  std::ostringstream out, err;
  shell.run(in, out, err);
  EXPECT_TRUE(shell.wants_quit());
  EXPECT_FALSE(shell.has_design());  // generate never ran
}

}  // namespace
