// Parameterized engine-equivalence sweep: v1/v2/seq agreement across
// circuit sizes, seeds, thread counts, and corner counts (the broad-net
// counterpart of test_timer_engines.cpp).
#include "timer/modifier.hpp"
#include "timer/timers.hpp"

#include <gtest/gtest.h>

namespace {

struct SweepParam {
  std::size_t gates;
  std::uint64_t seed;
  unsigned threads;
  int corners;
};

class EngineSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();

  ot::Netlist circuit() const {
    ot::CircuitSpec spec;
    spec.num_gates = GetParam().gates;
    spec.seed = GetParam().seed;
    spec.num_inputs = 10;
    return ot::make_circuit(lib, spec);
  }

  ot::TimerOptions options() const {
    ot::TimerOptions opt;
    opt.num_threads = GetParam().threads;
    opt.corners = GetParam().corners;
    opt.clock_period = 1.5;
    return opt;
  }
};

TEST_P(EngineSweep, FullAndIncrementalAgreement) {
  auto nl_v1 = circuit();
  auto nl_v2 = circuit();
  auto nl_ref = circuit();
  const auto opt = options();

  ot::TimerV1 v1(nl_v1, opt);
  ot::TimerV2 v2(nl_v2, opt);
  ot::SeqTimer ref(nl_ref, opt);
  v1.full_update();
  v2.full_update();
  ref.full_update();
  ASSERT_NEAR(v1.worst_slack(), ref.worst_slack(), 1e-9);
  ASSERT_NEAR(v2.worst_slack(), ref.worst_slack(), 1e-9);

  ot::ModifierStream m1(nl_v1, GetParam().seed + 1);
  ot::ModifierStream m2(nl_v2, GetParam().seed + 1);
  ot::ModifierStream mr(nl_ref, GetParam().seed + 1);
  for (int i = 0; i < 6; ++i) {
    const auto a = m1.next();
    const auto b = m2.next();
    const auto c = mr.next();
    ASSERT_EQ(a.gate, b.gate);
    ASSERT_EQ(a.gate, c.gate);
    v1.resize(a.gate, *a.new_cell);
    v2.resize(b.gate, *b.new_cell);
    ref.netlist().resize_gate(c.gate, *c.new_cell);
    ref.full_update();
    ASSERT_NEAR(v1.worst_slack(), ref.worst_slack(), 1e-9) << "iteration " << i;
    ASSERT_NEAR(v2.worst_slack(), ref.worst_slack(), 1e-9) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineSweep,
    ::testing::Values(SweepParam{100, 1, 1, 1}, SweepParam{100, 2, 4, 2},
                      SweepParam{500, 3, 2, 1}, SweepParam{500, 4, 4, 4},
                      SweepParam{1500, 5, 4, 1}, SweepParam{1500, 6, 8, 2},
                      SweepParam{3000, 7, 4, 1}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "g" + std::to_string(info.param.gates) + "_s" +
             std::to_string(info.param.seed) + "_t" +
             std::to_string(info.param.threads) + "_c" +
             std::to_string(info.param.corners);
    });

TEST(Corners, MoreCornersNeverImproveLateTiming) {
  // Extra corners only add pessimism: late arrivals grow, worst slack
  // shrinks (or stays), monotonically in the corner count.
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();
  ot::CircuitSpec spec;
  spec.num_gates = 400;
  spec.seed = 11;
  double prev_slack = ot::kInf;
  for (int corners : {1, 2, 4, 8}) {
    auto nl = ot::make_circuit(lib, spec);
    ot::TimerOptions opt;
    opt.corners = corners;
    ot::SeqTimer t(nl, opt);
    t.full_update();
    EXPECT_LE(t.worst_slack(), prev_slack + 1e-12) << corners;
    prev_slack = t.worst_slack();
  }
}

TEST(Corners, SingleCornerMatchesLegacyBehaviour) {
  // corners=1 must be exactly the nominal analysis (derate = 1.0).
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();
  const ot::CellArc& arc = lib.at("NAND2_X1").arcs[0];
  const double d = ot::cell_arc_delay(arc, ot::kRise, 2.0, 0.05);
  EXPECT_GT(d, 0.0);
  // Spot check: the nominal corner of a multi-corner run reproduces the
  // same first-corner delay (derate 1.0 at c=0).
  EXPECT_DOUBLE_EQ(ot::cell_arc_delay(arc, ot::kRise, 2.0 * 1.0, 0.05 * 1.0), d);
}

}  // namespace
