// SDC constraint parsing and timing reports (paths, WNS/TNS, histogram).
#include "timer/report.hpp"
#include "timer/sdc.hpp"
#include "timer/timers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace {

TEST(Sdc, ParsesClockAndTransitions) {
  std::stringstream ss(
      "# constraints\n"
      "create_clock -period 1.5 -name core_clk [get_ports clock]\n"
      "set_input_transition 0.08 [all_inputs]\n"
      "set_clock_uncertainty 0.02\n"
      "set_hold_margin 0.01\n");
  const auto r = ot::parse_sdc(ss);
  EXPECT_DOUBLE_EQ(r.options.clock_period, 1.5);
  EXPECT_DOUBLE_EQ(r.options.input_slew, 0.08);
  EXPECT_DOUBLE_EQ(r.options.setup, 0.05 + 0.02);  // default margin + uncertainty
  EXPECT_DOUBLE_EQ(r.options.hold, 0.01);
  EXPECT_EQ(r.clock_name, "core_clk");
  EXPECT_EQ(r.clock_port, "clock");
  EXPECT_EQ(r.num_commands, 4);
}

TEST(Sdc, StrictModeRejectsUnknownCommands) {
  std::stringstream ss("set_false_path -from a -to b\n");
  EXPECT_THROW((void)ot::parse_sdc(ss), std::runtime_error);
}

TEST(Sdc, LenientModeSkipsUnknownCommands) {
  std::stringstream ss(
      "set_false_path -from a -to b\ncreate_clock -period 2.0 [get_ports clk]\n");
  const auto r = ot::parse_sdc(ss, {}, /*lenient=*/true);
  EXPECT_EQ(r.num_skipped, 1);
  EXPECT_DOUBLE_EQ(r.options.clock_period, 2.0);
}

TEST(Sdc, RejectsMalformedNumbers) {
  std::stringstream ss("create_clock -period fast [get_ports clk]\n");
  EXPECT_THROW((void)ot::parse_sdc(ss), std::runtime_error);
}

TEST(Sdc, WriterRoundTrips) {
  ot::TimerOptions opt;
  opt.clock_period = 1.25;
  opt.input_slew = 0.03;
  opt.hold = 0.015;
  std::stringstream ss;
  ot::write_sdc(ss, opt, "clk_a", "clock");
  const auto r = ot::parse_sdc(ss);
  EXPECT_DOUBLE_EQ(r.options.clock_period, 1.25);
  EXPECT_DOUBLE_EQ(r.options.input_slew, 0.03);
  EXPECT_DOUBLE_EQ(r.options.hold, 0.015);
  EXPECT_EQ(r.clock_name, "clk_a");
}

class ReportTest : public ::testing::Test {
 protected:
  ot::CellLibrary lib = ot::CellLibrary::make_synthetic();

  ot::Netlist circuit(std::size_t gates = 500, std::uint64_t seed = 15) {
    ot::CircuitSpec spec;
    spec.num_gates = gates;
    spec.seed = seed;
    return ot::make_circuit(lib, spec);
  }
};

TEST_F(ReportTest, WorstPathMatchesWorstSlack) {
  auto nl = circuit();
  ot::TimerOptions opt;
  opt.num_threads = 2;
  opt.clock_period = 2.0;
  ot::SeqTimer t(nl, opt);
  t.full_update();

  const auto paths = ot::report_paths(nl, t.graph(), t.state(), 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].slack, t.worst_slack(), 1e-12);
}

TEST_F(ReportTest, PathIsConnectedAndArrivalMonotone) {
  auto nl = circuit();
  ot::TimerOptions opt;
  opt.num_threads = 2;
  ot::SeqTimer t(nl, opt);
  t.full_update();

  const auto paths = ot::report_paths(nl, t.graph(), t.state(), 3);
  ASSERT_EQ(paths.size(), 3u);
  for (const auto& path : paths) {
    ASSERT_GE(path.points.size(), 2u);
    // Starts at a source, ends at the endpoint.
    EXPECT_TRUE(t.graph().is_source(path.points.front().pin));
    EXPECT_EQ(path.points.back().pin, path.endpoint);
    for (std::size_t i = 1; i < path.points.size(); ++i) {
      // Consecutive points joined by an arc.
      bool connected = false;
      for (int aid : t.graph().fanout(path.points[i - 1].pin)) {
        connected |= (t.graph().arc(aid).to_pin == path.points[i].pin);
      }
      EXPECT_TRUE(connected) << "hop " << i;
      // Arrivals never decrease along the path.
      EXPECT_GE(path.points[i].arrival, path.points[i - 1].arrival - 1e-12);
      EXPECT_NEAR(path.points[i].delay,
                  path.points[i].arrival - path.points[i - 1].arrival, 1e-12);
    }
  }
}

TEST_F(ReportTest, PathsSortedBySlack) {
  auto nl = circuit(800, 4);
  ot::TimerOptions opt;
  opt.num_threads = 2;
  ot::SeqTimer t(nl, opt);
  t.full_update();
  const auto paths = ot::report_paths(nl, t.graph(), t.state(), 10);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].slack, paths[i].slack + 1e-12);
  }
}

TEST_F(ReportTest, SlackStatsConsistent) {
  auto nl = circuit(600, 8);
  ot::TimerOptions opt;
  opt.num_threads = 2;
  opt.clock_period = 1.0;  // tight clock: expect violations
  ot::SeqTimer t(nl, opt);
  t.full_update();

  const auto s = ot::slack_stats(t.graph(), t.state(), 10, -2.0, 2.0);
  EXPECT_GT(s.endpoints, 0);
  int histo_total = 0;
  for (int c : s.histogram) histo_total += c;
  EXPECT_EQ(histo_total, s.endpoints);
  EXPECT_NEAR(s.wns, std::min(0.0, t.worst_slack()), 1e-12);
  EXPECT_LE(s.tns, 0.0);
  EXPECT_GE(s.violations, s.tns == 0.0 ? 0 : 1);
}

TEST_F(ReportTest, RelaxedClockRemovesViolations) {
  auto nl = circuit(300, 2);
  ot::TimerOptions opt;
  opt.num_threads = 1;
  opt.clock_period = 100.0;  // absurdly slow clock
  ot::SeqTimer t(nl, opt);
  t.full_update();
  const auto s = ot::slack_stats(t.graph(), t.state());
  EXPECT_EQ(s.violations, 0);
  EXPECT_DOUBLE_EQ(s.wns, 0.0);
  EXPECT_DOUBLE_EQ(s.tns, 0.0);
}

TEST_F(ReportTest, PrintPathIncludesPinNames) {
  auto nl = circuit(100, 1);
  ot::TimerOptions opt;
  ot::SeqTimer t(nl, opt);
  t.full_update();
  const auto paths = ot::report_paths(nl, t.graph(), t.state(), 1);
  std::stringstream ss;
  ot::print_path(ss, nl, paths[0]);
  EXPECT_NE(ss.str().find("slack"), std::string::npos);
  EXPECT_NE(ss.str().find(":"), std::string::npos);  // gate:PIN names
}

TEST_F(ReportTest, PathTracingWorksWithMultiCorner) {
  auto nl = circuit(200, 3);
  ot::TimerOptions opt;
  opt.corners = 4;
  ot::SeqTimer t(nl, opt);
  t.full_update();
  const auto paths = ot::report_paths(nl, t.graph(), t.state(), 2);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NEAR(paths[0].slack, t.worst_slack(), 1e-12);
  for (std::size_t i = 1; i < paths[0].points.size(); ++i) {
    EXPECT_GE(paths[0].points[i].arrival, paths[0].points[i - 1].arrival - 1e-12);
  }
}

}  // namespace
