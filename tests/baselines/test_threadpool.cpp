#include "baselines/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  baselines::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) pool.submit([&] { counter++; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  baselines::ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, JobsCanSubmitMoreJobs) {
  baselines::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      for (int j = 0; j < 10; ++j) pool.submit([&] { counter++; });
    });
  }
  // wait_idle must account for nested submissions (busy workers keep it
  // blocked until the whole cascade drains).
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolIsSequentialPerJob) {
  baselines::ThreadPool pool(1);
  int unguarded = 0;  // safe only because one worker exists
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++unguarded; });
  pool.wait_idle();
  EXPECT_EQ(unguarded, 100);
}

TEST(ThreadPool, ZeroRequestedThreadsClampsToOne) {
  baselines::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    baselines::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) pool.submit([&] { counter++; });
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ManyWaitIdleCycles) {
  baselines::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) pool.submit([&] { counter++; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

}  // namespace
