// fg:: FlowGraph baseline: semantics of the TBB subset used by the paper's
// listings (continue_node / make_edge / try_put / wait_for_all).
#include "baselines/flowgraph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>

namespace {

using Node = fg::continue_node<fg::continue_msg>;

class Stamps {
 public:
  void mark(const std::string& name) {
    const int stamp = _clock.fetch_add(1);
    std::scoped_lock lock(_mutex);
    _stamps[name] = stamp;
  }
  [[nodiscard]] bool before(const std::string& a, const std::string& b) const {
    return _stamps.at(a) < _stamps.at(b);
  }
  [[nodiscard]] std::size_t count() const { return _stamps.size(); }

 private:
  std::atomic<int> _clock{0};
  mutable std::mutex _mutex;
  std::map<std::string, int> _stamps;
};

TEST(FlowGraph, SingleNodeFiresOnTryPut) {
  fg::task_scheduler_init init(2);
  fg::graph g;
  std::atomic<bool> ran{false};
  Node a(g, [&](const fg::continue_msg&) { ran = true; });
  a.try_put(fg::continue_msg());
  g.wait_for_all();
  EXPECT_TRUE(ran.load());
}

TEST(FlowGraph, NodeWithoutMessageNeverFires) {
  fg::task_scheduler_init init(2);
  fg::graph g;
  std::atomic<bool> ran{false};
  Node a(g, [&](const fg::continue_msg&) { ran = true; });
  g.wait_for_all();  // no message sent
  EXPECT_FALSE(ran.load());
}

TEST(FlowGraph, PaperListing5StaticGraph) {
  // The Fig. 2 graph written exactly as paper Listing 5.
  fg::task_scheduler_init init(fg::task_scheduler_init::default_num_threads());
  for (int rep = 0; rep < 10; ++rep) {
    Stamps st;
    fg::graph g;
    Node a0(g, [&](const fg::continue_msg&) { st.mark("a0"); });
    Node a1(g, [&](const fg::continue_msg&) { st.mark("a1"); });
    Node a2(g, [&](const fg::continue_msg&) { st.mark("a2"); });
    Node a3(g, [&](const fg::continue_msg&) { st.mark("a3"); });
    Node b0(g, [&](const fg::continue_msg&) { st.mark("b0"); });
    Node b1(g, [&](const fg::continue_msg&) { st.mark("b1"); });
    Node b2(g, [&](const fg::continue_msg&) { st.mark("b2"); });
    fg::make_edge(a0, a1);
    fg::make_edge(a1, a2);
    fg::make_edge(a1, b2);
    fg::make_edge(a2, a3);
    fg::make_edge(b0, b1);
    fg::make_edge(b1, b2);
    fg::make_edge(b1, a2);
    fg::make_edge(b2, a3);
    a0.try_put(fg::continue_msg());
    b0.try_put(fg::continue_msg());
    g.wait_for_all();

    EXPECT_EQ(st.count(), 7u);
    EXPECT_TRUE(st.before("a0", "a1"));
    EXPECT_TRUE(st.before("a1", "a2"));
    EXPECT_TRUE(st.before("b1", "a2"));
    EXPECT_TRUE(st.before("a2", "a3"));
    EXPECT_TRUE(st.before("b2", "a3"));
    EXPECT_TRUE(st.before("b0", "b1"));
  }
}

TEST(FlowGraph, JoinNodeWaitsForAllPredecessors) {
  fg::task_scheduler_init init(4);
  fg::graph g;
  std::atomic<int> pre{0};
  std::atomic<int> seen_at_join{-1};
  Node a(g, [&](const fg::continue_msg&) { pre++; });
  Node b(g, [&](const fg::continue_msg&) { pre++; });
  Node c(g, [&](const fg::continue_msg&) { pre++; });
  Node join(g, [&](const fg::continue_msg&) { seen_at_join = pre.load(); });
  fg::make_edge(a, join);
  fg::make_edge(b, join);
  fg::make_edge(c, join);
  a.try_put(fg::continue_msg());
  b.try_put(fg::continue_msg());
  c.try_put(fg::continue_msg());
  g.wait_for_all();
  EXPECT_EQ(seen_at_join.load(), 3);
}

TEST(FlowGraph, GraphIsReRunnable) {
  // continue_node counters rearm, as in TBB.
  fg::task_scheduler_init init(2);
  fg::graph g;
  std::atomic<int> fires{0};
  Node a(g, [&](const fg::continue_msg&) { fires++; });
  Node b(g, [&](const fg::continue_msg&) { fires++; });
  fg::make_edge(a, b);
  for (int i = 0; i < 5; ++i) {
    a.try_put(fg::continue_msg());
    g.wait_for_all();
  }
  EXPECT_EQ(fires.load(), 10);
}

TEST(FlowGraph, PaperListing8DynamicInnerGraph) {
  // Dynamic tasking TBB-style (paper Listing 8): an inner graph constructed
  // and awaited inside a node body.
  fg::task_scheduler_init init(4);
  Stamps st;
  fg::graph G;
  Node A(G, [&](const fg::continue_msg&) { st.mark("A"); });
  Node C(G, [&](const fg::continue_msg&) { st.mark("C"); });
  Node D(G, [&](const fg::continue_msg&) { st.mark("D"); });
  Node B(G, [&](const fg::continue_msg&) {
    st.mark("B");
    fg::graph subgraph;
    Node B1(subgraph, [&](const fg::continue_msg&) { st.mark("B1"); });
    Node B2(subgraph, [&](const fg::continue_msg&) { st.mark("B2"); });
    Node B3(subgraph, [&](const fg::continue_msg&) { st.mark("B3"); });
    fg::make_edge(B1, B3);
    fg::make_edge(B2, B3);
    B1.try_put(fg::continue_msg());
    B2.try_put(fg::continue_msg());
    subgraph.wait_for_all();
  });
  fg::make_edge(A, B);
  fg::make_edge(A, C);
  fg::make_edge(B, D);
  fg::make_edge(C, D);
  A.try_put(fg::continue_msg());
  G.wait_for_all();

  EXPECT_EQ(st.count(), 7u);
  EXPECT_TRUE(st.before("A", "B"));
  EXPECT_TRUE(st.before("B", "B1"));
  EXPECT_TRUE(st.before("B1", "B3"));
  EXPECT_TRUE(st.before("B2", "B3"));
  EXPECT_TRUE(st.before("B3", "D"));
  EXPECT_TRUE(st.before("C", "D"));
}

TEST(FlowGraph, LargeDiamondCascade) {
  fg::task_scheduler_init init(4);
  fg::graph g;
  std::atomic<int> fired{0};
  constexpr int n = 500;
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.reserve(n);
  for (int i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<Node>(g, [&](const fg::continue_msg&) { fired++; }));
  }
  // Chain pairs: node i precedes i+1 and i+2 (bounded-degree DAG).
  for (int i = 0; i + 1 < n; ++i) fg::make_edge(*nodes[i], *nodes[i + 1]);
  for (int i = 0; i + 2 < n; ++i) fg::make_edge(*nodes[i], *nodes[i + 2]);
  nodes[0]->try_put(fg::continue_msg());
  g.wait_for_all();
  EXPECT_EQ(fired.load(), n);
}

TEST(FlowGraph, DefaultNumThreadsPositive) {
  EXPECT_GE(fg::task_scheduler_init::default_num_threads(), 1);
}

}  // namespace
