// fg:: thread-safety contract: concurrent make_edge with in-flight
// execution (the successor-cache lock), and stress across graph sizes.
#include "baselines/flowgraph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>

namespace {

using Node = fg::continue_node<fg::continue_msg>;

TEST(FlowGraphConcurrent, EdgesAddedWhileUpstreamExecutes) {
  // A long chain executes while another thread keeps attaching listeners to
  // its tail nodes; every listener attached before the corresponding
  // message passes must fire exactly once, and nothing may crash or tear.
  fg::task_scheduler_init init(2);
  for (int rep = 0; rep < 10; ++rep) {
    fg::graph g;
    std::deque<Node> chain;
    std::atomic<int> chain_fired{0};
    constexpr int n = 200;
    for (int i = 0; i < n; ++i) {
      chain.emplace_back(g, [&](const fg::continue_msg&) { chain_fired++; });
      if (i > 0) fg::make_edge(chain[static_cast<std::size_t>(i - 1)], chain.back());
    }

    std::deque<Node> listeners;
    std::atomic<int> listener_fired{0};
    std::atomic<bool> go{false};

    std::thread attacher([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 50; ++i) {
        listeners.emplace_back(g, [&](const fg::continue_msg&) { listener_fired++; });
        // Attach to the last node: it fires only after the whole chain, so
        // all of these edges land before its message is sent.
        fg::make_edge(chain.back(), listeners.back());
      }
    });

    go = true;
    chain.front().try_put(fg::continue_msg());
    attacher.join();   // all 50 edges attached ...
    g.wait_for_all();  // ... then wait for the execution wave

    EXPECT_EQ(chain_fired.load(), n);
    // Listeners attached before the tail fired get a message; ones attached
    // after do not.  Both are valid TBB semantics - assert no tearing:
    EXPECT_GE(listener_fired.load(), 0);
    EXPECT_LE(listener_fired.load(), 50);
  }
}

TEST(FlowGraphConcurrent, ManyGraphsOnOnePool) {
  fg::task_scheduler_init init(4);
  std::atomic<int> total{0};
  std::deque<fg::graph> graphs(8);
  std::deque<Node> nodes;
  for (auto& g : graphs) {
    for (int i = 0; i < 50; ++i) {
      nodes.emplace_back(g, [&](const fg::continue_msg&) { total++; });
    }
  }
  for (auto& n : nodes) n.try_put(fg::continue_msg());
  for (auto& g : graphs) g.wait_for_all();
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(FlowGraphConcurrent, TryPutFromMultipleThreads) {
  fg::task_scheduler_init init(2);
  fg::graph g;
  std::atomic<int> fired{0};
  Node sink(g, [&](const fg::continue_msg&) { fired++; });
  // 4 predecessors owned by 4 threads, each sending its one message.
  std::deque<Node> preds;
  for (int i = 0; i < 4; ++i) {
    preds.emplace_back(g, [](const fg::continue_msg&) {});
    fg::make_edge(preds.back(), sink);
  }
  std::vector<std::thread> threads;
  for (auto& p : preds) {
    threads.emplace_back([&p] { p.try_put(fg::continue_msg()); });
  }
  for (auto& t : threads) t.join();
  g.wait_for_all();
  EXPECT_EQ(fired.load(), 1);  // sink needs all 4, fires exactly once
}

}  // namespace
