// Cross-dialect equivalence of the benchmark kernels: every dialect of a
// benchmark must compute the same result, on a sweep of sizes and thread
// counts (these kernels feed both Fig. 7 and Tables I/III, so their
// correctness anchors those reproductions).
#include "kernels.hpp"
#include "nn/trainers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

bool near(double a, double b) {
  return std::abs(a - b) <= 1e-6 * std::max({1.0, std::abs(a), std::abs(b)});
}

class WavefrontDialects
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>> {};

TEST_P(WavefrontDialects, AllDialectsAgree) {
  const auto [nb, work, threads] = GetParam();
  const double ref = kernels::wavefront_seq(nb, work);
  EXPECT_TRUE(near(ref, kernels::wavefront_taskflow(nb, work, threads)));
  EXPECT_TRUE(near(ref, kernels::wavefront_tbb(nb, work, threads)));
  EXPECT_TRUE(near(ref, kernels::wavefront_omp(nb, work, threads)));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, WavefrontDialects,
    ::testing::Values(std::make_tuple(2, 0, 1), std::make_tuple(8, 10, 2),
                      std::make_tuple(16, 50, 4), std::make_tuple(33, 100, 4),
                      std::make_tuple(64, 0, 3)));

class TraversalDialects
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(TraversalDialects, AllDialectsAgree) {
  const auto [n, threads] = GetParam();
  const auto g = kernels::make_traversal_graph(n, 0xBEEF + n);
  const int work = 20;
  const double ref = kernels::traversal_seq(g, work);
  EXPECT_TRUE(near(ref, kernels::traversal_taskflow(g, work, threads)));
  EXPECT_TRUE(near(ref, kernels::traversal_tbb(g, work, threads)));
  EXPECT_TRUE(near(ref, kernels::traversal_omp(g, work, threads)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TraversalDialects,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(100, 2),
                                           std::make_tuple(1000, 4),
                                           std::make_tuple(20000, 4)));

TEST(TraversalGraph, DegreeCapRespected) {
  // The paper's OpenMP enumeration is only valid if in/out degrees stay <=4.
  const auto g = kernels::make_traversal_graph(50000, 7);
  for (std::size_t v = 0; v < g.size(); ++v) {
    ASSERT_LE(g.preds[v].size(), 4u);
    ASSERT_LE(g.succs[v].size(), 4u);
    ASSERT_EQ(g.preds[v].size(), g.in_edge[v].size());
    ASSERT_EQ(g.succs[v].size(), g.out_edge[v].size());
  }
}

TEST(TraversalGraph, EdgesPointForwardAndIdsConsistent) {
  const auto g = kernels::make_traversal_graph(5000, 9);
  std::size_t edge_count = 0;
  for (std::size_t v = 0; v < g.size(); ++v) {
    for (int u : g.preds[v]) ASSERT_LT(u, static_cast<int>(v));  // DAG by construction
    edge_count += g.preds[v].size();
  }
  EXPECT_EQ(edge_count, g.num_edges);
  // Every in-edge id appears exactly once as some predecessor's out-edge id.
  std::vector<int> seen(g.num_edges, 0);
  for (std::size_t v = 0; v < g.size(); ++v) {
    for (int id : g.out_edge[v]) seen[static_cast<std::size_t>(id)]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(TraversalGraph, Deterministic) {
  const auto a = kernels::make_traversal_graph(3000, 5);
  const auto b = kernels::make_traversal_graph(3000, 5);
  EXPECT_EQ(a.num_edges, b.num_edges);
  EXPECT_EQ(a.preds, b.preds);
  const auto c = kernels::make_traversal_graph(3000, 6);
  EXPECT_NE(a.preds, c.preds);
}

TEST(DnnKernels, AllDialectsMatchSequential) {
  const auto ds = nn::make_synthetic(300, 4);
  const int epochs = 3;
  const std::size_t batch = 50;
  const float lr = 0.05f;

  nn::Mlp seq({784, 16, 10}, 2), tfw({784, 16, 10}, 2), tbb({784, 16, 10}, 2),
      omp({784, 16, 10}, 2);
  const float l_seq = kernels::dnn_seq(seq, ds, epochs, batch, lr);
  const float l_tf = kernels::dnn_taskflow(tfw, ds, epochs, batch, lr, 4);
  const float l_tbb = kernels::dnn_tbb(tbb, ds, epochs, batch, lr, 4);
  const float l_omp = kernels::dnn_omp(omp, ds, epochs, batch, lr, 4);

  EXPECT_FLOAT_EQ(l_seq, l_tf);
  EXPECT_FLOAT_EQ(l_seq, l_tbb);
  EXPECT_FLOAT_EQ(l_seq, l_omp);
  for (std::size_t i = 0; i < seq.num_layers(); ++i) {
    EXPECT_TRUE(seq.layer(i).w == tfw.layer(i).w);
    EXPECT_TRUE(seq.layer(i).w == tbb.layer(i).w);
    EXPECT_TRUE(seq.layer(i).w == omp.layer(i).w);
  }
}

TEST(DnnKernels, MatchFullTrainers) {
  // The compact Table III kernels and the full nn:: trainers implement the
  // same decomposition: identical results under identical configs.
  const auto ds = nn::make_synthetic(200, 8);
  nn::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 50;
  cfg.learning_rate = 0.05f;
  cfg.num_threads = 2;

  nn::Mlp a({784, 16, 10}, 5), b({784, 16, 10}, 5);
  const auto full = nn::train_taskflow(a, ds, cfg);
  const float kern = kernels::dnn_taskflow(b, ds, cfg.epochs, cfg.batch_size,
                                           cfg.learning_rate, 2);
  EXPECT_FLOAT_EQ(full.last_epoch_loss, kern);
  for (std::size_t i = 0; i < a.num_layers(); ++i) {
    EXPECT_TRUE(a.layer(i).w == b.layer(i).w);
  }
}

TEST(NodeOp, DeterministicAcrossCalls) {
  EXPECT_DOUBLE_EQ(kernels::node_op(1.0, 100), kernels::node_op(1.0, 100));
  EXPECT_DOUBLE_EQ(kernels::node_op(0.0, 0), 1.0);
}

}  // namespace
