#include "costtool/cyclomatic.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Cyclomatic, NoFunctions) {
  const auto r = ct::analyze_cyclomatic("int x = 3;\nstruct S;\n");
  EXPECT_TRUE(r.functions.empty());
  EXPECT_EQ(r.file_cyclomatic, 0);
  EXPECT_EQ(r.max_cyclomatic, 0);
}

TEST(Cyclomatic, StraightLineFunctionIsOne) {
  const auto r = ct::analyze_cyclomatic("int f() { return 42; }\n");
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].name, "f");
  EXPECT_EQ(r.functions[0].cyclomatic, 1);
}

TEST(Cyclomatic, EachDecisionAddsOne) {
  const char* src =
      "int f(int a, int b) {\n"
      "  if (a > 0) return 1;\n"        // +1
      "  for (int i = 0; i < b; ++i) {\n"  // +1
      "    while (a--) {}\n"            // +1
      "  }\n"
      "  return a && b;\n"              // +1
      "}\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 5);
}

TEST(Cyclomatic, SwitchCasesCount) {
  const char* src =
      "int f(int x) {\n"
      "  switch (x) {\n"
      "    case 1: return 1;\n"
      "    case 2: return 2;\n"
      "    case 3: return 3;\n"
      "    default: return 0;\n"
      "  }\n"
      "}\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 4);  // 1 + three cases (default free)
}

TEST(Cyclomatic, TernaryAndLogicalOperators) {
  const auto r = ct::analyze_cyclomatic("int f(int a) { return a ? 1 : (a || 2); }\n");
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 3);  // 1 + ? + ||
}

TEST(Cyclomatic, MultipleFunctionsSummedAndMaxed) {
  const char* src =
      "int f() { return 1; }\n"
      "int g(int a) { if (a) return 1; if (a > 2) return 2; return 0; }\n"
      "int h(int a) { return a ? 1 : 0; }\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 3u);
  EXPECT_EQ(r.file_cyclomatic, 1 + 3 + 2);
  EXPECT_EQ(r.max_cyclomatic, 3);
}

TEST(Cyclomatic, PreprocessorConditionsDoNotCount) {
  const char* src =
      "#if defined(FOO) && defined(BAR)\n"
      "int f() { return 1; }\n"
      "#endif\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 1);
}

TEST(Cyclomatic, CommentsAndStringsDoNotCount) {
  const char* src =
      "int f() {\n"
      "  // if (x) while (y)\n"
      "  const char* s = \"if (a && b)\";\n"
      "  return s != nullptr;\n"
      "}\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 1);
}

TEST(Cyclomatic, MethodsInsideClasses) {
  const char* src =
      "class C {\n"
      " public:\n"
      "  int size() const { return _n; }\n"
      "  void grow() { if (_n < 10) ++_n; }\n"
      " private:\n"
      "  int _n{0};\n"
      "};\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 2u);
  EXPECT_EQ(r.functions[0].name, "size");
  EXPECT_EQ(r.functions[0].cyclomatic, 1);
  EXPECT_EQ(r.functions[1].name, "grow");
  EXPECT_EQ(r.functions[1].cyclomatic, 2);
}

TEST(Cyclomatic, ConstructorWithMemberInitList) {
  const char* src =
      "struct S {\n"
      "  S(int a, int b) : _a(a), _b{b} { if (a) _a++; }\n"
      "  int _a, _b;\n"
      "};\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].name, "S");
  EXPECT_EQ(r.functions[0].cyclomatic, 2);
}

TEST(Cyclomatic, TrailingReturnTypeAndNoexcept) {
  const char* src =
      "auto f(int a) noexcept -> int { if (a) return 1; return 0; }\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 2);
}

TEST(Cyclomatic, DeclarationsAreNotDefinitions) {
  const char* src =
      "int f(int);\n"
      "extern void g();\n"
      "int h() { return f(3); }\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].name, "h");
}

TEST(Cyclomatic, LambdasFoldIntoEnclosingFunction) {
  const char* src =
      "int f() {\n"
      "  auto l = [](int x) { return x > 0 ? 1 : 0; };\n"  // + ? = +1
      "  return l(2);\n"
      "}\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 2);
}

TEST(Cyclomatic, ElseIfCountsOncePerIf) {
  const char* src =
      "int f(int a) {\n"
      "  if (a == 1) return 1;\n"
      "  else if (a == 2) return 2;\n"
      "  else return 3;\n"
      "}\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 3);  // 1 + two ifs
}

TEST(Cyclomatic, FunctionTokensCounted) {
  const auto r = ct::analyze_cyclomatic("int f() { return 1 + 2; }\n");
  ASSERT_EQ(r.functions.size(), 1u);
  // Body tokens between braces: return 1 + 2 ; and the closing/opening
  // braces are frame tokens; at least 5 body tokens expected.
  EXPECT_GE(r.functions[0].tokens, 5);
}

TEST(Cyclomatic, StartLineRecorded) {
  const auto r = ct::analyze_cyclomatic("\n\nint f() { return 0; }\n");
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].start_line, 3);
}

}  // namespace
