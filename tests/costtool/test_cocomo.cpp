#include "costtool/cocomo.hpp"
#include "costtool/analyze.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace {

TEST(Cocomo, ZeroSlocIsFree) {
  const auto e = ct::cocomo_organic(0);
  EXPECT_EQ(e.effort_person_months, 0.0);
  EXPECT_EQ(e.cost_usd, 0.0);
}

TEST(Cocomo, PaperTable2Row1) {
  // OpenTimer v1: 9,123 LOC -> Effort 2.04 person-years, ~2.90 developers,
  // ~$275,287 at $56,286/year (paper Table II).
  const auto e = ct::cocomo_organic(9123);
  EXPECT_NEAR(e.effort_person_years, 2.04, 0.03);
  EXPECT_NEAR(e.developers, 2.90, 0.06);
  EXPECT_NEAR(e.cost_usd, 275287.0, 3000.0);
}

TEST(Cocomo, PaperTable2Row2) {
  // OpenTimer v2: 4,482 LOC -> Effort 0.97 person-years, ~1.83 developers,
  // ~$130,523.
  const auto e = ct::cocomo_organic(4482);
  EXPECT_NEAR(e.effort_person_years, 0.97, 0.02);
  EXPECT_NEAR(e.developers, 1.83, 0.05);
  EXPECT_NEAR(e.cost_usd, 130523.0, 2000.0);
}

TEST(Cocomo, EffortIsSuperlinear) {
  const auto small = ct::cocomo_organic(1000);
  const auto big = ct::cocomo_organic(10000);
  EXPECT_GT(big.effort_person_months, 10.0 * small.effort_person_months * 0.99);
}

TEST(Cocomo, CustomSalaryScalesCost) {
  ct::CocomoParams p;
  p.salary_usd = 112572.0;  // double
  const auto base = ct::cocomo_organic(5000);
  const auto doubled = ct::cocomo_organic(5000, p);
  EXPECT_NEAR(doubled.cost_usd, 2.0 * base.cost_usd, 1.0);
}

TEST(Analyze, SourceReportCombinesLocAndCc) {
  const auto r = ct::analyze_source("int f(int a) { return a ? 1 : 0; }\n");
  EXPECT_EQ(r.loc.code_lines, 1);
  EXPECT_EQ(r.cc.max_cyclomatic, 2);
}

TEST(Analyze, FilesAggregation) {
  const std::string dir = ::testing::TempDir();
  const std::string f1 = dir + "/agg1.cpp";
  const std::string f2 = dir + "/agg2.cpp";
  {
    std::ofstream(f1) << "int f() { return 1; }\n";
    std::ofstream(f2) << "int g(int a) { if (a) return 1; return 0; }\nint h() { return 2; }\n";
  }
  const auto pr = ct::analyze_files({f1, f2});
  EXPECT_EQ(pr.files, 2);
  EXPECT_EQ(pr.code_lines, 3);
  EXPECT_EQ(pr.total_cyclomatic, 1 + 2 + 1);
  EXPECT_EQ(pr.max_cyclomatic, 2);
  EXPECT_GT(pr.cocomo.effort_person_months, 0.0);
  std::remove(f1.c_str());
  std::remove(f2.c_str());
}

}  // namespace
